package webracer

import (
	"bytes"
	"os"
	"testing"

	"webracer/internal/loader"
	"webracer/internal/obs"
	"webracer/internal/sitegen"
)

// metricsJSON renders one run's metrics registry in the stable export
// encoding.
func metricsJSON(t *testing.T, m *obs.Metrics) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// runCorpusMetrics runs the three golden sites with telemetry at the given
// worker count and returns each run's metrics JSON by case name.
func runCorpusMetrics(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	cases := goldenCases()
	cfg := DefaultConfig(1)
	cfg.Telemetry = true
	results, err := RunCorpusParallel(len(cases), func(i int) *loader.Site {
		return cases[i].site
	}, cfg, ParallelConfig{Workers: workers})
	if err != nil {
		t.Fatalf("RunCorpusParallel(workers=%d): %v", workers, err)
	}
	out := map[string][]byte{}
	for i, res := range results {
		if res.Metrics == nil {
			t.Fatalf("%s: Telemetry set but Result.Metrics is nil", cases[i].name)
		}
		out[cases[i].name] = metricsJSON(t, res.Metrics)
	}
	return out
}

// TestGoldenMetrics pins the telemetry snapshots of the three golden sites
// and asserts the core determinism claim: the bytes are identical whether
// the sweep ran on one worker or eight. Regenerate deliberately with
//
//	go test -run TestGoldenMetrics -update .
func TestGoldenMetrics(t *testing.T) {
	serial := runCorpusMetrics(t, 1)
	parallel := runCorpusMetrics(t, 8)
	for name, want := range serial {
		if got := parallel[name]; !bytes.Equal(got, want) {
			t.Errorf("%s: metrics differ between workers=1 and workers=8\nworkers=1: %s\nworkers=8: %s",
				name, want, got)
		}
		path := goldenPath("metrics-" + name)
		if *updateGolden {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", name, err)
		}
		if !bytes.Equal(serial[name], golden) {
			t.Errorf("%s: metrics drifted from golden %s\ngot:  %s\nwant: %s",
				name, path, serial[name], golden)
		}
	}
}

// TestGoldenMetricsPredictive pins the predictive detector's counter
// family (race.predictive.*) on the schedule-dependent sched-00 page —
// the same (site, config) `experiments -obs -metrics-dir` regenerates as
// metrics-sched-predictive.json, so scripts/metricsdiff.sh gates these
// counters alongside the rest of the telemetry layer. Regenerate with
//
//	go test -run TestGoldenMetricsPredictive -update .
func TestGoldenMetricsPredictive(t *testing.T) {
	site := sitegen.Generate(sitegen.SchedSpec(0))
	cfg := DefaultConfig(1)
	cfg.Telemetry = true
	cfg.Detector = DetectorPredictive
	got := metricsJSON(t, RunConfig(site, cfg).Metrics)
	if again := metricsJSON(t, RunConfig(site, cfg).Metrics); !bytes.Equal(got, again) {
		t.Fatalf("predictive metrics not run-to-run stable:\n%s\n%s", got, again)
	}
	path := goldenPath("metrics-sched-predictive")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("predictive metrics drifted from golden %s\ngot:  %s\nwant: %s", path, got, golden)
	}
}

// TestGoldenMetricsSampled pins the sampled tier's counter family
// (race.sampled.*) on corpus site sitegen-07 at the default rate — the
// same (site, config) `experiments -obs -metrics-dir` regenerates as
// metrics-sampled.json, so scripts/metricsdiff.sh gates the tier's
// telemetry alongside the rest of the layer. Regenerate with
//
//	go test -run TestGoldenMetricsSampled -update .
func TestGoldenMetricsSampled(t *testing.T) {
	site := sitegen.Generate(sitegen.SpecFor(1, 7))
	cfg := DefaultConfig(1)
	cfg.Telemetry = true
	cfg.Detector = DetectorSampled
	got := metricsJSON(t, RunConfig(site, cfg).Metrics)
	if again := metricsJSON(t, RunConfig(site, cfg).Metrics); !bytes.Equal(got, again) {
		t.Fatalf("sampled metrics not run-to-run stable:\n%s\n%s", got, again)
	}
	path := goldenPath("metrics-sampled")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("sampled metrics drifted from golden %s\ngot:  %s\nwant: %s", path, got, golden)
	}
}

// TestGoldenMetricsPrune pins the schedule-pruning counter family
// (explore.classes.*) on a pruned 16-seed sweep of the
// schedule-dependent sched-00 page — the same (site, config)
// `experiments -obs -metrics-dir` regenerates as
// metrics-sched-prune.json, so scripts/metricsdiff.sh gates the pruning
// layer's telemetry alongside the rest. The counters must be identical
// at any worker count (classification happens in the in-order fold).
// Regenerate with
//
//	go test -run TestGoldenMetricsPrune -update .
func TestGoldenMetricsPrune(t *testing.T) {
	site := sitegen.Generate(sitegen.SchedSpec(0))
	snap := func(workers int) []byte {
		var stats ClassStats
		if _, err := RunSeedsParallel(site, DefaultConfig(1), 16,
			ParallelConfig{Workers: workers, Prune: true, Classes: &stats}); err != nil {
			t.Fatal(err)
		}
		m := obs.New()
		stats.Fold(m)
		return metricsJSON(t, m)
	}
	got := snap(1)
	if par := snap(4); !bytes.Equal(got, par) {
		t.Fatalf("prune metrics differ between workers=1 and workers=4:\n%s\n%s", got, par)
	}
	path := goldenPath("metrics-sched-prune")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("prune metrics drifted from golden %s\ngot:  %s\nwant: %s", path, got, golden)
	}
}

// TestMetricsRunToRunStability runs the same (site, seed) twice in one
// process and demands byte-identical metrics — the acceptance criterion
// behind golden-testing them at all.
func TestMetricsRunToRunStability(t *testing.T) {
	site := goldenCases()[0].site
	cfg := DefaultConfig(3)
	cfg.Telemetry = true
	a := metricsJSON(t, RunConfig(site, cfg).Metrics)
	b := metricsJSON(t, RunConfig(site, cfg).Metrics)
	if !bytes.Equal(a, b) {
		t.Fatalf("same (site, seed) produced different metrics:\n%s\n%s", a, b)
	}
}

// TestTelemetryOffByDefault guards the zero-cost contract's API half: no
// telemetry unless asked for.
func TestTelemetryOffByDefault(t *testing.T) {
	res := Run(goldenCases()[0].site, WithSeed(1))
	if res.Metrics != nil || res.Trace != nil {
		t.Fatalf("Metrics=%v Trace=%v without Telemetry/TimeTrace, want nil", res.Metrics, res.Trace)
	}
}
