#!/bin/sh
# metricsdiff.sh [DIR] — regenerate the golden-site metrics snapshots and
# diff them against the pinned goldens in testdata/golden/.
#
# Runs `go run ./cmd/experiments -obs -metrics-dir DIR` (DIR defaults to a
# fresh temp directory) and byte-compares each metrics-*.json against its
# golden. Exit 0 when every snapshot matches; on drift the unified diff is
# printed and the exit status is 1. This is the `make obs` gate: the
# telemetry layer must stay deterministic and the counters must not move
# without a deliberate golden update
# (`go test -run TestGoldenMetrics -update .`).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
golden="$root/testdata/golden"

if [ $# -gt 1 ]; then
    echo "usage: $0 [DIR]" >&2
    exit 2
fi
if [ $# -eq 1 ]; then
    dir=$1
    mkdir -p "$dir"
    cleanup=""
else
    dir=$(mktemp -d)
    cleanup=$dir
fi
trap '[ -n "$cleanup" ] && rm -rf "$cleanup"' EXIT

(cd "$root" && go run ./cmd/experiments -obs -metrics-dir "$dir" >/dev/null)

status=0
found=0
for want in "$golden"/metrics-*.json; do
    [ -e "$want" ] || { echo "metricsdiff: no goldens under $golden" >&2; exit 2; }
    found=1
    name=$(basename "$want")
    got="$dir/$name"
    if [ ! -r "$got" ]; then
        echo "metricsdiff: $name was not regenerated" >&2
        status=1
        continue
    fi
    if ! cmp -s "$want" "$got"; then
        echo "metricsdiff: $name drifted from golden:"
        diff -u "$want" "$got" || true
        status=1
    fi
done
if [ "$found" -eq 0 ]; then
    echo "metricsdiff: no goldens matched" >&2
    exit 2
fi
if [ "$status" -eq 0 ]; then
    echo "metricsdiff: all golden metrics snapshots match"
fi
exit "$status"
