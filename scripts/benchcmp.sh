#!/bin/sh
# benchcmp.sh OLD NEW — compare two `go test -bench` outputs.
#
# Uses benchstat (golang.org/x/perf/cmd/benchstat) when it is on PATH,
# which gives proper statistics over `-count` repetitions. Falls back to a
# plain side-by-side diff of the benchmark lines so the script works on a
# bare toolchain.
#
# Typical flow:
#   make bench > old.txt
#   ... hack ...
#   make bench > new.txt
#   ./scripts/benchcmp.sh old.txt new.txt
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD NEW" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "benchcmp: cannot read $f" >&2
        exit 2
    fi
done

if command -v benchstat >/dev/null 2>&1; then
    exec benchstat "$old" "$new"
fi

echo "benchcmp: benchstat not found; falling back to raw comparison" >&2
echo "== $old =="
grep '^Benchmark' "$old" || true
echo
echo "== $new =="
grep '^Benchmark' "$new" || true
