#!/bin/sh
# benchjson.sh OUT.json — turn a `go test -json -bench` stream (stdin)
# into a machine-readable benchmark summary.
#
#   go test -run '^$' -bench 'Detector|ReplayVC' -benchmem -json . \
#       | ./scripts/benchjson.sh BENCH_pr4.json
#
# The human-readable benchmark lines are reconstructed on stdout (so the
# pipeline still reads like a normal `go test -bench` run) and OUT.json
# gets one record per result line:
#
#   {"benchmarks":[{"name":...,"iterations":...,"ns_per_op":...,
#                   "bytes_per_op":...,"allocs_per_op":...},...]}
#
# Records appear in run order, so `-count N` repetitions stay adjacent and
# feed straight into benchstat-style aggregation. POSIX sh + awk only —
# no jq, no Go helper binary.
set -eu

if [ $# -ne 1 ]; then
    echo "usage: go test -json -bench ... | $0 OUT.json" >&2
    exit 2
fi
out=$1

awk -v out="$out" '
# Collect the Output payloads of the test2json stream in order. Each event
# is one JSON object per line; the Output field is the last field, so the
# payload is everything between "Output":" and the closing "} . JSON
# escapes that matter for bench lines are \t, \n, \" and \\ .
function unescape(s) {
    gsub(/\\t/, "\t", s)
    gsub(/\\n/, "\n", s)
    gsub(/\\"/, "\"", s)
    gsub(/\\\\/, "\\", s)
    return s
}
function flushline(line,    n, f, i, name, iters, rec) {
    if (line !~ /^Benchmark/ || line !~ /ns\/op/)
        return
    n = split(line, f, /[ \t]+/)
    name = f[1]
    iters = f[2]
    rec = sprintf("{\"name\":\"%s\",\"iterations\":%s", name, iters)
    for (i = 3; i < n; i++) {
        if (f[i + 1] == "ns/op")
            rec = rec sprintf(",\"ns_per_op\":%s", f[i])
        else if (f[i + 1] == "B/op")
            rec = rec sprintf(",\"bytes_per_op\":%s", f[i])
        else if (f[i + 1] == "allocs/op")
            rec = rec sprintf(",\"allocs_per_op\":%s", f[i])
    }
    rec = rec "}"
    records = records (nrec ? ",\n    " : "") rec
    nrec++
}
/"Output":"/ {
    payload = $0
    sub(/^.*"Output":"/, "", payload)
    sub(/"}[ \t\r]*$/, "", payload)
    buf = buf unescape(payload)
    # Emit and parse only complete lines; go test writes a benchmark name
    # and its results in separate output events on the same logical line.
    while ((i = index(buf, "\n")) > 0) {
        line = substr(buf, 1, i - 1)
        buf = substr(buf, i + 1)
        print line
        flushline(line)
    }
}
END {
    if (buf != "") {
        print buf
        flushline(buf)
    }
    printf "{\n  \"benchmarks\": [\n    %s\n  ]\n}\n", records > out
    if (nrec == 0) {
        print "benchjson: no benchmark result lines in input" | "cat >&2"
        exit 1
    }
}
' || exit 1

echo "benchjson: wrote $out"
