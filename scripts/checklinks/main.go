// Command checklinks keeps the repo's documentation honest: every
// relative markdown link and every backticked `*.go` file reference in
// the repo's *.md files must resolve to a real file. Docs rot silently
// when code moves; this makes the rot a build failure instead. `make
// linkcheck` runs it from the repo root.
//
// Checked:
//   - [text](target) links whose target is not an absolute URL or a bare
//     #anchor — the path (fragment stripped) must exist relative to the
//     file containing the link.
//   - `path/to/file.go` references with a slash — must exist from the
//     repo root.
//   - bare `file.go` references — the basename must exist somewhere in
//     the repo.
//
// Usage:
//
//	go run ./scripts/checklinks [ROOT]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	// linkRE matches [text](target); nested parens in targets don't occur
	// in this repo's docs.
	linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// goRefRE matches backticked Go file references like `webracer.go`
	// or `internal/serve/serve.go`.
	goRefRE = regexp.MustCompile("`([A-Za-z0-9_./-]+\\.go)`")
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	mds, goBase, err := inventory(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checklinks:", err)
		os.Exit(2)
	}
	var problems []string
	for _, md := range mds {
		p, err := checkFile(root, md, goBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checklinks:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "checklinks: %d broken references\n", len(problems))
		os.Exit(1)
	}
}

// inventory walks root collecting markdown files to check and the set of
// .go basenames that exist anywhere in the repo (for bare references).
func inventory(root string) (mds []string, goBase map[string]bool, err error) {
	goBase = map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case name == "ISSUE.md":
			// The driver's task brief quotes placeholder paths; it is not
			// repo documentation.
		case strings.HasSuffix(name, ".md"):
			mds = append(mds, path)
		case strings.HasSuffix(name, ".go"):
			goBase[name] = true
		}
		return nil
	})
	return mds, goBase, err
}

// checkFile validates one markdown file's links and Go file references.
func checkFile(root, md string, goBase map[string]bool) ([]string, error) {
	data, err := os.ReadFile(md)
	if err != nil {
		return nil, err
	}
	var problems []string
	bad := func(ref string) {
		problems = append(problems, fmt.Sprintf("%s: broken reference %q", filepath.ToSlash(md), ref))
	}
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(filepath.Dir(md), target)); err != nil {
			bad(m[1])
		}
	}
	for _, m := range goRefRE.FindAllStringSubmatch(string(data), -1) {
		ref := m[1]
		if strings.Contains(ref, "/") {
			if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
				bad(ref)
			}
		} else if !goBase[ref] {
			bad(ref)
		}
	}
	return problems, nil
}
