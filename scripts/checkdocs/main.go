// Command checkdocs enforces godoc coverage: every exported identifier in
// the packages named on the command line must carry a doc comment. It is
// a presence check only — wording is the review's job — implemented over
// go/ast so it needs nothing beyond the standard toolchain. `make docs`
// runs it over the documented surface (the root package, internal/serve,
// internal/obs, internal/fault) and fails the build on any gap.
//
// Usage:
//
//	go run ./scripts/checkdocs DIR [DIR...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdocs DIR [DIR...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdocs:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d exported identifiers missing doc comments\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir (no recursion — run the
// command once per package) and returns one line per undocumented
// exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return problems, nil
}

// checkFunc flags undocumented exported functions, and undocumented
// exported methods whose receiver type is itself exported (methods on
// unexported types are not part of the package's documented surface).
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what, name := "func", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	report(d.Pos(), what, name)
}

// checkGen flags undocumented exported names in type/const/var blocks. A
// doc comment on the block covers every spec inside it; otherwise each
// spec needs its own.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
				report(sp.Pos(), d.Tok.String(), sp.Name.Name)
			}
		case *ast.ValueSpec:
			if sp.Doc != nil || sp.Comment != nil {
				continue
			}
			for _, name := range sp.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its base type
// name.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
