// Command webracerd is the long-running race-detection service: the
// one-shot cmd/webracer pipeline packaged behind a REST API with a shared
// worker pool, a bounded job queue and a content-addressed result cache.
//
// Usage:
//
//	webracerd [flags]
//
//	-addr :8077          listen address
//	-workers N           concurrent job workers (default: all cores)
//	-queue N             bounded job queue depth (default 64; full → 429)
//	-cache-bytes N       result-cache byte budget (default 64 MiB)
//	-sweep-workers N     per-job parallelism of sweep endpoints (default 1)
//	-default-timeout D   per-job wall budget when the request sets none (default 30s)
//	-max-timeout D       clamp on requested budgets (default 2m; 0 = no clamp)
//	-default-detector K  tier for requests that omit "detector" (default pairwise;
//	                     set "sampled" to route bulk traffic through the cheap tier,
//	                     which escalates to the exact detector on any hit)
//	-max-body N          request-body byte limit (default 8 MiB; over → 413)
//	-store-dir DIR       persist results to DIR: atomic checksummed writes,
//	                     corrupt entries quarantined and recovered around at boot
//	-access-log DEST     one structured JSON line per request ("-": stdout,
//	                     else a file path, appended); every line carries the
//	                     request's X-Webracer-Request-Id
//	-v                   log every job admission and completion
//
// Router mode — set -backends to turn this process into the cluster's
// front door instead of a worker:
//
//	-backends URLS       comma-separated backend base URLs; job keys are
//	                     consistent-hashed across them, with retries,
//	                     circuit breakers and local-execution fallback
//	-request-timeout D   per-forward-attempt timeout (default 90s)
//	-max-attempts N      forward attempts before falling back to local (default 3)
//	-breaker-failures N  consecutive failures that open a backend's breaker (default 5)
//	-breaker-cooldown D  open-breaker rejection window (default 5s)
//	-health-interval D   active /healthz probe period (default 2s; 0 disables)
//
// Endpoints: POST /v1/detect, /v1/sweep, /v1/faultsweep; GET /v1/jobs/{id},
// /v1/backends (router mode), /metrics, /progress, /healthz. See
// OPERATIONS.md for the full reference with curl-able examples and the
// "Running a cluster" runbook.
//
// SIGTERM/SIGINT drains gracefully: new submissions get 503, queued and
// in-flight jobs finish, then the final metrics snapshot (cache hits,
// misses, evictions, job counts) is flushed to stderr and the process
// exits 0. A second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webracer"
	"webracer/internal/serve"
)

func main() { os.Exit(run()) }

// run is main with an exit code so deferred cleanups always execute.
func run() int {
	var (
		addr         = flag.String("addr", ":8077", "listen address")
		workers      = flag.Int("workers", 0, "concurrent job workers (0: all cores)")
		queue        = flag.Int("queue", 64, "job queue depth; a full queue refuses with 429 + Retry-After")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (LRU eviction)")
		sweepWorkers = flag.Int("sweep-workers", 1, "per-job parallelism of sweep endpoints (output is identical at any value)")
		defTimeout   = flag.Duration("default-timeout", 30*time.Second, "per-job wall budget when the request sets none")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "clamp on requested per-job budgets (0: no clamp)")
		defDetector  = flag.String("default-detector", "", "detector for requests that omit one (default pairwise; \"sampled\" routes bulk traffic through the cheap tier)")
		maxBody      = flag.Int64("max-body", 8<<20, "request-body byte limit (over: 413)")
		storeDir     = flag.String("store-dir", "", "persist results to this directory (atomic, checksummed; survives restarts)")
		accessLog    = flag.String("access-log", "", "structured JSON access log: \"-\" for stdout, else a file path (appended); empty disables")
		verbose      = flag.Bool("v", false, "log request-level detail")

		backends        = flag.String("backends", "", "comma-separated backend URLs: run as the cluster router instead of a worker")
		reqTimeout      = flag.Duration("request-timeout", 90*time.Second, "router: per-forward-attempt timeout")
		maxAttempts     = flag.Int("max-attempts", 3, "router: forward attempts before local fallback")
		breakerFailures = flag.Int("breaker-failures", 5, "router: consecutive failures that open a backend's circuit breaker (negative: disable breakers)")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "router: how long an open breaker rejects a backend")
		healthInterval  = flag.Duration("health-interval", 2*time.Second, "router: active /healthz probe period (0: disable)")
	)
	flag.Parse()

	if _, err := webracer.ParseDetector(*defDetector); err != nil {
		fmt.Fprintln(os.Stderr, "webracerd:", err)
		return 2
	}
	var accessW io.Writer
	if *accessLog == "-" {
		accessW = os.Stdout
	} else if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracerd:", err)
			return 2
		}
		defer f.Close()
		accessW = f
	}
	s := serve.NewServer(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBytes:      *cacheBytes,
		SweepWorkers:    *sweepWorkers,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		DefaultDetector: *defDetector,
		MaxBodyBytes:    *maxBody,
		StoreDir:        *storeDir,
		AccessLog:       accessW,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webracerd:", err)
		return 2
	}
	var rt *serve.Router
	handler := s.Handler()
	if *backends != "" {
		rt = serve.NewRouter(s, serve.RouterConfig{
			Backends:        splitBackends(*backends),
			RequestTimeout:  *reqTimeout,
			Attempts:        *maxAttempts,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
			HealthInterval:  *healthInterval,
		})
		handler = rt.Handler()
	}
	if *verbose {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	mode := "serving"
	if rt != nil {
		mode = fmt.Sprintf("routing across %d backends on", len(splitBackends(*backends)))
	}
	fmt.Fprintf(os.Stderr, "webracerd: %s http://%s (POST /v1/detect, /v1/sweep, /v1/faultsweep; GET /v1/jobs/{id}, /metrics, /progress)\n",
		mode, ln.Addr())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "webracerd: %s — draining (in-flight jobs finish; signal again to abort)\n", sig)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "webracerd: second signal — aborting")
		os.Exit(130)
	}()

	if rt != nil {
		rt.Close()
	}
	if err := s.Drain(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "webracerd: drain:", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)

	// Flush the final service counters — the cache/queue story of this
	// process's lifetime — so operators see them without scraping.
	fmt.Fprintln(os.Stderr, "webracerd: final metrics:")
	if err := s.Metrics().WriteJSON(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "webracerd:", err)
		return 1
	}
	return 0
}

// splitBackends parses the -backends flag, dropping empty segments so a
// trailing comma doesn't become a phantom backend.
func splitBackends(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// logRequests wraps the service handler with one stderr line per request.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		fmt.Fprintf(os.Stderr, "webracerd: %s %s (%s)\n", r.Method, r.URL.Path, time.Since(start).Truncate(time.Millisecond))
	})
}
