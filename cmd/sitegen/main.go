// Command sitegen writes synthetic corpus sites to disk so they can be
// inspected, edited, or fed back through cmd/webracer.
//
// Usage:
//
//	sitegen [-seed 1] [-sites 5] [-out ./corpus]
//
// Each site lands in <out>/site<NNN>/ with its index.html and external
// resources; a SPEC.txt records the planted race patterns (the ground
// truth the detector should find).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"webracer/internal/sitegen"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "corpus seed")
		sites = flag.Int("sites", 5, "number of sites to emit")
		out   = flag.String("out", "corpus", "output directory")
	)
	flag.Parse()
	for i := 0; i < *sites; i++ {
		spec := sitegen.SpecFor(*seed, i)
		site := sitegen.Generate(spec)
		dir := filepath.Join(*out, fmt.Sprintf("site%03d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		if err := site.WriteDir(dir); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "SPEC.txt"), []byte(describe(spec)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", dir, spec.Name)
	}
}

func describe(s sitegen.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "site:            %s\n", s.Name)
	fmt.Fprintf(&b, "HTML harmful:    %d (Fig. 3 unguarded lookups)\n", s.HTMLHarmful)
	fmt.Fprintf(&b, "HTML benign:     %d (guarded delayed lookups)\n", s.HTMLBenign)
	fmt.Fprintf(&b, "Ford polls:      %d (§6.3 benign poll pattern)\n", s.FordPolls)
	fmt.Fprintf(&b, "func harmful:    %d (Fig. 4 handler → async decl)\n", s.FuncHarmful)
	fmt.Fprintf(&b, "func benign:     %d (typeof-guarded)\n", s.FuncBenign)
	fmt.Fprintf(&b, "form harmful:    %d (Fig. 2 hint overwrite)\n", s.FormHarmful)
	fmt.Fprintf(&b, "form guarded:    %d (read-before-write)\n", s.FormGuarded)
	fmt.Fprintf(&b, "plain variables: %d (raw-only counter races)\n", s.PlainVars)
	fmt.Fprintf(&b, "Gomez images:    %d (§6.3 monitor races, harmful)\n", s.GomezImages)
	fmt.Fprintf(&b, "delayed menus:   %d (benign dispatch races)\n", s.DelayedMenus)
	fmt.Fprintf(&b, "iframe pairs:    %d (Fig. 1 variable races)\n", s.IframePairs)
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sitegen:", err)
	os.Exit(1)
}
