package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"webracer/internal/obs"
	"webracer/internal/serve"
)

// Options configures one benchmark run. The replayed trace is a pure
// function of (Seed, Requests, Workers, Jobs, HotJobs, HotFrac), so two
// runs against the same target issue byte-identical request sequences —
// which is what makes the report's count fields golden-pinnable while
// its latency fields float with the machine.
type Options struct {
	// URL is the target base URL; empty boots an in-process cluster of
	// Backends nodes behind a router and benches that.
	URL string
	// Backends is the in-process cluster size (ignored with URL set).
	Backends int
	// ServeWorkers is each in-process node's job worker count.
	ServeWorkers int
	// Workers is the number of concurrent load-generator goroutines.
	Workers int
	// Requests is the load-phase request count (warmup and verify add
	// one serial request per distinct job each, on top).
	Requests int
	// Jobs is the number of distinct jobs in the trace; the detect /
	// sweep / faultsweep mix is fixed at 8:1:1 by job index.
	Jobs int
	// HotJobs is the size of the hot subset (the first HotJobs jobs).
	HotJobs int
	// HotFrac is the probability a load request draws from the hot
	// subset instead of uniformly — the cache-hit skew knob.
	HotFrac float64
	// Seed drives the deterministic trace draw.
	Seed int64
}

// withDefaults fills zero fields with the standard bench shape.
func (o Options) withDefaults() Options {
	if o.Backends < 1 {
		o.Backends = 3
	}
	if o.ServeWorkers < 1 {
		o.ServeWorkers = 2
	}
	if o.Workers < 1 {
		o.Workers = 8
	}
	if o.Requests < 1 {
		o.Requests = 2000
	}
	if o.Jobs < 1 {
		o.Jobs = 24
	}
	if o.HotJobs < 1 || o.HotJobs > o.Jobs {
		o.HotJobs = (o.Jobs + 3) / 4
	}
	if o.HotFrac <= 0 || o.HotFrac > 1 {
		o.HotFrac = 0.8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// EndpointStats is one endpoint family's load-phase outcome: request
// count and errors are trace-deterministic; the quantiles are wall time.
type EndpointStats struct {
	// Count is the load-phase requests that hit this endpoint.
	Count int64 `json:"count"`
	// Errors counts non-200 responses.
	Errors int64 `json:"errors"`
	// P50us is the median latency in microseconds (nearest bucket bound).
	P50us int64 `json:"p50us"`
	// P99us is the 99th-percentile latency in microseconds.
	P99us int64 `json:"p99us"`
}

// PhaseStats is one phase's outcome.
type PhaseStats struct {
	// Requests issued in this phase.
	Requests int64 `json:"requests"`
	// Errors counts non-200 responses.
	Errors int64 `json:"errors"`
	// Mismatches counts responses whose bytes differ from the job's cold
	// bytes — any nonzero value is a determinism-contract violation.
	Mismatches int64 `json:"mismatches"`
	// IDMismatches counts responses that failed to echo the request's
	// X-Webracer-Request-Id.
	IDMismatches int64 `json:"idMismatches"`
}

// Verification is the post-load byte-identity check.
type Verification struct {
	// Jobs re-requested serially after the load phase.
	Jobs int64 `json:"jobs"`
	// Mismatches counts warm responses that differ from cold bytes.
	Mismatches int64 `json:"mismatches"`
	// ColdReference reports whether a fresh single node recomputed every
	// job from scratch for comparison (in-process mode only).
	ColdReference bool `json:"coldReference"`
	// ColdMismatches counts reference recomputations that differ.
	ColdMismatches int64 `json:"coldMismatches"`
	// Pass is the overall verdict: zero mismatches everywhere.
	Pass bool `json:"pass"`
}

// Report is the machine-readable benchmark result. Every field except
// the two wall-clock ones (and the endpoint quantiles) is a pure
// function of Options — Stable() zeroes exactly the floating fields, and
// that projection is what the loadtest golden pins.
type Report struct {
	// Options echoes the effective (default-filled) run configuration.
	Options Options `json:"options"`
	// Warmup is the serial cold pass over every distinct job.
	Warmup PhaseStats `json:"warmup"`
	// Load is the concurrent replay phase.
	Load PhaseStats `json:"load"`
	// Verify is the post-load byte-identity check.
	Verify Verification `json:"verify"`
	// CacheLevels counts X-Webracer-Cache response headers across all
	// phases ("hit", "store-hit", "miss", "coalesced"; "none" when the
	// header was absent).
	CacheLevels map[string]int64 `json:"cacheLevels"`
	// Endpoints is the per-endpoint load-phase breakdown.
	Endpoints map[string]*EndpointStats `json:"endpoints"`
	// WallSeconds is the load phase's wall-clock duration.
	WallSeconds float64 `json:"wallSeconds"`
	// RPS is the load phase's achieved request rate.
	RPS float64 `json:"rps"`
}

// Stable returns a copy of the report with every wall-clock-derived
// field zeroed — the deterministic projection the loadtest golden pins.
func (r *Report) Stable() *Report {
	cp := *r
	cp.WallSeconds, cp.RPS = 0, 0
	cp.Endpoints = make(map[string]*EndpointStats, len(r.Endpoints))
	for k, v := range r.Endpoints {
		vv := *v
		vv.P50us, vv.P99us = 0, 0
		cp.Endpoints[k] = &vv
	}
	return &cp
}

// benchJob is one distinct job in the trace.
type benchJob struct {
	endpoint string // "detect", "sweep", "faultsweep"
	path     string
	body     string
	cold     []byte // bytes of the first (serial, cold) response
}

// buildJobs lays out the job list: a fixed 8:1:1 detect/sweep/faultsweep
// mix over deterministic corpus/fault specs.
func buildJobs(o Options) []*benchJob {
	jobs := make([]*benchJob, o.Jobs)
	for j := range jobs {
		switch j % 10 {
		case 8:
			jobs[j] = &benchJob{
				endpoint: "sweep",
				path:     "/v1/sweep",
				body:     fmt.Sprintf(`{"spec":{"kind":"corpus","index":%d},"seeds":2}`, j),
			}
		case 9:
			jobs[j] = &benchJob{
				endpoint: "faultsweep",
				path:     "/v1/faultsweep",
				body:     fmt.Sprintf(`{"spec":{"kind":"fault","index":%d},"plans":2}`, j%8),
			}
		default:
			jobs[j] = &benchJob{
				endpoint: "detect",
				path:     "/v1/detect",
				body:     fmt.Sprintf(`{"spec":{"kind":"corpus","index":%d},"seed":%d}`, j, o.Seed),
			}
		}
	}
	return jobs
}

// pick draws the job index for (worker, i) — FNV-1a over (seed, worker,
// i), split into the hot/uniform decision and the index draw.
func pick(o Options, worker, i int) int {
	h := fnv.New64a()
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(o.Seed))
	h.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(worker))
	h.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(i))
	h.Write(b8[:])
	x := h.Sum64()
	if float64(x%1000)/1000 < o.HotFrac {
		return int((x / 1000) % uint64(o.HotJobs))
	}
	return int((x / 1000) % uint64(o.Jobs))
}

// workerCounts is one load goroutine's private tally, merged after join
// so the aggregate is independent of scheduling.
type workerCounts struct {
	perEndpoint  map[string]*EndpointStats
	cacheLevels  map[string]int64
	mismatches   int64
	idMismatches int64
}

// cluster is the in-process bench target: n backends behind a router,
// all over real loopback HTTP.
type cluster struct {
	backends []*serve.Server
	tss      []*httptest.Server
	local    *serve.Server
	router   *serve.Router
	rts      *httptest.Server
}

// bootCluster starts the in-process cluster.
func bootCluster(o Options) *cluster {
	c := &cluster{}
	rcfg := serve.RouterConfig{}
	for i := 0; i < o.Backends; i++ {
		s := serve.NewServer(serve.Config{Workers: o.ServeWorkers})
		ts := httptest.NewServer(s.Handler())
		c.backends = append(c.backends, s)
		c.tss = append(c.tss, ts)
		rcfg.Backends = append(rcfg.Backends, ts.URL)
		rcfg.BackendNames = append(rcfg.BackendNames, fmt.Sprintf("b%d", i))
	}
	c.local = serve.NewServer(serve.Config{Workers: o.ServeWorkers})
	c.router = serve.NewRouter(c.local, rcfg)
	c.rts = httptest.NewServer(c.router.Handler())
	return c
}

// close tears the cluster down.
func (c *cluster) close() {
	c.rts.Close()
	c.router.Close()
	c.local.Close()
	for i, ts := range c.tss {
		ts.Close()
		c.backends[i].Close()
	}
}

// runBench executes the three phases against opts' target and returns
// the report.
func runBench(opts Options) (*Report, error) {
	o := opts.withDefaults()
	base := o.URL
	var c *cluster
	if base == "" {
		c = bootCluster(o)
		defer c.close()
		base = c.rts.URL
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Workers * 4,
		MaxIdleConnsPerHost: o.Workers * 4,
	}}

	rep := &Report{
		Options:     o,
		CacheLevels: map[string]int64{},
		Endpoints:   map[string]*EndpointStats{},
	}
	jobs := buildJobs(o)
	lat := obs.New()

	post := func(j *benchJob, reqID string) (int, string, string, []byte, error) {
		hr, err := http.NewRequest(http.MethodPost, base+j.path, strings.NewReader(j.body))
		if err != nil {
			return 0, "", "", nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			hr.Header.Set(serve.HeaderRequestID, reqID)
		}
		resp, err := client.Do(hr)
		if err != nil {
			return 0, "", "", nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", "", nil, err
		}
		return resp.StatusCode, resp.Header.Get(serve.HeaderCache), resp.Header.Get(serve.HeaderRequestID), body, nil
	}
	countCache := func(m map[string]int64, h string) {
		if h == "" {
			h = "none"
		}
		m[h]++
	}

	// Warmup: every distinct job once, serially — the cold bytes every
	// later response is held to.
	for ji, j := range jobs {
		code, cacheH, _, body, err := post(j, fmt.Sprintf("bench-warm-%d", ji))
		if err != nil {
			return nil, fmt.Errorf("warmup job %d: %w", ji, err)
		}
		rep.Warmup.Requests++
		countCache(rep.CacheLevels, cacheH)
		if code != http.StatusOK {
			rep.Warmup.Errors++
			continue
		}
		j.cold = body
	}
	if rep.Warmup.Errors > 0 {
		return rep, fmt.Errorf("warmup: %d of %d jobs failed", rep.Warmup.Errors, len(jobs))
	}

	// Load: Workers goroutines replay the seeded trace concurrently.
	// Each worker's request list is a pure function of (seed, worker), so
	// the aggregate counts are scheduling-independent.
	perWorker := make([]*workerCounts, o.Workers)
	var loadErrs int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		n := o.Requests / o.Workers
		if w < o.Requests%o.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			wc := &workerCounts{perEndpoint: map[string]*EndpointStats{}, cacheLevels: map[string]int64{}}
			perWorker[w] = wc
			for i := 0; i < n; i++ {
				j := jobs[pick(o, w, i)]
				st := wc.perEndpoint[j.endpoint]
				if st == nil {
					st = &EndpointStats{}
					wc.perEndpoint[j.endpoint] = st
				}
				reqID := fmt.Sprintf("bench-%d-w%d-%d", o.Seed, w, i)
				t0 := time.Now()
				code, cacheH, echoed, body, err := post(j, reqID)
				lat.WallHistogram("bench."+j.endpoint+".us", "us", latencyBounds).
					Record(time.Since(t0).Microseconds())
				st.Count++
				if err != nil || code != http.StatusOK {
					st.Errors++
					mu.Lock()
					loadErrs++
					mu.Unlock()
					continue
				}
				countCache(wc.cacheLevels, cacheH)
				if echoed != reqID {
					wc.idMismatches++
				}
				if !bytes.Equal(body, j.cold) {
					wc.mismatches++
				}
			}
		}(w, n)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Load.Requests = int64(o.Requests)
	rep.Load.Errors = loadErrs
	if rep.WallSeconds > 0 {
		rep.RPS = float64(o.Requests) / rep.WallSeconds
	}
	for _, wc := range perWorker {
		if wc == nil {
			continue
		}
		for ep, st := range wc.perEndpoint {
			agg := rep.Endpoints[ep]
			if agg == nil {
				agg = &EndpointStats{}
				rep.Endpoints[ep] = agg
			}
			agg.Count += st.Count
			agg.Errors += st.Errors
		}
		for k, v := range wc.cacheLevels {
			rep.CacheLevels[k] += v
		}
		rep.Load.Mismatches += wc.mismatches
		rep.Load.IDMismatches += wc.idMismatches
	}
	for ep, st := range rep.Endpoints {
		h := lat.WallHistogram("bench."+ep+".us", "us", latencyBounds)
		st.P50us = h.Quantile(0.50)
		st.P99us = h.Quantile(0.99)
	}

	// Verify: every job once more, serially, against its cold bytes; in
	// in-process mode a fresh single node also recomputes each job from
	// scratch — the cluster's answers must match a cold node's exactly.
	rep.Verify.Jobs = int64(len(jobs))
	for ji, j := range jobs {
		code, cacheH, _, body, err := post(j, fmt.Sprintf("bench-verify-%d", ji))
		if err != nil {
			return rep, fmt.Errorf("verify job %d: %w", ji, err)
		}
		countCache(rep.CacheLevels, cacheH)
		if code != http.StatusOK || !bytes.Equal(body, j.cold) {
			rep.Verify.Mismatches++
		}
	}
	if o.URL == "" {
		rep.Verify.ColdReference = true
		ref := serve.NewServer(serve.Config{Workers: o.ServeWorkers})
		h := ref.Handler()
		for _, j := range jobs {
			hr := httptest.NewRequest(http.MethodPost, j.path, strings.NewReader(j.body))
			hr.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			h.ServeHTTP(w, hr)
			if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), j.cold) {
				rep.Verify.ColdMismatches++
			}
		}
		ref.Close()
	}
	rep.Verify.Pass = rep.Load.Mismatches == 0 && rep.Load.IDMismatches == 0 &&
		rep.Verify.Mismatches == 0 && rep.Verify.ColdMismatches == 0 && loadErrs == 0
	return rep, nil
}

// latencyBounds is the shared bench latency bucket layout: 50µs doubling
// up to ~100s.
var latencyBounds = obs.ExpBuckets(50, 2, 22)
