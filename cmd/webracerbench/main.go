// Command webracerbench replays a seeded synthetic trace — a mixed
// detect/sweep/faultsweep job set with configurable cache-hit skew —
// against a running webracerd (or an in-process 3-node cluster when no
// -url is given) and reports per-endpoint latency quantiles, cache-hit
// ratios by level, error counts, and a bytes-identical-to-cold
// verification verdict.
//
// The trace is a pure function of the flags, so runs are comparable
// across builds and machines; only the latency and throughput numbers
// float. Machine-readable output via -json:
//
//	webracerbench -requests 100000 -workers 16 -json BENCH_cluster.json
//	webracerbench -url http://host:8077 -requests 2000
//
// The process exits nonzero when verification fails — any response that
// is not byte-identical to the job's cold bytes, a dropped request id,
// or a load-phase error breaks the determinism contract the service
// promises.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	var o Options
	flag.StringVar(&o.URL, "url", "", "target base URL (empty: bench an in-process cluster)")
	flag.IntVar(&o.Backends, "backends", 3, "in-process cluster size")
	flag.IntVar(&o.ServeWorkers, "serve-workers", 2, "job workers per in-process node")
	flag.IntVar(&o.Workers, "workers", 8, "concurrent load-generator workers")
	flag.IntVar(&o.Requests, "requests", 2000, "load-phase request count")
	flag.IntVar(&o.Jobs, "jobs", 24, "distinct jobs in the trace")
	flag.IntVar(&o.HotJobs, "hot-jobs", 0, "hot-subset size (0: jobs/4)")
	flag.Float64Var(&o.HotFrac, "hot", 0.8, "probability a request draws from the hot subset")
	flag.Int64Var(&o.Seed, "seed", 1, "trace seed")
	jsonPath := flag.String("json", "", "write the machine-readable report here")
	flag.Parse()

	rep, err := runBench(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webracerbench:", err)
		os.Exit(1)
	}

	fmt.Printf("webracerbench: %d requests, %d workers, %d jobs (hot %d @ %.0f%%), seed %d\n",
		rep.Options.Requests, rep.Options.Workers, rep.Options.Jobs,
		rep.Options.HotJobs, rep.Options.HotFrac*100, rep.Options.Seed)
	fmt.Printf("load: %.2fs wall, %.0f req/s, %d errors\n", rep.WallSeconds, rep.RPS, rep.Load.Errors)
	eps := make([]string, 0, len(rep.Endpoints))
	for ep := range rep.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		st := rep.Endpoints[ep]
		fmt.Printf("  %-11s %8d reqs  p50 %7dus  p99 %7dus  errors %d\n",
			ep, st.Count, st.P50us, st.P99us, st.Errors)
	}
	levels := make([]string, 0, len(rep.CacheLevels))
	total := int64(0)
	for l, n := range rep.CacheLevels {
		levels = append(levels, l)
		total += n
	}
	sort.Strings(levels)
	fmt.Print("cache: ")
	for i, l := range levels {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %d (%.1f%%)", l, rep.CacheLevels[l], 100*float64(rep.CacheLevels[l])/float64(total))
	}
	fmt.Println()
	fmt.Printf("verify: %d jobs re-checked, %d warm mismatches, %d load mismatches, %d id mismatches",
		rep.Verify.Jobs, rep.Verify.Mismatches, rep.Load.Mismatches, rep.Load.IDMismatches)
	if rep.Verify.ColdReference {
		fmt.Printf(", %d cold-reference mismatches", rep.Verify.ColdMismatches)
	}
	fmt.Println()

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracerbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "webracerbench:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if !rep.Verify.Pass {
		fmt.Fprintln(os.Stderr, "webracerbench: VERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("verification PASS: every response byte-identical to cold")
}
