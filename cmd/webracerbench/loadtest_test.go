package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateLoadtest = flag.Bool("update", false, "rewrite the loadtest golden report")

// TestLoadtestGolden is the `make loadtest` gate: a 2000-request
// in-process 3-node bench must pass full byte-identity verification, and
// the report's deterministic projection (Report.Stable — every count,
// cache level, and verification field; wall latencies zeroed) must match
// the pinned golden byte for byte. Trace drift, cache-layer behavior
// changes, and verification regressions all land here.
func TestLoadtestGolden(t *testing.T) {
	rep, err := runBench(Options{Requests: 2000, Workers: 8, Seed: 1})
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	if !rep.Verify.Pass {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("verification failed:\n%s", blob)
	}
	got, err := json.MarshalIndent(rep.Stable(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden", "loadtest.json")
	if *updateLoadtest {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("loadtest report drifted from golden (rerun with -update if deliberate):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
