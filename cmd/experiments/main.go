// Command experiments regenerates the evaluation artifacts of "Race
// Detection for Web Applications" (PLDI 2012): Table 1 (raw race counts
// over the synthetic Fortune-100-style corpus), Table 2 (filtered races
// with harmfulness), the instrumentation-overhead measurement of §6, and
// the graph-vs-vector-clock ablation. EXPERIMENTS.md records a reference
// run's output next to the paper's numbers.
//
// Usage:
//
//	experiments [-sites 100] [-seed 1] [-workers N] [-progress]
//	            [-table1] [-table2] [-perf] [-ablate] [-extensions]
//	            [-faults] [-obs] [-predictive] [-sampled] [-prune]
//	            [-metrics-dir DIR] [-trace FILE] [-pprof PREFIX]
//
// With no experiment flags, everything runs. Corpus sweeps (Tables 1-2,
// the E6 ablations) shard over -workers; results are identical at any
// worker count (the engine aggregates in input order), so the flag only
// changes wall-clock time. -progress streams live per-worker counters to
// stderr.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"webracer"
	"webracer/internal/hb"
	"webracer/internal/loader"
	"webracer/internal/obs"
	"webracer/internal/pool"
	"webracer/internal/race"
	"webracer/internal/report"
	"webracer/internal/serve"
	"webracer/internal/sitegen"
)

// workers and showProgress are process-wide experiment knobs.
var (
	workers      int
	showProgress bool
)

func main() {
	var (
		sites  = flag.Int("sites", 100, "number of synthetic sites in the corpus")
		seed   = flag.Int64("seed", 1, "corpus seed")
		table1 = flag.Bool("table1", false, "regenerate Table 1 (raw counts)")
		table2 = flag.Bool("table2", false, "regenerate Table 2 (filtered + harmful)")
		perf   = flag.Bool("perf", false, "measure instrumentation overhead (§6 Performance)")
		ablate = flag.Bool("ablate", false, "graph vs vector-clock detector ablation (E4)")
		exts   = flag.Bool("extensions", false, "beyond-the-paper extension ablations (E6)")
		flt    = flag.Bool("faults", false, "deterministic fault injection: races vs fault rate (E8)")
		obsE   = flag.Bool("obs", false, "deterministic telemetry: per-site instrumentation table from metrics (E9)")
		predE  = flag.Bool("predictive", false, "single-trace predictive detection: sweep-recovery recall table (E10)")
		sampE  = flag.Bool("sampled", false, "sampled fast tier: cost vs recall vs the exact detector (E11)")
		pruneE = flag.Bool("prune", false, "HB-equivalence schedule pruning: detector passes saved at identical results (E12)")
		mDir   = flag.String("metrics-dir", "", "with -obs: also write each site's metrics JSON into this directory (files match testdata/golden/metrics-*.json)")
		traceF = flag.String("trace", "", "with -obs: also write fig1's virtual-time Chrome trace to this file")
		pprofP = flag.String("pprof", "", "write process CPU and heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	flag.IntVar(&workers, "workers", runtime.NumCPU(), "parallel workers for corpus sweeps (identical results at any count)")
	flag.BoolVar(&showProgress, "progress", false, "stream live per-worker sweep counters to stderr")
	flag.Parse()
	all := !*table1 && !*table2 && !*perf && !*ablate && !*exts && !*flt && !*obsE && !*predE && !*sampE && !*pruneE

	if *pprofP != "" {
		finish, err := obs.Profile(*pprofP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		defer func() {
			if err := finish(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *table1 || all {
		runTable1(*seed, *sites)
	}
	if *table2 || all {
		runTable2(*seed, *sites)
	}
	if *perf || all {
		runPerf(*seed)
	}
	if *ablate || all {
		runAblation(*seed, *sites)
	}
	if *exts || all {
		runExtensions(*seed, *sites)
	}
	if *flt || all {
		runFaults(*seed)
	}
	if *obsE || all {
		runObs(*seed, *mDir, *traceF)
	}
	if *predE || all {
		runPredictive(*seed)
	}
	if *sampE || all {
		runSampledTier(*seed, *sites)
	}
	if *pruneE || all {
		runPrune(*seed)
	}
}

// watchProgress streams snapshots of a sweep's counters to stderr until
// the returned stop function is called. No-op unless -progress is set.
func watchProgress(label string, c *webracer.Progress) (stop func()) {
	if !showProgress {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := c.Snapshot()
				perWorker := make([]string, len(s.PerWorker))
				for i, n := range s.PerWorker {
					perWorker[i] = fmt.Sprint(n)
				}
				fmt.Fprintf(os.Stderr, "%s: %d/%d done, %d in flight, %.1f/s, per-worker [%s]\n",
					label, s.Done, s.Total, s.InFlight, s.PerSecond,
					strings.Join(perWorker, " "))
			}
		}
	}()
	return func() { close(done); <-finished }
}

// sweepStats formats the standard "n sites in t" suffix with the sweep's
// worker count and throughput.
func sweepStats(n int, elapsed time.Duration) string {
	return fmt.Sprintf("%d sites in %v, %d worker(s), %.1f sites/s",
		n, elapsed.Round(time.Millisecond), workers,
		float64(n)/elapsed.Seconds())
}

func kb(b int) string { return fmt.Sprintf("%.0fKiB", float64(b)/1024) }

// runExtensions measures the E6 extension knobs over a corpus slice: the
// §7 timer-clear instrumentation, the Appendix A same-group handler
// ordering, and the online vector-clock oracle.
func runExtensions(seed int64, n int) {
	if n > 25 {
		n = 25
	}
	fmt.Printf("== E6: extension ablations over %d sites ==\n", n)
	runWith := func(mut func(*webracer.Config)) int {
		perSite, err := pool.Map(pool.Options{Workers: workers}, n, func(i int) int {
			cfg := webracer.DefaultConfig(seed)
			cfg.Seed = seed + int64(i)*101
			mut(&cfg)
			return len(webracer.RunConfig(sitegen.Generate(sitegen.SpecFor(seed, i)), cfg).RawReports)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		races := 0
		for _, r := range perSite {
			races += r
		}
		return races
	}
	base := runWith(func(*webracer.Config) {})
	timer := runWith(func(c *webracer.Config) { c.Browser.InstrumentTimerClears = true })
	ordered := runWith(func(c *webracer.Config) { c.Browser.OrderSameTargetHandlers = true })
	liveVC := runWith(func(c *webracer.Config) { c.Detector = webracer.DetectorPairwiseVC })
	fmt.Printf("baseline (paper semantics):        %4d races\n", base)
	fmt.Printf("+ timer-clear instrumentation:     %4d races (Δ %+d — §7 future work)\n", timer, timer-base)
	fmt.Printf("+ ordered same-target handlers:    %4d races (Δ %+d — Appendix A variant)\n", ordered, ordered-base)
	fmt.Printf("online vector-clock oracle:        %4d races (must equal baseline)\n", liveVC)
	if liveVC != base {
		fmt.Fprintln(os.Stderr, "WARNING: live VC oracle disagrees with the graph")
	}
	fmt.Println()
}

func corpusResults(seed int64, n int, filters bool) []*webracer.Result {
	cfg := webracer.DefaultConfig(seed)
	cfg.Filters = filters
	var prog webracer.Progress
	stop := watchProgress("corpus", &prog)
	defer stop()
	results, err := webracer.RunCorpusParallel(n, func(i int) *loader.Site {
		return sitegen.Generate(sitegen.SpecFor(seed, i))
	}, cfg, webracer.ParallelConfig{Workers: workers, Progress: &prog})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	return results
}

// runTable1 prints the paper's Table 1: mean/median/max races of each type
// across the corpus, no filtering.
func runTable1(seed int64, n int) {
	start := time.Now()
	results := corpusResults(seed, n, false)
	counts := make([]report.Counts, len(results))
	for i, r := range results {
		counts[i] = r.RawCounts
	}
	t1 := report.BuildTable1(counts)
	fmt.Printf("== Table 1: races per site across %d synthetic sites (paper: 100 Fortune 100 sites) ==\n", n)
	fmt.Printf("%-15s %8s %8s %6s   | paper: mean median max\n", "Race type", "Mean", "Median", "Max")
	paper := map[string][3]string{
		"HTML":          {"2.2", "0.0", "112"},
		"Function":      {"0.4", "0.0", "6"},
		"Variable":      {"22.4", "5.5", "269"},
		"EventDispatch": {"22.3", "7.0", "198"},
		"All":           {"47.3", "27.0", "278"},
	}
	for _, name := range []string{"HTML", "Function", "Variable", "EventDispatch", "All"} {
		s := t1.Rows[name]
		p := paper[name]
		fmt.Printf("%-15s %8.1f %8.1f %6d   | %7s %6s %4s\n", name, s.Mean, s.Median, s.Max, p[0], p[1], p[2])
	}
	fmt.Printf("(%s)\n\n", sweepStats(n, time.Since(start)))
}

// runTable2 prints the paper's Table 2: per-site filtered counts with
// harmful races in parentheses, plus the totals row.
func runTable2(seed int64, n int) {
	start := time.Now()
	cfg := webracer.DefaultConfig(seed)
	cfg.Filters = true
	fmt.Printf("== Table 2: filtered races per site (harmful in parentheses) ==\n")
	// One unit per site: the primary run plus its adversarial replays.
	// Rows land at their site index, so the table is identical at any
	// worker count.
	var prog webracer.Progress
	stop := watchProgress("table2", &prog)
	rows, err := pool.Map(pool.Options{Workers: workers, Counters: &prog}, n, func(i int) report.Table2Row {
		spec := sitegen.SpecFor(seed, i)
		site := sitegen.Generate(spec)
		c := cfg
		c.Seed = cfg.Seed + int64(i)*101
		res := webracer.RunConfig(site, c)
		h := webracer.ClassifyHarmful(site, c, res)
		var hc report.Counts
		for j, r := range res.Reports {
			if h.Harmful[j] {
				hc[report.Classify(r)]++
			}
		}
		return report.Table2Row{Site: spec.Name, Counts: res.Counts, Harmful: hc}
	})
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	t2 := report.BuildTable2(rows)
	if err := t2.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	fmt.Printf("paper Total:                    219 (32)        37 (7)         8 (5)       91 (83)\n")
	fmt.Printf("(%d sites with races, %s)\n\n", len(t2.Rows), sweepStats(n, time.Since(start)))
}

// cpuWorkload is a SunSpider-flavoured CPU-bound page: nested loops,
// recursion, string building and array churn.
const cpuWorkload = `
<script>
function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
function work() {
  var acc = 0;
  for (var i = 0; i < 200; i++) {
    acc = acc + i * i % 7;
  }
  var s = "";
  for (var j = 0; j < 60; j++) { s = s + "x" + j; }
  var arr = [];
  for (var k = 0; k < 120; k++) { arr.push(k); }
  var sum = 0;
  for (var m = 0; m < arr.length; m++) { sum += arr[m]; }
  return acc + s.length + sum + fib(12);
}
total = 0;
for (var r = 0; r < 20; r++) { total = total + work(); }
</script>`

// sharedWorkload is the opposite extreme: nearly every access touches
// instrumented state (globals, object properties, DOM lookups), the case
// WebRacer's graph traversals made expensive.
const sharedWorkload = `
<div id="a"></div><div id="b"></div><div id="c"></div>
<script>
g1 = 0; g2 = 0; g3 = 0;
obj = {x: 0, y: 0};
for (var i = 0; i < 4000; i++) {
  g1 = g1 + 1;
  g2 = g2 + g1;
  g3 = g1 + g2;
  obj.x = obj.x + g3;
  obj.y = obj.x - g2;
  var el = document.getElementById(i % 2 == 0 ? "a" : "b");
  el.className = "k" + (g1 % 5);
}
</script>`

// runPerf measures the §6 Performance quantity: slowdown with the detector
// attached vs the uninstrumented browser, on both a CPU-bound page (local
// computation, the SunSpider analogue) and a shared-state-heavy page.
func runPerf(seed int64) {
	measure := func(name, page string) {
		site := loader.NewSite(name).Add("index.html", page)
		run := func(detector bool) time.Duration {
			start := time.Now()
			const reps = 30
			for i := 0; i < reps; i++ {
				cfg := webracer.DefaultConfig(seed + int64(i))
				cfg.Explore = false
				cfg.Browser.NoInstrument = !detector
				webracer.RunConfig(site, cfg)
			}
			return time.Since(start) / reps
		}
		off := run(false)
		on := run(true)
		fmt.Printf("%-22s off: %10v/page   on: %10v/page   slowdown: %.1fx\n",
			name+":", off.Round(time.Microsecond), on.Round(time.Microsecond),
			float64(on)/float64(off))
	}
	fmt.Printf("== §6 Performance: instrumentation overhead ==\n")
	measure("cpu-bound (SunSpider)", cpuWorkload)
	measure("shared-state heavy", sharedWorkload)
	fmt.Printf("(paper: ~500x vs JIT-enabled WebKit. That figure bundles 'interpreter instead\n")
	fmt.Printf(" of JIT' with detection; our baseline is already an interpreter, so these are\n")
	fmt.Printf(" detection-only overheads. See EXPERIMENTS.md E3 for the full argument.)\n\n")
}

// runAblation compares happens-before representations on the recorded
// corpus traces (E4): the paper's graph reachability, the pre-epoch dense
// vector clocks (one eagerly built full-width clock per operation), and
// the epoch-optimized vector clocks (lazy chain coordinates, clock
// vectors materialized only for genuinely shared locations).
func runAblation(seed int64, n int) {
	if n > 30 {
		n = 30 // traces are memory-hungry; a slice of the corpus suffices
	}
	cfg := webracer.DefaultConfig(seed)
	cfg.RecordTrace = true
	results := webracer.RunCorpus(n, func(i int) *loader.Site {
		return sitegen.Generate(sitegen.SpecFor(seed, i))
	}, cfg)
	// The representations are also compared at §6 scale: wide pages with
	// thousands of operations across hundreds of handler tasks, where the
	// pre-epoch eager construction dominates analysis time.
	results = append(results, webracer.RunCorpus(4, func(i int) *loader.Site {
		return sitegen.Generate(sitegen.StressSpec(i))
	}, cfg)...)
	var graphTime, denseTime, epochTime time.Duration
	graphRaces, denseRaces, epochRaces := 0, 0, 0
	graphBytes, denseBytes, epochBytes := 0, 0, 0
	ops, mats := 0, 0
	for _, res := range results {
		ops += res.Ops
	}

	runtime.GC() // settle between phases so no arm pays its predecessor's debt
	t0 := time.Now()
	for _, res := range results {
		d := race.NewPairwise(res.Browser.HB)
		graphRaces += len(race.Replay(res.Browser.Trace(), d))
	}
	graphTime = time.Since(t0)
	for _, res := range results {
		graphBytes += res.Browser.HB.MemoryBytes()
	}

	runtime.GC()
	t1 := time.Now()
	for _, res := range results {
		dense := hb.NewDenseClocks(res.Browser.HB)
		d := race.NewPairwise(dense)
		denseRaces += len(race.Replay(res.Browser.Trace(), d))
		denseBytes += dense.MemoryBytes()
	}
	denseTime = time.Since(t1)

	runtime.GC()
	t2 := time.Now()
	for _, res := range results {
		trace := res.Browser.Trace()
		clocks := hb.NewClocks(res.Browser.HB)
		d := race.NewPairwise(clocks, race.LocHint(len(trace)/4))
		epochRaces += len(race.Replay(trace, d))
		epochBytes += clocks.MemoryBytes()
		mats += clocks.MaterializedClocks()
	}
	epochTime = time.Since(t2)

	fmt.Printf("== E4 ablation: happens-before representation (replay over %d recorded sites) ==\n", len(results))
	fmt.Printf("graph reachability:  %v, %d races, %s of memoized closures\n",
		graphTime.Round(time.Millisecond), graphRaces, kb(graphBytes))
	fmt.Printf("dense vector clocks: %v, %d races, %s of eager clocks (pre-epoch baseline)\n",
		denseTime.Round(time.Millisecond), denseRaces, kb(denseBytes))
	fmt.Printf("epoch vector clocks: %v, %d races, %s of clocks, %d of %d ops materialized\n",
		epochTime.Round(time.Millisecond), epochRaces, kb(epochBytes), mats, ops)
	if epochTime > 0 {
		fmt.Printf("epoch speedup: %.2fx vs dense construction+replay, clock memory %s -> %s\n",
			float64(denseTime)/float64(epochTime), kb(denseBytes), kb(epochBytes))
	}
	if graphRaces != denseRaces || graphRaces != epochRaces {
		fmt.Fprintf(os.Stderr, "WARNING: representations disagree (graph %d, dense %d, epoch %d)\n",
			graphRaces, denseRaces, epochRaces)
	}
	fmt.Println()
}

// runFaults is E8: deterministic fault injection over the fault corpus.
// Each site runs fault-free and under a full rotation of plans (five
// single-shape plans plus a mix, at three stepped fault rates); the table
// reports how many racing locations each rate tier exposes that the
// fault-free baseline cannot reach. Per-site sweeps run serially inside
// the per-site parallelism, so results are identical at any -workers.
func runFaults(seed int64) {
	const nSites, nPlans = 8, 18
	fmt.Printf("== E8: fault injection over %d fault-corpus sites (%d plans each) ==\n", nSites, nPlans)
	start := time.Now()
	rates := []float64{0.15, 0.35, 0.6}
	prog := &webracer.Progress{}
	stop := watchProgress("E8", prog)
	sweeps, err := pool.Map(pool.Options{Workers: workers, Counters: prog}, nSites, func(i int) *webracer.FaultSweep {
		cfg := webracer.DefaultConfig(seed + int64(i)*101)
		sweep, _ := webracer.RunFaultSweep(sitegen.Generate(sitegen.FaultSpec(i)), cfg,
			webracer.FaultSweepConfig{Plans: nPlans}, webracer.ParallelConfig{Workers: 1})
		return sweep
	})
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	baseline, perRate := 0, make([]int, len(rates))
	exposed, degraded, skipped := 0, 0, 0
	for _, sweep := range sweeps {
		if sweep == nil {
			continue
		}
		baseline += len(sweep.Runs[0].Races)
		exposed += len(sweep.NewlyExposed)
		degraded += len(sweep.Degraded)
		skipped += len(sweep.Skipped)
		base := map[string]bool{}
		for _, loc := range sweep.Runs[0].Races {
			base[loc] = true
		}
		for u, run := range sweep.Runs[1:] {
			tier := u / 6 % len(rates) // ForSeed's rate rotation
			seen := map[string]bool{}
			for _, loc := range run.Races {
				if !base[loc] && !seen[loc] {
					seen[loc] = true
				}
			}
			perRate[tier] += len(seen)
		}
	}
	fmt.Printf("fault-free baseline:  %4d racing location(s)\n", baseline)
	for t, rate := range rates {
		fmt.Printf("rate %.2f plans:      %4d fault-only location-hit(s) across 6 plans\n", rate, perRate[t])
	}
	fmt.Printf("distinct fault-exposed locations: %d (degraded %d, skipped %d)\n", exposed, degraded, skipped)
	fmt.Printf("(%s; same numbers at any -workers — every injection is a pure\n", sweepStats(nSites*(nPlans+1), time.Since(start)))
	fmt.Printf(" function of (plan seed, URL, fetch index). See EXPERIMENTS.md E8.)\n\n")
}

// runObs is E9: the deterministic telemetry layer. It re-runs the three
// golden sites (the paper's Fig. 1 and Fig. 4 plus one synthetic corpus
// site) with -metrics-style telemetry enabled and reprints the §6-style
// instrumentation table straight from the counter registry. With
// -metrics-dir the per-site snapshots are written using the same names as
// testdata/golden/metrics-*.json so scripts/metricsdiff.sh can diff them;
// with -trace, fig1's virtual-time Chrome trace is exported for Perfetto.
func runObs(seed int64, metricsDir, traceFile string) {
	cases := []struct {
		name string
		site *loader.Site
	}{
		{"fig1", sitegen.Fig1()},
		{"fig4", sitegen.Fig4()},
		{"sitegen-07", sitegen.Generate(sitegen.SpecFor(1, 7))},
	}
	fmt.Printf("== E9: deterministic telemetry over the %d golden sites ==\n", len(cases))
	cfg := webracer.DefaultConfig(seed)
	cfg.Telemetry = true
	results, err := webracer.RunCorpusParallel(len(cases), func(i int) *loader.Site {
		return cases[i].site
	}, cfg, webracer.ParallelConfig{Workers: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}

	cols := []struct{ header, key string }{
		{"ops", "browser.ops"},
		{"hb-nodes", "hb.nodes"},
		{"hb-edges", "hb.edges"},
		{"js-steps", "js.steps"},
		{"checks", "detector.checks"},
		{"epoch%", ""}, // computed below
		{"races", "race.reports"},
	}
	fmt.Printf("%-12s", "site")
	for _, c := range cols {
		fmt.Printf(" %9s", c.header)
	}
	fmt.Println()
	for i, res := range results {
		if res == nil || res.Metrics == nil {
			fmt.Fprintf(os.Stderr, "experiments: %s produced no metrics\n", cases[i].name)
			continue
		}
		snap := res.Metrics.Snapshot()
		fmt.Printf("%-12s", cases[i].name)
		for _, c := range cols {
			if c.header == "epoch%" {
				pct := 0.0
				if checks := snap["detector.checks"]; checks > 0 {
					pct = 100 * float64(snap["detector.epoch_hits"]) / float64(checks)
				}
				fmt.Printf(" %8.1f%%", pct)
				continue
			}
			fmt.Printf(" %9d", snap[c.key])
		}
		fmt.Println()
		if metricsDir != "" {
			path := metricsDir + "/metrics-" + cases[i].name + ".json"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				continue
			}
			if err := res.Metrics.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}
	}

	// The service layer's histogram export: the fixed golden workload must
	// produce byte-identical stable exports at workers 1 and 4 — the same
	// identity TestGoldenMetricsServe pins — and the snapshot joins the
	// metricsdiff gate as metrics-serve.json.
	sb1, err := serve.GoldenWorkload(1)
	if err == nil {
		var sb4 []byte
		if sb4, err = serve.GoldenWorkload(4); err == nil && !bytes.Equal(sb1, sb4) {
			err = fmt.Errorf("serve golden workload diverged across worker counts")
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	} else {
		fmt.Printf("serve workload: stable metrics export byte-identical at workers 1 and 4 (%dB)\n", len(sb1))
		if metricsDir != "" {
			if werr := os.WriteFile(metricsDir+"/metrics-serve.json", sb1, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", werr)
			}
		}
	}

	if traceFile != "" {
		res := webracer.Run(cases[0].site, webracer.WithSeed(seed), webracer.WithTimeTrace())
		f, err := os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		} else {
			if err := res.Trace.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			} else {
				fmt.Printf("(fig1 virtual-time trace written to %s — load in chrome://tracing or ui.perfetto.dev)\n", traceFile)
			}
		}
	}
	// The predictive detector carries its own counters
	// (race.predictive.{predicted,confirmed,witness_events}); pin them on
	// the schedule-dependent sched-00 page the E10 battery uses so
	// scripts/metricsdiff.sh covers that counter family too.
	pcfg := webracer.DefaultConfig(seed)
	pcfg.Telemetry = true
	pcfg.Detector = webracer.DetectorPredictive
	pres := webracer.RunConfig(sitegen.Generate(sitegen.SchedSpec(0)), pcfg)
	if pres.Metrics != nil {
		snap := pres.Metrics.Snapshot()
		fmt.Printf("%-12s predictive counters: %d predicted, %d confirmed, %d witness event(s)\n",
			"sched-00", snap["race.predictive.predicted"],
			snap["race.predictive.confirmed"], snap["race.predictive.witness_events"])
		if metricsDir != "" {
			path := metricsDir + "/metrics-sched-predictive.json"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			} else {
				if err := pres.Metrics.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}
		}
	}

	// The sampled tier's counters (race.sampled.*) are pinned on the same
	// corpus site the table above covers, at the default rate, so
	// scripts/metricsdiff.sh gates that counter family too.
	scfg := webracer.DefaultConfig(seed)
	scfg.Telemetry = true
	scfg.Detector = webracer.DetectorSampled
	sres := webracer.RunConfig(sitegen.Generate(sitegen.SpecFor(1, 7)), scfg)
	if sres.Metrics != nil {
		snap := sres.Metrics.Snapshot()
		fmt.Printf("%-12s sampled counters: rate %d%%, %d/%d locations sampled, %d hit(s), escalated %d\n",
			"sitegen-07", snap["race.sampled.rate_pct"], snap["race.sampled.sampled_locations"],
			snap["race.sampled.locations"], snap["race.sampled.hits"], snap["race.sampled.escalated"])
		if metricsDir != "" {
			path := metricsDir + "/metrics-sampled.json"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			} else {
				if err := sres.Metrics.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}
		}
	}

	// The pruning layer's counters (explore.classes.*) are pinned on a
	// pruned 16-seed sweep of the same sched-00 page, so
	// scripts/metricsdiff.sh gates that counter family too.
	var classes webracer.ClassStats
	if _, err := webracer.RunSeedsParallel(sitegen.Generate(sitegen.SchedSpec(0)),
		webracer.DefaultConfig(seed), 16,
		webracer.ParallelConfig{Workers: workers, Prune: true, Classes: &classes}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	} else {
		fmt.Printf("%-12s prune counters: %d executions, %d class(es), %d pruned\n",
			"sched-00", classes.Executions, classes.Distinct, classes.Pruned)
		if metricsDir != "" {
			m := obs.New()
			classes.Fold(m)
			path := metricsDir + "/metrics-sched-prune.json"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			} else {
				if err := m.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}
		}
	}

	fmt.Printf("(counters fold end-of-run state; identical bytes at any -workers and across runs.\n")
	fmt.Printf(" See EXPERIMENTS.md E9 and DESIGN.md \"Observability\".)\n\n")
}

// runPredictive is E10: single-trace predictive detection versus the
// K-seed sweep. For each fixture site it runs the 32-seed ground-truth
// sweep, then one predictive pass at the base seed, and tabulates how
// much of the sweep's racing-location set the single trace recovers —
// plus what prediction finds that no seed reached at all. Every predicted
// race is re-verified through its witness reordering, so the confirmed
// column doubles as a soundness check.
func runPredictive(seed int64) {
	cases := []struct {
		name string
		site *loader.Site
	}{
		{"fig1", sitegen.Fig1()},
		{"fig4", sitegen.Fig4()},
		{"sched-00", sitegen.Generate(sitegen.SchedSpec(0))},
		{"sched-01", sitegen.Generate(sitegen.SchedSpec(1))},
	}
	const sweepSeeds = 32
	fmt.Printf("== E10: predictive recall vs a %d-seed sweep ==\n", sweepSeeds)
	start := time.Now()
	fmt.Printf("%-12s %6s %6s %6s %7s %10s %10s %9s\n",
		"site", "sweep", "flaky", "recov", "recall", "predicted", "confirmed", "pred-only")
	for _, tc := range cases {
		rec, err := webracer.MeasureRecovery(tc.site, webracer.DefaultConfig(seed), sweepSeeds,
			webracer.ParallelConfig{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			continue
		}
		fmt.Printf("%-12s %6d %6d %6d %6.0f%% %10d %10d %9d\n",
			tc.name, len(rec.SweepLocations), len(rec.FlakyLocations), len(rec.Recovered),
			100*rec.Recall(), rec.Predicted, rec.Confirmed, len(rec.PredictedOnly))
	}
	fmt.Printf("(%s; recall counts sweep locations only, so predicted-only races\n",
		sweepStats(len(cases)*(sweepSeeds+1), time.Since(start)))
	fmt.Printf(" never inflate it. See EXPERIMENTS.md E10 and DESIGN.md \"Predictive detection\".)\n\n")
}

// runSampledTier is E11: what the sampled fast tier costs and recovers at
// each rate, against the exact detector's ground truth on the same corpus
// slice. Cost shows up as the fraction of locations shadowed and accesses
// checked; recovery as racing locations recalled (escalation re-runs a
// hit site exactly, so one cheap hit buys that site's full location set).
func runSampledTier(seed int64, n int) {
	if n > 50 {
		n = 50
	}
	gen := func(i int) *loader.Site { return sitegen.Generate(sitegen.SpecFor(seed, i)) }
	fmt.Printf("== E11: sampled tier cost vs recall over %d corpus sites ==\n", n)
	start := time.Now()

	exactCfg := webracer.DefaultConfig(seed)
	exactCfg.Detector = webracer.DetectorPairwiseVC
	exact, err := webracer.RunCorpusParallel(n, gen, exactCfg, webracer.ParallelConfig{Workers: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	perSite := make([]map[string]bool, n)
	exactLocs, racySites := 0, 0
	for i, res := range exact {
		perSite[i] = map[string]bool{}
		for _, r := range res.RawReports {
			perSite[i][r.Loc.String()] = true
		}
		exactLocs += len(perSite[i])
		if len(perSite[i]) > 0 {
			racySites++
		}
	}
	fmt.Printf("exact ground truth (pairwise-vc): %d racing location(s) on %d/%d sites\n",
		exactLocs, racySites, n)

	fmt.Printf("%-6s %9s %9s %6s %9s %8s %10s\n",
		"rate", "sampled%", "checked%", "hits", "escalate", "recall", "time")
	for _, rate := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		cfg := webracer.DefaultConfig(seed)
		cfg.Detector = webracer.DetectorSampled
		cfg.SampleRate = rate
		t0 := time.Now()
		results, err := webracer.RunCorpusParallel(n, gen, cfg, webracer.ParallelConfig{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return
		}
		var sampledLocs, totalLocs, checked, skipped int64
		hits, escalations, recovered := 0, 0, 0
		for i, res := range results {
			si := res.Sampled
			if si == nil {
				continue
			}
			sampledLocs += int64(si.Stats.SampledLocations)
			totalLocs += int64(si.Stats.Locations)
			checked += si.Stats.Checked
			skipped += si.Stats.Skipped
			hits += si.Hits
			if si.Escalated {
				escalations++
			}
			for _, r := range res.RawReports {
				if perSite[i][r.Loc.String()] {
					recovered++
				}
			}
		}
		recall := 100.0
		if exactLocs > 0 {
			recall = 100 * float64(recovered) / float64(exactLocs)
		}
		fmt.Printf("%-6.2f %8.1f%% %8.1f%% %6d %9d %7.0f%% %10v\n",
			rate, 100*float64(sampledLocs)/float64(totalLocs),
			100*float64(checked)/float64(checked+skipped),
			hits, escalations, recall, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("(%s; sampled reports are a subset of the exact detector's at every\n",
		sweepStats(n*6, time.Since(start)))
	fmt.Printf(" rate and byte-identical at rate 1.0 — tier_test.go asserts both.\n")
	fmt.Printf(" See EXPERIMENTS.md E11 and DESIGN.md \"Sampled tier\".)\n\n")
}

// runPrune is E12: HB-equivalence schedule pruning on the schedule- and
// fault-corpus seed sweeps, then E10's 32-seed recovery measurement rerun
// with the ground-truth sweep pruned. Every pruned aggregate is
// byte-compared against its unpruned twin in-process — the "identical"
// column is measured, not assumed — while the classes/passes columns show
// what the classification saved. A pruned sweep executes every schedule
// (cheaply: trace recorded, live race checking off) but pays the detector
// pass once per canonical trace class.
func runPrune(seed int64) {
	corpus := []struct {
		name  string
		site  *loader.Site
		seeds int
	}{
		{"sched-00", sitegen.Generate(sitegen.SchedSpec(0)), 16},
		{"sched-01", sitegen.Generate(sitegen.SchedSpec(1)), 16},
		{"fault-00", sitegen.Generate(sitegen.FaultSpec(0)), 16},
		{"fault-01", sitegen.Generate(sitegen.FaultSpec(1)), 16},
	}
	fmt.Printf("== E12: HB-equivalence schedule pruning ==\n")
	start := time.Now()
	fmt.Printf("%-12s %6s %8s %7s %7s %6s %10s\n",
		"site", "seeds", "classes", "passes", "saved", "races", "identical")
	runs := 0
	for _, tc := range corpus {
		cfg := webracer.DefaultConfig(seed)
		plain, err := webracer.RunSeedsParallel(tc.site, cfg, tc.seeds,
			webracer.ParallelConfig{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			continue
		}
		var stats webracer.ClassStats
		pruned, err := webracer.RunSeedsParallel(tc.site, cfg, tc.seeds,
			webracer.ParallelConfig{Workers: workers, Prune: true, Classes: &stats})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			continue
		}
		wantB, _ := json.Marshal(plain)
		gotB, _ := json.Marshal(pruned)
		passes := stats.Executions - stats.Pruned
		fmt.Printf("%-12s %6d %8d %7d %6.0f%% %6d %10v\n",
			tc.name, tc.seeds, stats.Distinct, passes,
			100*float64(stats.Pruned)/float64(stats.Executions),
			len(plain.Locations), bytes.Equal(wantB, gotB))
		runs += 2 * tc.seeds
	}

	fmt.Printf("E10's 32-seed recovery measurement, ground-truth sweep pruned:\n")
	fmt.Printf("%-12s %7s %8s %7s %7s %10s\n",
		"site", "recall", "classes", "passes", "saved", "identical")
	recovery := []struct {
		name string
		site *loader.Site
	}{
		{"fig1", sitegen.Fig1()},
		{"fig4", sitegen.Fig4()},
		{"sched-00", sitegen.Generate(sitegen.SchedSpec(0))},
		{"sched-01", sitegen.Generate(sitegen.SchedSpec(1))},
	}
	const sweepSeeds = 32
	for _, tc := range recovery {
		plain, err := webracer.MeasureRecovery(tc.site, webracer.DefaultConfig(seed), sweepSeeds,
			webracer.ParallelConfig{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			continue
		}
		var stats webracer.ClassStats
		pruned, err := webracer.MeasureRecovery(tc.site, webracer.DefaultConfig(seed), sweepSeeds,
			webracer.ParallelConfig{Workers: workers, Prune: true, Classes: &stats})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			continue
		}
		wantB, _ := json.Marshal(plain)
		gotB, _ := json.Marshal(pruned)
		passes := stats.Executions - stats.Pruned
		fmt.Printf("%-12s %6.0f%% %8d %7d %6.0f%% %10v\n",
			tc.name, 100*pruned.Recall(), stats.Distinct, passes,
			100*float64(stats.Pruned)/float64(stats.Executions), bytes.Equal(wantB, gotB))
		runs += 2 * (sweepSeeds + 1)
	}
	fmt.Printf("(%s; identical=true is the union AND the per-seed counts, byte-compared.\n",
		sweepStats(runs, time.Since(start)))
	fmt.Printf(" See EXPERIMENTS.md E12 and DESIGN.md \"Schedule pruning\".)\n\n")
}
