// Command webracer runs the race detector over a web site stored on disk:
// a directory whose files are the site's resources (index.html plus any
// scripts, frames and images it references by relative URL).
//
// Usage:
//
//	webracer [flags] <site-dir>
//
//	-entry index.html   entry page
//	-seed 1             simulation seed
//	-explore            automatic exploration after load (default true)
//	-filters            apply the §5.3 report filters
//	-harm               classify harmful races via the adversarial replay
//	-detector pairwise  pairwise | pairwise-vc | accessset | predictive | sampled
//	-rate R             sampled tier location sampling rate in (0, 1] (default 0.25)
//	-seeds N            run under N seeds and report the union of races
//	-prune              one detector pass per canonical trace class in -seeds sweeps
//	-faults N           also sweep N deterministic fault plans (error-path races)
//	-fault-seed S       base seed for fault-plan derivation (default: -seed)
//	-timeout D          per-run wall-clock budget (tripped runs degrade, not fail)
//	-workers N          parallel workers for -seeds / -faults / -harm sweeps
//	-metrics F          write the run's deterministic telemetry counters as JSON to F
//	-trace F            write a virtual-time Chrome trace (chrome://tracing) to F
//	-pprof P            write P.cpu.pprof and P.heap.pprof profiles
//	-progress           print live sweep progress (done/total, rate, ETA) to stderr
//	-live ADDR          serve live /progress and /metrics JSON on ADDR
//	-v                  also print page errors and console output
//
// Exit status is 1 when races are found (useful in CI for your own site).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"webracer"
	"webracer/internal/fault"
	"webracer/internal/loader"
	"webracer/internal/obs"
	"webracer/internal/report"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred cleanups (profile stop, live
// server shutdown, progress printer) always execute.
func run() int {
	var (
		entry     = flag.String("entry", "index.html", "entry page within the site directory")
		seed      = flag.Int64("seed", 1, "simulation seed")
		expl      = flag.Bool("explore", true, "simulate user interactions after load (§5.2.2)")
		filters   = flag.Bool("filters", false, "apply the §5.3 report filters")
		harm      = flag.Bool("harm", false, "classify harmful races (adversarial replay)")
		detector  = flag.String("detector", "pairwise", "race detector: pairwise | pairwise-vc | accessset | predictive | sampled")
		rate      = flag.Float64("rate", 0, "sampled tier location sampling rate in (0, 1]; 0 means the default (requires -detector sampled)")
		verbose   = flag.Bool("v", false, "print page errors and console output")
		dotFile   = flag.String("dot", "", "write the happens-before graph in Graphviz DOT form to this file")
		jsonFile  = flag.String("json", "", "write the full session (ops, edges, races) as JSON to this file")
		long      = flag.Bool("long", false, "detailed multi-line report format")
		advise    = flag.Bool("advise", false, "print a suggested remediation for each race")
		exhaust   = flag.Bool("exhaustive", false, "feedback-directed exploration rounds (deeper than §5.2.2)")
		seeds     = flag.Int("seeds", 1, "run under N seeds and report the union of races")
		prune     = flag.Bool("prune", false, "HB-equivalence schedule pruning for -seeds sweeps: one detector pass per canonical trace class (same result bytes; requires a trace-replayable detector)")
		faults    = flag.Int("faults", 0, "also sweep N deterministic fault plans and report error-path races")
		faultSeed = flag.Int64("fault-seed", 0, "base seed for the fault-plan derivation (default: -seed)")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock budget; tripped runs report partial results as degraded")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel workers for seed sweeps, fault sweeps and harm replays (results are identical at any count)")
		metricsF  = flag.String("metrics", "", "write the run's deterministic telemetry counters as JSON to this file")
		traceF    = flag.String("trace", "", "write a virtual-time Chrome trace (load in chrome://tracing or Perfetto) to this file")
		pprofP    = flag.String("pprof", "", "write CPU and heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
		progress  = flag.Bool("progress", false, "print live sweep progress (done/total, rate, ETA) to stderr during -seeds/-faults/-harm sweeps")
		liveAddr  = flag.String("live", "", "serve live /progress and /metrics JSON on this address (e.g. localhost:8077)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: webracer [flags] <site-dir>")
		flag.PrintDefaults()
		return 2
	}
	dir := flag.Arg(0)
	site, err := loader.LoadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webracer:", err)
		return 2
	}

	if *pprofP != "" {
		finish, err := obs.Profile(*pprofP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		defer func() {
			if err := finish(); err != nil {
				fmt.Fprintln(os.Stderr, "webracer:", err)
			}
		}()
	}

	opts := []webracer.Option{
		webracer.WithSeed(*seed),
		webracer.WithExplore(*expl),
		webracer.WithEntry(*entry),
	}
	if *exhaust {
		opts = append(opts, webracer.WithExhaustive())
	}
	if *filters {
		opts = append(opts, webracer.WithFilters())
	}
	if *timeout > 0 {
		opts = append(opts, webracer.WithTimeout(*timeout))
	}
	if *metricsF != "" || *liveAddr != "" {
		opts = append(opts, webracer.WithTelemetry())
	}
	if *traceF != "" {
		opts = append(opts, webracer.WithTimeTrace())
	}
	kind, err := webracer.ParseDetector(*detector)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts = append(opts, webracer.WithDetector(kind))
	if *rate != 0 {
		opts = append(opts, webracer.WithSampleRate(*rate))
	}
	cfg := webracer.NewConfig(opts...)
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	pcfg := webracer.ParallelConfig{Workers: *workers}
	var counters *webracer.Progress
	if *progress || *liveAddr != "" {
		counters = &webracer.Progress{}
		pcfg.Progress = counters
	}

	res := webracer.RunConfig(site, cfg)

	if *liveAddr != "" {
		url, stopLive, err := obs.StartLive(*liveAddr, func() map[string]any {
			s := counters.Snapshot()
			return map[string]any{
				"total": s.Total, "done": s.Done, "inFlight": s.InFlight,
				"perSecond": s.PerSecond, "elapsedMS": s.Elapsed.Milliseconds(),
			}
		}, res.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		defer stopLive()
		fmt.Fprintf(os.Stderr, "live progress at %s/progress and %s/metrics\n", url, url)
	}
	if *progress {
		stop := startProgressPrinter(counters)
		defer stop()
	}

	var harmful *webracer.Harm
	if *harm {
		var err error
		harmful, err = webracer.ClassifyHarmfulParallel(site, cfg, res, pcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
	}
	if *seeds > 1 {
		scfg := pcfg
		var classes webracer.ClassStats
		if *prune {
			scfg.Prune = true
			scfg.Classes = &classes
		}
		sweep, err := webracer.RunSeedsParallel(site, cfg, *seeds, scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		stable, flaky := sweep.Stable()
		fmt.Printf("seed sweep (%d seeds): %d location(s) stable, %d schedule-dependent\n",
			*seeds, len(stable), len(flaky))
		for _, loc := range flaky {
			fmt.Printf("  schedule-dependent: %s (%d/%d seeds)\n",
				loc, sweep.Locations[loc], sweep.Seeds)
		}
		if *prune {
			fmt.Printf("  pruning: %d executions in %d trace class(es), %d detector pass(es) skipped\n",
				classes.Executions, classes.Distinct, classes.Pruned)
		}
	} else if *prune {
		fmt.Fprintln(os.Stderr, "webracer: -prune needs a -seeds sweep (N > 1)")
		return 2
	}

	if *faults > 0 {
		fc := webracer.FaultSweepConfig{Plans: *faults}
		if *faultSeed != 0 {
			base := *faultSeed
			fc.PlanFor = func(i int) fault.Plan { return fault.ForSeed(base, i) }
		}
		sweep, err := webracer.RunFaultSweep(site, cfg, fc, pcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		fmt.Printf("fault sweep (%d plans): %d location(s) total, %d only under faults\n",
			*faults, len(sweep.Locations), len(sweep.NewlyExposed))
		for _, loc := range sweep.NewlyExposed {
			fmt.Printf("  fault-exposed: %s (%d/%d runs)\n", loc, sweep.Locations[loc], len(sweep.Runs))
		}
		for _, d := range sweep.Degraded {
			fmt.Printf("  degraded: %s\n", d)
		}
		for _, s := range sweep.Skipped {
			fmt.Printf("  skipped: %s\n", s)
		}
	}

	fmt.Printf("%s: %d operations, %d race(s)", dir, res.Ops, len(res.Reports))
	if *filters {
		fmt.Printf(" after filtering (%d raw)", len(res.RawReports))
	}
	fmt.Println()
	if si := res.Sampled; si != nil {
		if si.Escalated {
			fmt.Printf("  sampled tier: rate %.2f, %d hit(s) — escalated to %s, reports above are exact\n",
				si.Rate, si.Hits, webracer.EscalationDetector)
		} else {
			fmt.Printf("  sampled tier: rate %.2f, checked %d/%d locations, no hits\n",
				si.Rate, si.Stats.SampledLocations, si.Stats.Locations)
		}
	}
	if p := res.Predictive; p != nil {
		fmt.Printf("  predictive: %d observed, %d predicted beyond the observed schedule (%d/%d witnesses confirmed)\n",
			p.Stats.Observed, p.Stats.Predicted, p.Stats.Confirmed, p.Stats.Predicted)
		predicted := map[string]bool{}
		for _, pr := range p.Reports {
			if pr.Predicted {
				predicted[pr.Loc.String()] = true
			}
		}
		for _, r := range res.Reports {
			if predicted[r.Loc.String()] {
				fmt.Printf("  predicted race needs a reordering: %s\n", r.Loc)
			}
		}
	}
	if *long {
		var hf []bool
		if harmful != nil {
			hf = harmful.Harmful
		}
		if err := report.Format(os.Stdout, res.Reports, res.Browser.Ops, hf); err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
		}
	} else {
		for i, r := range res.Reports {
			tag := ""
			if harmful != nil && harmful.Harmful[i] {
				tag = "  [HARMFUL]"
			}
			fmt.Printf("  %-14s %s%s\n", report.Classify(r).String()+":", r, tag)
			if *advise {
				fmt.Printf("     fix: %s\n", report.Advise(r))
			}
		}
	}
	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		sess := webracer.Export(res, *seed, harmful, false)
		if err := sess.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
		}
		f.Close()
		fmt.Printf("session written to %s\n", *jsonFile)
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		if err := res.Browser.HB.WriteDOT(f, res.Browser.Ops); err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
		}
		f.Close()
		fmt.Printf("happens-before graph written to %s\n", *dotFile)
	}
	if *metricsF != "" {
		if err := writeMetrics(*metricsF, res); err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		fmt.Printf("metrics written to %s\n", *metricsF)
	}
	if *traceF != "" {
		if err := writeTrace(*traceF, res); err != nil {
			fmt.Fprintln(os.Stderr, "webracer:", err)
			return 2
		}
		fmt.Printf("virtual-time trace written to %s\n", *traceF)
	}
	if harmful != nil {
		for _, ev := range harmful.Evidence {
			fmt.Println("  evidence:", ev)
		}
	}
	if *verbose {
		for _, e := range res.Errors {
			fmt.Println("  page error:", e)
		}
		for _, line := range res.Browser.Console {
			fmt.Println("  console:", line)
		}
		st := res.Browser.Stats()
		fmt.Printf("  stats: %d ops, %d hb-edges, %d tasks, %.1fms virtual, %d window(s), %d fetch(es)\n",
			st.Ops, st.Edges, st.TasksRun, st.VirtualTime, st.Windows, st.Fetches)
	}
	if len(res.Reports) > 0 {
		return 1
	}
	return 0
}

func writeMetrics(path string, res *webracer.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Metrics.WriteJSON(f)
}

func writeTrace(path string, res *webracer.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Trace.WriteJSON(f)
}

// startProgressPrinter prints sweep progress (fed by the shared
// pool.Counters; each sweep re-arms them with its own total) to stderr
// twice a second. The returned stop func ends the printer and terminates
// the status line.
func startProgressPrinter(c *webracer.Progress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		printed := false
		for {
			select {
			case <-done:
				if printed {
					fmt.Fprintln(os.Stderr)
				}
				return
			case <-tick.C:
				s := c.Snapshot()
				if s.Total == 0 {
					continue
				}
				eta := "?"
				if s.PerSecond > 0 && s.Done <= s.Total {
					left := float64(s.Total-s.Done) / s.PerSecond
					eta = (time.Duration(left * float64(time.Second))).Truncate(100 * time.Millisecond).String()
				}
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d done, %d in flight, %.1f runs/s, eta %s   ",
					s.Done, s.Total, s.InFlight, s.PerSecond, eta)
				printed = true
			}
		}
	}()
	return func() { close(done); <-finished }
}
