// Papergallery runs the paper's five motivating examples (Figures 1–5)
// through the detector and shows, for each, the race the paper describes.
//
//	go run ./examples/papergallery
package main

import (
	"fmt"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
)

type figure struct {
	name string
	desc string
	site *loader.Site
	want report.Type
}

func figures() []figure {
	return []figure{
		{
			name: "Figure 1 — variable race between iframes",
			desc: "a.html writes x while b.html reads it; the frames load in either order",
			want: report.Variable,
			site: loader.NewSite("fig1").
				Add("index.html", `<script>x = 1;</script>
<iframe src="a.html"></iframe>
<iframe src="b.html"></iframe>`).
				Add("a.html", `<script>x = 2;</script>`).
				Add("b.html", `<script>alert(x);</script>`),
		},
		{
			name: "Figure 2 — form value race (southwest.com)",
			desc: "a late script overwrites whatever the user typed into the box",
			want: report.Variable,
			site: loader.NewSite("fig2").
				Add("index.html", `<input type="text" id="depart" />
<script>document.getElementById("depart").value = "City of Departure";</script>`),
		},
		{
			name: "Figure 3 — HTML race (valero.com)",
			desc: "clicking Send Email dereferences a div parsed later in the page",
			want: report.HTML,
			site: loader.NewSite("fig3").
				Add("index.html", `
<script>
function show(emailTo) {
  var v = document.getElementById("dw");
  v.style.display = "block";
}
</script>
<a href="javascript:show('x@x.com')">Send Email</a>
<div id="dw" style="display:none">email form</div>`),
		},
		{
			name: "Figure 4 — function race (Mozilla unit test)",
			desc: "an iframe's onload schedules doNextStep before its declaring script parses",
			want: report.Function,
			site: loader.NewSite("fig4").
				Add("index.html", `
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
<script>function doNextStep() { done = 1; }</script>`).
				Add("sub.html", `<p>nested</p>`),
		},
		{
			name: "Figure 5 — event dispatch race",
			desc: "the iframe's load may fire before the script installs its onload handler",
			want: report.EventDispatch,
			site: loader.NewSite("fig5").
				Add("index.html", `
<iframe id="i" src="a.html"></iframe>
<script>document.getElementById("i").onload = function() { ran = 1; };</script>`).
				Add("a.html", `<p>nested</p>`),
		},
	}
}

func main() {
	for _, f := range figures() {
		fmt.Println(f.name)
		fmt.Println("  ", f.desc)
		res := webracer.Run(f.site, webracer.WithSeed(1))
		found := false
		for _, r := range res.Reports {
			if report.Classify(r) == f.want {
				fmt.Printf("   ✓ detected: %s\n", r)
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("   ✗ NOT detected (%d other reports)\n", len(res.Reports))
		}
		fmt.Println()
	}
}
