// Quickstart: detect a race in a ten-line page.
//
// The page sets a text box's hint value from a script that loads after the
// box — the Southwest lost-input bug of the paper's Fig. 2. Automatic
// exploration types into the box; the detector reports the write-write race
// on the box's value.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
)

func main() {
	site := loader.NewSite("quickstart").Add("index.html", `
<html><body>
  <input type="text" id="depart" />
  <p>...the rest of the page takes a while to arrive...</p>
  <script>
    document.getElementById("depart").value = "City of Departure";
  </script>
</body></html>`)

	res := webracer.Run(site, webracer.WithSeed(1))

	fmt.Printf("loaded %q: %d operations, %d race(s)\n\n", res.Site, res.Ops, len(res.Reports))
	for _, r := range res.Reports {
		fmt.Printf("%-13s %s\n", report.Classify(r).String()+" race:", r.Loc)
		fmt.Printf("   first:  %s\n", r.Prior)
		fmt.Printf("   second: %s\n\n", r.Current)
	}

	// The harm oracle re-runs the page with an eager user and a slow
	// network and watches for erased input.
	h := webracer.ClassifyHarmful(site, webracer.DefaultConfig(1), res)
	fmt.Printf("harmful races: %d\n", h.Total())
	for _, e := range h.Evidence {
		fmt.Println("  ", e)
	}
}
