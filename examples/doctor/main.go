// Doctor runs the full diagnostic pipeline on one page: detect races,
// classify harmfulness via adversarial replay, validate each race by
// observing both access orders across perturbed schedules, and print a
// suggested remediation — the tooling workflow §9 sketches as future work
// ("further automating the detection and possibly remediation of data
// races in Web applications").
//
//	go run ./examples/doctor
package main

import (
	"fmt"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
)

func site() *loader.Site {
	return loader.NewSite("clinic").
		Add("index.html", `
<html><body>
  <input type="text" id="search" />
  <div id="hero" onmouseover="rotateHero();">promo</div>
  <a href="javascript:openHelp()">Help</a>

  <script src="widgets.js" async="true"></script>
  <script>
    function openHelp() {
      document.getElementById("helppanel").style.display = "block";
    }
    document.getElementById("search").value = "What are you looking for?";
  </script>

  <div id="helppanel" style="display:none">help text</div>
</body></html>`).
		Add("widgets.js", `function rotateHero() { heroRotations = (typeof heroRotations == 'undefined') ? 1 : heroRotations + 1; }`)
}

func main() {
	cfg := webracer.DefaultConfig(1)
	cfg.Filters = true
	cfg.HarmRuns = 2

	res := webracer.RunConfig(site(), cfg)
	harm := webracer.ClassifyHarmful(site(), cfg, res)

	fmt.Printf("%s: %d race(s) after filtering (%d raw), %d harmful\n\n",
		res.Site, len(res.Reports), len(res.RawReports), harm.Total())

	for i, r := range res.Reports {
		status := "benign"
		if harm.Harmful[i] {
			status = "HARMFUL"
		}
		v := webracer.ValidateRace(site(), cfg, r, 6)
		fmt.Printf("%d. %s race on %s  [%s]\n", i+1, report.Classify(r), r.Loc, status)
		fmt.Printf("   pair:      %s  ↔  %s\n", r.Prior.Desc, r.Current.Desc)
		fmt.Printf("   schedules: %s\n", v)
		fmt.Printf("   fix:       %s\n\n", report.Advise(r))
	}

	st := res.Browser.Stats()
	fmt.Printf("session: %d ops (%d parse, %d script, %d handler), %d happens-before edges, %.1fms virtual time\n",
		st.Ops, st.OpsByKind["parse"], st.OpsByKind["exe"], st.OpsByKind["handler"],
		st.Edges, st.VirtualTime)
}
