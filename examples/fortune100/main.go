// Fortune100 runs the detector over the synthetic corpus — the stand-in
// for the paper's Fortune 100 home-page study (§6) — and prints a compact
// per-site report plus Table-1-style aggregates.
//
//	go run ./examples/fortune100 [-sites 20] [-seed 1] [-filters]
package main

import (
	"flag"
	"fmt"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
	"webracer/internal/sitegen"
)

func main() {
	sites := flag.Int("sites", 20, "number of synthetic sites")
	seed := flag.Int64("seed", 1, "corpus seed")
	filters := flag.Bool("filters", false, "apply the §5.3 filters")
	flag.Parse()

	cfg := webracer.DefaultConfig(*seed)
	cfg.Filters = *filters
	results := webracer.RunCorpus(*sites, func(i int) *loader.Site {
		return sitegen.Generate(sitegen.SpecFor(*seed, i))
	}, cfg)

	counts := make([]report.Counts, len(results))
	fmt.Printf("%-28s %6s %6s %6s %6s %6s\n", "site", "HTML", "Func", "Var", "Disp", "errs")
	for i, res := range results {
		counts[i] = res.Counts
		c := res.Counts
		fmt.Printf("%-28s %6d %6d %6d %6d %6d\n", res.Site,
			c.Of(report.HTML), c.Of(report.Function), c.Of(report.Variable),
			c.Of(report.EventDispatch), len(res.Errors))
	}

	t1 := report.BuildTable1(counts)
	fmt.Printf("\n%-15s %8s %8s %6s\n", "aggregate", "mean", "median", "max")
	for _, name := range []string{"HTML", "Function", "Variable", "EventDispatch", "All"} {
		s := t1.Rows[name]
		fmt.Printf("%-15s %8.1f %8.1f %6d\n", name, s.Mean, s.Median, s.Max)
	}
}
