// Cigate shows the developer workflow the paper anticipates ("we expect
// WEBRACER to be even more effective for a developer debugging her own
// site"): gate a site's CI on harmful races.
//
// The example analyzes two versions of the same page — a buggy one and the
// fixed one — produces a session file for each, diffs them, and exits
// non-zero if the current version still has harmful races:
//
//	go run ./examples/cigate
package main

import (
	"fmt"
	"os"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
)

func buggy() *loader.Site {
	return loader.NewSite("shop-v1").Add("index.html", `
<a href="javascript:openCart()">Cart</a>
<script>
function openCart() {
  var p = document.getElementById("cartpanel");
  p.style.display = "block";
}
</script>
<p>... products ...</p>
<div id="cartpanel" style="display:none">cart</div>`)
}

// fixed repairs both races v1 carries: the script moves above the link so
// openCart is always declared before any click (no function race can be
// harmful), and the handler guards the panel lookup (no crash if the panel
// has not parsed).
func fixed() *loader.Site {
	return loader.NewSite("shop-v2").Add("index.html", `
<script>
function openCart() {
  var p = document.getElementById("cartpanel");
  if (p == null) { return; } // guard: panel may not have parsed yet
  p.style.display = "block";
}
</script>
<a href="javascript:openCart()">Cart</a>
<p>... products ...</p>
<div id="cartpanel" style="display:none">cart</div>`)
}

// analyze runs detection + harm classification and returns the session.
func analyze(site *loader.Site) (*webracer.Session, int) {
	cfg := webracer.DefaultConfig(1)
	cfg.Filters = true
	res := webracer.RunConfig(site, cfg)
	harm := webracer.ClassifyHarmful(site, cfg, res)
	return webracer.Export(res, cfg.Seed, harm, false), harm.Total()
}

func main() {
	before, harmfulBefore := analyze(buggy())
	after, harmfulAfter := analyze(fixed())

	fmt.Printf("v1 (%s): %d race(s), %d harmful\n", before.Site, len(before.Races), harmfulBefore)
	for _, r := range before.Races {
		mark := ""
		if r.Harmful != nil && *r.Harmful {
			mark = "  [HARMFUL]"
		}
		fmt.Printf("   %-13s %s%s\n", r.Type, r.Loc, mark)
	}
	fmt.Printf("v2 (%s): %d race(s), %d harmful\n", after.Site, len(after.Races), harmfulAfter)
	for _, r := range after.Races {
		fmt.Printf("   %-13s %s\n", r.Type, r.Loc)
	}

	gone, introduced := webracer.DiffRaces(before, after)
	fmt.Printf("\ndiff v1 → v2: %d race location(s) fixed, %d introduced\n", len(gone), len(introduced))
	for _, loc := range gone {
		fmt.Println("   fixed:", loc)
	}

	// The guard makes the race harmless, though the happens-before race
	// remains reported (data-dependence synchronization, §6.3); the gate
	// keys on harmfulness.
	if harmfulAfter > 0 {
		fmt.Println("\nCI gate: FAIL — harmful races remain")
		os.Exit(1)
	}
	fmt.Println("\nCI gate: PASS — remaining races are benign",
		"("+report.Summary(countsOf(after))+")")
}

func countsOf(s *webracer.Session) report.Counts {
	var c report.Counts
	for _, r := range s.Races {
		for _, t := range report.Types {
			if t.String() == r.Type {
				c[t]++
			}
		}
	}
	return c
}
