// Explorer demonstrates the effect of automatic exploration (§5.2.2): the
// same page is analyzed twice, once with a passive load and once with
// simulated user interaction, showing which races only a user can expose —
// exactly the paper's observation that "our automatic exploration was key
// to exposing these races."
//
//	go run ./examples/explorer
package main

import (
	"fmt"

	"webracer"
	"webracer/internal/loader"
	"webracer/internal/report"
)

func site() *loader.Site {
	return loader.NewSite("interactive-shop").
		Add("index.html", `
<html><body>
  <input type="text" id="q" placeholder="search" />
  <div id="nav" onmouseover="openDropdown();">Departments</div>
  <a href="javascript:openCart()">Cart</a>

  <p>featured products ...</p>

  <script src="widgets.js" async="true"></script>
  <script>
    function openCart() {
      var panel = document.getElementById("cartpanel");
      panel.style.display = "block";
    }
    document.getElementById("q").value = "search our store";
  </script>

  <div id="cartpanel" style="display:none">cart contents</div>
</body></html>`).
		Add("widgets.js", `function openDropdown() { dropdownOpen = 1; }`)
}

func main() {
	passive := webracer.Config{Seed: 1, Explore: false}
	active := webracer.DefaultConfig(1)

	quiet := webracer.RunConfig(site(), passive)
	loud := webracer.RunConfig(site(), active)

	fmt.Printf("passive load:         %d race(s)\n", len(quiet.Reports))
	for _, r := range quiet.Reports {
		fmt.Printf("   %-13s %s\n", report.Classify(r), r.Loc)
	}
	fmt.Printf("\nwith exploration:     %d race(s)  (%d events, %d links, %d fields)\n",
		len(loud.Reports), loud.ExploreStats.EventsDispatched,
		loud.ExploreStats.LinksClicked, loud.ExploreStats.FieldsTyped)
	for _, r := range loud.Reports {
		fmt.Printf("   %-13s %s\n", report.Classify(r), r.Loc)
	}

	fmt.Println("\nraces only user interaction exposes:")
	seen := map[string]bool{}
	for _, r := range quiet.Reports {
		seen[r.Loc.String()] = true
	}
	for _, r := range loud.Reports {
		if !seen[r.Loc.String()] {
			fmt.Printf("   %-13s %s\n", report.Classify(r), r.Loc)
		}
	}
}
