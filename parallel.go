package webracer

import (
	"context"

	"webracer/internal/loader"
	"webracer/internal/pool"
)

// ParallelConfig tunes the parallel sweep engine. Every sweep unit — one
// (site, seed) simulation — is a self-contained deterministic
// computation: each Run builds its own browser, loader, interpreter and
// seeded RNGs and never touches package-level mutable state, so sweeps
// shard over workers without changing any result. The engine guarantees
// results are aggregated in input order regardless of completion order;
// a sweep at Workers == 8 is byte-for-byte identical to Workers == 1
// (parallel_test.go proves this on exported sessions).
type ParallelConfig struct {
	// Workers is the number of concurrent simulations; values < 1 mean
	// runtime.NumCPU(). Workers == 1 runs inline on the calling
	// goroutine — the exact serial path.
	Workers int
	// Ctx cancels a sweep early (nil means context.Background());
	// the sweep returns what was aggregated up to the cancellation
	// point together with the context error.
	Ctx context.Context
	// Progress, when non-nil, is updated live with per-worker
	// completion counters and throughput (see Progress.Snapshot).
	Progress *Progress
	// Prune enables HB-equivalence schedule pruning for the seed and
	// delay-one sweeps: every unit still executes (cheaply — trace
	// recorded, live race checking off), each execution is classified
	// by its canonical HB-trace fingerprint (internal/canon), and the
	// detector pass runs once per distinct class; repeats reuse their
	// class's verdict. The aggregate is byte-identical to the unpruned
	// sweep at any worker count. Requires a trace-replayable detector —
	// pairwise, accessset or pairwise-vc; the drivers return
	// ErrPruneDetector otherwise. See DESIGN.md "Schedule pruning".
	Prune bool
	// Classes, when non-nil with Prune set, receives the sweep's
	// pruning summary (executions, distinct classes, pruned detector
	// passes, steering decisions) — the same numbers the
	// explore.classes.* counters export.
	Classes *ClassStats
}

// Progress exposes live per-worker sweep counters; see pool.Counters.
type Progress = pool.Counters

// ProgressSnapshot is a point-in-time view of a sweep's progress.
type ProgressSnapshot = pool.Snapshot

func (p ParallelConfig) opts() pool.Options {
	return pool.Options{Workers: p.Workers, Ctx: p.Ctx, Counters: p.Progress}
}

// RunCorpusParallel is RunCorpus sharded over p.Workers: site i still runs
// with seed cfg.Seed + i*101 and results land at their input index, so
// the output equals the serial RunCorpus exactly. gen must be safe for
// concurrent calls (sitegen.Generate is: it is a pure function of its
// spec).
func RunCorpusParallel(n int, gen func(i int) *loader.Site, cfg Config, p ParallelConfig) ([]*Result, error) {
	return pool.Map(p.opts(), n, func(i int) *Result {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*101
		return RunConfig(gen(i), c)
	})
}

// RunSeedsParallel is RunSeeds sharded over p.Workers. Per-seed results
// are folded into the sweep in seed order under a bounded window, so the
// aggregate is identical to the serial sweep while holding only O(window)
// results in memory. With p.Prune set, HB-equivalent seeds share one
// detector pass (see ParallelConfig.Prune) and the aggregate is still
// byte-identical.
func RunSeedsParallel(site *loader.Site, cfg Config, n int, p ParallelConfig) (*SeedSweep, error) {
	if p.Prune {
		return runSeedsPruned(site, cfg, n, p)
	}
	sweep := &SeedSweep{Locations: map[string]int{}, Seeds: n}
	err := pool.Each(p.opts(), n,
		func(i int) *Result {
			c := cfg
			c.Seed = cfg.Seed + int64(i)*7919
			return RunConfig(site, c)
		},
		func(i int, res *Result) error {
			sweep.PerSeed = append(sweep.PerSeed, len(res.Reports))
			seen := map[string]bool{}
			for _, r := range res.Reports {
				key := r.Loc.String()
				if !seen[key] {
					seen[key] = true
					sweep.Locations[key]++
				}
			}
			return nil
		})
	return sweep, err
}

// ExploreSchedulesParallel is ExploreSchedules sharded over p.Workers:
// the baseline run and every delay-one perturbation are independent
// simulations, executed concurrently and folded in the serial order
// (baseline first, then URLs sorted), so ByLocation, NewlyExposed and
// Reports are identical to the serial sweep. With p.Prune set,
// perturbations that land in an already-explored trace class skip their
// detector pass and the fold counts which perturbations steering would
// prioritize (see ParallelConfig.Prune).
func ExploreSchedulesParallel(site *loader.Site, cfg Config, p ParallelConfig) (*ScheduleSweep, error) {
	if p.Prune {
		return exploreSchedulesPruned(site, cfg, p)
	}
	urls := resourceURLs(site)

	sweep := &ScheduleSweep{ByLocation: map[string][]string{}}
	seenLoc := map[string]bool{}
	record := func(label string, res *Result) {
		for _, r := range res.Reports {
			key := r.Loc.String()
			sweep.ByLocation[key] = append(sweep.ByLocation[key], label)
			if !seenLoc[key] {
				seenLoc[key] = true
				sweep.Reports = append(sweep.Reports, r)
			}
		}
	}

	// Unit 0 is the baseline; unit i+1 slows urls[i] pathologically.
	err := pool.Each(p.opts(), 1+len(urls),
		func(i int) *Result {
			if i == 0 {
				return RunConfig(site, cfg)
			}
			c := cfg
			c.Seed = cfg.Seed + 1 // keep jitter stable; the override is the perturbation
			c.Browser.Latency = slowOne(c.Browser.Latency, urls[i-1])
			return RunConfig(site, c)
		},
		func(i int, res *Result) error {
			sweep.Runs++
			if i == 0 {
				sweep.Baseline = res
				record("", res)
			} else {
				record("slow:"+urls[i-1], res)
			}
			return nil
		})

	finishScheduleSweep(sweep)
	return sweep, err
}

// slowOne returns lat with url's latency overridden to a pathological
// 2000ms, preserving other per-URL overrides.
func slowOne(lat loader.Latency, url string) loader.Latency {
	if lat.Base == 0 && lat.PerURL == nil {
		lat = loader.DefaultLatency()
	}
	per := map[string]float64{url: 2_000}
	for k, v := range lat.PerURL {
		if k != url {
			per[k] = v
		}
	}
	lat.PerURL = per
	return lat
}

// ClassifyHarmfulParallel is ClassifyHarmful with the cfg.HarmRuns
// adversarial replays sharded over p.Workers. Each replay is an
// independent simulation; judging folds in replay order, so the
// first-evidence-wins semantics (and therefore Harmful, Counts and
// Evidence) match the serial oracle exactly.
func ClassifyHarmfulParallel(site *loader.Site, cfg Config, res *Result, p ParallelConfig) (*Harm, error) {
	runs := cfg.HarmRuns
	if runs <= 0 {
		runs = 1
	}
	h := &Harm{Harmful: make([]bool, len(res.Reports))}
	err := pool.Each(p.opts(), runs,
		func(n int) *adversary {
			c := cfg
			c.Seed = cfg.Seed + int64(n)*104729
			return runAdversarial(site, c)
		},
		func(n int, adv *adversary) error {
			h.judge(adv, res)
			return nil
		})
	return h, err
}
