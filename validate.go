package webracer

import (
	"fmt"

	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/race"
)

// Validation is the outcome of re-running a site under perturbed schedules
// to observe a reported race's two accesses in both orders. A race whose
// order flips across schedules is demonstrably schedule-dependent — the
// strongest evidence a happens-before report can get short of a failure.
// A race that never flips within the budget is *not* refuted (the detector
// reasons over happens-before, not observed order; Fig. 2's user write
// always lands after the page's write in automatic exploration, yet the
// race is real), so Flipped=false only means "no schedule in the sample
// reversed it".
type Validation struct {
	// PriorFirst and CurrentFirst count the runs in which the respective
	// access of the original report was observed first.
	PriorFirst   int
	CurrentFirst int
	// Missing counts runs in which one of the accesses did not occur
	// (code paths need not execute under every schedule).
	Missing int
	// Runs is the number of schedules tried.
	Runs int
}

// Flipped reports whether both orders were observed.
func (v *Validation) Flipped() bool { return v.PriorFirst > 0 && v.CurrentFirst > 0 }

// String summarizes the validation in one line.
func (v *Validation) String() string {
	return fmt.Sprintf("%d/%d prior-first, %d/%d current-first, %d missing (flipped=%v)",
		v.PriorFirst, v.Runs, v.CurrentFirst, v.Runs, v.Missing, v.Flipped())
}

// accessKey identifies one racing access across runs. Serial-bearing parts
// of the location are unstable between runs, so the key uses the stable
// parts: location kind and name, access kind, context, and the
// human-readable description (which carries element ids and variable
// names).
type accessKey struct {
	accKind mem.AccessKind
	locKind mem.Kind
	locName string
	ctx     mem.Context
	desc    string
}

func keyOf(a race.Access) accessKey {
	return accessKey{
		accKind: a.Kind,
		locKind: a.Loc.Kind,
		locName: a.Loc.Name,
		ctx:     a.Ctx,
		desc:    a.Desc,
	}
}

// ValidateRace re-runs the site under `runs` different seeds and records in
// which order the report's two accesses occur. cfg should be the
// configuration that produced the report.
func ValidateRace(site *loader.Site, cfg Config, r race.Report, runs int) *Validation {
	v := &Validation{Runs: runs}
	k1, k2 := keyOf(r.Prior), keyOf(r.Current)
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919 + 13
		c.RecordTrace = true
		res := RunConfig(site, c)
		trace := res.Browser.Trace()
		i1 := findAccess(trace, k1)
		i2 := findAccess(trace, k2)
		switch {
		case i1 < 0 || i2 < 0:
			v.Missing++
		case i1 < i2:
			v.PriorFirst++
		default:
			v.CurrentFirst++
		}
	}
	return v
}

func findAccess(trace []race.Access, k accessKey) int {
	for i, a := range trace {
		if keyOf(a) == k {
			return i
		}
	}
	return -1
}
