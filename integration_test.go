package webracer

import (
	"strings"
	"testing"

	"webracer/internal/loader"
	"webracer/internal/op"
	"webracer/internal/report"
)

// compositeSite is a "realistic" page combining everything at once: frames,
// sync/async/defer scripts, XHR, timers, delayed script insertion, form
// fields, images with handlers, and a monitoring interval.
func compositeSite() *loader.Site {
	return loader.NewSite("megacorp").
		Add("index.html", `
<html><head><title>MegaCorp</title>
<script src="analytics.js" async="true"></script>
<script src="base.js"></script>
</head><body>
<input type="text" id="q" />
<div id="nav" onmouseover="openNav();">Products</div>
<a href="javascript:openCart()">Cart</a>
<img src="hero.jpg" onload="heroShown = 1;" />
<iframe src="promo.html"></iframe>
<script>
var xhr = new XMLHttpRequest();
xhr.onreadystatechange = function() {
  if (xhr.readyState == 4) { inventory = JSON.parse(xhr.responseText).count; }
};
xhr.open("GET", "inventory.json");
xhr.send();

document.addEventListener("DOMContentLoaded", function() {
  var mon = setInterval(function() {
    var imgs = document.getElementsByTagName("img");
    for (var j = 0; j < imgs.length; j++) {
      imgs[j].onload = function() { tracked = (typeof tracked == 'undefined') ? 1 : tracked + 1; };
    }
  }, 15);
  setTimeout(function() { clearInterval(mon); }, 300);
});

function openCart() {
  var p = document.getElementById("cartpanel");
  p.style.display = "block";
}
document.getElementById("q").value = "search MegaCorp";

var s = document.createElement("script");
s.src = "widgets.js";
document.body.appendChild(s);
</script>
<p>products…</p><p>deals…</p>
<div id="cartpanel" style="display:none">cart</div>
</body></html>`).
		Add("base.js", `pageEpoch = 1;`).
		Add("analytics.js", `beacons = (typeof beacons == 'undefined') ? 1 : beacons + 1;`).
		Add("widgets.js", `function openNav() { navOpen = 1; }`).
		Add("promo.html", `<script>promoReady = 1;</script><p>50% off</p>`).
		Add("inventory.json", `{"count": 7}`)
}

// TestCompositeSiteEndToEnd drives the composite page through the full
// pipeline and checks cross-cutting invariants.
func TestCompositeSiteEndToEnd(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.RecordTrace = true
	res := RunConfig(compositeSite(), cfg)
	b := res.Browser

	// The page must have finished loading and computed its state.
	if !b.Top().Loaded() {
		t.Fatal("window load never fired")
	}
	if v, ok := b.Top().It.LookupGlobal("inventory"); !ok || v.ToNumber() != 7 {
		t.Errorf("XHR pipeline broken: inventory=%v ok=%v (errors %v)", v, ok, res.Errors)
	}
	// The monitor's onload assignment REPLACES the attribute handler
	// (both write slot 0 — the very interference the dispatch race
	// reports), so whichever write was last before the load wins.
	_, heroRan := b.Top().It.LookupGlobal("heroShown")
	_, trackerRan := b.Top().It.LookupGlobal("tracked")
	if !heroRan && !trackerRan {
		t.Error("no image load handler ran at all")
	}
	if len(b.Windows()) != 2 {
		t.Errorf("windows = %d, want 2", len(b.Windows()))
	}

	// Races: expect at least the function race (openNav via delayed
	// widgets.js), the HTML race (cartpanel), the form race (q), and the
	// Gomez dispatch race (hero.jpg's load slot).
	c := res.RawCounts
	if c.Of(report.Function) == 0 {
		t.Error("missing function race on openNav")
	}
	if c.Of(report.HTML) == 0 {
		t.Error("missing HTML race on cartpanel")
	}
	if c.Of(report.Variable) == 0 {
		t.Error("missing variable race on q's value")
	}
	if c.Of(report.EventDispatch) == 0 {
		t.Error("missing dispatch race on the image load slot")
	}

	// Every reported race must satisfy the §5.1 definition against the
	// session's own happens-before graph.
	for _, r := range res.RawReports {
		if !b.HB.Concurrent(r.Prior.Op, r.Current.Op) {
			t.Errorf("ordered pair reported: %v", r)
		}
	}

	// Sanity on the operation structure: parse ops exist for static
	// elements, script ops for every script, handler ops from dispatches.
	st := b.Stats()
	if st.OpsByKind[op.KindParse.String()] < 10 {
		t.Errorf("parse ops = %d, suspiciously low", st.OpsByKind["parse"])
	}
	if st.OpsByKind[op.KindScript.String()] < 4 {
		t.Errorf("script ops = %d, want inline+base+analytics+widgets+promo", st.OpsByKind["exe"])
	}
	if st.Edges == 0 || st.Fetches < 6 {
		t.Errorf("stats: %+v", st)
	}

	// The trace and the graph agree with the replayed VC analysis.
	vc := ReplayVC(res)
	if len(vc) != len(res.RawReports) {
		t.Errorf("VC replay found %d races, run found %d", len(vc), len(res.RawReports))
	}

	// Harm oracle: the unguarded cart panel and/or the openCart function
	// race must come out harmful under the adversarial schedule.
	cfg2 := cfg
	cfg2.Filters = true
	res2 := RunConfig(compositeSite(), cfg2)
	h := ClassifyHarmful(compositeSite(), cfg2, res2)
	if h.Total() == 0 {
		t.Errorf("no harmful races on the composite site; reports: %v", res2.Reports)
	}

	// Session export round trip.
	s := Export(res, cfg.Seed, nil, true)
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSession(strings.NewReader(sb.String()))
	if err != nil || len(back.Races) != len(res.Reports) {
		t.Errorf("session round trip: %v, races %d vs %d", err, len(back.Races), len(res.Reports))
	}
}

// TestCompositeDeterminismAcrossDetectors: the pairwise/VC/AccessSet
// detectors agree on the composite page (AccessSet may only add races).
func TestCompositeDeterminismAcrossDetectors(t *testing.T) {
	base := RunConfig(compositeSite(), DefaultConfig(3))
	vcCfg := DefaultConfig(3)
	vcCfg.Detector = DetectorPairwiseVC
	vc := RunConfig(compositeSite(), vcCfg)
	asCfg := DefaultConfig(3)
	asCfg.Detector = DetectorAccessSet
	as := RunConfig(compositeSite(), asCfg)

	if len(vc.RawReports) != len(base.RawReports) {
		t.Errorf("VC oracle disagrees: %d vs %d", len(vc.RawReports), len(base.RawReports))
	}
	if len(as.RawReports) < len(base.RawReports) {
		t.Errorf("AccessSet found fewer races: %d vs %d", len(as.RawReports), len(base.RawReports))
	}
}
