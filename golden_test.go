package webracer

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"webracer/internal/loader"
	"webracer/internal/sitegen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden session fixtures")

// goldenCases pin three representative sessions: the paper's Fig. 1
// (iframe variable race) and Fig. 4 (function race), plus one synthetic
// corpus site at seed 1. Their exported sessions are checked in under
// testdata/golden; any detector or browser change that alters the race
// reports fails TestGoldenSessions loudly. Regenerate deliberately with
//
//	go test -run TestGoldenSessions -update .
func goldenCases() []struct {
	name string
	site *loader.Site
} {
	return []struct {
		name string
		site *loader.Site
	}{
		{"fig1", sitegen.Fig1()},
		{"fig4", sitegen.Fig4()},
		{"sitegen-07", sitegen.Generate(sitegen.SpecFor(1, 7))},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenSweeps pins the aggregate outputs — seed sweep and harm
// classification — as byte-exact JSON, exercising the stable tags and
// deterministic marshal order of SeedSweep, Harm and report.Counts.
// Regenerate deliberately with
//
//	go test -run TestGoldenSweeps -update .
func TestGoldenSweeps(t *testing.T) {
	for _, tc := range goldenCases()[:2] { // fig1 and fig4: cheap, race-bearing
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			sweep := RunSeeds(tc.site, cfg, 3)
			res := RunConfig(tc.site, cfg)
			harm := ClassifyHarmful(tc.site, cfg, res)
			got, err := json.MarshalIndent(struct {
				Sweep *SeedSweep `json:"sweep"`
				Harm  *Harm      `json:"harm"`
			}{sweep, harm}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := goldenPath(tc.name + "-sweep")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sweep output drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenFaultSweep pins a full fault sweep over a fault-corpus page —
// including a race only reachable on the error path (the fragile-image
// onerror fallback), absent from the baseline run and listed in
// newlyExposed. Any change to fault decisions, error-path happens-before
// or sweep aggregation shows up as a byte diff. Regenerate deliberately
// with
//
//	go test -run TestGoldenFaultSweep -update .
func TestGoldenFaultSweep(t *testing.T) {
	site := sitegen.Generate(sitegen.FaultSpec(0))
	cfg := DefaultConfig(3)
	sweep, err := RunFaultSweep(site, cfg, FaultSweepConfig{Plans: 12}, ParallelConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sweep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := goldenPath("faultsweep-00")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d newly exposed)", path, len(sweep.NewlyExposed))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fault sweep drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
	if len(sweep.NewlyExposed) == 0 {
		t.Error("golden fault sweep exposes no error-path race; the fixture lost its point")
	}
}

func TestGoldenSessions(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			res := RunConfig(tc.site, cfg)
			got := Export(res, cfg.Seed, nil, false)

			path := goldenPath(tc.name)
			if *updateGolden {
				var buf bytes.Buffer
				if err := got.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d races)", path, len(got.Races))
				return
			}

			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			defer f.Close()
			want, err := ReadSession(f)
			if err != nil {
				t.Fatal(err)
			}

			fixed, introduced := DiffRaces(want, got)
			if len(fixed) != 0 || len(introduced) != 0 {
				t.Errorf("race reports drifted from golden session:\n  no longer reported: %v\n  newly reported: %v\n(regenerate deliberately with -update)",
					fixed, introduced)
			}
			// Per-type counts catch drift that keeps the location set
			// but changes classification.
			for typ, n := range want.Counts {
				if got.Counts[typ] != n {
					t.Errorf("%s count %d, golden %d", typ, got.Counts[typ], n)
				}
			}
			for typ, n := range got.Counts {
				if _, ok := want.Counts[typ]; !ok {
					t.Errorf("new race type %s (%d) not in golden session", typ, n)
				}
			}
			if len(got.Ops) != len(want.Ops) {
				t.Errorf("execution shape drifted: %d ops, golden %d", len(got.Ops), len(want.Ops))
			}
		})
	}
}
