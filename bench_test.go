package webracer

// Benchmark harness: one benchmark per evaluation artifact of the paper
// (see DESIGN.md's experiment index and EXPERIMENTS.md for a reference
// run). Benchmarks report domain metrics (races, ops) via b.ReportMetric
// alongside the usual ns/op.
//
//	go test -bench=. -benchmem

import (
	"testing"
	"time"

	"webracer/internal/hb"
	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/race"
	"webracer/internal/report"
	"webracer/internal/sitegen"
)

// corpusSize keeps the corpus benchmarks affordable per iteration while
// exercising every pattern (the full 100-site run is cmd/experiments).
const corpusSize = 25

func corpusGen(seed int64) func(int) *loader.Site {
	return func(i int) *loader.Site { return sitegen.Generate(sitegen.SpecFor(seed, i)) }
}

// BenchmarkTable1 regenerates experiment E1: raw race counts over the
// synthetic corpus, no filters (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	races := 0
	var t1 report.Table1
	for i := 0; i < b.N; i++ {
		results := RunCorpus(corpusSize, corpusGen(1), DefaultConfig(1))
		counts := make([]report.Counts, len(results))
		races = 0
		for j, r := range results {
			counts[j] = r.RawCounts
			races += r.RawCounts.Total()
		}
		t1 = report.BuildTable1(counts)
	}
	b.ReportMetric(float64(races), "races")
	b.ReportMetric(t1.Rows["All"].Mean, "mean-races/site")
}

// BenchmarkTable2 regenerates experiment E2: filtered races plus the
// adversarial-replay harm oracle (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	kept, harmful := 0, 0
	for i := 0; i < b.N; i++ {
		kept, harmful = 0, 0
		cfg := DefaultConfig(1)
		cfg.Filters = true
		for s := 0; s < corpusSize; s++ {
			site := corpusGen(1)(s)
			c := cfg
			c.Seed = cfg.Seed + int64(s)*101
			res := RunConfig(site, c)
			h := ClassifyHarmful(site, c, res)
			kept += len(res.Reports)
			harmful += h.Total()
		}
	}
	b.ReportMetric(float64(kept), "filtered-races")
	b.ReportMetric(float64(harmful), "harmful-races")
}

// cpuPage is the SunSpider-flavoured CPU-bound workload of experiment E3.
const cpuPage = `
<script>
function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
function work() {
  var acc = 0;
  for (var i = 0; i < 300; i++) { acc = acc + i * i % 7; }
  var s = "";
  for (var j = 0; j < 80; j++) { s = s + "x" + j; }
  var arr = [];
  for (var k = 0; k < 150; k++) { arr.push(k); }
  var sum = 0;
  for (var m = 0; m < arr.length; m++) { sum += arr[m]; }
  return acc + s.length + sum + fib(13);
}
total = 0;
for (var r = 0; r < 25; r++) { total = total + work(); }
</script>`

// BenchmarkOverheadDetectorOn measures the instrumented configuration of
// experiment E3 (§6 Performance).
func BenchmarkOverheadDetectorOn(b *testing.B) {
	site := loader.NewSite("cpu").Add("index.html", cpuPage)
	cfg := DefaultConfig(1)
	cfg.Explore = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfig(site, cfg)
	}
}

// BenchmarkOverheadDetectorOff is E3's baseline: the same interpreter and
// browser with instrumentation disabled entirely (no hooks, no detector).
func BenchmarkOverheadDetectorOff(b *testing.B) {
	site := loader.NewSite("cpu").Add("index.html", cpuPage)
	cfg := DefaultConfig(1)
	cfg.Explore = false
	cfg.Browser.NoInstrument = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunConfig(site, cfg)
	}
}

// stressGen generates the wide pages of the §6 performance claim ("tens of
// thousands of operations"): thousands of operations across hundreds of
// concurrent handler tasks, where the eager vector-clock construction the
// epoch representation replaces is actually visible.
func stressGen(i int) *loader.Site {
	return sitegen.Generate(sitegen.StressSpec(i))
}

// recordedCorpus runs the replay-ablation workload once with trace
// recording: a slice of the regular corpus plus the wide stress pages, so
// the happens-before representations are compared both on typical pages
// and at the execution sizes the paper reports (§6).
func recordedCorpus(b *testing.B) []*Result {
	b.Helper()
	cfg := DefaultConfig(1)
	cfg.RecordTrace = true
	results := RunCorpus(10, corpusGen(1), cfg)
	return append(results, RunCorpus(4, stressGen, cfg)...)
}

// BenchmarkDetectorGraph is experiment E4's first arm: replaying recorded
// traces against the paper's graph-reachability happens-before.
func BenchmarkDetectorGraph(b *testing.B) {
	results := recordedCorpus(b)
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, res := range results {
			d := race.NewPairwise(res.Browser.HB)
			races += len(race.Replay(res.Browser.Trace(), d))
		}
	}
	b.ReportMetric(float64(races), "races")
}

// preEpochPairwise replicates the detector as it stood before the epoch
// rewrite (git history: three map[mem.Loc]Access tables, a full struct
// store per access, no reported-location early exit). Together with
// hb.NewDenseClocks it reconstructs the complete pre-epoch vector-clock
// analysis path, which is the baseline the ISSUE's speedup criterion names.
// Report semantics are identical — the benchmarks assert equal race counts.
type preEpochPairwise struct {
	oracle    hb.Oracle
	lastRead  map[mem.Loc]race.Access
	lastWrite map[mem.Loc]race.Access
	reported  map[mem.Loc]bool
	reports   []race.Report
}

func newPreEpochPairwise(o hb.Oracle) *preEpochPairwise {
	return &preEpochPairwise{
		oracle:    o,
		lastRead:  make(map[mem.Loc]race.Access),
		lastWrite: make(map[mem.Loc]race.Access),
		reported:  make(map[mem.Loc]bool),
	}
}

func (d *preEpochPairwise) OnAccess(a race.Access) {
	switch a.Kind {
	case mem.Read:
		if w, ok := d.lastWrite[a.Loc]; ok && d.oracle.Concurrent(w.Op, a.Op) {
			d.report(w, a, false)
		}
		d.lastRead[a.Loc] = a
	case mem.Write:
		readFirst := false
		if r, ok := d.lastRead[a.Loc]; ok && r.Op == a.Op {
			readFirst = true
		}
		if w, ok := d.lastWrite[a.Loc]; ok && d.oracle.Concurrent(w.Op, a.Op) {
			d.report(w, a, readFirst)
		}
		if r, ok := d.lastRead[a.Loc]; ok && r.Op != a.Op && d.oracle.Concurrent(r.Op, a.Op) {
			d.report(r, a, readFirst)
		}
		d.lastWrite[a.Loc] = a
	}
}

func (d *preEpochPairwise) report(prior, cur race.Access, writerReadFirst bool) {
	if d.reported[cur.Loc] {
		return
	}
	d.reported[cur.Loc] = true
	d.reports = append(d.reports, race.Report{
		Loc: cur.Loc, Prior: prior, Current: cur, WriterReadFirst: writerReadFirst,
	})
}

func (d *preEpochPairwise) Reports() []race.Report { return d.reports }

// BenchmarkDetectorVCDense is E4's second arm: the pre-epoch vector-clock
// analysis path (eager full-width clock per operation, map-of-structs
// detector state, construction included) — the baseline the epoch fast
// path is measured against.
func BenchmarkDetectorVCDense(b *testing.B) {
	results := recordedCorpus(b)
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, res := range results {
			clocks := hb.NewDenseClocks(res.Browser.HB)
			d := newPreEpochPairwise(clocks)
			races += len(race.Replay(res.Browser.Trace(), d))
		}
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkDetectorVCEpoch is E4's third arm: the epoch-optimized
// vector-clock representation (lazy chains, certificates, on-demand clock
// materialization), construction included.
func BenchmarkDetectorVCEpoch(b *testing.B) {
	results := recordedCorpus(b)
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, res := range results {
			trace := res.Browser.Trace()
			clocks := hb.NewClocks(res.Browser.HB)
			d := race.NewPairwise(clocks, race.LocHint(len(trace)/4))
			races += len(race.Replay(trace, d))
		}
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkDetectorSampled is the tier battery's cost arm (E11): the
// sampled shadow-word detector at the default rate over the same recorded
// traces as the E4 arms, construction included. The ISSUE's allocation
// criterion compares its allocs/op against BenchmarkDetectorLiveVC — the
// flat shadow array plus the location index are the only steady-state
// state, so the gap is large by design.
func BenchmarkDetectorSampled(b *testing.B) {
	results := recordedCorpus(b)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		hits = 0
		for _, res := range results {
			trace := res.Browser.Trace()
			clocks := hb.NewClocks(res.Browser.HB)
			d := race.NewSampled(clocks, DefaultSampleRate, 1, race.LocHint(len(trace)/4))
			hits += len(race.Replay(trace, d))
		}
	}
	b.ReportMetric(float64(hits), "hits")
}

// BenchmarkDetectorSampledFullRate is the same workload at rate 1.0 — the
// tier's exact configuration, whose hit set equals the pairwise arm's
// report set (asserted, so the benchmark doubles as a correctness check).
func BenchmarkDetectorSampledFullRate(b *testing.B) {
	results := recordedCorpus(b)
	want := 0
	for _, res := range results {
		trace := res.Browser.Trace()
		pw := race.NewPairwise(hb.NewClocks(res.Browser.HB), race.LocHint(len(trace)/4))
		want += len(race.Replay(trace, pw))
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		hits = 0
		for _, res := range results {
			trace := res.Browser.Trace()
			clocks := hb.NewClocks(res.Browser.HB)
			d := race.NewSampled(clocks, 1.0, 1, race.LocHint(len(trace)/4))
			hits += len(race.Replay(trace, d))
		}
	}
	b.StopTimer()
	if hits != want {
		b.Fatalf("rate-1 sampled found %d hits, pairwise %d", hits, want)
	}
	b.ReportMetric(float64(hits), "hits")
}

// BenchmarkReplayVC measures the public ReplayVC entry point and reports
// its speedup over the pre-epoch dense path on the same recorded traces
// (the ISSUE's ≥2x acceptance criterion). Race counts of the two arms are
// asserted identical.
func BenchmarkReplayVC(b *testing.B) {
	results := recordedCorpus(b)
	replayDense := func() (time.Duration, int) {
		start := time.Now()
		races := 0
		for _, res := range results {
			clocks := hb.NewDenseClocks(res.Browser.HB)
			d := newPreEpochPairwise(clocks)
			races += len(race.Replay(res.Browser.Trace(), d))
		}
		return time.Since(start), races
	}
	// Time the pre-epoch baseline (mean of three runs, matching the
	// mean-over-iterations the measured arm reports).
	var denseTime time.Duration
	var denseRaces int
	for r := 0; r < 3; r++ {
		dt, dr := replayDense()
		denseTime += dt
		denseRaces = dr
	}
	denseTime /= 3
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, res := range results {
			races += len(ReplayVC(res))
		}
	}
	b.StopTimer()
	if races != denseRaces {
		b.Fatalf("epoch path found %d races, dense path %d", races, denseRaces)
	}
	epochPer := b.Elapsed() / time.Duration(b.N)
	if epochPer > 0 {
		b.ReportMetric(float64(denseTime)/float64(epochPer), "speedup-vs-dense")
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkDetectorLiveVC is E4's online arm: the whole pipeline running
// with the incremental vector-clock oracle instead of the graph.
func BenchmarkDetectorLiveVC(b *testing.B) {
	races := 0
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(1)
		cfg.Detector = DetectorPairwiseVC
		races = 0
		for s := 0; s < 10; s++ {
			races += len(RunConfig(corpusGen(1)(s), cfg).RawReports)
		}
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkDetectorLiveGraph is the matching graph-oracle arm over the
// same 10 sites, full pipeline.
func BenchmarkDetectorLiveGraph(b *testing.B) {
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for s := 0; s < 10; s++ {
			races += len(RunConfig(corpusGen(1)(s), DefaultConfig(1)).RawReports)
		}
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkDetectorAccessSet is experiment E5: the full-history detector
// that fixes the §5.1 miss, on the same traces.
func BenchmarkDetectorAccessSet(b *testing.B) {
	results := recordedCorpus(b)
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, res := range results {
			d := race.NewAccessSet(res.Browser.HB, race.OnePerLoc())
			races += len(race.Replay(res.Browser.Trace(), d))
		}
	}
	b.ReportMetric(float64(races), "races")
}

// figureBench runs one of the paper's figure pages end to end (F1–F5).
func figureBench(b *testing.B, site *loader.Site, want report.Type) {
	found := 0
	for i := 0; i < b.N; i++ {
		res := Run(site, WithSeed(1))
		found = 0
		for _, r := range res.Reports {
			if report.Classify(r) == want {
				found++
			}
		}
		if found == 0 {
			b.Fatalf("figure race not detected")
		}
	}
	b.ReportMetric(float64(found), "races")
}

func BenchmarkFigure1IframeVariable(b *testing.B) {
	figureBench(b, loader.NewSite("fig1").
		Add("index.html", `<script>x = 1;</script>
<iframe src="a.html"></iframe><iframe src="b.html"></iframe>`).
		Add("a.html", `<script>x = 2;</script>`).
		Add("b.html", `<script>alert(x);</script>`), report.Variable)
}

func BenchmarkFigure2FormValue(b *testing.B) {
	figureBench(b, loader.NewSite("fig2").
		Add("index.html", `<input type="text" id="depart" />
<script>document.getElementById("depart").value = "City of Departure";</script>`),
		report.Variable)
}

func BenchmarkFigure3HTML(b *testing.B) {
	figureBench(b, loader.NewSite("fig3").
		Add("index.html", `
<script>function show() { var v = document.getElementById("dw"); v.style.display = "block"; }</script>
<a href="javascript:show()">Send Email</a>
<div id="dw" style="display:none"></div>`), report.HTML)
}

func BenchmarkFigure4Function(b *testing.B) {
	figureBench(b, loader.NewSite("fig4").
		Add("index.html", `
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
<script>function doNextStep() { done = 1; }</script>`).
		Add("sub.html", `<p>sub</p>`), report.Function)
}

func BenchmarkFigure5EventDispatch(b *testing.B) {
	figureBench(b, loader.NewSite("fig5").
		Add("index.html", `
<iframe id="i" src="a.html"></iframe>
<script>document.getElementById("i").onload = function() { ran = 1; };</script>`).
		Add("a.html", `<p>nested</p>`), report.EventDispatch)
}

// BenchmarkPageLoad measures raw simulated-browser throughput on a mid-size
// synthetic page (ops/sec context for the §6 "tens of thousands of
// operations in less than a minute" claim).
func BenchmarkPageLoad(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 11)) // the Ford outlier: busiest page
	cfg := DefaultConfig(1)
	cfg.Explore = false
	ops := 0
	for i := 0; i < b.N; i++ {
		res := RunConfig(site, cfg)
		ops = res.Ops
	}
	b.ReportMetric(float64(ops), "ops/page")
}

// BenchmarkExploration isolates the automatic-exploration pass (§5.2.2).
func BenchmarkExploration(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 41)) // delayed-menu heavy page
	for i := 0; i < b.N; i++ {
		res := Run(site, WithSeed(1))
		if res.ExploreStats.EventsDispatched == 0 {
			b.Fatal("exploration dispatched nothing")
		}
	}
}

// BenchmarkExplorationExhaustive measures the Artemis-style feedback-
// directed mode on the same page (deeper coverage, more rounds).
func BenchmarkExplorationExhaustive(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 41))
	rounds := 0
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(1)
		cfg.Exhaustive = true
		res := RunConfig(site, cfg)
		rounds = res.ExploreStats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkAppendixAOrdering is the Appendix A design-choice ablation: the
// paper leaves same-(phase,target) handlers unordered to expose more races;
// this measures how many corpus races that choice accounts for.
func BenchmarkAppendixAOrdering(b *testing.B) {
	unordered, ordered := 0, 0
	for i := 0; i < b.N; i++ {
		unordered, ordered = 0, 0
		for s := 0; s < 10; s++ {
			site := corpusGen(1)(s)
			cfg := DefaultConfig(1)
			resU := RunConfig(site, cfg)
			unordered += len(resU.RawReports)
			cfg.Browser.OrderSameTargetHandlers = true
			resO := RunConfig(site, cfg)
			ordered += len(resO.RawReports)
		}
	}
	b.ReportMetric(float64(unordered), "races-unordered")
	b.ReportMetric(float64(ordered), "races-ordered")
}

// BenchmarkTimerClearExtension measures the §7 extension's cost and yield.
func BenchmarkTimerClearExtension(b *testing.B) {
	extra := 0
	for i := 0; i < b.N; i++ {
		extra = 0
		for s := 0; s < 10; s++ {
			site := corpusGen(1)(s)
			cfg := DefaultConfig(1)
			base := len(RunConfig(site, cfg).RawReports)
			cfg.Browser.InstrumentTimerClears = true
			ext := len(RunConfig(site, cfg).RawReports)
			extra += ext - base
		}
	}
	b.ReportMetric(float64(extra), "extra-races")
}

// BenchmarkSeedSweep measures multi-schedule aggregation (5 seeds over one
// busy site) and reports schedule stability.
func BenchmarkSeedSweep(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 40))
	stable, flaky := 0, 0
	for i := 0; i < b.N; i++ {
		sweep := RunSeeds(site, DefaultConfig(1), 5)
		s, f := sweep.Stable()
		stable, flaky = len(s), len(f)
	}
	b.ReportMetric(float64(stable), "stable-locs")
	b.ReportMetric(float64(flaky), "flaky-locs")
}

// BenchmarkHarmOracle isolates the adversarial-replay classification.
func BenchmarkHarmOracle(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 7)) // Gomez archetype
	cfg := DefaultConfig(1)
	cfg.Filters = true
	res := RunConfig(site, cfg)
	b.ResetTimer()
	harmful := 0
	for i := 0; i < b.N; i++ {
		h := ClassifyHarmful(site, cfg, res)
		harmful = h.Total()
	}
	b.ReportMetric(float64(harmful), "harmful")
}

// ---- parallel corpus engine (tentpole benchmarks) ----

// parallelBenchWorkers is the sharding width the acceptance criterion
// names; on machines with fewer cores the speedup degrades gracefully
// toward 1× (the engine itself adds no serial bottleneck — workers only
// synchronize on an atomic index).
const parallelBenchWorkers = 4

// BenchmarkCorpusParallel runs the full 100-site corpus sweep at 4
// workers and reports the measured speedup over the serial path, after
// asserting the parallel sweep found exactly the serial race counts.
func BenchmarkCorpusParallel(b *testing.B) {
	const n = 100
	cfg := DefaultConfig(1)
	t0 := time.Now()
	serial := RunCorpus(n, corpusGen(1), cfg)
	serialTime := time.Since(t0)
	serialRaces := 0
	for _, r := range serial {
		serialRaces += len(r.Reports)
	}
	b.ResetTimer()
	races := 0
	for i := 0; i < b.N; i++ {
		results, err := RunCorpusParallel(n, corpusGen(1), cfg,
			ParallelConfig{Workers: parallelBenchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		races = 0
		for _, r := range results {
			races += len(r.Reports)
		}
		if races != serialRaces {
			b.Fatalf("parallel corpus found %d races, serial %d", races, serialRaces)
		}
	}
	b.ReportMetric(float64(races), "races")
	b.ReportMetric(serialTime.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup-vs-serial")
}

// BenchmarkScheduleSweepParallel runs the delay-one schedule sweep of one
// resource-heavy site at 4 workers, reporting speedup over the serial
// sweep after asserting identical aggregation.
func BenchmarkScheduleSweepParallel(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 11)) // busiest page: most resources, most runs
	cfg := DefaultConfig(1)
	t0 := time.Now()
	serial := ExploreSchedules(site, cfg)
	serialTime := time.Since(t0)
	b.ResetTimer()
	runs := 0
	for i := 0; i < b.N; i++ {
		sweep, err := ExploreSchedulesParallel(site, cfg,
			ParallelConfig{Workers: parallelBenchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		runs = sweep.Runs
		if len(sweep.Reports) != len(serial.Reports) || sweep.Runs != serial.Runs {
			b.Fatalf("parallel sweep %d reports over %d runs, serial %d over %d",
				len(sweep.Reports), sweep.Runs, len(serial.Reports), serial.Runs)
		}
	}
	b.ReportMetric(float64(runs), "runs")
	b.ReportMetric(serialTime.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup-vs-serial")
}

// BenchmarkSeedSweepParallel shards the 8-seed sweep of one busy site.
func BenchmarkSeedSweepParallel(b *testing.B) {
	site := sitegen.Generate(sitegen.SpecFor(1, 40))
	cfg := DefaultConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSeedsParallel(site, cfg, 8,
			ParallelConfig{Workers: parallelBenchWorkers}); err != nil {
			b.Fatal(err)
		}
	}
}
