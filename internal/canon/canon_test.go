package canon

import (
	"math/rand"
	"testing"
)

// dag is a test-side labeled partial order, independent of node numbering,
// so tests can build the same abstract order under different IDs.
type dag struct {
	n      int
	edges  [][2]int
	events map[int][]string
}

func (d dag) build(perm []int) *Builder {
	id := func(i int) int {
		if perm == nil {
			return i
		}
		return perm[i-1]
	}
	b := New(d.n)
	for _, e := range d.edges {
		b.Edge(id(e[0]), id(e[1]))
	}
	for node, evs := range d.events {
		for _, e := range evs {
			b.Event(id(node), e)
		}
	}
	return b
}

func randomDAG(rng *rand.Rand) dag {
	n := 2 + rng.Intn(20)
	d := dag{n: n, events: map[int][]string{}}
	for j := 2; j <= n; j++ {
		for i := 1; i < j; i++ {
			if rng.Intn(4) == 0 {
				d.edges = append(d.edges, [2]int{i, j})
			}
		}
	}
	labels := []string{"w var a.x", "r var a.x", "w elem #dw", "op handler click"}
	for i := 1; i <= n; i++ {
		for k := rng.Intn(3); k > 0; k-- {
			d.events[i] = append(d.events[i], labels[rng.Intn(len(labels))])
		}
	}
	return d
}

func randomPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	for i := range p {
		p[i]++
	}
	return p
}

// TestFingerprintDeterministic: the fingerprint is a pure function of the
// labeled order — recomputing, rebuilding, and shuffling the insertion
// order of edges and events all give the same hash.
func TestFingerprintDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		d := randomDAG(rng)
		b := d.build(nil)
		fp := b.Fingerprint()
		if again := b.Fingerprint(); again != fp {
			t.Fatalf("trial %d: second Fingerprint call drifted: %s vs %s", trial, fp, again)
		}
		// Rebuild with shuffled insertion order.
		shuffled := dag{n: d.n, events: map[int][]string{}}
		shuffled.edges = append(shuffled.edges, d.edges...)
		rng.Shuffle(len(shuffled.edges), func(i, j int) {
			shuffled.edges[i], shuffled.edges[j] = shuffled.edges[j], shuffled.edges[i]
		})
		for node, evs := range d.events {
			evs = append([]string(nil), evs...)
			rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
			shuffled.events[node] = evs
		}
		if got := shuffled.build(nil).Fingerprint(); got != fp {
			t.Fatalf("trial %d: insertion order changed the fingerprint", trial)
		}
	}
}

// TestFingerprintIsomorphismInvariant: renumbering the operations of the
// same labeled partial order — the general form of "permuting
// HB-independent events in a recorded session" — never changes the
// fingerprint.
func TestFingerprintIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := randomDAG(rng)
		fp := d.build(nil).Fingerprint()
		for k := 0; k < 4; k++ {
			perm := randomPerm(rng, d.n)
			if got := d.build(perm).Fingerprint(); got != fp {
				t.Fatalf("trial %d perm %v: fingerprint changed under relabeling: %s vs %s",
					trial, perm, got, fp)
			}
		}
	}
}

// TestFingerprintFlipSensitive: flipping an ordered racy pair — the same
// two conflicting events with the happens-before edge reversed — moves
// the execution to a different class, and so must change the fingerprint.
// Removing the edge (making the pair race) is a third distinct class.
func TestFingerprintFlipSensitive(t *testing.T) {
	events := map[int][]string{1: {"w var a.x"}, 2: {"r var a.x"}}
	fwd := dag{n: 2, edges: [][2]int{{1, 2}}, events: events}.build(nil).Fingerprint()
	rev := dag{n: 2, edges: [][2]int{{2, 1}}, events: events}.build(nil).Fingerprint()
	free := dag{n: 2, events: events}.build(nil).Fingerprint()
	if fwd == rev {
		t.Error("write→read and read→write orders share a fingerprint")
	}
	if fwd == free || rev == free {
		t.Error("ordered and unordered conflicting pairs share a fingerprint")
	}
}

// TestFingerprintIrrelevantTransparent: operations without events are
// pure plumbing — routing an ordering edge through any number of them
// leaves the class unchanged.
func TestFingerprintIrrelevantTransparent(t *testing.T) {
	events := map[int][]string{1: {"w var a.x"}, 2: {"r var a.x"}}
	direct := dag{n: 2, edges: [][2]int{{1, 2}}, events: events}.build(nil).Fingerprint()
	ev3 := map[int][]string{1: {"w var a.x"}, 3: {"r var a.x"}}
	oneHop := dag{n: 3, edges: [][2]int{{1, 2}, {2, 3}}, events: ev3}.build(nil).Fingerprint()
	ev4 := map[int][]string{1: {"w var a.x"}, 4: {"r var a.x"}}
	twoHop := dag{n: 4, edges: [][2]int{{1, 2}, {2, 3}, {3, 4}}, events: ev4}.build(nil).Fingerprint()
	diamond := dag{n: 4, edges: [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}}, events: ev4}.build(nil).Fingerprint()
	if oneHop != direct || twoHop != direct || diamond != direct {
		t.Errorf("irrelevant plumbing changed the class: direct=%s oneHop=%s twoHop=%s diamond=%s",
			direct, oneHop, twoHop, diamond)
	}
}

// TestFingerprintAncestorMultiplicity: two distinct ancestors with
// identical labels are not the same ancestor. An op ordered after both
// identical writers is in a different class than one ordered after only
// one of them (in the latter the second writer still races with the
// reader).
func TestFingerprintAncestorMultiplicity(t *testing.T) {
	events := map[int][]string{1: {"w var a.x"}, 2: {"w var a.x"}, 3: {"r var a.x"}}
	both := dag{n: 3, edges: [][2]int{{1, 3}, {2, 3}}, events: events}.build(nil).Fingerprint()
	one := dag{n: 3, edges: [][2]int{{1, 3}}, events: events}.build(nil).Fingerprint()
	if both == one {
		t.Error("ordering after both identical writers vs one collapsed into the same class")
	}
}

// TestFingerprintEventMultiset: the same label twice on one op is a
// different event multiset than once.
func TestFingerprintEventMultiset(t *testing.T) {
	once := dag{n: 1, events: map[int][]string{1: {"w var a.x"}}}.build(nil).Fingerprint()
	twice := dag{n: 1, events: map[int][]string{1: {"w var a.x", "w var a.x"}}}.build(nil).Fingerprint()
	if once == twice {
		t.Error("event multiplicity does not enter the fingerprint")
	}
}

// TestFingerprintRobustInputs: out-of-range IDs, self edges, empty
// builders and cyclic inputs must not panic and must stay deterministic.
func TestFingerprintRobustInputs(t *testing.T) {
	b := New(0)
	if b.Fingerprint() != New(0).Fingerprint() {
		t.Error("empty fingerprints differ")
	}
	b = New(3)
	b.Edge(0, 1)
	b.Edge(1, 99)
	b.Edge(2, 2)
	b.Event(0, "x")
	b.Event(99, "x")
	b.Event(1, "w var a.x")
	// Cycle 2↔3.
	b.Edge(2, 3)
	b.Edge(3, 2)
	b.Event(2, "r var a.x")
	fp := b.Fingerprint()
	if fp == "" || fp != b.Fingerprint() {
		t.Errorf("hostile input not deterministic: %s vs %s", fp, b.Fingerprint())
	}
}
