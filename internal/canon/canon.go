// Package canon computes canonical fingerprints of happens-before traces,
// the equivalence-class key behind HB-equivalence schedule pruning.
//
// Two executions belong to the same Mazurkiewicz trace class when they
// perform the same events and order them by the same happens-before
// partial order; every linearization of one class exposes exactly the
// same races ("Fast, Sound and Effectively Complete Dynamic Race
// Prediction" is the theoretical anchor — see DESIGN.md "Schedule
// pruning"). The fingerprint here is a stable hash of the partial order
// restricted to the events that matter for race detection — shared-memory
// accesses and dispatch machinery — invariant under any reordering (or
// relabeling) of HB-independent events, so a sweep can classify each
// executed schedule and run the detector once per class.
//
// Construction (sorted-minimal-linearization flavour of Foata normal
// form): every *relevant* operation — one that carries at least one event
// label — hashes its own sorted event multiset, its Foata layer (the
// number of relevant operations on the longest path reaching it), and the
// sorted hashes of its nearest relevant ancestors; irrelevant operations
// are transparent, forwarding their ancestors' contributions. The
// fingerprint is the hash of the sorted multiset of all relevant
// operation hashes. No operation ID ever enters a hash, so the result is
// invariant under graph isomorphism: only the labeled partial order
// matters. Collapsing two genuinely different classes requires a SHA-256
// collision; splitting one class into several (e.g. when a label embeds a
// schedule-dependent DOM serial) merely costs an extra detector pass and
// never loses a race.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Builder accumulates one execution's labeled happens-before DAG:
// operations are identified by dense 1-based IDs (matching op.ID), Edge
// declares ordering, and Event attaches the race-relevant labels that
// make an operation part of the fingerprint. IDs are only plumbing — the
// fingerprint is independent of how the DAG happens to be numbered.
type Builder struct {
	preds  [][]int32
	events [][]string
}

// New returns a Builder for a DAG of n operations with IDs 1..n.
func New(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{preds: make([][]int32, n), events: make([][]string, n)}
}

// Len reports the number of operations the builder was sized for.
func (b *Builder) Len() int { return len(b.preds) }

// Edge records that operation `from` happens before operation `to`.
// Out-of-range or self edges are ignored, so callers can feed a graph's
// predecessor lists verbatim.
func (b *Builder) Edge(from, to int) {
	if from < 1 || to < 1 || from > len(b.preds) || to > len(b.preds) || from == to {
		return
	}
	b.preds[to-1] = append(b.preds[to-1], int32(from))
}

// Event attaches one race-relevant label to operation id — a shared
// memory access ("w var obj3.x [normal]") or a dispatch event
// ("op handler click #send"). An operation with at least one event is
// *relevant*: it contributes a node to the fingerprint. The same label
// may be added repeatedly; multiplicity is preserved (the event set is a
// multiset).
func (b *Builder) Event(id int, label string) {
	if id < 1 || id > len(b.events) {
		return
	}
	b.events[id-1] = append(b.events[id-1], label)
}

// Fingerprint returns the canonical class hash as a 64-char hex string.
// It is a pure function of the labeled partial order: permuting
// HB-independent operations, renumbering IDs, or changing the insertion
// order of edges and events all leave it unchanged. The builder is not
// consumed; Fingerprint may be called again (and returns the same
// string). Inputs are expected to be DAGs; a cyclic input yields a
// deterministic but unspecified value rather than a panic, so fuzzers
// can feed arbitrary edge lists.
func (b *Builder) Fingerprint() string {
	n := len(b.preds)
	// Kahn topological order. The processing order among ready nodes is
	// irrelevant: each node's hash depends only on its predecessors.
	indeg := make([]int, n)
	for to := range b.preds {
		indeg[to] = len(b.preds[to])
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	succs := make([][]int32, n)
	for to := range b.preds {
		for _, p := range b.preds[to] {
			succs[p-1] = append(succs[p-1], int32(to))
		}
	}
	order := make([]int32, 0, n)
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, i)
		for _, t := range succs[i] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) < n {
		// Cycle: append the unprocessed nodes in index order so the
		// result stays deterministic (contributions from unprocessed
		// predecessors are simply absent).
		inOrder := make([]bool, n)
		for _, i := range order {
			inOrder[i] = true
		}
		for i := 0; i < n; i++ {
			if !inOrder[i] {
				order = append(order, int32(i))
			}
		}
	}

	var (
		hashes = make([][]byte, n) // relevant nodes only
		// nearest[i] is the identity set (sorted op indices) of i's
		// nearest relevant ancestors: i itself when relevant, else the
		// union over predecessors. Identity — not hash — so a diamond
		// through one ancestor counts once while two distinct ancestors
		// that happen to hash equally still count twice.
		nearest = make([][]int32, n)
		depth   = make([]int, n) // Foata layer: relevant ops on the longest path
		final   [][]byte
		h       = sha256.New()
		num     [4]byte
	)
	writeNum := func(v int) {
		binary.LittleEndian.PutUint32(num[:], uint32(v))
		h.Write(num[:])
	}
	writeStr := func(s string) {
		writeNum(len(s))
		h.Write([]byte(s))
	}
	for _, i := range order {
		d := 0
		anc := []int32{}
		for _, p := range b.preds[i] {
			pi := p - 1
			if depth[pi] > d {
				d = depth[pi]
			}
			anc = mergeUnique(anc, nearest[pi])
		}
		if len(b.events[i]) == 0 {
			nearest[i], depth[i] = anc, d
			continue
		}
		d++
		events := append([]string(nil), b.events[i]...)
		sort.Strings(events)
		contrib := make([][]byte, len(anc))
		for k, a := range anc {
			contrib[k] = hashes[a]
		}
		sort.Slice(contrib, func(x, y int) bool {
			return string(contrib[x]) < string(contrib[y])
		})
		h.Reset()
		h.Write([]byte{'N'})
		writeNum(d)
		writeNum(len(events))
		for _, e := range events {
			writeStr(e)
		}
		writeNum(len(contrib))
		for _, c := range contrib {
			h.Write(c)
		}
		sum := h.Sum(nil)
		hashes[i] = sum
		nearest[i], depth[i] = []int32{i}, d
		final = append(final, sum)
	}
	sort.Slice(final, func(x, y int) bool {
		return string(final[x]) < string(final[y])
	})
	h.Reset()
	h.Write([]byte{'T'})
	writeNum(len(final))
	for _, s := range final {
		h.Write(s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// mergeUnique merges two ascending unique int32 slices into a fresh
// ascending unique slice.
func mergeUnique(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
