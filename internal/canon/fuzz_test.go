package canon

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// sessionDoc mirrors the fields of an exported webracer session
// (session.go) that carry the happens-before structure — just enough to
// rebuild a labeled DAG without importing the root package.
type sessionDoc struct {
	Ops []struct {
		ID    int32  `json:"id"`
		Kind  string `json:"kind"`
		Label string `json:"label"`
	} `json:"ops"`
	Edges [][2]int32 `json:"edges"`
	Races []struct {
		Prior   sessionAccess `json:"prior"`
		Current sessionAccess `json:"current"`
	} `json:"races"`
	Trace []sessionAccess `json:"trace"`
}

type sessionAccess struct {
	Kind string `json:"kind"`
	Loc  string `json:"loc"`
	Op   int32  `json:"op"`
	Ctx  string `json:"ctx"`
}

// builderFromSession rebuilds a fingerprint builder from an exported
// session document under an optional relabeling permutation (perm[i-1]
// is the new ID of op i; nil means identity).
func builderFromSession(doc sessionDoc, perm []int) *Builder {
	n := len(doc.Ops)
	id := func(raw int32) int {
		i := int(raw)
		if perm == nil || i < 1 || i > n {
			return i
		}
		return perm[i-1]
	}
	b := New(n)
	for _, e := range doc.Edges {
		b.Edge(id(e[0]), id(e[1]))
	}
	for _, o := range doc.Ops {
		switch o.Kind {
		case "handler", "anchor", "join", "user":
			b.Event(id(o.ID), "op "+o.Kind+" "+o.Label)
		}
	}
	access := func(a sessionAccess) {
		b.Event(id(a.Op), a.Kind+" "+a.Loc+" ["+a.Ctx+"]")
	}
	for _, a := range doc.Trace {
		access(a)
	}
	if len(doc.Trace) == 0 {
		for _, r := range doc.Races {
			access(r.Prior)
			access(r.Current)
		}
	}
	return b
}

// isDAG reports whether the edge list (after the same filtering Edge
// applies: in-range, non-self) is acyclic over n nodes.
func isDAG(n int, edges [][2]int32) bool {
	indeg := make([]int, n+1)
	succs := make([][]int32, n+1)
	for _, e := range edges {
		from, to := int(e[0]), int(e[1])
		if from < 1 || to < 1 || from > n || to > n || from == to {
			continue
		}
		indeg[to]++
		succs[from] = append(succs[from], e[1])
	}
	queue := make([]int32, 0, n)
	for i := 1; i <= n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, t := range succs[i] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	return done == n
}

// FuzzCanonicalFingerprint fuzzes the fingerprint's core contract on
// arbitrary session-shaped inputs: computing it is total (no panics, no
// hangs, even on cyclic or malformed edge lists), deterministic, and
// invariant under relabeling the operations of the same partial order.
// The seed corpus is the repo's exported golden sessions
// (testdata/golden/*.json), so real HB graphs anchor the search.
func FuzzCanonicalFingerprint(f *testing.F) {
	seeds, _ := filepath.Glob("../../testdata/golden/*.json")
	for _, path := range seeds {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data, uint64(1))
		}
	}
	f.Add([]byte(`{"ops":[{"id":1,"kind":"handler","label":"click"}],"edges":[[1,1]]}`), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, permSeed uint64) {
		var doc sessionDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Skip()
		}
		if len(doc.Ops) > 4096 || len(doc.Edges) > 1<<16 || len(doc.Trace) > 1<<16 {
			t.Skip()
		}
		fp := builderFromSession(doc, nil).Fingerprint()
		if again := builderFromSession(doc, nil).Fingerprint(); again != fp {
			t.Fatalf("rebuild drifted: %s vs %s", fp, again)
		}
		// Relabeling invariance is a DAG property: on cyclic garbage the
		// fingerprint is only promised to be deterministic, not canonical.
		if !isDAG(len(doc.Ops), doc.Edges) {
			return
		}
		rng := rand.New(rand.NewSource(int64(permSeed)))
		perm := rng.Perm(len(doc.Ops))
		for i := range perm {
			perm[i]++
		}
		if got := builderFromSession(doc, perm).Fingerprint(); got != fp {
			t.Fatalf("fingerprint changed under relabeling: %s vs %s", got, fp)
		}
	})
}
