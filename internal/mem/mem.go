// Package mem defines the logical memory locations of §4 of "Race Detection
// for Web Applications" (PLDI 2012) and the access records the race
// detector consumes.
//
// The web platform has no natural machine-level notion of a memory access —
// operations touch both JavaScript heap locations and browser-internal data
// structures. The paper's model (reproduced here) identifies three kinds of
// logical location, Loc = JSVar ∪ HElem ∪ Eloc:
//
//   - JavaScript variables (§4.1): globals, object properties, and locals
//     shared between operations through closures. Function declarations are
//     writes of the function value to a hoisted local (§4.1 "Functions").
//     DOM structure shows up here too: inserting B under A writes
//     B.parentNode and A.childNodes[i], and user edits of form fields write
//     the field's value property (§4.1 "Additional Cases").
//
//   - HTML elements (§4.2): inserting or removing element e writes the
//     logical location for e; accessor reads (getElementById, forms[i], …)
//     read it.
//
//   - Event handler locations (§4.3): the triple (el, e, h). Registering or
//     removing handler h for event e on element el writes (el, e, h);
//     dispatching e on el with handler h reads it.
package mem

import "fmt"

// Kind discriminates the three logical location classes.
type Kind uint8

const (
	// Var is a JavaScript variable: global, object property, or
	// closure-shared local (JSVar, §4.1).
	Var Kind = iota
	// Elem is an HTML element location (HElem, §4.2).
	Elem
	// Handler is an event handler location (el, e, h) ∈ Eloc (§4.3).
	Handler
)

func (k Kind) String() string {
	switch k {
	case Var:
		return "var"
	case Elem:
		return "elem"
	case Handler:
		return "handler"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Loc is one logical memory location. Loc is a value type usable as a map
// key; equality is location identity.
//
//   - Var: Obj is the owning object/scope identity (0 for the global
//     scope of a window, otherwise the object or scope serial), Name the
//     property/variable name.
//   - Elem: Obj is the DOM node serial; Name/Extra unused.
//   - Handler: Obj is the target node serial, Name the event type, Extra
//     the handler identity h (function serial, or 0 for the element's
//     on-event attribute slot).
type Loc struct {
	Kind  Kind
	Obj   uint64
	Name  string
	Extra uint64
}

// VarLoc returns the location of variable/property name on owner obj.
func VarLoc(obj uint64, name string) Loc { return Loc{Kind: Var, Obj: obj, Name: name} }

// ElemLoc returns the HTML element location for an id-less DOM node,
// identified by its node serial.
func ElemLoc(node uint64) Loc { return Loc{Kind: Elem, Obj: node} }

// ElemIDLoc returns the HTML element location for an element with an id
// attribute, identified by (document, id). Keying on the id rather than the
// node lets a failed getElementById("dw") read the same logical location
// that parsing <div id="dw"> later writes — the read-before-create HTML
// race of §2.3 depends on this.
func ElemIDLoc(doc uint64, id string) Loc { return Loc{Kind: Elem, Obj: doc, Name: id} }

// HandlerLoc returns the event handler location (el, event, h).
func HandlerLoc(el uint64, event string, h uint64) Loc {
	return Loc{Kind: Handler, Obj: el, Name: event, Extra: h}
}

func (l Loc) String() string {
	switch l.Kind {
	case Var:
		if l.Obj == 0 {
			return fmt.Sprintf("var %s", l.Name)
		}
		return fmt.Sprintf("var obj%d.%s", l.Obj, l.Name)
	case Elem:
		if l.Name != "" {
			return fmt.Sprintf("elem #%s", l.Name)
		}
		return fmt.Sprintf("elem node%d", l.Obj)
	case Handler:
		return fmt.Sprintf("handler (#%d, %s, h%d)", l.Obj, l.Name, l.Extra)
	default:
		return fmt.Sprintf("loc(%v)", l.Kind)
	}
}

// AccessKind is read or write.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Context tags why an access happened. The detector ignores it; race
// classification (§2's four race types) and the §5.3 filters depend on it.
type Context uint8

const (
	// CtxPlain is an ordinary variable/property access.
	CtxPlain Context = iota
	// CtxFuncDecl is the hoisted write performed by a function
	// declaration (§4.1 Functions).
	CtxFuncDecl
	// CtxFuncCall is the read of a variable performed to invoke it as a
	// function. A CtxFuncDecl/CtxFuncCall race is a function race (§2.4).
	CtxFuncCall
	// CtxElemInsert is the write of an HTML element location caused by
	// inserting the element (parsing or dynamic insertion).
	CtxElemInsert
	// CtxElemRemove is the write caused by removing the element.
	CtxElemRemove
	// CtxElemLookup is a read of an HTML element location via an
	// accessor (getElementById, document.forms[i], …).
	CtxElemLookup
	// CtxHandlerAdd is a write of an event handler location by parsing an
	// on-event content attribute, assigning an on-event property, or
	// addEventListener.
	CtxHandlerAdd
	// CtxHandlerRemove is a write by removeEventListener.
	CtxHandlerRemove
	// CtxHandlerFire is the read of a handler location performed by
	// dispatching the event.
	CtxHandlerFire
	// CtxFormField marks accesses to the value/checked property of a form
	// field made by script (the §5.3 form filter keys on these).
	CtxFormField
	// CtxUserInput marks the write representing user input into a form
	// field (§4.1 Additional Cases, §5.2.2 typing simulation).
	CtxUserInput
)

var ctxNames = [...]string{
	CtxPlain:         "plain",
	CtxFuncDecl:      "func-decl",
	CtxFuncCall:      "func-call",
	CtxElemInsert:    "elem-insert",
	CtxElemRemove:    "elem-remove",
	CtxElemLookup:    "elem-lookup",
	CtxHandlerAdd:    "handler-add",
	CtxHandlerRemove: "handler-remove",
	CtxHandlerFire:   "handler-fire",
	CtxFormField:     "form-field",
	CtxUserInput:     "user-input",
}

func (c Context) String() string {
	if int(c) < len(ctxNames) {
		return ctxNames[c]
	}
	return fmt.Sprintf("ctx(%d)", uint8(c))
}
