package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLocIdentity(t *testing.T) {
	if VarLoc(1, "x") != VarLoc(1, "x") {
		t.Error("identical var locations unequal")
	}
	if VarLoc(1, "x") == VarLoc(2, "x") {
		t.Error("different owners collide")
	}
	if VarLoc(1, "x") == VarLoc(1, "y") {
		t.Error("different names collide")
	}
}

func TestKindsDisjoint(t *testing.T) {
	// Same numeric components, different kinds: distinct locations.
	v := VarLoc(7, "load")
	e := ElemIDLoc(7, "load")
	h := HandlerLoc(7, "load", 0)
	if v == e || e == h || v == h {
		t.Error("location kinds collide")
	}
}

func TestHandlerIdentityIncludesHandler(t *testing.T) {
	// §4.3: disjoint handlers for one event must not interfere.
	a := HandlerLoc(3, "click", 10)
	b := HandlerLoc(3, "click", 11)
	if a == b {
		t.Error("distinct handlers share a location")
	}
	if HandlerLoc(3, "click", 10) != a {
		t.Error("handler location not stable")
	}
}

func TestElemIDKeying(t *testing.T) {
	// The id-keyed form must be independent of node serials so a failed
	// lookup meets a later insertion.
	if ElemIDLoc(1, "dw") != ElemIDLoc(1, "dw") {
		t.Error("id-keyed element locations unstable")
	}
	if ElemIDLoc(1, "dw") == ElemIDLoc(2, "dw") {
		t.Error("documents share element locations")
	}
	if ElemLoc(5) == ElemIDLoc(5, "") {
		t.Log("anonymous and id-keyed forms coincide only when id is empty — by construction")
	}
}

func TestLocMapKey(t *testing.T) {
	m := map[Loc]int{}
	m[VarLoc(1, "x")] = 1
	m[ElemIDLoc(1, "x")] = 2
	m[HandlerLoc(1, "x", 0)] = 3
	if len(m) != 3 {
		t.Errorf("map collapsed locations: %v", m)
	}
	if m[VarLoc(1, "x")] != 1 {
		t.Error("lookup failed")
	}
}

func TestStrings(t *testing.T) {
	if s := VarLoc(0, "g").String(); !strings.Contains(s, "g") {
		t.Errorf("VarLoc string %q", s)
	}
	if s := VarLoc(4, "p").String(); !strings.Contains(s, "obj4") {
		t.Errorf("prop string %q", s)
	}
	if s := ElemLoc(9).String(); !strings.Contains(s, "elem") {
		t.Errorf("ElemLoc string %q", s)
	}
	if s := HandlerLoc(3, "load", 7).String(); !strings.Contains(s, "load") {
		t.Errorf("HandlerLoc string %q", s)
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("access kind strings")
	}
	for c := CtxPlain; c <= CtxUserInput; c++ {
		if strings.HasPrefix(c.String(), "ctx(") {
			t.Errorf("context %d unnamed", c)
		}
	}
}

// TestLocEqualityProperty: equality is exactly component-wise equality.
func TestLocEqualityProperty(t *testing.T) {
	f := func(o1, o2 uint64, n1, n2 string, e1, e2 uint64) bool {
		a := Loc{Kind: Var, Obj: o1, Name: n1, Extra: e1}
		b := Loc{Kind: Var, Obj: o2, Name: n2, Extra: e2}
		want := o1 == o2 && n1 == n2 && e1 == e2
		return (a == b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
