package op

import (
	"strings"
	"testing"
)

func TestNewAssignsDenseIDs(t *testing.T) {
	tab := &Table{}
	a := tab.New(KindParse, "a")
	b := tab.New(KindScript, "b")
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a, b)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestBeganStampsSequence(t *testing.T) {
	tab := &Table{}
	a := tab.New(KindParse, "a")
	b := tab.New(KindScript, "b")
	// Begin out of registration order.
	tab.Began(b)
	tab.Began(a)
	if tab.Get(b).Seq != 0 || tab.Get(a).Seq != 1 {
		t.Errorf("seqs: a=%d b=%d", tab.Get(a).Seq, tab.Get(b).Seq)
	}
	// Second Began is a no-op.
	tab.Began(b)
	if tab.Get(b).Seq != 0 {
		t.Error("Began re-stamped the sequence")
	}
}

func TestNeverBegan(t *testing.T) {
	tab := &Table{}
	a := tab.New(KindTimeout, "cleared timer")
	if tab.Get(a).Seq != -1 {
		t.Error("unexecuted op should have Seq -1")
	}
}

func TestSetLabel(t *testing.T) {
	tab := &Table{}
	a := tab.New(KindScript, "")
	tab.SetLabel(a, "exe main.js")
	if tab.Get(a).Label != "exe main.js" {
		t.Error("SetLabel did not stick")
	}
}

func TestGetPanicsOnInvalid(t *testing.T) {
	tab := &Table{}
	tab.New(KindInit, "x")
	for _, bad := range []ID{None, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", bad)
				}
			}()
			tab.Get(bad)
		}()
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindInit, KindParse, KindScript, KindHandler, KindTimeout,
		KindInterval, KindAnchor, KindJoin, KindUser, KindContinuation, KindNetwork}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Error("unknown kind formatting")
	}
}

func TestOpString(t *testing.T) {
	tab := &Table{}
	a := tab.New(KindParse, "<div id=dw>")
	s := tab.Get(a).String()
	if !strings.Contains(s, "parse") || !strings.Contains(s, "dw") {
		t.Errorf("Op.String = %q", s)
	}
	b := tab.New(KindJoin, "")
	if got := tab.Get(b).String(); !strings.Contains(got, "join") {
		t.Errorf("unlabeled Op.String = %q", got)
	}
}
