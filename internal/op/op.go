// Package op defines the operation identifiers and kinds that make up an
// execution of a web application, following §3.2 of "Race Detection for Web
// Applications" (PLDI 2012).
//
// Strictly the paper has only two atomic operation types during page
// loading — parsing an HTML element and executing script code — but, as in
// the paper, script execution is split into several kinds for convenience
// (inline/external script bodies, event handlers, timer callbacks).  Two
// additional synthetic kinds, Anchor and Join, represent the begin/end
// barriers of an event-dispatch set dispᵢ(E, T); they perform no memory
// accesses and exist purely so that happens-before edges to or from a whole
// dispatch set (e.g. rule 9 or rule 15) cost O(1) edges.
package op

import "fmt"

// ID identifies a single operation in an execution. IDs are dense, start at
// 1 and increase in the order operations are registered. None (0) is the ⊥
// value used by the race detector's LastRead/LastWrite maps before any
// access has been seen.
type ID int32

// None is the ⊥ operation identifier.
const None ID = 0

// Kind classifies an operation per §3.2.
type Kind uint8

const (
	// KindInit is the synthetic root operation that starts a page load.
	// Every other operation is transitively happens-after it.
	KindInit Kind = iota
	// KindParse is parse(E): parsing one static HTML element E.
	KindParse
	// KindScript is exe(E): executing the source of a script element E
	// (static or script-inserted).
	KindScript
	// KindHandler is the execution of one event handler due to an event
	// dispatch (an element of dispᵢ(E, T)).
	KindHandler
	// KindTimeout is cb(E): the callback of a setTimeout(E, _) call.
	KindTimeout
	// KindInterval is cbᵢ(E): the i-th callback of a setInterval(E, _).
	KindInterval
	// KindAnchor is the synthetic begin barrier of a dispatch set.
	KindAnchor
	// KindJoin is a synthetic barrier between handler groups inside one
	// dispatch (Appendix A phase/target ordering) and the end barrier of
	// a dispatch set.
	KindJoin
	// KindUser is a simulated user interaction that is not handler
	// execution itself (e.g. the logical "user typed into the box" write
	// source, §4.1 Additional Cases).
	KindUser
	// KindContinuation is the remainder A[k+1:|A|) of an operation A that
	// was split by an inline event dispatch (Appendix A).
	KindContinuation
	// KindNetwork is a network completion step that runs no user code
	// (e.g. resource bytes arriving) but can carry happens-before edges.
	KindNetwork
)

var kindNames = [...]string{
	KindInit:         "init",
	KindParse:        "parse",
	KindScript:       "exe",
	KindHandler:      "handler",
	KindTimeout:      "cb",
	KindInterval:     "cbi",
	KindAnchor:       "anchor",
	KindJoin:         "join",
	KindUser:         "user",
	KindContinuation: "cont",
	KindNetwork:      "net",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op describes one registered operation. The Label is free-form context for
// reports ("parse <div id=dw>", "exe main.js", `handler click #send`).
type Op struct {
	ID    ID
	Kind  Kind
	Label string
	// Seq is the order in which the operation began executing; for
	// operations that never ran (e.g. a timer cleared before firing) Seq
	// is -1. The detector does not depend on Seq; it is for reports.
	Seq int32
}

func (o Op) String() string {
	if o.Label == "" {
		return fmt.Sprintf("#%d:%s", o.ID, o.Kind)
	}
	return fmt.Sprintf("#%d:%s(%s)", o.ID, o.Kind, o.Label)
}

// Table owns the set of operations of one execution. The zero value is
// ready to use.
type Table struct {
	ops []Op // index = ID-1
	seq int32
}

// New registers a new operation of the given kind and returns its ID.
func (t *Table) New(kind Kind, label string) ID {
	id := ID(len(t.ops) + 1)
	t.ops = append(t.ops, Op{ID: id, Kind: kind, Label: label, Seq: -1})
	return id
}

// Began records that the operation started executing, stamping its sequence
// number. Calling Began twice is a no-op for the second call.
func (t *Table) Began(id ID) {
	o := t.get(id)
	if o.Seq < 0 {
		o.Seq = t.seq
		t.seq++
	}
}

// Get returns a copy of the operation record. It panics on an unknown or
// None ID: callers hold only IDs minted by New.
func (t *Table) Get(id ID) Op { return *t.get(id) }

// Len reports how many operations have been registered.
func (t *Table) Len() int { return len(t.ops) }

// SetLabel replaces an operation's label (used when the label is only known
// after registration, e.g. the URL of a script-inserted script).
func (t *Table) SetLabel(id ID, label string) { t.get(id).Label = label }

func (t *Table) get(id ID) *Op {
	if id <= None || int(id) > len(t.ops) {
		panic(fmt.Sprintf("op: invalid ID %d (have %d ops)", id, len(t.ops)))
	}
	return &t.ops[id-1]
}
