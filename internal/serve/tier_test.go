package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDetectorsEndpoint pins the capability listing: every kind the
// library declares, in order, with its tier and the service default.
func TestDetectorsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, b := get(t, ts, "/v1/detectors")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/detectors: %d %s", resp.StatusCode, b)
	}
	var dr DetectorsResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if dr.Default != "pairwise" || dr.Escalation != "pairwise-vc" {
		t.Fatalf("default %q escalation %q, want pairwise / pairwise-vc", dr.Default, dr.Escalation)
	}
	want := map[string]string{
		"pairwise": "exact", "pairwise-vc": "exact", "accessset": "exact",
		"predictive": "exact", "sampled": "sampled",
	}
	if len(dr.Detectors) != len(want) {
		t.Fatalf("listed %d detectors, want %d: %+v", len(dr.Detectors), len(want), dr.Detectors)
	}
	for _, d := range dr.Detectors {
		if want[d.Name] != d.Tier {
			t.Errorf("detector %q: tier %q, want %q", d.Name, d.Tier, want[d.Name])
		}
		if d.Default != (d.Name == "pairwise") {
			t.Errorf("detector %q: default = %v", d.Name, d.Default)
		}
	}
}

// TestSampledDetect drives the tier end-to-end over HTTP: a racy site at
// rate 1 escalates, reports the exact races, annotates the response with
// the tier's accounting, and repeats as a byte-identical cache hit.
func TestSampledDetect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"site":` + racySite + `,"seed":1,"detector":"sampled","sampleRate":1}`

	resp, cold := post(t, ts, "/v1/detect", req)
	if resp.StatusCode != 200 {
		t.Fatalf("cold POST: %d %s", resp.StatusCode, cold)
	}
	var dr DetectResponse
	if err := json.Unmarshal(cold, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Detector != "sampled" || dr.SampleRate != 1 {
		t.Fatalf("detector %q rate %v, want sampled at 1", dr.Detector, dr.SampleRate)
	}
	if !dr.Escalated || dr.SampledHits == 0 || len(dr.Races) == 0 {
		t.Fatalf("racy site at rate 1 should escalate with hits: %+v", dr)
	}
	if got := metric(t, ts, "serve.jobs.escalated"); got != 1 {
		t.Fatalf("serve.jobs.escalated = %d, want 1", got)
	}

	resp2, warm := post(t, ts, "/v1/detect", req)
	if h := resp2.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("repeat sampled request: X-Webracer-Cache = %q, want hit", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cached sampled response differs from cold run")
	}
}

// TestSampledDefaultRateSharesKey: "sampled" with the rate unset and
// "sampled" at the spelled-out default rate are the same job.
func TestSampledDefaultRateSharesKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, cold := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"detector":"sampled"}`)
	resp, warm := post(t, ts, "/v1/detect",
		`{"site":`+racySite+`,"detector":"sampled","sampleRate":0.25}`)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("spelled-out default rate missed the cache (%q)", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("bodies differ across equivalent sampled requests")
	}
}

// TestEscalationCrossPopulatesExactKey is the tiering economy at work:
// an escalated sampled job already paid for the exact run, so the exact
// request that follows is a cache hit — byte-identical to what a cold
// exact run on a fresh server produces.
func TestEscalationCrossPopulatesExactKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, sampled := post(t, ts, "/v1/detect",
		`{"site":`+racySite+`,"seed":1,"detector":"sampled","sampleRate":1}`)
	var dr DetectResponse
	if err := json.Unmarshal(sampled, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Escalated {
		t.Fatalf("sampled run did not escalate; cross-population untestable: %+v", dr)
	}

	exactReq := `{"site":` + racySite + `,"seed":1,"detector":"pairwise-vc"}`
	resp, warm := post(t, ts, "/v1/detect", exactReq)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("exact request after escalation: X-Webracer-Cache = %q, want hit", h)
	}

	_, fresh := newTestServer(t, Config{Workers: 1})
	respCold, cold := post(t, fresh, "/v1/detect", exactReq)
	if h := respCold.Header.Get("X-Webracer-Cache"); h != "miss" {
		t.Fatalf("fresh server exact request: X-Webracer-Cache = %q, want miss", h)
	}
	if !bytes.Equal(warm, cold) {
		t.Fatalf("cross-populated exact body differs from a cold exact run:\nwarm: %s\ncold: %s", warm, cold)
	}
}

// TestDefaultDetectorSampled: with the service configured for the cheap
// tier, bare requests run sampled and coalesce with explicit sampled
// requests.
func TestDefaultDetectorSampled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DefaultDetector: "sampled"})

	resp, b := get(t, ts, "/v1/detectors")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/detectors: %d", resp.StatusCode)
	}
	var caps DetectorsResponse
	if err := json.Unmarshal(b, &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Default != "sampled" {
		t.Fatalf("capability default %q, want sampled", caps.Default)
	}

	_, cold := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":1}`)
	var dr DetectResponse
	if err := json.Unmarshal(cold, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Detector != "sampled" || dr.SampleRate == 0 {
		t.Fatalf("bare request on a sampled-default server ran %q at rate %v", dr.Detector, dr.SampleRate)
	}
	resp2, warm := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":1,"detector":"sampled"}`)
	if h := resp2.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("explicit sampled vs default-tier request did not coalesce (%q)", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("default-tier and explicit sampled bodies differ")
	}
}

// TestSampledBadRequests maps the tier's validation errors to 400s, and
// a misconfigured default detector to a startup panic.
func TestSampledBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body, wantSub string
	}{
		{"rate above 1", `{"site":` + racySite + `,"detector":"sampled","sampleRate":1.5}`, "invalid sample rate"},
		{"negative rate", `{"site":` + racySite + `,"detector":"sampled","sampleRate":-0.5}`, "invalid sample rate"},
		{"rate on exact detector", `{"site":` + racySite + `,"detector":"pairwise-vc","sampleRate":0.5}`, "does not sample"},
		{"sampled exhaustive", `{"site":` + racySite + `,"detector":"sampled","exhaustive":true}`, "exhaustive"},
		{"unknown detector", `{"site":` + racySite + `,"detector":"quantum"}`, "sampled"},
	}
	for _, tc := range cases {
		resp, b := post(t, ts, "/v1/detect", tc.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), tc.wantSub) {
			t.Errorf("%s: body %q does not mention %q", tc.name, b, tc.wantSub)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("NewServer with an unknown DefaultDetector did not panic")
		}
	}()
	NewServer(Config{DefaultDetector: "quantum"})
}
