package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"
)

// GoldenWorkload boots a Server with the given worker count, drives the
// fixed golden request sequence through its full HTTP surface
// (middleware included), and returns the stable metrics export
// (obs.Metrics.WriteStableJSON) — counters plus every step-unit
// histogram, wall-time histograms excluded.
//
// The sequence is serial and synchronous, so every step-unit quantity —
// response bytes, executed operations, queue depths, cache counters —
// is a pure function of the request list: the returned bytes are
// identical for any worker count, which is exactly what the metricsdiff
// gate and TestGoldenMetricsServe pin. Changing the service's metrics
// (or the detector pipeline's operation counts) shows up here as a
// golden diff, never as silent drift.
func GoldenWorkload(workers int) ([]byte, error) {
	s := NewServer(Config{Workers: workers, MaxBodyBytes: 16 << 10})
	defer s.Close()
	h := s.Handler()

	expect := func(method, path, body string, want int) (*httptest.ResponseRecorder, error) {
		hr := httptest.NewRequest(method, path, strings.NewReader(body))
		if body != "" {
			hr.Header.Set("Content-Type", "application/json")
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, hr)
		if w.Code != want {
			return nil, fmt.Errorf("golden workload: %s %s = %d, want %d: %s",
				method, path, w.Code, want, w.Body.String())
		}
		return w, nil
	}

	// The fixed sequence: cold detects, a warm repeat, both sweep modes, a
	// fault sweep, a job-status read, the capability endpoint, and the two
	// deterministic error paths (400 bad request, 413 oversized body).
	first, err := expect(http.MethodPost, "/v1/detect", `{"spec":{"kind":"corpus","index":1},"seed":7}`, 200)
	if err != nil {
		return nil, err
	}
	steps := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/v1/detect", `{"spec":{"kind":"corpus","index":1},"seed":7}`, 200},
		{http.MethodPost, "/v1/detect", `{"spec":{"kind":"corpus","index":2},"seed":7}`, 200},
		{http.MethodPost, "/v1/sweep", `{"spec":{"kind":"corpus","index":1},"seeds":3}`, 200},
		{http.MethodPost, "/v1/sweep", `{"spec":{"kind":"corpus","index":2},"mode":"delay-one"}`, 200},
		{http.MethodPost, "/v1/faultsweep", `{"spec":{"kind":"fault","index":1},"plans":2}`, 200},
		{http.MethodGet, "/v1/detectors", "", 200},
		{http.MethodPost, "/v1/detect", `{"spec":`, 400},
		{http.MethodPost, "/v1/detect", `{"pad":"` + strings.Repeat("x", 32<<10) + `"}`, 413},
	}
	for _, st := range steps {
		if _, err := expect(st.method, st.path, st.body, st.want); err != nil {
			return nil, err
		}
	}
	// Job-status read for the first job's content-addressed id.
	var idOnly struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &idOnly); err != nil || idOnly.ID == "" {
		return nil, fmt.Errorf("golden workload: first response has no id: %v", err)
	}
	if _, err := expect(http.MethodGet, "/v1/jobs/"+idOnly.ID, "", 200); err != nil {
		return nil, err
	}

	// Drain before export so every job's post-response bookkeeping has
	// landed; the export itself excludes all wall-time histograms.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		return nil, fmt.Errorf("golden workload: drain: %w", err)
	}
	var buf bytes.Buffer
	if err := s.Metrics().WriteStableJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
