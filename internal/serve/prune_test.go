package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestPrunedSweep pins the prune field's service semantics: a pruned
// sweep returns the unpruned sweep's aggregate exactly (modulo the added
// classes summary), occupies its own cache entry, repeats as a cache
// hit, and surfaces its class counters on /metrics. The schedule-
// dependent sched spec actually prunes: with 6 seeds some must collapse.
func TestPrunedSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const body = `{"spec":{"kind":"sched","index":0},"seeds":6}`
	const pruned = `{"spec":{"kind":"sched","index":0},"seeds":6,"prune":true}`

	_, plainB := post(t, ts, "/v1/sweep", body)
	var plain SweepResponse
	if err := json.Unmarshal(plainB, &plain); err != nil {
		t.Fatal(err)
	}

	resp, prunedB := post(t, ts, "/v1/sweep", pruned)
	if resp.StatusCode != 200 {
		t.Fatalf("pruned sweep: %d %s", resp.StatusCode, prunedB)
	}
	if h := resp.Header.Get("X-Webracer-Cache"); h != "miss" {
		t.Fatalf("pruned sweep collided with the unpruned cache entry (%q)", h)
	}
	var pr SweepResponse
	if err := json.Unmarshal(prunedB, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Classes == nil {
		t.Fatalf("pruned sweep has no classes summary: %s", prunedB)
	}
	if pr.Classes.Executions != 6 || pr.Classes.Distinct+pr.Classes.Pruned != 6 {
		t.Fatalf("class accounting: %+v", pr.Classes)
	}
	if pr.Classes.Pruned == 0 {
		t.Fatalf("sched spec pruned nothing: %+v", pr.Classes)
	}
	// Everything except the job id and the classes summary must match the
	// unpruned aggregate.
	pr.ID, pr.Classes = plain.ID, nil
	prB, _ := json.Marshal(pr)
	plB, _ := json.Marshal(plain)
	if !bytes.Equal(prB, plB) {
		t.Fatalf("pruned aggregate differs:\npruned:   %s\nunpruned: %s", prB, plB)
	}

	resp, warm := post(t, ts, "/v1/sweep", pruned)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("pruned repeat: X-Webracer-Cache = %q", h)
	}
	if !bytes.Equal(warm, prunedB) {
		t.Fatal("pruned repeat differs from cold run")
	}

	_, mb := get(t, ts, "/metrics")
	for _, name := range []string{"explore.classes.executions", "explore.classes.distinct", "explore.classes.pruned"} {
		if !strings.Contains(string(mb), name) {
			t.Errorf("/metrics missing %s after a pruned sweep", name)
		}
	}
}

// TestPrunedSweepDelayOne: the delay-one mode prunes too, with the same
// aggregate-equality contract.
func TestPrunedSweepDelayOne(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, plainB := post(t, ts, "/v1/sweep", `{"site":`+racySite+`,"mode":"delay-one"}`)
	resp, prunedB := post(t, ts, "/v1/sweep", `{"site":`+racySite+`,"mode":"delay-one","prune":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("pruned delay-one: %d %s", resp.StatusCode, prunedB)
	}
	var plain, pr SweepResponse
	if err := json.Unmarshal(plainB, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(prunedB, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Classes == nil || pr.Classes.Executions != pr.Runs {
		t.Fatalf("delay-one class accounting: %+v runs %d", pr.Classes, pr.Runs)
	}
	pr.ID, pr.Classes = plain.ID, nil
	prB, _ := json.Marshal(pr)
	plB, _ := json.Marshal(plain)
	if !bytes.Equal(prB, plB) {
		t.Fatalf("pruned delay-one aggregate differs:\npruned:   %s\nunpruned: %s", prB, plB)
	}
}

// TestPruneDetectorRejected: prune with a non-replayable detector is a
// 400 at resolve time — nothing invalid is enqueued.
func TestPruneDetectorRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, det := range []string{"predictive", "sampled"} {
		resp, b := post(t, ts, "/v1/sweep",
			`{"site":`+racySite+`,"prune":true,"detector":"`+det+`"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("prune with %s: %d %s, want 400", det, resp.StatusCode, b)
		}
	}
}
