package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"webracer"
	"webracer/internal/fault"
	"webracer/internal/loader"
	"webracer/internal/sitegen"
)

// Request is the JSON body of the three POST endpoints. Exactly one of
// Site and Spec names the page under test; everything else tunes the run.
// Fields irrelevant to an endpoint are ignored there (Seeds and Mode
// belong to /v1/sweep, Plans and FaultSeed to /v1/faultsweep, Fault and
// Session to /v1/detect).
type Request struct {
	// Site inlines the site's resources (URL → body).
	Site *SiteSpec `json:"site,omitempty"`
	// Spec generates a synthetic site (internal/sitegen) instead of
	// inlining one — handy for load tests and demos.
	Spec *GenSpec `json:"spec,omitempty"`
	// Seed drives all simulated nondeterminism (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// Entry is the page to load (default "index.html").
	Entry string `json:"entry,omitempty"`
	// Explore switches automatic exploration (default true).
	Explore *bool `json:"explore,omitempty"`
	// Exhaustive enables feedback-directed exploration rounds.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Filters applies the §5.3 report filters.
	Filters bool `json:"filters,omitempty"`
	// Detector names the algorithm: pairwise, pairwise-vc, accessset,
	// predictive or sampled. Absent means the server's configured default
	// tier (Config.DefaultDetector; pairwise out of the box). GET
	// /v1/detectors lists the accepted spellings.
	Detector string `json:"detector,omitempty"`
	// SampleRate is the sampled tier's location sampling rate in (0, 1].
	// Absent with the sampled detector means webracer.DefaultSampleRate;
	// setting it with an exact detector is a 400.
	SampleRate *float64 `json:"sampleRate,omitempty"`
	// TimeoutMS caps the run's wall-clock time. 0 (or absent) applies the
	// server default; positive values are clamped to the server maximum.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`
	// Fault injects a deterministic network fault plan into the detect
	// run (see internal/fault).
	Fault *FaultSpec `json:"fault,omitempty"`
	// Session switches /v1/detect's response to the full exported
	// session (ops, happens-before edges, races) instead of the compact
	// report.
	Session bool `json:"session,omitempty"`
	// Seeds is /v1/sweep's schedule count (default 8).
	Seeds int `json:"seeds,omitempty"`
	// Mode selects /v1/sweep's strategy: "seeds" (default — N simulated
	// schedules, union of races) or "delay-one" (baseline plus one run
	// per resource with that resource made pathologically slow).
	Mode string `json:"mode,omitempty"`
	// Prune enables HB-equivalence schedule pruning for /v1/sweep: every
	// schedule still executes, but the detector pass runs once per
	// canonical trace class and the response carries the class summary.
	// The sweep's result bytes are byte-identical to the unpruned
	// sweep's modulo the added classes field. Requires a
	// trace-replayable detector (pairwise, accessset, pairwise-vc);
	// combining it with predictive or sampled is a 400. Ignored by the
	// other endpoints.
	Prune bool `json:"prune,omitempty"`
	// Plans is /v1/faultsweep's number of derived fault plans (default 6).
	Plans int `json:"plans,omitempty"`
	// FaultSeed is /v1/faultsweep's base seed for plan derivation
	// (default: the run seed).
	FaultSeed int64 `json:"faultSeed,omitempty"`
	// Async makes the POST return 202 with the job id immediately; poll
	// GET /v1/jobs/{id} for the result. Async does not change the job's
	// identity: a sync and an async submission of the same work coalesce.
	Async bool `json:"async,omitempty"`
}

// SiteSpec inlines a site: its resources keyed by URL, plus a display
// name used in reports.
type SiteSpec struct {
	// Name labels the site in reports (default "site").
	Name string `json:"name,omitempty"`
	// Resources maps URL → body; the entry page must be present.
	Resources map[string]string `json:"resources"`
}

// GenSpec asks the server to generate a synthetic site.
type GenSpec struct {
	// Kind picks the blueprint family: "corpus" (default —
	// sitegen.SpecFor), "stress" (sitegen.StressSpec), "fault"
	// (sitegen.FaultSpec) or "sched" (sitegen.SchedSpec, the
	// schedule-dependent corpus the predictive detector targets).
	Kind string `json:"kind,omitempty"`
	// Seed is the corpus seed (corpus kind only; default 1).
	Seed int64 `json:"seed,omitempty"`
	// Index selects the site within the family.
	Index int `json:"index"`
}

// FaultSpec mirrors fault.Plan in JSON: per-shape probabilities plus
// forced per-URL overrides, all driven by the plan seed.
type FaultSpec struct {
	// Seed drives every injection decision.
	Seed int64 `json:"seed"`
	// Drop is the probability a fetch errors after its normal latency.
	Drop float64 `json:"drop,omitempty"`
	// Refuse is the probability a fetch fails immediately.
	Refuse float64 `json:"refuse,omitempty"`
	// Status is the probability a fetch returns an HTTP error status.
	Status float64 `json:"status,omitempty"`
	// Stall is the probability a fetch is delayed to StallMS.
	Stall float64 `json:"stall,omitempty"`
	// Truncate is the probability a body arrives truncated.
	Truncate float64 `json:"truncate,omitempty"`
	// StallMS is the stalled-arrival latency (0 means 30000 virtual ms).
	StallMS float64 `json:"stallMS,omitempty"`
	// PerURL forces a fault kind for specific URLs, by the names
	// fault.Kind.String prints ("none" protects a URL).
	PerURL map[string]string `json:"perURL,omitempty"`
}

// plan converts the spec to a fault.Plan.
func (fs *FaultSpec) plan() (fault.Plan, error) {
	p := fault.Plan{
		Seed:       fs.Seed,
		DropProb:   fs.Drop,
		FailProb:   fs.Refuse,
		StatusProb: fs.Status,
		StallProb:  fs.Stall,
		TruncProb:  fs.Truncate,
		StallMS:    fs.StallMS,
	}
	if len(fs.PerURL) > 0 {
		p.PerURL = make(map[string]fault.Kind, len(fs.PerURL))
		for url, name := range fs.PerURL {
			k, err := fault.ParseKind(name)
			if err != nil {
				return fault.Plan{}, err
			}
			p.PerURL[url] = k
		}
	}
	return p, nil
}

// jobKind names the endpoint family a job belongs to; it is part of the
// job's identity (a detect and a sweep of the same site never collide).
type jobKind string

// The three job kinds, one per POST endpoint.
const (
	kindDetect     jobKind = "detect"
	kindSweep      jobKind = "sweep"
	kindFaultSweep jobKind = "faultsweep"
)

// resolved is a request normalized to its effective inputs: the site, the
// fully defaulted webracer.Config and endpoint parameters, and the
// content-addressed key those inputs hash to. Two requests that differ
// only in spelling (an absent field vs. its default) resolve to the same
// key.
type resolved struct {
	kind    jobKind
	site    *loader.Site
	cfg     webracer.Config
	session bool
	seeds   int
	mode    string
	prune   bool
	plans   int
	fseed   int64
	async   bool
	key     string
}

// resolve normalizes req for kind against the server's defaults and
// computes its cache key. Validation errors here become 400s — nothing
// invalid is ever enqueued.
func (s *Server) resolve(kind jobKind, req *Request) (*resolved, error) {
	r := &resolved{kind: kind, async: req.Async, session: req.Session && kind == kindDetect}

	site, err := resolveSite(req)
	if err != nil {
		return nil, err
	}
	r.site = site

	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	cfg := webracer.DefaultConfig(seed)
	if req.Explore != nil {
		cfg.Explore = *req.Explore
	}
	if req.Exhaustive {
		cfg.Explore, cfg.Exhaustive = true, true
	}
	cfg.Filters = req.Filters
	detName := req.Detector
	if detName == "" {
		detName = s.cfg.DefaultDetector
	}
	det, err := webracer.ParseDetector(detName)
	if err != nil {
		return nil, err
	}
	cfg.Detector = det
	if req.SampleRate != nil {
		cfg.SampleRate = *req.SampleRate
	}
	if cfg.Detector == webracer.DetectorSampled && cfg.SampleRate == 0 {
		// Pin the default rate explicitly so "sampled" and "sampled at the
		// default rate" resolve to the same cache key.
		cfg.SampleRate = webracer.DefaultSampleRate
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.EntryURL = req.Entry
	if cfg.EntryURL == "" {
		cfg.EntryURL = "index.html"
	}
	if _, ok := site.Resources[cfg.EntryURL]; !ok {
		return nil, fmt.Errorf("entry page %q not in site", cfg.EntryURL)
	}
	cfg.RunTimeout = s.effectiveTimeout(req.TimeoutMS)
	if kind == kindDetect && req.Fault != nil {
		plan, err := req.Fault.plan()
		if err != nil {
			return nil, err
		}
		cfg.Fault = &plan
	}
	r.cfg = cfg

	switch kind {
	case kindSweep:
		r.seeds = req.Seeds
		if r.seeds < 1 {
			r.seeds = 8
		}
		switch req.Mode {
		case "", "seeds":
			r.mode = "seeds"
		case "delay-one":
			r.mode = "delay-one"
		default:
			return nil, fmt.Errorf("unknown sweep mode %q (want seeds or delay-one)", req.Mode)
		}
		if req.Prune {
			switch cfg.Detector {
			case webracer.DetectorPredictive, webracer.DetectorSampled:
				return nil, fmt.Errorf("prune requires a trace-replayable detector (pairwise, accessset, pairwise-vc); got %q", cfg.Detector)
			}
			r.prune = true
		}
	case kindFaultSweep:
		r.plans = req.Plans
		if r.plans < 1 {
			r.plans = 6
		}
		r.fseed = req.FaultSeed
		if r.fseed == 0 {
			r.fseed = seed
		}
	}

	r.key = r.computeKey()
	return r, nil
}

// effectiveTimeout folds the request's wall budget with the server
// defaults: absent/zero applies DefaultTimeout, and MaxTimeout (when set)
// clamps everything.
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// resolveSite materializes the request's site: inline resources or a
// generated blueprint.
func resolveSite(req *Request) (*loader.Site, error) {
	switch {
	case req.Site != nil && req.Spec != nil:
		return nil, fmt.Errorf("request names both site and spec; pick one")
	case req.Site != nil:
		if len(req.Site.Resources) == 0 {
			return nil, fmt.Errorf("site has no resources")
		}
		name := req.Site.Name
		if name == "" {
			name = "site"
		}
		site := loader.NewSite(name)
		for url, body := range req.Site.Resources {
			site.Add(url, body)
		}
		return site, nil
	case req.Spec != nil:
		g := req.Spec
		switch g.Kind {
		case "", "corpus":
			seed := g.Seed
			if seed == 0 {
				seed = 1
			}
			return sitegen.Generate(sitegen.SpecFor(seed, g.Index)), nil
		case "stress":
			return sitegen.Generate(sitegen.StressSpec(g.Index)), nil
		case "fault":
			return sitegen.Generate(sitegen.FaultSpec(g.Index)), nil
		case "sched":
			return sitegen.Generate(sitegen.SchedSpec(g.Index)), nil
		default:
			return nil, fmt.Errorf("unknown spec kind %q (want corpus, stress, fault or sched)", g.Kind)
		}
	default:
		return nil, fmt.Errorf("request names neither site nor spec")
	}
}

// keySpec is the canonical identity of a job, hashed into its key. Every
// field is an *input* the run's bytes depend on — see DESIGN.md's
// determinism contract. The version prefix retires all keys at once
// whenever the response encoding changes.
type keySpec struct {
	V          string `json:"v"`
	Kind       string `json:"kind"`
	SiteName   string `json:"siteName"`
	SiteHash   string `json:"siteHash"`
	Seed       int64  `json:"seed"`
	Entry      string `json:"entry"`
	Explore    bool   `json:"explore"`
	Exhaustive bool   `json:"exhaustive"`
	Filters    bool   `json:"filters"`
	Detector   string `json:"detector"`
	// SampleRate is non-zero only for the sampled tier (resolve pins the
	// default rate), so every pre-tier key hashes exactly as before.
	SampleRate float64 `json:"sampleRate,omitempty"`
	TimeoutMS  int64   `json:"timeoutMS"`
	Fault      string  `json:"fault,omitempty"`
	Session    bool    `json:"session,omitempty"`
	Seeds      int     `json:"seeds,omitempty"`
	Mode       string  `json:"mode,omitempty"`
	// Prune is set only for pruned sweep jobs (omitempty, like
	// SampleRate), so every pre-existing key hashes exactly as before. A
	// pruned and an unpruned sweep of the same inputs are distinct jobs:
	// their response bodies differ (the classes field).
	Prune     bool  `json:"prune,omitempty"`
	Plans     int   `json:"plans,omitempty"`
	FaultSeed int64 `json:"faultSeed,omitempty"`
}

// keyVersion retires every cached result when the response encoding or
// key derivation changes incompatibly.
const keyVersion = "webracerd/1"

// computeKey hashes the resolved inputs into the job's content-addressed
// identity: SHA-256 over the canonical keySpec JSON, site content included
// via siteHash. The key doubles as the job id and the cache key; it is
// what makes identical requests coalesce and repeat requests hit cache.
func (r *resolved) computeKey() string {
	spec := keySpec{
		V:          keyVersion,
		Kind:       string(r.kind),
		SiteName:   r.site.Name,
		SiteHash:   siteHash(r.site),
		Seed:       r.cfg.Seed,
		Entry:      r.cfg.EntryURL,
		Explore:    r.cfg.Explore,
		Exhaustive: r.cfg.Exhaustive,
		Filters:    r.cfg.Filters,
		Detector:   r.cfg.Detector.String(),
		SampleRate: r.cfg.SampleRate,
		TimeoutMS:  r.cfg.RunTimeout.Milliseconds(),
		Session:    r.session,
		Seeds:      r.seeds,
		Mode:       r.mode,
		Prune:      r.prune,
		Plans:      r.plans,
		FaultSeed:  r.fseed,
	}
	if r.cfg.Fault != nil {
		spec.Fault = r.cfg.Fault.Label()
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		// keySpec is all plain values; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// siteHash canonically hashes a site's content: URLs in sorted order,
// every string length-prefixed so boundaries cannot alias. Two sites with
// the same resources hash identically no matter how they were supplied —
// the content-addressed half of the cache key.
func siteHash(site *loader.Site) string {
	urls := make([]string, 0, len(site.Resources))
	for url := range site.Resources {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	h := sha256.New()
	for _, url := range urls {
		fmt.Fprintf(h, "%d:%s%d:%s", len(url), url, len(site.Resources[url]), site.Resources[url])
	}
	return hex.EncodeToString(h.Sum(nil))
}
