package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHealthzDrainingPin pins the drain contract on /healthz: 200 while
// serving, 503 with a "draining" body once Drain has been requested —
// the signal load balancers and the router's active probes key off.
func TestHealthzDrainingPin(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz = %d %s, want 200", resp.StatusCode, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, b = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d %s, want 503", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "draining") {
		t.Fatalf("draining /healthz body %q must say draining", b)
	}
	if resp.Header.Get(HeaderRequestID) == "" {
		t.Fatal("draining 503 must still echo a request id")
	}
}

// TestRequestIDEchoOnErrors: every error response — 400 bad request,
// 413 oversized body, 429 backpressure — echoes the client's
// X-Webracer-Request-Id (and 429 keeps its Retry-After), so a rejected
// request correlates in client and server logs by one grep.
func TestRequestIDEchoOnErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: 16 << 10})

	postID := func(body, id string) *http.Response {
		t.Helper()
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		if id != "" {
			hr.Header.Set(HeaderRequestID, id)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// 400: malformed body.
	resp := postID(`{"spec":`, "err-400")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "err-400" {
		t.Fatalf("400 request id = %q, want err-400", got)
	}

	// 413: oversized body.
	resp = postID(`{"pad":"`+strings.Repeat("x", 32<<10)+`"}`, "err-413")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "err-413" {
		t.Fatalf("413 request id = %q, want err-413", got)
	}

	// 429: hold the one worker, fill the one queue slot, then overflow.
	release := make(chan struct{})
	started := make(chan string, 8)
	s.jobGate = func(_ jobKind, key string) {
		started <- key
		<-release
	}
	defer close(release)
	detect := func(seed int) string {
		return fmt.Sprintf(`{"site":%s,"seed":%d,"async":true}`, racySite, seed)
	}
	if resp := postID(detect(1), ""); resp.StatusCode != 202 {
		t.Fatalf("job 1: %d", resp.StatusCode)
	}
	<-started
	if resp := postID(detect(2), ""); resp.StatusCode != 202 {
		t.Fatalf("job 2: %d", resp.StatusCode)
	}
	resp = postID(detect(3), "err-429")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "err-429" {
		t.Fatalf("429 request id = %q, want err-429", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 lost its Retry-After")
	}

	// Unusable client ids (overlong, non-printable) are replaced with a
	// minted wr- id, never truncated or relayed.
	for _, bad := range []string{strings.Repeat("a", 200), "has space"} {
		resp = postID(`{"spec":`, bad)
		got := resp.Header.Get(HeaderRequestID)
		if got == bad || !strings.HasPrefix(got, "wr-") {
			t.Fatalf("unusable id %q came back as %q, want a minted wr- id", bad, got)
		}
	}
}

// TestAccessLogLine: one structured JSON line per request, carrying the
// request id, method, path, status, endpoint family, cache state, job-key
// prefix, and sizes — the operator's per-request audit trail.
func TestAccessLogLine(t *testing.T) {
	var logBuf bytes.Buffer
	s := NewServer(Config{Workers: 1, AccessLog: &logBuf})
	defer s.Close()
	h := s.Handler()

	do := func(body, id string) *httptest.ResponseRecorder {
		hr := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(body))
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(HeaderRequestID, id)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, hr)
		return w
	}
	w := do(`{"spec":{"kind":"corpus","index":1},"seed":7}`, "log-1")
	if w.Code != 200 {
		t.Fatalf("detect: %d %s", w.Code, w.Body.String())
	}
	do(`{"spec":{"kind":"corpus","index":1},"seed":7}`, "log-2") // warm repeat

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	for i, wantCache := range []string{"miss", "hit"} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, lines[i])
		}
		if rec["reqId"] != fmt.Sprintf("log-%d", i+1) || rec["method"] != "POST" ||
			rec["path"] != "/v1/detect" || rec["endpoint"] != "detect" ||
			rec["status"] != float64(200) || rec["cache"] != wantCache {
			t.Fatalf("line %d fields wrong: %s", i, lines[i])
		}
		key, _ := rec["key"].(string)
		if len(key) != keyPrefixLen {
			t.Fatalf("line %d key prefix %q, want %d hex chars", i, key, keyPrefixLen)
		}
	}
}

// TestBackendsJSONShapeUnderProbes pins GET /v1/backends' JSON shape
// while active health probes are mutating backend state concurrently:
// every poll must parse, list all backends in flag order with the full
// field set, and converge to healthy=true for a healthy fleet.
func TestBackendsJSONShapeUnderProbes(t *testing.T) {
	c := newCluster(t, 3, Config{Workers: 1}, RouterConfig{HealthInterval: 5 * time.Millisecond})

	wantFields := []string{"url", "name", "healthy", "consecutiveFails", "breakerOpen"}
	allHealthy := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !allHealthy {
		resp, body := get(t, c.rts, "/v1/backends")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/backends = %d %s", resp.StatusCode, body)
		}
		var shape struct {
			Backends      []map[string]any `json:"backends"`
			Attempts      int              `json:"attempts"`
			LocalFallback bool             `json:"localFallback"`
		}
		if err := json.Unmarshal(body, &shape); err != nil {
			t.Fatalf("parse /v1/backends: %v\n%s", err, body)
		}
		if len(shape.Backends) != 3 || shape.Attempts != 3 || !shape.LocalFallback {
			t.Fatalf("shape wrong: %s", body)
		}
		allHealthy = true
		for i, b := range shape.Backends {
			if b["name"] != fmt.Sprintf("b%d", i) {
				t.Fatalf("backend %d name = %v, want flag order b%d", i, b["name"], i)
			}
			for _, f := range wantFields {
				if _, ok := b[f]; !ok {
					t.Fatalf("backend %d missing field %q: %s", i, f, body)
				}
			}
			if b["healthy"] != true {
				allHealthy = false
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !allHealthy {
		t.Fatal("fleet never converged to healthy under active probes")
	}
}

// syncBuffer is a mutex-guarded log sink — cluster tests share one
// writer across several servers' access loggers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRouterAttemptsHeaderAndIDPropagation: a routed response reports
// its forward attempts, and the client's request id survives the hop to
// the backend (the backend's access log sees the same id the client
// sent).
func TestRouterAttemptsHeaderAndIDPropagation(t *testing.T) {
	var backendLog syncBuffer
	c := newCluster(t, 2, Config{Workers: 1, AccessLog: &backendLog}, RouterConfig{})

	hr, err := http.NewRequest(http.MethodPost, c.rts.URL+"/v1/detect", strings.NewReader(detectReq(1, 9)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(HeaderRequestID, "prop-1")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed detect: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "prop-1" {
		t.Fatalf("routed response id = %q, want prop-1", got)
	}
	if got := resp.Header.Get(HeaderAttempts); got != "1" {
		t.Fatalf("X-Webracer-Attempts = %q, want 1", got)
	}
	if b := resp.Header.Get(HeaderBackend); b != "b0" && b != "b1" {
		t.Fatalf("X-Webracer-Backend = %q", b)
	}
	// The backend's access line lands after its handler returns, which
	// can trail the router's relay — poll briefly.
	waitUntil(t, func() bool {
		return strings.Contains(backendLog.String(), `"reqId":"prop-1"`)
	})
}
