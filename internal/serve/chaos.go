package serve

import (
	"encoding/binary"
	"hash/fnv"
)

// ChaosKind is one service-level fault shape the router's chaos harness
// can inject into a forward attempt.
type ChaosKind uint8

const (
	// ChaosNone lets the attempt through untouched (zero value).
	ChaosNone ChaosKind = iota
	// ChaosKill fails the attempt as a severed connection: the backend
	// process died (or the network partitioned) before a byte came back.
	ChaosKill
	// ChaosStall fails the attempt as a tripped per-request timeout: the
	// backend is alive but wedged past RequestTimeout. The harness
	// reports the deadline outcome directly instead of burning real
	// wall-clock, which is what keeps the chaos battery fast and its
	// counters independent of machine speed.
	ChaosStall
	// ChaosCorrupt lets the forward complete, then flips a byte of the
	// response body — a torn proxy buffer or bit-rotted page cache. The
	// router's response validation must catch it.
	ChaosCorrupt
)

// String names the kind for counters and test output.
func (k ChaosKind) String() string {
	switch k {
	case ChaosNone:
		return "none"
	case ChaosKill:
		return "kill"
	case ChaosStall:
		return "stall"
	case ChaosCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ChaosPlan is the deterministic service-level fault injector for router
// tests: every decision is a pure function of (plan seed, backend URL,
// job key, attempt index) — the same pure-FNV-1a decision style as
// internal/fault — so a chaotic sweep's retry/failover counters are
// byte-stable across runs, machines, and worker counts. The zero plan
// injects nothing; a nil plan is always ChaosNone.
//
// Dead backends model a killed process: every attempt against them
// fails, regardless of probabilities. Probabilities model flaky
// infrastructure: each (backend, key, attempt) rolls once, evaluated in
// kill → stall → corrupt order against the single roll (the fault.Plan
// convention), so their sum is the per-attempt fault rate.
type ChaosPlan struct {
	// Seed drives every decision.
	Seed int64
	// Dead marks backend base URLs whose every attempt fails as killed.
	Dead map[string]bool
	// KillProb is the probability an attempt dies as a severed
	// connection.
	KillProb float64
	// StallProb is the probability an attempt trips the per-request
	// timeout.
	StallProb float64
	// CorruptProb is the probability a completed response body arrives
	// corrupted.
	CorruptProb float64
}

// decide picks the fault for one forward attempt.
func (p *ChaosPlan) decide(backend, key string, attempt int) ChaosKind {
	if p == nil {
		return ChaosNone
	}
	if p.Dead[backend] {
		return ChaosKill
	}
	u := p.roll(backend, key, attempt)
	for _, step := range []struct {
		prob float64
		kind ChaosKind
	}{
		{p.KillProb, ChaosKill},
		{p.StallProb, ChaosStall},
		{p.CorruptProb, ChaosCorrupt},
	} {
		if u < step.prob {
			return step.kind
		}
		u -= step.prob
	}
	return ChaosNone
}

// roll maps hash(seed, backend, key, attempt) to [0, 1) — FNV-1a over the
// exact byte encoding, nothing platform-dependent, so decisions replay
// everywhere (the internal/fault roll, with the backend in place of the
// URL salt).
func (p *ChaosPlan) roll(backend, key string, attempt int) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(p.Seed))
	h.Write(b[:])
	h.Write([]byte(backend))
	h.Write([]byte{0})
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	return float64(h.Sum64()>>11) / (1 << 53)
}
