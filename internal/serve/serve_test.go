package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// racySite is the README quickstart page: one form race, found at any
// seed.
const racySite = `{"name":"quick","resources":{"index.html":"<input type=\"text\" id=\"depart\" /><script>document.getElementById(\"depart\").value = \"hint\";</script>"}}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func metric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	_, b := get(t, ts, "/metrics")
	// /metrics mixes scalar counters/gauges with histogram objects; raw
	// decode first, then parse only the scalar asked for.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	var v int64
	if err := json.Unmarshal(m[name], &v); err != nil {
		t.Fatalf("metric %s is not scalar: %s", name, m[name])
	}
	return v
}

// TestDetectCacheHitByteIdentical is the acceptance gate: a repeated
// identical request is served from cache, byte for byte the cold run's
// response, with an observable cache-hit counter increment.
func TestDetectCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"site":` + racySite + `,"seed":1}`

	resp1, cold := post(t, ts, "/v1/detect", req)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold POST: %d %s", resp1.StatusCode, cold)
	}
	if h := resp1.Header.Get("X-Webracer-Cache"); h != "miss" {
		t.Fatalf("cold X-Webracer-Cache = %q, want miss", h)
	}
	hitsBefore := metric(t, ts, "serve.cache.hits")

	resp2, warm := post(t, ts, "/v1/detect", req)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm POST: %d", resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("warm X-Webracer-Cache = %q, want hit", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit differs from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
	if hits := metric(t, ts, "serve.cache.hits"); hits != hitsBefore+1 {
		t.Fatalf("serve.cache.hits = %d, want %d", hits, hitsBefore+1)
	}

	// The body is a real report: one form-value race on #depart.
	var dr DetectResponse
	if err := json.Unmarshal(cold, &dr); err != nil {
		t.Fatalf("parse detect response: %v", err)
	}
	if len(dr.Races) != 1 {
		t.Fatalf("races = %+v, want exactly 1", dr.Races)
	}
	if dr.ID == "" || dr.Site != "quick" {
		t.Fatalf("bad response identity: %+v", dr)
	}
}

// TestDefaultSpellingsShareKey: a request with every default spelled out
// resolves to the same job as the bare request — the second is a hit.
func TestDefaultSpellingsShareKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, cold := post(t, ts, "/v1/detect", `{"site":`+racySite+`}`)
	resp, warm := post(t, ts, "/v1/detect",
		`{"site":`+racySite+`,"seed":1,"entry":"index.html","explore":true,"detector":"pairwise"}`)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("spelled-out defaults missed the cache (%q)", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("bodies differ across equivalent requests")
	}
}

// TestConcurrentIdenticalPostsCoalesce: identical requests in flight at
// once run once — single-flight — and every caller gets the same bytes.
func TestConcurrentIdenticalPostsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	release := make(chan struct{})
	started := make(chan string, 8)
	s.jobGate = func(_ jobKind, key string) {
		started <- key
		<-release
	}

	req := `{"site":` + racySite + `,"seed":7}`
	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, bodies[0] = post(t, ts, "/v1/detect", req)
	}()
	<-started // leader is in flight; followers must coalesce
	wg.Add(clients - 1)
	for i := 1; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, ts, "/v1/detect", req)
			bodies[i] = b
			if h := resp.Header.Get("X-Webracer-Cache"); h != "coalesced" && h != "hit" {
				t.Errorf("follower %d X-Webracer-Cache = %q", i, h)
			}
		}(i)
	}
	// Followers attach before the leader finishes.
	waitUntil(t, func() bool { return metricQuiet(ts, "serve.jobs.coalesced") >= 1 })
	close(release)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	if got := metric(t, ts, "serve.jobs.completed"); got != 1 {
		t.Fatalf("serve.jobs.completed = %d, want 1 (single-flight)", got)
	}
}

// TestQueueFullReturns429: with one worker held and the one queue slot
// filled, the next distinct job is refused with 429 + Retry-After.
func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan string, 8)
	s.jobGate = func(_ jobKind, key string) {
		started <- key
		<-release
	}
	defer close(release)

	detect := func(seed int) string {
		return fmt.Sprintf(`{"site":%s,"seed":%d,"async":true}`, racySite, seed)
	}
	if resp, b := post(t, ts, "/v1/detect", detect(1)); resp.StatusCode != 202 {
		t.Fatalf("job 1: %d %s", resp.StatusCode, b)
	}
	<-started // worker now held
	if resp, b := post(t, ts, "/v1/detect", detect(2)); resp.StatusCode != 202 {
		t.Fatalf("job 2 (queue slot): %d %s", resp.StatusCode, b)
	}
	resp, b := post(t, ts, "/v1/detect", detect(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d %s, want 429", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := metric(t, ts, "serve.queue.rejected"); got != 1 {
		t.Fatalf("serve.queue.rejected = %d, want 1", got)
	}
}

// TestDrainFinishesInFlight: drain refuses new work with 503 but the held
// job completes, and its result remains fetchable.
func TestDrainFinishesInFlight(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := make(chan struct{})
	started := make(chan string, 1)
	s.jobGate = func(_ jobKind, key string) {
		started <- key
		<-release
	}

	req := `{"site":` + racySite + `,"seed":3,"async":true}`
	resp, b := post(t, ts, "/v1/detect", req)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil || st.ID == "" {
		t.Fatalf("bad 202 body %s: %v", b, err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitUntil(t, func() bool {
		resp, _ := get(t, ts, "/healthz")
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	if resp, _ := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":99}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d, want 503", resp.StatusCode)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) with job still held", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, b = get(t, ts, "/v1/jobs/"+st.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("GET job after drain: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(b, &st); err != nil || st.Status != "done" || len(st.Result) == 0 {
		t.Fatalf("drained job not completed: %s", b)
	}
}

// TestAsyncLifecycle: 202 → poll → done, with the polled result equal to
// the synchronous body for the same request.
func TestAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, b := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":5,"async":true}`)
	if resp.StatusCode != 202 {
		t.Fatalf("async submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		_, jb := get(t, ts, "/v1/jobs/"+st.ID)
		_ = json.Unmarshal(jb, &st)
		return st.Status == "done"
	})
	resp, sync := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":5}`)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("sync repeat after async: X-Webracer-Cache = %q, want hit", h)
	}
	// The polled result rides inside JobStatus, so the outer encoder
	// re-indents it; compare the compacted forms.
	var asyncBuf, syncBuf bytes.Buffer
	if err := json.Compact(&asyncBuf, st.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&syncBuf, sync); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asyncBuf.Bytes(), syncBuf.Bytes()) {
		t.Fatalf("async result differs from sync body:\nasync: %s\nsync: %s", st.Result, sync)
	}
}

// TestSweepEndpoints: both sweep modes and the fault sweep respond, are
// deterministic (repeat = cache hit with equal bytes), and carry the
// expected aggregate shapes.
func TestSweepEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		path, body string
		check      func(t *testing.T, b []byte)
	}{
		{"/v1/sweep", `{"site":` + racySite + `,"seeds":3}`, func(t *testing.T, b []byte) {
			var sr SweepResponse
			if err := json.Unmarshal(b, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Mode != "seeds" || sr.Seeds != 3 || len(sr.PerSeed) != 3 {
				t.Fatalf("sweep shape: %+v", sr)
			}
			if len(sr.Stable) != 1 {
				t.Fatalf("stable = %v, want the one race at every seed", sr.Stable)
			}
		}},
		{"/v1/sweep", `{"site":` + racySite + `,"mode":"delay-one"}`, func(t *testing.T, b []byte) {
			var sr SweepResponse
			if err := json.Unmarshal(b, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Mode != "delay-one" || sr.Runs != 2 { // baseline + 1 resource
				t.Fatalf("delay-one shape: %+v", sr)
			}
		}},
		{"/v1/faultsweep", `{"spec":{"kind":"fault","index":1},"plans":2}`, func(t *testing.T, b []byte) {
			var fr FaultSweepResponse
			if err := json.Unmarshal(b, &fr); err != nil {
				t.Fatal(err)
			}
			if fr.Sweep == nil || len(fr.Sweep.Runs) != 3 { // baseline + 2 plans
				t.Fatalf("faultsweep shape: %s", b)
			}
		}},
	}
	for i, tc := range cases {
		resp, cold := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != 200 {
			t.Fatalf("case %d: %d %s", i, resp.StatusCode, cold)
		}
		tc.check(t, cold)
		resp, warm := post(t, ts, tc.path, tc.body)
		if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
			t.Fatalf("case %d repeat: X-Webracer-Cache = %q", i, h)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("case %d: repeat differs from cold run", i)
		}
	}
}

// TestSessionResponse: "session": true returns the full exported session
// and does not collide with the compact response's cache entry.
func TestSessionResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, compact := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":1}`)
	resp, full := post(t, ts, "/v1/detect", `{"site":`+racySite+`,"seed":1,"session":true}`)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "miss" {
		t.Fatalf("session request hit the compact entry (%q)", h)
	}
	var sr SessionResponse
	if err := json.Unmarshal(full, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Session == nil || len(sr.Session.Ops) == 0 || len(sr.Session.Races) == 0 {
		t.Fatalf("session response missing ops/races: %s", full[:200])
	}
	if bytes.Equal(compact, full) {
		t.Fatal("session and compact bodies are identical")
	}
}

// TestPredictiveDetect: a "detector":"predictive" request over the
// schedule-dependent sched corpus runs, reports the predicted-race count,
// and caches byte-identically like any other detector — prediction is a
// pure function of (site, seed), so the determinism contract holds.
func TestPredictiveDetect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"spec":{"kind":"sched","index":0},"detector":"predictive"}`
	resp, cold := post(t, ts, "/v1/detect", req)
	if resp.StatusCode != 200 {
		t.Fatalf("predictive detect: %d %s", resp.StatusCode, cold)
	}
	resp, warm := post(t, ts, "/v1/detect", req)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("repeat predictive request: %q, want hit", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("predictive repeat differs from cold run")
	}
	var dr DetectResponse
	if err := json.Unmarshal(cold, &dr); err != nil {
		t.Fatalf("parse predictive response: %v", err)
	}
	if dr.Detector != "predictive" {
		t.Errorf("detector = %q, want predictive", dr.Detector)
	}
	if dr.Predicted == 0 {
		t.Error("sched-00 run predicted no races; the corpus lost its point")
	}
	if len(dr.Races) == 0 {
		t.Error("predictive response carries no race reports")
	}

	// Other detectors never set the field — the key space keeps them apart.
	resp, base := post(t, ts, "/v1/detect", `{"spec":{"kind":"sched","index":0}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("baseline detect: %d", resp.StatusCode)
	}
	var br DetectResponse
	if err := json.Unmarshal(base, &br); err != nil {
		t.Fatal(err)
	}
	if br.Predicted != 0 {
		t.Errorf("pairwise response has predicted = %d, want 0", br.Predicted)
	}
}

// TestBadRequests: every invalid shape is refused at the door with 400,
// never enqueued; unknown jobs are 404.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{}`, // no site, no spec
		`{"site":` + racySite + `,"spec":{"index":1}}`,           // both
		`{"site":` + racySite + `,"detector":"quantum"}`,         // bad detector
		`{"site":` + racySite + `,"entry":"missing.html"}`,       // bad entry
		`{"site":` + racySite + `,"tyop":1}`,                     // unknown field
		`{"site":` + racySite + `,"fault":{"perURL":{"x":"?"}}}`, // bad fault kind
		`not json`,
	} {
		resp, _ := post(t, ts, "/v1/detect", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: %d, want 400", body, resp.StatusCode)
		}
	}
	if resp, _ := post(t, ts, "/v1/sweep", `{"site":`+racySite+`,"mode":"sideways"}`); resp.StatusCode != 400 {
		t.Error("bad sweep mode accepted")
	}
	if resp, _ := get(t, ts, "/v1/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown job id not 404")
	}
	if got := metric(t, ts, "serve.jobs.accepted"); got != 0 {
		t.Fatalf("invalid requests were enqueued: accepted = %d", got)
	}
}

// TestGeneratedSiteDetect: spec-generated sites run and cache like inline
// ones.
func TestGeneratedSiteDetect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"spec":{"kind":"corpus","seed":1,"index":7},"seed":42}`
	resp, cold := post(t, ts, "/v1/detect", req)
	if resp.StatusCode != 200 {
		t.Fatalf("detect: %d %s", resp.StatusCode, cold)
	}
	resp, warm := post(t, ts, "/v1/detect", req)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("repeat: %q, want hit", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("generated-site repeat differs")
	}
}

// metricQuiet is metric without the test failure path, for polling.
func metricQuiet(ts *httptest.Server, name string) int64 {
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return -1
	}
	var v int64
	if json.Unmarshal(m[name], &v) != nil {
		return -1
	}
	return v
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
