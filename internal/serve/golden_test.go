package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenMetricsServe pins the service-layer stable metrics export:
// the golden workload must produce byte-identical exports at workers 1
// and 4, and those bytes must match testdata/golden/metrics-serve.json.
// Regenerate deliberately with
// `go test ./internal/serve -run TestGoldenMetricsServe -update`
// (the -update flag is shared with the chaos battery's goldens).
func TestGoldenMetricsServe(t *testing.T) {
	got1, err := GoldenWorkload(1)
	if err != nil {
		t.Fatalf("GoldenWorkload(1): %v", err)
	}
	got4, err := GoldenWorkload(4)
	if err != nil {
		t.Fatalf("GoldenWorkload(4): %v", err)
	}
	if !bytes.Equal(got1, got4) {
		t.Fatalf("stable export differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", got1, got4)
	}

	path := filepath.Join("..", "..", "testdata", "golden", "metrics-serve.json")
	if *updateChaosGolden {
		if err := os.WriteFile(path, got1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got1, want) {
		t.Fatalf("serve metrics drifted from golden (rerun with -update if deliberate):\ngot:\n%s\nwant:\n%s", got1, want)
	}
}
