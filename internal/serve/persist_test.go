package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestRequestBodyLimit413: a body over MaxBodyBytes is refused with 413
// before any of it is decoded; the same request under the limit runs.
func TestRequestBodyLimit413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1024})

	big := `{"site":{"name":"big","resources":{"index.html":"` + strings.Repeat("x", 4096) + `"}}}`
	resp, b := post(t, ts, "/v1/detect", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", resp.StatusCode, b)
	}
	if !bytes.Contains(b, []byte("1024")) {
		t.Fatalf("413 body %s does not name the limit", b)
	}
	if resp, _ := post(t, ts, "/v1/detect", `{"site":`+racySite+`}`); resp.StatusCode != 200 {
		t.Fatal("under-limit request refused")
	}
}

// TestRetryAfterScalesWithQueueDepth: the 429 Retry-After hint is
// estimate × (1 + ⌈waiting/workers⌉) capped at 60 — a full deep queue
// tells clients to come back later than a full shallow one.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	for _, tc := range []struct {
		estimate int
		want     string
	}{
		{estimate: 2, want: "10"},  // 2 × (1 + 4/1 waiting)
		{estimate: 45, want: "60"}, // 45 × 5 = 225, capped
	} {
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, RetryAfter: tc.estimate})
		release := make(chan struct{})
		started := make(chan string, 8)
		s.jobGate = func(_ jobKind, key string) {
			started <- key
			<-release
		}

		submit := func(seed int) *http.Response {
			resp, _ := post(t, ts, "/v1/detect",
				fmt.Sprintf(`{"site":%s,"seed":%d,"async":true}`, racySite, seed))
			return resp
		}
		if submit(1).StatusCode != 202 {
			t.Fatal("job 1 refused")
		}
		<-started // worker held; the next 4 fill the queue
		for seed := 2; seed <= 5; seed++ {
			if resp := submit(seed); resp.StatusCode != 202 {
				t.Fatalf("queue job seed %d refused: %d", seed, resp.StatusCode)
			}
		}
		resp := submit(6)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("estimate %d: overflow job got %d, want 429", tc.estimate, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != tc.want {
			t.Fatalf("estimate %d with 4 waiting: Retry-After = %q, want %q", tc.estimate, ra, tc.want)
		}
		close(release)
	}
}

// TestStoreHitSecondLevel: with a cache too small to hold the result,
// the persistent store answers the repeat request (X-Webracer-Cache:
// store-hit) without re-running the job.
func TestStoreHitSecondLevel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1, StoreDir: t.TempDir()})
	req := `{"site":` + racySite + `,"seed":1}`
	_, cold := post(t, ts, "/v1/detect", req)

	resp, warm := post(t, ts, "/v1/detect", req)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "store-hit" {
		t.Fatalf("X-Webracer-Cache = %q, want store-hit (cache budget is 1 byte)", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("store bytes differ from the run that wrote them")
	}
	if got := metric(t, ts, "serve.jobs.completed"); got != 1 {
		t.Fatalf("serve.jobs.completed = %d, want 1 — the store hit must not recompute", got)
	}
	if got := metric(t, ts, "serve.store.hits"); got != 1 {
		t.Fatalf("serve.store.hits = %d, want 1", got)
	}
}

// TestStorePersistenceAcrossRestart: results survive a process restart —
// the store recovers them at boot and warms the LRU, so the first repeat
// request on the new process is already an in-memory hit with zero
// executions.
func TestStorePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := `{"site":` + racySite + `,"seed":42}`

	s1 := NewServer(Config{Workers: 1, StoreDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	_, cold := post(t, ts1, "/v1/detect", req)
	ts1.Close()
	s1.Close()
	if ents, err := os.ReadDir(dir); err != nil || len(ents) == 0 {
		t.Fatalf("store dir empty after run: %v %v", ents, err)
	}

	s2 := NewServer(Config{Workers: 1, StoreDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	resp, warm := post(t, ts2, "/v1/detect", req)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" {
		t.Fatalf("X-Webracer-Cache = %q after restart, want hit (recovery warms the LRU)", h)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("restarted server returned different bytes")
	}
	if got := metric(t, ts2, "serve.jobs.completed"); got != 0 {
		t.Fatalf("restarted server ran %d jobs for a recovered key, want 0", got)
	}
	if got := metric(t, ts2, "serve.store.recovered"); got < 1 {
		t.Fatalf("serve.store.recovered = %d, want ≥ 1", got)
	}
}
