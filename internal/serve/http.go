package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"webracer/internal/obs"
)

// Response and request headers of the observability layer. Every response
// — success or error — echoes the request id, so a 429 in a client log
// and a retry in a router log correlate by one grep.
const (
	// HeaderRequestID carries the request's correlation id. Accepted from
	// the client when present (so ids survive router → backend hops and
	// external tracing systems can mint their own), minted otherwise, and
	// echoed on every response including 4xx/5xx.
	HeaderRequestID = "X-Webracer-Request-Id"
	// HeaderJob names the content-addressed job key a POST resolved to —
	// the same value as the body's "id" field, surfaced as a header so
	// access logs and clients can correlate without parsing bodies.
	HeaderJob = "X-Webracer-Job"
	// HeaderAttempts reports how many forward attempts a routed request
	// consumed (router responses only; absent on cache hits, which never
	// leave the process).
	HeaderAttempts = "X-Webracer-Attempts"
	// HeaderCache is the cache-state header ("hit", "store-hit", "miss",
	// "coalesced") set since PR 5; named here so the observability layer
	// reads it by one constant.
	HeaderCache = "X-Webracer-Cache"
	// HeaderBackend names the node that produced a routed response
	// ("local" for the router itself); set since PR 8.
	HeaderBackend = "X-Webracer-Backend"
)

// maxRequestIDLen caps accepted client request ids — anything longer is
// replaced with a minted id rather than truncated, so a log line never
// carries half an id.
const maxRequestIDLen = 128

// requestID returns hr's accepted or minted correlation id. Client ids
// are taken verbatim when they are printable, header-safe and within
// length; anything else (including absence) gets a fresh "wr-" + 16 hex
// chars id. The id is not a determinism surface — minting uses real
// randomness — which is why it travels only in headers and the access
// log, never in response bodies.
func requestID(hr *http.Request) string {
	id := hr.Header.Get(HeaderRequestID)
	if id != "" && len(id) <= maxRequestIDLen && isHeaderSafe(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degenerate fallback; correlation ids are best-effort.
		return "wr-00000000deadbeef"
	}
	return "wr-" + hex.EncodeToString(b[:])
}

// isHeaderSafe reports whether every byte of s is printable non-space
// ASCII — ids are grep tokens, not free text.
func isHeaderSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// endpointLabel maps a request to its histogram/access-log endpoint
// family: the /v1 route name, or "other" for the operational routes.
func endpointLabel(hr *http.Request) string {
	p := hr.URL.Path
	switch {
	case p == "/v1/detect", p == "/v1/sweep", p == "/v1/faultsweep":
		return strings.TrimPrefix(p, "/v1/")
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "jobs"
	case p == "/v1/backends":
		return "backends"
	case p == "/v1/detectors":
		return "detectors"
	default:
		return "other"
	}
}

// statusWriter captures the response status and body size on the way
// through — the access log's and latency histograms' view of the
// response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status code.
func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes (and defaults the status like net/http does).
func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// accessLogger serializes structured access-log lines onto one writer.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// accessRecord is one request's access-log line. Fields marshal in
// declaration order (hand-built, not reflection) so lines are stable for
// tooling: request id, method, path, outcome, then correlation detail.
type accessRecord struct {
	reqID    string
	method   string
	path     string
	status   int
	endpoint string
	cache    string
	backend  string
	attempts int
	key      string // job-key prefix (12 hex chars), "" when unresolved
	bytes    int64
	wallMS   int64
}

// log writes one JSON line. Best-effort: a failed write drops the line,
// never the request.
func (a *accessLogger) log(rec accessRecord) {
	if a == nil || a.w == nil {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"reqId":`)
	writeJSONString(&buf, rec.reqID)
	buf.WriteString(`,"method":`)
	writeJSONString(&buf, rec.method)
	buf.WriteString(`,"path":`)
	writeJSONString(&buf, rec.path)
	fmt.Fprintf(&buf, `,"status":%d,"endpoint":`, rec.status)
	writeJSONString(&buf, rec.endpoint)
	if rec.cache != "" {
		buf.WriteString(`,"cache":`)
		writeJSONString(&buf, rec.cache)
	}
	if rec.backend != "" {
		buf.WriteString(`,"backend":`)
		writeJSONString(&buf, rec.backend)
	}
	if rec.attempts > 0 {
		fmt.Fprintf(&buf, `,"attempts":%d`, rec.attempts)
	}
	if rec.key != "" {
		buf.WriteString(`,"key":`)
		writeJSONString(&buf, rec.key)
	}
	fmt.Fprintf(&buf, `,"bytes":%d,"ms":%d}`, rec.bytes, rec.wallMS)
	buf.WriteByte('\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.w.Write(buf.Bytes())
}

// writeJSONString appends s as a JSON string (encoding/json escaping).
func writeJSONString(buf *bytes.Buffer, s string) {
	b, _ := json.Marshal(s)
	buf.Write(b)
}

// keyPrefixLen is how much of the 64-hex job key the access log and
// HeaderJob-derived tooling print — enough to be unique in practice,
// short enough to scan.
const keyPrefixLen = 12

// keyPrefix shortens a job key for logs.
func keyPrefix(key string) string {
	if len(key) > keyPrefixLen {
		return key[:keyPrefixLen]
	}
	return key
}

// httpObs is the per-mux request-observability state: the endpoint
// latency/size histograms and the optional access log. Server and Router
// each wrap their mux in exactly one of these.
type httpObs struct {
	metrics *obs.Metrics
	access  *accessLogger
}

// newHTTPObs builds the middleware state over the shared registry.
// accessW may be nil (no access log).
func newHTTPObs(m *obs.Metrics, accessW io.Writer) *httpObs {
	ho := &httpObs{metrics: m}
	if accessW != nil {
		ho.access = &accessLogger{w: accessW}
	}
	return ho
}

// wrap is the observability middleware: it assigns the request id (and
// echoes it on the response before the handler can write), times the
// request into the per-endpoint histograms, and emits the access-log
// line. Histogram families per endpoint:
//
//	serve.http.<endpoint>.bytes    step-unit: 2xx response body sizes —
//	                               byte-stable by the determinism
//	                               contract, so golden-testable
//	serve.http.<endpoint>.wall_ms  wall-clock latency (stable-export
//	                               excluded)
func (ho *httpObs) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, hr *http.Request) {
		id := requestID(hr)
		// Normalize the inbound header so downstream handlers (the router's
		// forward path, the access log) read the effective id.
		hr.Header.Set(HeaderRequestID, id)
		w.Header().Set(HeaderRequestID, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, hr)
		wallMS := time.Since(start).Milliseconds()

		ep := endpointLabel(hr)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if sw.status < 300 {
			ho.metrics.Histogram("serve.http."+ep+".bytes", "bytes", httpBytesBounds).Record(sw.bytes)
		}
		ho.metrics.WallHistogram("serve.http."+ep+".wall_ms", "ms", wallMSBounds).Record(wallMS)

		attempts, _ := strconv.Atoi(sw.Header().Get(HeaderAttempts))
		ho.access.log(accessRecord{
			reqID:    id,
			method:   hr.Method,
			path:     hr.URL.Path,
			status:   sw.status,
			endpoint: ep,
			cache:    sw.Header().Get(HeaderCache),
			backend:  sw.Header().Get(HeaderBackend),
			attempts: attempts,
			key:      keyPrefix(sw.Header().Get(HeaderJob)),
			bytes:    sw.bytes,
			wallMS:   wallMS,
		})
	})
}

// The shared bucket families. Log-spaced so one layout serves cache hits
// (sub-millisecond, sub-kilobyte) and hundred-second sweeps alike.
var (
	// wallMSBounds covers 1ms .. ~131s.
	wallMSBounds = obs.ExpBuckets(1, 2, 18)
	// httpBytesBounds covers 64B .. 64MiB.
	httpBytesBounds = obs.ExpBuckets(64, 4, 11)
	// opsBounds covers 1 .. ~1M executed operations.
	opsBounds = obs.ExpBuckets(1, 4, 11)
	// depthBounds covers queue depths 0-rooted up to 4096.
	depthBounds = obs.ExpBuckets(1, 2, 13)
	// attemptBounds covers 1..8 forward attempts.
	attemptBounds = obs.LinearBuckets(1, 1, 8)
)
