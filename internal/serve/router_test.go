package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// cluster is an in-process backend fleet plus the router in front of it
// — the topology `make cluster` exercises.
type cluster struct {
	backends []*Server
	tss      []*httptest.Server
	router   *Router
	rts      *httptest.Server
}

// names returns the pinned backend identities b0..bN-1 (stable ring
// placement while httptest picks ports).
func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("b%d", i)
	}
	return out
}

// newCluster boots n backends with cfg each (StoreDir, when set, is
// suffixed per backend) and a router with rcfg in front. rcfg.Backends
// and BackendNames are filled in; BackoffBase is disabled unless the
// test set one, so batteries don't sleep.
func newCluster(t *testing.T, n int, cfg Config, rcfg RouterConfig) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < n; i++ {
		bcfg := cfg
		if bcfg.StoreDir != "" {
			bcfg.StoreDir = fmt.Sprintf("%s/b%d", bcfg.StoreDir, i)
		}
		s := NewServer(bcfg)
		ts := httptest.NewServer(s.Handler())
		c.backends = append(c.backends, s)
		c.tss = append(c.tss, ts)
		rcfg.Backends = append(rcfg.Backends, ts.URL)
	}
	rcfg.BackendNames = names(n)
	if rcfg.BackoffBase == 0 {
		rcfg.BackoffBase = -1 // no retry sleeps in tests
	}
	// The router's local server runs the same config as the backends —
	// the "same resolution flags" contract from OPERATIONS.md — with its
	// own store directory when persistence is on.
	lcfg := cfg
	if lcfg.StoreDir != "" {
		lcfg.StoreDir = cfg.StoreDir + "/local"
	}
	local := NewServer(lcfg)
	c.router = NewRouter(local, rcfg)
	c.rts = httptest.NewServer(c.router.Handler())
	t.Cleanup(func() {
		c.rts.Close()
		c.router.Close()
		local.Close()
		for i, ts := range c.tss {
			ts.Close()
			c.backends[i].Close()
		}
	})
	return c
}

// detectReq builds a small deterministic detect request body.
func detectReq(idx int, seed int64) string {
	return fmt.Sprintf(`{"spec":{"kind":"corpus","index":%d},"seed":%d}`, idx, seed)
}

// TestRouterRoutesAndRelaysBackendCache: distinct jobs spread across the
// fleet, every response names its backend, and a repeat POST relays the
// backend's cache hit — the router never recomputes what a node already
// knows.
func TestRouterRoutesAndRelaysBackendCache(t *testing.T) {
	c := newCluster(t, 3, Config{Workers: 2}, RouterConfig{})
	used := map[string]bool{}
	for i := 0; i < 8; i++ {
		resp, body := post(t, c.rts, "/v1/detect", detectReq(i, 1))
		if resp.StatusCode != 200 {
			t.Fatalf("job %d: %d %s", i, resp.StatusCode, body)
		}
		be := resp.Header.Get("X-Webracer-Backend")
		if !strings.HasPrefix(be, "b") {
			t.Fatalf("job %d: X-Webracer-Backend = %q", i, be)
		}
		used[be] = true

		again, warm := post(t, c.rts, "/v1/detect", detectReq(i, 1))
		if h := again.Header.Get("X-Webracer-Cache"); h != "hit" && h != "store-hit" {
			t.Fatalf("job %d repeat: X-Webracer-Cache = %q, want a cache hit", i, h)
		}
		if again.Header.Get("X-Webracer-Backend") != be {
			t.Fatalf("job %d lost backend affinity: %q then %q", i, be, again.Header.Get("X-Webracer-Backend"))
		}
		if !bytes.Equal(body, warm) {
			t.Fatalf("job %d: repeat differs from first run", i)
		}
	}
	if len(used) < 2 {
		t.Fatalf("8 keys all hashed to one backend: %v", used)
	}
}

// TestRouterSingleFlight: identical requests in flight at the router
// coalesce into one forward and one backend execution — single-flight is
// preserved end-to-end through the distribution layer.
func TestRouterSingleFlight(t *testing.T) {
	c := newCluster(t, 3, Config{Workers: 2}, RouterConfig{})
	release := make(chan struct{})
	started := make(chan string, 8)
	for _, b := range c.backends {
		b.jobGate = func(_ jobKind, key string) {
			started <- key
			<-release
		}
	}

	req := detectReq(3, 77)
	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, bodies[0] = post(t, c.rts, "/v1/detect", req)
	}()
	<-started // the one backend execution is in flight
	wg.Add(clients - 1)
	for i := 1; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = post(t, c.rts, "/v1/detect", req)
		}(i)
	}
	waitUntil(t, func() bool { return metricQuiet(c.rts, "serve.router.coalesced") >= clients-1 })
	close(release)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	total := int64(0)
	for _, b := range c.backends {
		total += b.Metrics().Counter("serve.jobs.completed").Value()
	}
	if total != 1 {
		t.Fatalf("cluster executed %d jobs for one key, want 1", total)
	}
	if got := metricQuiet(c.rts, "serve.router.forwarded"); got != 1 {
		t.Fatalf("serve.router.forwarded = %d, want 1", got)
	}
}

// TestRouterFailoverOnBackendKilledMidSweep: a real mid-sweep kill — the
// backend's listener closes between jobs — costs retries and failovers,
// never a 5xx, and every body is byte-identical to a healthy single
// node's answer.
func TestRouterFailoverOnBackendKilledMidSweep(t *testing.T) {
	// Reference: a lone healthy node.
	_, ref := newTestServer(t, Config{Workers: 2})
	var want [][]byte
	const jobs = 12
	for i := 0; i < jobs; i++ {
		resp, b := post(t, ref, "/v1/detect", detectReq(i, 5))
		if resp.StatusCode != 200 {
			t.Fatalf("reference job %d: %d", i, resp.StatusCode)
		}
		want = append(want, b)
	}

	c := newCluster(t, 3, Config{Workers: 2}, RouterConfig{})
	for i := 0; i < jobs; i++ {
		if i == jobs/4 {
			c.tss[1].Close() // kill b1 mid-sweep
		}
		resp, b := post(t, c.rts, "/v1/detect", detectReq(i, 5))
		if resp.StatusCode >= 500 {
			t.Fatalf("job %d after kill: %d %s — the cluster must absorb a dead node", i, resp.StatusCode, b)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("job %d: %d %s", i, resp.StatusCode, b)
		}
		if !bytes.Equal(b, want[i]) {
			t.Fatalf("job %d: cluster bytes differ from healthy single node", i)
		}
	}
	if got := metricQuiet(c.rts, "serve.router.retries"); got < 1 {
		t.Fatal("a mid-sweep kill cost no retries — the dead backend was never primary? raise jobs")
	}
	if got := metricQuiet(c.rts, "serve.router.failover"); got < 1 {
		t.Fatal("no failovers recorded")
	}
}

// TestRouterLocalFallback: when every candidate is dead and the attempt
// budget is spent, the router executes locally — total cluster loss
// degrades to one node's throughput, not to errors.
func TestRouterLocalFallback(t *testing.T) {
	c := newCluster(t, 1, Config{Workers: 1}, RouterConfig{Attempts: 2})
	c.tss[0].Close() // the whole "cluster" is down

	resp, body := post(t, c.rts, "/v1/detect", detectReq(2, 9))
	if resp.StatusCode != 200 {
		t.Fatalf("POST with cluster down: %d %s", resp.StatusCode, body)
	}
	if be := resp.Header.Get("X-Webracer-Backend"); be != "local" {
		t.Fatalf("X-Webracer-Backend = %q, want local", be)
	}
	if got := metricQuiet(c.rts, "serve.router.local_fallback"); got != 1 {
		t.Fatalf("serve.router.local_fallback = %d, want 1", got)
	}
	// And the bytes match a healthy node's.
	_, ref := newTestServer(t, Config{Workers: 1})
	_, want := post(t, ref, "/v1/detect", detectReq(2, 9))
	if !bytes.Equal(body, want) {
		t.Fatal("local-fallback bytes differ from a healthy node")
	}
}

// TestRouterBreaker: repeated failures open a backend's circuit (visible
// on /v1/backends), subsequent requests skip the corpse without burning
// an attempt on it, and after the cooldown a half-open probe is allowed
// through.
func TestRouterBreaker(t *testing.T) {
	c := newCluster(t, 1, Config{Workers: 1}, RouterConfig{
		Attempts:        1,
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
	})
	c.tss[0].Close()

	for i := 0; i < 2; i++ { // two failures trip the breaker
		if resp, _ := post(t, c.rts, "/v1/detect", detectReq(i, 11)); resp.StatusCode != 200 {
			t.Fatalf("job %d: %d", i, resp.StatusCode)
		}
	}
	if got := metricQuiet(c.rts, "serve.router.breaker_opened"); got != 1 {
		t.Fatalf("serve.router.breaker_opened = %d, want 1", got)
	}
	resp, b := get(t, c.rts, "/v1/backends")
	var br BackendsResponse
	if err := json.Unmarshal(b, &br); err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET /v1/backends: %d %v", resp.StatusCode, err)
	}
	if len(br.Backends) != 1 || !br.Backends[0].BreakerOpen || br.Backends[0].ConsecutiveFails < 2 {
		t.Fatalf("backend state: %+v, want open breaker", br.Backends)
	}

	forwardedBefore := metricQuiet(c.rts, "serve.router.forwarded")
	if resp, _ := post(t, c.rts, "/v1/detect", detectReq(2, 11)); resp.StatusCode != 200 {
		t.Fatal("open-breaker request failed")
	}
	if got := metricQuiet(c.rts, "serve.router.forwarded"); got != forwardedBefore {
		t.Fatalf("open breaker still forwarded (%d → %d)", forwardedBefore, got)
	}
	if got := metricQuiet(c.rts, "serve.router.breaker_skips"); got < 1 {
		t.Fatal("no breaker skips counted")
	}

	time.Sleep(60 * time.Millisecond) // past the cooldown: half-open
	post(t, c.rts, "/v1/detect", detectReq(3, 11))
	if got := metricQuiet(c.rts, "serve.router.forwarded"); got <= forwardedBefore {
		t.Fatal("half-open probe never went out after cooldown")
	}
}

// TestRouterRejectsBadRequestsLocally: the router resolves before it
// routes, so malformed and oversized bodies are refused at the edge —
// zero forwards, and the same 400/413 surface a single node has.
func TestRouterRejectsBadRequestsLocally(t *testing.T) {
	c := newCluster(t, 2, Config{Workers: 1, MaxBodyBytes: 512}, RouterConfig{})
	for body, want := range map[string]int{
		`{}`:       400,
		`not json`: 400,
		`{"site":` + racySite + `,"detector":"quantum"}`:                                         400,
		`{"site":{"name":"big","resources":{"index.html":"` + strings.Repeat("x", 2048) + `"}}}`: 413,
	} {
		resp, _ := post(t, c.rts, "/v1/detect", body)
		if resp.StatusCode != want {
			t.Errorf("body %.40q: %d, want %d", body, resp.StatusCode, want)
		}
	}
	if got := metricQuiet(c.rts, "serve.router.forwarded"); got != 0 {
		t.Fatalf("bad requests were forwarded: %d", got)
	}
}

// TestRouterAsyncAndJobPolling: async submissions route, and GET
// /v1/jobs/{id} follows the same consistent hash to find the job's
// backend; the polled result equals the synchronous body.
func TestRouterAsyncAndJobPolling(t *testing.T) {
	c := newCluster(t, 3, Config{Workers: 2}, RouterConfig{})
	resp, b := post(t, c.rts, "/v1/detect", `{"spec":{"kind":"corpus","index":4},"seed":2,"async":true}`)
	if resp.StatusCode != 202 {
		t.Fatalf("async submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil || st.ID == "" {
		t.Fatalf("bad 202 body %s: %v", b, err)
	}
	waitUntil(t, func() bool {
		_, jb := get(t, c.rts, "/v1/jobs/"+st.ID)
		_ = json.Unmarshal(jb, &st)
		return st.Status == "done"
	})
	_, sync := post(t, c.rts, "/v1/detect", `{"spec":{"kind":"corpus","index":4},"seed":2}`)
	var asyncBuf, syncBuf bytes.Buffer
	if err := json.Compact(&asyncBuf, st.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&syncBuf, sync); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asyncBuf.Bytes(), syncBuf.Bytes()) {
		t.Fatal("polled result differs from sync body")
	}
	if resp, _ := get(t, c.rts, "/v1/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatal("unknown job id at the router not 404")
	}
}

// TestRouterHealthProbesDriveBreakers: active health probing marks a
// dead backend unhealthy (visible on /v1/backends) without any client
// request paying to find out.
func TestRouterHealthProbesDriveBreakers(t *testing.T) {
	c := newCluster(t, 2, Config{Workers: 1}, RouterConfig{
		BreakerFailures: 1,
		HealthInterval:  10 * time.Millisecond,
	})
	c.tss[0].Close()
	waitUntil(t, func() bool {
		_, b := get(t, c.rts, "/v1/backends")
		var br BackendsResponse
		if json.Unmarshal(b, &br) != nil || len(br.Backends) != 2 {
			return false
		}
		return !br.Backends[0].Healthy && br.Backends[1].Healthy
	})
	waitUntil(t, func() bool { return metricQuiet(c.rts, "serve.router.healthy") == 1 })
}

// TestRouterSharedStoreServesLocally: a router whose local server mounts
// a warm store answers from disk without touching the cluster — the
// "rsync a store to a new region" path.
func TestRouterSharedStoreServesLocally(t *testing.T) {
	dir := t.TempDir()
	// Warm the store on a standalone node.
	s1 := NewServer(Config{Workers: 1, StoreDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	req := detectReq(6, 13)
	_, want := post(t, ts1, "/v1/detect", req)
	ts1.Close()
	s1.Close()

	// A router in front of an empty cluster, local server on that store.
	backend := NewServer(Config{Workers: 1})
	bts := httptest.NewServer(backend.Handler())
	defer func() { bts.Close(); backend.Close() }()
	local := NewServer(Config{Workers: 1, StoreDir: dir})
	rt := NewRouter(local, RouterConfig{Backends: []string{bts.URL}, BackendNames: []string{"b0"}, BackoffBase: -1})
	rts := httptest.NewServer(rt.Handler())
	defer func() { rts.Close(); rt.Close(); local.Close() }()

	resp, got := post(t, rts, "/v1/detect", req)
	if h := resp.Header.Get("X-Webracer-Cache"); h != "hit" && h != "store-hit" {
		t.Fatalf("X-Webracer-Cache = %q, want a local cache answer", h)
	}
	if be := resp.Header.Get("X-Webracer-Backend"); be != "local" {
		t.Fatalf("X-Webracer-Backend = %q, want local", be)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("store-served bytes differ from the node that wrote them")
	}
	if fw := metricQuiet(rts, "serve.router.forwarded"); fw != 0 {
		t.Fatalf("warm key was forwarded %d times", fw)
	}
}
