package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"webracer/internal/obs"
)

// RouterConfig tunes webracerd's router mode. Backends is the only
// required field; every other zero value defaults to a production
// setting at NewRouter.
type RouterConfig struct {
	// Backends are the base URLs ("http://host:8077") job keys are
	// consistent-hashed across. NewRouter panics on an empty list — a
	// router with nothing to route to must not boot.
	Backends []string
	// BackendNames optionally gives each backend a stable identity on
	// the hash ring (and in chaos decisions and response headers)
	// decoupled from its dial URL. Production deployments leave it empty
	// — the URL is the identity; the chaos battery pins names so its
	// routing and counters are byte-stable while httptest picks ports.
	BackendNames []string
	// Replicas is the number of virtual nodes per backend on the hash
	// ring (default 64). More replicas smooth the key distribution at the
	// cost of a larger ring.
	Replicas int
	// RequestTimeout bounds each forward attempt (default 90s — above
	// the service's 2m MaxTimeout would never trip, below the default
	// job budget starves sweeps; operators tune it to their job mix).
	RequestTimeout time.Duration
	// Attempts is the total number of forward attempts per request
	// before degrading to local execution (default 3). Candidates rotate
	// through the key's ring order, so attempt 2 of a request whose
	// primary died lands on the next backend, not the same corpse.
	Attempts int
	// BackoffBase seeds the capped exponential backoff between attempts
	// (default 25ms; attempt n waits base·2ⁿ scaled by seeded jitter).
	BackoffBase time.Duration
	// BackoffCap caps the backoff growth (default 1s).
	BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter (FNV-1a over
	// (seed, key, attempt), the internal/fault decision style).
	Seed int64
	// BreakerFailures is the consecutive-failure count that opens a
	// backend's circuit breaker (default 5; negative disables breakers —
	// the chaos goldens do, so their counters stay order-independent).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects a backend
	// before one half-open probe may close it again (default 5s).
	BreakerCooldown time.Duration
	// HealthInterval is the active /healthz probe period (0 disables
	// active probing; breakers still learn passively from request
	// outcomes). cmd/webracerd defaults it to 2s.
	HealthInterval time.Duration
	// Chaos, when non-nil, deterministically injects kill/stall/corrupt
	// faults into forward attempts — the service-level chaos harness.
	// Test-only: production routers leave it nil.
	Chaos *ChaosPlan
}

// withDefaults fills zero fields.
func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas < 1 {
		c.Replicas = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 90 * time.Second
	}
	if c.Attempts < 1 {
		c.Attempts = 3
	}
	if c.BackoffBase < 0 {
		c.BackoffBase = 0
	} else if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// Router is webracerd's self-healing distribution layer: POSTs resolve
// to their content-addressed key locally (so malformed requests are 400s
// that never touch the cluster), the key consistent-hashes to a backend,
// and the forward is wrapped in per-request timeouts, bounded retries
// with capped seeded-jitter backoff, response integrity validation, and
// per-backend circuit breakers. A request the cluster cannot serve —
// every candidate dead, stalled, or corrupting — degrades to executing
// on the router's own local Server rather than surfacing a 5xx: the
// cluster absorbs partial failure by construction.
//
// Single-flight is preserved end-to-end: identical requests in flight at
// the router coalesce into one forward (serve.router.coalesced), and the
// backend's own job table coalesces across routers. The router's local
// cache + persistent store sit in front of routing, so a warm key never
// leaves the process.
//
// Byte identity survives all of it: backends compute pure functions of
// the key, the router validates every 2xx body against the key it
// forwarded, and corrupted responses are retried, never relayed — the
// chaos battery asserts a cluster losing a backend mid-sweep returns
// bytes identical to a healthy single node's.
type Router struct {
	cfg     RouterConfig
	local   *Server
	metrics *obs.Metrics
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	client  *http.Client

	ring     []ringPoint
	backends []*backendState

	mu      sync.Mutex
	flights map[string]*flight

	healthStop chan struct{}
	healthWG   sync.WaitGroup

	cRequests, cForwarded, cRetries, cCorrupt  *obs.Counter
	cFailover, cLocal, cCoalesced              *obs.Counter
	cBreakerSkips, cBreakerOpened, cRouterHits *obs.Counter
	gHealthy                                   *obs.Gauge
	hAttempts                                  *obs.Histogram // step-unit attempts per routed dispatch
}

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash uint64
	idx  int
}

// backendState is one backend's live health: its circuit breaker (fed
// passively by request outcomes and actively by /healthz probes) plus
// the last probe verdict for /v1/backends.
type backendState struct {
	url   string
	name  string         // ring/chaos identity; the URL unless BackendNames pinned it
	hWall *obs.Histogram // serve.router.attempt.<name>.wall_ms per-forward latency

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probed    bool // an active probe has run at least once
	healthy   bool // last active probe verdict
}

// flight is one in-flight routed request; followers of the same key
// replay the leader's response.
type flight struct {
	done     chan struct{}
	code     int
	cacheH   string
	backend  string
	attempts int
	body     []byte
}

// NewRouter builds the router in front of local, which supplies request
// resolution (so router and backends must run the same resolution flags
// — see OPERATIONS.md "Running a cluster"), the router-side cache and
// persistent store, the metrics registry, and the local-execution
// fallback. Start active health probing per cfg.HealthInterval; stop it
// with Close.
func NewRouter(local *Server, cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		panic("serve: router needs at least one backend")
	}
	m := local.Metrics()
	rt := &Router{
		cfg:            cfg,
		local:          local,
		metrics:        m,
		client:         &http.Client{},
		flights:        map[string]*flight{},
		healthStop:     make(chan struct{}),
		cRequests:      m.Counter("serve.router.requests"),
		cForwarded:     m.Counter("serve.router.forwarded"),
		cRetries:       m.Counter("serve.router.retries"),
		cCorrupt:       m.Counter("serve.router.corrupt"),
		cFailover:      m.Counter("serve.router.failover"),
		cLocal:         m.Counter("serve.router.local_fallback"),
		cCoalesced:     m.Counter("serve.router.coalesced"),
		cBreakerSkips:  m.Counter("serve.router.breaker_skips"),
		cBreakerOpened: m.Counter("serve.router.breaker_opened"),
		cRouterHits:    m.Counter("serve.router.cache_hits"),
		gHealthy:       m.Gauge("serve.router.healthy"),
		hAttempts:      m.Histogram("serve.router.attempts", "attempts", attemptBounds),
	}
	for i, url := range cfg.Backends {
		name := url
		if i < len(cfg.BackendNames) && cfg.BackendNames[i] != "" {
			name = cfg.BackendNames[i]
		}
		rt.backends = append(rt.backends, &backendState{
			url:     url,
			name:    name,
			hWall:   m.WallHistogram("serve.router.attempt."+name+".wall_ms", "ms", wallMSBounds),
			healthy: true,
		})
	}
	rt.gHealthy.Set(int64(len(rt.backends)))
	rt.buildRing()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", rt.post(kindDetect))
	mux.HandleFunc("POST /v1/sweep", rt.post(kindSweep))
	mux.HandleFunc("POST /v1/faultsweep", rt.post(kindFaultSweep))
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/backends", rt.handleBackends)
	// Capability, metrics, progress and health answer locally: the
	// router shares its registry (and detector policy) with its local
	// server.
	mux.HandleFunc("GET /v1/detectors", local.handleDetectors)
	mux.Handle("GET /metrics", obs.MetricsHandler(m))
	mux.Handle("GET /progress", obs.ProgressHandler(local.progressSnap))
	mux.HandleFunc("GET /healthz", local.handleHealth)
	rt.mux = mux
	// The router wraps its own mux in the observability middleware —
	// request ids are accepted/minted here and propagated on forwards, so
	// one id follows a job router → backend → local fallback. The access
	// log (when configured) is shared with the local server's writer.
	rt.handler = newHTTPObs(m, local.cfg.AccessLog).wrap(mux)

	if cfg.HealthInterval > 0 {
		rt.healthWG.Add(1)
		go rt.healthLoop()
	}
	return rt
}

// Handler is the router's HTTP surface — the same API shape a single
// webracerd serves, so clients cannot tell a router from a node.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Close stops active health probing. The local server is drained
// separately by its owner.
func (rt *Router) Close() {
	close(rt.healthStop)
	rt.healthWG.Wait()
}

// buildRing places Replicas virtual nodes per backend on the hash ring,
// sorted by position. FNV-1a over "url#i" — deterministic, so every
// router instance with the same backend list routes identically.
func (rt *Router) buildRing() {
	for i, b := range rt.backends {
		for v := 0; v < rt.cfg.Replicas; v++ {
			rt.ring = append(rt.ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", b.name, v)), idx: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool {
		if rt.ring[i].hash != rt.ring[j].hash {
			return rt.ring[i].hash < rt.ring[j].hash
		}
		return rt.ring[i].idx < rt.ring[j].idx
	})
}

// ringHash positions a string on the ring: FNV-1a followed by a
// splitmix64 finalizer. Raw FNV-1a clusters similar short inputs
// ("b0#0".."b0#63" differ only in low bits), which would leave each
// backend's virtual nodes contiguous — three giant arcs instead of an
// interleaved ring — so the finalizer's avalanche is what actually buys
// the even key distribution virtual nodes promise.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// candidates returns every backend in the key's ring order: the owner
// first, then each distinct successor. Retries walk this list, so a
// request whose primary is down fails over to the backend that would own
// the key if the primary left the ring — the consistent-hashing property
// that keeps cache locality through partial failure.
func (rt *Router) candidates(key string) []*backendState {
	h := ringHash(key)
	start := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	seen := make([]bool, len(rt.backends))
	out := make([]*backendState, 0, len(rt.backends))
	for i := 0; i < len(rt.ring) && len(out) < len(rt.backends); i++ {
		p := rt.ring[(start+i)%len(rt.ring)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, rt.backends[p.idx])
		}
	}
	return out
}

// post builds the routed handler for one POST endpoint.
func (rt *Router) post(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, hr *http.Request) {
		req, raw, ok := readRequest(w, hr, rt.local.cfg.MaxBodyBytes)
		if !ok {
			return
		}
		r, err := rt.local.resolve(kind, req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		rt.cRequests.Inc()
		rt.route(w, hr, kind, r, raw)
	}
}

// route serves one resolved POST: router-local cache, then single-flight
// dispatch across the cluster.
func (rt *Router) route(w http.ResponseWriter, hr *http.Request, kind jobKind, r *resolved, raw []byte) {
	w.Header().Set(HeaderJob, r.key)
	// Two-level router-side cache: a warm key never leaves the process.
	// Only complete runs are ever cached, so serving them here is as
	// sound as serving them on a backend.
	if body, ok := rt.local.cache.Get(r.key); ok {
		rt.cRouterHits.Inc()
		writeRouted(w, http.StatusOK, "hit", "local", 0, body)
		return
	}
	if body, ok := rt.local.store.Get(r.key); ok {
		rt.cRouterHits.Inc()
		rt.local.cache.Put(r.key, body)
		writeRouted(w, http.StatusOK, "store-hit", "local", 0, body)
		return
	}

	// Single-flight: identical requests in flight at this router share
	// one dispatch. Sync and async submissions keep separate flights
	// (their response codes differ); the backend's job table still
	// coalesces them into one execution. Followers still echo their own
	// request id (the middleware set it before routing); the forward
	// itself carries the leader's.
	fkey := r.key
	if r.async {
		fkey += "/async"
	}
	rt.mu.Lock()
	if f, ok := rt.flights[fkey]; ok {
		rt.cCoalesced.Inc()
		rt.mu.Unlock()
		select {
		case <-f.done:
			writeRouted(w, f.code, f.cacheH, f.backend, f.attempts, f.body)
		case <-hr.Context().Done():
		}
		return
	}
	f := &flight{done: make(chan struct{})}
	rt.flights[fkey] = f
	rt.mu.Unlock()

	f.code, f.cacheH, f.backend, f.attempts, f.body = rt.dispatch(kind, r, raw, hr.Header.Get(HeaderRequestID))

	rt.mu.Lock()
	delete(rt.flights, fkey)
	rt.mu.Unlock()
	close(f.done)
	writeRouted(w, f.code, f.cacheH, f.backend, f.attempts, f.body)
}

// dispatch pushes one request through the retry ladder: up to Attempts
// forwards across the key's candidate backends with capped seeded
// backoff between failures, then local execution. Detached from the
// client's context deliberately — like Server.respond, a dispatch in
// flight finishes (and caches on the backend) even if the submitting
// client disconnects, so coalesced followers still get their bytes.
func (rt *Router) dispatch(kind jobKind, r *resolved, raw []byte, reqID string) (code int, cacheH, backend string, attempts int, body []byte) {
	cands := rt.candidates(r.key)
	for attempt := 0; attempt < rt.cfg.Attempts; attempt++ {
		b := cands[attempt%len(cands)]
		if !rt.breakerAllow(b) {
			rt.cBreakerSkips.Inc()
			continue
		}
		if attempt > 0 {
			rt.backoff(r.key, attempt)
		}
		attempts++
		res, retryable, err := rt.forwardOnce(b, "/v1/"+string(kind), r.key, raw, attempt, reqID)
		if err == nil {
			rt.breakerResult(b, true)
			if attempt > 0 {
				rt.cFailover.Inc()
			}
			rt.hAttempts.Record(int64(attempts))
			return res.code, res.cacheH, b.name, attempts, res.body
		}
		rt.breakerResult(b, false)
		if !retryable {
			// A definitive backend verdict (4xx): relaying it is correct,
			// retrying it is not.
			rt.hAttempts.Record(int64(attempts))
			return res.code, "", b.name, attempts, res.body
		}
		rt.cRetries.Inc()
	}
	// The cluster could not serve it — the router can. Local execution
	// reuses the full Server admission path (cache, single-flight,
	// queue), so even total cluster loss degrades to "one node's worth
	// of throughput", never to a 5xx the cluster could have absorbed.
	rt.cLocal.Inc()
	rt.hAttempts.Record(int64(attempts))
	code, cacheH, body = rt.runLocal(r, reqID)
	return code, cacheH, "local", attempts, body
}

// forwardResult is one completed forward attempt.
type forwardResult struct {
	code   int
	cacheH string
	body   []byte
}

// forwardOnce issues one forward attempt against b, applying the chaos
// plan's decision for (backend, key, attempt) first, and validating any
// 2xx body against the key it must answer for. The error return means
// "this attempt did not produce a servable response"; retryable says
// whether another backend could do better (transport faults, 5xx, 429,
// corruption — yes; a 4xx verdict — no).
func (rt *Router) forwardOnce(b *backendState, path, key string, raw []byte, attempt int, reqID string) (forwardResult, bool, error) {
	rt.cForwarded.Inc()
	chaos := rt.cfg.Chaos.decide(b.name, key, attempt)
	switch chaos {
	case ChaosKill:
		return forwardResult{}, true, fmt.Errorf("chaos: %s killed", b.name)
	case ChaosStall:
		return forwardResult{}, true, fmt.Errorf("chaos: %s stalled past request timeout", b.name)
	}

	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(raw))
	if err != nil {
		return forwardResult{}, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(HeaderRequestID, reqID)
	}
	fwdStart := time.Now()
	resp, err := rt.client.Do(req)
	b.hWall.Record(time.Since(fwdStart).Milliseconds())
	if err != nil {
		return forwardResult{}, true, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return forwardResult{}, true, err
	}
	if chaos == ChaosCorrupt && len(body) > 0 {
		body[0] ^= 0xff
	}

	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		// Integrity gate: every 2xx body must be the JSON answer for the
		// key this router computed. A backend that disagrees (corrupt
		// bytes, or a node booted with different resolution flags) is
		// treated as a failed attempt, never relayed.
		var idOnly struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(body, &idOnly) != nil || idOnly.ID != key {
			rt.cCorrupt.Inc()
			return forwardResult{}, true, fmt.Errorf("%s returned a corrupt response for %s", b.name, key[:8])
		}
		return forwardResult{code: resp.StatusCode, cacheH: resp.Header.Get("X-Webracer-Cache"), body: body}, false, nil
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		// 5xx and backend backpressure are cluster-absorbable: another
		// candidate may be healthy or have queue headroom.
		return forwardResult{code: resp.StatusCode, body: body}, true,
			fmt.Errorf("%s answered %d", b.name, resp.StatusCode)
	default:
		// 4xx: a definitive verdict on the request itself.
		return forwardResult{code: resp.StatusCode, body: body}, false,
			fmt.Errorf("%s answered %d", b.name, resp.StatusCode)
	}
}

// runLocal executes the resolved request on the router's own Server
// through the normal submission path, capturing the response. The
// request id rides along so the fallback's log lines correlate with
// the routed request that degraded to it.
func (rt *Router) runLocal(r *resolved, reqID string) (int, string, []byte) {
	hr, _ := http.NewRequest(http.MethodPost, "/", nil)
	if reqID != "" {
		hr.Header.Set(HeaderRequestID, reqID)
	}
	w := &memResponse{code: http.StatusOK}
	rt.local.submit(w, hr, r)
	return w.code, w.header().Get("X-Webracer-Cache"), w.buf.Bytes()
}

// backoff sleeps the capped exponential delay before retry `attempt`,
// scaled by deterministic jitter in [0.5, 1.0) so a thundering herd of
// routers retrying the same lost backend decorrelates without
// randomness: FNV-1a of (seed, key, attempt), the internal/fault roll.
func (rt *Router) backoff(key string, attempt int) {
	if rt.cfg.BackoffBase <= 0 {
		return
	}
	d := rt.cfg.BackoffBase << (attempt - 1)
	if d > rt.cfg.BackoffCap || d <= 0 {
		d = rt.cfg.BackoffCap
	}
	h := fnv.New64a()
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(rt.cfg.Seed))
	h.Write(b8[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(b8[:], uint64(attempt))
	h.Write(b8[:])
	jitter := 0.5 + 0.5*float64(h.Sum64()>>11)/(1<<53)
	time.Sleep(time.Duration(float64(d) * jitter))
}

// breakerAllow reports whether b's circuit admits an attempt. Closed
// circuits always do; an open one rejects until its cooldown expires,
// then admits a single half-open probe (claiming the slot by extending
// the cooldown, so concurrent requests don't all probe at once).
func (rt *Router) breakerAllow(b *backendState) bool {
	if rt.cfg.BreakerFailures < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < rt.cfg.BreakerFailures {
		return true
	}
	now := time.Now()
	if now.Before(b.openUntil) {
		return false
	}
	b.openUntil = now.Add(rt.cfg.BreakerCooldown)
	return true
}

// breakerResult feeds one attempt outcome into b's circuit: success
// closes it, failure counts toward (or re-opens) it.
func (rt *Router) breakerResult(b *backendState, success bool) {
	if rt.cfg.BreakerFailures < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.fails = 0
		b.openUntil = time.Time{}
		return
	}
	b.fails++
	if b.fails == rt.cfg.BreakerFailures {
		rt.cBreakerOpened.Inc()
	}
	if b.fails >= rt.cfg.BreakerFailures {
		b.openUntil = time.Now().Add(rt.cfg.BreakerCooldown)
	}
}

// healthLoop actively probes every backend's /healthz on the configured
// interval, feeding verdicts into the breakers: a dead node's circuit
// opens without burning client requests to find out, and a recovered
// node closes its circuit before the half-open probe would.
func (rt *Router) healthLoop() {
	defer rt.healthWG.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.healthStop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every backend once and updates the healthy gauge.
func (rt *Router) probeAll() {
	healthy := int64(0)
	for _, b := range rt.backends {
		ok := rt.probe(b)
		b.mu.Lock()
		b.probed, b.healthy = true, ok
		b.mu.Unlock()
		rt.breakerResult(b, ok)
		if ok {
			healthy++
		}
	}
	rt.gHealthy.Set(healthy)
}

// probe is one active health check: 200 from /healthz within a bounded
// window. A draining backend (503) probes unhealthy, which is exactly
// what drains want — the router stops routing new work there.
func (rt *Router) probe(b *backendState) bool {
	timeout := rt.cfg.HealthInterval
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// handleJob answers GET /v1/jobs/{id} at the router: the local cache and
// store first (ids are content-addressed, so any node's copy is the
// truth), then the id's backends in ring order, then the local job
// table. The same absorb-don't-surface policy as POSTs: a dead backend
// costs a failover, not an error.
func (rt *Router) handleJob(w http.ResponseWriter, hr *http.Request) {
	id := hr.PathValue("id")
	if body, ok := rt.local.cache.Get(id); ok {
		writeJSON(w, http.StatusOK, JobStatus{ID: id, Status: "done", Result: body})
		return
	}
	if body, ok := rt.local.store.Get(id); ok {
		rt.local.cache.Put(id, body)
		writeJSON(w, http.StatusOK, JobStatus{ID: id, Status: "done", Result: body})
		return
	}
	for attempt, b := range rt.candidates(id) {
		if !rt.breakerAllow(b) {
			rt.cBreakerSkips.Inc()
			continue
		}
		if rt.cfg.Chaos.decide(b.name, id, attempt) != ChaosNone {
			rt.breakerResult(b, false)
			rt.cRetries.Inc()
			continue
		}
		ctx, cancel := context.WithTimeout(hr.Context(), rt.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/jobs/"+id, nil)
		if err != nil {
			cancel()
			continue
		}
		if reqID := hr.Header.Get(HeaderRequestID); reqID != "" {
			req.Header.Set(HeaderRequestID, reqID)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			rt.breakerResult(b, false)
			rt.cRetries.Inc()
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if rerr != nil || resp.StatusCode >= 500 {
			rt.breakerResult(b, false)
			rt.cRetries.Inc()
			continue
		}
		rt.breakerResult(b, true)
		if resp.StatusCode == http.StatusNotFound {
			// The owning backend authoritatively does not know the job —
			// but it may have run locally here during a failover window.
			break
		}
		writeBody(w, resp.StatusCode, body)
		return
	}
	rt.local.handleJob(w, hr)
}

// BackendStatus is one backend's live state in GET /v1/backends.
type BackendStatus struct {
	// URL is the backend's base URL.
	URL string `json:"url"`
	// Name is the backend's ring identity (the URL unless pinned).
	Name string `json:"name"`
	// Healthy is the last active probe's verdict (true before the first
	// probe when probing is disabled — passive-only routers assume
	// health until requests prove otherwise).
	Healthy bool `json:"healthy"`
	// ConsecutiveFails is the breaker's current failure streak.
	ConsecutiveFails int `json:"consecutiveFails"`
	// BreakerOpen reports an open circuit right now.
	BreakerOpen bool `json:"breakerOpen"`
}

// BackendsResponse is GET /v1/backends' body: the router's live view of
// its cluster.
type BackendsResponse struct {
	// Backends lists every configured backend in flag order.
	Backends []BackendStatus `json:"backends"`
	// Attempts is the router's per-request forward budget.
	Attempts int `json:"attempts"`
	// LocalFallback is always true today: the router degrades to local
	// execution when the cluster cannot serve.
	LocalFallback bool `json:"localFallback"`
}

// handleBackends answers GET /v1/backends — the operator's view of
// breaker and probe state, and what the cluster runbook's health checks
// script against.
func (rt *Router) handleBackends(w http.ResponseWriter, _ *http.Request) {
	resp := BackendsResponse{Attempts: rt.cfg.Attempts, LocalFallback: true}
	now := time.Now()
	for _, b := range rt.backends {
		b.mu.Lock()
		st := BackendStatus{
			URL:              b.url,
			Name:             b.name,
			Healthy:          b.healthy,
			ConsecutiveFails: b.fails,
			BreakerOpen:      rt.cfg.BreakerFailures >= 0 && b.fails >= rt.cfg.BreakerFailures && now.Before(b.openUntil),
		}
		b.mu.Unlock()
		resp.Backends = append(resp.Backends, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeRouted writes a routed response with its provenance headers:
// X-Webracer-Cache when any cache layer answered, X-Webracer-Backend
// naming the node that produced the bytes ("local" for the router
// itself), X-Webracer-Attempts counting the forwards consumed (absent
// on cache hits, which never leave the process).
func writeRouted(w http.ResponseWriter, code int, cacheH, backend string, attempts int, body []byte) {
	if cacheH != "" {
		w.Header().Set(HeaderCache, cacheH)
	}
	if backend != "" {
		w.Header().Set(HeaderBackend, backend)
	}
	if attempts > 0 {
		w.Header().Set(HeaderAttempts, fmt.Sprintf("%d", attempts))
	}
	writeBody(w, code, body)
}

// memResponse captures a handler's response in memory — the router's
// local-execution fallback runs the ordinary Server path against it.
type memResponse struct {
	h    http.Header
	code int
	buf  bytes.Buffer
}

// header lazily allocates the header map.
func (m *memResponse) header() http.Header {
	if m.h == nil {
		m.h = http.Header{}
	}
	return m.h
}

// Header implements http.ResponseWriter.
func (m *memResponse) Header() http.Header { return m.header() }

// WriteHeader implements http.ResponseWriter.
func (m *memResponse) WriteHeader(code int) { m.code = code }

// Write implements http.ResponseWriter.
func (m *memResponse) Write(b []byte) (int, error) { return m.buf.Write(b) }
