package serve

import (
	"bytes"
	"fmt"
	"testing"

	"webracer/internal/obs"
)

// snap reads a metric from the cache's registry.
func snap(t *testing.T, m *obs.Metrics, name string) int64 {
	t.Helper()
	v, ok := m.Snapshot()[name]
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return v
}

func TestCacheGetPut(t *testing.T) {
	m := obs.New()
	c := NewCache(1<<20, m)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	if h, mi := snap(t, m, "serve.cache.hits"), snap(t, m, "serve.cache.misses"); h != 1 || mi != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, mi)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	m := obs.New()
	// Budget fits exactly two entries: each costs 1-byte key + 100-byte
	// body + entryOverhead.
	cost := int64(1 + 100 + entryOverhead)
	c := NewCache(2*cost, m)
	body := func(s string) []byte { return bytes.Repeat([]byte(s), 100) }

	c.Put("a", body("a"))
	c.Put("b", body("b"))
	if c.Len() != 2 || c.Bytes() != 2*cost {
		t.Fatalf("len/bytes = %d/%d, want 2/%d", c.Len(), c.Bytes(), 2*cost)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", body("c"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent touch")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	if ev := snap(t, m, "serve.cache.evictions"); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if g := snap(t, m, "serve.cache.entries"); g != 2 {
		t.Fatalf("entries gauge = %d, want 2", g)
	}
	if g := snap(t, m, "serve.cache.bytes"); g != c.Bytes() {
		t.Fatalf("bytes gauge = %d, cache says %d", g, c.Bytes())
	}
}

func TestCacheTooLargeDropped(t *testing.T) {
	m := obs.New()
	c := NewCache(256, m)
	c.Put("big", make([]byte, 1024))
	if c.Len() != 0 {
		t.Fatal("oversized entry admitted")
	}
	if tl := snap(t, m, "serve.cache.too_large"); tl != 1 {
		t.Fatalf("too_large = %d, want 1", tl)
	}
}

func TestCacheReplaceInPlace(t *testing.T) {
	c := NewCache(1<<20, obs.New())
	c.Put("k", []byte("old"))
	c.Put("k", []byte("newer"))
	got, ok := c.Get("k")
	if !ok || string(got) != "newer" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d", c.Len())
	}
}

func TestCacheBudgetNeverExceeded(t *testing.T) {
	m := obs.New()
	budget := int64(4096)
	c := NewCache(budget, m)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 200))
		if c.Bytes() > budget {
			t.Fatalf("after put %d: bytes %d exceeds budget %d", i, c.Bytes(), budget)
		}
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after inserts under budget")
	}
	if puts := snap(t, m, "serve.cache.puts"); puts != 100 {
		t.Fatalf("puts = %d, want 100", puts)
	}
}
