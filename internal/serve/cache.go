package serve

import (
	"container/list"
	"sync"

	"webracer/internal/obs"
)

// entryOverhead approximates the per-entry bookkeeping cost (map bucket,
// list element, entry struct) charged against the byte budget in addition
// to key and body length, so a cache full of tiny entries cannot blow past
// its budget on overhead alone.
const entryOverhead = 128

// Cache is the content-addressed result cache: stable response bytes
// keyed by the request's canonical identity (see requestKey), bounded by
// a byte budget with least-recently-used eviction.
//
// Soundness rests on the determinism contract (DESIGN.md): every run is a
// pure function of its key's inputs and serializes byte-stably, so a hit
// returns exactly the bytes a cold run would produce. Interrupted runs
// are the one exception — their bytes depend on wall-clock timing — and
// the server never Puts them.
//
// All methods are safe for concurrent use. Hit/miss/eviction traffic is
// counted in the server's obs registry under serve.cache.*.
type Cache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions, puts, tooLarge *obs.Counter
	bytes, entries                          *obs.Gauge
}

// centry is one cached response.
type centry struct {
	key  string
	body []byte
}

// cost is the budget charge for one entry.
func (e *centry) cost() int64 {
	return int64(len(e.key)) + int64(len(e.body)) + entryOverhead
}

// NewCache builds a cache holding at most budget bytes of responses
// (values < 1 mean 64 MiB), counting traffic in m under serve.cache.*.
func NewCache(budget int64, m *obs.Metrics) *Cache {
	if budget < 1 {
		budget = 64 << 20
	}
	return &Cache{
		budget:    budget,
		ll:        list.New(),
		items:     map[string]*list.Element{},
		hits:      m.Counter("serve.cache.hits"),
		misses:    m.Counter("serve.cache.misses"),
		evictions: m.Counter("serve.cache.evictions"),
		puts:      m.Counter("serve.cache.puts"),
		tooLarge:  m.Counter("serve.cache.too_large"),
		bytes:     m.Gauge("serve.cache.bytes"),
		entries:   m.Gauge("serve.cache.entries"),
	}
}

// Get returns the cached bytes for key and marks the entry most recently
// used. The returned slice is the cache's own storage — callers must not
// modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*centry).body, true
}

// Put stores body under key, evicting least-recently-used entries until
// the budget holds. A body too large to ever fit is counted
// (serve.cache.too_large) and dropped; a key already present is refreshed
// in place (bodies for one key are identical by construction, but the
// accounting stays exact either way).
func (c *Cache) Put(key string, body []byte) {
	e := &centry{key: key, body: body}
	if e.cost() > c.budget {
		c.tooLarge.Inc()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*centry)
		c.size += e.cost() - old.cost()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(e)
		c.size += e.cost()
	}
	c.puts.Inc()
	for c.size > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.size -= victim.cost()
		c.evictions.Inc()
	}
	c.bytes.Set(c.size)
	c.entries.Set(int64(c.ll.Len()))
}

// Len is the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes is the budget-charged size of the cache contents.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
