package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateChaosGolden = flag.Bool("update", false, "rewrite the chaos battery's golden counters")

// chaosJob is one request in the battery's job mix: detects, a sweep and
// a fault sweep, so every routed POST endpoint is under chaos.
type chaosJob struct {
	path, body string
}

func chaosJobs() []chaosJob {
	var jobs []chaosJob
	for i := 0; i < 12; i++ {
		jobs = append(jobs, chaosJob{"/v1/detect", fmt.Sprintf(`{"spec":{"kind":"corpus","index":%d},"seed":3}`, i)})
	}
	jobs = append(jobs,
		chaosJob{"/v1/sweep", `{"spec":{"kind":"corpus","index":1},"seeds":2}`},
		chaosJob{"/v1/sweep", `{"spec":{"kind":"corpus","index":2},"mode":"delay-one"}`},
		chaosJob{"/v1/faultsweep", `{"spec":{"kind":"fault","index":1},"plans":2}`},
	)
	return jobs
}

// healthyReference runs the battery's jobs on a lone healthy node and
// returns the canonical bodies every chaotic cluster run must reproduce.
func healthyReference(t *testing.T, workers int) [][]byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: workers})
	var want [][]byte
	for i, j := range chaosJobs() {
		resp, b := post(t, ts, j.path, j.body)
		if resp.StatusCode != 200 {
			t.Fatalf("reference job %d: %d %s", i, resp.StatusCode, b)
		}
		want = append(want, b)
	}
	return want
}

// bootBackends starts n backend servers with stores under root/b<i>.
// Callers own shutdown (the battery restarts backends mid-test).
func bootBackends(t *testing.T, root string, n, workers int) ([]*Server, []*httptest.Server, []string) {
	t.Helper()
	var servers []*Server
	var tss []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		s := NewServer(Config{Workers: workers, StoreDir: filepath.Join(root, fmt.Sprintf("b%d", i))})
		ts := httptest.NewServer(s.Handler())
		servers = append(servers, s)
		tss = append(tss, ts)
		urls = append(urls, ts.URL)
	}
	return servers, tss, urls
}

// corruptEvery10th flips a byte in every 10th store entry (sorted
// filename order — deterministic) under each backend dir and returns how
// many entries it damaged.
func corruptEvery10th(t *testing.T, root string, n int) int {
	t.Helper()
	corrupted := 0
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("b%d", i))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() {
				files = append(files, e.Name())
			}
		}
		sort.Strings(files)
		for idx, name := range files {
			if idx%10 != 0 {
				continue
			}
			path := filepath.Join(dir, name)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	return corrupted
}

// runChaosCluster is one full acceptance scenario at a given backend
// worker count: populate a healthy 3-node cluster's stores, corrupt 10%
// of the entries on disk, restart the backends (recovery quarantines the
// damage), then replay the whole job mix through a router whose chaos
// plan has killed b2 — and return the response bodies plus the pinned
// counter snapshot.
func runChaosCluster(t *testing.T, workers int) ([][]byte, map[string]int64) {
	t.Helper()
	root := t.TempDir()
	jobs := chaosJobs()

	// Phase A: a healthy cluster computes everything once; the backends'
	// stores absorb the results as routing distributes the keys.
	servers, tss, urls := bootBackends(t, root, 3, workers)
	localA := NewServer(Config{Workers: workers})
	rtA := NewRouter(localA, RouterConfig{Backends: urls, BackendNames: names(3), BackoffBase: -1})
	rtsA := httptest.NewServer(rtA.Handler())
	for i, j := range jobs {
		if resp, b := post(t, rtsA, j.path, j.body); resp.StatusCode != 200 {
			t.Fatalf("phase A job %d: %d %s", i, resp.StatusCode, b)
		}
	}
	rtsA.Close()
	rtA.Close()
	localA.Close()
	for i := range servers {
		tss[i].Close()
		servers[i].Close() // drain: every store write has landed
	}

	corrupted := corruptEvery10th(t, root, 3)
	if corrupted == 0 {
		t.Fatal("battery corrupted nothing — store dirs empty?")
	}

	// Phase B: restart on the damaged stores; recovery must quarantine
	// exactly the corrupted entries and keep the rest byte-identical.
	servers2, tss2, urls2 := bootBackends(t, root, 3, workers)
	defer func() {
		for i := range servers2 {
			tss2[i].Close()
			servers2[i].Close()
		}
	}()
	var quarantined, recovered int64
	for _, s := range servers2 {
		quarantined += s.Metrics().Counter("serve.store.quarantined").Value()
		recovered += s.Metrics().Counter("serve.store.recovered").Value()
	}
	if quarantined != int64(corrupted) {
		t.Fatalf("quarantined %d entries, corrupted %d — recovery must catch exactly the damage", quarantined, corrupted)
	}

	// The router's chaos plan kills b2 outright. Breakers are disabled so
	// every counter is a pure function of the (sequential) job list —
	// breaker state would couple jobs to each other.
	localB := NewServer(Config{Workers: workers})
	rtB := NewRouter(localB, RouterConfig{
		Backends:        urls2,
		BackendNames:    names(3),
		BackoffBase:     -1,
		BreakerFailures: -1,
		Chaos:           &ChaosPlan{Seed: 7, Dead: map[string]bool{"b2": true}},
	})
	rtsB := httptest.NewServer(rtB.Handler())
	defer func() { rtsB.Close(); rtB.Close(); localB.Close() }()

	var bodies [][]byte
	for i, j := range jobs {
		resp, b := post(t, rtsB, j.path, j.body)
		if resp.StatusCode >= 500 {
			t.Fatalf("job %d under chaos: %d %s — a lost backend must never surface a 5xx", i, resp.StatusCode, b)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("job %d under chaos: %d %s", i, resp.StatusCode, b)
		}
		bodies = append(bodies, b)
	}

	snap := map[string]int64{
		"serve.store.quarantined.total": quarantined,
		"serve.store.recovered.total":   recovered,
	}
	resp, err := http.Get(rtsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	for k, raw := range all {
		if !strings.HasPrefix(k, "serve.router.") {
			continue
		}
		// Skip histogram objects (e.g. serve.router.attempts) — this
		// golden pins the scalar counters only.
		var v int64
		if json.Unmarshal(raw, &v) != nil {
			continue
		}
		snap[k] = v
	}
	return bodies, snap
}

// TestChaosClusterByteIdentical is the PR's acceptance battery: with one
// of three backends killed mid-sweep by the chaos plan and 10% of the
// persisted store entries corrupted on disk, the router returns bodies
// byte-identical to a healthy single node, serves zero 5xx, and its
// retry/quarantine counters match the golden pin at every backend worker
// count.
func TestChaosClusterByteIdentical(t *testing.T) {
	want := healthyReference(t, 2)

	bodies1, snap1 := runChaosCluster(t, 1)
	bodies4, snap4 := runChaosCluster(t, 4)

	for i := range want {
		if !bytes.Equal(bodies1[i], want[i]) {
			t.Errorf("workers=1 job %d: chaotic cluster bytes differ from healthy node", i)
		}
		if !bytes.Equal(bodies4[i], want[i]) {
			t.Errorf("workers=4 job %d: chaotic cluster bytes differ from healthy node", i)
		}
	}

	if snap1["serve.router.retries"] < 1 {
		t.Error("killing a backend cost no retries — the chaos plan never hit a primary")
	}
	if snap1["serve.router.failover"] < 1 {
		t.Error("no failovers — every key avoided the dead backend?")
	}

	j1, _ := json.MarshalIndent(snap1, "", "  ")
	j4, _ := json.MarshalIndent(snap4, "", "  ")
	if !bytes.Equal(j1, j4) {
		t.Fatalf("counters depend on backend worker count:\nworkers=1: %s\nworkers=4: %s", j1, j4)
	}

	goldenPath := filepath.Join("testdata", "golden", "chaos-cluster.json")
	if *updateChaosGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(j1, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	goldenBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(bytes.TrimSpace(goldenBytes), j1) {
		t.Fatalf("chaos counters drifted from golden (run with -update if intended):\ngolden: %s\ngot:    %s",
			bytes.TrimSpace(goldenBytes), j1)
	}
}

// TestChaosFlakyClusterConverges: a cluster where every attempt has a 45%
// chance of dying, stalling, or corrupting still answers every request
// with the healthy node's exact bytes — retries, integrity validation and
// local fallback absorb whatever mix the seed deals.
func TestChaosFlakyClusterConverges(t *testing.T) {
	want := healthyReference(t, 2)
	c := newCluster(t, 3, Config{Workers: 2}, RouterConfig{
		BreakerFailures: -1,
		Chaos: &ChaosPlan{
			Seed:        14, // deals kills, stalls AND corruptions to this job mix
			KillProb:    0.15,
			StallProb:   0.15,
			CorruptProb: 0.15,
		},
	})
	for i, j := range chaosJobs() {
		resp, b := post(t, c.rts, j.path, j.body)
		if resp.StatusCode >= 500 {
			t.Fatalf("job %d: %d — flaky infrastructure must never surface a 5xx", i, resp.StatusCode)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("job %d: %d %s", i, resp.StatusCode, b)
		}
		if !bytes.Equal(b, want[i]) {
			t.Fatalf("job %d: flaky-cluster bytes differ from healthy node", i)
		}
	}
	if metricQuiet(c.rts, "serve.router.retries") < 1 {
		t.Error("45% fault rate cost no retries")
	}
	if metricQuiet(c.rts, "serve.router.corrupt") < 1 {
		t.Error("the corrupt-response path never fired — integrity validation untested")
	}
	t.Logf("flaky cluster: retries=%d corrupt=%d local_fallback=%d",
		metricQuiet(c.rts, "serve.router.retries"),
		metricQuiet(c.rts, "serve.router.corrupt"),
		metricQuiet(c.rts, "serve.router.local_fallback"))
}
