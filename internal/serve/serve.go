// Package serve implements webracerd, the long-running HTTP detection
// service: race-detection jobs arrive as JSON over REST, run on a shared
// long-lived worker pool behind a bounded queue, and their byte-stable
// results are memoized in a content-addressed cache.
//
// The service leans entirely on the repo's determinism contract: every
// run is a pure function of (site bytes, seed, config) and serializes to
// stable bytes, so a result computed once is the result forever — the
// cache is sound by construction, identical in-flight requests coalesce
// to a single run, and a cache hit is byte-identical to the cold run it
// stands in for (tests assert this). See DESIGN.md "Service architecture"
// and OPERATIONS.md for the operator view.
//
// Request lifecycle:
//
//	POST /v1/{detect,sweep,faultsweep}
//	  → resolve (normalize inputs, 400 on bad requests)
//	  → key (SHA-256 over canonical inputs)
//	  → cache hit?           → 200 with cached bytes   (X-Webracer-Cache: hit)
//	  → same key in flight?  → attach to that job      (X-Webracer-Cache: coalesced)
//	  → queue full?          → 429 + Retry-After
//	  → enqueue              → run → cache → respond   (X-Webracer-Cache: miss)
//
// GET /v1/jobs/{id} polls any job by its key (async submissions return
// the id immediately). /metrics and /progress expose the service
// counters and pool progress on the same mux.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"webracer"
	"webracer/internal/fault"
	"webracer/internal/obs"
	"webracer/internal/pool"
	"webracer/internal/report"
	"webracer/internal/store"
)

// Config tunes the service. The zero Config is usable: every field
// defaults to a sensible production value at NewServer.
type Config struct {
	// Workers is the number of long-lived job workers (values < 1 mean
	// runtime.NumCPU()). At most Workers jobs execute concurrently.
	Workers int
	// QueueDepth bounds the number of admitted-but-not-yet-running jobs
	// (default 64). A full queue refuses new work with 429 + Retry-After
	// — the service's backpressure surface.
	QueueDepth int
	// CacheBytes is the result cache's byte budget (default 64 MiB).
	CacheBytes int64
	// SweepWorkers is the per-job parallelism of sweep endpoints
	// (default 1: a job occupies one worker; raise it only when the
	// service runs few, large sweep jobs). Sweep output is byte-identical
	// at any value.
	SweepWorkers int
	// DefaultTimeout is the per-job wall budget applied when a request
	// does not set timeoutMS (default 30s). A tripped budget interrupts
	// the run, which returns partial results and is never cached.
	DefaultTimeout time.Duration
	// MaxTimeout clamps requested budgets (default 2m; 0 disables the
	// clamp).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the per-job turnaround estimate, in seconds, that
	// 429 responses derive their Retry-After hint from (default 1). The
	// hint scales with the live queue: estimate × (1 + ⌈waiting/workers⌉),
	// capped at 60 — see OPERATIONS.md "Backpressure" for the formula.
	RetryAfter int
	// StoreDir, when set, backs the in-memory result cache with the
	// crash-safe persistent store (internal/store) rooted there: results
	// are written through on completion, served from disk on an LRU miss,
	// and recovered into the LRU at startup — the cache survives
	// restarts. Empty disables persistence (the pre-PR-8 behavior).
	StoreDir string
	// JobHistory is the number of finished job records kept for
	// GET /v1/jobs (default 4096; result bytes live in the cache, these
	// records are small).
	JobHistory int
	// DefaultDetector names the tier applied to requests that omit
	// "detector" ("" means the library default, pairwise). Operators set
	// "sampled" to route bulk traffic through the cheap tier — sampled
	// jobs escalate to the exact detector on any hit, so reported races
	// are never heuristic. Must be a webracer.ParseDetector spelling;
	// NewServer panics otherwise (a misconfigured service must not boot).
	DefaultDetector string
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (request id, method, path, status, cache state, backend,
	// attempts, job-key prefix, bytes, wall ms). Lines are serialized;
	// cmd/webracerd wires -access-log here. Nil disables.
	AccessLog io.Writer
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheBytes < 1 {
		c.CacheBytes = 64 << 20
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout < 0 {
		c.MaxTimeout = 0
	}
	if c.MaxBodyBytes < 1 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter < 1 {
		c.RetryAfter = 1
	}
	if c.JobHistory < 1 {
		c.JobHistory = 4096
	}
	return c
}

// Server is the webracerd service: a mux, a job table, a worker pool and
// a result cache. Construct with NewServer, serve via Handler, shut down
// via Drain.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *Cache
	store   *store.Store // nil when persistence is disabled
	runner  *pool.Runner
	workers int // effective worker count (cfg.Workers resolved)
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	obsMW   *httpObs

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job ids, oldest first, for history pruning
	draining bool

	cAccepted, cCompleted, cFailed, cInterrupted *obs.Counter
	cCoalesced, cRejected, cEscalated            *obs.Counter
	gDepth                                       *obs.Gauge
	hQueueDepth, hExecOps                        *obs.Histogram // step-unit (stable export)
	hQueueWait, hExecWall                        *obs.Histogram // wall-clock

	// jobGate, when non-nil, is called on the worker goroutine before a
	// job executes — a test hook for holding jobs in flight.
	jobGate func(kind jobKind, key string)
}

// job is the service-side record of one admitted unit of work. Fields
// past done are guarded by Server.mu until done closes, immutable after.
type job struct {
	id       string
	kind     jobKind
	status   string // "queued" | "running" | "done" | "failed"
	body     []byte
	code     int
	errMsg   string
	admitted time.Time // when the job entered the queue (queue-wait histogram)
	done     chan struct{}
}

// finishedState reports whether the job reached a terminal status.
func (j *job) finishedState() bool { return j.status == "done" || j.status == "failed" }

// NewServer builds the service and starts its worker pool. The returned
// server is ready to serve; wire Handler into an http.Server (or
// httptest) and call Drain on shutdown.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if _, err := webracer.ParseDetector(cfg.DefaultDetector); err != nil {
		panic(fmt.Sprintf("serve: bad DefaultDetector: %v", err))
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	m := obs.New()
	s := &Server{
		cfg:          cfg,
		metrics:      m,
		cache:        NewCache(cfg.CacheBytes, m),
		runner:       pool.NewRunner(cfg.Workers, cfg.QueueDepth),
		workers:      workers,
		jobs:         map[string]*job{},
		cAccepted:    m.Counter("serve.jobs.accepted"),
		cCompleted:   m.Counter("serve.jobs.completed"),
		cFailed:      m.Counter("serve.jobs.failed"),
		cInterrupted: m.Counter("serve.jobs.interrupted"),
		cCoalesced:   m.Counter("serve.jobs.coalesced"),
		cRejected:    m.Counter("serve.queue.rejected"),
		cEscalated:   m.Counter("serve.jobs.escalated"),
		gDepth:       m.Gauge("serve.queue.depth"),
		hQueueDepth:  m.Histogram("serve.queue.wait.depth", "jobs", depthBounds),
		hExecOps:     m.Histogram("serve.jobs.exec.ops", "ops", opsBounds),
		hQueueWait:   m.WallHistogram("serve.queue.wait.wall_ms", "ms", wallMSBounds),
		hExecWall:    m.WallHistogram("serve.jobs.exec.wall_ms", "ms", wallMSBounds),
	}
	if cfg.StoreDir != "" {
		// Opening the store replays the disk contents into the LRU: valid
		// entries become immediate memory hits, corrupt ones are
		// quarantined (serve.store.quarantined) instead of served or
		// crashed on. A store that cannot open at all is a deployment
		// error — the service must not boot half-persistent.
		st, err := store.Open(cfg.StoreDir, m, func(key string, body []byte) {
			s.cache.Put(key, body)
		})
		if err != nil {
			panic(fmt.Sprintf("serve: %v", err))
		}
		s.store = st
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", s.post(kindDetect))
	mux.HandleFunc("POST /v1/sweep", s.post(kindSweep))
	mux.HandleFunc("POST /v1/faultsweep", s.post(kindFaultSweep))
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/detectors", s.handleDetectors)
	mux.Handle("GET /metrics", obs.MetricsHandler(m))
	mux.Handle("GET /progress", obs.ProgressHandler(s.progressSnap))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	s.obsMW = newHTTPObs(m, cfg.AccessLog)
	s.handler = s.obsMW.wrap(mux)
	return s
}

// Handler is the service's HTTP surface: the /v1 API plus /metrics,
// /progress and /healthz, wrapped in the request-observability
// middleware (request-id echo, per-endpoint latency/size histograms,
// access log).
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics is the service's live counter registry (the /metrics payload) —
// cmd/webracerd flushes its snapshot on drain.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Store is the persistent result store, nil when Config.StoreDir was
// empty. Tests and operators use it to inspect recovery/quarantine state.
func (s *Server) Store() *store.Store { return s.store }

// Drain gracefully shuts the service down: new submissions are refused
// with 503 from the moment it is called, every queued and in-flight job
// still runs to completion (or ctx expires), and the cache/counter state
// stays queryable via /metrics until the process exits. The SIGTERM path.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	return s.runner.Drain(ctx)
}

// Close is Drain with no deadline.
func (s *Server) Close() { _ = s.Drain(context.Background()) }

// post builds the handler shared by the three submission endpoints.
func (s *Server) post(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, hr *http.Request) {
		req, _, ok := readRequest(w, hr, s.cfg.MaxBodyBytes)
		if !ok {
			return
		}
		r, err := s.resolve(kind, req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.submit(w, hr, r)
	}
}

// readRequest reads and decodes a POST body within limit, writing the
// 4xx response itself on failure: an oversized body is 413 (the body was
// cut off mid-read — nothing was admitted, the request is safely
// retryable smaller), anything else malformed is 400. The raw bytes are
// returned alongside the decoded request so the router can forward a
// body verbatim instead of re-marshaling it.
func readRequest(w http.ResponseWriter, hr *http.Request, limit int64) (*Request, []byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, hr.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		}
		return nil, nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return nil, nil, false
	}
	return &req, raw, true
}

// submit routes a resolved request: cache hit, coalesce onto an in-flight
// job, or admit a new job (429 when the queue refuses).
func (s *Server) submit(w http.ResponseWriter, hr *http.Request, r *resolved) {
	w.Header().Set(HeaderJob, r.key)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if body, ok := s.cache.Get(r.key); ok {
		s.reviveJobLocked(r, body)
		s.mu.Unlock()
		w.Header().Set("X-Webracer-Cache", "hit")
		writeBody(w, http.StatusOK, body)
		return
	}
	if s.store != nil {
		// Second cache level: the persistent store. The disk read happens
		// outside the server lock; if an identical job slipped in
		// meanwhile, the bytes are identical by contract and revive is a
		// no-op.
		s.mu.Unlock()
		body, ok := s.store.Get(r.key)
		s.mu.Lock()
		if ok {
			s.cache.Put(r.key, body)
			s.reviveJobLocked(r, body)
			s.mu.Unlock()
			w.Header().Set("X-Webracer-Cache", "store-hit")
			writeBody(w, http.StatusOK, body)
			return
		}
		if s.draining {
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
	}
	if j, ok := s.jobs[r.key]; ok && !j.finishedState() {
		s.cCoalesced.Inc()
		s.mu.Unlock()
		s.respond(w, hr, j, r.async, "coalesced")
		return
	}
	// New work — also the re-run path for a finished job whose result
	// left the cache.
	j := &job{id: r.key, kind: r.kind, status: "queued", admitted: time.Now(), done: make(chan struct{})}
	s.jobs[r.key] = j
	// The depth this job sees ahead of it — the step-unit companion to
	// the wall-clock queue-wait histogram.
	s.hQueueDepth.Record(int64(s.runner.QueueDepth()))
	if !s.runner.TrySubmit(func() { s.runJob(j, r) }) {
		delete(s.jobs, r.key)
		s.cRejected.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	s.cAccepted.Inc()
	s.gDepth.Set(int64(s.runner.QueueDepth()))
	s.mu.Unlock()
	s.respond(w, hr, j, r.async, "miss")
}

// retryAfterSeconds derives the 429 hint from the live queue rather than
// a constant: with W workers and Q jobs already waiting, a newcomer is
// roughly ⌈Q/W⌉ job-turnarounds from the front, so the hint is
// RetryAfter × (1 + ⌈Q/W⌉), capped at 60 so a deep queue never tells
// clients to go away for minutes (the queue drains in parallel). The
// formula is documented in OPERATIONS.md "Backpressure".
func (s *Server) retryAfterSeconds() int {
	waiting := s.runner.QueueDepth()
	hint := s.cfg.RetryAfter * (1 + (waiting+s.workers-1)/s.workers)
	if hint > 60 {
		hint = 60
	}
	return hint
}

// reviveJobLocked makes sure a cache-served key has a finished job record
// so GET /v1/jobs/{id} answers for it. Caller holds s.mu.
func (s *Server) reviveJobLocked(r *resolved, body []byte) {
	if j, ok := s.jobs[r.key]; ok && j.finishedState() {
		return
	} else if ok {
		// In-flight job for a key already cached cannot happen: jobs are
		// only admitted on cache miss and their results Put on finish.
		_ = j
		return
	}
	j := &job{id: r.key, kind: r.kind, status: "done", body: body, code: http.StatusOK,
		done: make(chan struct{})}
	close(j.done)
	s.jobs[r.key] = j
	s.finished = append(s.finished, j.id)
	s.pruneHistoryLocked()
}

// respond completes a submission: async callers get 202 + the job id,
// sync callers wait for the job (or their own disconnect — the job runs
// on regardless).
func (s *Server) respond(w http.ResponseWriter, hr *http.Request, j *job, async bool, cacheState string) {
	w.Header().Set("X-Webracer-Cache", cacheState)
	if async {
		s.mu.Lock()
		st := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	select {
	case <-j.done:
		s.mu.Lock()
		body, code := j.body, j.code
		s.mu.Unlock()
		writeBody(w, code, body)
	case <-hr.Context().Done():
		// Client gone; nothing to write to. The job still finishes and
		// its result is cached for the retry.
	}
}

// runJob executes one admitted job on a pool worker and publishes its
// terminal state.
func (s *Server) runJob(j *job, r *resolved) {
	s.mu.Lock()
	j.status = "running"
	gate := s.jobGate
	s.mu.Unlock()
	s.hQueueWait.Record(time.Since(j.admitted).Milliseconds())
	if gate != nil {
		gate(r.kind, r.key)
	}
	execStart := time.Now()
	body, cacheable, err := s.execute(r)
	s.hExecWall.Record(time.Since(execStart).Milliseconds())
	s.mu.Lock()
	if err != nil {
		j.status = "failed"
		j.code = http.StatusInternalServerError
		j.errMsg = err.Error()
		j.body = mustMarshal(errorBody{Error: err.Error()})
		s.cFailed.Inc()
	} else {
		j.status = "done"
		j.code = http.StatusOK
		j.body = body
		if cacheable {
			s.cache.Put(j.id, body)
		} else {
			s.cInterrupted.Inc()
		}
		s.cCompleted.Inc()
	}
	s.gDepth.Set(int64(s.runner.QueueDepth()))
	s.finished = append(s.finished, j.id)
	s.pruneHistoryLocked()
	close(j.done)
	s.mu.Unlock()
	if err == nil && cacheable {
		// Persist outside the server lock — an fsync must not stall
		// admissions. Best-effort: a failed write costs a recomputation
		// after restart, never correctness (serve.store.errors counts it).
		_ = s.store.Put(j.id, body)
	}
}

// pruneHistoryLocked caps the finished-job records at cfg.JobHistory,
// dropping oldest first. In-flight jobs are never pruned. Caller holds
// s.mu.
func (s *Server) pruneHistoryLocked() {
	for len(s.finished) > s.cfg.JobHistory {
		id := s.finished[0]
		s.finished = s.finished[1:]
		if j, ok := s.jobs[id]; ok && j.finishedState() {
			delete(s.jobs, id)
		}
	}
}

// execute runs the resolved job and serializes its response body. The
// second return reports cacheability: only complete (un-interrupted,
// un-degraded) runs enter the cache, because an interrupted run's bytes
// depend on wall-clock timing rather than the key's inputs alone. Panics
// become errors — one bad job must not take a worker down with it.
func (s *Server) execute(r *resolved) (body []byte, cacheable bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			body, cacheable, err = nil, false, fmt.Errorf("job panicked: %v", v)
		}
	}()
	switch r.kind {
	case kindDetect:
		return s.executeDetect(r)
	case kindSweep:
		return s.executeSweep(r)
	case kindFaultSweep:
		return s.executeFaultSweep(r)
	}
	return nil, false, fmt.Errorf("unknown job kind %q", r.kind)
}

// executeDetect runs one detection and renders the compact report (or the
// full session when the request asked for one).
func (s *Server) executeDetect(r *resolved) ([]byte, bool, error) {
	res := webracer.RunConfig(r.site, r.cfg)
	s.hExecOps.Record(int64(res.Ops))
	var payload any
	if r.session {
		payload = SessionResponse{ID: r.key, Session: webracer.Export(res, r.cfg.Seed, nil, false)}
	} else {
		payload = detectResponse(r, res)
	}
	body, err := marshalBody(payload)
	cacheable := res.Interrupted == ""
	if err == nil && cacheable && !r.session && res.Sampled != nil && res.Sampled.Escalated {
		s.cEscalated.Inc()
		s.crossPopulateExact(r, res)
	}
	return body, cacheable, err
}

// crossPopulateExact stores an escalated sampled run's result under the
// equivalent *exact* request's cache key as well. The escalation second
// pass already paid for the exact run — runSampled re-executes the same
// (site, seed, config) under webracer.EscalationDetector — so a later
// direct exact request for this site is a cache hit, byte-identical to
// what a cold exact run would produce (the determinism contract makes
// the two indistinguishable; tests assert the bytes). The Cache is
// internally locked, so this is safe from the worker goroutine.
func (s *Server) crossPopulateExact(r *resolved, res *webracer.Result) {
	r2 := *r
	r2.cfg.Detector = webracer.EscalationDetector
	r2.cfg.SampleRate = 0
	r2.key = r2.computeKey()
	resp := detectResponse(&r2, res)
	// A direct exact run has no sampled-tier accounting.
	resp.SampleRate, resp.SampledHits, resp.Escalated = 0, 0, false
	if body, err := marshalBody(resp); err == nil {
		s.cache.Put(r2.key, body)
		_ = s.store.Put(r2.key, body)
	}
}

// executeSweep runs /v1/sweep in either mode. The seeds mode shards the
// schedules over the job's sweep workers via pool.Map and folds exactly
// like webracer.RunSeeds (same 7919 seed stepping), with per-run
// interruption visible so degraded sweeps stay out of the cache.
func (s *Server) executeSweep(r *resolved) ([]byte, bool, error) {
	resp := SweepResponse{ID: r.key, Site: r.site.Name, Seed: r.cfg.Seed, Mode: r.mode}
	cacheable := true
	switch {
	case r.prune && r.mode == "seeds":
		var stats webracer.ClassStats
		sweep, err := webracer.RunSeedsParallel(r.site, r.cfg, r.seeds,
			webracer.ParallelConfig{Workers: s.cfg.SweepWorkers, Prune: true, Classes: &stats})
		if err != nil {
			return nil, false, err
		}
		resp.Seeds = r.seeds
		resp.PerSeed = sweep.PerSeed
		resp.Locations = sweep.Locations
		fillStableFlaky(&resp, r.seeds)
		finishPrunedSweep(s, &resp, stats, &cacheable)
	case r.prune && r.mode == "delay-one":
		var stats webracer.ClassStats
		sweep, err := webracer.ExploreSchedulesParallel(r.site, r.cfg,
			webracer.ParallelConfig{Workers: s.cfg.SweepWorkers, Prune: true, Classes: &stats})
		if err != nil {
			return nil, false, err
		}
		resp.Runs = sweep.Runs
		resp.ByLocation = sweep.ByLocation
		resp.NewlyExposed = sweep.NewlyExposed
		finishPrunedSweep(s, &resp, stats, &cacheable)
	case r.mode == "seeds":
		results, err := pool.Map(pool.Options{Workers: s.cfg.SweepWorkers}, r.seeds,
			func(i int) *webracer.Result {
				c := r.cfg
				c.Seed = r.cfg.Seed + int64(i)*7919
				return webracer.RunConfig(r.site, c)
			})
		if err != nil {
			return nil, false, err
		}
		resp.Seeds = r.seeds
		locations := map[string]int{}
		totalOps := 0
		for i, res := range results {
			totalOps += res.Ops
			resp.PerSeed = append(resp.PerSeed, len(res.Reports))
			if res.Interrupted != "" {
				cacheable = false
				resp.Degraded = append(resp.Degraded,
					fmt.Sprintf("seed %d: %s", r.cfg.Seed+int64(i)*7919, res.Interrupted))
			}
			seen := map[string]bool{}
			for _, rep := range res.Reports {
				key := rep.Loc.String()
				if !seen[key] {
					seen[key] = true
					locations[key]++
				}
			}
		}
		s.hExecOps.Record(int64(totalOps))
		resp.Locations = locations
		fillStableFlaky(&resp, r.seeds)
	case r.mode == "delay-one":
		sweep, err := webracer.ExploreSchedulesParallel(r.site, r.cfg,
			webracer.ParallelConfig{Workers: s.cfg.SweepWorkers})
		if err != nil {
			return nil, false, err
		}
		resp.Runs = sweep.Runs
		resp.ByLocation = sweep.ByLocation
		resp.NewlyExposed = sweep.NewlyExposed
		if sweep.Baseline != nil && sweep.Baseline.Interrupted != "" {
			cacheable = false
			resp.Degraded = append(resp.Degraded, "baseline: "+sweep.Baseline.Interrupted)
		}
	}
	body, err := marshalBody(resp)
	return body, cacheable, err
}

// fillStableFlaky splits the sweep's location union into locations every
// seed reported vs. the schedule-dependent remainder.
func fillStableFlaky(resp *SweepResponse, seeds int) {
	for loc, hits := range resp.Locations {
		if hits == seeds {
			resp.Stable = append(resp.Stable, loc)
		} else {
			resp.Flaky = append(resp.Flaky, loc)
		}
	}
	sort.Strings(resp.Stable)
	sort.Strings(resp.Flaky)
}

// finishPrunedSweep attaches a pruned sweep's class summary to the
// response, folds it into the explore.classes.* counters of /metrics,
// and keeps degraded sweeps out of the cache. Interrupted runs are
// analyzed but never classified, so Executions − Distinct − Pruned
// counts exactly the interrupted runs — their bytes depend on wall-clock
// timing, not on the job key's inputs.
func finishPrunedSweep(s *Server, resp *SweepResponse, stats webracer.ClassStats, cacheable *bool) {
	resp.Classes = &stats
	stats.Fold(s.metrics)
	if degraded := stats.Executions - stats.Distinct - stats.Pruned; degraded > 0 {
		*cacheable = false
		resp.Degraded = append(resp.Degraded, fmt.Sprintf("%d interrupted runs", degraded))
	}
}

// executeFaultSweep runs /v1/faultsweep: baseline plus N derived fault
// plans at a fixed schedule seed. Degraded or skipped runs keep the
// response out of the cache.
func (s *Server) executeFaultSweep(r *resolved) ([]byte, bool, error) {
	fc := webracer.FaultSweepConfig{Plans: r.plans}
	if r.fseed != r.cfg.Seed {
		base := r.fseed
		fc.PlanFor = func(i int) fault.Plan { return fault.ForSeed(base, i) }
	}
	sweep, err := webracer.RunFaultSweep(r.site, r.cfg, fc,
		webracer.ParallelConfig{Workers: s.cfg.SweepWorkers})
	if err != nil {
		return nil, false, err
	}
	body, merr := marshalBody(FaultSweepResponse{ID: r.key, Sweep: sweep})
	cacheable := len(sweep.Degraded) == 0 && len(sweep.Skipped) == 0
	return body, cacheable, merr
}

// handleJob answers GET /v1/jobs/{id}. Ids are content-addressed, so a
// finished job pruned from history but still cached is revived from the
// cache transparently.
func (s *Server) handleJob(w http.ResponseWriter, hr *http.Request) {
	id := hr.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = s.statusLocked(j)
	}
	s.mu.Unlock()
	if !ok {
		if body, hit := s.cache.Get(id); hit {
			st = JobStatus{ID: id, Status: "done", Result: body}
			writeJSON(w, http.StatusOK, st)
			return
		}
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// statusLocked renders a job's JobStatus. Caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, Kind: string(j.kind), Status: j.status, Error: j.errMsg}
	if j.status == "done" {
		st.Result = j.body
	}
	return st
}

// handleDetectors answers GET /v1/detectors: the capability listing of
// every detector kind the service accepts, which tier each belongs to,
// and which one requests get when they omit "detector". Clients use it
// to discover the sampled tier (and its escalation semantics) without
// hardcoding spellings.
func (s *Server) handleDetectors(w http.ResponseWriter, _ *http.Request) {
	// cfg.DefaultDetector parsed successfully at NewServer.
	def, _ := webracer.ParseDetector(s.cfg.DefaultDetector)
	resp := DetectorsResponse{Default: def.String(), Escalation: webracer.EscalationDetector.String()}
	for _, k := range webracer.DetectorKinds() {
		info := DetectorInfo{Name: k.String(), Tier: "exact", Default: k == def}
		if k == webracer.DetectorSampled {
			info.Tier = "sampled"
		}
		resp.Detectors = append(resp.Detectors, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth reports liveness: 200 while accepting, 503 once draining
// (load balancers stop routing here while in-flight work finishes).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// progressSnap feeds /progress: the pool's lifetime counters plus the
// queue's current depth.
func (s *Server) progressSnap() map[string]any {
	snap := s.runner.Snapshot()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return map[string]any{
		"total":      snap.Total,
		"done":       snap.Done,
		"inFlight":   snap.InFlight,
		"perSecond":  snap.PerSecond,
		"elapsedMS":  snap.Elapsed.Milliseconds(),
		"queueDepth": s.runner.QueueDepth(),
		"draining":   draining,
	}
}

// ---- response types ----

// RaceJSON is one race in the compact detect response.
type RaceJSON struct {
	// Type classifies the race (HTML, Variable, Function, EventDispatch).
	Type string `json:"type"`
	// Loc is the racing logical memory location.
	Loc string `json:"loc"`
	// Prior and Current describe the two unordered accesses.
	Prior string `json:"prior"`
	// Current is the later access of the reported pair.
	Current string `json:"current"`
	// Env is the fault-plan label the race was found under, if any.
	Env string `json:"env,omitempty"`
}

// DetectResponse is POST /v1/detect's compact body (the default; set
// "session": true for the full exported session instead). All fields are
// pure functions of the request key, so the body is byte-stable.
type DetectResponse struct {
	// ID is the job's content-addressed id (also the cache key).
	ID string `json:"id"`
	// Site is the site's display name.
	Site string `json:"site"`
	// Seed is the schedule seed the run used.
	Seed int64 `json:"seed"`
	// Detector names the algorithm that ran.
	Detector string `json:"detector"`
	// Ops is the number of operations the execution performed.
	Ops int `json:"ops"`
	// Races are the reports surviving the configured filters.
	Races []RaceJSON `json:"races"`
	// RawRaces is the pre-filter report count.
	RawRaces int `json:"rawRaces"`
	// Predicted counts races the predictive detector found beyond the
	// observed schedule (each confirmed by witness replay before it is
	// reported). Zero — and absent — for every other detector.
	Predicted int `json:"predicted,omitempty"`
	// Counts tallies Races by type.
	Counts report.Counts `json:"counts"`
	// Errors are the page errors observed (hidden crashes, failed
	// fetches).
	Errors []string `json:"errors,omitempty"`
	// FaultEvents is the number of fault injections that fired.
	FaultEvents int `json:"faultEvents,omitempty"`
	// Explore summarizes automatic exploration, when it ran.
	Explore map[string]int `json:"explore,omitempty"`
	// SampleRate is the effective location sampling rate (sampled
	// detector only).
	SampleRate float64 `json:"sampleRate,omitempty"`
	// SampledHits is the number of races the cheap tier itself found
	// before escalation (sampled detector only).
	SampledHits int `json:"sampledHits,omitempty"`
	// Escalated reports that the sampled run re-ran under the exact
	// escalation detector and Races holds that pass's output.
	Escalated bool `json:"escalated,omitempty"`
	// Interrupted names why the run stopped early, if it did (such runs
	// are never cached).
	Interrupted string `json:"interrupted,omitempty"`
}

// DetectorInfo is one detector kind in GET /v1/detectors.
type DetectorInfo struct {
	// Name is the spelling Request.Detector accepts.
	Name string `json:"name"`
	// Tier is "exact" (reports are complete for the observed schedule) or
	// "sampled" (cheap pass over a sampled location subset; any hit
	// escalates to the exact tier).
	Tier string `json:"tier"`
	// Default marks the kind requests get when they omit "detector".
	Default bool `json:"default,omitempty"`
}

// DetectorsResponse is GET /v1/detectors' body.
type DetectorsResponse struct {
	// Detectors lists every accepted kind, in the library's declaration
	// order.
	Detectors []DetectorInfo `json:"detectors"`
	// Default is the service's default tier (Config.DefaultDetector).
	Default string `json:"default"`
	// Escalation is the exact detector sampled hits re-run under.
	Escalation string `json:"escalation"`
}

// SessionResponse wraps the full exported session for "session": true
// detect requests.
type SessionResponse struct {
	// ID is the job's content-addressed id.
	ID string `json:"id"`
	// Session is the complete serialized run (ops, edges, races).
	Session *webracer.Session `json:"session"`
}

// SweepResponse is POST /v1/sweep's body, for both modes.
type SweepResponse struct {
	// ID is the job's content-addressed id.
	ID string `json:"id"`
	// Site is the site's display name.
	Site string `json:"site"`
	// Seed is the base schedule seed.
	Seed int64 `json:"seed"`
	// Mode is "seeds" or "delay-one".
	Mode string `json:"mode"`
	// Seeds is the number of schedules run (seeds mode).
	Seeds int `json:"seeds,omitempty"`
	// PerSeed is each run's race count, in seed order (seeds mode).
	PerSeed []int `json:"perSeed,omitempty"`
	// Locations maps each racing location to the number of runs that
	// reported it (seeds mode).
	Locations map[string]int `json:"locations,omitempty"`
	// Stable are locations reported by every seed, sorted (seeds mode).
	Stable []string `json:"stable,omitempty"`
	// Flaky are locations reported by only some seeds, sorted (seeds
	// mode).
	Flaky []string `json:"flaky,omitempty"`
	// Runs is the number of executions (delay-one mode: 1 + resources).
	Runs int `json:"runs,omitempty"`
	// ByLocation maps race locations to the perturbations that exposed
	// them, "" meaning the baseline (delay-one mode).
	ByLocation map[string][]string `json:"byLocation,omitempty"`
	// NewlyExposed are locations found only under some perturbation,
	// sorted (delay-one mode).
	NewlyExposed []string `json:"newlyExposed,omitempty"`
	// Degraded lists runs that tripped the wall budget; a degraded sweep
	// is returned but never cached.
	Degraded []string `json:"degraded,omitempty"`
	// Classes is the pruning summary of a "prune": true sweep — how many
	// executions ran, how many distinct trace classes they fell into, and
	// how many detector passes pruning skipped. Absent on unpruned
	// sweeps.
	Classes *webracer.ClassStats `json:"classes,omitempty"`
}

// FaultSweepResponse is POST /v1/faultsweep's body: the library's
// deterministic FaultSweep, wrapped with the job id.
type FaultSweepResponse struct {
	// ID is the job's content-addressed id.
	ID string `json:"id"`
	// Sweep is the full fault-sweep result (runs, locations,
	// newlyExposed, degraded, skipped).
	Sweep *webracer.FaultSweep `json:"sweep"`
}

// JobStatus is GET /v1/jobs/{id}'s body (and the 202 body of async
// submissions).
type JobStatus struct {
	// ID is the job's content-addressed id.
	ID string `json:"id"`
	// Kind is the endpoint family: detect, sweep or faultsweep.
	Kind string `json:"kind,omitempty"`
	// Status is queued, running, done or failed.
	Status string `json:"status"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result is the finished job's response body, verbatim.
	Result json.RawMessage `json:"result,omitempty"`
}

// detectResponse renders a Result compactly.
func detectResponse(r *resolved, res *webracer.Result) DetectResponse {
	resp := DetectResponse{
		ID:          r.key,
		Site:        res.Site,
		Seed:        r.cfg.Seed,
		Detector:    r.cfg.Detector.String(),
		Ops:         res.Ops,
		Races:       []RaceJSON{},
		RawRaces:    len(res.RawReports),
		Counts:      res.Counts,
		FaultEvents: len(res.FaultEvents),
		Interrupted: res.Interrupted,
	}
	if res.Predictive != nil {
		resp.Predicted = res.Predictive.Stats.Predicted
	}
	if res.Sampled != nil {
		resp.SampleRate = res.Sampled.Rate
		resp.SampledHits = res.Sampled.Hits
		resp.Escalated = res.Sampled.Escalated
	}
	for _, rep := range res.Reports {
		resp.Races = append(resp.Races, RaceJSON{
			Type:    report.Classify(rep).String(),
			Loc:     rep.Loc.String(),
			Prior:   fmt.Sprintf("%s op%d %s", rep.Prior.Kind, rep.Prior.Op, rep.Prior.Ctx),
			Current: fmt.Sprintf("%s op%d %s", rep.Current.Kind, rep.Current.Op, rep.Current.Ctx),
			Env:     rep.Env,
		})
	}
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.String())
	}
	if st := res.ExploreStats; st.EventsDispatched+st.LinksClicked+st.FieldsTyped+st.Rounds > 0 {
		resp.Explore = map[string]int{
			"events": st.EventsDispatched,
			"links":  st.LinksClicked,
			"fields": st.FieldsTyped,
			"rounds": st.Rounds,
		}
	}
	return resp
}

// ---- encoding helpers ----

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	// Error is the human-readable reason.
	Error string `json:"error"`
}

// marshalBody serializes a response payload the one canonical way:
// two-space indent, trailing newline. Byte stability of the payload
// values plus a fixed encoder make response bodies cache-comparable.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// mustMarshal is marshalBody for shapes that cannot fail.
func mustMarshal(v any) []byte {
	b, err := marshalBody(v)
	if err != nil {
		panic(err)
	}
	return b
}

// writeBody writes a prebuilt JSON body.
func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeJSON marshals and writes v.
func writeJSON(w http.ResponseWriter, code int, v any) {
	writeBody(w, code, mustMarshal(v))
}

// writeError writes the canonical error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
