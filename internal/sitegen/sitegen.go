// Package sitegen generates the synthetic web-site corpus used to
// regenerate the paper's evaluation (§6). The real study browsed 100
// Fortune 100 home pages in 2012; those pages are gone, so the corpus
// plants the exact race patterns the paper reports finding, with per-site
// counts drawn from heavy-tailed distributions calibrated so the shape of
// Tables 1 and 2 holds (low medians, large maxima, the same
// harmful/benign structure per race type). See DESIGN.md's substitution
// table and EXPERIMENTS.md for the calibration numbers.
//
// Patterns (each a transcription of something §2/§6 describes):
//
//   - HTML harmful: a javascript: link whose handler dereferences a
//     later-parsed element without a null check (Fig. 3, valero.com).
//   - HTML benign: the Ford setTimeout poll — retry until the element
//     exists, then mutate (§6.3); synchronization via data dependence that
//     happens-before cannot see.
//   - Function harmful: an on-event attribute calling a function declared
//     in an async script (Fig. 4 / §6.3's hover-menu variant).
//   - Function benign: the same, but guarded by typeof — the read still
//     races with the hoisted declaration write.
//   - Variable harmful (form): the Southwest hint overwrite (Fig. 2).
//   - Variable benign (form): hint written only after reading the field
//     and finding it empty — the §5.3 filter's read-before-write case.
//   - Variable raw-only: analytics counters bumped from independent timer
//     callbacks and async scripts (filtered out of Table 2, dominating
//     Table 1's variable row like the obfuscated delayed-loading races
//     the paper describes).
//   - Event dispatch harmful: the Gomez image-monitor — a setInterval
//     attaching onload handlers to images that may already have loaded
//     (§6.3; Humana/MetLife/Walgreens rows).
//   - Event dispatch benign: deliberately delayed script-inserted code
//     adding hover handlers (multi-dispatch events, filtered by §5.3).
//   - Iframe variable races (Fig. 1).
package sitegen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"webracer/internal/loader"
)

// Spec is the blueprint of one synthetic site: how many instances of each
// race pattern it contains.
type Spec struct {
	Index      int
	Name       string
	Paragraphs int
	DecorImgs  int

	HTMLHarmful int // Fig. 3 unguarded lookups
	HTMLBenign  int // guarded delayed lookups (non-poll)
	FordPolls   int // §6.3 Ford pattern instances

	FuncHarmful int
	FuncBenign  int

	FormHarmful int // Fig. 2 hint overwrites
	FormGuarded int // read-before-write hints

	PlainVars int // raw-only variable races

	GomezImages  int // §6.3 Gomez-monitored images
	DelayedMenus int // benign dispatch races

	IframePairs int // Fig. 1 cross-frame races

	// TimerClears is the number of timer-rotator patterns where a
	// concurrent callback clears a timer that may be mid-flight — only
	// detected with the InstrumentTimerClears extension (§7).
	TimerClears int
	// MultiHandlers is the number of targets carrying two listeners for
	// one event that touch shared state — racing under the paper's
	// Appendix A semantics, ordered under the ablation flag.
	MultiHandlers int
	// AjaxRaces is the number of Zheng-style AJAX races (§8): two
	// asynchronous requests whose completion handlers write one shared
	// slot, so the page's final state depends on response order.
	AjaxRaces int

	// Fault-sensitive patterns (see FaultSpec). These are never drawn by
	// SpecFor — the timing-only corpus stays byte-identical — and their
	// races are gated on resource failures, so they only surface under a
	// fault plan (internal/fault).

	// FragileImages is the number of images carrying an onerror fallback
	// writer that races a timer — reachable only when the image fetch
	// fails.
	FragileImages int
	// CDNScripts is the number of async scripts with an onerror fallback
	// writer (the lost-CDN idiom); the error handler's write races a
	// timer, and only exists when the script fetch fails.
	CDNScripts int
	// XHRRetries is the number of XHR retry loops: a request with a
	// timeout whose onerror/ontimeout handlers re-issue it, racing a
	// cached-value timer for the result slot.
	XHRRetries int

	// Schedule-dependent patterns (see SchedSpec): races the pairwise
	// detector reports only under some seeds, or under none — the
	// predictive pass's recall corpus.

	// FlakyReaders is the number of §5.1-limitation instances whose
	// detection depends on the observed access order: two independently
	// jittered timers read one slot and a third, causally-later callback
	// writes it. When the causally-protected read lands last, the pairwise
	// detector's last-read state hides the racing read — a seed-flaky
	// report that full-history analysis recovers from any one trace.
	FlakyReaders int
	// DoubleDispatches is the number of dispatch-serialization instances:
	// two independent async scripts each fire click() on one button whose
	// handler writes shared state. Every observed schedule serializes the
	// dispatches (HB rule 9), so no seed ever reports the race — only the
	// predictive pass does, with a witness reordering.
	DoubleDispatches int
}

// companyNames gives the corpus fortune-ish flavor (fictional).
var companyNames = []string{
	"Acme Industrial", "Globex", "Initech", "Umbrella Retail", "Stark Logistics",
	"Wayne Energy", "Wonka Foods", "Tyrell Systems", "Cyberdyne Motors", "Aperture Labs",
	"Hooli", "Pied Piper Health", "Vandelay Imports", "Dunder Paper", "Sterling Insurance",
	"Oscorp Chemical", "Gekko Capital", "Nakatomi Trading", "Weyland Air", "Soylent Grocers",
}

// StressSpec returns the blueprint of wide-page i of the performance
// workload: the corpus patterns scaled toward the execution sizes the
// paper reports for production pages (§6, thousands of operations across
// hundreds of concurrent handler tasks). The E4 ablation and the replay
// benchmarks use these pages to compare happens-before representations at
// a scale where construction cost is visible.
func StressSpec(i int) Spec {
	return Spec{
		Index:         900 + i,
		Name:          fmt.Sprintf("stress%02d", i),
		Paragraphs:    50,
		DecorImgs:     40,
		HTMLBenign:    80,
		FordPolls:     20,
		FuncBenign:    80,
		FormGuarded:   80,
		PlainVars:     40,
		GomezImages:   200,
		DelayedMenus:  100,
		IframePairs:   20,
		MultiHandlers: 40,
		AjaxRaces:     40,
	}
}

// FaultSpec returns the blueprint of fault-corpus page i: small pages
// whose planted races are gated on resource failures — an image onerror
// fallback, a lost-CDN script handler, an XHR retry loop. Fault-free,
// these pages are race-free on the gated locations (every resource
// arrives, no error handler runs); under a fault plan the error path
// executes and the races appear. The chaos sweep and the fault golden
// fixture run over these.
func FaultSpec(i int) Spec {
	return Spec{
		Index:         700 + i,
		Name:          fmt.Sprintf("fault%02d", i),
		Paragraphs:    2,
		DecorImgs:     1,
		FragileImages: 1 + i%3,
		CDNScripts:    i % 2,
		XHRRetries:    1 + i%2,
	}
}

// SchedSpec returns the blueprint of schedule-dependent page i: planted
// races that the observed schedule can hide from the pairwise detector —
// seed-flaky FlakyReaders and never-observed DoubleDispatches — next to a
// couple of stable variable races as a baseline. The sweep-recovery
// battery runs a 32-seed sweep over these as ground truth and measures how
// much one predictive pass recovers.
func SchedSpec(i int) Spec {
	return Spec{
		Index:            800 + i,
		Name:             fmt.Sprintf("sched%02d", i),
		Paragraphs:       2,
		DecorImgs:        1,
		PlainVars:        2,
		FlakyReaders:     1 + i%2,
		DoubleDispatches: 1 + i%2,
	}
}

// SpecFor deterministically derives the blueprint for site index under the
// given corpus seed. The draws are heavy-tailed: most sites carry few or no
// planted races, a handful carry dozens (the Ford and Gomez outliers of
// Table 2).
func SpecFor(seed int64, index int) Spec {
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(index)*7919))
	s := Spec{
		Index:      index,
		Name:       fmt.Sprintf("%s #%02d", companyNames[index%len(companyNames)], index),
		Paragraphs: 6 + r.Intn(14),
		DecorImgs:  1 + r.Intn(4),
	}
	// HTML races.
	if r.Float64() < 0.22 {
		s.HTMLHarmful = 1 + geom(r, 0.55)
	}
	if r.Float64() < 0.22 {
		s.HTMLBenign = 1 + geom(r, 0.45)
	}
	if r.Float64() < 0.04 {
		s.HTMLBenign += 10 + r.Intn(32) // AmEx-like benign cluster
	}
	// Outlier archetypes are pinned to fixed corpus positions, the way
	// the real corpus had *specific* outlier companies (Ford's 112
	// benign polls, MetLife/Walgreens' 35 monitor races each, a couple
	// of sites with hundreds of delayed-loading variable races).
	if index%100 == 11 {
		s.FordPolls = 95 + r.Intn(25)
	}
	if index%33 == 7 {
		s.GomezImages = 13 + r.Intn(23)
	}
	if index%50 == 29 {
		s.PlainVars = 180 + r.Intn(85)
	}
	if index%50 == 41 {
		s.DelayedMenus = 120 + r.Intn(70)
	}
	// Function races.
	if r.Float64() < 0.07 {
		s.FuncHarmful = 1 + r.Intn(2)
	}
	if r.Float64() < 0.16 {
		s.FuncBenign = 1 + geom(r, 0.5)
	}
	// Form value races.
	if r.Float64() < 0.05 {
		s.FormHarmful = 1
	}
	if r.Float64() < 0.04 {
		s.FormGuarded = 1
	}
	// Raw-only variable races: lognormal-ish, median ≈ 5.5, heavy tail
	// (paper: mean 22.4, median 5.5, max 269).
	if s.PlainVars == 0 && r.Float64() < 0.88 {
		s.PlainVars = clamp(int(math.Round(math.Exp(r.NormFloat64()*1.55+1.7))), 1, 265)
	}
	// Event dispatch (paper: mean 22.3, median 7.0, max 198).
	if s.GomezImages == 0 && r.Float64() < 0.02 {
		s.GomezImages = 10 + r.Intn(28)
	}
	if s.DelayedMenus == 0 && r.Float64() < 0.85 {
		s.DelayedMenus = clamp(int(math.Round(math.Exp(r.NormFloat64()*1.4+2.0))), 1, 190)
	}
	// Frames.
	if r.Float64() < 0.12 {
		s.IframePairs = 1
	}
	// Extension-pattern instances (invisible to the baseline detector,
	// exercised by the ablation benchmarks).
	if r.Float64() < 0.25 {
		s.TimerClears = 1 + r.Intn(2)
	}
	if r.Float64() < 0.30 {
		s.MultiHandlers = 1 + r.Intn(3)
	}
	if r.Float64() < 0.20 {
		s.AjaxRaces = 1 + r.Intn(2)
	}
	return s
}

func geom(r *rand.Rand, p float64) int {
	n := 0
	for r.Float64() > p && n < 40 {
		n++
	}
	return n
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fig1 is the paper's Fig. 1 site: a cross-frame variable race between
// an assignment in one iframe and a read in another. Shared by the golden
// session fixtures and the telemetry/trace examples, so every consumer
// pins the exact same bytes.
func Fig1() *loader.Site {
	return loader.NewSite("fig1").
		Add("index.html", `<script>x = 1;</script>
<iframe src="a.html"></iframe><iframe src="b.html"></iframe>`).
		Add("a.html", `<script>x = 2;</script>`).
		Add("b.html", `<script>alert(x);</script>`)
}

// Fig4 is the paper's Fig. 4 site: a function race — a timer installed by
// an iframe's onload calls doNextStep, which the main document may not
// have declared yet.
func Fig4() *loader.Site {
	return loader.NewSite("fig4").
		Add("index.html", `
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
<script>function doNextStep() { done = 1; }</script>`).
		Add("sub.html", `<p>sub</p>`)
}

// Generate materializes the site: index.html plus external resources.
func Generate(spec Spec) *loader.Site {
	g := &gen{site: loader.NewSite(spec.Name), spec: spec}
	g.build()
	return g.site
}

// GenerateCorpus returns n sites for the corpus seed.
func GenerateCorpus(seed int64, n int) []*loader.Site {
	out := make([]*loader.Site, n)
	for i := range out {
		out[i] = Generate(SpecFor(seed, i))
	}
	return out
}

type gen struct {
	site *loader.Site
	spec Spec
	top  strings.Builder // early-page chunks
	bot  strings.Builder // late-page chunks
}

func (g *gen) build() {
	s := g.spec
	for i := 0; i < s.HTMLHarmful; i++ {
		g.htmlHarmful(i)
	}
	for i := 0; i < s.HTMLBenign; i++ {
		g.htmlBenign(i)
	}
	if s.FordPolls > 0 {
		g.fordPolls(s.FordPolls)
	}
	for i := 0; i < s.FuncHarmful; i++ {
		g.funcHarmful(i)
	}
	for i := 0; i < s.FuncBenign; i++ {
		g.funcBenign(i)
	}
	for i := 0; i < s.FormHarmful; i++ {
		g.formHarmful(i)
	}
	for i := 0; i < s.FormGuarded; i++ {
		g.formGuarded(i)
	}
	if s.PlainVars > 0 {
		g.plainVars(s.PlainVars)
	}
	if s.GomezImages > 0 {
		g.gomez(s.GomezImages)
	}
	if s.DelayedMenus > 0 {
		g.delayedMenus(s.DelayedMenus)
	}
	for i := 0; i < s.IframePairs; i++ {
		g.iframePair(i)
	}
	for i := 0; i < s.TimerClears; i++ {
		g.timerClear(i)
	}
	for i := 0; i < s.MultiHandlers; i++ {
		g.multiHandler(i)
	}
	for i := 0; i < s.AjaxRaces; i++ {
		g.ajaxRace(i)
	}
	for i := 0; i < s.FlakyReaders; i++ {
		g.flakyReader(i)
	}
	for i := 0; i < s.DoubleDispatches; i++ {
		g.doubleDispatch(i)
	}
	for i := 0; i < s.FragileImages; i++ {
		g.fragileImage(i)
	}
	for i := 0; i < s.CDNScripts; i++ {
		g.cdnScript(i)
	}
	for i := 0; i < s.XHRRetries; i++ {
		g.xhrRetry(i)
	}

	var page strings.Builder
	fmt.Fprintf(&page, "<html><head><title>%s</title></head><body>\n", g.spec.Name)
	page.WriteString(g.top.String())
	for i := 0; i < g.spec.Paragraphs; i++ {
		fmt.Fprintf(&page, "<p>Welcome to %s — section %d.</p>\n", g.spec.Name, i)
	}
	for i := 0; i < g.spec.DecorImgs; i++ {
		fmt.Fprintf(&page, `<img src="decor%d.png" alt="decoration" />`+"\n", i)
	}
	page.WriteString(g.bot.String())
	page.WriteString("</body></html>")
	g.site.Add("index.html", page.String())
}

// htmlHarmful plants a Fig. 3 pattern: the link's handler dereferences a
// panel parsed near the bottom of the page, with no null check.
func (g *gen) htmlHarmful(i int) {
	fmt.Fprintf(&g.top, `
<script>
function openPanel%d() {
  var p = document.getElementById("panel%d");
  p.style.display = "block";
}
</script>
<a href="javascript:openPanel%d()">Open panel %d</a>
`, i, i, i, i)
	fmt.Fprintf(&g.bot, `<div id="panel%d" style="display:none">panel body %d</div>`+"\n", i, i)
}

// htmlBenign plants a guarded delayed lookup: a timeout that checks for the
// element before touching it. The race on the element location remains (the
// guard is data-dependence synchronization), but it cannot crash.
func (g *gen) htmlBenign(i int) {
	fmt.Fprintf(&g.top, `
<script>
setTimeout(function() {
  var el = document.getElementById("widget%d");
  if (el != null) { el.className = "enhanced"; }
}, %d);
</script>
`, i, 5+i%40)
	fmt.Fprintf(&g.bot, `<div id="widget%d">widget</div>`+"\n", i)
}

// fordPolls plants the §6.3 Ford pattern: one poll function retrying until
// the sentinel element exists, then mutating n distinct nodes — n benign
// HTML races from a single idiom.
func (g *gen) fordPolls(n int) {
	var ids strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&ids, `"ford%d",`, i)
	}
	fmt.Fprintf(&g.top, `
<script>
function addPopUp() {
  if (document.getElementById("fordlast") != null) {
    var ids = [%s];
    for (var i = 0; i < ids.length; i++) {
      var el = document.getElementById(ids[i]);
      if (el != null) { el.className = "popup"; }
    }
  } else {
    setTimeout(addPopUp, 40);
  }
}
addPopUp();
</script>
`, strings.TrimSuffix(ids.String(), ","))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.bot, `<div id="ford%d">menu item</div>`+"\n", i)
	}
	g.bot.WriteString(`<div id="fordlast"></div>` + "\n")
}

// funcHarmful plants a Fig. 4 / §6.3 pattern: a hover handler calling a
// function declared in an asynchronously loaded script.
func (g *gen) funcHarmful(i int) {
	fmt.Fprintf(&g.top, `
<div id="navh%d" onmouseover="navMenu%d_%d();">Products</div>
<script src="nav%d.js" async="true"></script>
`, i, g.spec.Index, i, i)
	g.site.Add(fmt.Sprintf("nav%d.js", i),
		fmt.Sprintf("function navMenu%d_%d() { navOpened%d = 1; }", g.spec.Index, i, i))
}

// funcBenign is the typeof-guarded variant: no crash, but the typeof read
// still races with the hoisted declaration write.
func (g *gen) funcBenign(i int) {
	fmt.Fprintf(&g.top, `
<div id="navb%d" onmouseover="if (typeof helper%d_%d == 'function') { helper%d_%d(); }">Deals</div>
<script src="helper%d.js" async="true"></script>
`, i, g.spec.Index, i, g.spec.Index, i, i)
	g.site.Add(fmt.Sprintf("helper%d.js", i),
		fmt.Sprintf("function helper%d_%d() { dealsShown%d = 1; }", g.spec.Index, i, i))
}

// formHarmful plants the Fig. 2 Southwest pattern: a late script overwrites
// whatever the user typed.
func (g *gen) formHarmful(i int) {
	fmt.Fprintf(&g.top, `<input type="text" id="search%d" />`+"\n", i)
	fmt.Fprintf(&g.bot, `
<script>
document.getElementById("search%d").value = "Search our catalog";
</script>
`, i)
}

// formGuarded writes the hint only when the field is still empty: the
// §5.3 filter suppresses it via the read-before-write heuristic.
func (g *gen) formGuarded(i int) {
	fmt.Fprintf(&g.top, `<input type="text" id="hint%d" />`+"\n", i)
	fmt.Fprintf(&g.bot, `
<script>
var hf%d = document.getElementById("hint%d");
if (hf%d.value == "") { hf%d.value = "City of Departure"; }
</script>
`, i, i, i, i)
}

// plainVars plants n raw-only variable races: analytics counters written by
// independent timer callbacks (delayed-loading bookkeeping).
func (g *gen) plainVars(n int) {
	var b strings.Builder
	b.WriteString("<script>\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "setTimeout(function() { stat%d = 1; }, %d);\n", i, 4+(i%23))
		fmt.Fprintf(&b, "setTimeout(function() { stat%d = (typeof stat%d == 'undefined') ? 1 : stat%d + 1; }, %d);\n",
			i, i, i, 4+((i+7)%23))
	}
	b.WriteString("</script>\n")
	g.top.WriteString(b.String())
}

// gomez plants the §6.3 Gomez monitor: a DOMContentLoaded-started interval
// attaching onload handlers to every image — racing with each image's load
// dispatch (single-shot events: these survive the §5.3 filter and are
// harmful: a fast image's handler never runs).
func (g *gen) gomez(nimgs int) {
	g.top.WriteString(`
<script>
document.addEventListener("DOMContentLoaded", function() {
  var gmTicks = 0;
  var gm = setInterval(function() {
    gmTicks = gmTicks + 1;
    var imgs = document.getElementsByTagName("img");
    for (var j = 0; j < imgs.length; j++) {
      imgs[j].onload = function() { gmSeen = (typeof gmSeen == 'undefined') ? 1 : gmSeen + 1; };
    }
    if (gmTicks > 12) { clearInterval(gm); }
  }, 10);
});
</script>
`)
	for i := 0; i < nimgs; i++ {
		fmt.Fprintf(&g.bot, `<img src="hero%d.jpg" alt="hero" />`+"\n", i)
	}
}

// delayedMenus plants benign dispatch races: a script-inserted (delayed)
// script adds hover handlers to menu nodes that are interactive earlier.
func (g *gen) delayedMenus(n int) {
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.top, `<div id="menu%d">Menu %d</div>`+"\n", i, i)
	}
	var js strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&js,
			"var m%d = document.getElementById(\"menu%d\");\nif (m%d != null) { m%d.onmouseover = function() { menuHover%d = 1; }; }\n",
			i, i, i, i, i)
	}
	g.site.Add("menus.js", js.String())
	g.bot.WriteString(`
<script>
var ms = document.createElement("script");
ms.src = "menus.js";
document.body.appendChild(ms);
</script>
`)
}

// timerClear plants a carousel-rotator idiom: a rotation timer that an
// asynchronously arriving "user preference" (XHR completion) cancels. The
// cancel races with the rotation firing — visible only to the §7
// timer-clear extension.
func (g *gen) timerClear(i int) {
	url := fmt.Sprintf("prefs%d.json", i)
	g.site.Add(url, `{"rotate": false}`)
	fmt.Fprintf(&g.top, `
<script>
var rot%d = setTimeout(function() { rotated%d = 1; }, %d);
var px%d = new XMLHttpRequest();
px%d.onreadystatechange = function() {
  if (px%d.readyState == 4) { clearTimeout(rot%d); }
};
px%d.open("GET", %q);
px%d.send();
</script>
`, i, i, 20+i*7, i, i, i, i, i, url, i)
}

// multiHandler plants two independently registered listeners for one event
// on one target, both appending to a shared log — unordered per the
// paper's Appendix A reading, ordered under OrderSameTargetHandlers.
func (g *gen) multiHandler(i int) {
	fmt.Fprintf(&g.top, `
<button id="mh%d">Buy</button>
<script>
var mhEl%d = document.getElementById("mh%d");
mhEl%d.addEventListener("click", function() { mhLog%d = (typeof mhLog%d == 'undefined' ? "" : mhLog%d) + "a"; });
mhEl%d.addEventListener("click", function() { mhLog%d = (typeof mhLog%d == 'undefined' ? "" : mhLog%d) + "b"; });
</script>
`, i, i, i, i, i, i, i, i, i, i, i)
}

// ajaxRace plants the Zheng et al. pattern (§8): two AJAX responses whose
// handlers both write the same widget state — last response wins, and
// which is last depends on the network.
func (g *gen) ajaxRace(i int) {
	g.site.Add(fmt.Sprintf("price%d.json", i), `{"price": "42"}`)
	g.site.Add(fmt.Sprintf("promo%d.json", i), `{"price": "35"}`)
	fmt.Fprintf(&g.top, `
<div id="price%d">loading…</div>
<script>
function fetchInto%d(url) {
  var x = new XMLHttpRequest();
  x.onreadystatechange = function() {
    if (x.readyState == 4) { shownPrice%d = x.responseText; }
  };
  x.open("GET", url);
  x.send();
}
fetchInto%d("price%d.json");
fetchInto%d("promo%d.json");
</script>
`, i, i, i, i, i, i, i)
}

// flakyReader plants the §5.1-limitation pattern in seed-dependent form:
// timers A and B (independent jittered delays) both read frSlot before a
// callback C, installed by B, writes it. A ∥ C races under every schedule,
// but the pairwise detector only sees it when A's read is the *last* read
// before C — when B reads after A, B's causally-protected read overwrites
// the last-read state and the race goes unreported for that seed.
func (g *gen) flakyReader(i int) {
	fmt.Fprintf(&g.top, `
<script>
setTimeout(function() { frProbeA%d = (typeof frSlot%d == 'undefined') ? 0 : 1; }, Math.random() * 16);
setTimeout(function() {
  frProbeB%d = (typeof frSlot%d == 'undefined') ? 0 : 1;
  setTimeout(function() { frSlot%d = 1; }, 20);
}, Math.random() * 16);
</script>
`, i, i, i, i, i)
}

// doubleDispatch plants a race no observed schedule reports: two async
// scripts each call click() on the same button, whose handler does a
// check-then-write on a shared counter. HB rule 9 serializes the two
// dispatches in whatever order they happened to fire, so the handler runs
// are always ordered in the observed execution — yet nothing causal orders
// them, and the counter update can be lost. Only the predictive order,
// which drops the rule 9 edge, exposes the pair.
func (g *gen) doubleDispatch(i int) {
	g.site.Add(fmt.Sprintf("dda%d.js", i),
		fmt.Sprintf("var ddA%d = document.getElementById(\"dd%d\");\nif (ddA%d != null) { ddA%d.click(); }\n", i, i, i, i))
	g.site.Add(fmt.Sprintf("ddb%d.js", i),
		fmt.Sprintf("var ddB%d = document.getElementById(\"dd%d\");\nif (ddB%d != null) { ddB%d.click(); }\n", i, i, i, i))
	fmt.Fprintf(&g.top, `
<button id="dd%d" onclick="ddCount%d = (typeof ddCount%d == 'undefined' ? 0 : ddCount%d) + 1;">Buy</button>
<script src="dda%d.js" async="true"></script>
<script src="ddb%d.js" async="true"></script>
`, i, i, i, i, i, i)
}

// fragileImage plants a fault-gated race: the image's onerror fallback
// writer shares a slot with a timer. Fault-free the image always arrives
// (binary resources never 404), the handler never runs, and the slot has
// a single writer — no race under any schedule. A plan that drops or
// 404s the image runs the handler concurrently with the timer.
func (g *gen) fragileImage(i int) {
	fmt.Fprintf(&g.top, `
<img src="fragile%d.png" alt="cdn asset" onerror="imgFallback%d = (typeof imgFallback%d == 'undefined') ? 1 : imgFallback%d + 1;" />
<script>
setTimeout(function() { imgFallback%d = 0; }, %d);
</script>
`, i, i, i, i, i, 8+i*5)
}

// cdnScript plants the lost-CDN idiom: an async third-party script whose
// onerror handler records the failure into a slot a timer also writes.
// The script body never touches the slot, so the race needs the fetch to
// fail.
func (g *gen) cdnScript(i int) {
	g.site.Add(fmt.Sprintf("cdn%d.js", i),
		fmt.Sprintf("function cdnLib%d() { cdnUsed%d = 1; }", i, i))
	fmt.Fprintf(&g.top, `
<div id="cdnw%d" onclick="if (typeof cdnLib%d == 'function') { cdnLib%d(); }">widget</div>
<script src="cdn%d.js" async="true" onerror="cdnFail%d = (typeof cdnFail%d == 'undefined') ? 1 : cdnFail%d + 1;"></script>
<script>
setTimeout(function() { cdnFail%d = 0; }, %d);
</script>
`, i, i, i, i, i, i, i, i, 12+i*5)
}

// xhrRetry plants an XHR retry loop: the request carries a timeout, and
// its onerror/ontimeout handlers re-issue it (up to 3 attempts) while a
// timer installs a cached value into the same result slot. Fault-free the
// single response races only the cached-value timer; under stall or drop
// plans the retries multiply the orderings and the retry bookkeeping.
func (g *gen) xhrRetry(i int) {
	url := fmt.Sprintf("feed%d.json", i)
	g.site.Add(url, `{"items": 3}`)
	fmt.Fprintf(&g.top, `
<script>
var feedTries%d = 0;
function pollFeed%d() {
  feedTries%d = feedTries%d + 1;
  var x = new XMLHttpRequest();
  x.timeout = 60;
  x.onload = function() { feedData%d = x.responseText; };
  x.onerror = function() { if (feedTries%d < 3) { setTimeout(pollFeed%d, 5); } };
  x.ontimeout = function() { if (feedTries%d < 3) { setTimeout(pollFeed%d, 5); } };
  x.open("GET", %q);
  x.send();
}
pollFeed%d();
setTimeout(function() { feedData%d = "cached"; }, %d);
</script>
`, i, i, i, i, i, i, i, i, i, url, i, i, 25+i*7)
}

// iframePair plants Fig. 1: two frames racing on one logical global.
func (g *gen) iframePair(i int) {
	fmt.Fprintf(&g.top, `
<script>frameShared%d = 0;</script>
<iframe src="framea%d.html"></iframe>
<iframe src="frameb%d.html"></iframe>
`, i, i, i)
	g.site.Add(fmt.Sprintf("framea%d.html", i),
		fmt.Sprintf(`<script>frameShared%d = 1;</script>`, i))
	g.site.Add(fmt.Sprintf("frameb%d.html", i),
		fmt.Sprintf(`<script>frameObserved%d = frameShared%d;</script>`, i, i))
}
