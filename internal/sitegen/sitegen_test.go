package sitegen

import (
	"fmt"
	"strings"
	"testing"

	"webracer/internal/dom"
	"webracer/internal/html"
	"webracer/internal/js"
)

func TestSpecDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := SpecFor(7, i)
		b := SpecFor(7, i)
		if a != b {
			t.Fatalf("SpecFor not deterministic at index %d: %+v vs %+v", i, a, b)
		}
	}
	if SpecFor(7, 3) == SpecFor(8, 3) {
		t.Error("different seeds produced identical specs")
	}
}

func TestCorpusShape(t *testing.T) {
	const n = 100
	var ford, gomez, heavyVar int
	totals := struct{ html, fn, form, plain, disp int }{}
	for i := 0; i < n; i++ {
		s := SpecFor(1, i)
		if s.FordPolls > 0 {
			ford++
		}
		if s.GomezImages > 0 {
			gomez++
		}
		if s.PlainVars > 150 {
			heavyVar++
		}
		totals.html += s.HTMLHarmful + s.HTMLBenign + s.FordPolls
		totals.fn += s.FuncHarmful + s.FuncBenign
		totals.form += s.FormHarmful + s.FormGuarded
		totals.plain += s.PlainVars
		totals.disp += s.GomezImages + s.DelayedMenus
	}
	if ford != 1 {
		t.Errorf("Ford outliers = %d, want exactly 1 per 100 sites", ford)
	}
	if gomez < 2 || gomez > 8 {
		t.Errorf("Gomez sites = %d, want a handful", gomez)
	}
	if heavyVar < 1 {
		t.Error("no heavy-variable outlier site")
	}
	// Order-of-magnitude calibration (Table 1 raw totals over 100 sites).
	if totals.plain < 800 || totals.plain > 4000 {
		t.Errorf("plain variable race budget = %d, want O(2000)", totals.plain)
	}
	if totals.disp < 800 || totals.disp > 4000 {
		t.Errorf("dispatch race budget = %d, want O(2000)", totals.disp)
	}
	if totals.html < 100 || totals.html > 600 {
		t.Errorf("HTML race budget = %d, want O(250)", totals.html)
	}
}

func TestGenerateResources(t *testing.T) {
	spec := Spec{
		Index: 0, Name: "T", Paragraphs: 2, DecorImgs: 1,
		HTMLHarmful: 1, FordPolls: 3, FuncHarmful: 1, FuncBenign: 1,
		FormHarmful: 1, PlainVars: 2, GomezImages: 2, DelayedMenus: 2,
		IframePairs: 1,
	}
	site := Generate(spec)
	if _, ok := site.Resources["index.html"]; !ok {
		t.Fatal("no index.html")
	}
	for _, must := range []string{"nav0.js", "helper0.js", "menus.js", "framea0.html", "frameb0.html"} {
		if _, ok := site.Resources[must]; !ok {
			t.Errorf("missing resource %s", must)
		}
	}
}

// TestGeneratedHTMLParses: every generated page tokenizes into a tree with
// the planted elements reachable.
func TestGeneratedHTMLParses(t *testing.T) {
	for i := 0; i < 25; i++ {
		spec := SpecFor(3, i)
		site := Generate(spec)
		doc := dom.NewDocument("index.html", &dom.Serials{})
		p := html.NewParser(doc, site.Resources["index.html"])
		for {
			if ev := p.Next(); ev.Kind == html.EventDone {
				break
			}
		}
		if spec.HTMLHarmful > 0 && doc.GetElementByID("panel0") == nil {
			t.Errorf("site %d: panel0 missing", i)
		}
		if spec.FormHarmful > 0 && doc.GetElementByID("search0") == nil {
			t.Errorf("site %d: search0 missing", i)
		}
		if spec.FordPolls > 0 && doc.GetElementByID("fordlast") == nil {
			t.Errorf("site %d: fordlast missing", i)
		}
	}
}

// TestGeneratedScriptsParse: every generated script is valid for our JS
// parser (inline bodies and external files).
func TestGeneratedScriptsParse(t *testing.T) {
	for i := 0; i < 25; i++ {
		site := Generate(SpecFor(3, i))
		for url, body := range site.Resources {
			if strings.HasSuffix(url, ".js") {
				if _, err := js.Parse(body); err != nil {
					t.Errorf("site %d resource %s: %v", i, url, err)
				}
			}
		}
		// Inline scripts.
		page := site.Resources["index.html"]
		for _, chunk := range strings.Split(page, "<script>")[1:] {
			end := strings.Index(chunk, "</script>")
			if end < 0 {
				continue
			}
			if _, err := js.Parse(chunk[:end]); err != nil {
				t.Errorf("site %d inline script: %v\n%s", i, err, chunk[:end])
			}
		}
	}
}

func TestGenerateCorpus(t *testing.T) {
	sites := GenerateCorpus(1, 10)
	if len(sites) != 10 {
		t.Fatalf("corpus size %d", len(sites))
	}
	names := map[string]bool{}
	for _, s := range sites {
		if names[s.Name] {
			t.Errorf("duplicate site name %q", s.Name)
		}
		names[s.Name] = true
	}
}

// TestFaultSpecResources: the fault-corpus pages carry the resources the
// fault-sensitive patterns reference, and SpecFor never draws those
// patterns (the main corpus stays fault-free-clean).
func TestFaultSpecResources(t *testing.T) {
	for i := 0; i < 8; i++ {
		spec := FaultSpec(i)
		if spec != FaultSpec(i) {
			t.Fatalf("FaultSpec(%d) not deterministic", i)
		}
		site := Generate(spec)
		index := site.Resources["index.html"]
		for j := 0; j < spec.FragileImages; j++ {
			if !strings.Contains(index, fmt.Sprintf("fragile%d.png", j)) {
				t.Errorf("site %d: fragile%d.png not referenced", i, j)
			}
		}
		for j := 0; j < spec.CDNScripts; j++ {
			if _, ok := site.Resources[fmt.Sprintf("cdn%d.js", j)]; !ok {
				t.Errorf("site %d: cdn%d.js missing", i, j)
			}
		}
		for j := 0; j < spec.XHRRetries; j++ {
			if _, ok := site.Resources[fmt.Sprintf("feed%d.json", j)]; !ok {
				t.Errorf("site %d: feed%d.json missing", i, j)
			}
		}
	}
	for i := 0; i < 50; i++ {
		s := SpecFor(1, i)
		if s.FragileImages != 0 || s.CDNScripts != 0 || s.XHRRetries != 0 {
			t.Fatalf("SpecFor drew a fault-sensitive pattern at index %d: %+v", i, s)
		}
	}
}
