package js

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// installBuiltins defines the language-level globals every page gets.
// Browser-level globals (window, document, setTimeout, …) are installed by
// the browser package.
func (it *Interp) installBuiltins() {
	it.DefineGlobal("NaN", Number(math.NaN()))
	it.DefineGlobal("Infinity", Number(math.Inf(1)))
	it.DefineGlobal("Math", ObjectVal(it.mathObject()))
	it.DefineGlobal("JSON", ObjectVal(it.jsonObject()))
	it.DefineGlobal("Date", it.dateConstructor())

	it.DefineGlobal("parseInt", it.NativeFunc("parseInt", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].ToString())
		base := 10
		if len(args) > 1 {
			if b := int(args[1].ToNumber()); b >= 2 && b <= 36 {
				base = b
			}
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else {
			s = strings.TrimPrefix(s, "+")
		}
		if base == 16 || base == 10 {
			if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
				s = s[2:]
				base = 16
			}
		}
		// Longest valid prefix.
		end := 0
		for end < len(s) {
			d := digitVal(s[end])
			if d < 0 || d >= base {
				break
			}
			end++
		}
		if end == 0 {
			return Number(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[:end], base, 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		f := float64(n)
		if neg {
			f = -f
		}
		return Number(f), nil
	}))

	it.DefineGlobal("parseFloat", it.NativeFunc("parseFloat", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].ToString())
		end := len(s)
		for end > 0 {
			if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
				break
			}
			end--
		}
		if end == 0 {
			return Number(math.NaN()), nil
		}
		f, _ := strconv.ParseFloat(s[:end], 64)
		return Number(f), nil
	}))

	it.DefineGlobal("isNaN", it.NativeFunc("isNaN", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return True, nil
		}
		return Boolean(math.IsNaN(args[0].ToNumber())), nil
	}))

	strCtor := it.NativeFunc("String", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str(""), nil
		}
		return Str(args[0].ToString()), nil
	})
	strCtor.Obj.SetProp("fromCharCode", it.NativeFunc("fromCharCode", func(_ *Interp, _ Value, args []Value) (Value, error) {
		b := make([]rune, 0, len(args))
		for _, a := range args {
			b = append(b, rune(int(a.ToNumber())))
		}
		return Str(string(b)), nil
	}))
	it.DefineGlobal("String", strCtor)

	it.DefineGlobal("encodeURIComponent", it.NativeFunc("encodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str("undefined"), nil
		}
		return Str(uriEncode(args[0].ToString())), nil
	}))
	it.DefineGlobal("decodeURIComponent", it.NativeFunc("decodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str("undefined"), nil
		}
		s, err := uriDecode(args[0].ToString())
		if err != nil {
			return Undefined, &Error{Kind: "URIError", Msg: "malformed URI sequence"}
		}
		return Str(s), nil
	}))

	it.DefineGlobal("Number", it.NativeFunc("Number", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(0), nil
		}
		return Number(args[0].ToNumber()), nil
	}))

	it.DefineGlobal("Boolean", it.NativeFunc("Boolean", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		return Boolean(args[0].Truthy()), nil
	}))

	arrayCtor := it.NativeFunc("Array", func(it *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].Kind == KindNumber {
			n := int(args[0].Num)
			arr := it.NewArray()
			for i := 0; i < n; i++ {
				arr.Elems = append(arr.Elems, Undefined)
			}
			return ObjectVal(arr), nil
		}
		return ObjectVal(it.NewArray(args...)), nil
	})
	arrayCtor.Obj.SetProp("isArray", it.NativeFunc("isArray", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Boolean(len(args) > 0 && args[0].Kind == KindObject && args[0].Obj.IsArray), nil
	}))
	it.DefineGlobal("Array", arrayCtor)

	objectCtor := it.NativeFunc("Object", func(it *Interp, _ Value, args []Value) (Value, error) {
		return ObjectVal(it.NewObject("Object")), nil
	})
	objectCtor.Obj.SetProp("keys", it.NativeFunc("keys", func(it *Interp, _ Value, args []Value) (Value, error) {
		out := it.NewArray()
		if len(args) > 0 && args[0].Kind == KindObject {
			o := args[0].Obj
			if o.IsArray {
				for i := range o.Elems {
					out.Elems = append(out.Elems, Str(NumToString(float64(i))))
				}
			} else {
				for _, k := range o.Keys() {
					out.Elems = append(out.Elems, Str(k))
				}
			}
		}
		return ObjectVal(out), nil
	}))
	it.DefineGlobal("Object", objectCtor)

	it.DefineGlobal("Error", it.NativeFunc("Error", func(it *Interp, this Value, args []Value) (Value, error) {
		o := this.Obj
		if this.Kind != KindObject || o == nil || o.Fn != nil {
			o = it.NewObject("Error")
		}
		msg := ""
		if len(args) > 0 {
			msg = args[0].ToString()
		}
		o.SetProp("name", Str("Error"))
		o.SetProp("message", Str(msg))
		o.SetProp("__str__", Str("Error: "+msg))
		return ObjectVal(o), nil
	}))
}

// uriEncode implements encodeURIComponent's escaping (unreserved marks
// kept, everything else percent-encoded byte-wise).
func uriEncode(s string) string {
	const keep = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.!~*'()"
	const hex = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(keep, c) >= 0 {
			b.WriteByte(c)
		} else {
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
	}
	return b.String()
}

func uriDecode(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) || !isHex(s[i+1]) || !isHex(s[i+2]) {
			return "", fmt.Errorf("bad escape at %d", i)
		}
		b.WriteByte(byte(hexVal(s[i+1])<<4 | hexVal(s[i+2])))
		i += 2
	}
	return b.String(), nil
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	default:
		return -1
	}
}

func (it *Interp) mathObject() *Object {
	m := it.NewObject("Math")
	m.SetProp("PI", Number(math.Pi))
	m.SetProp("E", Number(math.E))
	one := func(name string, f func(float64) float64) {
		m.SetProp(name, it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(math.NaN()), nil
			}
			return Number(f(args[0].ToNumber())), nil
		}))
	}
	one("floor", math.Floor)
	one("ceil", math.Ceil)
	one("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	one("abs", math.Abs)
	one("sqrt", math.Sqrt)
	one("sin", math.Sin)
	one("cos", math.Cos)
	one("log", math.Log)
	one("exp", math.Exp)
	m.SetProp("pow", it.NativeFunc("pow", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Number(math.NaN()), nil
		}
		return Number(math.Pow(args[0].ToNumber(), args[1].ToNumber())), nil
	}))
	m.SetProp("max", it.NativeFunc("max", func(_ *Interp, _ Value, args []Value) (Value, error) {
		best := math.Inf(-1)
		for _, a := range args {
			best = math.Max(best, a.ToNumber())
		}
		return Number(best), nil
	}))
	m.SetProp("min", it.NativeFunc("min", func(_ *Interp, _ Value, args []Value) (Value, error) {
		best := math.Inf(1)
		for _, a := range args {
			best = math.Min(best, a.ToNumber())
		}
		return Number(best), nil
	}))
	m.SetProp("random", it.NativeFunc("random", func(it *Interp, _ Value, _ []Value) (Value, error) {
		return Number(it.Rand()), nil
	}))
	return m
}

// jsonObject provides JSON.stringify/parse for the subset of values the
// interpreter supports (no cycles detected beyond a depth cap).
func (it *Interp) jsonObject() *Object {
	j := it.NewObject("JSON")
	j.SetProp("stringify", it.NativeFunc("stringify", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, nil
		}
		var b strings.Builder
		if err := jsonEncode(&b, args[0], 0); err != nil {
			return Undefined, err
		}
		return Str(b.String()), nil
	}))
	j.SetProp("parse", it.NativeFunc("parse", func(it *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, typeError(0, "JSON.parse requires an argument")
		}
		p := &jsonParser{src: args[0].ToString(), it: it}
		v, err := p.value()
		if err != nil {
			return Undefined, err
		}
		return v, nil
	}))
	return j
}

func jsonEncode(b *strings.Builder, v Value, depth int) error {
	if depth > 64 {
		return typeError(0, "JSON.stringify: structure too deep (cycle?)")
	}
	switch v.Kind {
	case KindUndefined, KindNull:
		b.WriteString("null")
	case KindBool, KindNumber:
		b.WriteString(v.ToString())
	case KindString:
		b.WriteString(strconv.Quote(v.Str))
	case KindObject:
		o := v.Obj
		if o.Fn != nil {
			b.WriteString("null")
			return nil
		}
		if o.IsArray {
			b.WriteByte('[')
			for i, e := range o.Elems {
				if i > 0 {
					b.WriteByte(',')
				}
				if err := jsonEncode(b, e, depth+1); err != nil {
					return err
				}
			}
			b.WriteByte(']')
			return nil
		}
		b.WriteByte('{')
		first := true
		for _, k := range o.Keys() {
			pv, _ := o.GetProp(k)
			if pv.Kind == KindUndefined || pv.IsCallable() {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(strconv.Quote(k))
			b.WriteByte(':')
			if err := jsonEncode(b, pv, depth+1); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	}
	return nil
}

type jsonParser struct {
	src string
	pos int
	it  *Interp
}

func (p *jsonParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) value() (Value, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Undefined, typeError(0, "JSON.parse: unexpected end")
	}
	switch c := p.src[p.pos]; {
	case c == '{':
		p.pos++
		o := p.it.NewObject("Object")
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == '}' {
			p.pos++
			return ObjectVal(o), nil
		}
		for {
			p.ws()
			if p.pos >= len(p.src) || p.src[p.pos] != '"' {
				return Undefined, typeError(0, "JSON.parse: expected string key")
			}
			k, err := p.str()
			if err != nil {
				return Undefined, err
			}
			p.ws()
			if p.pos >= len(p.src) || p.src[p.pos] != ':' {
				return Undefined, typeError(0, "JSON.parse: expected ':'")
			}
			p.pos++
			v, err := p.value()
			if err != nil {
				return Undefined, err
			}
			o.SetProp(k, v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == '}' {
				p.pos++
				return ObjectVal(o), nil
			}
			return Undefined, typeError(0, "JSON.parse: expected ',' or '}'")
		}
	case c == '[':
		p.pos++
		arr := p.it.NewArray()
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return ObjectVal(arr), nil
		}
		for {
			v, err := p.value()
			if err != nil {
				return Undefined, err
			}
			arr.Elems = append(arr.Elems, v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == ']' {
				p.pos++
				return ObjectVal(arr), nil
			}
			return Undefined, typeError(0, "JSON.parse: expected ',' or ']'")
		}
	case c == '"':
		s, err := p.str()
		return Str(s), err
	case strings.HasPrefix(p.src[p.pos:], "true"):
		p.pos += 4
		return True, nil
	case strings.HasPrefix(p.src[p.pos:], "false"):
		p.pos += 5
		return False, nil
	case strings.HasPrefix(p.src[p.pos:], "null"):
		p.pos += 4
		return Null, nil
	default:
		start := p.pos
		for p.pos < len(p.src) && strings.ContainsRune("-+.eE0123456789", rune(p.src[p.pos])) {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return Undefined, typeError(0, "JSON.parse: bad number")
		}
		return Number(f), nil
	}
}

func (p *jsonParser) str() (string, error) {
	s, n, err := lexString(p.src[p.pos:], 1)
	if err != nil {
		return "", typeError(0, "JSON.parse: bad string")
	}
	p.pos += n
	return s, nil
}

// dateConstructor provides Date.now and a minimal new Date() whose
// getTime() reads the browser's virtual clock.
func (it *Interp) dateConstructor() Value {
	d := it.NativeFunc("Date", func(it *Interp, this Value, args []Value) (Value, error) {
		o := this.Obj
		if this.Kind != KindObject || o == nil || o.Fn != nil {
			o = it.NewObject("Date")
		}
		t := it.Now()
		if len(args) > 0 {
			t = args[0].ToNumber()
		}
		o.SetProp("__time__", Number(t))
		o.SetProp("getTime", it.NativeFunc("getTime", func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Number(t), nil
		}))
		o.SetProp("__str__", Str("[Date "+NumToString(t)+"]"))
		return ObjectVal(o), nil
	})
	d.Obj.SetProp("now", it.NativeFunc("now", func(it *Interp, _ Value, _ []Value) (Value, error) {
		return Number(it.Now()), nil
	}))
	return d
}

// stringMember implements property access on string primitives.
func (it *Interp) stringMember(s, name string, line int) (Value, error) {
	switch name {
	case "length":
		return Number(float64(len(s))), nil
	case "charAt":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].ToNumber())
			}
			if i < 0 || i >= len(s) {
				return Str(""), nil
			}
			return Str(s[i : i+1]), nil
		}), nil
	case "charCodeAt":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].ToNumber())
			}
			if i < 0 || i >= len(s) {
				return Number(math.NaN()), nil
			}
			return Number(float64(s[i])), nil
		}), nil
	case "indexOf":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			return Number(float64(strings.Index(s, args[0].ToString()))), nil
		}), nil
	case "lastIndexOf":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			return Number(float64(strings.LastIndex(s, args[0].ToString()))), nil
		}), nil
	case "substring", "slice":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := sliceBounds(len(s), args)
			return Str(s[start:end]), nil
		}), nil
	case "substr":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start := 0
			if len(args) > 0 {
				start = clampIndex(int(args[0].ToNumber()), len(s))
			}
			end := len(s)
			if len(args) > 1 {
				end = start + int(args[1].ToNumber())
				if end > len(s) {
					end = len(s)
				}
				if end < start {
					end = start
				}
			}
			return Str(s[start:end]), nil
		}), nil
	case "toLowerCase":
		return it.NativeFunc(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Str(strings.ToLower(s)), nil
		}), nil
	case "toUpperCase":
		return it.NativeFunc(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Str(strings.ToUpper(s)), nil
		}), nil
	case "trim":
		return it.NativeFunc(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Str(strings.TrimSpace(s)), nil
		}), nil
	case "split":
		return it.NativeFunc(name, func(it *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return ObjectVal(it.NewArray(Str(s))), nil
			}
			parts := strings.Split(s, args[0].ToString())
			vals := make([]Value, len(parts))
			for i, p := range parts {
				vals[i] = Str(p)
			}
			return ObjectVal(it.NewArray(vals...)), nil
		}), nil
	case "replace":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return Str(s), nil
			}
			return Str(strings.Replace(s, args[0].ToString(), args[1].ToString(), 1)), nil
		}), nil
	case "concat":
		return it.NativeFunc(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			out := s
			for _, a := range args {
				out += a.ToString()
			}
			return Str(out), nil
		}), nil
	case "toString":
		return it.NativeFunc(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Str(s), nil
		}), nil
	default:
		// Numeric index: s[0].
		if i, ok := arrayIndex(name); ok {
			if i < len(s) {
				return Str(s[i : i+1]), nil
			}
			return Undefined, nil
		}
		return Undefined, nil
	}
}
