package js

import "fmt"

// Parse parses a script (the contents of a <script> element, an event
// handler attribute, or a timer string) and resolves variable bindings,
// running the capture analysis that decides which locals are potentially
// shared (§4.1).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{base: base{Line: 1}}
	for !p.at(TokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	resolve(prog)
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

// next consumes and returns the current token; it is sticky at EOF so that
// error paths deep in the grammar can keep peeking safely.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}
func (p *parser) line() int         { return p.peek().Line }
func (p *parser) at(k TokKind) bool { return p.peek().Kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) atKeyword(s string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(s string) bool {
	if p.atKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

// optionalLabel consumes a label identifier after break/continue when it
// sits on the same line (ASI forbids a line break before the label).
func (p *parser) optionalLabel() string {
	t := p.peek()
	if t.Kind == TokIdent && !t.NewlineBefore {
		p.next()
		return t.Text
	}
	return ""
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

// expectSemi consumes a statement terminator with automatic semicolon
// insertion: an explicit ';', or a following '}' / EOF / line break.
func (p *parser) expectSemi() error {
	if p.eatPunct(";") {
		return nil
	}
	t := p.peek()
	if t.Kind == TokEOF || t.NewlineBefore || (t.Kind == TokPunct && t.Text == "}") {
		return nil
	}
	return p.errf("expected ';', found %s", t)
}

// ---- statements ----

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "var":
			s, err := p.varStatement()
			if err != nil {
				return nil, err
			}
			if err := p.expectSemi(); err != nil {
				return nil, err
			}
			return s, nil
		case "function":
			return p.funcDecl()
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "do":
			return p.doWhileStatement()
		case "for":
			return p.forStatement()
		case "return":
			return p.returnStatement()
		case "break":
			p.next()
			s := &BreakStmt{base: base{Line: t.Line}, Label: p.optionalLabel()}
			return s, p.expectSemi()
		case "continue":
			p.next()
			s := &ContinueStmt{base: base{Line: t.Line}, Label: p.optionalLabel()}
			return s, p.expectSemi()
		case "throw":
			return p.throwStatement()
		case "try":
			return p.tryStatement()
		case "switch":
			return p.switchStatement()
		}
	}
	if p.atPunct("{") {
		return p.block()
	}
	if p.atPunct(";") {
		p.next()
		return &EmptyStmt{base: base{Line: t.Line}}, nil
	}
	// Labeled statement: `name: stmt`.
	if t.Kind == TokIdent && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ":" {
		p.next() // label
		p.next() // :
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &LabeledStmt{base: base{Line: t.Line}, Label: t.Text, Stmt: inner}, nil
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectSemi(); err != nil {
		return nil, err
	}
	return &ExprStmt{base: base{Line: t.Line}, X: x}, nil
}

// varStatement parses `var a = 1, b, c = 2` (without the terminator); a
// multi-declarator list becomes a BlockStmt of VarDecls, which the
// interpreter flattens.
func (p *parser) varStatement() (Stmt, error) {
	line := p.line()
	p.next() // var
	var decls []Stmt
	for {
		if !p.at(TokIdent) {
			return nil, p.errf("expected variable name, found %s", p.peek())
		}
		name := p.next().Text
		d := &VarDecl{base: base{Line: line}, Name: name}
		if p.eatPunct("=") {
			init, err := p.assign()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decls = append(decls, d)
		if !p.eatPunct(",") {
			break
		}
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &BlockStmt{base: base{Line: line}, Body: decls}, nil
}

func (p *parser) funcDecl() (Stmt, error) {
	line := p.line()
	p.next() // function
	if !p.at(TokIdent) {
		return nil, p.errf("expected function name, found %s", p.peek())
	}
	name := p.next().Text
	fn, err := p.funcRest(name, line)
	if err != nil {
		return nil, err
	}
	return &FuncDeclStmt{base: base{Line: line}, Name: name, Fn: fn}, nil
}

// funcRest parses the parameter list and body after `function [name]`.
func (p *parser) funcRest(name string, line int) (*FuncLit, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atPunct(")") {
		if !p.at(TokIdent) {
			return nil, p.errf("expected parameter name, found %s", p.peek())
		}
		params = append(params, p.next().Text)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body := &Program{base: base{Line: p.line()}}
	for !p.atPunct("}") && !p.at(TokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body.Body = append(body.Body, s)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return &FuncLit{base: base{Line: line}, Name: name, Params: params, Body: body}, nil
}

func (p *parser) block() (*BlockStmt, error) {
	line := p.line()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{base: base{Line: line}}
	for !p.atPunct("}") && !p.at(TokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Body = append(b.Body, s)
	}
	return b, p.expectPunct("}")
}

func (p *parser) ifStatement() (Stmt, error) {
	line := p.line()
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{base: base{Line: line}, Cond: cond, Then: then}
	if p.eatKeyword("else") {
		s.Else, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) whileStatement() (Stmt, error) {
	line := p.line()
	p.next() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base: base{Line: line}, Cond: cond, Body: body}, nil
}

func (p *parser) doWhileStatement() (Stmt, error) {
	line := p.line()
	p.next() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.eatKeyword("while") {
		return nil, p.errf("expected 'while' after do body")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.eatPunct(";")
	return &WhileStmt{base: base{Line: line}, Cond: cond, Body: body, DoWhile: true}, nil
}

func (p *parser) forStatement() (Stmt, error) {
	line := p.line()
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// Distinguish for-in from the three-clause form.
	var init Stmt
	if p.atKeyword("var") {
		save := p.pos
		s, err := p.varStatement()
		if err != nil {
			return nil, err
		}
		if d, ok := s.(*VarDecl); ok && d.Init == nil && p.atKeyword("in") {
			p.next() // in
			return p.forInRest(line, d.Name)
		}
		_ = save
		init = s
	} else if !p.atPunct(";") {
		x, err := p.expressionNoIn()
		if err != nil {
			return nil, err
		}
		if id, ok := x.(*Ident); ok && p.atKeyword("in") {
			p.next()
			return p.forInRest(line, id.Name)
		}
		init = &ExprStmt{base: base{Line: line}, X: x}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var cond, post Expr
	var err error
	if !p.atPunct(";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ForStmt{base: base{Line: line}, Init: init, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) forInRest(line int, name string) (Stmt, error) {
	obj, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ForInStmt{base: base{Line: line}, Name: name, X: obj, Body: body}, nil
}

func (p *parser) returnStatement() (Stmt, error) {
	line := p.line()
	p.next() // return
	s := &ReturnStmt{base: base{Line: line}}
	t := p.peek()
	if t.Kind != TokEOF && !t.NewlineBefore && !p.atPunct(";") && !p.atPunct("}") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.X = x
	}
	return s, p.expectSemi()
}

func (p *parser) throwStatement() (Stmt, error) {
	line := p.line()
	p.next() // throw
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &ThrowStmt{base: base{Line: line}, X: x}, p.expectSemi()
}

func (p *parser) tryStatement() (Stmt, error) {
	line := p.line()
	p.next() // try
	try, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &TryStmt{base: base{Line: line}, Try: try}
	if p.eatKeyword("catch") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if !p.at(TokIdent) {
			return nil, p.errf("expected catch parameter, found %s", p.peek())
		}
		s.CatchVar = p.next().Text
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.Catch, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("finally") {
		s.Finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if s.Catch == nil && s.Finally == nil {
		return nil, p.errf("try without catch or finally")
	}
	return s, nil
}

func (p *parser) switchStatement() (Stmt, error) {
	line := p.line()
	p.next() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	s := &SwitchStmt{base: base{Line: line}, X: x}
	for !p.atPunct("}") && !p.at(TokEOF) {
		var c SwitchCase
		if p.eatKeyword("case") {
			c.Test, err = p.expression()
			if err != nil {
				return nil, err
			}
		} else if !p.eatKeyword("default") {
			return nil, p.errf("expected 'case' or 'default', found %s", p.peek())
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") && !p.at(TokEOF) {
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, st)
		}
		s.Cases = append(s.Cases, c)
	}
	return s, p.expectPunct("}")
}

// ---- expressions ----

func (p *parser) expression() (Expr, error) { return p.commaExpr(true) }

func (p *parser) expressionNoIn() (Expr, error) { return p.commaExpr(false) }

func (p *parser) commaExpr(allowIn bool) (Expr, error) {
	line := p.line()
	x, err := p.assignIn(allowIn)
	if err != nil {
		return nil, err
	}
	if !p.atPunct(",") {
		return x, nil
	}
	seq := &SeqExpr{base: base{Line: line}, Exprs: []Expr{x}}
	for p.eatPunct(",") {
		e, err := p.assignIn(allowIn)
		if err != nil {
			return nil, err
		}
		seq.Exprs = append(seq.Exprs, e)
	}
	return seq, nil
}

func (p *parser) assign() (Expr, error) { return p.assignIn(true) }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignIn(allowIn bool) (Expr, error) {
	line := p.line()
	x, err := p.conditional(allowIn)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokPunct && assignOps[t.Text] {
		switch x.(type) {
		case *Ident, *MemberExpr, *IndexExpr:
		default:
			return nil, p.errf("invalid assignment target")
		}
		p.next()
		rhs, err := p.assignIn(allowIn)
		if err != nil {
			return nil, err
		}
		return &AssignExpr{base: base{Line: line}, Op: t.Text, Target: x, Value: rhs}, nil
	}
	return x, nil
}

func (p *parser) conditional(allowIn bool) (Expr, error) {
	line := p.line()
	cond, err := p.binary(0, allowIn)
	if err != nil {
		return nil, err
	}
	if !p.eatPunct("?") {
		return cond, nil
	}
	then, err := p.assignIn(allowIn)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.assignIn(allowIn)
	if err != nil {
		return nil, err
	}
	return &CondExpr{base: base{Line: line}, Cond: cond, Then: then, Else: els}, nil
}

// binOps maps operator to precedence level (higher binds tighter).
var binOps = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7, "instanceof": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int, allowIn bool) (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var opText string
		if t.Kind == TokPunct {
			opText = t.Text
		} else if t.Kind == TokKeyword && (t.Text == "in" || t.Text == "instanceof") {
			if t.Text == "in" && !allowIn {
				return x, nil
			}
			opText = t.Text
		} else {
			return x, nil
		}
		prec, ok := binOps[opText]
		if !ok || prec <= minPrec {
			return x, nil
		}
		p.next()
		rhs, err := p.binary(prec, allowIn)
		if err != nil {
			return nil, err
		}
		if opText == "&&" || opText == "||" {
			x = &LogicalExpr{base: base{Line: t.Line}, Op: opText, L: x, R: rhs}
		} else {
			x = &BinaryExpr{base: base{Line: t.Line}, Op: opText, L: x, R: rhs}
		}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "-", "+", "~":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base: base{Line: t.Line}, Op: t.Text, X: x}, nil
		case "++", "--":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UpdateExpr{base: base{Line: t.Line}, Op: t.Text, X: x, Prefix: true}, nil
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "typeof", "void", "delete":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base: base{Line: t.Line}, Op: t.Text, X: x}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.callMember()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") && !t.NewlineBefore {
		p.next()
		return &UpdateExpr{base: base{Line: t.Line}, Op: t.Text, X: x, Prefix: false}, nil
	}
	return x, nil
}

func (p *parser) callMember() (Expr, error) {
	var x Expr
	var err error
	if p.atKeyword("new") {
		line := p.line()
		p.next()
		callee, err := p.memberOnly()
		if err != nil {
			return nil, err
		}
		call := &CallExpr{base: base{Line: line}, Callee: callee, IsNew: true}
		if p.atPunct("(") {
			call.Args, err = p.arguments()
			if err != nil {
				return nil, err
			}
		}
		x = call
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.atPunct("."):
			p.next()
			t := p.next()
			if t.Kind != TokIdent && t.Kind != TokKeyword {
				return nil, p.errf("expected property name, found %s", t)
			}
			x = &MemberExpr{base: base{Line: t.Line}, X: x, Name: t.Text}
		case p.atPunct("["):
			line := p.line()
			p.next()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{base: base{Line: line}, X: x, Idx: idx}
		case p.atPunct("("):
			line := p.line()
			args, err := p.arguments()
			if err != nil {
				return nil, err
			}
			x = &CallExpr{base: base{Line: line}, Callee: x, Args: args}
		default:
			return x, nil
		}
	}
}

// memberOnly parses the callee of `new`: a primary with member accesses but
// no call arguments (those belong to the new expression).
func (p *parser) memberOnly() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("."):
			p.next()
			t := p.next()
			if t.Kind != TokIdent && t.Kind != TokKeyword {
				return nil, p.errf("expected property name, found %s", t)
			}
			x = &MemberExpr{base: base{Line: t.Line}, X: x, Name: t.Text}
		case p.atPunct("["):
			line := p.line()
			p.next()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{base: base{Line: line}, X: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) arguments() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.atPunct(")") {
		a, err := p.assign()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	return args, p.expectPunct(")")
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumLit{base: base{Line: t.Line}, Value: t.Num}, nil
	case TokString:
		p.next()
		return &StrLit{base: base{Line: t.Line}, Value: t.Text}, nil
	case TokIdent:
		p.next()
		return &Ident{base: base{Line: t.Line}, Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "true", "false":
			p.next()
			return &BoolLit{base: base{Line: t.Line}, Value: t.Text == "true"}, nil
		case "null":
			p.next()
			return &NullLit{base: base{Line: t.Line}}, nil
		case "undefined":
			p.next()
			return &UndefinedLit{base: base{Line: t.Line}}, nil
		case "this":
			p.next()
			return &ThisLit{base: base{Line: t.Line}}, nil
		case "function":
			p.next()
			name := ""
			if p.at(TokIdent) {
				name = p.next().Text
			}
			return p.funcRest(name, t.Line)
		}
	case TokPunct:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			return x, p.expectPunct(")")
		case "[":
			p.next()
			arr := &ArrayLit{base: base{Line: t.Line}}
			for !p.atPunct("]") {
				e, err := p.assign()
				if err != nil {
					return nil, err
				}
				arr.Elems = append(arr.Elems, e)
				if !p.eatPunct(",") {
					break
				}
			}
			return arr, p.expectPunct("]")
		case "{":
			return p.objectLit()
		}
	}
	return nil, p.errf("unexpected token %s", t)
}

func (p *parser) objectLit() (Expr, error) {
	line := p.line()
	p.next() // {
	obj := &ObjectLit{base: base{Line: line}}
	for !p.atPunct("}") {
		t := p.next()
		var key string
		switch t.Kind {
		case TokIdent, TokKeyword, TokString:
			key = t.Text
		case TokNumber:
			key = trimNum(t.Num)
		default:
			return nil, p.errf("expected property key, found %s", t)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.assign()
		if err != nil {
			return nil, err
		}
		obj.Keys = append(obj.Keys, key)
		obj.Vals = append(obj.Vals, v)
		if !p.eatPunct(",") {
			break
		}
	}
	return obj, p.expectPunct("}")
}

func trimNum(f float64) string {
	return fmt.Sprintf("%g", f)
}
