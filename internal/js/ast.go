package js

// Node is the common interface of AST nodes.
type Node interface{ line() int }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

type base struct{ Line int }

func (b base) line() int { return b.Line }

// ---- statements ----

// Program is a parsed script: the body of a <script> element, an event
// handler attribute, or a function body.
type Program struct {
	base
	Body []Stmt
	// Hoisted lists the bindings declared by var statements and function
	// declarations anywhere in this program/function body (not nested
	// functions); computed by the resolver.
	Hoisted []*VarRef
	// FuncDecls lists the function declarations to hoist-write at entry,
	// in source order.
	FuncDecls []*FuncDeclStmt
}

// VarDecl is one `var name = init` declarator (a multi-declarator statement
// is split into several VarDecls).
type VarDecl struct {
	base
	Name string
	Ref  *VarRef
	Init Expr // nil for a bare declaration
}

// FuncDeclStmt is `function name(...) {...}`. Per §4.1 it is treated as a
// hoisted write of an anonymous function to a local named Name at scope
// entry; the statement itself is a no-op at its source position.
type FuncDeclStmt struct {
	base
	Name string
	Ref  *VarRef
	Fn   *FuncLit
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	base
	X Expr
}

// BlockStmt is { ... }.
type BlockStmt struct {
	base
	Body []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is while (Cond) Body; DoWhile marks do/while.
type WhileStmt struct {
	base
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is for(Init; Cond; Post) Body; any part may be nil.
type ForStmt struct {
	base
	Init Stmt // VarDecl list wrapped in BlockStmt, or ExprStmt, or nil
	Cond Expr
	Post Expr
	Body Stmt
}

// ForInStmt is for (var Name in X) Body.
type ForInStmt struct {
	base
	Name string
	Ref  *VarRef
	X    Expr
	Body Stmt
}

// ReturnStmt returns X (nil for bare return).
type ReturnStmt struct {
	base
	X Expr
}

// BreakStmt breaks the innermost loop, or the loop labeled Label.
type BreakStmt struct {
	base
	Label string
}

// ContinueStmt continues the innermost loop, or the loop labeled Label.
type ContinueStmt struct {
	base
	Label string
}

// LabeledStmt is `name: stmt` (loops only, the form real code uses).
type LabeledStmt struct {
	base
	Label string
	Stmt  Stmt
}

// ThrowStmt throws X.
type ThrowStmt struct {
	base
	X Expr
}

// TryStmt is try/catch/finally. Catch may be nil (try/finally) and Finally
// may be nil (try/catch).
type TryStmt struct {
	base
	Try      *BlockStmt
	CatchVar string
	CatchRef *VarRef
	Catch    *BlockStmt
	Finally  *BlockStmt
}

// SwitchStmt is switch (X) { case ...: ... default: ... }.
type SwitchStmt struct {
	base
	X     Expr
	Cases []SwitchCase
}

// SwitchCase is one case (Test nil for default).
type SwitchCase struct {
	Test Expr
	Body []Stmt
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ base }

func (*Program) stmtNode()      {}
func (*VarDecl) stmtNode()      {}
func (*FuncDeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ForInStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ThrowStmt) stmtNode()    {}
func (*LabeledStmt) stmtNode()  {}
func (*TryStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// ---- expressions ----

// VarRef is the static resolution of a variable name, shared by every
// reference to the same binding. The capture analysis marks bindings that
// nested functions reference; those (and globals) are the "potentially
// shared" JSVar locations of §4.1 that the interpreter instruments.
type VarRef struct {
	Name string
	// Global is set when no enclosing function declares the name.
	Global bool
	// Captured is set when a nested function references this binding.
	Captured bool
}

// Shared reports whether accesses to this binding are potentially shared
// between operations and must be instrumented.
func (r *VarRef) Shared() bool { return r.Global || r.Captured }

// Ident is a variable reference.
type Ident struct {
	base
	Name string
	Ref  *VarRef
}

// NumLit is a number literal.
type NumLit struct {
	base
	Value float64
}

// StrLit is a string literal.
type StrLit struct {
	base
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is null.
type NullLit struct{ base }

// UndefinedLit is undefined.
type UndefinedLit struct{ base }

// ThisLit is this.
type ThisLit struct{ base }

// FuncLit is a function expression (and the value of declarations).
type FuncLit struct {
	base
	Name   string // non-empty for declarations/named expressions
	Params []string
	Body   *Program
	// ParamRefs are the resolved bindings of the parameters.
	ParamRefs []*VarRef
}

// ArrayLit is [a, b, ...].
type ArrayLit struct {
	base
	Elems []Expr
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	base
	Keys []string
	Vals []Expr
}

// MemberExpr is X.Name.
type MemberExpr struct {
	base
	X    Expr
	Name string
}

// IndexExpr is X[Idx].
type IndexExpr struct {
	base
	X   Expr
	Idx Expr
}

// CallExpr is Callee(Args). IsNew marks `new Callee(Args)`.
type CallExpr struct {
	base
	Callee Expr
	Args   []Expr
	IsNew  bool
}

// AssignExpr is Target op= Value, where Op is "=", "+=", etc.
type AssignExpr struct {
	base
	Op     string
	Target Expr // Ident, MemberExpr or IndexExpr
	Value  Expr
}

// UpdateExpr is ++/-- (Prefix marks the prefix form).
type UpdateExpr struct {
	base
	Op     string // "++" or "--"
	X      Expr
	Prefix bool
}

// UnaryExpr is !x, -x, +x, ~x, typeof x, void x, delete x.
type UnaryExpr struct {
	base
	Op string
	X  Expr
}

// BinaryExpr is the non-short-circuit binary operators.
type BinaryExpr struct {
	base
	Op   string
	L, R Expr
}

// LogicalExpr is && and || (short-circuit).
type LogicalExpr struct {
	base
	Op   string
	L, R Expr
}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	base
	Cond, Then, Else Expr
}

// SeqExpr is the comma operator.
type SeqExpr struct {
	base
	Exprs []Expr
}

func (*Ident) exprNode()        {}
func (*NumLit) exprNode()       {}
func (*StrLit) exprNode()       {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*ThisLit) exprNode()      {}
func (*FuncLit) exprNode()      {}
func (*ArrayLit) exprNode()     {}
func (*ObjectLit) exprNode()    {}
func (*MemberExpr) exprNode()   {}
func (*IndexExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*AssignExpr) exprNode()   {}
func (*UpdateExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*LogicalExpr) exprNode()  {}
func (*CondExpr) exprNode()     {}
func (*SeqExpr) exprNode()      {}
