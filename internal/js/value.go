package js

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind tags a runtime value.
type Kind uint8

const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// Value is one JavaScript value. Functions and arrays are objects.
type Value struct {
	Kind Kind
	Bool bool
	Num  float64
	Str  string
	Obj  *Object
}

// Convenience constructors.
var (
	Undefined = Value{Kind: KindUndefined}
	Null      = Value{Kind: KindNull}
	True      = Value{Kind: KindBool, Bool: true}
	False     = Value{Kind: KindBool, Bool: false}
)

// Boolean returns a bool value.
func Boolean(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Number returns a number value.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// String returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// ObjectVal wraps an object.
func ObjectVal(o *Object) Value { return Value{Kind: KindObject, Obj: o} }

// IsCallable reports whether v can be invoked.
func (v Value) IsCallable() bool { return v.Kind == KindObject && v.Obj != nil && v.Obj.Fn != nil }

// IsNullish reports null or undefined.
func (v Value) IsNullish() bool { return v.Kind == KindUndefined || v.Kind == KindNull }

// Truthy implements ToBoolean.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.Bool
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	default:
		return true
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.IsCallable() {
			return "function"
		}
		return "object"
	}
}

// ToNumber implements ToNumber (objects convert via their string form).
func (v Value) ToNumber() float64 {
	switch v.Kind {
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case KindNumber:
		return v.Num
	case KindString:
		s := strings.TrimSpace(v.Str)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	default:
		return Str(v.ToString()).ToNumber()
	}
}

// ToString implements ToString.
func (v Value) ToString() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNumber:
		return NumToString(v.Num)
	case KindString:
		return v.Str
	default:
		return v.Obj.toString()
	}
}

// NumToString renders a number the way JavaScript does for the common
// cases: integral values print without a decimal point.
func NumToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.Bool == b.Bool
	case KindNumber:
		return a.Num == b.Num // NaN != NaN falls out
	case KindString:
		return a.Str == b.Str
	default:
		return a.Obj == b.Obj
	}
}

// LooseEquals implements == for the cases our subset needs: same-type
// comparison, null/undefined equivalence, and number/string/bool coercion.
func LooseEquals(a, b Value) bool {
	if a.Kind == b.Kind {
		return StrictEquals(a, b)
	}
	if a.IsNullish() && b.IsNullish() {
		return true
	}
	if a.IsNullish() || b.IsNullish() {
		return false
	}
	if a.Kind == KindObject || b.Kind == KindObject {
		// Object compared to primitive: compare via string form.
		return a.ToString() == b.ToString() || a.ToNumber() == b.ToNumber()
	}
	return a.ToNumber() == b.ToNumber()
}

// HostObject lets the browser give an object live behavior (DOM nodes,
// window, document, XHR). HostGet/HostSet return false to fall through to
// ordinary property storage.
type HostObject interface {
	HostGet(it *Interp, name string) (Value, bool, error)
	HostSet(it *Interp, name string, v Value) (bool, error)
}

// Object is a JavaScript object: plain object, array, function or host
// wrapper.
type Object struct {
	Serial  uint64
	Class   string // "Object", "Array", "Function", or a host class
	Props   map[string]Value
	keys    []string // insertion order of Props
	Elems   []Value  // array storage
	IsArray bool
	Fn      *Closure
	Host    HostObject
}

// SetProp stores a property without instrumentation (callers instrument).
func (o *Object) SetProp(name string, v Value) {
	if _, ok := o.Props[name]; !ok {
		o.keys = append(o.keys, name)
	}
	o.Props[name] = v
}

// GetProp loads a property without instrumentation.
func (o *Object) GetProp(name string) (Value, bool) {
	v, ok := o.Props[name]
	return v, ok
}

// DeleteProp removes a property.
func (o *Object) DeleteProp(name string) {
	if _, ok := o.Props[name]; ok {
		delete(o.Props, name)
		for i, k := range o.keys {
			if k == name {
				o.keys = append(o.keys[:i:i], o.keys[i+1:]...)
				break
			}
		}
	}
}

// Keys returns property names in insertion order (for-in order).
func (o *Object) Keys() []string { return o.keys }

func (o *Object) toString() string {
	switch {
	case o.IsArray:
		parts := make([]string, len(o.Elems))
		for i, e := range o.Elems {
			if e.IsNullish() {
				parts[i] = ""
			} else {
				parts[i] = e.ToString()
			}
		}
		return strings.Join(parts, ",")
	case o.Fn != nil:
		name := o.Fn.Name
		if name == "" {
			name = "anonymous"
		}
		return fmt.Sprintf("function %s() { [source] }", name)
	default:
		if s, ok := o.Props["__str__"]; ok {
			return s.ToString()
		}
		return "[object " + o.Class + "]"
	}
}

// NativeFn is a Go-implemented function. this is the receiver (Undefined
// for plain calls) and args the evaluated arguments.
type NativeFn func(it *Interp, this Value, args []Value) (Value, error)

// Closure is the callable payload of a function object.
type Closure struct {
	// Serial is the function identity, used as the h component of event
	// handler locations (el, e, h).
	Serial uint64
	Name   string
	Decl   *FuncLit
	Env    *Env
	Native NativeFn
	// Self is the function object carrying this closure (so a named
	// function expression can bind its own name).
	Self *Object
}

// Env is a runtime scope: the global scope or one function activation.
type Env struct {
	parent *Env
	vars   map[string]*Binding
	// GlobalSerial is non-zero on the global env: the identity used for
	// global variable locations.
	GlobalSerial uint64
	// thisVal/hasThis carry the receiver of a function activation.
	thisVal Value
	hasThis bool
}

// BindThis sets the receiver visible to `this` inside this scope.
func (e *Env) BindThis(v Value) {
	e.thisVal = v
	e.hasThis = true
}

// Binding is one variable slot. Shared bindings (captured locals) carry a
// Slot identity used in their memory location.
type Binding struct {
	Value  Value
	Shared bool
	Slot   uint64
}

// NewEnv returns a child scope of parent.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]*Binding)}
}

// IsGlobal reports whether e is a global scope.
func (e *Env) IsGlobal() bool { return e.GlobalSerial != 0 }

// Lookup finds the binding and its defining env, walking outward.
func (e *Env) Lookup(name string) (*Binding, *Env) {
	for env := e; env != nil; env = env.parent {
		if b, ok := env.vars[name]; ok {
			return b, env
		}
	}
	return nil, nil
}

// Global returns the outermost env.
func (e *Env) Global() *Env {
	g := e
	for g.parent != nil {
		g = g.parent
	}
	return g
}

// Declare creates (or returns existing) binding in this exact scope.
func (e *Env) Declare(name string, shared bool, slot uint64) *Binding {
	if b, ok := e.vars[name]; ok {
		return b
	}
	b := &Binding{Value: Undefined, Shared: shared, Slot: slot}
	e.vars[name] = b
	return b
}
