package js

import (
	"strings"
	"testing"
)

func printOf(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return PrintAST(prog)
}

func TestPrintASTBasics(t *testing.T) {
	out := printOf(t, `var x = 1 + 2; f(x);`)
	for _, want := range []string{"(var x{g} =", "(+", "(call", "f{g}", "x{g}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintASTBindingAnnotations(t *testing.T) {
	out := printOf(t, `
var g = 1;
function outer() {
  var captured = 2;
  var private = 3;
  return function() { return captured + g; };
}`)
	if !strings.Contains(out, "g{g}") {
		t.Errorf("global annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "captured{c}") {
		t.Errorf("capture annotation missing:\n%s", out)
	}
	// The uncaptured local prints bare.
	if strings.Contains(out, "private{") {
		t.Errorf("uncaptured local wrongly annotated:\n%s", out)
	}
}

func TestPrintASTControlFlow(t *testing.T) {
	out := printOf(t, `
for (var i = 0; i < 3; i++) { if (i % 2) continue; total += i; }
try { risky(); } catch (e) { handle(e); } finally { done = 1; }
switch (x) { case 1: a(); break; default: b(); }
do { tick(); } while (more);`)
	for _, want := range []string{
		"(for", "(if", "(continue)", "(+=",
		"(try", "(catch e)", "(finally)",
		"(switch", "(case", "(default",
		"(do-while",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintASTExpressions(t *testing.T) {
	out := printOf(t, `
var o = {k: [1, "two", null], m: function(a) { return this; }};
var v = o.k[0] ? new Thing(o) : (x, y);
delete o.k;
z = typeof undefined;
n = -n;
p = i++;`)
	for _, want := range []string{
		"(object", "(k:", "(array", `"two"`, "null",
		"(func  (a)", "this",
		"(?:", "(new", "(seq",
		"(delete", "(typeof", "(post-++", "(. k",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintASTRoundTripStability(t *testing.T) {
	// Printing is deterministic: same source, same rendering.
	src := `function f(a, b) { var s = 0; for (var i = a; i < b; i++) { s += i; } return s; }`
	if printOf(t, src) != printOf(t, src) {
		t.Error("PrintAST not deterministic")
	}
}
