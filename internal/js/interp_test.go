package js

import (
	"strings"
	"testing"

	"webracer/internal/mem"
)

type serialCounter struct{ n uint64 }

func (s *serialCounter) Next() uint64 { s.n++; return s.n }

// accessLog collects instrumented accesses for assertions.
type accessLog struct {
	accesses []recorded
}

type recorded struct {
	kind mem.AccessKind
	loc  mem.Loc
	ctx  mem.Context
	desc string
}

func (l *accessLog) Access(kind mem.AccessKind, loc mem.Loc, ctx mem.Context, desc string) {
	l.accesses = append(l.accesses, recorded{kind, loc, ctx, desc})
}

func (l *accessLog) count(kind mem.AccessKind, name string) int {
	n := 0
	for _, a := range l.accesses {
		if a.kind == kind && a.loc.Name == name {
			n++
		}
	}
	return n
}

func (l *accessLog) hasCtx(ctx mem.Context, name string) bool {
	for _, a := range l.accesses {
		if a.ctx == ctx && a.loc.Name == name {
			return true
		}
	}
	return false
}

func newTestInterp(t *testing.T) (*Interp, *accessLog) {
	t.Helper()
	log := &accessLog{}
	it := New(&serialCounter{}, log)
	return it, log
}

// evalString runs src and returns the value of the global `result`.
func evalString(t *testing.T, src string) Value {
	t.Helper()
	it, _ := newTestInterp(t)
	if err := it.Run(src, "test"); err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	v, ok := it.LookupGlobal("result")
	if !ok {
		t.Fatalf("script %q did not set result", src)
	}
	return v
}

func wantNum(t *testing.T, src string, want float64) {
	t.Helper()
	v := evalString(t, src)
	if v.Kind != KindNumber || v.Num != want {
		t.Errorf("%s: got %s (%v), want %v", src, v.ToString(), v.Kind, want)
	}
}

func wantStr(t *testing.T, src string, want string) {
	t.Helper()
	v := evalString(t, src)
	if v.Kind != KindString || v.Str != want {
		t.Errorf("%s: got %q (kind %v), want %q", src, v.ToString(), v.Kind, want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	v := evalString(t, src)
	if v.Kind != KindBool || v.Bool != want {
		t.Errorf("%s: got %s, want %v", src, v.ToString(), want)
	}
}

func TestArithmetic(t *testing.T) {
	wantNum(t, "var result = 1 + 2 * 3;", 7)
	wantNum(t, "var result = (1 + 2) * 3;", 9)
	wantNum(t, "var result = 10 / 4;", 2.5)
	wantNum(t, "var result = 10 % 3;", 1)
	wantNum(t, "var result = -5 + +3;", -2)
	wantNum(t, "var result = 2 * 3 + 4 * 5;", 26)
	wantNum(t, "var result = 100 - 10 - 5;", 85) // left assoc
	wantNum(t, "var result = 0x10 + 1;", 17)
	wantNum(t, "var result = 1.5e2;", 150)
}

func TestBitwiseAndShift(t *testing.T) {
	wantNum(t, "var result = 5 & 3;", 1)
	wantNum(t, "var result = 5 | 3;", 7)
	wantNum(t, "var result = 5 ^ 3;", 6)
	wantNum(t, "var result = 1 << 4;", 16)
	wantNum(t, "var result = -8 >> 1;", -4)
	wantNum(t, "var result = ~0;", -1)
}

func TestStringOps(t *testing.T) {
	wantStr(t, `var result = "foo" + "bar";`, "foobar")
	wantStr(t, `var result = "n=" + 42;`, "n=42")
	wantStr(t, `var result = "abcdef".substring(1, 3);`, "bc")
	wantStr(t, `var result = "HeLLo".toLowerCase();`, "hello")
	wantStr(t, `var result = "  pad  ".trim();`, "pad")
	wantNum(t, `var result = "hello".length;`, 5)
	wantNum(t, `var result = "hello".indexOf("ll");`, 2)
	wantStr(t, `var result = "a,b,c".split(",")[1];`, "b")
	wantStr(t, `var result = "aXbXc".replace("X", "-");`, "a-bXc")
	wantStr(t, `var result = "hello".charAt(1);`, "e")
	wantNum(t, `var result = "A".charCodeAt(0);`, 65)
	wantStr(t, `var result = "hello"[0];`, "h")
}

func TestComparisons(t *testing.T) {
	wantBool(t, "var result = 1 < 2;", true)
	wantBool(t, "var result = 2 <= 2;", true)
	wantBool(t, `var result = "a" < "b";`, true)
	wantBool(t, `var result = 1 == "1";`, true)
	wantBool(t, `var result = 1 === "1";`, false)
	wantBool(t, "var result = null == undefined;", true)
	wantBool(t, "var result = null === undefined;", false)
	wantBool(t, "var result = NaN == NaN;", false)
	wantBool(t, `var result = 0 == "";`, true)
	wantBool(t, "var result = 1 !== 2;", true)
}

func TestLogicalShortCircuit(t *testing.T) {
	wantNum(t, "var result = 1 && 2;", 2)
	wantNum(t, "var result = 0 || 5;", 5)
	wantBool(t, "var result = !0;", true)
	// RHS must not evaluate when short-circuited.
	wantNum(t, `var hit = 0;
function boom() { hit = 1; return true; }
var x = false && boom();
var result = hit;`, 0)
}

func TestControlFlow(t *testing.T) {
	wantNum(t, `var result = 0; if (1 < 2) { result = 1; } else { result = 2; }`, 1)
	wantNum(t, `var result = 0; for (var i = 0; i < 5; i++) { result += i; }`, 10)
	wantNum(t, `var result = 0; var i = 0; while (i < 4) { result += 2; i++; }`, 8)
	wantNum(t, `var result = 0; var i = 0; do { result++; i++; } while (i < 3);`, 3)
	wantNum(t, `var result = 0; for (var i = 0; i < 10; i++) { if (i == 3) break; result = i; }`, 2)
	wantNum(t, `var result = 0; for (var i = 0; i < 5; i++) { if (i % 2) continue; result += i; }`, 6)
	wantNum(t, `var result = 2 > 1 ? 10 : 20;`, 10)
}

func TestSwitch(t *testing.T) {
	wantStr(t, `var x = 2, result = "";
switch (x) {
case 1: result = "one"; break;
case 2: result = "two"; break;
default: result = "many";
}`, "two")
	// Fallthrough without break.
	wantStr(t, `var result = "";
switch (1) {
case 1: result += "a";
case 2: result += "b"; break;
case 3: result += "c";
}`, "ab")
	wantStr(t, `var result = "";
switch (99) { case 1: result = "one"; break; default: result = "default"; }`, "default")
}

func TestFunctionsAndClosures(t *testing.T) {
	wantNum(t, `function add(a, b) { return a + b; } var result = add(2, 3);`, 5)
	wantNum(t, `var result = (function(x) { return x * 2; })(21);`, 42)
	wantNum(t, `
function counter() {
  var n = 0;
  return function() { n++; return n; };
}
var c = counter();
c(); c();
var result = c();`, 3)
	// Two closures get distinct captured slots.
	wantNum(t, `
function counter() { var n = 0; return function() { n++; return n; }; }
var a = counter(), b = counter();
a(); a(); b();
var result = a() * 10 + b();`, 32)
	// Recursion.
	wantNum(t, `function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
var result = fib(10);`, 55)
	// Named function expression calls itself.
	wantNum(t, `var f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); };
var result = f(5);`, 120)
}

func TestHoisting(t *testing.T) {
	// Function declarations usable before their source position.
	wantNum(t, `var result = early(); function early() { return 7; }`, 7)
	// var hoisting: reference before assignment yields undefined, not
	// a ReferenceError.
	wantBool(t, `var result = typeof x === "undefined"; var x = 3;`, true)
}

func TestObjectsAndArrays(t *testing.T) {
	wantNum(t, `var o = {a: 1, b: 2}; var result = o.a + o.b;`, 3)
	wantNum(t, `var o = {}; o.x = 5; var result = o["x"];`, 5)
	wantNum(t, `var a = [1, 2, 3]; var result = a[0] + a[2];`, 4)
	wantNum(t, `var a = []; a.push(10); a.push(20); var result = a.length;`, 2)
	wantNum(t, `var a = [1,2,3]; var result = a.pop() + a.length;`, 5)
	wantNum(t, `var a = [5, 6]; a[5] = 1; var result = a.length;`, 6)
	wantStr(t, `var result = [1,2,3].join("-");`, "1-2-3")
	wantNum(t, `var result = [4,5,6].indexOf(5);`, 1)
	wantNum(t, `var s = 0; [1,2,3].forEach(function(x) { s += x; }); var result = s;`, 6)
	wantStr(t, `var o = {x: {y: "deep"}}; var result = o.x.y;`, "deep")
	wantNum(t, `var result = [1,2,3,4].slice(1, 3).length;`, 2)
}

func TestForIn(t *testing.T) {
	wantStr(t, `var o = {a: 1, b: 2, c: 3}; var result = "";
for (var k in o) { result += k; }`, "abc")
	wantNum(t, `var a = [10, 20, 30]; var s = 0;
for (var i in a) { s += a[i]; }
var result = s;`, 60)
}

func TestThis(t *testing.T) {
	wantNum(t, `var o = {n: 41, get: function() { return this.n + 1; }};
var result = o.get();`, 42)
	wantNum(t, `function C() { this.x = 9; }
var c = new C();
var result = c.x;`, 9)
	wantStr(t, `function Pt(x, y) { this.x = x; this.y = y; }
var p = new Pt(3, 4);
var result = p.x + "," + p.y;`, "3,4")
}

func TestTypeof(t *testing.T) {
	wantStr(t, `var result = typeof 1;`, "number")
	wantStr(t, `var result = typeof "s";`, "string")
	wantStr(t, `var result = typeof true;`, "boolean")
	wantStr(t, `var result = typeof undefined;`, "undefined")
	wantStr(t, `var result = typeof null;`, "object")
	wantStr(t, `var result = typeof {};`, "object")
	wantStr(t, `var result = typeof function(){};`, "function")
	wantStr(t, `var result = typeof neverDeclared;`, "undefined")
}

func TestUpdateAndCompound(t *testing.T) {
	wantNum(t, `var x = 5; var result = x++;`, 5)
	wantNum(t, `var x = 5; x++; var result = x;`, 6)
	wantNum(t, `var x = 5; var result = ++x;`, 6)
	wantNum(t, `var x = 5; var result = --x;`, 4)
	wantNum(t, `var x = 10; x += 5; x -= 3; x *= 2; var result = x;`, 24)
	wantNum(t, `var o = {n: 1}; o.n++; o.n += 2; var result = o.n;`, 4)
	wantNum(t, `var a = [7]; a[0]++; var result = a[0];`, 8)
}

func TestExceptions(t *testing.T) {
	wantStr(t, `var result = "";
try { throw "boom"; } catch (e) { result = e; }`, "boom")
	wantStr(t, `var result = "";
try { undefinedFn(); } catch (e) { result = e.name; }`, "ReferenceError")
	wantStr(t, `var result = "";
var nul = null;
try { var v = nul.prop; } catch (e) { result = e.name; }`, "TypeError")
	wantStr(t, `var result = "";
try { try { throw "x"; } finally { result += "f"; } } catch (e) { result += e; }`, "fx")
	wantNum(t, `var result = 0;
function f() { try { return 1; } finally { result = 5; } }
f();`, 5)
	// Uncaught error surfaces to the host.
	it, _ := newTestInterp(t)
	err := it.Run(`throw "unhandled";`, "test")
	if err == nil {
		t.Fatal("expected uncaught error")
	}
	jsErr, ok := err.(*Error)
	if !ok || !jsErr.HasThrown || jsErr.Thrown.ToString() != "unhandled" {
		t.Fatalf("got %v, want thrown 'unhandled'", err)
	}
}

func TestCrashSemantics(t *testing.T) {
	// Per §2.3: mutations before a crash persist.
	it, _ := newTestInterp(t)
	err := it.Run(`var before = 1; var x = null; x.boom = 2; var after = 3;`, "test")
	if err == nil {
		t.Fatal("expected TypeError")
	}
	if v, ok := it.LookupGlobal("before"); !ok || v.Num != 1 {
		t.Errorf("mutation before crash lost: %v %v", v, ok)
	}
	if _, ok := it.LookupGlobal("after"); ok {
		v, _ := it.LookupGlobal("after")
		if v.Kind != KindUndefined {
			t.Errorf("statement after crash ran: %v", v)
		}
	}
}

func TestReferenceError(t *testing.T) {
	it, _ := newTestInterp(t)
	err := it.Run(`var x = neverDeclared + 1;`, "test")
	jsErr, ok := err.(*Error)
	if !ok || jsErr.Kind != "ReferenceError" {
		t.Fatalf("got %v, want ReferenceError", err)
	}
}

func TestStepBudget(t *testing.T) {
	it, _ := newTestInterp(t)
	it.MaxSteps = 10_000
	err := it.Run(`while (true) {}`, "test")
	jsErr, ok := err.(*Error)
	if !ok || jsErr.Kind != "InternalError" {
		t.Fatalf("got %v, want InternalError (step budget)", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	it, _ := newTestInterp(t)
	err := it.Run(`function f() { return f(); } f();`, "test")
	jsErr, ok := err.(*Error)
	if !ok || jsErr.Kind != "RangeError" {
		t.Fatalf("got %v, want RangeError", err)
	}
}

func TestBuiltins(t *testing.T) {
	wantNum(t, `var result = Math.floor(3.7);`, 3)
	wantNum(t, `var result = Math.max(1, 9, 4);`, 9)
	wantNum(t, `var result = Math.min(5, 2, 8);`, 2)
	wantNum(t, `var result = Math.abs(-4);`, 4)
	wantNum(t, `var result = Math.pow(2, 10);`, 1024)
	wantNum(t, `var result = parseInt("42px");`, 42)
	wantNum(t, `var result = parseInt("0x1f", 16);`, 31)
	wantNum(t, `var result = parseInt("-7");`, -7)
	wantNum(t, `var result = parseFloat("3.14abc");`, 3.14)
	wantBool(t, `var result = isNaN(parseInt("zzz"));`, true)
	wantStr(t, `var result = String(12.5);`, "12.5")
	wantNum(t, `var result = Number("8");`, 8)
	wantBool(t, `var r = Math.random(); var result = r >= 0 && r < 1;`, true)
	wantNum(t, `var result = new Array(3).length;`, 3)
}

func TestJSON(t *testing.T) {
	wantStr(t, `var result = JSON.stringify({a: 1, b: [true, "x"]});`, `{"a":1,"b":[true,"x"]}`)
	wantNum(t, `var o = JSON.parse("{\"n\": 42}"); var result = o.n;`, 42)
	wantNum(t, `var a = JSON.parse("[1,2,3]"); var result = a[2];`, 3)
	wantStr(t, `var result = JSON.stringify("quo\"te");`, `"quo\"te"`)
}

func TestSemicolonInsertion(t *testing.T) {
	wantNum(t, "var x = 1\nvar y = 2\nvar result = x + y", 3)
	wantNum(t, "function f() { return\n5 }\nvar r = f()\nvar result = r === undefined ? 1 : 0", 1)
}

func TestSequenceAndVoid(t *testing.T) {
	wantNum(t, `var result = (1, 2, 3);`, 3)
	wantBool(t, `var result = void 0 === undefined;`, true)
}

func TestDeleteAndIn(t *testing.T) {
	wantBool(t, `var o = {a: 1}; var result = "a" in o;`, true)
	wantBool(t, `var o = {a: 1}; delete o.a; var result = "a" in o;`, false)
	wantBool(t, `var a = [1,2]; var result = 1 in a;`, true)
	wantBool(t, `var a = [1,2]; var result = 5 in a;`, false)
}

func TestImplicitGlobal(t *testing.T) {
	it, _ := newTestInterp(t)
	if err := it.Run(`function f() { implicit = 99; } f();`, "test"); err != nil {
		t.Fatal(err)
	}
	v, ok := it.LookupGlobal("implicit")
	if !ok || v.Num != 99 {
		t.Fatalf("implicit global not created: %v %v", v, ok)
	}
}

// ---- instrumentation ----

func TestGlobalAccessInstrumented(t *testing.T) {
	it, log := newTestInterp(t)
	if err := it.Run(`var g = 1; var h = g + 1;`, "test"); err != nil {
		t.Fatal(err)
	}
	if log.count(mem.Write, "g") != 1 {
		t.Errorf("writes to g = %d, want 1", log.count(mem.Write, "g"))
	}
	if log.count(mem.Read, "g") != 1 {
		t.Errorf("reads of g = %d, want 1", log.count(mem.Read, "g"))
	}
}

func TestLocalNotInstrumented(t *testing.T) {
	it, log := newTestInterp(t)
	if err := it.Run(`function f() { var local = 1; local = local + 1; return local; } f();`, "test"); err != nil {
		t.Fatal(err)
	}
	if n := log.count(mem.Write, "local") + log.count(mem.Read, "local"); n != 0 {
		t.Errorf("uncaptured local instrumented %d times, want 0", n)
	}
}

func TestCapturedLocalInstrumented(t *testing.T) {
	it, log := newTestInterp(t)
	src := `
function make() {
  var shared = 0;
  return function() { shared = shared + 1; return shared; };
}
var inc = make();
inc();`
	if err := it.Run(src, "test"); err != nil {
		t.Fatal(err)
	}
	if log.count(mem.Write, "shared") == 0 {
		t.Error("captured local writes not instrumented")
	}
	if log.count(mem.Read, "shared") == 0 {
		t.Error("captured local reads not instrumented")
	}
}

func TestDistinctClosureSlotsDistinctLocs(t *testing.T) {
	it, log := newTestInterp(t)
	src := `
function make() { var n = 0; return function() { n = 1; }; }
var a = make(), b = make();
a(); b();`
	if err := it.Run(src, "test"); err != nil {
		t.Fatal(err)
	}
	locs := map[mem.Loc]bool{}
	for _, a := range log.accesses {
		if a.loc.Name == "n" && a.kind == mem.Write {
			locs[a.loc] = true
		}
	}
	if len(locs) != 2 {
		t.Errorf("closure instances share a location: %d distinct, want 2", len(locs))
	}
}

func TestFuncDeclCtx(t *testing.T) {
	it, log := newTestInterp(t)
	if err := it.Run(`function g() { return 1; } g();`, "test"); err != nil {
		t.Fatal(err)
	}
	if !log.hasCtx(mem.CtxFuncDecl, "g") {
		t.Error("function declaration write not tagged CtxFuncDecl")
	}
	if !log.hasCtx(mem.CtxFuncCall, "g") {
		t.Error("function invocation read not tagged CtxFuncCall")
	}
}

func TestUnresolvedCallInstrumented(t *testing.T) {
	// Fig. 4 scenario: calling a not-yet-declared function still records
	// the racing read.
	it, log := newTestInterp(t)
	err := it.Run(`doNextStep();`, "test")
	if err == nil {
		t.Fatal("expected error calling undefined function")
	}
	if !log.hasCtx(mem.CtxFuncCall, "doNextStep") {
		t.Error("failed invocation read not instrumented")
	}
}

func TestPropertyAccessInstrumented(t *testing.T) {
	it, log := newTestInterp(t)
	if err := it.Run(`var o = {}; o.p = 1; var x = o.p;`, "test"); err != nil {
		t.Fatal(err)
	}
	if log.count(mem.Write, "p") != 1 || log.count(mem.Read, "p") != 1 {
		t.Errorf("property accesses: %d writes, %d reads; want 1, 1",
			log.count(mem.Write, "p"), log.count(mem.Read, "p"))
	}
}

func TestCompileFunction(t *testing.T) {
	it, _ := newTestInterp(t)
	fn, err := it.CompileFunction(`clicked = event + 1;`, "event")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.CallFunction(fn, Undefined, []Value{Number(41)}); err != nil {
		t.Fatal(err)
	}
	v, _ := it.LookupGlobal("clicked")
	if v.Num != 42 {
		t.Fatalf("handler did not run: clicked = %v", v.ToString())
	}
}

func TestArgumentsObject(t *testing.T) {
	wantNum(t, `function f() { return arguments.length; } var result = f(1, 2, 3);`, 3)
	wantNum(t, `function f() { return arguments[1]; } var result = f(5, 6);`, 6)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`var = 3;`,
		`function () {}`,
		`if (x {`,
		`1 +`,
		`"unterminated`,
		`var a = {key: };`,
		`try { }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := Lex(`var x = 1.5; // comment
x += "s\n"; /* block */ x===2`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	joined := strings.Join(kinds, " ")
	want := `var x = 1.5 ; x += "s\n" ; x === 2 <eof>`
	if joined != want {
		t.Errorf("lex: got %q, want %q", joined, want)
	}
}

func TestNumToString(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.5",
		-3:     "-3",
		0:      "0",
		100000: "100000",
	}
	for f, want := range cases {
		if got := NumToString(f); got != want {
			t.Errorf("NumToString(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestDateNow(t *testing.T) {
	it, _ := newTestInterp(t)
	it.Now = func() float64 { return 12345 }
	if err := it.Run(`var result = Date.now();`, "test"); err != nil {
		t.Fatal(err)
	}
	v, _ := it.LookupGlobal("result")
	if v.Num != 12345 {
		t.Fatalf("Date.now() = %v, want 12345", v.ToString())
	}
}
