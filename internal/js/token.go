// Package js implements the scripting language of the simulated browser: a
// lexer, parser and tree-walking interpreter for the JavaScript subset that
// the paper's examples and workloads exercise — functions with closures and
// hoisted declarations (§4.1 "Functions"), objects, arrays, the usual
// operators and control flow, exceptions with browser crash semantics
// (§2.3: an uncaught exception terminates the current operation but its
// prior heap mutations persist), and a host-object bridge through which the
// browser exposes window, document, DOM nodes, timers and XMLHttpRequest.
//
// The interpreter reports shared-memory accesses (§4.1) through a Hooks
// callback: reads/writes of global variables, of closure-captured locals
// (identified by a static capture analysis at parse time), and of object
// properties. Function declarations are instrumented as hoisted writes and
// calls through a variable as reads, which is what lets the detector
// classify function races (§2.4).
package js

import (
	"fmt"
	"strings"
)

// TokKind is a lexical token class.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct
	TokKeyword
)

// Token is one lexical token. For TokPunct and TokKeyword, Text is the
// operator or keyword itself.
type Token struct {
	Kind TokKind
	Text string
	Num  float64
	Line int
	// NewlineBefore marks a line break between the previous token and
	// this one (consulted for semicolon insertion).
	NewlineBefore bool
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokNumber:
		return fmt.Sprintf("%v", t.Num)
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "do": true, "for": true, "in": true, "break": true,
	"continue": true, "true": true, "false": true, "null": true,
	"undefined": true, "new": true, "typeof": true, "this": true,
	"throw": true, "try": true, "catch": true, "finally": true,
	"delete": true, "instanceof": true, "void": true, "switch": true,
	"case": true, "default": true,
}

// punctuators, longest first within each starting byte, matched greedily.
var puncts = []string{
	"===", "!==", ">>>", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "=", "!", "?", ":", ".", "&", "|", "^", "~",
}

// SyntaxError reports a lexing or parsing failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("js: syntax error at line %d: %s", e.Line, e.Msg)
}

// Lex tokenizes src, returning the token stream ending in TokEOF.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	newline := false
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			newline = true
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == '\f':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, &SyntaxError{Line: line, Msg: "unterminated block comment"}
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '"' || c == '\'':
			s, n, err := lexString(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokString, Text: s, Line: line, NewlineBefore: newline})
			newline = false
			i += n
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			num, n, err := lexNumber(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokNumber, Num: num, Line: line, NewlineBefore: newline})
			newline = false
			i += n
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: line, NewlineBefore: newline})
			newline = false
		default:
			p := matchPunct(src[i:])
			if p == "" {
				return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, NewlineBefore: newline})
			newline = false
			i += len(p)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, NewlineBefore: newline})
	return toks, nil
}

func lexString(src string, line int) (string, int, error) {
	quote := src[0]
	var b strings.Builder
	i := 1
	for i < len(src) {
		c := src[i]
		switch c {
		case quote:
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return "", 0, &SyntaxError{Line: line, Msg: "unterminated string"}
			}
			i++
			switch src[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"', '/':
				b.WriteByte(src[i])
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(src[i])
			}
			i++
		case '\n':
			return "", 0, &SyntaxError{Line: line, Msg: "newline in string literal"}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, &SyntaxError{Line: line, Msg: "unterminated string"}
}

func lexNumber(src string, line int) (float64, int, error) {
	i := 0
	if strings.HasPrefix(src, "0x") || strings.HasPrefix(src, "0X") {
		i = 2
		v := 0.0
		for i < len(src) && isHex(src[i]) {
			v = v*16 + float64(hexVal(src[i]))
			i++
		}
		if i == 2 {
			return 0, 0, &SyntaxError{Line: line, Msg: "malformed hex literal"}
		}
		return v, i, nil
	}
	for i < len(src) && src[i] >= '0' && src[i] <= '9' {
		i++
	}
	if i < len(src) && src[i] == '.' {
		i++
		for i < len(src) && src[i] >= '0' && src[i] <= '9' {
			i++
		}
	}
	if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
		j := i + 1
		if j < len(src) && (src[j] == '+' || src[j] == '-') {
			j++
		}
		digits := false
		for j < len(src) && src[j] >= '0' && src[j] <= '9' {
			j++
			digits = true
		}
		if digits {
			i = j
		}
	}
	var v float64
	if _, err := fmt.Sscanf(src[:i], "%g", &v); err != nil {
		return 0, 0, &SyntaxError{Line: line, Msg: "malformed number"}
	}
	return v, i, nil
}

func matchPunct(src string) string {
	for _, p := range puncts {
		if strings.HasPrefix(src, p) {
			return p
		}
	}
	return ""
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c <= '9':
		return int(c - '0')
	case c <= 'F':
		return int(c-'A') + 10
	default:
		return int(c-'a') + 10
	}
}
