package js

// resolve performs the static binding analysis:
//
//  1. Hoisting: collect the names declared by `var` and function
//     declarations in each function body (and the top level), per
//     JavaScript's function-scoped declaration semantics and the paper's
//     §4.1 treatment of function declarations as writes at scope entry.
//
//  2. Capture analysis: a binding referenced from a function nested below
//     its declaring function is marked Captured. Captured locals can be
//     shared between operations through closures, so the interpreter
//     instruments their accesses; uncaptured locals are private to a
//     single operation and are not instrumented.
//
// Names that resolve to no enclosing function are Global: they live on the
// window's global scope, which is always shared.
func resolve(prog *Program) {
	g := &rscope{bindings: map[string]*VarRef{}}
	hoist(prog, g, true)
	resolveBody(prog, g)
}

// rscope is one scope during resolution: the global scope, a function body
// scope, or a catch-parameter mini-scope.
type rscope struct {
	parent   *rscope
	bindings map[string]*VarRef
	// fnBoundary marks function-body scopes: walking up past one means
	// the reference site is in a function nested below the binding.
	fnBoundary bool
}

func (s *rscope) declare(name string, global bool) *VarRef {
	if r, ok := s.bindings[name]; ok {
		return r
	}
	r := &VarRef{Name: name, Global: global}
	s.bindings[name] = r
	return r
}

// lookup resolves name from scope s. crossed reports whether the walk
// passed at least one function boundary before finding the binding,
// meaning the reference captures the binding in a closure.
func (s *rscope) lookup(name string) (ref *VarRef, crossed bool) {
	c := false
	for sc := s; sc != nil; sc = sc.parent {
		if r, ok := sc.bindings[name]; ok {
			return r, c
		}
		if sc.fnBoundary {
			c = true
		}
	}
	return nil, false
}

// hoist populates prog.Hoisted/FuncDecls and declares the bindings in sc.
func hoist(prog *Program, sc *rscope, global bool) {
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *VarDecl:
				s.Ref = sc.declare(s.Name, global)
				prog.Hoisted = append(prog.Hoisted, s.Ref)
			case *FuncDeclStmt:
				s.Ref = sc.declare(s.Name, global)
				prog.Hoisted = append(prog.Hoisted, s.Ref)
				prog.FuncDecls = append(prog.FuncDecls, s)
			case *BlockStmt:
				walk(s.Body)
			case *IfStmt:
				walk([]Stmt{s.Then})
				if s.Else != nil {
					walk([]Stmt{s.Else})
				}
			case *WhileStmt:
				walk([]Stmt{s.Body})
			case *ForStmt:
				if s.Init != nil {
					walk([]Stmt{s.Init})
				}
				walk([]Stmt{s.Body})
			case *ForInStmt:
				s.Ref = sc.declare(s.Name, global)
				prog.Hoisted = append(prog.Hoisted, s.Ref)
				walk([]Stmt{s.Body})
			case *TryStmt:
				walk(s.Try.Body)
				if s.Catch != nil {
					walk(s.Catch.Body)
				}
				if s.Finally != nil {
					walk(s.Finally.Body)
				}
			case *SwitchStmt:
				for _, c := range s.Cases {
					walk(c.Body)
				}
			case *LabeledStmt:
				walk([]Stmt{s.Stmt})
			}
		}
	}
	walk(prog.Body)
}

// resolveBody resolves all identifier references in a program body whose
// scope is sc.
func resolveBody(prog *Program, sc *rscope) {
	for _, s := range prog.Body {
		resolveStmt(s, sc)
	}
	for _, fd := range prog.FuncDecls {
		resolveFunc(fd.Fn, sc)
	}
}

func resolveStmt(s Stmt, sc *rscope) {
	switch s := s.(type) {
	case *VarDecl:
		if s.Init != nil {
			resolveExpr(s.Init, sc)
		}
	case *FuncDeclStmt:
		// Body handled via prog.FuncDecls in resolveBody.
	case *ExprStmt:
		resolveExpr(s.X, sc)
	case *BlockStmt:
		for _, st := range s.Body {
			resolveStmt(st, sc)
		}
	case *IfStmt:
		resolveExpr(s.Cond, sc)
		resolveStmt(s.Then, sc)
		if s.Else != nil {
			resolveStmt(s.Else, sc)
		}
	case *WhileStmt:
		resolveExpr(s.Cond, sc)
		resolveStmt(s.Body, sc)
	case *ForStmt:
		if s.Init != nil {
			resolveStmt(s.Init, sc)
		}
		if s.Cond != nil {
			resolveExpr(s.Cond, sc)
		}
		if s.Post != nil {
			resolveExpr(s.Post, sc)
		}
		resolveStmt(s.Body, sc)
	case *ForInStmt:
		resolveExpr(s.X, sc)
		resolveStmt(s.Body, sc)
	case *ReturnStmt:
		if s.X != nil {
			resolveExpr(s.X, sc)
		}
	case *ThrowStmt:
		resolveExpr(s.X, sc)
	case *TryStmt:
		resolveStmt(s.Try, sc)
		if s.Catch != nil {
			// The catch parameter gets a mini-scope of its own.
			cs := &rscope{parent: sc, bindings: map[string]*VarRef{}}
			s.CatchRef = cs.declare(s.CatchVar, false)
			// References inside catch resolve through cs, but any
			// function nested in catch must see cs as part of the
			// same function scope; the lookup's crossed-function
			// accounting handles that because cs has no function
			// boundary of its own.
			resolveStmt(s.Catch, cs)
		}
		if s.Finally != nil {
			resolveStmt(s.Finally, sc)
		}
	case *SwitchStmt:
		resolveExpr(s.X, sc)
		for _, c := range s.Cases {
			if c.Test != nil {
				resolveExpr(c.Test, sc)
			}
			for _, st := range c.Body {
				resolveStmt(st, sc)
			}
		}
	case *LabeledStmt:
		resolveStmt(s.Stmt, sc)
	case *BreakStmt, *ContinueStmt, *EmptyStmt:
	}
}

func resolveExpr(e Expr, sc *rscope) {
	switch e := e.(type) {
	case *Ident:
		ref, crossed := sc.lookup(e.Name)
		if ref == nil {
			ref = &VarRef{Name: e.Name, Global: true}
			// Intern global refs at the root scope so all
			// references to one global share a VarRef.
			root := sc
			for root.parent != nil {
				root = root.parent
			}
			if r, ok := root.bindings[e.Name]; ok {
				ref = r
			} else {
				root.bindings[e.Name] = ref
			}
		}
		if crossed && !ref.Global {
			ref.Captured = true
		}
		e.Ref = ref
	case *FuncLit:
		resolveFunc(e, sc)
	case *ArrayLit:
		for _, el := range e.Elems {
			resolveExpr(el, sc)
		}
	case *ObjectLit:
		for _, v := range e.Vals {
			resolveExpr(v, sc)
		}
	case *MemberExpr:
		resolveExpr(e.X, sc)
	case *IndexExpr:
		resolveExpr(e.X, sc)
		resolveExpr(e.Idx, sc)
	case *CallExpr:
		resolveExpr(e.Callee, sc)
		for _, a := range e.Args {
			resolveExpr(a, sc)
		}
	case *AssignExpr:
		resolveExpr(e.Target, sc)
		resolveExpr(e.Value, sc)
	case *UpdateExpr:
		resolveExpr(e.X, sc)
	case *UnaryExpr:
		resolveExpr(e.X, sc)
	case *BinaryExpr:
		resolveExpr(e.L, sc)
		resolveExpr(e.R, sc)
	case *LogicalExpr:
		resolveExpr(e.L, sc)
		resolveExpr(e.R, sc)
	case *CondExpr:
		resolveExpr(e.Cond, sc)
		resolveExpr(e.Then, sc)
		resolveExpr(e.Else, sc)
	case *SeqExpr:
		for _, x := range e.Exprs {
			resolveExpr(x, sc)
		}
	case *NumLit, *StrLit, *BoolLit, *NullLit, *UndefinedLit, *ThisLit:
	}
}

// resolveFunc resolves a function literal: a new scope containing the
// parameters, the named function expression's own name, and the hoisted
// declarations of its body.
func resolveFunc(fn *FuncLit, parent *rscope) {
	sc := &rscope{parent: parent, bindings: map[string]*VarRef{}, fnBoundary: true}
	if fn.Name != "" {
		// A named function expression can call itself by name; make
		// the name visible inside (harmlessly shadowed if also a
		// declaration binding in the parent).
		sc.declare(fn.Name, false)
	}
	fn.ParamRefs = make([]*VarRef, len(fn.Params))
	for i, p := range fn.Params {
		fn.ParamRefs[i] = sc.declare(p, false)
	}
	hoist(fn.Body, sc, false)
	resolveBody(fn.Body, sc)
}
