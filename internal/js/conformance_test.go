package js

import "testing"

// TestConformance is a table-driven sweep over language behaviours: each
// script must set `result` to the expected string form. Broad but shallow —
// the deep semantics (closures, hoisting, crash containment) have their own
// focused tests in interp_test.go.
func TestConformance(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		// numbers & coercion
		{"int-add", `var result = 1 + 2;`, "3"},
		{"float-print", `var result = 0.1 + 0.2 > 0.3 - 0.001;`, "true"},
		{"div-zero", `var result = 1 / 0;`, "Infinity"},
		{"neg-div-zero", `var result = -1 / 0;`, "-Infinity"},
		{"zero-div-zero", `var result = 0 / 0;`, "NaN"},
		{"string-minus", `var result = "10" - 3;`, "7"},
		{"string-mult", `var result = "4" * "2";`, "8"},
		{"plus-coerce", `var result = "4" + 2;`, "42"},
		{"bool-arith", `var result = true + true;`, "2"},
		{"null-arith", `var result = null + 5;`, "5"},
		{"undef-arith", `var result = undefined + 5;`, "NaN"},
		{"unary-string", `var result = +"12";`, "12"},
		{"mod-neg", `var result = -7 % 3;`, "-1"},
		{"precedence", `var result = 2 + 3 * 4 - 6 / 2;`, "11"},
		{"exp-notation", `var result = 1e3 + 1;`, "1001"},
		{"hex-lit", `var result = 0xff;`, "255"},

		// strings
		{"concat-chain", `var result = "a" + "b" + "c";`, "abc"},
		{"num-to-str", `var result = "" + 3.5;`, "3.5"},
		{"int-to-str", `var result = "" + 3.0;`, "3"},
		{"escape", "var result = \"a\\tb\";", "a\tb"},
		{"single-quotes", `var result = 'it' + "s";`, "its"},
		{"length-empty", `var result = "".length;`, "0"},
		{"index-oob", `var result = "ab"[5];`, "undefined"},
		{"substr-chain", `var result = "hello world".substring(6).toUpperCase();`, "WORLD"},

		// booleans & equality
		{"eq-null-zero", `var result = null == 0;`, "false"},
		{"eq-empty-zero", `var result = "" == 0;`, "true"},
		{"eq-space-zero", `var result = " " == 0;`, "true"},
		{"neq-strict", `var result = "1" !== 1;`, "true"},
		{"not-not", `var result = !!"x";`, "true"},
		{"truthy-obj", `var result = {} ? "t" : "f";`, "t"},
		{"falsy-zero", `var result = 0 ? "t" : "f";`, "f"},
		{"falsy-nan", `var result = NaN ? "t" : "f";`, "f"},
		{"and-value", `var result = "a" && "b";`, "b"},
		{"or-value", `var result = "" || "fallback";`, "fallback"},

		// control flow
		{"nested-if", `var result = ""; if (1) { if (0) { result = "a"; } else { result = "b"; } }`, "b"},
		{"while-false", `var result = "never"; while (false) { result = "x"; }`, "never"},
		{"for-empty-body", `var n = 0; for (var i = 0; i < 3; i++) { } var result = i;`, "3"},
		{"nested-loops", `var s = 0; for (var i = 0; i < 3; i++) for (var j = 0; j < 3; j++) s++; var result = s;`, "9"},
		{"break-inner", `var s = ""; for (var i = 0; i < 2; i++) { for (var j = 0; j < 9; j++) { if (j == 1) break; s += i; } } var result = s;`, "01"},
		{"ternary-nest", `var x = 5; var result = x < 3 ? "lo" : x < 7 ? "mid" : "hi";`, "mid"},
		{"do-once", `var n = 0; do { n++; } while (false); var result = n;`, "1"},
		{"switch-string", `var result = ""; switch ("b") { case "a": result = "A"; break; case "b": result = "B"; break; }`, "B"},

		// functions
		{"default-undefined-param", `function f(a, b) { return "" + b; } var result = f(1);`, "undefined"},
		{"extra-args-ignored", `function f(a) { return a; } var result = f(7, 8, 9);`, "7"},
		{"no-return", `function f() { var x = 1; } var result = "" + f();`, "undefined"},
		{"iife", `var result = (function() { return "ran"; })();`, "ran"},
		{"closure-loop-shared", `var fs = []; for (var i = 0; i < 3; i++) { fs.push(function() { return i; }); } var result = fs[0]();`, "3"},
		{"higher-order", `function twice(f, x) { return f(f(x)); } var result = twice(function(n) { return n * 3; }, 2);`, "18"},
		{"fn-as-value", `var ops = {add: function(a,b){return a+b;}}; var result = ops.add(20, 22);`, "42"},
		{"recursive-sum", `function sum(n) { return n <= 0 ? 0 : n + sum(n-1); } var result = sum(10);`, "55"},
		{"shadowing", `var x = "outer"; function f() { var x = "inner"; return x; } var result = f() + x;`, "innerouter"},
		{"param-shadows-global", `var x = 1; function f(x) { x = 99; return x; } f(5); var result = x;`, "1"},

		// objects & arrays
		{"obj-literal-nested", `var o = {a: {b: {c: "deep"}}}; var result = o.a.b.c;`, "deep"},
		{"obj-dynamic-key", `var o = {}; var k = "ke" + "y"; o[k] = "v"; var result = o.key;`, "v"},
		{"obj-missing-prop", `var o = {}; var result = "" + o.nothing;`, "undefined"},
		{"arr-literal-mixed", `var a = [1, "two", true]; var result = "" + a[1];`, "two"},
		{"arr-hole-undefined", `var a = [1]; var result = "" + a[3];`, "undefined"},
		{"arr-length-grow", `var a = []; a[4] = 1; var result = a.length;`, "5"},
		{"arr-nested", `var a = [[1,2],[3,4]]; var result = a[1][0];`, "3"},
		{"arr-tostring", `var result = "" + [1,2,3];`, "1,2,3"},
		{"obj-in-array", `var a = [{n: 5}]; var result = a[0].n;`, "5"},
		{"delete-then-in", `var o = {x: 1, y: 2}; delete o.x; var result = ("x" in o) + "" + ("y" in o);`, "falsetrue"},
		{"for-in-after-delete", `var o = {a:1, b:2, c:3}; delete o.b; var s = ""; for (var k in o) s += k; var result = s;`, "ac"},

		// this & new
		{"method-this", `var o = {v: "V", get: function() { return this.v; }}; var result = o.get();`, "V"},
		{"new-props", `function T() { this.a = 1; this.b = 2; } var t = new T(); var result = t.a + t.b;`, "3"},
		{"constructor-return-obj", `function T() { return {custom: "yes"}; } var result = new T().custom;`, "yes"},
		{"new-without-parens", `function T() { this.ok = "k"; } var t = new T; var result = t.ok;`, "k"},

		// exceptions
		{"throw-number", `var result = ""; try { throw 42; } catch (e) { result = "" + e; }`, "42"},
		{"throw-object", `var result = ""; try { throw {code: 7}; } catch (e) { result = "" + e.code; }`, "7"},
		{"new-error", `var result = ""; try { throw new Error("boom"); } catch (e) { result = e.message; }`, "boom"},
		{"nested-try", `var result = ""; try { try { throw "in"; } catch (e) { throw "re" + e; } } catch (e2) { result = e2; }`, "rein"},
		{"finally-order", `var result = ""; try { result += "t"; } finally { result += "f"; }`, "tf"},
		{"catch-scope", `var e = "outer"; try { throw "inner"; } catch (e) { } var result = e;`, "outer"},

		// typeof / void / comma
		{"typeof-chain", `var result = typeof typeof 1;`, "string"},
		{"void-any", `var result = "" + void "x";`, "undefined"},
		{"comma-in-for", `var a = 0, b = 0; for (var i = 0, j = 9; i < 2; i++, j--) { a = i; b = j; } var result = a + "" + b;`, "18"},

		// builtins
		{"math-chain", `var result = Math.floor(Math.sqrt(50));`, "7"},
		{"math-round-half", `var result = Math.round(2.5);`, "3"},
		{"math-neg-round", `var result = Math.round(-2.5);`, "-2"},
		{"parseint-radix2", `var result = parseInt("101", 2);`, "5"},
		{"isnan-string", `var result = isNaN("abc");`, "true"},
		{"isnan-numeric-string", `var result = isNaN("12");`, "false"},
		{"number-empty", `var result = Number("");`, "0"},
		{"string-null", `var result = String(null);`, "null"},
		{"json-nested", `var result = JSON.parse(JSON.stringify({a:[1,{b:2}]})).a[1].b;`, "2"},

		// newer builtins
		{"object-keys", `var result = Object.keys({a:1, b:2, c:3}).join("");`, "abc"},
		{"object-keys-array", `var result = Object.keys([9, 8]).join(",");`, "0,1"},
		{"object-keys-empty", `var result = Object.keys({}).length;`, "0"},
		{"array-isarray-true", `var result = Array.isArray([1]);`, "true"},
		{"array-isarray-false", `var result = Array.isArray({length: 1}) + "" + Array.isArray("s");`, "falsefalse"},
		{"tofixed", `var result = (3.14159).toFixed(2);`, "3.14"},
		{"tofixed-zero", `var result = (2.5).toFixed(0);`, "3"},
		{"tofixed-pads", `var result = (1).toFixed(3);`, "1.000"},
		{"tofixed-var", `var pi = 3.14159; var result = pi.toFixed(1);`, "3.1"},

		// ASI and statement forms
		{"asi-two-lines", "var a = 1\nvar b = 2\nvar result = a + b", "3"},
		{"block-expression", `{ var x = 5; } var result = x;`, "5"},
		{"empty-statements", `;;; var result = "ok";;;`, "ok"},
		{"multi-decl", `var a = 1, b = 2, c = a + b; var result = c;`, "3"},

		// labeled statements
		{"labeled-break", `var s = "";
outer: for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 3; j++) {
    if (i == 1 && j == 1) break outer;
    s += "" + i + j;
  }
}
var result = s;`, "000102" + "10"},
		{"labeled-continue", `var s = "";
outer: for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 3; j++) {
    if (j == 1) continue outer;
    s += "" + i + j;
  }
}
var result = s;`, "001020"},
		{"label-while", `var n = 0;
loop: while (true) { n++; if (n > 4) break loop; }
var result = n;`, "5"},
		{"label-forin", `var s = "";
outer: for (var k in {a:1, b:2, c:3}) {
  if (k == "b") continue outer;
  s += k;
}
var result = s;`, "ac"},
		{"unlabeled-break-inner-only", `var s = "";
for (var i = 0; i < 2; i++) { for (var j = 0; j < 9; j++) { if (j == 1) break; s += "" + i + j; } }
var result = s;`, "0010"},

		// call / apply / bind
		{"fn-call-this", `function who() { return this.tag; } var result = who.call({tag: "A"});`, "A"},
		{"fn-call-args", `function add(a, b) { return a + b; } var result = add.call(null, 3, 4);`, "7"},
		{"fn-apply", `function add(a, b, c) { return a + b + c; } var result = add.apply(null, [1, 2, 3]);`, "6"},
		{"fn-bind-this", `function who() { return this.tag; } var b = who.bind({tag: "B"}); var result = b();`, "B"},
		{"fn-bind-partial", `function add(a, b) { return a + b; } var inc = add.bind(null, 1); var result = inc(41);`, "42"},
		{"fn-name", `function named() {} var result = named.name;`, "named"},
		{"fn-length", `function three(a, b, c) {} var result = three.length;`, "3"},

		// update/compound corner cases
		{"postfix-in-expr", `var i = 5; var result = i++ + i;`, "11"},
		{"prefix-in-expr", `var i = 5; var result = ++i + i;`, "12"},
		{"compound-string", `var s = "a"; s += 1; var result = s;`, "a1"},
		{"chain-assign", `var a, b; a = b = 7; var result = a + b;`, "14"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			it := New(&serialCounter{}, nil)
			if err := it.Run(c.src, c.name); err != nil {
				t.Fatalf("run error: %v", err)
			}
			v, ok := it.LookupGlobal("result")
			if !ok {
				t.Fatal("result not set")
			}
			if got := v.ToString(); got != c.want {
				t.Errorf("got %q, want %q", got, c.want)
			}
		})
	}
}
