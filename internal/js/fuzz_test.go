package js

import (
	"strings"
	"testing"

	"webracer/internal/sitegen"
)

// FuzzParse: the parser must never panic or hang; when it accepts input,
// the resolved AST must print without panicking, and running it under a
// small step budget must return (a value or an error, never a crash).
//
//	go test -fuzz=FuzzParse ./internal/js
func FuzzParse(f *testing.F) {
	seeds := []string{
		"var x = 1;",
		"function f(a, b) { return a + b; } f(1, 2);",
		"for (var i = 0; i < 3; i++) { s += i; }",
		"outer: while (1) { break outer; }",
		"try { throw {a: [1, 'x', null]}; } catch (e) { } finally { }",
		"var o = {k: function() { return this; }};",
		"x = a ? b : c, d;",
		"switch (x) { case 1: break; default: }",
		"a.b.c[d](e)(f)++;",
		"!function(){}();",
		"var s = 'it\\'s';",
		"0x1f + 1e3 + .5;",
		"a<<=1; b>>>=2;",
		"delete a[b]; void 0; typeof q;",
		"((((((((((1))))))))));",
		"var é = 1;", // non-ASCII identifier start: must not panic
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = PrintAST(prog)
		it := New(&serialCounter{}, nil)
		it.MaxSteps = 50_000
		_ = it.RunProgram(prog, "fuzz")
	})
}

// FuzzLex: the lexer alone must terminate on anything.
func FuzzLex(f *testing.F) {
	f.Add("var x = 'unterminated")
	f.Add("/* unterminated")
	f.Add("0x")
	f.Add(strings.Repeat("(", 1000))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		toks, err := Lex(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("lexer returned no tokens and no error")
		}
	})
}

// scriptsOf extracts every piece of JavaScript a generated site carries:
// external .js resources and the bodies of inline <script> elements.
func scriptsOf(resources map[string]string) []string {
	var out []string
	for url, body := range resources {
		if strings.HasSuffix(url, ".js") {
			out = append(out, body)
			continue
		}
		if !strings.HasSuffix(url, ".html") {
			continue
		}
		rest := body
		for {
			i := strings.Index(rest, "<script")
			if i < 0 {
				break
			}
			rest = rest[i:]
			open := strings.IndexByte(rest, '>')
			if open < 0 {
				break
			}
			rest = rest[open+1:]
			end := strings.Index(rest, "</script>")
			if end < 0 {
				break
			}
			if src := strings.TrimSpace(rest[:end]); src != "" {
				out = append(out, src)
			}
			rest = rest[end+len("</script>"):]
		}
	}
	return out
}

// FuzzJSParse is the corpus-seeded sibling of FuzzParse: its seeds are
// the generator's actual script output (external .js resources plus
// inline <script> bodies), so mutations start from the detector's real
// workload — handler registration, DOM lookups, timers, XHR. Invariants
// as in FuzzParse: parse never panics or hangs; accepted programs print
// and run under a step budget without crashing the interpreter.
//
//	go test -fuzz=FuzzJSParse ./internal/js
func FuzzJSParse(f *testing.F) {
	for i := 0; i < 8; i++ {
		site := sitegen.Generate(sitegen.SpecFor(1, i))
		for _, src := range scriptsOf(site.Resources) {
			f.Add(src)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 16<<10 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = PrintAST(prog)
		it := New(&serialCounter{}, nil)
		it.MaxSteps = 50_000
		_ = it.RunProgram(prog, "fuzz")
	})
}

// TestScriptSeedsNonEmpty guards the seed extraction: a generator change
// that silences the corpus would quietly gut both fuzz targets.
func TestScriptSeedsNonEmpty(t *testing.T) {
	n := 0
	for i := 0; i < 8; i++ {
		n += len(scriptsOf(sitegen.Generate(sitegen.SpecFor(1, i)).Resources))
	}
	if n < 8 {
		t.Fatalf("extracted only %d script seeds from 8 corpus sites", n)
	}
}
