package js

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic or hang; when it accepts input,
// the resolved AST must print without panicking, and running it under a
// small step budget must return (a value or an error, never a crash).
//
//	go test -fuzz=FuzzParse ./internal/js
func FuzzParse(f *testing.F) {
	seeds := []string{
		"var x = 1;",
		"function f(a, b) { return a + b; } f(1, 2);",
		"for (var i = 0; i < 3; i++) { s += i; }",
		"outer: while (1) { break outer; }",
		"try { throw {a: [1, 'x', null]}; } catch (e) { } finally { }",
		"var o = {k: function() { return this; }};",
		"x = a ? b : c, d;",
		"switch (x) { case 1: break; default: }",
		"a.b.c[d](e)(f)++;",
		"!function(){}();",
		"var s = 'it\\'s';",
		"0x1f + 1e3 + .5;",
		"a<<=1; b>>>=2;",
		"delete a[b]; void 0; typeof q;",
		"((((((((((1))))))))));",
		"var é = 1;", // non-ASCII identifier start: must not panic
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = PrintAST(prog)
		it := New(&serialCounter{}, nil)
		it.MaxSteps = 50_000
		_ = it.RunProgram(prog, "fuzz")
	})
}

// FuzzLex: the lexer alone must terminate on anything.
func FuzzLex(f *testing.F) {
	f.Add("var x = 'unterminated")
	f.Add("/* unterminated")
	f.Add("0x")
	f.Add(strings.Repeat("(", 1000))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		toks, err := Lex(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("lexer returned no tokens and no error")
		}
	})
}
