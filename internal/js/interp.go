package js

import (
	"fmt"

	"webracer/internal/mem"
)

// Serials allocates object/closure/binding identities; the browser shares
// one allocator between the DOM and the interpreter so logical memory
// locations never collide.
type Serials interface{ Next() uint64 }

// Hooks receives the shared-memory accesses of §4.1 as they happen. The
// browser routes them to the race detector stamped with the current
// operation.
type Hooks interface {
	Access(kind mem.AccessKind, loc mem.Loc, ctx mem.Context, desc string)
}

// Error is a JavaScript runtime error: a ReferenceError, TypeError,
// RangeError, InternalError (step budget exhausted) or a thrown value.
// Per §2.3, the browser treats an Error escaping a script as a hidden
// crash: the current operation terminates, its earlier heap mutations
// persist, and the page carries on.
type Error struct {
	Kind      string
	Msg       string
	Thrown    Value
	HasThrown bool
	Line      int
}

func (e *Error) Error() string {
	if e.HasThrown {
		return fmt.Sprintf("js: uncaught %s (line %d)", e.Thrown.ToString(), e.Line)
	}
	return fmt.Sprintf("js: %s: %s (line %d)", e.Kind, e.Msg, e.Line)
}

func typeError(line int, format string, args ...any) *Error {
	return &Error{Kind: "TypeError", Msg: fmt.Sprintf(format, args...), Line: line}
}

func refError(line int, name string) *Error {
	return &Error{Kind: "ReferenceError", Msg: name + " is not defined", Line: line}
}

// DefaultMaxSteps bounds a single script execution; a runaway loop becomes
// an InternalError rather than hanging the simulated browser.
const DefaultMaxSteps = 20_000_000

// Interp evaluates scripts against one global scope (one window).
type Interp struct {
	// GlobalThis is the value of `this` at top level (the window object).
	GlobalThis Value
	// MaxSteps bounds evaluation steps per Run/CallFunction entry.
	MaxSteps int
	// Rand supplies Math.random; the browser seeds it for determinism.
	Rand func() float64
	// Now supplies Date.now in milliseconds (virtual time).
	Now func() float64

	global  *Env
	serials Serials
	hooks   Hooks
	steps   int
	total   int // steps across all Run/CallFunction entries (telemetry)
	depth   int
}

// maxDepth bounds recursion (JS stack overflow becomes RangeError).
const maxDepth = 2000

// New creates an interpreter with a fresh global scope and the standard
// builtins (Math, parseInt, parseFloat, isNaN, String, Number, Boolean,
// Array). The browser adds window/document on top.
func New(serials Serials, hooks Hooks) *Interp {
	it := &Interp{
		MaxSteps: DefaultMaxSteps,
		serials:  serials,
		hooks:    hooks,
		Rand:     newLCG(1),
		Now:      func() float64 { return 0 },
	}
	it.global = &Env{vars: make(map[string]*Binding), GlobalSerial: serials.Next()}
	it.installBuiltins()
	return it
}

// newLCG returns a small deterministic PRNG for Math.random.
func newLCG(seed uint64) func() float64 {
	s := seed*6364136223846793005 + 1442695040888963407
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
}

// GlobalEnv exposes the global scope (the browser defines window globals).
func (it *Interp) GlobalEnv() *Env { return it.global }

// DefineGlobal installs a global binding without instrumentation (host
// setup, not page activity).
func (it *Interp) DefineGlobal(name string, v Value) {
	b := it.global.Declare(name, true, 0)
	b.Value = v
}

// LookupGlobal reads a global binding without instrumentation.
func (it *Interp) LookupGlobal(name string) (Value, bool) {
	if b, ok := it.global.vars[name]; ok {
		return b.Value, true
	}
	return Value{}, false
}

// NewObject allocates a plain object.
func (it *Interp) NewObject(class string) *Object {
	return &Object{Serial: it.serials.Next(), Class: class, Props: map[string]Value{}}
}

// NewArray allocates an array object with the given elements.
func (it *Interp) NewArray(elems ...Value) *Object {
	o := it.NewObject("Array")
	o.IsArray = true
	o.Elems = append(o.Elems, elems...)
	return o
}

// NativeFunc wraps a Go function as a callable value.
func (it *Interp) NativeFunc(name string, fn NativeFn) Value {
	o := it.NewObject("Function")
	o.Fn = &Closure{Serial: o.Serial, Name: name, Native: fn, Self: o}
	return ObjectVal(o)
}

// NewClosure builds a function object for a FuncLit closing over env.
func (it *Interp) NewClosure(fn *FuncLit, env *Env) Value {
	o := it.NewObject("Function")
	o.Fn = &Closure{Serial: o.Serial, Name: fn.Name, Decl: fn, Env: env, Self: o}
	return ObjectVal(o)
}

// CompileFunction parses src as a function body with the given parameters
// (used for on-event attributes and string timer arguments) and returns
// the closure value, closed over the global scope.
func (it *Interp) CompileFunction(src string, params ...string) (Value, error) {
	var b []byte
	b = append(b, "function __h__("...)
	for i, p := range params {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p...)
	}
	b = append(b, "){"...)
	b = append(b, src...)
	b = append(b, '}')
	prog, err := Parse(string(b))
	if err != nil {
		return Undefined, err
	}
	decl, ok := prog.Body[0].(*FuncDeclStmt)
	if !ok {
		return Undefined, &SyntaxError{Line: 1, Msg: "internal: handler wrapper did not parse to a declaration"}
	}
	v := it.NewClosure(decl.Fn, it.global)
	v.Obj.Fn.Name = ""
	return v, nil
}

// Run parses and executes a script at top level. desc labels the script in
// access descriptions.
func (it *Interp) Run(src, desc string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return it.RunProgram(prog, desc)
}

// RunProgram executes an already-parsed script at top level.
func (it *Interp) RunProgram(prog *Program, desc string) error {
	it.total += it.steps
	it.steps = 0
	if err := it.hoistInto(prog, it.global); err != nil {
		return err
	}
	_, err := it.execStmts(prog.Body, it.global)
	return err
}

// CallFunction invokes a function value. The step budget is reset: the call
// is a fresh operation entry from the browser.
func (it *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	it.total += it.steps
	it.steps = 0
	if !fn.IsCallable() {
		return Undefined, typeError(0, "value is not a function")
	}
	return it.call(fn.Obj.Fn, this, args, 0)
}

// access forwards one instrumented access to the hooks.
func (it *Interp) access(kind mem.AccessKind, loc mem.Loc, ctx mem.Context, desc string) {
	if it.hooks != nil {
		it.hooks.Access(kind, loc, ctx, desc)
	}
}

// bindingLoc computes the logical location of a binding resolved in
// defEnv: globals key on the global scope serial, captured locals on the
// binding's own slot.
func bindingLoc(b *Binding, defEnv *Env, name string) mem.Loc {
	if defEnv.IsGlobal() {
		return mem.VarLoc(defEnv.GlobalSerial, name)
	}
	return mem.VarLoc(b.Slot, name)
}

func instrumented(b *Binding, defEnv *Env) bool { return defEnv.IsGlobal() || b.Shared }

// hoistInto declares the hoisted names of prog in env and performs the
// function-declaration writes of §4.1 in source order.
func (it *Interp) hoistInto(prog *Program, env *Env) error {
	for _, ref := range prog.Hoisted {
		it.declareRef(env, ref)
	}
	for _, fd := range prog.FuncDecls {
		fn := it.NewClosure(fd.Fn, env)
		b, defEnv := env.Lookup(fd.Name)
		if b == nil {
			b = it.declareRef(env, fd.Ref)
			defEnv = env
		}
		if instrumented(b, defEnv) {
			it.access(mem.Write, bindingLoc(b, defEnv, fd.Name), mem.CtxFuncDecl,
				"function "+fd.Name)
		}
		b.Value = fn
	}
	return nil
}

func (it *Interp) declareRef(env *Env, ref *VarRef) *Binding {
	slot := uint64(0)
	if ref.Captured && !env.IsGlobal() {
		slot = it.serials.Next()
	}
	return env.Declare(ref.Name, ref.Captured, slot)
}

// TotalSteps reports the evaluation steps performed over the
// interpreter's whole lifetime (all Run/CallFunction entries). The
// per-entry budget bookkeeping already maintains the count, so the
// telemetry layer reads it for free.
func (it *Interp) TotalSteps() int { return it.total + it.steps }

// step charges fuel and errors out when the budget is gone.
func (it *Interp) step(line int) error {
	it.steps++
	if it.steps > it.MaxSteps {
		return &Error{Kind: "InternalError", Msg: "step budget exhausted (infinite loop?)", Line: line}
	}
	return nil
}

// ---- statement execution ----

type ctrlKind uint8

const (
	ctrlNormal ctrlKind = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

type ctrl struct {
	kind  ctrlKind
	val   Value
	label string // break/continue target; empty for the innermost loop
}

// consumes reports whether a loop labeled `label` (empty for an unlabeled
// loop) absorbs this break/continue.
func (c ctrl) consumes(label string) bool { return c.label == "" || c.label == label }

func (it *Interp) execStmts(stmts []Stmt, env *Env) (ctrl, error) {
	for _, s := range stmts {
		c, err := it.execStmt(s, env)
		if err != nil || c.kind != ctrlNormal {
			return c, err
		}
	}
	return ctrl{}, nil
}

func (it *Interp) execStmt(s Stmt, env *Env) (ctrl, error) {
	if err := it.step(s.line()); err != nil {
		return ctrl{}, err
	}
	switch s := s.(type) {
	case *VarDecl:
		if s.Init == nil {
			return ctrl{}, nil
		}
		v, err := it.evalExpr(s.Init, env)
		if err != nil {
			return ctrl{}, err
		}
		return ctrl{}, it.assignIdent(s.Name, s.Ref, v, env, s.Line)
	case *FuncDeclStmt:
		return ctrl{}, nil // hoisted at entry
	case *ExprStmt:
		_, err := it.evalExpr(s.X, env)
		return ctrl{}, err
	case *BlockStmt:
		return it.execStmts(s.Body, env)
	case *IfStmt:
		cond, err := it.evalExpr(s.Cond, env)
		if err != nil {
			return ctrl{}, err
		}
		if cond.Truthy() {
			return it.execStmt(s.Then, env)
		}
		if s.Else != nil {
			return it.execStmt(s.Else, env)
		}
		return ctrl{}, nil
	case *WhileStmt:
		return it.execWhile(s, env)
	case *ForStmt:
		return it.execFor(s, env)
	case *ForInStmt:
		return it.execForIn(s, env)
	case *ReturnStmt:
		v := Undefined
		if s.X != nil {
			var err error
			v, err = it.evalExpr(s.X, env)
			if err != nil {
				return ctrl{}, err
			}
		}
		return ctrl{kind: ctrlReturn, val: v}, nil
	case *BreakStmt:
		return ctrl{kind: ctrlBreak, label: s.Label}, nil
	case *ContinueStmt:
		return ctrl{kind: ctrlContinue, label: s.Label}, nil
	case *LabeledStmt:
		return it.execLabeled(s, env)
	case *ThrowStmt:
		v, err := it.evalExpr(s.X, env)
		if err != nil {
			return ctrl{}, err
		}
		return ctrl{}, &Error{Kind: "throw", Thrown: v, HasThrown: true, Line: s.Line}
	case *TryStmt:
		return it.execTry(s, env)
	case *SwitchStmt:
		return it.execSwitch(s, env)
	case *EmptyStmt:
		return ctrl{}, nil
	default:
		return ctrl{}, typeError(s.line(), "unsupported statement %T", s)
	}
}

// execLabeled runs a labeled statement: the label is passed to the labeled
// loop so `break label` / `continue label` resolve to it. A label on a
// non-loop statement only supports `break label` (rare; handled by
// absorbing the matching break here).
func (it *Interp) execLabeled(s *LabeledStmt, env *Env) (ctrl, error) {
	var c ctrl
	var err error
	switch inner := s.Stmt.(type) {
	case *WhileStmt:
		c, err = it.execWhileL(inner, env, s.Label)
	case *ForStmt:
		c, err = it.execForL(inner, env, s.Label)
	case *ForInStmt:
		c, err = it.execForInL(inner, env, s.Label)
	default:
		c, err = it.execStmt(s.Stmt, env)
	}
	if err == nil && c.kind == ctrlBreak && c.label == s.Label {
		return ctrl{}, nil
	}
	return c, err
}

func (it *Interp) execWhile(s *WhileStmt, env *Env) (ctrl, error) {
	return it.execWhileL(s, env, "")
}

func (it *Interp) execWhileL(s *WhileStmt, env *Env, label string) (ctrl, error) {
	first := s.DoWhile
	for {
		if !first {
			cond, err := it.evalExpr(s.Cond, env)
			if err != nil {
				return ctrl{}, err
			}
			if !cond.Truthy() {
				return ctrl{}, nil
			}
		}
		first = false
		c, err := it.execStmt(s.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		switch c.kind {
		case ctrlBreak:
			if c.consumes(label) {
				return ctrl{}, nil
			}
			return c, nil
		case ctrlContinue:
			if !c.consumes(label) {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
		if err := it.step(s.Line); err != nil {
			return ctrl{}, err
		}
	}
}

func (it *Interp) execFor(s *ForStmt, env *Env) (ctrl, error) {
	return it.execForL(s, env, "")
}

func (it *Interp) execForL(s *ForStmt, env *Env, label string) (ctrl, error) {
	if s.Init != nil {
		if c, err := it.execStmt(s.Init, env); err != nil || c.kind != ctrlNormal {
			return c, err
		}
	}
	for {
		if s.Cond != nil {
			cond, err := it.evalExpr(s.Cond, env)
			if err != nil {
				return ctrl{}, err
			}
			if !cond.Truthy() {
				return ctrl{}, nil
			}
		}
		c, err := it.execStmt(s.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		switch c.kind {
		case ctrlBreak:
			if c.consumes(label) {
				return ctrl{}, nil
			}
			return c, nil
		case ctrlContinue:
			if !c.consumes(label) {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
		if s.Post != nil {
			if _, err := it.evalExpr(s.Post, env); err != nil {
				return ctrl{}, err
			}
		}
		if err := it.step(s.Line); err != nil {
			return ctrl{}, err
		}
	}
}

func (it *Interp) execForIn(s *ForInStmt, env *Env) (ctrl, error) {
	return it.execForInL(s, env, "")
}

func (it *Interp) execForInL(s *ForInStmt, env *Env, label string) (ctrl, error) {
	objV, err := it.evalExpr(s.X, env)
	if err != nil {
		return ctrl{}, err
	}
	var keys []string
	if objV.Kind == KindObject {
		o := objV.Obj
		if o.IsArray {
			for i := range o.Elems {
				keys = append(keys, NumToString(float64(i)))
			}
		} else {
			keys = append(keys, o.Keys()...)
		}
	}
	for _, k := range keys {
		if err := it.assignIdent(s.Name, s.Ref, Str(k), env, s.Line); err != nil {
			return ctrl{}, err
		}
		c, err := it.execStmt(s.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		switch c.kind {
		case ctrlBreak:
			if c.consumes(label) {
				return ctrl{}, nil
			}
			return c, nil
		case ctrlContinue:
			if !c.consumes(label) {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
	}
	return ctrl{}, nil
}

func (it *Interp) execTry(s *TryStmt, env *Env) (ctrl, error) {
	c, err := it.execStmts(s.Try.Body, env)
	if err != nil && s.Catch != nil {
		var jsErr *Error
		if e, ok := err.(*Error); ok {
			jsErr = e
		} else {
			return ctrl{}, err
		}
		cenv := NewEnv(env)
		slot := uint64(0)
		if s.CatchRef != nil && s.CatchRef.Captured {
			slot = it.serials.Next()
		}
		b := cenv.Declare(s.CatchVar, s.CatchRef != nil && s.CatchRef.Captured, slot)
		b.Value = errorValue(it, jsErr)
		c, err = it.execStmts(s.Catch.Body, cenv)
	}
	if s.Finally != nil {
		fc, ferr := it.execStmts(s.Finally.Body, env)
		if ferr != nil {
			return ctrl{}, ferr
		}
		if fc.kind != ctrlNormal {
			return fc, nil
		}
	}
	return c, err
}

// errorValue converts a runtime error to the value seen by catch.
func errorValue(it *Interp, e *Error) Value {
	if e.HasThrown {
		return e.Thrown
	}
	o := it.NewObject("Error")
	o.SetProp("name", Str(e.Kind))
	o.SetProp("message", Str(e.Msg))
	o.SetProp("__str__", Str(e.Kind+": "+e.Msg))
	return ObjectVal(o)
}

func (it *Interp) execSwitch(s *SwitchStmt, env *Env) (ctrl, error) {
	v, err := it.evalExpr(s.X, env)
	if err != nil {
		return ctrl{}, err
	}
	matched := -1
	for i, c := range s.Cases {
		if c.Test == nil {
			continue
		}
		tv, err := it.evalExpr(c.Test, env)
		if err != nil {
			return ctrl{}, err
		}
		if StrictEquals(v, tv) {
			matched = i
			break
		}
	}
	if matched < 0 {
		for i, c := range s.Cases {
			if c.Test == nil {
				matched = i
				break
			}
		}
	}
	if matched < 0 {
		return ctrl{}, nil
	}
	for _, c := range s.Cases[matched:] {
		cc, err := it.execStmts(c.Body, env)
		if err != nil {
			return ctrl{}, err
		}
		switch cc.kind {
		case ctrlBreak:
			return ctrl{}, nil
		case ctrlReturn, ctrlContinue:
			return cc, nil
		}
	}
	return ctrl{}, nil
}
