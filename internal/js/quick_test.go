package js

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// evalNum runs a tiny script computing `result` and returns it; it fails
// the property on any interpreter error.
func evalNumQ(t *testing.T, src string) (float64, bool) {
	t.Helper()
	it := New(&serialCounter{}, nil)
	if err := it.Run(src, "quick"); err != nil {
		return 0, false
	}
	v, ok := it.LookupGlobal("result")
	if !ok {
		return 0, false
	}
	return v.ToNumber(), true
}

func sameNum(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// TestQuickArithmetic: the interpreter's arithmetic agrees with Go's
// float64 semantics on random operands.
func TestQuickArithmetic(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true // literal rendering of infinities isn't supported
		}
		src := fmt.Sprintf("var result = (%v) + (%v) * (%v) - (%v);", a, b, a, b)
		got, ok := evalNumQ(t, src)
		return ok && sameNum(got, a+b*a-b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickComparisonTotality: for random finite numbers exactly one of
// <, ==, > holds.
func TestQuickComparisonTotality(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		src := fmt.Sprintf(`
var lt = (%v) < (%v), eq = (%v) == (%v), gt = (%v) > (%v);
var result = (lt ? 1 : 0) + (eq ? 1 : 0) + (gt ? 1 : 0);`, a, b, a, b, a, b)
		got, ok := evalNumQ(t, src)
		return ok && got == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickStringConcatLength: |a + b| == |a| + |b| for random safe strings.
func TestQuickStringConcatLength(t *testing.T) {
	f := func(a, b string) bool {
		a, b = sanitize(a), sanitize(b)
		src := fmt.Sprintf(`var result = (%q + %q).length;`, a, b)
		got, ok := evalNumQ(t, src)
		return ok && int(got) == len(a)+len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps random strings lexable by the JS string literal syntax
// (printable ASCII, no quotes/backslashes — %q escapes the rest).
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= ' ' && r < 127 && r != '"' && r != '\\' && r != '\'' {
			b.WriteRune(r)
		}
	}
	if b.Len() > 40 {
		return b.String()[:40]
	}
	return b.String()
}

// TestQuickArrayPushLength: pushing n elements yields length n.
func TestQuickArrayPushLength(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n % 50)
		src := fmt.Sprintf(`
var a = [];
for (var i = 0; i < %d; i++) { a.push(i); }
var result = a.length;`, count)
		got, ok := evalNumQ(t, src)
		return ok && int(got) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortIsSorted: Array.sort with a numeric comparator yields a
// sorted permutation.
func TestQuickSortIsSorted(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) > 30 {
			vals = vals[:30]
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%d", v)
		}
		src := fmt.Sprintf(`
var a = [%s];
a.sort(function(x, y) { return x - y; });
var ok = 1;
for (var i = 1; i < a.length; i++) { if (a[i-1] > a[i]) ok = 0; }
var result = ok;`, strings.Join(parts, ","))
		got, okRun := evalNumQ(t, src)
		return okRun && got == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJSONRoundTrip: stringify ∘ parse is identity on string maps.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(k1, v1, v2 string) bool {
		k1, v1, v2 = sanitize(k1), sanitize(v1), sanitize(v2)
		if k1 == "" || k1 == "other" {
			k1 = "key"
		}
		src := fmt.Sprintf(`
var o = {%q: %q, other: %q};
var rt = JSON.parse(JSON.stringify(o));
var result = (rt[%q] === %q && rt.other === %q) ? 1 : 0;`, k1, v1, v2, k1, v1, v2)
		got, ok := evalNumQ(t, src)
		return ok && got == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickURIRoundTrip: decodeURIComponent(encodeURIComponent(s)) == s.
func TestQuickURIRoundTrip(t *testing.T) {
	f := func(s string) bool {
		s = sanitize(s)
		src := fmt.Sprintf(`var result = decodeURIComponent(encodeURIComponent(%q)) === %q ? 1 : 0;`, s, s)
		got, ok := evalNumQ(t, src)
		return ok && got == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// ---- targeted tests for the newer builtins ----

func TestArrayHigherOrder(t *testing.T) {
	wantNum(t, `var result = [1,2,3].map(function(x){ return x*2; })[2];`, 6)
	wantNum(t, `var result = [1,2,3,4].filter(function(x){ return x % 2 == 0; }).length;`, 2)
	wantStr(t, `var result = [3,1,2].sort().join("");`, "123")
	wantStr(t, `var result = [10,9,30].sort(function(a,b){return a-b;}).join(",");`, "9,10,30")
	wantStr(t, `var result = [1,2,3].reverse().join("");`, "321")
	wantStr(t, `var a=[1,2,3,4,5]; a.splice(1,2); var result = a.join("");`, "145")
	wantStr(t, `var a=[1,4]; a.splice(1,0,2,3); var result = a.join("");`, "1234")
	wantStr(t, `var a=[1,2,3]; var r=a.splice(1); var result = r.join("")+"|"+a.join("");`, "23|1")
	wantNum(t, `var a=[2,3]; a.unshift(0,1); var result = a.length * 10 + a[0];`, 40)
}

func TestStringFromCharCode(t *testing.T) {
	wantStr(t, `var result = String.fromCharCode(72, 105);`, "Hi")
}

func TestURIComponent(t *testing.T) {
	wantStr(t, `var result = encodeURIComponent("a b&c");`, "a%20b%26c")
	wantStr(t, `var result = decodeURIComponent("a%20b%26c");`, "a b&c")
	wantStr(t, `var result = "";
try { decodeURIComponent("%zz"); } catch (e) { result = e.name; }`, "URIError")
}
