package js

import (
	"math"
	"strconv"
	"strings"

	"webracer/internal/mem"
)

// evalExpr evaluates one expression.
func (it *Interp) evalExpr(e Expr, env *Env) (Value, error) {
	if err := it.step(e.line()); err != nil {
		return Undefined, err
	}
	switch e := e.(type) {
	case *NumLit:
		return Number(e.Value), nil
	case *StrLit:
		return Str(e.Value), nil
	case *BoolLit:
		return Boolean(e.Value), nil
	case *NullLit:
		return Null, nil
	case *UndefinedLit:
		return Undefined, nil
	case *ThisLit:
		return it.lookupThis(env), nil
	case *Ident:
		return it.readIdent(e, env, mem.CtxPlain)
	case *FuncLit:
		return it.NewClosure(e, env), nil
	case *ArrayLit:
		arr := it.NewArray()
		for _, el := range e.Elems {
			v, err := it.evalExpr(el, env)
			if err != nil {
				return Undefined, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return ObjectVal(arr), nil
	case *ObjectLit:
		o := it.NewObject("Object")
		for i, k := range e.Keys {
			v, err := it.evalExpr(e.Vals[i], env)
			if err != nil {
				return Undefined, err
			}
			o.SetProp(k, v)
		}
		return ObjectVal(o), nil
	case *MemberExpr:
		x, err := it.evalExpr(e.X, env)
		if err != nil {
			return Undefined, err
		}
		return it.getMember(x, e.Name, e.Line)
	case *IndexExpr:
		x, err := it.evalExpr(e.X, env)
		if err != nil {
			return Undefined, err
		}
		idx, err := it.evalExpr(e.Idx, env)
		if err != nil {
			return Undefined, err
		}
		return it.getMember(x, indexName(idx), e.Line)
	case *CallExpr:
		return it.evalCall(e, env)
	case *AssignExpr:
		return it.evalAssign(e, env)
	case *UpdateExpr:
		return it.evalUpdate(e, env)
	case *UnaryExpr:
		return it.evalUnary(e, env)
	case *BinaryExpr:
		l, err := it.evalExpr(e.L, env)
		if err != nil {
			return Undefined, err
		}
		r, err := it.evalExpr(e.R, env)
		if err != nil {
			return Undefined, err
		}
		return it.binaryOp(e.Op, l, r, e.Line)
	case *LogicalExpr:
		l, err := it.evalExpr(e.L, env)
		if err != nil {
			return Undefined, err
		}
		if e.Op == "&&" {
			if !l.Truthy() {
				return l, nil
			}
		} else if l.Truthy() {
			return l, nil
		}
		return it.evalExpr(e.R, env)
	case *CondExpr:
		c, err := it.evalExpr(e.Cond, env)
		if err != nil {
			return Undefined, err
		}
		if c.Truthy() {
			return it.evalExpr(e.Then, env)
		}
		return it.evalExpr(e.Else, env)
	case *SeqExpr:
		var v Value
		var err error
		for _, x := range e.Exprs {
			v, err = it.evalExpr(x, env)
			if err != nil {
				return Undefined, err
			}
		}
		return v, nil
	default:
		return Undefined, typeError(e.line(), "unsupported expression %T", e)
	}
}

func (it *Interp) thisOrGlobal(this Value) Value {
	if this.IsNullish() {
		return it.GlobalThis
	}
	return this
}

// lookupThis finds the receiver of the innermost function activation.
func (it *Interp) lookupThis(env *Env) Value {
	for e := env; e != nil; e = e.parent {
		if e.hasThis {
			return e.thisVal
		}
	}
	return it.GlobalThis
}

func indexName(idx Value) string {
	if idx.Kind == KindString {
		return idx.Str
	}
	return idx.ToString()
}

// ---- variables ----

// readIdent reads a variable, instrumenting shared bindings. ctx lets a
// call site mark the read as a function invocation (CtxFuncCall, §2.4).
func (it *Interp) readIdent(id *Ident, env *Env, ctx mem.Context) (Value, error) {
	b, defEnv := env.Lookup(id.Name)
	if b == nil {
		// Undeclared: a global read. Instrument before throwing — the
		// failed lookup is exactly the racing read of a function race
		// that lost (Fig. 4).
		it.access(mem.Read, mem.VarLoc(it.global.GlobalSerial, id.Name), ctx, id.Name)
		return Undefined, refError(id.Line, id.Name)
	}
	if instrumented(b, defEnv) {
		it.access(mem.Read, bindingLoc(b, defEnv, id.Name), ctx, id.Name)
	}
	return b.Value, nil
}

// assignIdent writes a variable (var initializer, for-in binding or plain
// assignment). Assigning an undeclared name creates a global.
func (it *Interp) assignIdent(name string, ref *VarRef, v Value, env *Env, line int) error {
	b, defEnv := env.Lookup(name)
	if b == nil {
		defEnv = env.Global()
		b = defEnv.Declare(name, true, 0)
	}
	if instrumented(b, defEnv) {
		ctx := mem.CtxPlain
		if v.IsCallable() {
			// Writing a function value: distinguishable for reports
			// but not a declaration; keep CtxPlain per §4.1 (only
			// declarations are hoisted writes).
			ctx = mem.CtxPlain
		}
		it.access(mem.Write, bindingLoc(b, defEnv, name), ctx, name)
	}
	_ = ref
	b.Value = v
	_ = line
	return nil
}

// ---- member access ----

// getMember reads x.name with instrumentation and host dispatch.
func (it *Interp) getMember(x Value, name string, line int) (Value, error) {
	switch x.Kind {
	case KindUndefined, KindNull:
		return Undefined, typeError(line, "cannot read property %q of %s", name, x.ToString())
	case KindString:
		return it.stringMember(x.Str, name, line)
	case KindNumber, KindBool:
		v := x
		switch name {
		case "toString":
			return it.NativeFunc("toString", func(_ *Interp, _ Value, _ []Value) (Value, error) {
				return Str(v.ToString()), nil
			}), nil
		case "toFixed":
			return it.NativeFunc("toFixed", func(_ *Interp, _ Value, args []Value) (Value, error) {
				digits := 0
				if len(args) > 0 {
					digits = int(args[0].ToNumber())
				}
				if digits < 0 || digits > 100 {
					return Undefined, &Error{Kind: "RangeError", Msg: "toFixed digits out of range", Line: line}
				}
				return Str(toFixed(v.ToNumber(), digits)), nil
			}), nil
		}
		return Undefined, nil
	}
	o := x.Obj
	if o.Host != nil {
		v, handled, err := o.Host.HostGet(it, name)
		if handled || err != nil {
			return v, err
		}
	}
	if o.IsArray {
		if v, handled := it.arrayMember(o, name, line); handled {
			return v, nil
		}
	}
	if o.Fn != nil {
		if v, handled := it.functionMember(o, name, line); handled {
			return v, nil
		}
	}
	it.access(mem.Read, mem.VarLoc(o.Serial, name), mem.CtxPlain, "."+name)
	v, _ := o.GetProp(name)
	return v, nil
}

// toFixed matches JavaScript's Number.prototype.toFixed for the common
// range: ties round away from zero (2.5.toFixed(0) is "3"), unlike Go's
// half-even formatter.
func toFixed(v float64, digits int) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) || math.Abs(v) >= 1e21 {
		return NumToString(v)
	}
	shift := math.Pow(10, float64(digits))
	scaled := v * shift
	var rounded float64
	if scaled >= 0 {
		rounded = math.Floor(scaled + 0.5)
	} else {
		rounded = math.Ceil(scaled - 0.5)
	}
	return strconv.FormatFloat(rounded/shift, 'f', digits, 64)
}

// functionMember implements Function.prototype.call/apply/bind for function
// objects (only when the page has not shadowed them with own properties).
func (it *Interp) functionMember(o *Object, name string, line int) (Value, bool) {
	if _, shadowed := o.GetProp(name); shadowed {
		return Undefined, false
	}
	fn := o.Fn
	switch name {
	case "call":
		return it.NativeFunc("call", func(it *Interp, _ Value, args []Value) (Value, error) {
			this := Undefined
			if len(args) > 0 {
				this = args[0]
				args = args[1:]
			}
			return it.call(fn, this, args, line)
		}), true
	case "apply":
		return it.NativeFunc("apply", func(it *Interp, _ Value, args []Value) (Value, error) {
			this := Undefined
			var rest []Value
			if len(args) > 0 {
				this = args[0]
			}
			if len(args) > 1 && args[1].Kind == KindObject && args[1].Obj.IsArray {
				rest = args[1].Obj.Elems
			}
			return it.call(fn, this, rest, line)
		}), true
	case "bind":
		return it.NativeFunc("bind", func(it *Interp, _ Value, args []Value) (Value, error) {
			boundThis := Undefined
			if len(args) > 0 {
				boundThis = args[0]
			}
			bound := append([]Value(nil), args[1:]...)
			return it.NativeFunc(fn.Name+" (bound)", func(it *Interp, _ Value, callArgs []Value) (Value, error) {
				return it.call(fn, boundThis, append(append([]Value(nil), bound...), callArgs...), line)
			}), nil
		}), true
	case "name":
		return Str(fn.Name), true
	case "length":
		if fn.Decl != nil {
			return Number(float64(len(fn.Decl.Params))), true
		}
		return Number(0), true
	default:
		return Undefined, false
	}
}

// setMember writes x.name with instrumentation and host dispatch.
func (it *Interp) setMember(x Value, name string, v Value, line int) error {
	switch x.Kind {
	case KindUndefined, KindNull:
		return typeError(line, "cannot set property %q of %s", name, x.ToString())
	case KindString, KindNumber, KindBool:
		return nil // silently ignored, as in sloppy-mode JS
	}
	o := x.Obj
	if o.Host != nil {
		handled, err := o.Host.HostSet(it, name, v)
		if handled || err != nil {
			return err
		}
	}
	if o.IsArray {
		if i, ok := arrayIndex(name); ok {
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined)
			}
			it.access(mem.Write, mem.VarLoc(o.Serial, name), mem.CtxPlain, "[i]")
			o.Elems[i] = v
			return nil
		}
		if name == "length" {
			n := int(v.ToNumber())
			if n < 0 {
				n = 0
			}
			for len(o.Elems) > n {
				o.Elems = o.Elems[:len(o.Elems)-1]
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined)
			}
			return nil
		}
	}
	it.access(mem.Write, mem.VarLoc(o.Serial, name), mem.CtxPlain, "."+name)
	o.SetProp(name, v)
	return nil
}

func arrayIndex(name string) (int, bool) {
	if name == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

func (it *Interp) arrayMember(o *Object, name string, line int) (Value, bool) {
	if i, ok := arrayIndex(name); ok {
		it.access(mem.Read, mem.VarLoc(o.Serial, name), mem.CtxPlain, "[i]")
		if i < len(o.Elems) {
			return o.Elems[i], true
		}
		return Undefined, true
	}
	switch name {
	case "length":
		return Number(float64(len(o.Elems))), true
	case "push":
		return it.NativeFunc("push", func(it *Interp, this Value, args []Value) (Value, error) {
			for i := range args {
				it.access(mem.Write, mem.VarLoc(o.Serial, NumToString(float64(len(o.Elems)+i))), mem.CtxPlain, "push")
			}
			o.Elems = append(o.Elems, args...)
			return Number(float64(len(o.Elems))), nil
		}), true
	case "pop":
		return it.NativeFunc("pop", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			last := o.Elems[len(o.Elems)-1]
			it.access(mem.Read, mem.VarLoc(o.Serial, NumToString(float64(len(o.Elems)-1))), mem.CtxPlain, "pop")
			o.Elems = o.Elems[:len(o.Elems)-1]
			return last, nil
		}), true
	case "shift":
		return it.NativeFunc("shift", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			first := o.Elems[0]
			o.Elems = o.Elems[1:]
			return first, nil
		}), true
	case "indexOf":
		return it.NativeFunc("indexOf", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			for i, e := range o.Elems {
				if StrictEquals(e, args[0]) {
					return Number(float64(i)), nil
				}
			}
			return Number(-1), nil
		}), true
	case "join":
		return it.NativeFunc("join", func(it *Interp, this Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].ToString()
			}
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if !e.IsNullish() {
					parts[i] = e.ToString()
				}
			}
			return Str(strings.Join(parts, sep)), nil
		}), true
	case "slice":
		return it.NativeFunc("slice", func(it *Interp, this Value, args []Value) (Value, error) {
			start, end := sliceBounds(len(o.Elems), args)
			return ObjectVal(it.NewArray(o.Elems[start:end]...)), nil
		}), true
	case "concat":
		return it.NativeFunc("concat", func(it *Interp, this Value, args []Value) (Value, error) {
			out := it.NewArray(o.Elems...)
			for _, a := range args {
				if a.Kind == KindObject && a.Obj.IsArray {
					out.Elems = append(out.Elems, a.Obj.Elems...)
				} else {
					out.Elems = append(out.Elems, a)
				}
			}
			return ObjectVal(out), nil
		}), true
	case "forEach":
		return it.NativeFunc("forEach", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 || !args[0].IsCallable() {
				return Undefined, typeError(line, "forEach requires a function")
			}
			for i, e := range o.Elems {
				if _, err := it.call(args[0].Obj.Fn, Undefined, []Value{e, Number(float64(i))}, line); err != nil {
					return Undefined, err
				}
			}
			return Undefined, nil
		}), true
	case "map":
		return it.NativeFunc("map", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 || !args[0].IsCallable() {
				return Undefined, typeError(line, "map requires a function")
			}
			out := it.NewArray()
			for i, e := range o.Elems {
				v, err := it.call(args[0].Obj.Fn, Undefined, []Value{e, Number(float64(i))}, line)
				if err != nil {
					return Undefined, err
				}
				out.Elems = append(out.Elems, v)
			}
			return ObjectVal(out), nil
		}), true
	case "filter":
		return it.NativeFunc("filter", func(it *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 || !args[0].IsCallable() {
				return Undefined, typeError(line, "filter requires a function")
			}
			out := it.NewArray()
			for i, e := range o.Elems {
				v, err := it.call(args[0].Obj.Fn, Undefined, []Value{e, Number(float64(i))}, line)
				if err != nil {
					return Undefined, err
				}
				if v.Truthy() {
					out.Elems = append(out.Elems, e)
				}
			}
			return ObjectVal(out), nil
		}), true
	case "reverse":
		return it.NativeFunc("reverse", func(it *Interp, this Value, args []Value) (Value, error) {
			for i, j := 0, len(o.Elems)-1; i < j; i, j = i+1, j-1 {
				o.Elems[i], o.Elems[j] = o.Elems[j], o.Elems[i]
			}
			return ObjectVal(o), nil
		}), true
	case "sort":
		return it.NativeFunc("sort", func(it *Interp, this Value, args []Value) (Value, error) {
			var sortErr error
			less := func(a, b Value) bool { return a.ToString() < b.ToString() }
			if len(args) > 0 && args[0].IsCallable() {
				cmp := args[0].Obj.Fn
				less = func(a, b Value) bool {
					if sortErr != nil {
						return false
					}
					v, err := it.call(cmp, Undefined, []Value{a, b}, line)
					if err != nil {
						sortErr = err
						return false
					}
					return v.ToNumber() < 0
				}
			}
			insertionSort(o.Elems, less)
			if sortErr != nil {
				return Undefined, sortErr
			}
			return ObjectVal(o), nil
		}), true
	case "splice":
		return it.NativeFunc("splice", func(it *Interp, this Value, args []Value) (Value, error) {
			start := 0
			if len(args) > 0 {
				start = clampIndex(int(args[0].ToNumber()), len(o.Elems))
			}
			count := len(o.Elems) - start
			if len(args) > 1 {
				count = int(args[1].ToNumber())
				if count < 0 {
					count = 0
				}
				if start+count > len(o.Elems) {
					count = len(o.Elems) - start
				}
			}
			removed := it.NewArray(o.Elems[start : start+count]...)
			tail := append([]Value{}, o.Elems[start+count:]...)
			o.Elems = o.Elems[:start]
			if len(args) > 2 {
				o.Elems = append(o.Elems, args[2:]...)
			}
			o.Elems = append(o.Elems, tail...)
			return ObjectVal(removed), nil
		}), true
	case "unshift":
		return it.NativeFunc("unshift", func(it *Interp, this Value, args []Value) (Value, error) {
			o.Elems = append(append([]Value{}, args...), o.Elems...)
			return Number(float64(len(o.Elems))), nil
		}), true
	}
	return Undefined, false
}

// insertionSort is a small stable sort; comparator errors abort via the
// captured sortErr (JS sort order with a throwing comparator is undefined
// anyway).
func insertionSort(a []Value, less func(x, y Value) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sliceBounds(n int, args []Value) (int, int) {
	start, end := 0, n
	if len(args) > 0 {
		start = clampIndex(int(args[0].ToNumber()), n)
	}
	if len(args) > 1 {
		end = clampIndex(int(args[1].ToNumber()), n)
	}
	if end < start {
		end = start
	}
	return start, end
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// ---- assignment, update, unary, binary ----

func (it *Interp) evalAssign(e *AssignExpr, env *Env) (Value, error) {
	// Compound assignment reads the target first.
	var cur Value
	if e.Op != "=" {
		var err error
		cur, err = it.evalExpr(e.Target, env)
		if err != nil {
			return Undefined, err
		}
	}
	rhs, err := it.evalExpr(e.Value, env)
	if err != nil {
		return Undefined, err
	}
	v := rhs
	if e.Op != "=" {
		v, err = it.binaryOp(strings.TrimSuffix(e.Op, "="), cur, rhs, e.Line)
		if err != nil {
			return Undefined, err
		}
	}
	switch t := e.Target.(type) {
	case *Ident:
		return v, it.assignIdent(t.Name, t.Ref, v, env, e.Line)
	case *MemberExpr:
		x, err := it.evalExpr(t.X, env)
		if err != nil {
			return Undefined, err
		}
		return v, it.setMember(x, t.Name, v, e.Line)
	case *IndexExpr:
		x, err := it.evalExpr(t.X, env)
		if err != nil {
			return Undefined, err
		}
		idx, err := it.evalExpr(t.Idx, env)
		if err != nil {
			return Undefined, err
		}
		return v, it.setMember(x, indexName(idx), v, e.Line)
	default:
		return Undefined, typeError(e.Line, "invalid assignment target")
	}
}

func (it *Interp) evalUpdate(e *UpdateExpr, env *Env) (Value, error) {
	old, err := it.evalExpr(e.X, env)
	if err != nil {
		return Undefined, err
	}
	n := old.ToNumber()
	var nv float64
	if e.Op == "++" {
		nv = n + 1
	} else {
		nv = n - 1
	}
	newV := Number(nv)
	switch t := e.X.(type) {
	case *Ident:
		err = it.assignIdent(t.Name, t.Ref, newV, env, e.Line)
	case *MemberExpr:
		var x Value
		x, err = it.evalExpr(t.X, env)
		if err == nil {
			err = it.setMember(x, t.Name, newV, e.Line)
		}
	case *IndexExpr:
		var x, idx Value
		x, err = it.evalExpr(t.X, env)
		if err == nil {
			idx, err = it.evalExpr(t.Idx, env)
		}
		if err == nil {
			err = it.setMember(x, indexName(idx), newV, e.Line)
		}
	default:
		return Undefined, typeError(e.Line, "invalid update target")
	}
	if err != nil {
		return Undefined, err
	}
	if e.Prefix {
		return newV, nil
	}
	return Number(n), nil
}

func (it *Interp) evalUnary(e *UnaryExpr, env *Env) (Value, error) {
	// typeof on an unresolved identifier must not throw.
	if e.Op == "typeof" {
		if id, ok := e.X.(*Ident); ok {
			b, defEnv := env.Lookup(id.Name)
			if b == nil {
				it.access(mem.Read, mem.VarLoc(it.global.GlobalSerial, id.Name), mem.CtxPlain, id.Name)
				return Str("undefined"), nil
			}
			if instrumented(b, defEnv) {
				it.access(mem.Read, bindingLoc(b, defEnv, id.Name), mem.CtxPlain, id.Name)
			}
			return Str(b.Value.TypeOf()), nil
		}
	}
	if e.Op == "delete" {
		switch t := e.X.(type) {
		case *MemberExpr:
			x, err := it.evalExpr(t.X, env)
			if err != nil {
				return Undefined, err
			}
			return True, it.deleteMember(x, t.Name, e.Line)
		case *IndexExpr:
			x, err := it.evalExpr(t.X, env)
			if err != nil {
				return Undefined, err
			}
			idx, err := it.evalExpr(t.Idx, env)
			if err != nil {
				return Undefined, err
			}
			return True, it.deleteMember(x, indexName(idx), e.Line)
		default:
			return False, nil
		}
	}
	v, err := it.evalExpr(e.X, env)
	if err != nil {
		return Undefined, err
	}
	switch e.Op {
	case "!":
		return Boolean(!v.Truthy()), nil
	case "-":
		return Number(-v.ToNumber()), nil
	case "+":
		return Number(v.ToNumber()), nil
	case "~":
		return Number(float64(^toInt32(v.ToNumber()))), nil
	case "typeof":
		return Str(v.TypeOf()), nil
	case "void":
		return Undefined, nil
	default:
		return Undefined, typeError(e.Line, "unsupported unary operator %q", e.Op)
	}
}

func (it *Interp) deleteMember(x Value, name string, line int) error {
	if x.Kind != KindObject {
		return nil
	}
	o := x.Obj
	if o.IsArray {
		if i, ok := arrayIndex(name); ok && i < len(o.Elems) {
			it.access(mem.Write, mem.VarLoc(o.Serial, name), mem.CtxPlain, "delete")
			o.Elems[i] = Undefined
			return nil
		}
	}
	if _, ok := o.GetProp(name); ok {
		it.access(mem.Write, mem.VarLoc(o.Serial, name), mem.CtxPlain, "delete")
		o.DeleteProp(name)
	}
	return nil
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

func toUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(f))
}

func (it *Interp) binaryOp(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "+":
		// Objects convert via ToString (arrays join, dates stamp), so
		// any string or object operand makes + concatenate; this skips
		// the full ToPrimitive dance but matches the common cases.
		if l.Kind == KindString || r.Kind == KindString ||
			l.Kind == KindObject || r.Kind == KindObject {
			return Str(l.ToString() + r.ToString()), nil
		}
		return Number(l.ToNumber() + r.ToNumber()), nil
	case "-":
		return Number(l.ToNumber() - r.ToNumber()), nil
	case "*":
		return Number(l.ToNumber() * r.ToNumber()), nil
	case "/":
		return Number(l.ToNumber() / r.ToNumber()), nil
	case "%":
		return Number(math.Mod(l.ToNumber(), r.ToNumber())), nil
	case "==":
		return Boolean(LooseEquals(l, r)), nil
	case "!=":
		return Boolean(!LooseEquals(l, r)), nil
	case "===":
		return Boolean(StrictEquals(l, r)), nil
	case "!==":
		return Boolean(!StrictEquals(l, r)), nil
	case "<", ">", "<=", ">=":
		return relational(op, l, r), nil
	case "&":
		return Number(float64(toInt32(l.ToNumber()) & toInt32(r.ToNumber()))), nil
	case "|":
		return Number(float64(toInt32(l.ToNumber()) | toInt32(r.ToNumber()))), nil
	case "^":
		return Number(float64(toInt32(l.ToNumber()) ^ toInt32(r.ToNumber()))), nil
	case "<<":
		return Number(float64(toInt32(l.ToNumber()) << (toUint32(r.ToNumber()) & 31))), nil
	case ">>":
		return Number(float64(toInt32(l.ToNumber()) >> (toUint32(r.ToNumber()) & 31))), nil
	case ">>>":
		return Number(float64(toUint32(l.ToNumber()) >> (toUint32(r.ToNumber()) & 31))), nil
	case "in":
		if r.Kind != KindObject {
			return Undefined, typeError(line, "'in' requires an object")
		}
		if r.Obj.IsArray {
			i, ok := arrayIndex(l.ToString())
			return Boolean(ok && i < len(r.Obj.Elems)), nil
		}
		_, ok := r.Obj.GetProp(l.ToString())
		return Boolean(ok), nil
	case "instanceof":
		if r.Kind != KindObject || r.Obj.Fn == nil || l.Kind != KindObject {
			return False, nil
		}
		return Boolean(l.Obj.Class == r.Obj.Fn.Name), nil
	default:
		return Undefined, typeError(line, "unsupported operator %q", op)
	}
}

func relational(op string, l, r Value) Value {
	if l.Kind == KindString && r.Kind == KindString {
		switch op {
		case "<":
			return Boolean(l.Str < r.Str)
		case ">":
			return Boolean(l.Str > r.Str)
		case "<=":
			return Boolean(l.Str <= r.Str)
		default:
			return Boolean(l.Str >= r.Str)
		}
	}
	a, b := l.ToNumber(), r.ToNumber()
	if math.IsNaN(a) || math.IsNaN(b) {
		return False
	}
	switch op {
	case "<":
		return Boolean(a < b)
	case ">":
		return Boolean(a > b)
	case "<=":
		return Boolean(a <= b)
	default:
		return Boolean(a >= b)
	}
}

// ---- calls ----

func (it *Interp) evalCall(e *CallExpr, env *Env) (Value, error) {
	var fnV, this Value
	var err error
	calleeName := "expression"
	switch callee := e.Callee.(type) {
	case *Ident:
		calleeName = callee.Name
		// The read performed to invoke the function: CtxFuncCall so a
		// race with the declaration classifies as a function race.
		fnV, err = it.readIdent(callee, env, mem.CtxFuncCall)
	case *MemberExpr:
		calleeName = callee.Name
		var x Value
		x, err = it.evalExpr(callee.X, env)
		if err == nil {
			this = x
			fnV, err = it.getMember(x, callee.Name, e.Line)
		}
	case *IndexExpr:
		var x, idx Value
		x, err = it.evalExpr(callee.X, env)
		if err == nil {
			idx, err = it.evalExpr(callee.Idx, env)
		}
		if err == nil {
			this = x
			fnV, err = it.getMember(x, indexName(idx), e.Line)
		}
	default:
		fnV, err = it.evalExpr(callee, env)
	}
	if err != nil {
		return Undefined, err
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		args[i], err = it.evalExpr(a, env)
		if err != nil {
			return Undefined, err
		}
	}
	if !fnV.IsCallable() {
		return Undefined, typeError(e.Line, "%s is not a function", calleeName)
	}
	if e.IsNew {
		return it.construct(fnV.Obj.Fn, args, e.Line)
	}
	return it.call(fnV.Obj.Fn, this, args, e.Line)
}

// construct implements `new F(args)`.
func (it *Interp) construct(fn *Closure, args []Value, line int) (Value, error) {
	obj := it.NewObject(constructClass(fn))
	ret, err := it.call(fn, ObjectVal(obj), args, line)
	if err != nil {
		return Undefined, err
	}
	if ret.Kind == KindObject {
		return ret, nil
	}
	return ObjectVal(obj), nil
}

func constructClass(fn *Closure) string {
	if fn.Name != "" {
		return fn.Name
	}
	return "Object"
}

// call invokes a closure with the given receiver.
func (it *Interp) call(fn *Closure, this Value, args []Value, line int) (Value, error) {
	it.depth++
	defer func() { it.depth-- }()
	if it.depth > maxDepth {
		return Undefined, &Error{Kind: "RangeError", Msg: "maximum call stack size exceeded", Line: line}
	}
	if fn.Native != nil {
		return fn.Native(it, this, args)
	}
	env := NewEnv(fn.Env)
	env.BindThis(it.thisOrGlobal(this))
	// A named function expression can refer to itself.
	if fn.Decl.Name != "" && fn.Self != nil {
		env.Declare(fn.Decl.Name, false, 0).Value = ObjectVal(fn.Self)
	}
	for i, p := range fn.Decl.Params {
		ref := fn.Decl.ParamRefs[i]
		slot := uint64(0)
		if ref.Captured {
			slot = it.serials.Next()
		}
		b := env.Declare(p, ref.Captured, slot)
		if i < len(args) {
			b.Value = args[i]
		}
	}
	// arguments object (read-only snapshot).
	ao := it.NewArray(args...)
	env.Declare("arguments", false, 0).Value = ObjectVal(ao)
	if err := it.hoistInto(fn.Decl.Body, env); err != nil {
		return Undefined, err
	}
	c, err := it.execStmts(fn.Decl.Body.Body, env)
	if err != nil {
		return Undefined, err
	}
	if c.kind == ctrlReturn {
		return c.val, nil
	}
	return Undefined, nil
}
