package js

import (
	"fmt"
	"strconv"
	"strings"
)

// PrintAST renders a parsed program as an s-expression-flavoured outline,
// one node per line — the front-end's debugging aid (go test -v fixtures,
// quick inspection of what the parser made of a page's script). Binding
// resolution is shown inline: `x{g}` is a global reference, `x{c}` a
// captured local, bare `x` an uncaptured local.
func PrintAST(prog *Program) string {
	var b strings.Builder
	p := &astPrinter{w: &b}
	for _, s := range prog.Body {
		p.stmt(s, 0)
	}
	return b.String()
}

type astPrinter struct {
	w *strings.Builder
}

func (p *astPrinter) line(depth int, format string, args ...any) {
	p.w.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(p.w, format, args...)
	p.w.WriteByte('\n')
}

func refSuffix(r *VarRef) string {
	switch {
	case r == nil:
		return ""
	case r.Global:
		return "{g}"
	case r.Captured:
		return "{c}"
	default:
		return ""
	}
}

func (p *astPrinter) stmt(s Stmt, d int) {
	switch s := s.(type) {
	case *VarDecl:
		if s.Init == nil {
			p.line(d, "(var %s%s)", s.Name, refSuffix(s.Ref))
		} else {
			p.line(d, "(var %s%s =", s.Name, refSuffix(s.Ref))
			p.expr(s.Init, d+1)
			p.line(d, ")")
		}
	case *FuncDeclStmt:
		p.line(d, "(func-decl %s%s (%s)", s.Name, refSuffix(s.Ref), strings.Join(s.Fn.Params, " "))
		for _, st := range s.Fn.Body.Body {
			p.stmt(st, d+1)
		}
		p.line(d, ")")
	case *ExprStmt:
		p.line(d, "(expr")
		p.expr(s.X, d+1)
		p.line(d, ")")
	case *BlockStmt:
		p.line(d, "(block")
		for _, st := range s.Body {
			p.stmt(st, d+1)
		}
		p.line(d, ")")
	case *IfStmt:
		p.line(d, "(if")
		p.expr(s.Cond, d+1)
		p.stmt(s.Then, d+1)
		if s.Else != nil {
			p.line(d+1, "(else)")
			p.stmt(s.Else, d+1)
		}
		p.line(d, ")")
	case *WhileStmt:
		kw := "while"
		if s.DoWhile {
			kw = "do-while"
		}
		p.line(d, "(%s", kw)
		p.expr(s.Cond, d+1)
		p.stmt(s.Body, d+1)
		p.line(d, ")")
	case *ForStmt:
		p.line(d, "(for")
		if s.Init != nil {
			p.stmt(s.Init, d+1)
		}
		if s.Cond != nil {
			p.expr(s.Cond, d+1)
		}
		if s.Post != nil {
			p.expr(s.Post, d+1)
		}
		p.stmt(s.Body, d+1)
		p.line(d, ")")
	case *ForInStmt:
		p.line(d, "(for-in %s%s", s.Name, refSuffix(s.Ref))
		p.expr(s.X, d+1)
		p.stmt(s.Body, d+1)
		p.line(d, ")")
	case *ReturnStmt:
		if s.X == nil {
			p.line(d, "(return)")
		} else {
			p.line(d, "(return")
			p.expr(s.X, d+1)
			p.line(d, ")")
		}
	case *BreakStmt:
		if s.Label != "" {
			p.line(d, "(break %s)", s.Label)
		} else {
			p.line(d, "(break)")
		}
	case *ContinueStmt:
		if s.Label != "" {
			p.line(d, "(continue %s)", s.Label)
		} else {
			p.line(d, "(continue)")
		}
	case *LabeledStmt:
		p.line(d, "(label %s", s.Label)
		p.stmt(s.Stmt, d+1)
		p.line(d, ")")
	case *ThrowStmt:
		p.line(d, "(throw")
		p.expr(s.X, d+1)
		p.line(d, ")")
	case *TryStmt:
		p.line(d, "(try")
		p.stmt(s.Try, d+1)
		if s.Catch != nil {
			p.line(d+1, "(catch %s)", s.CatchVar)
			p.stmt(s.Catch, d+1)
		}
		if s.Finally != nil {
			p.line(d+1, "(finally)")
			p.stmt(s.Finally, d+1)
		}
		p.line(d, ")")
	case *SwitchStmt:
		p.line(d, "(switch")
		p.expr(s.X, d+1)
		for _, c := range s.Cases {
			if c.Test == nil {
				p.line(d+1, "(default")
			} else {
				p.line(d+1, "(case")
				p.expr(c.Test, d+2)
			}
			for _, st := range c.Body {
				p.stmt(st, d+2)
			}
			p.line(d+1, ")")
		}
		p.line(d, ")")
	case *EmptyStmt:
		p.line(d, "(empty)")
	default:
		p.line(d, "(?stmt %T)", s)
	}
}

func (p *astPrinter) expr(e Expr, d int) {
	switch e := e.(type) {
	case *Ident:
		p.line(d, "%s%s", e.Name, refSuffix(e.Ref))
	case *NumLit:
		p.line(d, "%s", NumToString(e.Value))
	case *StrLit:
		p.line(d, "%s", strconv.Quote(e.Value))
	case *BoolLit:
		p.line(d, "%v", e.Value)
	case *NullLit:
		p.line(d, "null")
	case *UndefinedLit:
		p.line(d, "undefined")
	case *ThisLit:
		p.line(d, "this")
	case *FuncLit:
		p.line(d, "(func %s (%s)", e.Name, strings.Join(e.Params, " "))
		for _, st := range e.Body.Body {
			p.stmt(st, d+1)
		}
		p.line(d, ")")
	case *ArrayLit:
		p.line(d, "(array")
		for _, el := range e.Elems {
			p.expr(el, d+1)
		}
		p.line(d, ")")
	case *ObjectLit:
		p.line(d, "(object")
		for i, k := range e.Keys {
			p.line(d+1, "(%s:", k)
			p.expr(e.Vals[i], d+2)
			p.line(d+1, ")")
		}
		p.line(d, ")")
	case *MemberExpr:
		p.line(d, "(. %s", e.Name)
		p.expr(e.X, d+1)
		p.line(d, ")")
	case *IndexExpr:
		p.line(d, "(index")
		p.expr(e.X, d+1)
		p.expr(e.Idx, d+1)
		p.line(d, ")")
	case *CallExpr:
		kw := "call"
		if e.IsNew {
			kw = "new"
		}
		p.line(d, "(%s", kw)
		p.expr(e.Callee, d+1)
		for _, a := range e.Args {
			p.expr(a, d+1)
		}
		p.line(d, ")")
	case *AssignExpr:
		p.line(d, "(%s", e.Op)
		p.expr(e.Target, d+1)
		p.expr(e.Value, d+1)
		p.line(d, ")")
	case *UpdateExpr:
		pos := "post"
		if e.Prefix {
			pos = "pre"
		}
		p.line(d, "(%s-%s", pos, e.Op)
		p.expr(e.X, d+1)
		p.line(d, ")")
	case *UnaryExpr:
		p.line(d, "(%s", e.Op)
		p.expr(e.X, d+1)
		p.line(d, ")")
	case *BinaryExpr:
		p.line(d, "(%s", e.Op)
		p.expr(e.L, d+1)
		p.expr(e.R, d+1)
		p.line(d, ")")
	case *LogicalExpr:
		p.line(d, "(%s", e.Op)
		p.expr(e.L, d+1)
		p.expr(e.R, d+1)
		p.line(d, ")")
	case *CondExpr:
		p.line(d, "(?:")
		p.expr(e.Cond, d+1)
		p.expr(e.Then, d+1)
		p.expr(e.Else, d+1)
		p.line(d, ")")
	case *SeqExpr:
		p.line(d, "(seq")
		for _, x := range e.Exprs {
			p.expr(x, d+1)
		}
		p.line(d, ")")
	default:
		p.line(d, "(?expr %T)", e)
	}
}
