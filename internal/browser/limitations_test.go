package browser

import (
	"testing"

	"webracer/internal/loader"
	"webracer/internal/report"
)

// This file pins down the §7 "Limitations" behaviours: cases where the
// paper says WebRacer deliberately reports something debatable (or
// declines to handle something). We reproduce each choice faithfully.

// TestMoveReportedAsRace: §7 discusses appendChild used to *move* an
// in-document element — the element existed throughout, yet WebRacer
// reports a race between the move and a concurrent lookup. We model a move
// as remove+insert, so the same race appears.
func TestMoveReportedAsRace(t *testing.T) {
	site := loader.NewSite("move").Add("index.html", `
<div id="a"><span id="target"></span></div>
<div id="b"></div>
<script>
setTimeout(function() {
  // Move target from a to b.
  document.getElementById("b").appendChild(document.getElementById("target"));
}, 10);
setTimeout(function() {
  // Concurrent lookup of the moved element.
  var el = document.getElementById("target");
  if (el != null) { seen = 1; }
}, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.HTML), "target") == nil {
		t.Fatalf("element move not reported as race (the §7 behaviour); reports: %v", b.Reports())
	}
}

// TestHiddenButtonFalsePositive: §7's last limitation — a handler added to
// an invisible button plus a later user click is reported as a race even
// though clicks were effectively disabled while hidden. Our happens-before
// does not consider visibility either, so the (false positive) race is
// reported; this test documents the deliberate imprecision.
func TestHiddenButtonFalsePositive(t *testing.T) {
	site := loader.NewSite("hidden").Add("index.html", `
<button id="btn" style="display:none"></button>
<script>
setTimeout(function() {
  var b = document.getElementById("btn");
  b.onclick = function() { clicked = 1; };
  b.style.display = "block";
}, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	// User clicks after load (the button is visible by then).
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("btn"), "click")
	b.Run()
	found := false
	for _, r := range racesOfType(b, report.EventDispatch) {
		if r.Loc.Name == "click" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hidden-button dispatch race not reported (the §7 false-positive case); reports: %v", b.Reports())
	}
}

// TestCookieRace: the Zheng et al. comparison (§8) notes cookie state as a
// shared resource. document.cookie is instrumented as a property of the
// document, so two unordered handlers touching it race.
func TestCookieRace(t *testing.T) {
	site := loader.NewSite("cookie").
		Add("index.html", `
<script>
var x1 = new XMLHttpRequest();
x1.onreadystatechange = function() { if (x1.readyState == 4) document.cookie = "a=1"; };
x1.open("GET", "a.json"); x1.send();
var x2 = new XMLHttpRequest();
x2.onreadystatechange = function() { if (x2.readyState == 4) document.cookie = "b=2"; };
x2.open("GET", "b.json"); x2.send();
</script>`).
		Add("a.json", `1`).
		Add("b.json", `2`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.Variable), "cookie") == nil {
		t.Fatalf("cookie race not reported; reports: %v", b.Reports())
	}
}

// TestNestedIframes: rules 6 and 7 compose through two levels of nesting —
// the grandchild's load propagates up before each ancestor's load event.
func TestNestedIframes(t *testing.T) {
	site := loader.NewSite("nested").
		Add("index.html", `
<iframe id="outer" src="mid.html"></iframe>
<script>window.onload = function() { topLoaded = 1; };</script>`).
		Add("mid.html", `<iframe id="inner" src="leaf.html"></iframe>`).
		Add("leaf.html", `<script>leafRan = 1;</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if !b.Top().Loaded() {
		t.Fatal("top window never loaded")
	}
	if len(b.Windows()) != 3 {
		t.Fatalf("windows = %d, want 3", len(b.Windows()))
	}
	// Every nested window loaded before the top's load handler ran.
	if v, ok := b.Top().It.LookupGlobal("topLoaded"); !ok || v.ToNumber() != 1 {
		t.Error("top load handler did not run")
	}
	for _, w := range b.Windows() {
		if !w.Loaded() {
			t.Errorf("window %s never loaded", w.URL)
		}
	}
}

// TestDynamicIframe: an iframe inserted by script loads and participates
// in happens-before (rule 6 with create(I) being the inserting script op).
func TestDynamicIframe(t *testing.T) {
	site := loader.NewSite("dynframe").
		Add("index.html", `
<body>
<script>
parentMark = 1;
var f = document.createElement("iframe");
f.src = "child.html";
document.body.appendChild(f);
</script>
</body>`).
		Add("child.html", `<script>childRan = 1; parentMark = 2;</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if len(b.Windows()) != 2 {
		t.Fatalf("windows = %d, want 2", len(b.Windows()))
	}
	child := b.Windows()[1]
	if v, ok := child.It.LookupGlobal("childRan"); !ok || v.ToNumber() != 1 {
		t.Fatalf("child script did not run (errors %v)", b.Errors)
	}
	// The two parentMark writes share a logical location (shared frame
	// globals) but the inserting op is ordered before the child's script
	// by rule 6: no race.
	if r := raceOnName(racesOfType(b, report.Variable), "parentMark"); r != nil {
		t.Errorf("rule 6 edge missing for dynamic iframe: %v", r)
	}
}

// TestRemoveChildRace: removing an element races with a concurrent lookup
// (§4.2: removal is a write).
func TestRemoveChildRace(t *testing.T) {
	site := loader.NewSite("remove").Add("index.html", `
<div id="host"><span id="victim"></span></div>
<script>
setTimeout(function() {
  var v = document.getElementById("victim");
  if (v != null) { document.getElementById("host").removeChild(v); }
}, 10);
setTimeout(function() {
  lookup = document.getElementById("victim") != null ? 1 : 0;
}, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.HTML), "victim") == nil {
		t.Fatalf("removal race not reported; reports: %v", b.Reports())
	}
}

// TestRemovedListenerDoesNotRun: removeEventListener takes effect and is
// itself a handler-location write.
func TestRemovedListenerDoesNotRun(t *testing.T) {
	site := loader.NewSite("removelistener").Add("index.html", `
<button id="b"></button>
<script>
var f = function() { ran = 1; };
var el = document.getElementById("b");
el.addEventListener("click", f);
el.removeEventListener("click", f);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("b"), "click")
	b.Run()
	if _, ok := b.Top().It.LookupGlobal("ran"); ok {
		t.Error("removed listener still ran")
	}
}
