package browser

import (
	"strings"
	"testing"

	"webracer/internal/js"
	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/report"
)

// TestTimerClearRace exercises the §7 extension: clearing a timer from a
// concurrent callback races with the timer's execution.
func TestTimerClearRace(t *testing.T) {
	site := loader.NewSite("clear").Add("index.html", `
<script>
var t1 = setTimeout(function() { ran = 1; }, 10);
setTimeout(function() { clearTimeout(t1); }, 20);
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, InstrumentTimerClears: true,
		Latency: fixedLatency(nil)}
	b := New(site, cfg)
	b.LoadPage("index.html")
	found := false
	for _, r := range b.Reports() {
		if r.Loc.Kind == mem.Handler && r.Loc.Name == "timer" {
			found = true
			// The pair must be the fire-read and the clear-write.
			ctxs := r.Prior.Ctx.String() + "/" + r.Current.Ctx.String()
			if !strings.Contains(ctxs, "handler-fire") || !strings.Contains(ctxs, "handler-remove") {
				t.Errorf("unexpected racing pair contexts: %s", ctxs)
			}
		}
	}
	if !found {
		t.Fatalf("timer-clear race not reported; reports: %v", b.Reports())
	}
}

// TestTimerClearNoRaceWhenOrdered: a callback clearing its own later timer
// chain is ordered (rule 16/17 edges), so no race.
func TestTimerClearNoRaceWhenOrdered(t *testing.T) {
	site := loader.NewSite("clearok").Add("index.html", `
<script>
var t1 = setTimeout(function() { ran = 1; }, 40);
clearTimeout(t1);
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, InstrumentTimerClears: true,
		Latency: fixedLatency(nil)}
	b := New(site, cfg)
	b.LoadPage("index.html")
	for _, r := range b.Reports() {
		if r.Loc.Kind == mem.Handler && r.Loc.Name == "timer" {
			t.Errorf("same-operation clear reported as race: %v", r)
		}
	}
	// And the timer must actually have been cancelled.
	if _, ok := b.Top().It.LookupGlobal("ran"); ok {
		t.Error("cleared timer still fired")
	}
}

// TestTimerClearsOffByDefault: without the extension flag, no timer
// locations exist (faithful to the paper's §7 statement).
func TestTimerClearsOffByDefault(t *testing.T) {
	site := loader.NewSite("cleardef").Add("index.html", `
<script>
var t1 = setTimeout(function() { ran = 1; }, 10);
setTimeout(function() { clearTimeout(t1); }, 20);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	for _, r := range b.Reports() {
		if r.Loc.Kind == mem.Handler && r.Loc.Name == "timer" {
			t.Errorf("timer race reported without the extension: %v", r)
		}
	}
}

// TestStopPropagation: a target handler stopping propagation prevents the
// bubble-phase handler from running.
func TestStopPropagation(t *testing.T) {
	site := loader.NewSite("stopprop").Add("index.html", `
<div id="outer"><button id="inner"></button></div>
<script>
log = "";
document.getElementById("inner").addEventListener("click", function(ev) {
  log = log + "T";
  ev.stopPropagation();
});
document.getElementById("outer").addEventListener("click", function() { log = log + "B"; });
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("inner"), "click")
	b.Run()
	if got := globalStr(t, b, "log"); got != "T" {
		t.Errorf("log = %q, want T (bubble suppressed)", got)
	}
}

// TestStopImmediatePropagation: later handlers on the same target are
// skipped too.
func TestStopImmediatePropagation(t *testing.T) {
	site := loader.NewSite("stopimm").Add("index.html", `
<button id="b"></button>
<script>
log = "";
var el = document.getElementById("b");
el.addEventListener("click", function(ev) { log = log + "1"; ev.stopImmediatePropagation(); });
el.addEventListener("click", function() { log = log + "2"; });
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("b"), "click")
	b.Run()
	if got := globalStr(t, b, "log"); got != "1" {
		t.Errorf("log = %q, want 1", got)
	}
}

// TestPreventDefaultSuppressesLinkAction: preventDefault on a javascript:
// link click suppresses the default navigation (the href code).
func TestPreventDefaultSuppressesLinkAction(t *testing.T) {
	site := loader.NewSite("prevent").Add("index.html", `
<a id="l" href="javascript:navigated = 1;">go</a>
<script>
document.getElementById("l").addEventListener("click", function(ev) {
  handled = 1;
  ev.preventDefault();
});
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("l"), "click")
	b.Run()
	if globalNum(t, b, "handled") != 1 {
		t.Fatal("handler did not run")
	}
	if _, ok := b.Top().It.LookupGlobal("navigated"); ok {
		t.Error("default action ran despite preventDefault")
	}
}

// TestDefaultActionRunsWithoutPrevent: the same link without preventDefault
// executes its href.
func TestDefaultActionRunsWithoutPrevent(t *testing.T) {
	site := loader.NewSite("noprevent").Add("index.html", `
<a id="l" href="javascript:navigated = 1;">go</a>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("l"), "click")
	b.Run()
	if globalNum(t, b, "navigated") != 1 {
		t.Error("default action did not run")
	}
}

// TestOrderSameTargetHandlersAblation: with the Appendix A alternate
// semantics, two handlers on one (event, target) no longer race; with the
// paper's default they do (see TestEventHandlersSameTargetUnordered).
func TestOrderSameTargetHandlersAblation(t *testing.T) {
	site := loader.NewSite("ordered").Add("index.html", `
<button id="b"></button>
<script>
var el = document.getElementById("b");
el.addEventListener("click", function() { shared = 1; });
el.addEventListener("click", function() { shared = 2; });
</script>`)
	b := runSite(t, site, Config{Seed: 1, OrderSameTargetHandlers: true})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("b"), "click")
	b.Run()
	for _, r := range b.Reports() {
		if r.Loc.Name == "shared" {
			t.Errorf("same-group handlers raced despite the ordering flag: %v", r)
		}
	}
}

// TestCheckboxClickToggles: the click default action toggles checked (a
// CtxUserInput write, §4.1), dispatches change, and races with a script
// that sets the checkbox state concurrently.
func TestCheckboxClickToggles(t *testing.T) {
	site := loader.NewSite("checkbox").Add("index.html", `
<input type="checkbox" id="opt" />
<script>
document.getElementById("opt").onchange = function() { changed = 1; };
document.getElementById("opt").checked = true;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	box := w.Doc.GetElementByID("opt")
	if !box.Checked {
		t.Fatal("script set checked=true")
	}
	w.UserDispatch(box, "click")
	b.Run()
	if box.Checked {
		t.Error("click did not toggle the checkbox")
	}
	if globalNum(t, b, "changed") != 1 {
		t.Error("change event did not fire after the toggle")
	}
	// The script's checked write races with the user toggle.
	found := false
	for _, r := range b.Reports() {
		if r.Loc.Name == "checked" {
			found = true
		}
	}
	if !found {
		t.Errorf("no race on checked; reports: %v", b.Reports())
	}
}

// TestQuerySelector exercises the selector bindings, including the
// id-keyed miss instrumentation that lets a failed querySelector("#x")
// race with the later parse of #x, exactly like getElementById.
func TestQuerySelector(t *testing.T) {
	site := loader.NewSite("qs").Add("index.html", `
<div id="nav" class="menu"><a class="item">one</a><a class="item">two</a></div>
<script>
items = document.querySelectorAll(".menu .item").length;
first = document.querySelector("a.item") !== null ? 1 : 0;
// A timer callback is unordered with the later parse (unlike this inline
// script, which rule 1b chains before it).
setTimeout(function() {
  missing = document.querySelector("#late") === null ? 1 : 0;
}, 1);
</script>
<div id="late"></div>`)
	b := runSite(t, site, Config{Seed: 1, ParseStepCost: 5})
	if globalNum(t, b, "items") != 2 {
		t.Error("querySelectorAll count wrong")
	}
	if globalNum(t, b, "first") != 1 {
		t.Error("querySelector miss on existing element")
	}
	if _, ok := b.Top().It.LookupGlobal("missing"); !ok {
		t.Fatal("timer never ran")
	}
	// The failed #late lookup races with the later parse.
	if raceOnName(racesOfType(b, report.HTML), "late") == nil {
		t.Errorf("querySelector miss did not produce the HTML race; reports: %v", b.Reports())
	}
}

// TestCloneNode: clones are detached copies without listeners; inserting a
// clone instruments the insertion as usual.
func TestCloneNode(t *testing.T) {
	site := loader.NewSite("clone").Add("index.html", `
<div id="proto" class="card"><span>body</span></div>
<div id="host"></div>
<script>
var c = document.getElementById("proto").cloneNode(true);
c.id = "copy";
document.getElementById("host").appendChild(c);
found = document.getElementById("copy") !== null ? 1 : 0;
kids = document.getElementById("copy").childNodes.length;
shallow = document.getElementById("proto").cloneNode(false).childNodes.length;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "found") != 1 {
		t.Error("deep clone not insertable/findable")
	}
	if globalNum(t, b, "kids") != 1 {
		t.Error("deep clone lost children")
	}
	if globalNum(t, b, "shallow") != 0 {
		t.Error("shallow clone kept children")
	}
	// The original is untouched.
	if proto := b.Top().Doc.GetElementByID("proto"); proto == nil || len(proto.Kids) != 1 {
		t.Error("clone mutated the original")
	}
}

// TestWindowOnError: an uncaught script exception dispatches the window
// error event, so a registered onerror handler observes hidden crashes.
func TestWindowOnError(t *testing.T) {
	site := loader.NewSite("onerror").Add("index.html", `
<script>
window.onerror = function() { caught = (typeof caught == 'undefined') ? 1 : caught + 1; };
</script>
<script>
boom.crash = 1;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "caught") != 1 {
		t.Fatalf("onerror did not fire; errors: %v", b.Errors)
	}
	if len(b.Errors) == 0 {
		t.Error("crash not recorded as page error")
	}
}

// TestWindowOnErrorRace: registering onerror *after* a crash can miss it —
// the dispatch's slot read races with the late registration.
func TestWindowOnErrorRace(t *testing.T) {
	site := loader.NewSite("onerror-late").Add("index.html", `
<script>boom.crash = 1;</script>
<script src="monitor.js" async="true"></script>`).
		Add("monitor.js", `window.onerror = function() { caught = 1; };`)
	b := runSite(t, site, Config{Seed: 1})
	found := false
	for _, r := range b.Reports() {
		if r.Loc.Kind == mem.Handler && r.Loc.Name == "error" {
			found = true
		}
	}
	if !found {
		t.Errorf("late onerror registration should race with the crash dispatch; reports: %v", b.Reports())
	}
}

// TestLocalStorage: basic semantics plus races — two unordered callbacks
// writing one key race; distinct keys do not interfere.
func TestLocalStorage(t *testing.T) {
	site := loader.NewSite("storage").Add("index.html", `
<script>
localStorage.setItem("stable", "1");
got = localStorage.getItem("stable");
missing = localStorage.getItem("nope") === null ? 1 : 0;
setTimeout(function() { localStorage.setItem("contended", "a"); }, 10);
setTimeout(function() { localStorage.setItem("contended", "b"); }, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "got") != "1" {
		t.Error("getItem after setItem failed")
	}
	if globalNum(t, b, "missing") != 1 {
		t.Error("missing key should be null")
	}
	foundContended, foundStable := false, false
	for _, r := range b.Reports() {
		switch r.Loc.Name {
		case "contended":
			foundContended = true
		case "stable":
			foundStable = true
		}
	}
	if !foundContended {
		t.Errorf("unordered writes to one storage key should race; reports: %v", b.Reports())
	}
	if foundStable {
		t.Error("single-writer key raced")
	}
}

// TestLocalStorageSharedAcrossFrames: frames share the origin's store.
func TestLocalStorageSharedAcrossFrames(t *testing.T) {
	site := loader.NewSite("sharedstore").
		Add("index.html", `
<script>localStorage.setItem("k", "top");</script>
<iframe src="child.html"></iframe>`).
		Add("child.html", `<script>seen = localStorage.getItem("k");</script>`)
	b := runSite(t, site, Config{Seed: 1})
	child := b.Windows()[1]
	v, ok := child.It.LookupGlobal("seen")
	if !ok || v.ToString() != "top" {
		t.Errorf("frame did not see the top window's storage: %v %v", v, ok)
	}
}

// TestWindowGlobalAliases: window.foo reads and writes the global foo and
// both directions are instrumented as the same location.
func TestWindowGlobalAliases(t *testing.T) {
	site := loader.NewSite("alias").Add("index.html", `
<script>
direct = 1;
viaWindow = window.direct;
window.assigned = 7;
viaDirect = assigned;
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if globalNum(t, b, "viaWindow") != 1 || globalNum(t, b, "viaDirect") != 7 {
		t.Fatal("window.* aliasing broken")
	}
	// window.x in a timer vs bare x in another timer share a location →
	// they race.
	site2 := loader.NewSite("alias2").Add("index.html", `
<script>
setTimeout(function() { window.shared = 1; }, 10);
setTimeout(function() { shared = 2; }, 10);
</script>`)
	b2 := runSite(t, site2, Config{Seed: 1})
	if raceOnName(b2.Reports(), "shared") == nil {
		t.Errorf("window.shared and bare shared should collide; reports: %v", b2.Reports())
	}
}

// TestWindowFrameRelations: parent/top/frameElement resolve correctly in a
// nested frame.
func TestWindowFrameRelations(t *testing.T) {
	site := loader.NewSite("frames").
		Add("index.html", `<iframe id="f" src="child.html"></iframe>`).
		Add("child.html", `
<script>
isTop = window.top === window.parent ? 1 : 0;
hasFrameElement = window.frameElement !== null ? 1 : 0;
feId = window.frameElement.id;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	child := b.Windows()[1]
	get := func(name string) js.Value {
		v, _ := child.It.LookupGlobal(name)
		return v
	}
	if get("isTop").ToNumber() != 1 {
		t.Error("one-level frame: top should equal parent")
	}
	if get("hasFrameElement").ToNumber() != 1 || get("feId").ToString() != "f" {
		t.Errorf("frameElement wrong: %v %v", get("hasFrameElement"), get("feId"))
	}
}

// TestStats: the session summary reflects what the run did.
func TestStats(t *testing.T) {
	site := loader.NewSite("stats").
		Add("index.html", `<script src="a.js"></script><p>x</p><img src="pic.png" />`).
		Add("a.js", `v = 1;`)
	b := runSite(t, site, Config{Seed: 1})
	st := b.Stats()
	if st.Ops != b.Ops.Len() || st.Ops == 0 {
		t.Errorf("Ops = %d", st.Ops)
	}
	if st.OpsByKind["parse"] == 0 || st.OpsByKind["exe"] == 0 {
		t.Errorf("OpsByKind = %v", st.OpsByKind)
	}
	if st.Edges == 0 || st.TasksRun == 0 {
		t.Errorf("edges %d tasks %d", st.Edges, st.TasksRun)
	}
	if st.Windows != 1 {
		t.Errorf("windows = %d", st.Windows)
	}
	if st.Fetches != 3 { // index.html, a.js, pic.png
		t.Errorf("fetches = %d, want 3", st.Fetches)
	}
	if st.VirtualTime <= 0 {
		t.Errorf("virtual time = %v", st.VirtualTime)
	}
}

// TestDOTExport smoke-checks the happens-before DOT rendering.
func TestDOTExport(t *testing.T) {
	site := loader.NewSite("dot").Add("index.html", `<script>x = 1;</script><p>hi</p>`)
	b := runSite(t, site, Config{Seed: 1})
	var sb strings.Builder
	if err := b.HB.WriteDOT(&sb, b.Ops); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph happensbefore {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("not a DOT digraph")
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges rendered")
	}
	if !strings.Contains(out, "exe") {
		t.Error("script op missing from rendering")
	}
}
