package browser

import (
	"fmt"
	"strings"

	"webracer/internal/dom"
	"webracer/internal/html"
	"webracer/internal/js"
	"webracer/internal/mem"
	"webracer/internal/op"
)

// installBindings populates the window's global scope with the browser API:
// window, document, timers, XMLHttpRequest, Image, console, alert.
func (w *Window) installBindings() {
	it := w.It

	winO := it.NewObject("Window")
	winO.Host = &winHost{w: w}
	w.winObj = js.ObjectVal(winO)
	it.GlobalThis = w.winObj

	docO := it.NewObject("HTMLDocument")
	docO.Host = &docHost{w: w}
	w.docObj = js.ObjectVal(docO)

	it.DefineGlobal("window", w.winObj)
	it.DefineGlobal("self", w.winObj)
	it.DefineGlobal("document", w.docObj)

	it.DefineGlobal("setTimeout", it.NativeFunc("setTimeout", w.nativeSetTimeout))
	it.DefineGlobal("setInterval", it.NativeFunc("setInterval", w.nativeSetInterval))
	it.DefineGlobal("clearTimeout", it.NativeFunc("clearTimeout", w.nativeClearTimer))
	it.DefineGlobal("clearInterval", it.NativeFunc("clearInterval", w.nativeClearTimer))
	it.DefineGlobal("alert", it.NativeFunc("alert", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		w.b.Console = append(w.b.Console, "alert: "+joinArgs(args))
		return js.Undefined, nil
	}))
	it.DefineGlobal("XMLHttpRequest", it.NativeFunc("XMLHttpRequest", w.nativeXHR))
	it.DefineGlobal("Image", it.NativeFunc("Image", w.nativeImage))

	console := it.NewObject("Console")
	for _, level := range []string{"log", "warn", "error", "info", "debug"} {
		level := level
		console.SetProp(level, it.NativeFunc(level, func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.b.Console = append(w.b.Console, level+": "+joinArgs(args))
			return js.Undefined, nil
		}))
	}
	it.DefineGlobal("console", js.ObjectVal(console))

	loc := it.NewObject("Location")
	loc.SetProp("href", js.Str(w.URL))
	loc.SetProp("protocol", js.Str("https:"))
	loc.SetProp("host", js.Str("example.test"))
	it.DefineGlobal("location", js.ObjectVal(loc))

	nav := it.NewObject("Navigator")
	nav.SetProp("userAgent", js.Str("WebRacer-Sim/1.0"))
	it.DefineGlobal("navigator", js.ObjectVal(nav))

	it.DefineGlobal("localStorage", w.storageValue())
	it.DefineGlobal("sessionStorage", w.storageValue())
}

// storageValue returns the origin-wide storage object (created on the top
// window so every frame shares one store and one location space).
func (w *Window) storageValue() js.Value {
	top := topOf(w)
	if top.storage.Kind == js.KindUndefined {
		so := top.It.NewObject("Storage")
		so.Host = &storageHost{w: top, data: map[string]string{}, serial: so.Serial}
		top.storage = js.ObjectVal(so)
	}
	return top.storage
}

func joinArgs(args []js.Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.ToString()
	}
	return strings.Join(parts, " ")
}

// winHost resolves dynamic window properties: the on-event handler slots of
// the window target, frame relationships, and aliases.
type winHost struct{ w *Window }

func (h *winHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	w := h.w
	switch name {
	case "window", "self":
		return w.winObj, true, nil
	case "document":
		return w.docObj, true, nil
	case "parent":
		if w.parent != nil {
			return w.parent.winObj, true, nil
		}
		return w.winObj, true, nil
	case "top":
		return topOf(w).winObj, true, nil
	case "frameElement":
		if w.parent != nil && w.frameElem != nil {
			return w.parent.NodeValue(w.frameElem), true, nil
		}
		return js.Null, true, nil
	case "setTimeout":
		return it.NativeFunc(name, w.nativeSetTimeout), true, nil
	case "setInterval":
		return it.NativeFunc(name, w.nativeSetInterval), true, nil
	case "clearTimeout", "clearInterval":
		return it.NativeFunc(name, w.nativeClearTimer), true, nil
	case "addEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.addEventListener(w.winNode, args)
			return js.Undefined, nil
		}), true, nil
	case "removeEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.removeEventListener(w.winNode, args)
			return js.Undefined, nil
		}), true, nil
	case "location":
		v, _ := it.LookupGlobal("location")
		return v, true, nil
	case "localStorage", "sessionStorage":
		// Storage is per origin, not per frame: all windows of the
		// session share the top window's store (and therefore its
		// logical locations — cross-frame storage races are real).
		return w.storageValue(), true, nil
	}
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		event := name[2:]
		w.b.Access(mem.Read, mem.HandlerLoc(w.winNode.Serial, event, 0), mem.CtxHandlerFire,
			"window."+name)
		for _, l := range w.winNode.Listeners(event) {
			if l.HandlerID == 0 {
				if v, ok := l.Fn.(js.Value); ok {
					return v, true, nil
				}
			}
		}
		return js.Null, true, nil
	}
	// Fall through: window.foo aliases the global variable foo.
	if v, ok := it.LookupGlobal(name); ok {
		w.b.Access(mem.Read, mem.VarLoc(it.GlobalEnv().GlobalSerial, name), mem.CtxPlain, "window."+name)
		return v, true, nil
	}
	return js.Undefined, false, nil
}

func (h *winHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	w := h.w
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		event := name[2:]
		w.b.Access(mem.Write, mem.HandlerLoc(w.winNode.Serial, event, 0), mem.CtxHandlerAdd,
			"window.on"+event+"=")
		var fn any
		if v.IsCallable() {
			fn = v
		} else if v.Kind == js.KindString {
			fn = v.Str
		}
		w.winNode.AddListener(event, &dom.Listener{HandlerID: 0, Fn: fn})
		return true, nil
	}
	// window.foo = x defines the global foo.
	w.b.Access(mem.Write, mem.VarLoc(it.GlobalEnv().GlobalSerial, name), mem.CtxPlain, "window."+name+"=")
	it.DefineGlobal(name, v)
	return true, nil
}

// storageHost implements localStorage: each key is a logical location, so
// unordered operations touching one key race — the same shared-resource
// story as document.cookie (which §8's comparison with Zheng et al. calls
// out), but keyed per entry.
type storageHost struct {
	w      *Window
	data   map[string]string
	serial uint64
}

func (h *storageHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	b := h.w.b
	switch name {
	case "getItem":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			key := args[0].ToString()
			b.Access(mem.Read, mem.VarLoc(h.serial, key), mem.CtxPlain, "localStorage.getItem("+key+")")
			if v, ok := h.data[key]; ok {
				return js.Str(v), nil
			}
			return js.Null, nil
		}), true, nil
	case "setItem":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 2 {
				return js.Undefined, nil
			}
			key := args[0].ToString()
			b.Access(mem.Write, mem.VarLoc(h.serial, key), mem.CtxPlain, "localStorage.setItem("+key+")")
			h.data[key] = args[1].ToString()
			return js.Undefined, nil
		}), true, nil
	case "removeItem":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Undefined, nil
			}
			key := args[0].ToString()
			b.Access(mem.Write, mem.VarLoc(h.serial, key), mem.CtxPlain, "localStorage.removeItem("+key+")")
			delete(h.data, key)
			return js.Undefined, nil
		}), true, nil
	case "length":
		return js.Number(float64(len(h.data))), true, nil
	case "clear":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			for key := range h.data {
				b.Access(mem.Write, mem.VarLoc(h.serial, key), mem.CtxPlain, "localStorage.clear")
			}
			h.data = map[string]string{}
			return js.Undefined, nil
		}), true, nil
	}
	return js.Undefined, false, nil
}

func (h *storageHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	h.w.b.Access(mem.Write, mem.VarLoc(h.serial, name), mem.CtxPlain, "localStorage."+name+"=")
	h.data[name] = v.ToString()
	return true, nil
}

// docHost resolves document properties and methods: element lookup (the
// §4.2 reads), node creation, collections, and document-level events.
type docHost struct{ w *Window }

func (h *docHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	w, b := h.w, h.w.b
	switch name {
	case "getElementById":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			id := args[0].ToString()
			// The logical HTML-element read of §4.2: performed
			// whether or not the element exists yet — a failed
			// lookup is half of an HTML race (Fig. 3). The miss
			// marker in the description feeds the harm oracle.
			found := w.Doc.GetElementByID(id)
			desc := fmt.Sprintf("getElementById(%q)", id)
			if found == nil {
				desc += " -> null"
			}
			b.Access(mem.Read, mem.ElemIDLoc(w.Doc.Root.Serial, id), mem.CtxElemLookup, desc)
			return w.NodeValue(found), nil
		}), true, nil
	case "getElementsByTagName":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.ObjectVal(it.NewArray()), nil
			}
			return w.nodeCollection(w.Doc.ElementsByTag(args[0].ToString()), "getElementsByTagName"), nil
		}), true, nil
	case "getElementsByName":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.ObjectVal(it.NewArray()), nil
			}
			return w.nodeCollection(w.Doc.ElementsByName(args[0].ToString()), "getElementsByName"), nil
		}), true, nil
	case "querySelector", "querySelectorAll":
		all := name == "querySelectorAll"
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				if all {
					return js.ObjectVal(it.NewArray()), nil
				}
				return js.Null, nil
			}
			src := args[0].ToString()
			sel, ok := dom.ParseSelector(src)
			if !ok {
				return js.Undefined, jsTypeError("unsupported selector " + src)
			}
			matches := sel.Select(w.Doc.Root)
			if all {
				return w.nodeCollection(matches, "querySelectorAll"), nil
			}
			if len(matches) == 0 {
				// An id-only selector misses like getElementById: the
				// failed read still touches the id-keyed location.
				if id, isID := idOnlySelector(src); isID {
					b.Access(mem.Read, mem.ElemIDLoc(w.Doc.Root.Serial, id),
						mem.CtxElemLookup, "querySelector(#"+id+") -> null")
				}
				return js.Null, nil
			}
			b.Access(mem.Read, w.elemLoc(matches[0]), mem.CtxElemLookup, "querySelector")
			return w.NodeValue(matches[0]), nil
		}), true, nil
	case "createElement":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.Null, nil
			}
			n := w.Doc.NewNode(args[0].ToString())
			b.createOps[n] = b.curOp
			return w.NodeValue(n), nil
		}), true, nil
	case "createTextNode":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			txt := ""
			if len(args) > 0 {
				txt = args[0].ToString()
			}
			n := w.Doc.NewText(txt)
			b.createOps[n] = b.curOp
			return w.NodeValue(n), nil
		}), true, nil
	case "write", "writeln":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			// document.write appends to the body in this simulation
			// (mid-parse insertion-point splicing is out of scope).
			if len(args) > 0 {
				w.setDocWrite(args[0].ToString())
			}
			return js.Undefined, nil
		}), true, nil
	case "addEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.addEventListener(w.Doc.Root, args)
			return js.Undefined, nil
		}), true, nil
	case "removeEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.removeEventListener(w.Doc.Root, args)
			return js.Undefined, nil
		}), true, nil
	case "body":
		body := w.Doc.Body()
		b.Access(mem.Read, w.elemLoc(body), mem.CtxElemLookup, "document.body")
		if body == w.Doc.Root && len(w.Doc.ElementsByTag("body")) == 0 {
			// No <body> parsed yet: scripts see null, like a real
			// browser before the body tag arrives.
			if !w.parseDone {
				return js.Null, true, nil
			}
		}
		return w.NodeValue(body), true, nil
	case "documentElement":
		return w.NodeValue(w.Doc.Root), true, nil
	case "forms", "images", "links", "anchors", "scripts":
		return w.nodeCollection(w.Doc.Collection(name), "document."+name), true, nil
	case "readyState":
		switch {
		case w.loadFired:
			return js.Str("complete"), true, nil
		case w.dclDone:
			return js.Str("interactive"), true, nil
		default:
			return js.Str("loading"), true, nil
		}
	case "URL":
		return js.Str(w.URL), true, nil
	case "cookie":
		b.Access(mem.Read, mem.VarLoc(w.Doc.Root.Serial, "cookie"), mem.CtxPlain, "document.cookie")
		return js.Str(w.Doc.Root.Attrs["__cookie__"]), true, nil
	case "title":
		return js.Str(w.docTitle()), true, nil
	}
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		event := name[2:]
		b.Access(mem.Read, mem.HandlerLoc(w.Doc.Root.Serial, event, 0), mem.CtxHandlerFire,
			"document."+name)
		return js.Null, true, nil
	}
	return js.Undefined, false, nil
}

func (h *docHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	w, b := h.w, h.w.b
	switch name {
	case "cookie":
		b.Access(mem.Write, mem.VarLoc(w.Doc.Root.Serial, "cookie"), mem.CtxPlain, "document.cookie=")
		w.Doc.Root.Attrs["__cookie__"] = v.ToString()
		return true, nil
	case "title":
		return true, nil
	}
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		event := name[2:]
		b.Access(mem.Write, mem.HandlerLoc(w.Doc.Root.Serial, event, 0), mem.CtxHandlerAdd,
			"document.on"+event+"=")
		var fn any
		if v.IsCallable() {
			fn = v
		} else if v.Kind == js.KindString {
			fn = v.Str
		}
		w.Doc.Root.AddListener(event, &dom.Listener{HandlerID: 0, Fn: fn})
		return true, nil
	}
	return false, nil
}

func (w *Window) nodeCollection(nodes []*dom.Node, what string) js.Value {
	arr := w.It.NewArray()
	for _, n := range nodes {
		w.b.Access(mem.Read, w.elemLoc(n), mem.CtxElemLookup, what)
		arr.Elems = append(arr.Elems, w.NodeValue(n))
	}
	return js.ObjectVal(arr)
}

// idOnlySelector recognizes "#someid" selectors so failed querySelector
// lookups hit the same logical location as getElementById.
func idOnlySelector(src string) (string, bool) {
	src = strings.TrimSpace(src)
	if len(src) > 1 && src[0] == '#' && !strings.ContainsAny(src[1:], "#. \t") {
		return src[1:], true
	}
	return "", false
}

func (w *Window) docTitle() string {
	for _, t := range w.Doc.ElementsByTag("title") {
		var sb strings.Builder
		t.Walk(func(m *dom.Node) {
			if m.Tag == "#text" {
				sb.WriteString(m.Text)
			}
		})
		return sb.String()
	}
	return ""
}

// setDocWrite implements document.write by appending parsed markup to the
// body (mid-parse insertion-point splicing is out of scope; DESIGN.md).
func (w *Window) setDocWrite(markup string) {
	target := w.Doc.Body()
	for _, frag := range html.ParseFragment(w.Doc, markup) {
		w.insertChild(target, frag, nil)
	}
}

// ---- timers (§3.3 rules 16 & 17) ----

func (w *Window) nativeSetTimeout(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
	return w.installTimer(args, false)
}

func (w *Window) nativeSetInterval(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
	return w.installTimer(args, true)
}

func (w *Window) installTimer(args []js.Value, interval bool) (js.Value, error) {
	if len(args) == 0 {
		return js.Number(0), nil
	}
	delay := 0.0
	if len(args) > 1 {
		delay = args[1].ToNumber()
	}
	if delay < 0 || delay != delay {
		delay = 0
	}
	b := w.b
	w.timerSeq++
	id := w.timerSeq
	rec := &timerRec{interval: interval, every: delay}
	if args[0].IsCallable() {
		rec.fn = args[0]
	} else {
		rec.src = args[0].ToString()
	}
	kind := op.KindTimeout
	label := fmt.Sprintf("cb setTimeout(%.0fms)", delay)
	if interval {
		kind = op.KindInterval
		label = fmt.Sprintf("cb0 setInterval(%.0fms)", delay)
	}
	b.mTimers.Inc()
	cb := b.newOp(kind, label)
	b.HB.Edge(b.curOp, cb) // HB rule 16 (and rule 17's A ⇝ cb₀)
	rec.lastCb = cb
	if tr := b.cfg.Trace; tr != nil {
		tr.AsyncBegin("timer", label, timerSpanID(cb), b.clock, nil)
		rec.armed = true
	}
	if b.cfg.InstrumentTimerClears {
		// §7 extension: the timer slot is a logical location.
		rec.slot = b.Serials.Next()
		b.Access(mem.Write, mem.HandlerLoc(w.winNode.Serial, "timer", rec.slot),
			mem.CtxHandlerAdd, "install "+label)
	}
	w.timers[id] = rec
	rec.task = b.schedule(delay, func() { w.fireTimer(id, rec, cb) })
	return js.Number(float64(id)), nil
}

func (w *Window) fireTimer(id int, rec *timerRec, cb op.ID) {
	b := w.b
	if rec.cleared {
		return
	}
	// The record stays registered even after firing so that a late
	// clearTimeout still performs its slot write — that write is exactly
	// the racing access of the §7 timer-clear extension.
	rec.fired = true
	if tr := b.cfg.Trace; tr != nil && rec.armed {
		tr.AsyncEnd("timer", b.Ops.Get(cb).Label, timerSpanID(cb), b.clock, nil)
		rec.armed = false
	}
	b.withOp(cb, func() {
		if b.cfg.InstrumentTimerClears {
			b.Access(mem.Read, mem.HandlerLoc(w.winNode.Serial, "timer", rec.slot),
				mem.CtxHandlerFire, "timer fires")
		}
		w.callTimerBody(rec)
	})
	if rec.interval && !rec.cleared {
		rec.ticks++
		if rec.ticks >= b.cfg.MaxIntervalTicks {
			return
		}
		next := b.newOp(op.KindInterval, fmt.Sprintf("cb%d setInterval(%.0fms)", rec.ticks, rec.every))
		b.HB.Edge(cb, next) // HB rule 17: cbᵢ ⇝ cbᵢ₊₁
		rec.lastCb = next
		if tr := b.cfg.Trace; tr != nil {
			tr.AsyncBegin("timer", b.Ops.Get(next).Label, timerSpanID(next), b.clock, nil)
			rec.armed = true
		}
		// Later ticks are weak tasks: once everything else has
		// quiesced, a never-cleared interval (Gomez-style polling)
		// stops keeping the session alive.
		weak := rec.ticks >= 3
		rec.task = b.scheduleTask(rec.every, weak, func() { w.fireTimer(id, rec, next) })
	}
}

func (w *Window) callTimerBody(rec *timerRec) {
	if rec.fn.IsCallable() {
		if _, err := w.It.CallFunction(rec.fn, js.Undefined, nil); err != nil {
			w.scriptError("timer callback", err)
		}
		return
	}
	if rec.src != "" {
		w.runScript(rec.src, "timer string")
	}
}

// nativeClearTimer implements clearTimeout/clearInterval. WebRacer did not
// instrument these (§7: clears may race with callback execution); neither
// do we, faithfully.
func (w *Window) nativeClearTimer(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
	if len(args) == 0 {
		return js.Undefined, nil
	}
	id := int(args[0].ToNumber())
	if rec, ok := w.timers[id]; ok {
		if w.b.cfg.InstrumentTimerClears {
			w.b.Access(mem.Write, mem.HandlerLoc(w.winNode.Serial, "timer", rec.slot),
				mem.CtxHandlerRemove, "clearTimer")
		}
		rec.cleared = true
		cancel(rec.task)
		if tr := w.b.cfg.Trace; tr != nil && rec.armed {
			tr.AsyncEnd("timer", w.b.Ops.Get(rec.lastCb).Label, timerSpanID(rec.lastCb),
				w.b.clock, map[string]any{"cancelled": true})
			rec.armed = false
		}
	}
	return js.Undefined, nil
}

// ---- XMLHttpRequest (§3.3 rule 10) ----

type xhrHost struct {
	w      *Window
	node   *dom.Node // hidden dispatch target for readystatechange/load/error/...
	obj    *js.Object
	method string
	url    string
	sent   bool
	// done marks the request settled (response arrived, timed out, or
	// aborted); later settlement attempts are ignored.
	done     bool
	aborted  bool
	timedOut bool
	timeout  float64
	state    int
	status   int
	body     string
	sendErr  error
}

// spanID names the request's async trace span by its hidden target node,
// which is unique per XHR instance.
func (h *xhrHost) spanID() string { return fmt.Sprintf("x%d", h.node.Serial) }

// xhrHandlerProps maps on-event properties to their event names.
var xhrHandlerProps = map[string]string{
	"onreadystatechange": "readystatechange",
	"onload":             "load",
	"onerror":            "error",
	"ontimeout":          "timeout",
	"onabort":            "abort",
}

func (w *Window) nativeXHR(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
	o := it.NewObject("XMLHttpRequest")
	h := &xhrHost{w: w, obj: o, node: w.Doc.NewNode("#xhr")}
	w.b.createOps[h.node] = w.b.curOp
	o.Host = h
	return js.ObjectVal(o), nil
}

func (h *xhrHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	w, b := h.w, h.w.b
	switch name {
	case "open":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) >= 2 {
				h.method = args[0].ToString()
				h.url = args[1].ToString()
				h.state = 1
			}
			return js.Undefined, nil
		}), true, nil
	case "send":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if h.sent || h.url == "" {
				return js.Undefined, nil
			}
			h.sent = true
			b.mXHRs.Inc()
			sendOp := b.curOp
			resp := b.fetch(h.url)
			if tr := b.cfg.Trace; tr != nil {
				tr.AsyncBegin("xhr", h.method+" "+h.url, h.spanID(), b.clock, nil)
			}
			if h.timeout > 0 && h.timeout < resp.Latency {
				// The deadline beats the response: the request settles as
				// a timeout and the (still-scheduled) arrival is ignored.
				b.schedule(h.timeout, func() { h.settle(sendOp, "timeout", 0, "", nil) })
			}
			b.schedule(resp.Latency, func() {
				// HTTP completion — any status, including 404/500 — fires
				// load; a transport error (status 0) fires error instead.
				event := "load"
				if resp.Status == 0 {
					event = "error"
				}
				h.settle(sendOp, event, resp.Status, resp.Body, resp.Err)
			})
			return js.Undefined, nil
		}), true, nil
	case "abort":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if !h.sent || h.done {
				return js.Undefined, nil
			}
			// abort settles the request synchronously inside the calling
			// script: the field writes happen under the current operation,
			// then readystatechange and abort dispatch inline (the current
			// op splits around them, Appendix A).
			h.done, h.aborted = true, true
			if tr := b.cfg.Trace; tr != nil {
				tr.AsyncEnd("xhr", h.method+" "+h.url, h.spanID(), b.clock,
					map[string]any{"event": "abort"})
			}
			h.state, h.status, h.body = 4, 0, ""
			h.writeFields("xhr abort")
			disp := w.InlineDispatch(h.node, "readystatechange", DispatchOpts{Detail: "abort"})
			w.InlineDispatch(h.node, "abort", DispatchOpts{ExtraPreds: []op.ID{disp.Last}})
			return js.Undefined, nil
		}), true, nil
	case "setRequestHeader":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			return js.Undefined, nil
		}), true, nil
	case "timeout":
		return js.Number(h.timeout), true, nil
	case "readyState":
		b.Access(mem.Read, mem.VarLoc(h.obj.Serial, "readyState"), mem.CtxPlain, "xhr readyState")
		return js.Number(float64(h.state)), true, nil
	case "status":
		b.Access(mem.Read, mem.VarLoc(h.obj.Serial, "status"), mem.CtxPlain, "xhr status")
		return js.Number(float64(h.status)), true, nil
	case "responseText":
		b.Access(mem.Read, mem.VarLoc(h.obj.Serial, "responseText"), mem.CtxPlain, "xhr responseText")
		return js.Str(h.body), true, nil
	case "onreadystatechange", "onload", "onerror", "ontimeout", "onabort":
		b.Access(mem.Read, mem.HandlerLoc(h.node.Serial, xhrHandlerProps[name], 0),
			mem.CtxHandlerFire, "xhr handler")
		return js.Null, true, nil
	case "addEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.addEventListener(h.node, args)
			return js.Undefined, nil
		}), true, nil
	}
	return js.Undefined, false, nil
}

func (h *xhrHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	if name == "timeout" {
		h.timeout = v.ToNumber()
		return true, nil
	}
	if event, ok := xhrHandlerProps[name]; ok {
		h.w.b.Access(mem.Write, mem.HandlerLoc(h.node.Serial, event, 0),
			mem.CtxHandlerAdd, "xhr."+name+"=")
		var fn any
		if v.IsCallable() {
			fn = v
		}
		h.node.AddListener(event, &dom.Listener{HandlerID: 0, Fn: fn})
		return true, nil
	}
	return false, nil
}

// writeFields records the §4 writes of settling an XHR (readyState,
// status, responseText) under the current operation.
func (h *xhrHost) writeFields(why string) {
	b := h.w.b
	b.Access(mem.Write, mem.VarLoc(h.obj.Serial, "readyState"), mem.CtxPlain, why+" readyState")
	b.Access(mem.Write, mem.VarLoc(h.obj.Serial, "status"), mem.CtxPlain, why+" status")
	b.Access(mem.Write, mem.VarLoc(h.obj.Serial, "responseText"), mem.CtxPlain, why+" responseText")
}

// settle completes a request asynchronously: a network operation (with
// send ⇝ it, HB rule 10) writes the response fields, readystatechange
// dispatches, then the settlement event (load / error / timeout) follows.
// A request settles at most once — an arrival after a timeout or abort is
// dropped.
func (h *xhrHost) settle(sendOp op.ID, event string, status int, body string, err error) {
	if h.done {
		return
	}
	h.done = true
	h.timedOut = event == "timeout"
	w, b := h.w, h.w.b
	if tr := b.cfg.Trace; tr != nil {
		tr.AsyncEnd("xhr", h.method+" "+h.url, h.spanID(), b.clock,
			map[string]any{"event": event, "status": status})
	}
	netOp := b.newOp(op.KindNetwork, "xhr "+event+" "+h.url)
	b.HB.Edge(sendOp, netOp)
	b.withOp(netOp, func() {
		h.state, h.status, h.body, h.sendErr = 4, status, body, err
		h.writeFields("xhr " + event)
	})
	disp := w.Dispatch(h.node, "readystatechange",
		DispatchOpts{ExtraPreds: []op.ID{sendOp, netOp}}) // HB rule 10
	w.Dispatch(h.node, event, DispatchOpts{ExtraPreds: []op.ID{netOp, disp.Last}})
}

// nativeImage implements `new Image()`: a detached <img> whose src
// assignment starts a (non-blocking) load — the Gomez monitoring pattern
// uses these.
func (w *Window) nativeImage(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
	n := w.Doc.NewNode("img")
	w.b.createOps[n] = w.b.curOp
	return w.NodeValue(n), nil
}
