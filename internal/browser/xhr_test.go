package browser

import (
	"testing"

	"webracer/internal/loader"
	"webracer/internal/report"
)

func TestXHRAddEventListener(t *testing.T) {
	site := loader.NewSite("xhrlisten").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.addEventListener("readystatechange", function() {
  if (x.readyState == 4) { viaListener = 1; }
});
x.open("GET", "d.json");
x.send();
</script>`).
		Add("d.json", `ok`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "viaListener") != 1 {
		t.Fatalf("addEventListener on XHR did not fire; errors: %v", b.Errors)
	}
}

func TestXHRSendWithoutOpen(t *testing.T) {
	site := loader.NewSite("xhrnoopen").Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.send(); // no URL: must be a harmless no-op
after = 1;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "after") != 1 {
		t.Error("send without open crashed the script")
	}
}

func TestXHRDoubleSendIgnored(t *testing.T) {
	site := loader.NewSite("xhrdouble").
		Add("index.html", `
<script>
hits = 0;
var x = new XMLHttpRequest();
x.onreadystatechange = function() { if (x.readyState == 4) hits = hits + 1; };
x.open("GET", "d.json");
x.send();
x.send();
</script>`).
		Add("d.json", `ok`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "hits") != 1 {
		t.Errorf("double send produced %v completions, want 1", globalNum(t, b, "hits"))
	}
}

// TestXHRStateReadDuringFlight: polling readyState from a timer while the
// request is in flight races with the network write of readyState.
func TestXHRStateReadDuringFlight(t *testing.T) {
	site := loader.NewSite("xhrpoll").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.open("GET", "slow.json");
x.send();
var poll = setInterval(function() {
  if (x.readyState == 4) { clearInterval(poll); done = 1; }
}, 10);
</script>`).
		Add("slow.json", `ok`)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"slow.json": 55})})
	if globalNum(t, b, "done") != 1 {
		t.Fatalf("poll never completed; errors: %v", b.Errors)
	}
	// The poll's readyState read races with the response's write.
	if raceOnName(racesOfType(b, report.Variable), "readyState") == nil {
		t.Errorf("readyState polling race not reported; reports: %v", b.Reports())
	}
}

// TestSelectElementChange: select is a form field; change dispatch and
// value writes behave like inputs.
func TestSelectElementChange(t *testing.T) {
	site := loader.NewSite("select").Add("index.html", `
<select id="s"></select>
<script>
document.getElementById("s").onchange = function() { changed = 1; };
document.getElementById("s").value = "b";
v = document.getElementById("s").value;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "v") != "b" {
		t.Error("select value round trip broken")
	}
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("s"), "change")
	b.Run()
	if globalNum(t, b, "changed") != 1 {
		t.Error("change handler did not run")
	}
}
