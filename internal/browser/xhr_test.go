package browser

import (
	"testing"

	"webracer/internal/fault"
	"webracer/internal/loader"
	"webracer/internal/report"
)

func TestXHRAddEventListener(t *testing.T) {
	site := loader.NewSite("xhrlisten").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.addEventListener("readystatechange", function() {
  if (x.readyState == 4) { viaListener = 1; }
});
x.open("GET", "d.json");
x.send();
</script>`).
		Add("d.json", `ok`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "viaListener") != 1 {
		t.Fatalf("addEventListener on XHR did not fire; errors: %v", b.Errors)
	}
}

func TestXHRSendWithoutOpen(t *testing.T) {
	site := loader.NewSite("xhrnoopen").Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.send(); // no URL: must be a harmless no-op
after = 1;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "after") != 1 {
		t.Error("send without open crashed the script")
	}
}

func TestXHRDoubleSendIgnored(t *testing.T) {
	site := loader.NewSite("xhrdouble").
		Add("index.html", `
<script>
hits = 0;
var x = new XMLHttpRequest();
x.onreadystatechange = function() { if (x.readyState == 4) hits = hits + 1; };
x.open("GET", "d.json");
x.send();
x.send();
</script>`).
		Add("d.json", `ok`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "hits") != 1 {
		t.Errorf("double send produced %v completions, want 1", globalNum(t, b, "hits"))
	}
}

// TestXHRStateReadDuringFlight: polling readyState from a timer while the
// request is in flight races with the network write of readyState.
func TestXHRStateReadDuringFlight(t *testing.T) {
	site := loader.NewSite("xhrpoll").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.open("GET", "slow.json");
x.send();
var poll = setInterval(function() {
  if (x.readyState == 4) { clearInterval(poll); done = 1; }
}, 10);
</script>`).
		Add("slow.json", `ok`)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"slow.json": 55})})
	if globalNum(t, b, "done") != 1 {
		t.Fatalf("poll never completed; errors: %v", b.Errors)
	}
	// The poll's readyState read races with the response's write.
	if raceOnName(racesOfType(b, report.Variable), "readyState") == nil {
		t.Errorf("readyState polling race not reported; reports: %v", b.Reports())
	}
}

// globalSet reports whether a global was ever assigned — for asserting a
// handler did NOT run (globalNum fatals on unset globals).
func globalSet(b *Browser, name string) bool {
	_, ok := b.Top().It.LookupGlobal(name)
	return ok
}

// faultCfg returns a Config whose loader injects faults per plan.
func faultCfg(plan fault.Plan) Config {
	return Config{Seed: 1, WrapFetcher: func(f loader.Fetcher) loader.Fetcher {
		return fault.New(f, plan)
	}}
}

// TestXHRErrorStatusDelivered: an injected HTTP error status settles the
// request through the load path (the transport worked; the server said
// no), with readyState 4 and the error status observable.
func TestXHRErrorStatusDelivered(t *testing.T) {
	site := loader.NewSite("xhrstatus").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.onload = function() { gotStatus = x.status; gotBody = x.responseText; };
x.onerror = function() { gotError = 1; };
x.open("GET", "api.json");
x.send();
</script>`).
		Add("api.json", `{"ok": true}`)
	plan := fault.Plan{Seed: 7, PerURL: map[string]fault.Kind{"api.json": fault.KindStatus}}
	b := runSite(t, site, faultCfg(plan))
	if s := globalNum(t, b, "gotStatus"); s < 400 {
		t.Errorf("injected error status not delivered: got %v", s)
	}
	if globalStr(t, b, "gotBody") != "" {
		t.Error("error status should deliver an empty body")
	}
	if globalSet(b, "gotError") {
		t.Error("HTTP error status fired the error event; it belongs to transport failures")
	}
}

// TestXHRDroppedConnectionFiresError: a dropped connection (no status at
// all) settles through the error path, not load.
func TestXHRDroppedConnectionFiresError(t *testing.T) {
	site := loader.NewSite("xhrdrop").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.onload = function() { gotLoad = 1; };
x.onerror = function() { gotError = 1; errStatus = x.status; errState = x.readyState; };
x.open("GET", "api.json");
x.send();
</script>`).
		Add("api.json", `{"ok": true}`)
	plan := fault.Plan{Seed: 7, PerURL: map[string]fault.Kind{"api.json": fault.KindDrop}}
	b := runSite(t, site, faultCfg(plan))
	if globalNum(t, b, "gotError") != 1 {
		t.Fatalf("dropped connection did not fire the error event; errors: %v", b.Errors)
	}
	if globalSet(b, "gotLoad") {
		t.Error("dropped connection also fired load")
	}
	if globalNum(t, b, "errStatus") != 0 {
		t.Error("transport failure should leave status 0")
	}
	if globalNum(t, b, "errState") != 4 {
		t.Error("the request must still settle to readyState 4")
	}
}

// TestXHRTimeoutOnStalledResponse: a response stalled beyond x.timeout
// fires ontimeout and the stalled arrival is discarded — the
// never-arriving-response path a retry loop depends on.
func TestXHRTimeoutOnStalledResponse(t *testing.T) {
	site := loader.NewSite("xhrstall").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.timeout = 50;
x.onload = function() { gotLoad = 1; };
x.ontimeout = function() { gotTimeout = 1; timeoutStatus = x.status; };
x.open("GET", "api.json");
x.send();
</script>`).
		Add("api.json", `{"ok": true}`)
	plan := fault.Plan{Seed: 7, StallMS: 5_000,
		PerURL: map[string]fault.Kind{"api.json": fault.KindStall}}
	b := runSite(t, site, faultCfg(plan))
	if globalNum(t, b, "gotTimeout") != 1 {
		t.Fatalf("stalled response did not fire ontimeout; errors: %v", b.Errors)
	}
	if globalSet(b, "gotLoad") {
		t.Error("the stalled arrival must be discarded after a timeout")
	}
	if globalNum(t, b, "timeoutStatus") != 0 {
		t.Error("a timed-out request has no status")
	}
}

// TestXHRHandlerAttachedAfterSendRaces: registering onload from a timer
// after send() races the response's dispatch — whether the handler sees
// its event depends on which of timer and network fires first. This is
// the single-dispatch event race of §3.3 on an XHR.
func TestXHRHandlerAttachedAfterSendRaces(t *testing.T) {
	site := loader.NewSite("xhrlate").
		Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.open("GET", "api.json");
x.send();
setTimeout(function() {
  x.onload = function() { handled = 1; };
}, 5);
</script>`).
		Add("api.json", `{"ok": true}`)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"api.json": 40})})
	if raceOnName(racesOfType(b, report.EventDispatch), "load") == nil {
		t.Errorf("late-attached onload race not reported; reports: %v", b.Reports())
	}
}

// TestSelectElementChange: select is a form field; change dispatch and
// value writes behave like inputs.
func TestSelectElementChange(t *testing.T) {
	site := loader.NewSite("select").Add("index.html", `
<select id="s"></select>
<script>
document.getElementById("s").onchange = function() { changed = 1; };
document.getElementById("s").value = "b";
v = document.getElementById("s").value;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "v") != "b" {
		t.Error("select value round trip broken")
	}
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("s"), "change")
	b.Run()
	if globalNum(t, b, "changed") != 1 {
		t.Error("change handler did not run")
	}
}
