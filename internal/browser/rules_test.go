package browser

import (
	"testing"

	"webracer/internal/js"
	"webracer/internal/loader"
	"webracer/internal/op"
	"webracer/internal/race"
	"webracer/internal/report"
)

// globalNum fetches a numeric global from the top window.
func globalNum(t *testing.T, b *Browser, name string) float64 {
	t.Helper()
	v, ok := b.Top().It.LookupGlobal(name)
	if !ok {
		t.Fatalf("global %s not set; errors: %v, console: %v", name, b.Errors, b.Console)
	}
	return v.ToNumber()
}

func globalStr(t *testing.T, b *Browser, name string) string {
	t.Helper()
	v, ok := b.Top().It.LookupGlobal(name)
	if !ok {
		t.Fatalf("global %s not set; errors: %v, console: %v", name, b.Errors, b.Console)
	}
	return v.ToString()
}

// TestInlineScriptsRunInOrder checks rule 1b: inline scripts execute in
// document order, interleaved with parsing.
func TestInlineScriptsRunInOrder(t *testing.T) {
	site := loader.NewSite("order").Add("index.html", `
<script>order = "a";</script>
<p>text</p>
<script>order = order + "b";</script>
<script>order = order + "c";</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if got := globalStr(t, b, "order"); got != "abc" {
		t.Errorf("inline scripts ran out of order: %q", got)
	}
}

// TestSyncScriptBlocksParsing checks rule 1c: a synchronous external script
// executes before any later element is parsed.
func TestSyncScriptBlocksParsing(t *testing.T) {
	site := loader.NewSite("sync").
		Add("index.html", `
<script src="slow.js"></script>
<div id="after"></div>
<script>sawAfter = document.getElementById("after") !== null;</script>`).
		Add("slow.js", `sawAfterInSlow = document.getElementById("after") !== null;`)
	b := runSite(t, site, Config{Seed: 1, Latency: fixedLatency(map[string]float64{"slow.js": 500})})
	if globalNum(t, b, "sawAfterInSlow") != 0 {
		t.Error("sync script saw elements parsed after it (parsing was not blocked)")
	}
	if globalNum(t, b, "sawAfter") != 1 {
		t.Error("later script did not see the div")
	}
}

// TestDeferScriptsRunAfterParseInOrder checks rules 4 and 5.
func TestDeferScriptsRunAfterParseInOrder(t *testing.T) {
	site := loader.NewSite("defer").
		Add("index.html", `
<script src="d1.js" defer="true"></script>
<script src="d2.js" defer="true"></script>
<div id="last"></div>`).
		Add("d1.js", `order = "1"; sawLast = document.getElementById("last") !== null;`).
		Add("d2.js", `order = order + "2";`)
	// d2 arrives before d1; document order must still hold.
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"d1.js": 300, "d2.js": 10})})
	if got := globalStr(t, b, "order"); got != "12" {
		t.Errorf("defer scripts ran out of document order: %q", got)
	}
	if globalNum(t, b, "sawLast") != 1 {
		t.Error("defer script ran before static HTML finished parsing")
	}
	// No race between the two defer writes to `order` (rule 5 orders them).
	if r := raceOnName(racesOfType(b, report.Variable), "order"); r != nil {
		t.Errorf("unexpected race between ordered defer scripts: %v", r)
	}
}

// TestAsyncScriptsUnordered checks that two async scripts writing the same
// global race with each other (only rules 2, 3, 15 govern them).
func TestAsyncScriptsUnordered(t *testing.T) {
	site := loader.NewSite("async").
		Add("index.html", `
<script src="a1.js" async="true"></script>
<script src="a2.js" async="true"></script>`).
		Add("a1.js", `shared = 1;`).
		Add("a2.js", `shared = 2;`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.Variable), "shared") == nil {
		t.Fatalf("async scripts should race on shared; reports: %v", b.Reports())
	}
}

// TestDOMContentLoadedOrdering checks rules 11-14: DOMContentLoaded sees
// the whole static DOM, and window load comes after it.
func TestDOMContentLoadedOrdering(t *testing.T) {
	site := loader.NewSite("dcl").Add("index.html", `
<script>
phases = "";
document.addEventListener("DOMContentLoaded", function() {
  phases = phases + "D";
  sawDiv = document.getElementById("late") !== null;
});
window.onload = function() { phases = phases + "L"; };
</script>
<div id="late"></div>`)
	b := runSite(t, site, Config{Seed: 1})
	if got := globalStr(t, b, "phases"); got != "DL" {
		t.Errorf("phases = %q, want DL (DOMContentLoaded before load)", got)
	}
	if globalNum(t, b, "sawDiv") != 1 {
		t.Error("DOMContentLoaded fired before static parsing finished")
	}
	// Handler registrations during an inline script are ordered before
	// both dispatches (chain → dcl, chain → load): no dispatch races.
	if evs := racesOfType(b, report.EventDispatch); len(evs) > 0 {
		t.Errorf("unexpected event dispatch races: %v", evs)
	}
}

// TestWindowLoadWaitsForResources checks rule 15: images and async scripts
// complete before window load.
func TestWindowLoadWaitsForResources(t *testing.T) {
	site := loader.NewSite("loadwait").
		Add("index.html", `
<img src="big.png" />
<script src="a.js" async="true"></script>
<script>window.onload = function() { asyncDoneAtLoad = asyncDone; };</script>`).
		Add("a.js", `asyncDone = 1;`)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"big.png": 800, "a.js": 400})})
	if !b.Top().Loaded() {
		t.Fatal("window load never fired")
	}
	if globalNum(t, b, "asyncDoneAtLoad") != 1 {
		t.Error("window load fired before async script executed")
	}
}

// TestSetTimeoutEdge checks rule 16: the scheduling operation happens
// before the callback, so no race between them.
func TestSetTimeoutEdge(t *testing.T) {
	site := loader.NewSite("timeout").Add("index.html", `
<script>
v = 1;
setTimeout(function() { v = v + 1; after = v; }, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if globalNum(t, b, "after") != 2 {
		t.Error("timeout callback did not run or saw stale state")
	}
	if r := raceOnName(racesOfType(b, report.Variable), "v"); r != nil {
		t.Errorf("rule 16 edge missing: scheduling op races with callback: %v", r)
	}
}

// TestTwoTimeoutsRace checks that two independently scheduled callbacks are
// unordered with each other.
func TestTwoTimeoutsRace(t *testing.T) {
	site := loader.NewSite("timeout2").Add("index.html", `
<script>
setTimeout(function() { shared = 1; }, 10);
setTimeout(function() { shared = 2; }, 10);
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.Variable), "shared") == nil {
		t.Fatalf("independent timeout callbacks should race; reports: %v", b.Reports())
	}
}

// TestSetIntervalChain checks rule 17: consecutive interval callbacks are
// ordered (cbᵢ ⇝ cbᵢ₊₁), so their writes to one variable do not race.
func TestSetIntervalChain(t *testing.T) {
	site := loader.NewSite("interval").Add("index.html", `
<script>
count = 0;
id = setInterval(function() {
  count = count + 1;
  if (count >= 3) { clearInterval(id); }
}, 5);
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if got := globalNum(t, b, "count"); got != 3 {
		t.Fatalf("interval ran %v times, want 3", got)
	}
	if r := raceOnName(racesOfType(b, report.Variable), "count"); r != nil {
		t.Errorf("rule 17 chain missing: interval ticks race: %v", r)
	}
}

// TestXHREdge checks rule 10: send() happens before the readystatechange
// dispatch, so state shared between them does not race.
func TestXHREdge(t *testing.T) {
	site := loader.NewSite("xhr").
		Add("index.html", `
<script>
var xhr = new XMLHttpRequest();
pending = 1;
xhr.onreadystatechange = function() {
  if (xhr.readyState == 4) { pending = 0; got = xhr.responseText; }
};
xhr.open("GET", "data.json");
xhr.send();
</script>`).
		Add("data.json", `{"ok":true}`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if got := globalStr(t, b, "got"); got != `{"ok":true}` {
		t.Fatalf("XHR response not delivered: %q (errors %v)", got, b.Errors)
	}
	if r := raceOnName(racesOfType(b, report.Variable), "pending"); r != nil {
		t.Errorf("rule 10 edge missing: send op races with handler: %v", r)
	}
}

// TestTwoXHRHandlersRace checks that handlers of two different requests are
// mutually unordered.
func TestTwoXHRHandlersRace(t *testing.T) {
	site := loader.NewSite("xhr2").
		Add("index.html", `
<script>
function go(url) {
  var x = new XMLHttpRequest();
  x.onreadystatechange = function() { if (x.readyState == 4) winner = url; };
  x.open("GET", url);
  x.send();
}
go("a.json"); go("b.json");
</script>`).
		Add("a.json", `1`).
		Add("b.json", `2`)
	b := runSite(t, site, Config{Seed: 1})
	if raceOnName(racesOfType(b, report.Variable), "winner") == nil {
		t.Fatalf("AJAX handlers should race on winner; reports: %v", b.Reports())
	}
}

// TestInlineDispatchSplit checks Appendix A: code after element.click()
// runs as a continuation ordered after the inline dispatch's handlers.
func TestInlineDispatchSplit(t *testing.T) {
	site := loader.NewSite("inline").Add("index.html", `
<button id="b"></button>
<script>
log = "";
document.getElementById("b").onclick = function() { log = log + "H"; };
log = log + "1";
document.getElementById("b").click();
log = log + "2";
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if got := globalStr(t, b, "log"); got != "1H2" {
		t.Fatalf("inline dispatch order = %q, want 1H2", got)
	}
	// The continuation is ordered after the handler, so the three writes
	// to log are all ordered: no race.
	if r := raceOnName(racesOfType(b, report.Variable), "log"); r != nil {
		t.Errorf("appendix A split edges missing: %v", r)
	}
}

// TestScriptInsertedInlineRunsSynchronously checks the §3.3 note: a
// script-inserted inline script runs within the inserting operation.
func TestScriptInsertedInlineRunsSynchronously(t *testing.T) {
	site := loader.NewSite("insinline").Add("index.html", `
<body>
<script>
var s = document.createElement("script");
s.appendChild(document.createTextNode("inserted = 1;"));
document.body.appendChild(s);
sawImmediately = inserted === 1;
</script>
</body>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "sawImmediately") != 1 {
		t.Error("script-inserted inline script did not run synchronously")
	}
}

// TestScriptInsertedExternal checks dynamic script loading: the inserted
// script runs asynchronously, ordered after its inserting operation
// (rule 2), and blocks window load (rule 15).
func TestScriptInsertedExternal(t *testing.T) {
	site := loader.NewSite("insext").
		Add("index.html", `
<body>
<script>
marker = 1;
var s = document.createElement("script");
s.src = "late.js";
document.body.appendChild(s);
window.onload = function() { lateAtLoad = lateDone; };
</script>
</body>`).
		Add("late.js", `lateDone = 1; sawMarker = marker;`).
		Add("index_noop", ``)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"late.js": 300})})
	if globalNum(t, b, "lateAtLoad") != 1 {
		t.Error("window load fired before script-inserted script executed (rule 15)")
	}
	if globalNum(t, b, "sawMarker") != 1 {
		t.Error("rule 2: inserted script should see inserting script's writes")
	}
	// marker write (inserting op) is ordered before the read: no race.
	if r := raceOnName(racesOfType(b, report.Variable), "marker"); r != nil {
		t.Errorf("rule 2 edge missing for inserted script: %v", r)
	}
}

// TestFordPattern reproduces §6.3's canonical benign race: a setTimeout
// poll that checks for a DOM node before mutating. WebRacer still reports
// the HTML race (the pattern is synchronization via data dependence, which
// happens-before cannot see) — the paper counts these as benign.
func TestFordPattern(t *testing.T) {
	site := loader.NewSite("ford").
		Add("index.html", `
<script>
function addPopUp() {
  if (document.getElementById("last") != null) {
    document.getElementById("target").value = "mutated";
  } else {
    setTimeout(addPopUp, 50);
  }
}
addPopUp();
</script>
<p>lots</p><p>of</p><p>content</p>
<input id="target" />
<div id="last"></div>`)
	b := runSite(t, site, Config{Seed: 1, ParseStepCost: 30})
	// The mutation must eventually happen (poll succeeded).
	if got := b.Top().Doc.GetElementByID("target"); got == nil || got.Value != "mutated" {
		t.Fatalf("poll never succeeded; errors: %v", b.Errors)
	}
	// And the detector reports the HTML race on "last" (benign, but real
	// per the happens-before).
	if raceOnName(racesOfType(b, report.HTML), "last") == nil {
		t.Errorf("expected (benign) HTML race on last; reports: %v", b.Reports())
	}
}

// TestEventHandlersSameTargetUnordered checks the paper's conservative
// choice: two addEventListener handlers for one (event, target) pair are
// not ordered with each other.
func TestEventHandlersSameTargetUnordered(t *testing.T) {
	site := loader.NewSite("sametarget").Add("index.html", `
<button id="b"></button>
<script>
var el = document.getElementById("b");
el.addEventListener("click", function() { shared = 1; });
el.addEventListener("click", function() { shared = 2; });
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("b"), "click")
	b.Run()
	if raceOnName(racesOfType(b, report.Variable), "shared") == nil {
		t.Fatalf("same-group handlers should be unordered; reports: %v", b.Reports())
	}
}

// TestEventPhasesOrdered checks Appendix A's phase ordering: a capturing
// handler on an ancestor and an at-target handler are ordered through the
// group barrier, so they do not race.
func TestEventPhasesOrdered(t *testing.T) {
	site := loader.NewSite("phases").Add("index.html", `
<div id="outer"><button id="inner"></button></div>
<script>
order = "";
document.getElementById("outer").addEventListener("click", function() { order = order + "C"; }, true);
document.getElementById("inner").addEventListener("click", function() { order = order + "T"; });
document.getElementById("outer").addEventListener("click", function() { order = order + "B"; });
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	w := b.Top()
	w.UserDispatch(w.Doc.GetElementByID("inner"), "click")
	b.Run()
	if got := globalStr(t, b, "order"); got != "CTB" {
		t.Fatalf("phase order = %q, want CTB (capture, target, bubble)", got)
	}
	// The script's own writes legitimately race with the user click
	// (registration is unordered with the dispatch), so only races with
	// BOTH sides inside handler operations would indicate missing
	// phase-barrier edges.
	if r := handlerHandlerRace(b, "order"); r != nil {
		t.Errorf("cross-phase handlers should be ordered: %v", r)
	}
}

// TestRepeatDispatchOrdered checks rule 9: two dispatches of the same event
// on the same target are ordered, so their handlers do not race.
func TestRepeatDispatchOrdered(t *testing.T) {
	site := loader.NewSite("repeat").Add("index.html", `
<button id="b"></button>
<script>
clicks = 0;
document.getElementById("b").onclick = function() { clicks = clicks + 1; };
</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	w := b.Top()
	btn := w.Doc.GetElementByID("b")
	w.UserDispatch(btn, "click")
	w.UserDispatch(btn, "click")
	b.Run()
	if globalNum(t, b, "clicks") != 2 {
		t.Fatal("handler did not run twice")
	}
	// Only a race between the two handler executions would indicate a
	// missing rule 9 edge; the script's initializing write races with
	// the click by design.
	if r := handlerHandlerRace(b, "clicks"); r != nil {
		t.Errorf("rule 9 missing: repeat dispatches race: %v", r)
	}
}

// TestSouthwestFormRace reproduces Fig. 2: the user types into the box
// while the page is still loading; a later script overwrites the value.
func TestSouthwestFormRace(t *testing.T) {
	site := loader.NewSite("southwest").Add("index.html", `
<input type="text" id="depart" />
<p>a</p><p>b</p><p>c</p><p>d</p>
<script>
document.getElementById("depart").value = "City of Departure";
</script>`)
	cfg := Config{Seed: 1, ParseStepCost: 20, SharedFrameGlobals: true, Latency: fixedLatency(nil)}
	b := New(site, cfg)
	typed := false
	var typeIn func()
	typeIn = func() {
		w := b.Top()
		if box := w.Doc.GetElementByID("depart"); box != nil && !typed {
			typed = true
			w.SimulateTyping(box, "SFO")
			return
		}
		if !typed {
			b.ScheduleUserAction(5, typeIn)
		}
	}
	b.ScheduleUserAction(5, typeIn)
	b.LoadPage("index.html")
	if !typed {
		t.Fatal("user never typed")
	}
	r := raceOnName(racesOfType(b, report.Variable), "value")
	if r == nil {
		t.Fatalf("no variable race on the form value; reports: %v", b.Reports())
	}
	// The user's input was erased by the script.
	if box := b.Top().Doc.GetElementByID("depart"); box.Value != "City of Departure" {
		t.Logf("note: script write landed before typing (value %q)", box.Value)
	}
}

// TestSharedFrameGlobalsOff checks the realistic isolation mode: with
// SharedFrameGlobals off, frame globals live in distinct location spaces
// and Fig. 1 reports no variable race.
func TestSharedFrameGlobalsOff(t *testing.T) {
	site := loader.NewSite("isolated").
		Add("index.html", `<iframe src="a.html"></iframe><iframe src="b.html"></iframe>`).
		Add("a.html", `<script>x = 2;</script>`).
		Add("b.html", `<script>y = x;</script>`)
	b := New(site, Config{Seed: 1, Latency: fixedLatency(nil)})
	b.LoadPage("index.html")
	if r := raceOnName(racesOfType(b, report.Variable), "x"); r != nil {
		t.Errorf("isolated frames should not race on globals: %v", r)
	}
}

// TestConsoleAndAlert checks output capture.
func TestConsoleAndAlert(t *testing.T) {
	site := loader.NewSite("console").Add("index.html",
		`<script>console.log("hello", 42); alert("hi");</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if len(b.Console) != 2 || b.Console[0] != "log: hello 42" || b.Console[1] != "alert: hi" {
		t.Errorf("console capture = %v", b.Console)
	}
}

// TestInnerHTML checks dynamic markup insertion with element writes.
func TestInnerHTML(t *testing.T) {
	site := loader.NewSite("innerhtml").Add("index.html", `
<div id="host"></div>
<script>
document.getElementById("host").innerHTML = "<span id='kid'>x</span>";
found = document.getElementById("kid") !== null;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "found") != 1 {
		t.Errorf("innerHTML children not reachable by id; errors: %v", b.Errors)
	}
}

// handlerHandlerRace returns a race on the named variable whose two sides
// are both event-handler operations, or nil.
func handlerHandlerRace(b *Browser, name string) *race.Report {
	for i, r := range b.Reports() {
		if r.Loc.Name != name {
			continue
		}
		pk := b.Ops.Get(r.Prior.Op).Kind
		ck := b.Ops.Get(r.Current.Op).Kind
		if pk == op.KindHandler && ck == op.KindHandler {
			return &b.Reports()[i]
		}
	}
	return nil
}

var _ = js.Undefined // keep the import when helpers churn
