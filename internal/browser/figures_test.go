package browser

import (
	"testing"

	"webracer/internal/js"
	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/race"
	"webracer/internal/report"
)

// fixedLatency gives every resource the same latency so tests control
// interleavings precisely via PerURL overrides.
func fixedLatency(overrides map[string]float64) loader.Latency {
	return loader.Latency{Base: 10, Jitter: 0, PerURL: overrides}
}

func runSite(t *testing.T, site *loader.Site, cfg Config) *Browser {
	t.Helper()
	if cfg.Latency.Base == 0 && cfg.Latency.PerURL == nil {
		cfg.Latency = fixedLatency(nil)
	}
	cfg.SharedFrameGlobals = true
	b := New(site, cfg)
	b.LoadPage("index.html")
	return b
}

func racesOfType(b *Browser, t report.Type) []race.Report {
	var out []race.Report
	for _, r := range b.Reports() {
		if report.Classify(r) == t {
			out = append(out, r)
		}
	}
	return out
}

func raceOnName(reports []race.Report, name string) *race.Report {
	for i, r := range reports {
		if r.Loc.Name == name {
			return &reports[i]
		}
	}
	return nil
}

// TestFigure1VariableRace reproduces Fig. 1: two iframes racing on a global
// variable x. The write in a.html and the read in b.html are unordered; the
// initial write x=1 in the parent is ordered before both.
func TestFigure1VariableRace(t *testing.T) {
	site := loader.NewSite("fig1").
		Add("index.html", `<script>x = 1;</script>
<iframe src="a.html"></iframe>
<iframe src="b.html"></iframe>`).
		Add("a.html", `<script>x = 2;</script>`).
		Add("b.html", `<script>alert(x);</script>`)
	b := runSite(t, site, Config{Seed: 1})
	vars := racesOfType(b, report.Variable)
	r := raceOnName(vars, "x")
	if r == nil {
		t.Fatalf("no variable race on x; races: %v, errors: %v", b.Reports(), b.Errors)
	}
	// One side must be a write (x=2 or alert's read partner).
	if r.Prior.Kind != mem.Write && r.Current.Kind != mem.Write {
		t.Errorf("race on x has no write side: %v", r)
	}
}

// TestFigure1NoRaceOnOrderedWrite checks the paper's accompanying claim:
// x=1 does not race with x=2, because the parent's inline script always
// executes before the iframes load (rules 1b, 6).
func TestFigure1NoRaceOnOrderedWrite(t *testing.T) {
	site := loader.NewSite("fig1b").
		Add("index.html", `<script>x = 1;</script>
<iframe src="a.html"></iframe>`).
		Add("a.html", `<script>x = 2;</script>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if vars := racesOfType(b, report.Variable); len(vars) > 0 {
		t.Errorf("unexpected variable races between ordered writes: %v", vars)
	}
}

// TestFigure3HTMLRace reproduces Fig. 3: clicking a javascript: link whose
// handler looks up a div that is parsed later in the page. Even when the
// user clicks after the page finished loading, the lookup and the parse are
// unordered in the happens-before, so the race is reported.
func TestFigure3HTMLRace(t *testing.T) {
	site := loader.NewSite("fig3").
		Add("index.html", `
<script>
function $get(i) { return document.getElementById(i); }
function show(emailTo) {
  var v = $get("dw");
  v.style.display = "block";
}
</script>
<a id="send" href="javascript:show('x@x.com')">Send Email</a>
<div id="dw" style="display:none">email form</div>`)
	b := runSite(t, site, Config{Seed: 1})
	// Simulated user clicks the link after load.
	w := b.Top()
	link := w.Doc.GetElementByID("send")
	if link == nil {
		t.Fatal("link not parsed")
	}
	w.UserDispatch(link, "click")
	b.Run()
	htmls := racesOfType(b, report.HTML)
	if raceOnName(htmls, "dw") == nil {
		t.Fatalf("no HTML race on dw; reports: %v, errors: %v", b.Reports(), b.Errors)
	}
}

// TestFigure3Crash drives the Fig. 3 trace itself: the user clicks before
// the div exists, the handler dereferences null, and the crash is recorded
// as a hidden page error while the page keeps loading (§2.3).
func TestFigure3Crash(t *testing.T) {
	site := loader.NewSite("fig3crash").
		Add("index.html", `
<script>
function show() { var v = document.getElementById("dw"); v.style.display = "block"; }
</script>
<a id="send" href="javascript:show()">Send Email</a>
<p>a</p><p>b</p><p>c</p><p>d</p><p>e</p><p>f</p><p>g</p><p>h</p>
<div id="dw" style="display:none">email form</div>`)
	cfg := Config{Seed: 1, ParseStepCost: 10, SharedFrameGlobals: true, Latency: fixedLatency(nil)}
	b := New(site, cfg)
	// Click as soon as the link exists, well before dw parses.
	var clicked bool
	var pump func()
	pump = func() {
		w := b.Top()
		if link := w.Doc.GetElementByID("send"); link != nil && !clicked {
			clicked = true
			w.UserDispatch(link, "click")
			return
		}
		if !clicked {
			b.ScheduleUserAction(5, pump)
		}
	}
	b.ScheduleUserAction(5, pump)
	b.LoadPage("index.html")
	if !clicked {
		t.Fatal("user never clicked")
	}
	foundCrash := false
	for _, e := range b.Errors {
		if jsErrKind(e.Err) == "TypeError" {
			foundCrash = true
		}
	}
	if !foundCrash {
		t.Fatalf("expected a TypeError crash from the early click; errors: %v", b.Errors)
	}
	if raceOnName(racesOfType(b, report.HTML), "dw") == nil {
		t.Fatalf("no HTML race on dw; reports: %v", b.Reports())
	}
	// The page must have kept loading after the hidden crash.
	if !b.Top().Loaded() {
		t.Error("window load never fired after the hidden crash")
	}
}

// TestFigure4FunctionRace reproduces Fig. 4: an iframe onload handler
// schedules doNextStep via setTimeout while the declaring script is parsed
// independently — a function race.
func TestFigure4FunctionRace(t *testing.T) {
	site := loader.NewSite("fig4").
		Add("index.html", `
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
<script>
function doNextStep() { done = 1; }
</script>`).
		Add("sub.html", `<p>sub</p>`)
	b := runSite(t, site, Config{Seed: 1})
	funcs := racesOfType(b, report.Function)
	if raceOnName(funcs, "doNextStep") == nil {
		t.Fatalf("no function race on doNextStep; reports: %v", b.Reports())
	}
}

// TestFigure4Fixed moves the script above the iframe; the declaration is
// then ordered before the handler (rules 1a, 1b, 8) and no race remains.
func TestFigure4Fixed(t *testing.T) {
	site := loader.NewSite("fig4fixed").
		Add("index.html", `
<script>
function doNextStep() { done = 1; }
</script>
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>`).
		Add("sub.html", `<p>sub</p>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	if funcs := racesOfType(b, report.Function); len(funcs) > 0 {
		t.Errorf("unexpected function races after the fix: %v", funcs)
	}
}

// TestFigure5EventDispatchRace reproduces Fig. 5: setting an iframe's
// onload from a separate script races with the browser's read of the onload
// slot when the load event dispatches.
func TestFigure5EventDispatchRace(t *testing.T) {
	site := loader.NewSite("fig5").
		Add("index.html", `
<iframe id="i" src="a.html"></iframe>
<script>
document.getElementById("i").onload = function() { ran = 1; };
</script>`).
		Add("a.html", `<p>nested</p>`)
	b := runSite(t, site, Config{Seed: 1})
	evs := racesOfType(b, report.EventDispatch)
	if raceOnName(evs, "load") == nil {
		t.Fatalf("no event dispatch race on load; reports: %v", b.Reports())
	}
}

// TestFigure5NoRaceWithAttribute is the paper's contrast case: when onload
// is set in the iframe tag itself, the handler write happens at parse(I) =
// create(I), which rule 8 orders before every dispatch. No race.
func TestFigure5NoRaceWithAttribute(t *testing.T) {
	site := loader.NewSite("fig5b").
		Add("index.html", `<iframe id="i" src="a.html" onload="ran = 1;"></iframe>`).
		Add("a.html", `<p>nested</p>`)
	b := runSite(t, site, Config{Seed: 1, ReportAll: true})
	for _, r := range racesOfType(b, report.EventDispatch) {
		if r.Loc.Name == "load" {
			t.Errorf("unexpected event dispatch race with in-tag handler: %v", r)
		}
	}
	// And the handler must actually have run.
	if v, ok := b.Top().It.LookupGlobal("ran"); !ok || v.Num != 1 {
		t.Error("in-tag onload handler did not run")
	}
}

func jsErrKind(err error) string {
	if e, ok := err.(*js.Error); ok {
		return e.Kind
	}
	return ""
}
