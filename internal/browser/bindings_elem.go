package browser

import (
	"strings"

	"webracer/internal/dom"
	"webracer/internal/html"
	"webracer/internal/js"
	"webracer/internal/mem"
	"webracer/internal/op"
)

// NodeValue returns the (cached) script wrapper for a DOM node, or Null.
func (w *Window) NodeValue(n *dom.Node) js.Value {
	if n == nil {
		return js.Null
	}
	if v, ok := w.elemObjs[n]; ok {
		return v
	}
	o := w.It.NewObject("HTMLElement")
	o.Host = &elemHost{w: w, n: n}
	v := js.ObjectVal(o)
	w.elemObjs[n] = v
	return v
}

// elemHost gives DOM node wrappers their live behavior: reflected
// attributes, form field state, handler slots, structural accessors and
// mutation methods — each instrumented per the §4 memory model.
type elemHost struct {
	w *Window
	n *dom.Node
	// style caches the style sub-object.
	style js.Value
}

// reflectedAttrs are attributes exposed 1:1 as properties.
var reflectedAttrs = map[string]bool{
	"id": true, "src": true, "href": true, "name": true, "type": true,
	"title": true, "alt": true, "rel": true, "action": true, "method": true,
	"placeholder": true, "content": true,
}

func (h *elemHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	w, n, b := h.w, h.n, h.w.b
	switch name {
	case "value":
		if n.IsFormField() {
			b.Access(mem.Read, mem.VarLoc(n.Serial, "value"), mem.CtxFormField, n.String()+".value")
			return js.Str(n.Value), true, nil
		}
		return js.Str(n.Attrs["value"]), true, nil
	case "checked":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "checked"), mem.CtxFormField, n.String()+".checked")
		return js.Boolean(n.Checked), true, nil
	case "style":
		if h.style.Kind == js.KindUndefined {
			so := it.NewObject("CSSStyleDeclaration")
			so.Host = &styleHost{w: w, n: n}
			h.style = js.ObjectVal(so)
		}
		return h.style, true, nil
	case "parentNode", "parentElement":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "parentNode"), mem.CtxPlain, n.String()+".parentNode")
		return w.NodeValue(n.Parent), true, nil
	case "childNodes", "children":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".childNodes")
		arr := it.NewArray()
		for _, k := range n.Kids {
			if name == "children" && k.Tag == "#text" {
				continue
			}
			arr.Elems = append(arr.Elems, w.NodeValue(k))
		}
		return js.ObjectVal(arr), true, nil
	case "firstChild":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".firstChild")
		if len(n.Kids) == 0 {
			return js.Null, true, nil
		}
		return w.NodeValue(n.Kids[0]), true, nil
	case "lastChild":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".lastChild")
		if len(n.Kids) == 0 {
			return js.Null, true, nil
		}
		return w.NodeValue(n.Kids[len(n.Kids)-1]), true, nil
	case "tagName", "nodeName":
		return js.Str(strings.ToUpper(n.Tag)), true, nil
	case "nodeType":
		if n.Tag == "#text" {
			return js.Number(3), true, nil
		}
		return js.Number(1), true, nil
	case "data", "nodeValue":
		if n.Tag == "#text" {
			return js.Str(n.Text), true, nil
		}
		return js.Null, true, nil
	case "innerHTML":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".innerHTML")
		var sb strings.Builder
		for _, k := range n.Kids {
			sb.WriteString(k.OuterHTML())
		}
		return js.Str(sb.String()), true, nil
	case "textContent", "innerText":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".textContent")
		var sb strings.Builder
		n.Walk(func(m *dom.Node) {
			if m.Tag == "#text" {
				sb.WriteString(m.Text)
			}
		})
		return js.Str(sb.String()), true, nil
	case "ownerDocument":
		return w.docObj, true, nil
	case "contentWindow", "contentDocument":
		if n.Tag != "iframe" {
			return js.Undefined, false, nil
		}
		child := w.b.windowForFrame(n)
		if child == nil {
			return js.Null, true, nil
		}
		if name == "contentWindow" {
			return child.winObj, true, nil
		}
		return child.docObj, true, nil
	case "offsetWidth", "offsetHeight", "clientWidth", "clientHeight", "scrollTop", "scrollLeft":
		return js.Number(0), true, nil
	case "className":
		b.Access(mem.Read, mem.VarLoc(n.Serial, "className"), mem.CtxPlain, n.String()+".className")
		return js.Str(n.Attrs["class"]), true, nil
	case "appendChild":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			child, err := argNode(w, args, 0, "appendChild")
			if err != nil {
				return js.Undefined, err
			}
			w.insertChild(n, child, nil)
			return w.NodeValue(child), nil
		}), true, nil
	case "insertBefore":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			child, err := argNode(w, args, 0, "insertBefore")
			if err != nil {
				return js.Undefined, err
			}
			var ref *dom.Node
			if len(args) > 1 && !args[1].IsNullish() {
				ref, err = argNode(w, args, 1, "insertBefore")
				if err != nil {
					return js.Undefined, err
				}
			}
			w.insertChild(n, child, ref)
			return w.NodeValue(child), nil
		}), true, nil
	case "removeChild":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			child, err := argNode(w, args, 0, "removeChild")
			if err != nil {
				return js.Undefined, err
			}
			wasInDoc := child.InDoc
			if n.RemoveChild(child) >= 0 && wasInDoc {
				w.instrumentRemove(child, n)
			}
			return w.NodeValue(child), nil
		}), true, nil
	case "setAttribute":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 2 {
				return js.Undefined, nil
			}
			w.setElemProp(n, args[0].ToString(), args[1])
			return js.Undefined, nil
		}), true, nil
	case "getAttribute":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 1 {
				return js.Null, nil
			}
			an := args[0].ToString()
			b.Access(mem.Read, mem.VarLoc(n.Serial, an), mem.CtxPlain, n.String()+"."+an)
			if v, ok := n.Attrs[an]; ok {
				return js.Str(v), nil
			}
			return js.Null, nil
		}), true, nil
	case "hasAttribute":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) < 1 {
				return js.False, nil
			}
			_, ok := n.Attrs[args[0].ToString()]
			return js.Boolean(ok), nil
		}), true, nil
	case "addEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.addEventListener(n, args)
			return js.Undefined, nil
		}), true, nil
	case "removeEventListener":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			w.removeEventListener(n, args)
			return js.Undefined, nil
		}), true, nil
	case "click", "focus", "blur":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			// Inline event dispatch: splits the current operation
			// (Appendix A).
			res := w.InlineDispatch(n, name, DispatchOpts{Detail: "inline"})
			if name == "click" && !res.DefaultPrevented {
				w.runDefaultAction(n, "click")
			}
			return js.Undefined, nil
		}), true, nil
	case "dispatchEvent":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.False, nil
			}
			ev := "custom"
			if args[0].Kind == js.KindString {
				ev = args[0].Str
			} else if args[0].Kind == js.KindObject {
				if t, ok := args[0].Obj.GetProp("type"); ok {
					ev = t.ToString()
				}
			}
			w.InlineDispatch(n, ev, DispatchOpts{Detail: "dispatchEvent"})
			return js.True, nil
		}), true, nil
	case "cloneNode":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			deep := len(args) > 0 && args[0].Truthy()
			clone := cloneNode(w, n, deep)
			w.b.createOps[clone] = w.b.curOp
			return w.NodeValue(clone), nil
		}), true, nil
	case "getElementsByTagName":
		return it.NativeFunc(name, func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			if len(args) == 0 {
				return js.ObjectVal(it.NewArray()), nil
			}
			tag := strings.ToLower(args[0].ToString())
			arr := it.NewArray()
			n.Walk(func(m *dom.Node) {
				if m != n && m.Tag == tag {
					b.Access(mem.Read, w.elemLoc(m), mem.CtxElemLookup, "getElementsByTagName")
					arr.Elems = append(arr.Elems, w.NodeValue(m))
				}
			})
			return js.ObjectVal(arr), nil
		}), true, nil
	}
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		event := name[2:]
		b.Access(mem.Read, mem.HandlerLoc(n.Serial, event, 0), mem.CtxHandlerFire, n.String()+"."+name)
		for _, l := range n.Listeners(event) {
			if l.HandlerID == 0 {
				if v, ok := l.Fn.(js.Value); ok {
					return v, true, nil
				}
				if s, ok := l.Fn.(string); ok {
					return js.Str(s), true, nil
				}
			}
		}
		return js.Null, true, nil
	}
	if reflectedAttrs[name] {
		b.Access(mem.Read, mem.VarLoc(n.Serial, name), mem.CtxPlain, n.String()+"."+name)
		return js.Str(n.Attrs[name]), true, nil
	}
	return js.Undefined, false, nil
}

func (h *elemHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	w, n := h.w, h.n
	switch name {
	case "value":
		if n.IsFormField() {
			w.b.Access(mem.Write, mem.VarLoc(n.Serial, "value"), mem.CtxFormField, n.String()+".value=")
			n.Value = v.ToString()
			return true, nil
		}
	case "checked":
		w.b.Access(mem.Write, mem.VarLoc(n.Serial, "checked"), mem.CtxFormField, n.String()+".checked=")
		n.Checked = v.Truthy()
		return true, nil
	case "innerHTML":
		w.setInnerHTML(n, v.ToString())
		return true, nil
	case "textContent", "innerText":
		w.b.Access(mem.Write, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".textContent=")
		for len(n.Kids) > 0 {
			n.RemoveChild(n.Kids[0])
		}
		n.AppendChild(n.Doc.NewText(v.ToString()))
		return true, nil
	case "className":
		w.b.Access(mem.Write, mem.VarLoc(n.Serial, "className"), mem.CtxPlain, n.String()+".className=")
		n.Attrs["class"] = v.ToString()
		return true, nil
	}
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		w.setHandlerSlot(n, name[2:], v)
		return true, nil
	}
	if reflectedAttrs[name] {
		w.setElemProp(n, name, v)
		return true, nil
	}
	return false, nil
}

// setHandlerSlot assigns the on-event property: the §4.3 slot-0 write.
func (w *Window) setHandlerSlot(n *dom.Node, event string, v js.Value) {
	target := n
	if n.Tag == "body" && (event == "load" || event == "unload") {
		target = w.winNode
	}
	w.b.Access(mem.Write, mem.HandlerLoc(target.Serial, event, 0), mem.CtxHandlerAdd,
		n.String()+".on"+event+"=")
	var fn any
	if v.IsCallable() {
		fn = v
	} else if v.Kind == js.KindString {
		fn = v.Str
	} else {
		fn = nil
	}
	target.AddListener(event, &dom.Listener{HandlerID: 0, Fn: fn})
}

// setElemProp writes a reflected attribute, triggering resource activation
// when src is set on script/img/iframe elements.
func (w *Window) setElemProp(n *dom.Node, name string, v js.Value) {
	b := w.b
	if strings.HasPrefix(name, "on") && len(name) > 2 {
		// setAttribute("onclick", "code")
		b.Access(mem.Write, mem.HandlerLoc(n.Serial, name[2:], 0), mem.CtxHandlerAdd,
			"setAttribute "+name)
		n.AddListener(name[2:], &dom.Listener{HandlerID: 0, Fn: v.ToString()})
		return
	}
	b.Access(mem.Write, mem.VarLoc(n.Serial, name), mem.CtxPlain, n.String()+"."+name+"=")
	if name == "id" {
		w.reindexID(n, v.ToString())
	} else {
		n.Attrs[name] = v.ToString()
	}
	if name == "src" {
		w.activateBySrc(n)
	}
}

// reindexID updates the id attribute, keeping getElementById consistent.
func (w *Window) reindexID(n *dom.Node, id string) {
	if n.InDoc && n.Parent != nil {
		parent := n.Parent
		idx := parent.Index(n)
		parent.RemoveChild(n)
		n.Attrs["id"] = id
		var ref *dom.Node
		if idx < len(parent.Kids) {
			ref = parent.Kids[idx]
		}
		parent.InsertBefore(n, ref)
		return
	}
	n.Attrs["id"] = id
}

// insertChild performs a dynamic insertion (appendChild/insertBefore):
// the §4.2 element write plus structural property writes, then resource
// activation for scripts, images and iframes in the inserted subtree.
// Moving an in-document node counts as remove + insert, which is why moves
// can race with lookups (§7 discusses this very choice).
func (w *Window) insertChild(parent, child *dom.Node, ref *dom.Node) {
	if child.InDoc && child.Parent != nil {
		old := child.Parent
		old.RemoveChild(child)
		w.instrumentRemove(child, old)
	}
	parent.InsertBefore(child, ref)
	if child.InDoc {
		child.Walk(func(m *dom.Node) { m.Inserted = false })
		w.instrumentInsert(child, parent)
		w.activateSubtree(child)
	} else {
		// Insertion into a detached tree still writes structure.
		w.b.Access(mem.Write, mem.VarLoc(parent.Serial, "childNodes"), mem.CtxPlain, "insert detached")
		w.b.Access(mem.Write, mem.VarLoc(child.Serial, "parentNode"), mem.CtxPlain, "insert detached")
	}
}

// activateSubtree triggers loading behavior for scripts, images and iframes
// that just entered the document.
func (w *Window) activateSubtree(root *dom.Node) {
	var pending []*dom.Node
	root.Walk(func(m *dom.Node) {
		switch m.Tag {
		case "script", "img", "iframe":
			pending = append(pending, m)
		}
	})
	for _, m := range pending {
		w.activateBySrc(m)
	}
}

// activateBySrc starts the load behavior of a script/img/iframe node when
// its src is available. Scripts run at most once.
func (w *Window) activateBySrc(n *dom.Node) {
	b := w.b
	switch n.Tag {
	case "script":
		if n.Attrs["__ran__"] != "" {
			return
		}
		src := n.Attrs["src"]
		inline := scriptText(n)
		switch {
		case src != "" && n.InDoc:
			n.Attrs["__ran__"] = "1"
			w.loadInsertedScript(n, src)
		case src == "" && inline != "" && n.InDoc:
			// Script-inserted inline scripts execute synchronously
			// within the inserting operation (§3.3): no new op.
			n.Attrs["__ran__"] = "1"
			w.runScript(inline, "script-inserted inline")
		}
	case "img":
		w.maybeLoadImage(n, b.curOp)
	case "iframe":
		if src := n.Attrs["src"]; src != "" && n.InDoc && n.Attrs["__loading__"] == "" {
			n.Attrs["__loading__"] = "1"
			w.handleIframe(n, b.curOp)
		}
	}
}

// loadInsertedScript loads and runs a script-inserted external script:
// asynchronous semantics (§3.3 — ordered only by rules 2, 3 and 15).
func (w *Window) loadInsertedScript(n *dom.Node, src string) {
	b := w.b
	creator := b.curOp
	blocking := !w.loadFired
	if blocking {
		w.blockers++
	}
	w.fetchScript(n, src, func(body string, ok bool, failLast op.ID) {
		if !ok {
			if blocking {
				w.resourceDone(failLast)
			}
			return
		}
		exe := b.newOp(op.KindScript, "exe inserted "+src)
		b.HB.Edge(creator, exe) // HB rule 2: create(E) ⇝ exe(E)
		b.withOp(exe, func() { w.runScript(body, src) })
		ld := w.fireScriptLoad(n, exe)
		if blocking {
			w.resourceDone(ld.Last)
		}
	})
}

// setInnerHTML replaces a node's children with parsed markup. Scripts
// inserted via innerHTML do not execute (matching real browsers); images
// and iframes do load.
func (w *Window) setInnerHTML(n *dom.Node, markup string) {
	b := w.b
	b.Access(mem.Write, mem.VarLoc(n.Serial, "childNodes"), mem.CtxPlain, n.String()+".innerHTML=")
	for len(n.Kids) > 0 {
		child := n.Kids[0]
		wasInDoc := child.InDoc
		n.RemoveChild(child)
		if wasInDoc {
			w.instrumentRemove(child, n)
		}
	}
	for _, frag := range html.ParseFragment(w.Doc, markup) {
		n.AppendChild(frag)
		if n.InDoc {
			w.instrumentInsert(frag, n)
			frag.Walk(func(m *dom.Node) {
				if m.Tag == "img" || m.Tag == "iframe" {
					w.activateBySrc(m)
				}
			})
		}
	}
}

func argNode(w *Window, args []js.Value, i int, what string) (*dom.Node, error) {
	if i >= len(args) || args[i].Kind != js.KindObject {
		return nil, jsTypeError(what + ": argument is not a node")
	}
	h, ok := args[i].Obj.Host.(*elemHost)
	if !ok {
		return nil, jsTypeError(what + ": argument is not a node")
	}
	return h.n, nil
}

func jsTypeError(msg string) error { return &js.Error{Kind: "TypeError", Msg: msg} }

// cloneNode copies a node (detached). Listeners do not transfer, matching
// the DOM specification; the clone re-enters instrumentation only when it
// is inserted.
func cloneNode(w *Window, n *dom.Node, deep bool) *dom.Node {
	c := w.Doc.NewNode(n.Tag)
	if n.Tag == "#text" {
		c.Text = n.Text
	}
	for k, v := range n.Attrs {
		if strings.HasPrefix(k, "__") {
			continue // internal bookkeeping attrs stay behind
		}
		c.Attrs[k] = v
	}
	c.Value, c.Checked = n.Value, n.Checked
	if deep {
		for _, kid := range n.Kids {
			c.AppendChild(cloneNode(w, kid, true))
		}
	}
	return c
}

// scriptText returns a script element's source: the Text the parser stored,
// or the concatenated text children for dynamically built scripts.
func scriptText(n *dom.Node) string {
	if n.Text != "" {
		return n.Text
	}
	var sb strings.Builder
	for _, k := range n.Kids {
		if k.Tag == "#text" {
			sb.WriteString(k.Text)
		}
	}
	return sb.String()
}

// addEventListener implements the §4.3 (el, e, h) write for explicit
// listener registration.
func (w *Window) addEventListener(n *dom.Node, args []js.Value) {
	if len(args) < 2 || !args[1].IsCallable() {
		return
	}
	event := args[0].ToString()
	capture := len(args) > 2 && args[2].Truthy()
	fn := args[1]
	h := fn.Obj.Fn.Serial
	target := n
	w.b.Access(mem.Write, mem.HandlerLoc(target.Serial, event, h), mem.CtxHandlerAdd,
		"addEventListener "+event)
	target.AddListener(event, &dom.Listener{HandlerID: h, Fn: fn, Capture: capture})
}

func (w *Window) removeEventListener(n *dom.Node, args []js.Value) {
	if len(args) < 2 || !args[1].IsCallable() {
		return
	}
	event := args[0].ToString()
	h := args[1].Obj.Fn.Serial
	w.b.Access(mem.Write, mem.HandlerLoc(n.Serial, event, h), mem.CtxHandlerRemove,
		"removeEventListener "+event)
	n.RemoveListener(event, h)
}

// styleHost instruments style.* accesses as properties of the element
// (style.display is the load-bearing one: Fig. 3 flips it to show a form).
type styleHost struct {
	w *Window
	n *dom.Node
}

func (h *styleHost) HostGet(it *js.Interp, name string) (js.Value, bool, error) {
	h.w.b.Access(mem.Read, mem.VarLoc(h.n.Serial, "style."+name), mem.CtxPlain,
		h.n.String()+".style."+name)
	if v, ok := h.n.Attrs["style."+name]; ok {
		return js.Str(v), true, nil
	}
	return js.Str(""), true, nil
}

func (h *styleHost) HostSet(it *js.Interp, name string, v js.Value) (bool, error) {
	h.w.b.Access(mem.Write, mem.VarLoc(h.n.Serial, "style."+name), mem.CtxPlain,
		h.n.String()+".style."+name+"=")
	h.n.Attrs["style."+name] = v.ToString()
	return true, nil
}
