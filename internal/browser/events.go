package browser

import (
	"fmt"

	"webracer/internal/dom"
	"webracer/internal/js"
	"webracer/internal/mem"
	"webracer/internal/op"
)

// DispatchOpts tunes one event dispatch.
type DispatchOpts struct {
	// ExtraPreds are additional happens-before predecessors of the
	// dispatch's anchor (rules 3, 7, 10, 11, 14, 15 feed in here).
	ExtraPreds []op.ID
	// Bubbles enables the bubbling phase (click and other UI events).
	Bubbles bool
	// Detail annotates operation labels.
	Detail string
}

// DispatchResult summarizes a dispatch: Anchor is its begin barrier, Last
// the operation that every handler of the dispatch happens-before (used for
// outgoing set-edges like rules 7 and 9), Handlers the number of handler
// operations executed.
type DispatchResult struct {
	Anchor   op.ID
	Last     op.ID
	Handlers int
	// DefaultPrevented is set when some handler called preventDefault;
	// callers with default actions (javascript: links) honor it.
	DefaultPrevented bool
}

// bubblingEvents per DOM Level 3: UI interaction events propagate; load,
// focus and blur do not.
var bubblingEvents = map[string]bool{
	"click": true, "mousedown": true, "mouseup": true, "mousemove": true,
	"mouseover": true, "mouseout": true, "keydown": true, "keyup": true,
	"keypress": true, "input": true, "change": true,
}

// Dispatch fires event on target, executing registered handlers through the
// capturing, at-target and bubbling phases of Appendix A.
//
// Happens-before bookkeeping:
//   - create(T) ⇝ anchor (rule 8)
//   - previous dispatch of (event, T) ⇝ anchor (rule 9)
//   - handlers are grouped by (phase, current target); groups are ordered
//     through join barriers, but handlers *within* one group are left
//     unordered, matching the paper's erring toward fewer edges.
//
// Memory model bookkeeping:
//   - the dispatch reads the on-event attribute slot (T, event, 0) — the
//     implicit browser read that exposes Fig. 5's event dispatch race;
//   - each executed handler h reads (currentTarget, event, h) (§4.3).
func (w *Window) Dispatch(target *dom.Node, event string, opts DispatchOpts) DispatchResult {
	b := w.b
	b.mDispatch.Inc()
	key := dispKey{target, event}
	ds := w.disp[key]
	if ds == nil {
		ds = &dispState{}
		w.disp[key] = ds
	}
	label := event + " on " + target.String()
	if opts.Detail != "" {
		label += " (" + opts.Detail + ")"
	}
	anchor := b.newOp(op.KindAnchor, label)
	for _, p := range opts.ExtraPreds {
		b.HB.Edge(p, anchor)
	}
	if c, ok := b.createOps[target]; ok {
		b.HB.Edge(c, anchor) // HB rule 8
	}
	if ds.count > 0 {
		// HB rule 9: successive dispatches of the same (event, target) are
		// ordered in observed firing order. Nothing causal forces that
		// order — two independent callers of element.click() could fire
		// either way — so the edge is weak: full happens-before keeps it,
		// the predictive order (hb.NewPredictiveClocks) drops it.
		b.HB.WeakEdge(ds.last, anchor)
	}
	b.Ops.Began(anchor)
	b.withOp(anchor, func() {
		b.Access(mem.Read, mem.HandlerLoc(target.Serial, event, 0), mem.CtxHandlerFire,
			"dispatch "+event)
	})

	bubbles := opts.Bubbles || bubblingEvents[event]
	groups := w.propagationGroups(target, event, bubbles)
	prev := anchor
	handlers := 0
	state := &eventState{}
	for _, g := range groups {
		if len(g.listeners) == 0 {
			continue
		}
		hops := make([]op.ID, 0, len(g.listeners))
		for _, l := range g.listeners {
			h := b.newOp(op.KindHandler, fmt.Sprintf("handler %s@%s", event, g.target.String()))
			if b.cfg.OrderSameTargetHandlers && len(hops) > 0 {
				// Ablation variant: chain same-group handlers.
				b.HB.Edge(hops[len(hops)-1], h)
			} else {
				b.HB.Edge(prev, h)
			}
			hops = append(hops, h)
			w.runHandler(h, g.target, event, l, state)
			handlers++
			if state.stopImmediate {
				break
			}
		}
		join := b.newOp(op.KindJoin, "join "+event)
		for _, h := range hops {
			b.HB.Edge(h, join)
		}
		b.Ops.Began(join)
		prev = join
		if state.stopped || state.stopImmediate {
			break // stopPropagation: no further targets see the event
		}
	}
	ds.count++
	ds.last = prev
	return DispatchResult{
		Anchor:           anchor,
		Last:             prev,
		Handlers:         handlers,
		DefaultPrevented: state.prevented,
	}
}

// eventState carries the mutable flags of one dispatched event.
type eventState struct {
	stopped       bool // stopPropagation: finish this target, skip the rest
	stopImmediate bool // stopImmediatePropagation: skip everything
	prevented     bool // preventDefault: suppress the default action
}

type phaseGroup struct {
	target    *dom.Node
	listeners []*dom.Listener
}

// propagationGroups builds the (phase, current target) handler groups of
// one dispatch: capturing root→parent, at-target, bubbling parent→root.
func (w *Window) propagationGroups(target *dom.Node, event string, bubbles bool) []phaseGroup {
	path := target.Path()
	var groups []phaseGroup
	// Capturing: ancestors top-down, capture listeners only.
	for _, n := range path[:len(path)-1] {
		groups = append(groups, phaseGroup{n, filterListeners(n, event, true)})
	}
	// At-target: all listeners in registration order.
	groups = append(groups, phaseGroup{target, target.Listeners(event)})
	// Bubbling: ancestors bottom-up, non-capture listeners.
	if bubbles {
		for i := len(path) - 2; i >= 0; i-- {
			groups = append(groups, phaseGroup{path[i], filterListeners(path[i], event, false)})
		}
	}
	return groups
}

func filterListeners(n *dom.Node, event string, capture bool) []*dom.Listener {
	var out []*dom.Listener
	for _, l := range n.Listeners(event) {
		if l.Capture == capture {
			out = append(out, l)
		}
	}
	return out
}

// runHandler executes one listener as operation h: the §4.3 handler-location
// read followed by the handler body, with crash containment.
func (w *Window) runHandler(h op.ID, currentTarget *dom.Node, event string, l *dom.Listener, state *eventState) {
	b := w.b
	b.withOp(h, func() {
		b.Access(mem.Read, mem.HandlerLoc(currentTarget.Serial, event, l.HandlerID),
			mem.CtxHandlerFire, "run handler for "+event)
		fn, err := w.listenerFunc(l)
		if err != nil {
			b.pageError("compile handler "+event, err)
			return
		}
		if !fn.IsCallable() {
			return
		}
		evObj := w.newEventObject(event, currentTarget, state)
		if _, err := w.It.CallFunction(fn, w.NodeValue(currentTarget), []js.Value{evObj}); err != nil {
			w.scriptError("handler "+event+" on "+currentTarget.String(), err)
		}
	})
}

// listenerFunc resolves a listener to a callable, compiling attribute
// source text on first dispatch (and caching the result in the listener).
func (w *Window) listenerFunc(l *dom.Listener) (js.Value, error) {
	switch fn := l.Fn.(type) {
	case js.Value:
		return fn, nil
	case string:
		v, err := w.It.CompileFunction(fn, "event")
		if err != nil {
			return js.Undefined, err
		}
		l.Fn = v
		return v, nil
	default:
		return js.Undefined, nil
	}
}

func (w *Window) newEventObject(event string, target *dom.Node, state *eventState) js.Value {
	o := w.It.NewObject("Event")
	o.SetProp("type", js.Str(event))
	o.SetProp("target", w.NodeValue(target))
	o.SetProp("currentTarget", w.NodeValue(target))
	o.SetProp("preventDefault", w.It.NativeFunc("preventDefault",
		func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
			state.prevented = true
			return js.Undefined, nil
		}))
	o.SetProp("stopPropagation", w.It.NativeFunc("stopPropagation",
		func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
			state.stopped = true
			return js.Undefined, nil
		}))
	o.SetProp("stopImmediatePropagation", w.It.NativeFunc("stopImmediatePropagation",
		func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
			state.stopImmediate = true
			return js.Undefined, nil
		}))
	return js.ObjectVal(o)
}

// InlineDispatch fires an event from inside running script (element.click()
// or a javascript: default action), splitting the current operation A into
// A[0:k) ⇝ dispatch ⇝ A[k+1:|A|) per Appendix A. The interpreter resumes
// under the continuation operation.
func (w *Window) InlineDispatch(target *dom.Node, event string, opts DispatchOpts) DispatchResult {
	b := w.b
	before := b.curOp
	opts.ExtraPreds = append(opts.ExtraPreds, before) // A[0:k) ⇝ B
	res := w.Dispatch(target, event, opts)
	cont := b.newOp(op.KindContinuation, "cont after inline "+event)
	b.HB.Edge(before, cont)
	b.HB.Edge(res.Last, cont) // B ⇝ A[k+1:|A|)
	b.Ops.Began(cont)
	b.curOp = cont
	return res
}

// SimulateTyping models a user typing into a form field (§5.2.2): a user
// operation writes the field's value (the §4.1 "Additional Cases" write,
// tagged CtxUserInput so the form filter can see it), then the input event
// dispatches. This is the mechanism that exposes Fig. 2's lost-input race.
func (w *Window) SimulateTyping(n *dom.Node, text string) DispatchResult {
	b := w.b
	u := b.newOp(op.KindUser, "user types into "+n.String())
	if c, ok := b.createOps[n]; ok {
		b.HB.Edge(c, u) // the field must exist to be typed into (rule 8 analogue)
	}
	b.withOp(u, func() {
		b.Access(mem.Write, mem.VarLoc(n.Serial, "value"), mem.CtxUserInput,
			"user types "+fmt.Sprintf("%q", text))
		n.Value = text
	})
	return w.Dispatch(n, "input", DispatchOpts{ExtraPreds: []op.ID{u}, Detail: "typing"})
}

// UserDispatch fires an event as a simulated user action (automatic
// exploration, §5.2.2): no predecessor beyond rules 8 and 9. The browser
// default action (javascript: link navigation) runs afterwards unless a
// handler called preventDefault.
func (w *Window) UserDispatch(target *dom.Node, event string) DispatchResult {
	res := w.Dispatch(target, event, DispatchOpts{Detail: "user"})
	if !res.DefaultPrevented {
		w.runDefaultAction(target, event)
	}
	return res
}

// runDefaultAction performs the browser default action after dispatch: a
// click on an <a href="javascript:..."> link executes the code (Fig. 3's
// Send Email link); a click on a checkbox or radio toggles its checked
// state — a form-state write per §4.1 "Additional Cases".
func (w *Window) runDefaultAction(target *dom.Node, event string) {
	if event != "click" {
		return
	}
	b := w.b
	switch {
	case target.Tag == "a":
		href := target.Attrs["href"]
		const proto = "javascript:"
		if len(href) < len(proto) || href[:len(proto)] != proto {
			return
		}
		def := b.newOp(op.KindHandler, "default action "+target.String())
		if c, ok := b.createOps[target]; ok {
			b.HB.Edge(c, def)
		}
		if ds, ok := w.disp[dispKey{target, event}]; ok {
			b.HB.Edge(ds.last, def)
		}
		b.withOp(def, func() { w.runScript(href[len(proto):], "javascript: link") })
	case target.Tag == "input" && (target.Attrs["type"] == "checkbox" || target.Attrs["type"] == "radio"):
		def := b.newOp(op.KindUser, "toggle "+target.String())
		if c, ok := b.createOps[target]; ok {
			b.HB.Edge(c, def)
		}
		if ds, ok := w.disp[dispKey{target, event}]; ok {
			b.HB.Edge(ds.last, def)
		}
		b.withOp(def, func() {
			b.Access(mem.Write, mem.VarLoc(target.Serial, "checked"), mem.CtxUserInput,
				"user toggles "+target.String())
			if target.Attrs["type"] == "checkbox" {
				target.Checked = !target.Checked
			} else {
				target.Checked = true
			}
		})
		w.Dispatch(target, "change", DispatchOpts{ExtraPreds: []op.ID{def}})
	}
}
