package browser

import (
	"fmt"
	"sort"
	"strings"

	"webracer/internal/dom"
	"webracer/internal/html"
	"webracer/internal/js"
	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/op"
)

// Window is one browsing context: the top-level page or an inline frame.
// Each window has its own document and its own script global scope (with
// the Fig. 1 shared-location option, see Config.SharedFrameGlobals).
type Window struct {
	b         *Browser
	URL       string
	Doc       *dom.Document
	It        *js.Interp
	parent    *Window
	frameElem *dom.Node // the <iframe> element in the parent document

	// winNode is the hidden target node for window-level events (load).
	winNode *dom.Node

	parser       *html.Parser
	parseDone    bool
	chainOp      op.ID // rule 1 cursor: last op in the static chain
	finalParseOp op.ID

	blockers      int
	loadEdges     []op.ID // ld(E).Last ops feeding ld(W)'s anchor (rule 15)
	dclLast       op.ID
	dclDone       bool
	loadFired     bool
	loadScheduled bool
	// LoadDisp is the window load dispatch (valid once loadFired).
	LoadDisp DispatchResult

	deferQ   []*deferJob
	deferIdx int

	disp     map[dispKey]*dispState
	timerSeq int
	timers   map[int]*timerRec

	elemObjs map[*dom.Node]js.Value
	winObj   js.Value
	docObj   js.Value
	storage  js.Value
}

type deferJob struct {
	node    *dom.Node
	parseOp op.ID
	body    string
	arrived bool
	failed  bool
	ldLast  op.ID
	done    bool
}

type dispKey struct {
	target *dom.Node
	event  string
}

type dispState struct {
	count int
	last  op.ID
}

type timerRec struct {
	task     *task
	interval bool
	cleared  bool
	lastCb   op.ID
	fn       js.Value
	src      string
	every    float64
	ticks    int
	// slot is the timer's logical location identity when the
	// InstrumentTimerClears extension is enabled.
	slot uint64
	// fired marks one-shot timers that already ran.
	fired bool
	// armed tracks an open async trace span for the pending callback
	// (only maintained when tracing is enabled).
	armed bool
}

// LoadPage starts loading url as the top-level page and runs the event loop
// to quiescence. It returns the top window.
func (b *Browser) LoadPage(url string) *Window {
	w := b.newWindow(url, nil, nil)
	resp := b.fetch(url)
	if resp.Err != nil {
		b.pageError("fetch "+url, resp.Err)
		return w
	}
	if !resp.OK() {
		b.pageError("fetch "+url, fmt.Errorf("status %d for %q", resp.Status, url))
		return w
	}
	w.chainOp = b.initOp
	b.schedule(resp.Latency, func() { w.beginParse(resp.Body) })
	b.Run()
	return w
}

func (b *Browser) newWindow(url string, parent *Window, frameElem *dom.Node) *Window {
	w := &Window{
		b:         b,
		URL:       url,
		parent:    parent,
		frameElem: frameElem,
		Doc:       dom.NewDocument(url, b.Serials),
		disp:      map[dispKey]*dispState{},
		timers:    map[int]*timerRec{},
		elemObjs:  map[*dom.Node]js.Value{},
	}
	w.winNode = w.Doc.NewNode("#window")
	var hooks js.Hooks = b
	if b.cfg.NoInstrument {
		hooks = nil // interpreter fast path: no access callbacks at all
	}
	w.It = js.New(b.Serials, hooks)
	if parent != nil && b.cfg.SharedFrameGlobals {
		// Frame globals share the top window's logical location space,
		// reproducing the paper's Fig. 1 variable race between frames.
		w.It.GlobalEnv().GlobalSerial = topOf(parent).It.GlobalEnv().GlobalSerial
	}
	w.It.Rand = func() float64 { return b.rng.Float64() }
	w.It.Now = func() float64 { return b.clock }
	w.installBindings()
	if b.top == nil {
		b.top = w
	}
	b.windows = append(b.windows, w)
	return w
}

func topOf(w *Window) *Window {
	for w.parent != nil {
		w = w.parent
	}
	return w
}

// Browser returns the owning browser.
func (w *Window) Browser() *Browser { return w.b }

// Loaded reports whether the window's load event has fired.
func (w *Window) Loaded() bool { return w.loadFired }

// DispatchCount reports how many times event has been dispatched on target
// (the single-dispatch filter and tests use it).
func (w *Window) DispatchCount(target *dom.Node, event string) int {
	if ds, ok := w.disp[dispKey{target, event}]; ok {
		return ds.count
	}
	return 0
}

// WindowNode exposes the hidden node targeted by window-level events.
func (w *Window) WindowNode() *dom.Node { return w.winNode }

// ---- parsing pipeline ----

func (w *Window) beginParse(src string) {
	w.parser = html.NewParser(w.Doc, src)
	w.parseStep()
}

// parseStep consumes parser events until it has processed one element (the
// granularity of parse(E) operations), then yields to the event loop —
// partial page rendering, the enabler of most of §2's races.
func (w *Window) parseStep() {
	b := w.b
	for {
		ev := w.parser.Next()
		switch ev.Kind {
		case html.EventDone:
			w.finishParse()
			return
		case html.EventClose:
			continue
		case html.EventText:
			// Text nodes join the chain as lightweight parse ops so
			// their childNodes write has an owner.
			b.mParseText.Inc()
			pop := b.newOp(op.KindParse, "#text")
			b.HB.Edge(w.chainOp, pop) // HB rule 1a
			w.chainOp = pop
			b.withOp(pop, func() {
				b.Access(mem.Write, mem.VarLoc(ev.Parent.Serial, "childNodes"),
					mem.CtxPlain, "parse text")
			})
			continue
		case html.EventOpen:
			b.mParseElem.Inc()
			pop := b.newOp(op.KindParse, "parse "+ev.Node.String())
			b.HB.Edge(w.chainOp, pop) // HB rule 1a
			w.chainOp = pop
			b.createOps[ev.Node] = pop
			b.withOp(pop, func() { w.instrumentInsert(ev.Node, ev.Parent) })
			switch ev.Node.Tag {
			case "script":
				if w.handleParsedScript(ev.Node, pop) {
					return // parsing blocked on a synchronous script
				}
			case "iframe":
				w.handleIframe(ev.Node, pop)
			case "img":
				w.maybeLoadImage(ev.Node, pop)
			}
			b.schedule(b.cfg.ParseStepCost, w.parseStep)
			return
		}
	}
}

// instrumentInsert performs the §4 writes for inserting node (and its
// already-attached subtree) under parent: the HTML element location write,
// the parentNode/childNodes property writes, and the event-handler location
// writes for on-event content attributes. Runs under the current op.
func (w *Window) instrumentInsert(node *dom.Node, parent *dom.Node) {
	b := w.b
	b.Access(mem.Write, mem.VarLoc(parent.Serial, "childNodes"), mem.CtxPlain,
		"insert "+node.String())
	node.Walk(func(n *dom.Node) {
		if n.Tag == "#text" || n.Inserted {
			return
		}
		n.Inserted = true
		if _, ok := b.createOps[n]; !ok {
			b.createOps[n] = b.curOp
		}
		b.Access(mem.Write, w.elemLoc(n), mem.CtxElemInsert, "insert "+n.String())
		b.Access(mem.Write, mem.VarLoc(n.Serial, "parentNode"), mem.CtxPlain, "insert")
		if n.Tag == "input" || n.Tag == "textarea" {
			b.Access(mem.Write, mem.VarLoc(n.Serial, "value"), mem.CtxFormField, "initial value")
		}
		w.registerAttrHandlers(n)
	})
}

// instrumentRemove performs the §4.2 removal writes.
func (w *Window) instrumentRemove(node *dom.Node, parent *dom.Node) {
	b := w.b
	b.Access(mem.Write, mem.VarLoc(parent.Serial, "childNodes"), mem.CtxPlain,
		"remove "+node.String())
	node.Walk(func(n *dom.Node) {
		if n.Tag == "#text" {
			return
		}
		n.Inserted = false
		b.Access(mem.Write, w.elemLoc(n), mem.CtxElemRemove, "remove "+n.String())
		b.Access(mem.Write, mem.VarLoc(n.Serial, "parentNode"), mem.CtxPlain, "remove")
	})
}

// elemLoc is the HTML element location of n: id-keyed when the element has
// an id (so a failed lookup and a later insertion meet at one location),
// node-keyed otherwise.
func (w *Window) elemLoc(n *dom.Node) mem.Loc {
	if id := n.ID(); id != "" {
		return mem.ElemIDLoc(w.Doc.Root.Serial, id)
	}
	return mem.ElemLoc(n.Serial)
}

// registerAttrHandlers turns on-event content attributes into handler
// registrations: a write of (el, e, 0) per §4.3.
func (w *Window) registerAttrHandlers(n *dom.Node) {
	names := make([]string, 0, len(n.Attrs))
	for name := range n.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := n.Attrs[name]
		if !strings.HasPrefix(name, "on") || len(name) <= 2 {
			continue
		}
		event := name[2:]
		target := n
		// <body onload> and <body onunload> register on the window.
		if n.Tag == "body" && (event == "load" || event == "unload") {
			target = w.winNode
		}
		w.b.Access(mem.Write, mem.HandlerLoc(target.Serial, event, 0), mem.CtxHandlerAdd,
			fmt.Sprintf("attr on%s of %s", event, n))
		target.AddListener(event, &dom.Listener{HandlerID: 0, Fn: src})
	}
}

// ---- scripts ----

// handleParsedScript processes a just-parsed static <script>. It returns
// true when parsing must pause (synchronous external script).
func (w *Window) handleParsedScript(n *dom.Node, parseOp op.ID) bool {
	b := w.b
	src := n.Attrs["src"]
	async := hasTruthyAttr(n, "async")
	deferred := hasTruthyAttr(n, "defer")
	switch {
	case src == "":
		// Inline script: executes immediately as its own operation and
		// joins the static chain.
		exe := b.newOp(op.KindScript, "exe inline script")
		b.HB.Edge(parseOp, exe) // HB rule 2
		w.chainOp = exe         // HB rule 1b
		b.withOp(exe, func() { w.runScript(n.Text, "inline script") })
		return false
	case deferred:
		job := &deferJob{node: n, parseOp: parseOp}
		w.deferQ = append(w.deferQ, job)
		w.fetchScript(n, src, func(body string, ok bool, failLast op.ID) {
			job.arrived = true
			job.failed = !ok
			job.body = body
			job.ldLast = failLast // error handlers feed rules 5/14 like load would
			w.pumpDefers()
		})
		return false
	case async:
		w.blockers++
		w.fetchScript(n, src, func(body string, ok bool, failLast op.ID) {
			if ok {
				exe := b.newOp(op.KindScript, "exe async "+src)
				b.HB.Edge(parseOp, exe) // HB rule 2
				b.withOp(exe, func() { w.runScript(body, src) })
				ld := w.fireScriptLoad(n, exe) // HB rule 3
				w.resourceDone(ld.Last)
				return
			}
			w.resourceDone(failLast) // error handlers precede ld(W) (rule 15 analogue)
		})
		return false
	default:
		// Synchronous external script: parsing pauses until the script
		// has executed and its load event fired (HB rule 1c) — or, on
		// the error path, until its error event fired (the error
		// handlers happen-before everything parsed after the script).
		w.fetchScript(n, src, func(body string, ok bool, failLast op.ID) {
			if ok {
				exe := b.newOp(op.KindScript, "exe "+src)
				b.HB.Edge(parseOp, exe) // HB rule 2
				b.withOp(exe, func() { w.runScript(body, src) })
				ld := w.fireScriptLoad(n, exe) // HB rules 3, 1c
				w.chainOp = ld.Last            // HB rule 1c
			} else if failLast != op.None {
				w.chainOp = failLast // rule 1c, error-path variant
			}
			b.schedule(b.cfg.ParseStepCost, w.parseStep)
		})
		return true
	}
}

func hasTruthyAttr(n *dom.Node, name string) bool {
	v, ok := n.Attrs[name]
	return ok && v != "false"
}

// fetchScript fetches a script resource. On success done runs with the body
// and failLast == op.None; on failure (transport error or HTTP error
// status) the element's error event is dispatched first — the §4.3
// handler-location read that makes "handler attached only after the load
// started" an observable race — and done runs with ok == false and
// failLast the dispatch's Last op, so callers can order what follows the
// error path (resumed parsing, window-load accounting) after the error
// handlers, mirroring what rules 1c/15 do for load.
func (w *Window) fetchScript(n *dom.Node, src string, done func(body string, ok bool, failLast op.ID)) {
	resp := w.b.fetch(src)
	w.b.schedule(resp.Latency, func() {
		if !resp.OK() {
			w.b.pageError("fetch "+src, respError(src, resp))
			disp := w.Dispatch(n, "error", DispatchOpts{Detail: fetchFailDetail(resp)})
			done("", false, disp.Last)
			return
		}
		done(resp.Body, true, op.None)
	})
}

// respError normalizes a failed response to an error value.
func respError(url string, resp loader.Response) error {
	if resp.Err != nil {
		return resp.Err
	}
	return fmt.Errorf("status %d for %q", resp.Status, url)
}

// fetchFailDetail labels an error dispatch with what failed.
func fetchFailDetail(resp loader.Response) string {
	if resp.Err != nil {
		return "network error"
	}
	return fmt.Sprintf("status %d", resp.Status)
}

// runScript executes script source under the current operation, recording
// crashes as hidden page errors (§2.3).
func (w *Window) runScript(src, desc string) {
	if err := w.It.Run(src, desc); err != nil {
		w.scriptError(desc, err)
	}
}

// fireScriptLoad dispatches the load event of a script element.
// exe ⇝ ld(E) is HB rule 3.
func (w *Window) fireScriptLoad(n *dom.Node, exe op.ID) DispatchResult {
	return w.Dispatch(n, "load", DispatchOpts{ExtraPreds: []op.ID{exe}})
}

// pumpDefers executes arrived deferred scripts in document order once
// static parsing is finished (HB rules 4, 5, 14).
func (w *Window) pumpDefers() {
	b := w.b
	if !w.parseDone {
		return
	}
	for w.deferIdx < len(w.deferQ) {
		job := w.deferQ[w.deferIdx]
		if !job.arrived {
			return // preserve document order
		}
		w.deferIdx++
		if job.failed {
			job.done = true
			continue
		}
		exe := b.newOp(op.KindScript, "exe defer "+job.node.Attrs["src"])
		b.HB.Edge(job.parseOp, exe)    // HB rule 2
		b.HB.Edge(w.finalParseOp, exe) // HB rule 4 (create(E) ≺ dcl ⇒ create(E) ⇝ exe)
		if w.deferIdx >= 2 {
			if prev := w.deferQ[w.deferIdx-2]; prev.ldLast != op.None {
				b.HB.Edge(prev.ldLast, exe) // HB rule 5
			}
		}
		b.withOp(exe, func() { w.runScript(job.body, "defer "+job.node.Attrs["src"]) })
		ld := w.fireScriptLoad(job.node, exe)
		job.ldLast = ld.Last
		job.done = true
	}
	w.maybeFireDCL()
}

// ---- frames & images ----

func (w *Window) handleIframe(n *dom.Node, creator op.ID) {
	src := n.Attrs["src"]
	if src == "" {
		return
	}
	b := w.b
	if !w.loadFired {
		w.blockers++
	}
	child := b.newWindow(src, w, n)
	child.chainOp = creator // HB rule 6: create(I) ⇝ create(E in nested doc)
	resp := b.fetch(src)
	b.schedule(resp.Latency, func() {
		if !resp.OK() {
			b.pageError("fetch iframe "+src, respError(src, resp))
			// The iframe element's error event fires in the parent
			// document; its handlers precede ld(W) like a load would.
			disp := w.Dispatch(n, "error", DispatchOpts{Detail: fetchFailDetail(resp)})
			w.resourceDone(disp.Last)
			return
		}
		child.beginParse(resp.Body)
	})
}

func (w *Window) maybeLoadImage(n *dom.Node, creator op.ID) {
	src := n.Attrs["src"]
	if src == "" || n.Attrs["__loading__"] != "" {
		return
	}
	n.Attrs["__loading__"] = "1"
	b := w.b
	blocking := !w.loadFired
	if blocking {
		w.blockers++
	}
	resp := b.fetch(src)
	b.schedule(resp.Latency, func() {
		if !resp.OK() {
			b.pageError("fetch img "+src, respError(src, resp))
			disp := w.Dispatch(n, "error", DispatchOpts{Detail: fetchFailDetail(resp)})
			if blocking {
				w.resourceDone(disp.Last)
			}
			return
		}
		ld := w.Dispatch(n, "load", DispatchOpts{})
		if blocking {
			w.resourceDone(ld.Last)
		}
	})
	_ = creator
}

// resourceDone accounts a finished window-load blocker; ldLast (if any)
// becomes a rule 15 predecessor of the window load event.
func (w *Window) resourceDone(ldLast op.ID) {
	if ldLast != op.None {
		w.loadEdges = append(w.loadEdges, ldLast) // HB rule 15
	}
	w.blockers--
	w.checkLoad()
}

// ---- DOMContentLoaded and window load ----

func (w *Window) finishParse() {
	w.parseDone = true
	w.finalParseOp = w.chainOp
	w.pumpDefers()
}

func (w *Window) maybeFireDCL() {
	if w.dclDone || !w.parseDone || w.deferIdx < len(w.deferQ) {
		return
	}
	w.dclDone = true
	preds := []op.ID{w.finalParseOp} // HB rules 12, 13 (via the static chain)
	for _, job := range w.deferQ {
		if job.ldLast != op.None {
			preds = append(preds, job.ldLast) // HB rule 14
		}
	}
	disp := w.Dispatch(w.Doc.Root, "DOMContentLoaded", DispatchOpts{ExtraPreds: preds})
	w.dclLast = disp.Last
	w.checkLoad()
}

func (w *Window) checkLoad() {
	if w.loadFired || w.loadScheduled || !w.dclDone || w.blockers > 0 {
		return
	}
	w.loadScheduled = true
	w.b.schedule(0, w.fireLoad)
}

func (w *Window) fireLoad() {
	w.loadScheduled = false
	if w.loadFired || w.blockers > 0 || !w.dclDone {
		return // a script created new blockers in the meantime
	}
	preds := append([]op.ID{w.dclLast}, w.loadEdges...) // HB rules 11, 15
	// The document reaches "complete" before the load event dispatches,
	// so load handlers observe the final readyState.
	w.loadFired = true
	w.LoadDisp = w.Dispatch(w.winNode, "load", DispatchOpts{ExtraPreds: preds})
	if w.parent != nil && w.frameElem != nil {
		// HB rule 7: ld(W_I) ⇝ ld(I).
		frameLd := w.parent.Dispatch(w.frameElem, "load",
			DispatchOpts{ExtraPreds: []op.ID{w.LoadDisp.Last}})
		w.parent.resourceDone(frameLd.Last)
	}
}
