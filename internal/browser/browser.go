// Package browser is the simulated single-threaded browser WebRacer
// instruments: an event loop over virtual time that interleaves incremental
// HTML parsing, script execution, timer callbacks, simulated network
// completions and (simulated) user events — the environmental asynchrony
// that produces the paper's races (§2.1).
//
// The browser is where the happens-before rules of §3.3 are materialized:
// every operation the page performs is registered in an op.Table, the rules
// add edges to an hb.Graph at the named sites below (grep "HB rule"), and
// every shared-memory access of §4 is forwarded to the race detector
// stamped with the current operation.
package browser

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"time"

	"webracer/internal/dom"
	"webracer/internal/hb"
	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/obs"
	"webracer/internal/op"
	"webracer/internal/race"
)

// Config tunes a simulated browsing session.
type Config struct {
	// Seed drives every random choice (network latencies, Math.random).
	Seed int64
	// Latency is the network model; zero value means loader.DefaultLatency.
	Latency loader.Latency
	// ParseStepCost is the virtual milliseconds consumed parsing one
	// element (models CPU speed; default 0.2).
	ParseStepCost float64
	// MaxTasks bounds event-loop turns (runaway guard; default 200000).
	MaxTasks int
	// MaxVirtualTime stops the session after this many virtual ms
	// (default 120000).
	MaxVirtualTime float64
	// MaxIntervalTicks bounds how many times one setInterval fires
	// (real pages poll forever; WebRacer's operator closed the page —
	// default 25).
	MaxIntervalTicks int
	// SharedFrameGlobals makes the global variables of nested frames
	// share the parent's logical location space, matching the paper's
	// Fig. 1 model of cross-frame variable races. Default true; see
	// DESIGN.md.
	SharedFrameGlobals bool
	// ReportAll disables the at-most-one-race-per-location cap.
	ReportAll bool
	// NoInstrument disables memory-access instrumentation entirely
	// (the interpreter runs without hooks and the browser performs no
	// detector work). It is the uninstrumented baseline of the §6
	// performance experiment; races cannot be detected in this mode.
	NoInstrument bool
	// InstrumentTimerClears enables the extension the paper leaves as
	// future work (§7): clearTimeout/clearInterval may race with the
	// execution of the handler they try to cancel. When set, each timer
	// gets a logical location written by setTimeout/clear* and read by
	// the callback's execution, so a concurrent clear is reported.
	InstrumentTimerClears bool
	// OrderSameTargetHandlers adds happens-before edges between handlers
	// of the same (phase, target) group within one dispatch, in their
	// execution order. The paper leaves them unordered ("with fewer
	// happens-before edges, more possible races are exposed"); this flag
	// is the other side of that Appendix A design choice, exposed for
	// the ablation experiment.
	OrderSameTargetHandlers bool
	// RecordTrace captures the access trace for replay (experiment E4).
	RecordTrace bool
	// Detector overrides the default Pairwise detector. It receives the
	// browser's happens-before graph.
	Detector func(*hb.Graph) race.Detector
	// WrapFetcher, when non-nil, wraps the session's base loader —
	// the hook internal/fault uses to inject deterministic network
	// faults without the browser knowing.
	WrapFetcher func(loader.Fetcher) loader.Fetcher
	// WallBudget caps the session's real (wall-clock) run time; 0 means
	// unlimited. A tripped budget stops the event loop between tasks,
	// marks the session Interrupted, and leaves all results gathered so
	// far intact — the partial-results path that keeps one pathological
	// page from stalling a whole sweep. Interrupted sessions are not
	// deterministic (the trip point depends on host speed); sweeps
	// report them as degraded rather than folding them into aggregates.
	WallBudget time.Duration
	// Ctx cancels the session between tasks (nil means never). Like
	// WallBudget, cancellation marks the session Interrupted with
	// partial results.
	Ctx context.Context
	// Metrics, when non-nil, receives the session's deterministic
	// telemetry counters (see internal/obs). Each session should get its
	// own registry so parallel sweeps stay independent; the session layer
	// folds end-of-run stats into it as well.
	Metrics *obs.Metrics
	// Trace, when non-nil, records the session as a Chrome trace_event
	// stream over virtual time: every operation becomes a main-thread
	// span, fetches/timers/XHRs become async spans, fault injections
	// become instant events.
	Trace *obs.TraceLog
}

func (c Config) withDefaults() Config {
	if c.Latency.Base == 0 && c.Latency.Jitter == 0 && c.Latency.PerURL == nil {
		c.Latency = loader.DefaultLatency()
	}
	if c.ParseStepCost == 0 {
		c.ParseStepCost = 0.2
	}
	if c.MaxTasks == 0 {
		c.MaxTasks = 200_000
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 120_000
	}
	if c.MaxIntervalTicks == 0 {
		c.MaxIntervalTicks = 25
	}
	return c
}

// PageError is a script crash or load failure observed during the session.
// Hidden crashes are first-class data (§2.3): the harm oracle classifies
// HTML and function races by the crashes they cause.
type PageError struct {
	Op    op.ID
	Where string
	Err   error
}

func (e PageError) String() string { return fmt.Sprintf("[op#%d %s] %v", e.Op, e.Where, e.Err) }

// Browser is one simulated browsing session over one site.
type Browser struct {
	Ops     *op.Table
	HB      *hb.Graph
	Serials *dom.Serials
	Loader  loader.Fetcher

	// Errors collects script crashes and resource failures.
	Errors []PageError
	// Console collects console.log/alert output.
	Console []string
	// Interrupted is non-empty when the session was stopped early —
	// wall-clock budget, context cancellation, or the virtual-time/task
	// safety bounds — and names the reason. Results gathered before the
	// interrupt remain valid (partial-results path).
	Interrupted string

	cfg      Config
	rng      *rand.Rand
	clock    float64
	tasks    taskHeap
	seq      int64
	tasksRun int
	started  time.Time

	detector race.Detector
	recorder *race.Recorder

	top     *Window
	windows []*Window

	curOp  op.ID
	initOp op.ID
	// createOps maps DOM nodes to the operation that inserted them
	// (create(E) in the rules).
	createOps map[*dom.Node]op.ID
	// userSeq orders synthetic user operations (rule 9 for user events is
	// handled per (event,target) in the window's dispatch state).
	quiesced bool

	// Cached telemetry handles (all nil — and therefore free — when
	// cfg.Metrics is nil; obs counters are nil-safe). Looked up once here
	// so hot paths never touch the registry map.
	mParseElem *obs.Counter
	mParseText *obs.Counter
	mDispatch  *obs.Counter
	mTimers    *obs.Counter
	mXHRs      *obs.Counter
}

// New creates a browser session over site.
func New(site *loader.Site, cfg Config) *Browser {
	cfg = cfg.withDefaults()
	b := &Browser{
		Ops:       &op.Table{},
		HB:        hb.NewGraph(),
		Serials:   &dom.Serials{},
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		createOps: map[*dom.Node]op.ID{},
	}
	b.started = time.Now()
	b.Loader = loader.New(site, cfg.Latency, cfg.Seed+1)
	if cfg.WrapFetcher != nil {
		b.Loader = cfg.WrapFetcher(b.Loader)
	}
	if cfg.Detector != nil {
		b.detector = cfg.Detector(b.HB)
	} else {
		var opts []race.Option
		if cfg.ReportAll {
			opts = append(opts, race.ReportAll())
		}
		b.detector = race.NewPairwise(b.HB, opts...)
	}
	if cfg.RecordTrace {
		b.recorder = &race.Recorder{Inner: b.detector}
		b.detector = b.recorder
	}
	b.mParseElem = cfg.Metrics.Counter("parse.elements")
	b.mParseText = cfg.Metrics.Counter("parse.text_nodes")
	b.mDispatch = cfg.Metrics.Counter("browser.dispatches")
	b.mTimers = cfg.Metrics.Counter("browser.timers_installed")
	b.mXHRs = cfg.Metrics.Counter("browser.xhr_sends")
	b.initOp = b.newOp(op.KindInit, "session")
	b.Ops.Began(b.initOp)
	b.curOp = b.initOp
	return b
}

// Detector returns the active race detector.
func (b *Browser) Detector() race.Detector { return b.detector }

// Reports returns the races found so far.
func (b *Browser) Reports() []race.Report { return b.detector.Reports() }

// Trace returns the recorded access trace (RecordTrace must be set).
func (b *Browser) Trace() []race.Access {
	if b.recorder == nil {
		return nil
	}
	return b.recorder.Trace
}

// Top returns the top-level window (nil before LoadPage).
func (b *Browser) Top() *Window { return b.top }

// Windows returns every window (top and frames) in creation order.
func (b *Browser) Windows() []*Window { return b.windows }

// windowForFrame resolves the child window loaded into an iframe element.
func (b *Browser) windowForFrame(frame *dom.Node) *Window {
	for _, w := range b.windows {
		if w.frameElem == frame {
			return w
		}
	}
	return nil
}

// Clock returns the current virtual time in milliseconds.
func (b *Browser) Clock() float64 { return b.clock }

// Stats summarizes a finished session.
type Stats struct {
	Ops         int
	OpsByKind   map[string]int
	Edges       int
	TasksRun    int
	VirtualTime float64
	Windows     int
	Fetches     int
	Errors      int
}

// Stats computes the session summary.
func (b *Browser) Stats() Stats {
	byKind := map[string]int{}
	for i := 1; i <= b.Ops.Len(); i++ {
		byKind[b.Ops.Get(op.ID(i)).Kind.String()]++
	}
	return Stats{
		Ops:         b.Ops.Len(),
		OpsByKind:   byKind,
		Edges:       b.HB.Edges(),
		TasksRun:    b.tasksRun,
		VirtualTime: b.clock,
		Windows:     len(b.windows),
		Fetches:     b.Loader.Fetches(),
		Errors:      len(b.Errors),
	}
}

// Config returns the active (defaulted) configuration.
func (b *Browser) Config() Config { return b.cfg }

// ---- operations & instrumentation ----

// newOp registers an operation and its happens-before node.
func (b *Browser) newOp(kind op.Kind, label string) op.ID {
	id := b.Ops.New(kind, label)
	b.HB.AddNode(id)
	return id
}

// withOp runs f with id as the current operation. When tracing, the
// operation becomes a main-thread span over virtual time, annotated with
// its happens-before predecessors so an ordering question ("why did the
// detector consider these concurrent?") can be answered from the trace.
func (b *Browser) withOp(id op.ID, f func()) {
	prev := b.curOp
	b.curOp = id
	b.Ops.Began(id)
	if tr := b.cfg.Trace; tr != nil {
		rec := b.Ops.Get(id)
		tr.BeginSpan(traceCat(rec.Kind), rec.Label, b.clock)
		f()
		tr.EndSpan(b.clock, b.spanArgs(id))
	} else {
		f()
	}
	b.curOp = prev
}

// traceCat maps an operation kind to its Chrome trace category, the axis
// Perfetto colors and filters by.
func traceCat(k op.Kind) string {
	switch k {
	case op.KindInit:
		return "task"
	case op.KindParse:
		return "parse"
	case op.KindScript:
		return "script"
	case op.KindTimeout, op.KindInterval:
		return "timer"
	case op.KindNetwork:
		return "net"
	default: // handlers, anchors, joins, user ops, continuations
		return "event"
	}
}

// spanArgs builds the args payload of an operation span: the op id and its
// direct happens-before predecessors at span close.
func (b *Browser) spanArgs(id op.ID) map[string]any {
	preds := b.HB.Preds(id)
	ps := make([]any, len(preds))
	for i, p := range preds {
		ps[i] = int(p)
	}
	return map[string]any{"op": int(id), "hb_preds": ps}
}

// timerSpanID names the async span of one armed timer callback by its
// callback operation, which is unique per arming (intervals re-arm with a
// fresh op per tick).
func timerSpanID(cb op.ID) string { return fmt.Sprintf("t%d", cb) }

// fetch routes every resource load through the loader while stamping it
// into the trace as an async span spanning the virtual latency window
// (request issue → scheduled arrival).
func (b *Browser) fetch(url string) loader.Response {
	resp := b.Loader.Fetch(url)
	if tr := b.cfg.Trace; tr != nil {
		args := map[string]any{"status": resp.Status}
		if resp.Err != nil {
			args["error"] = resp.Err.Error()
		}
		if resp.Truncated {
			args["truncated"] = true
		}
		id := fmt.Sprintf("f%d", b.Loader.Fetches())
		tr.Async("fetch", url, id, b.clock, b.clock+resp.Latency, args)
	}
	return resp
}

// CurrentOp exposes the op being executed (tests and the explore package).
func (b *Browser) CurrentOp() op.ID { return b.curOp }

// Access implements js.Hooks: every shared-memory access of the interpreter
// reaches the detector stamped with the current operation.
func (b *Browser) Access(kind mem.AccessKind, loc mem.Loc, ctx mem.Context, desc string) {
	if b.cfg.NoInstrument {
		return
	}
	b.detector.OnAccess(race.Access{Kind: kind, Loc: loc, Op: b.curOp, Ctx: ctx, Desc: desc})
}

// pageError records a script crash or load failure.
func (b *Browser) pageError(where string, err error) {
	b.Errors = append(b.Errors, PageError{Op: b.curOp, Where: where, Err: err})
}

// scriptError records a crash AND notifies the page via the window error
// event (window.onerror), as real browsers do for uncaught exceptions. The
// dispatch is itself an operation: pages that install onerror late race
// with early crashes, a detectable event dispatch race.
func (w *Window) scriptError(where string, err error) {
	b := w.b
	b.pageError(where, err)
	crashOp := b.curOp
	b.schedule(0, func() {
		w.Dispatch(w.winNode, "error", DispatchOpts{
			ExtraPreds: []op.ID{crashOp},
			Detail:     where,
		})
	})
}

// ---- event loop ----

type task struct {
	at   float64
	seq  int64
	weak bool // weak tasks (interval ticks) don't keep the loop alive alone
	run  func()
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }
func (b *Browser) now() float64  { return b.clock }
func (b *Browser) schedule(delay float64, run func()) *task {
	return b.scheduleTask(delay, false, run)
}

func (b *Browser) scheduleTask(delay float64, weak bool, run func()) *task {
	if delay < 0 {
		delay = 0
	}
	b.seq++
	t := &task{at: b.clock + delay, seq: b.seq, weak: weak, run: run}
	heap.Push(&b.tasks, t)
	return t
}

// ScheduleUserAction queues f to run as an event-loop task delay virtual
// milliseconds from now. The explore package and the harm oracle use it to
// inject user interactions at chosen points of the page load.
func (b *Browser) ScheduleUserAction(delay float64, f func()) {
	b.schedule(delay, f)
}

// weakGraceTurns is how many weak-only turns the loop grants before
// quiescing, so a polling interval can observe results produced by the last
// strong task (e.g. an XHR completion) before the session ends.
const weakGraceTurns = 8

// Run drains the event loop until quiescence (no tasks, or only weak tasks
// remain after a short grace budget) or a safety bound trips. It can be
// called repeatedly: LoadPage runs it once, automatic exploration queues
// more work and runs it again.
func (b *Browser) Run() {
	grace := weakGraceTurns
	for len(b.tasks) > 0 {
		if b.tasksRun >= b.cfg.MaxTasks {
			b.interrupt("task budget")
			return
		}
		if b.clock > b.cfg.MaxVirtualTime {
			b.interrupt("virtual-time budget")
			return
		}
		if b.tasksRun&63 == 0 && b.overWallBudget() {
			return
		}
		if b.onlyWeakTasks() {
			if grace <= 0 {
				return
			}
			grace--
		}
		t := heap.Pop(&b.tasks).(*task)
		if t.run == nil {
			continue // cancelled
		}
		if !t.weak {
			grace = weakGraceTurns
		}
		if t.at > b.clock {
			b.clock = t.at
		}
		b.tasksRun++
		if tr := b.cfg.Trace; tr != nil {
			tr.BeginSpan("task", "turn", b.clock)
			t.run()
			tr.EndSpan(b.clock, map[string]any{"turn": b.tasksRun})
		} else {
			t.run()
		}
	}
	b.quiesced = true
}

// interrupt records the first early-stop reason (later trips keep it).
func (b *Browser) interrupt(reason string) {
	if b.Interrupted == "" {
		b.Interrupted = reason
	}
}

// overWallBudget checks the wall-clock budget and context; once either
// trips, the session stays interrupted — subsequent Run calls (automatic
// exploration schedules several) return immediately.
func (b *Browser) overWallBudget() bool {
	switch b.Interrupted {
	case "wall-clock budget", "canceled":
		return true
	}
	if b.cfg.WallBudget > 0 && time.Since(b.started) > b.cfg.WallBudget {
		b.interrupt("wall-clock budget")
		return true
	}
	if b.cfg.Ctx != nil && b.cfg.Ctx.Err() != nil {
		b.interrupt("canceled")
		return true
	}
	return false
}

func (b *Browser) onlyWeakTasks() bool {
	for _, t := range b.tasks {
		if !t.weak && t.run != nil {
			return false
		}
	}
	return true
}

// cancel neutralizes a scheduled task (clearTimeout/clearInterval).
func cancel(t *task) {
	if t != nil {
		t.run = nil
	}
}
