package browser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"webracer/internal/loader"
	"webracer/internal/mem"
	"webracer/internal/op"
)

// randomSite assembles a random page from a grab-bag of fragments —
// scripts, timers, frames, handlers — to stress the whole pipeline.
func randomSite(r *rand.Rand) *loader.Site {
	site := loader.NewSite("fuzz")
	var b strings.Builder
	nfrag := 2 + r.Intn(8)
	for i := 0; i < nfrag; i++ {
		switch r.Intn(9) {
		case 0:
			fmt.Fprintf(&b, `<p>paragraph %d</p>`+"\n", i)
		case 1:
			fmt.Fprintf(&b, `<script>v%d = %d;</script>`+"\n", i, r.Intn(100))
		case 2:
			fmt.Fprintf(&b, `<script>setTimeout(function() { s%d = (typeof s%d == 'undefined') ? 1 : s%d + 1; }, %d);</script>`+"\n",
				i%3, i%3, i%3, r.Intn(30))
		case 3:
			fmt.Fprintf(&b, `<div id="d%d" onmouseover="h%d = 1;">hover</div>`+"\n", i, i)
		case 4:
			fmt.Fprintf(&b, `<input type="text" id="f%d" />`+"\n", i)
		case 5:
			fmt.Fprintf(&b, `<script>var el%d = document.getElementById("d%d"); if (el%d != null) { el%d.className = "x"; }</script>`+"\n",
				i, r.Intn(nfrag), i, i)
		case 6:
			url := fmt.Sprintf("s%d.js", i)
			site.Add(url, fmt.Sprintf("ext%d = 1;", i))
			attr := ""
			if r.Intn(2) == 0 {
				attr = ` async="true"`
			}
			fmt.Fprintf(&b, `<script src=%q%s></script>`+"\n", url, attr)
		case 7:
			url := fmt.Sprintf("fr%d.html", i)
			site.Add(url, fmt.Sprintf(`<script>fx%d = 1;</script>`, i%2))
			fmt.Fprintf(&b, `<iframe src=%q></iframe>`+"\n", url)
		case 8:
			fmt.Fprintf(&b, `<img src="img%d.png" onload="ld%d = 1;" />`+"\n", i, i)
		}
	}
	site.Add("index.html", b.String())
	return site
}

// TestFuzzSoundness: across many random pages and seeds, every reported
// race satisfies the definition of §5.1 — distinct operations, not
// happens-before ordered (in either direction), at least one write — and
// both operations actually began executing.
func TestFuzzSoundness(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		site := randomSite(r)
		b := New(site, Config{Seed: int64(trial), SharedFrameGlobals: true,
			Latency: loader.Latency{Base: 3, Jitter: 40}})
		b.LoadPage("index.html")
		for _, w := range b.Windows() {
			for _, n := range w.Doc.ElementsByTag("div") {
				if len(n.ListenerEvents()) > 0 {
					w.UserDispatch(n, n.ListenerEvents()[0])
				}
			}
		}
		b.Run()
		for _, rep := range b.Reports() {
			if rep.Prior.Op == rep.Current.Op {
				t.Fatalf("trial %d: same-op race %v", trial, rep)
			}
			if !b.HB.Concurrent(rep.Prior.Op, rep.Current.Op) {
				t.Fatalf("trial %d: ordered ops reported racing %v", trial, rep)
			}
			if rep.Prior.Kind != mem.Write && rep.Current.Kind != mem.Write {
				t.Fatalf("trial %d: read-read race %v", trial, rep)
			}
			if b.Ops.Get(rep.Prior.Op).Seq < 0 || b.Ops.Get(rep.Current.Op).Seq < 0 {
				t.Fatalf("trial %d: race involves an operation that never ran: %v", trial, rep)
			}
		}
	}
}

// TestFuzzDeterminism: identical (site, seed) pairs give identical races.
func TestFuzzDeterminism(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		r1 := rand.New(rand.NewSource(int64(trial)))
		r2 := rand.New(rand.NewSource(int64(trial)))
		run := func(r *rand.Rand) []string {
			site := randomSite(r)
			b := New(site, Config{Seed: 99, SharedFrameGlobals: true,
				Latency: loader.Latency{Base: 3, Jitter: 40}})
			b.LoadPage("index.html")
			var out []string
			for _, rep := range b.Reports() {
				out = append(out, rep.Loc.String())
			}
			return out
		}
		a, bb := run(r1), run(r2)
		if len(a) != len(bb) {
			t.Fatalf("trial %d: %d vs %d races", trial, len(a), len(bb))
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("trial %d: report %d differs: %s vs %s", trial, i, a[i], bb[i])
			}
		}
	}
}

// TestFuzzOpsConsistency: the happens-before graph covers every operation
// and never orders an operation before the session init op.
func TestFuzzOpsConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	site := randomSite(r)
	b := New(site, Config{Seed: 5, SharedFrameGlobals: true, Latency: loader.Latency{Base: 3}})
	b.LoadPage("index.html")
	if b.HB.Len() < b.Ops.Len() {
		t.Fatalf("graph has %d nodes for %d ops", b.HB.Len(), b.Ops.Len())
	}
	for i := 1; i <= b.Ops.Len(); i++ {
		if b.HB.HappensBefore(op.ID(i), 1) {
			t.Fatalf("op %d ordered before the init op", i)
		}
	}
}
