package browser

import (
	"testing"

	"webracer/internal/loader"
)

// Coverage for the breadth of the DOM/window bindings that the figure and
// rule tests don't already exercise.

func TestDocumentCollections(t *testing.T) {
	site := loader.NewSite("collections").Add("index.html", `
<form id="f1"></form>
<img src="a.png" /><img src="b.png" />
<a href="http://x">link</a><a>anchor-no-href</a>
<script>
nForms = document.forms.length;
nImages = document.images.length;
nLinks = document.links.length;
nScripts = document.scripts.length;
firstFormId = document.forms[0].id;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "nForms") != 1 || globalNum(t, b, "nImages") != 2 ||
		globalNum(t, b, "nLinks") != 1 {
		t.Errorf("collections wrong: forms=%v images=%v links=%v",
			globalNum(t, b, "nForms"), globalNum(t, b, "nImages"), globalNum(t, b, "nLinks"))
	}
	if globalNum(t, b, "nScripts") < 1 {
		t.Error("scripts collection empty")
	}
	if globalStr(t, b, "firstFormId") != "f1" {
		t.Error("collection element wrapper broken")
	}
}

func TestAttributesAPI(t *testing.T) {
	site := loader.NewSite("attrs").Add("index.html", `
<div id="d" title="orig" data-x="1"></div>
<script>
var d = document.getElementById("d");
t1 = d.getAttribute("title");
has = d.hasAttribute("data-x") ? 1 : 0;
hasNot = d.hasAttribute("nope") ? 1 : 0;
d.setAttribute("title", "changed");
t2 = d.title;
missing = d.getAttribute("never") === null ? 1 : 0;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "t1") != "orig" || globalStr(t, b, "t2") != "changed" {
		t.Error("get/setAttribute broken")
	}
	if globalNum(t, b, "has") != 1 || globalNum(t, b, "hasNot") != 0 {
		t.Error("hasAttribute broken")
	}
	if globalNum(t, b, "missing") != 1 {
		t.Error("getAttribute of absent attr should be null")
	}
}

func TestTextContentAndInnerHTMLReads(t *testing.T) {
	site := loader.NewSite("text").Add("index.html", `
<div id="d"><b>bold</b> and plain</div>
<script>
txt = document.getElementById("d").textContent;
html = document.getElementById("d").innerHTML;
document.getElementById("d").textContent = "replaced";
after = document.getElementById("d").textContent;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "txt") != "bold and plain" {
		t.Errorf("textContent = %q", globalStr(t, b, "txt"))
	}
	if got := globalStr(t, b, "html"); got != "<b>bold</b> and plain" {
		t.Errorf("innerHTML = %q", got)
	}
	if globalStr(t, b, "after") != "replaced" {
		t.Error("textContent assignment broken")
	}
}

func TestNodeNavigation(t *testing.T) {
	site := loader.NewSite("nav").Add("index.html", `
<ul id="list"><li id="a"></li><li id="b"></li></ul>
<script>
var list = document.getElementById("list");
first = list.firstChild.id;
last = list.lastChild.id;
parentTag = document.getElementById("a").parentNode.tagName;
kidCount = list.childNodes.length;
tag = list.tagName;
ntype = list.nodeType;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "first") != "a" || globalStr(t, b, "last") != "b" {
		t.Error("first/lastChild broken")
	}
	if globalStr(t, b, "parentTag") != "UL" || globalStr(t, b, "tag") != "UL" {
		t.Error("tagName/parentNode broken")
	}
	if globalNum(t, b, "kidCount") != 2 || globalNum(t, b, "ntype") != 1 {
		t.Error("childNodes/nodeType broken")
	}
}

func TestReadyStateTransitions(t *testing.T) {
	site := loader.NewSite("ready").Add("index.html", `
<script>
early = document.readyState;
document.addEventListener("DOMContentLoaded", function() { mid = document.readyState; });
window.onload = function() { late = document.readyState; };
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "early") != "loading" {
		t.Errorf("early readyState = %q", globalStr(t, b, "early"))
	}
	if globalStr(t, b, "mid") != "interactive" {
		t.Errorf("mid readyState = %q", globalStr(t, b, "mid"))
	}
	if globalStr(t, b, "late") != "complete" {
		t.Errorf("late readyState = %q", globalStr(t, b, "late"))
	}
}

func TestDocumentWrite(t *testing.T) {
	site := loader.NewSite("docwrite").Add("index.html", `
<body>
<script>
document.write("<div id='written'>w</div>");
found = document.getElementById("written") !== null ? 1 : 0;
</script>
</body>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "found") != 1 {
		t.Error("document.write content not reachable")
	}
}

func TestCookieAndTitle(t *testing.T) {
	site := loader.NewSite("misc").Add("index.html", `
<head><title>My Page</title></head>
<body>
<script>
document.cookie = "session=abc";
c = document.cookie;
ttl = document.title;
u = document.URL;
</script>
</body>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "c") != "session=abc" {
		t.Error("cookie round trip broken")
	}
	if globalStr(t, b, "ttl") != "My Page" {
		t.Errorf("title = %q", globalStr(t, b, "ttl"))
	}
	if globalStr(t, b, "u") != "index.html" {
		t.Errorf("URL = %q", globalStr(t, b, "u"))
	}
}

func TestLocationAndNavigator(t *testing.T) {
	site := loader.NewSite("loc").Add("index.html", `
<script>
href = location.href;
ua = navigator.userAgent;
viaWindow = window.location.href;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalStr(t, b, "href") != "index.html" || globalStr(t, b, "viaWindow") != "index.html" {
		t.Error("location broken")
	}
	if globalStr(t, b, "ua") == "" {
		t.Error("navigator.userAgent empty")
	}
}

func TestOffsetMetricsZero(t *testing.T) {
	site := loader.NewSite("metrics").Add("index.html", `
<div id="d">x</div>
<script>m = document.getElementById("d").offsetWidth + document.getElementById("d").clientHeight;</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "m") != 0 {
		t.Error("layout metrics should be 0 in the simulation")
	}
}

func TestExpandoProperties(t *testing.T) {
	// Pages stash state on DOM wrappers; expandos persist because the
	// wrapper is cached per node.
	site := loader.NewSite("expando").Add("index.html", `
<div id="d"></div>
<script>
document.getElementById("d").custom = 42;
later = document.getElementById("d").custom;
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "later") != 42 {
		t.Error("expando property lost between lookups")
	}
}
