package browser

import (
	"strings"
	"testing"

	"webracer/internal/loader"
	"webracer/internal/mem"
)

// Failure-path coverage: missing resources, fetch errors, runaway pages.
// A detector meant for real sites must degrade gracefully when the page
// does not.

func TestMissingEntryPage(t *testing.T) {
	b := New(loader.NewSite("empty"), Config{Seed: 1, Latency: fixedLatency(nil)})
	w := b.LoadPage("index.html")
	if w == nil {
		t.Fatal("LoadPage returned nil window")
	}
	if len(b.Errors) == 0 {
		t.Error("missing entry page produced no error")
	}
}

func TestMissingExternalScript(t *testing.T) {
	site := loader.NewSite("missing-js").Add("index.html", `
<script src="gone.js"></script>
<script>after = 1;</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "after") != 1 {
		t.Error("parsing did not resume after a failed synchronous script fetch")
	}
	found := false
	for _, e := range b.Errors {
		if strings.Contains(e.Err.Error(), "gone.js") {
			found = true
		}
	}
	if !found {
		t.Errorf("fetch failure not recorded: %v", b.Errors)
	}
	if !b.Top().Loaded() {
		t.Error("window load never fired despite the failed script")
	}
}

func TestMissingAsyncAndDeferScripts(t *testing.T) {
	site := loader.NewSite("missing-async").Add("index.html", `
<script src="a.js" async="true"></script>
<script src="d.js" defer="true"></script>
<script>window.onload = function() { loaded = 1; };</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if !b.Top().Loaded() {
		t.Fatal("window load blocked forever by failed fetches")
	}
	if globalNum(t, b, "loaded") != 1 {
		t.Error("load handler did not run")
	}
}

func TestMissingIframe(t *testing.T) {
	site := loader.NewSite("missing-frame").Add("index.html", `
<iframe src="void.html"></iframe>
<script>window.onload = function() { loaded = 1; };</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if !b.Top().Loaded() {
		t.Fatal("window load blocked by a 404 iframe")
	}
}

func TestXHR404(t *testing.T) {
	site := loader.NewSite("xhr404").Add("index.html", `
<script>
var x = new XMLHttpRequest();
x.onreadystatechange = function() {
  if (x.readyState == 4) { status = x.status; }
};
x.open("GET", "missing.json");
x.send();
</script>`)
	b := runSite(t, site, Config{Seed: 1})
	if globalNum(t, b, "status") != 404 {
		t.Errorf("missing XHR resource should deliver status 404")
	}
}

func TestRunawayTimeoutLoopBounded(t *testing.T) {
	// A self-rearming timeout that never terminates: the virtual-time
	// cap stops the session.
	site := loader.NewSite("runaway").Add("index.html", `
<script>
n = 0;
function again() { n = n + 1; setTimeout(again, 100); }
again();
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, Latency: fixedLatency(nil),
		MaxVirtualTime: 2_000}
	b := New(site, cfg)
	b.LoadPage("index.html")
	n := globalNum(t, b, "n")
	if n < 5 || n > 50 {
		t.Errorf("runaway loop ticked %v times under a 2000ms cap", n)
	}
}

func TestIntervalQuiescesOnQuietPage(t *testing.T) {
	// On a page with nothing else going on, interval ticks become weak
	// tasks after a few firings and stop keeping the session alive.
	site := loader.NewSite("everpoll").Add("index.html", `
<script>
ticks = 0;
setInterval(function() { ticks = ticks + 1; }, 5);
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, Latency: fixedLatency(nil),
		MaxIntervalTicks: 50}
	b := New(site, cfg)
	b.LoadPage("index.html")
	got := globalNum(t, b, "ticks")
	// Strong early ticks plus the weak grace budget: the loop must stop
	// well short of the 50-tick cap.
	if got < 1 || got > 15 {
		t.Errorf("quiet-page interval ticked %v times, want a handful (grace-bounded)", got)
	}
}

func TestIntervalTickCapOnBusyPage(t *testing.T) {
	// While other (strong) work keeps the loop alive, the interval runs
	// up to MaxIntervalTicks and no further.
	site := loader.NewSite("busypoll").Add("index.html", `
<script>
ticks = 0;
setInterval(function() { ticks = ticks + 1; }, 5);
busy = 0;
function churn() { busy = busy + 1; if (busy < 40) setTimeout(churn, 5); }
churn();
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, Latency: fixedLatency(nil),
		MaxIntervalTicks: 7}
	b := New(site, cfg)
	b.LoadPage("index.html")
	if got := globalNum(t, b, "ticks"); got != 7 {
		t.Errorf("busy-page interval ticked %v times, want exactly the cap (7)", got)
	}
}

func TestMaxTasksGuard(t *testing.T) {
	// Two mutually rearming zero-delay timeouts; the task cap stops it.
	site := loader.NewSite("taskstorm").Add("index.html", `
<script>
n = 0;
function a() { n = n + 1; setTimeout(a, 0); }
a();
</script>`)
	cfg := Config{Seed: 1, SharedFrameGlobals: true, Latency: fixedLatency(nil),
		MaxTasks: 500}
	b := New(site, cfg)
	b.LoadPage("index.html")
	if n := globalNum(t, b, "n"); n > 500 {
		t.Errorf("task cap did not bound the storm: %v turns", n)
	}
}

// TestGomezEndToEnd drives the §6.3 Gomez pattern through a full page and
// checks the single-dispatch race that made Table 2's event dispatch rows.
func TestGomezEndToEnd(t *testing.T) {
	site := loader.NewSite("gomez").Add("index.html", `
<script>
document.addEventListener("DOMContentLoaded", function() {
  var mon = setInterval(function() {
    var imgs = document.getElementsByTagName("img");
    for (var j = 0; j < imgs.length; j++) {
      imgs[j].onload = function() { seen = (typeof seen == 'undefined') ? 1 : seen + 1; };
    }
  }, 10);
  setTimeout(function() { clearInterval(mon); }, 200);
});
</script>
<img src="fast.png" />
<img src="slow.png" />`)
	b := runSite(t, site, Config{Seed: 1,
		Latency: fixedLatency(map[string]float64{"fast.png": 1, "slow.png": 400})})
	// Both images' load slots race with the monitor's writes.
	count := 0
	for _, r := range b.Reports() {
		if r.Loc.Kind == mem.Handler && r.Loc.Name == "load" {
			count++
		}
	}
	if count < 2 {
		t.Errorf("Gomez monitor produced %d load-slot races, want 2; reports: %v", count, b.Reports())
	}
}
