package report

import (
	"fmt"

	"webracer/internal/mem"
	"webracer/internal/race"
)

// Advise suggests a remediation for a race report — the "possibly
// remediation of data races" direction §9 names as future work. The advice
// is heuristic, derived from the race type and the contexts of the two
// accesses; it encodes the fixes the paper itself discusses (moving a
// script above its user, guarding lookups, registering handlers in the
// element's tag, keying work off DOMContentLoaded) plus the standard cures
// for form and AJAX races.
func Advise(r race.Report) string {
	switch Classify(r) {
	case HTML:
		return adviseHTML(r)
	case Function:
		return adviseFunction(r)
	case EventDispatch:
		return adviseDispatch(r)
	default:
		return adviseVariable(r)
	}
}

func adviseHTML(r race.Report) string {
	read, write := readerWriter(r)
	name := r.Loc.Name
	if name == "" {
		name = "the element"
	} else {
		name = "#" + name
	}
	switch {
	case write.Ctx == mem.CtxElemRemove:
		return fmt.Sprintf("an access to %s races with its removal: "+
			"null-check the lookup result, or remove the element only from code "+
			"ordered after every reader (e.g. the same event chain)", name)
	case read.Ctx == mem.CtxElemLookup:
		return fmt.Sprintf("code may look up %s before it is parsed: "+
			"guard the lookup result against null, or defer the lookup to a "+
			"DOMContentLoaded handler, which happens-after all static parsing (rule 12)", name)
	default:
		return fmt.Sprintf("accesses to %s are unordered with its creation: "+
			"move the accessing code below the element, or defer it to DOMContentLoaded", name)
	}
}

func adviseFunction(r race.Report) string {
	return fmt.Sprintf("%s may be invoked before its declaring script executes: "+
		"move the declaration into a script that precedes every caller (an inline "+
		"script above the handler's element is ordered by rules 1a/1b), or guard "+
		"the call with typeof %s === 'function'", r.Loc.Name, r.Loc.Name)
}

func adviseDispatch(r race.Report) string {
	ev := r.Loc.Name
	if DefaultSingleShot(ev) {
		return fmt.Sprintf("the %s handler may be registered after the event already fired "+
			"and would then never run: set the handler in the element's tag (on%s=...), "+
			"which rule 8 orders before every dispatch, or check the readiness state "+
			"(e.g. document.readyState, image.complete) after registering", ev, ev)
	}
	return fmt.Sprintf("the %s handler may be registered after early %s events: "+
		"register it in the element's tag or before the element becomes interactive; "+
		"for deliberately delayed functionality this is the benign degraded-while-loading "+
		"pattern of §6.2", ev, ev)
}

func adviseVariable(r race.Report) string {
	read, write := readerWriter(r)
	switch {
	case isFormCtx(r.Prior.Ctx) || isFormCtx(r.Current.Ctx):
		return "a script writes a form field the user may already have edited: " +
			"read the field first and write only if it is untouched (the check-then-write " +
			"idiom the form filter recognizes), or use a placeholder attribute instead " +
			"of writing value"
	case r.Prior.Kind == mem.Write && r.Current.Kind == mem.Write:
		return fmt.Sprintf("two unordered operations write %s (last writer wins): "+
			"funnel the writes through one owner — a single callback chain, or a "+
			"sequence-number check so stale responses are ignored", r.Loc.Name)
	default:
		_ = read
		_ = write
		return fmt.Sprintf("an unordered read of %s may see the value before or after "+
			"the racing write: establish an ordering (schedule the reader from the "+
			"writer, e.g. at the end of the writing script or via its load event)", r.Loc.Name)
	}
}

func isFormCtx(c mem.Context) bool { return c == mem.CtxFormField || c == mem.CtxUserInput }

// readerWriter splits the racing pair into the read and write sides (for a
// write-write race, both returns are writes).
func readerWriter(r race.Report) (read, write race.Access) {
	if r.Prior.Kind == mem.Read {
		return r.Prior, r.Current
	}
	if r.Current.Kind == mem.Read {
		return r.Current, r.Prior
	}
	return r.Prior, r.Current
}
