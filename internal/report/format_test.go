package report

import (
	"strings"
	"testing"

	"webracer/internal/mem"
	"webracer/internal/op"
	"webracer/internal/race"
)

func TestFormat(t *testing.T) {
	ops := &op.Table{}
	parse := ops.New(op.KindParse, "parse <div id=dw>")
	handler := ops.New(op.KindHandler, "click handler")
	ops.Began(parse)
	ops.Began(handler)
	reports := []race.Report{
		{
			Loc:     mem.ElemIDLoc(1, "dw"),
			Prior:   race.Access{Kind: mem.Write, Op: parse, Ctx: mem.CtxElemInsert, Desc: "insert dw"},
			Current: race.Access{Kind: mem.Read, Op: handler, Ctx: mem.CtxElemLookup, Desc: `getElementById("dw")`},
		},
		{
			Loc:             mem.VarLoc(7, "value"),
			Prior:           race.Access{Kind: mem.Write, Op: parse, Ctx: mem.CtxFormField},
			Current:         race.Access{Kind: mem.Write, Op: handler, Ctx: mem.CtxUserInput},
			WriterReadFirst: true,
		},
	}
	var sb strings.Builder
	if err := Format(&sb, reports, ops, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"HTML races (1):",
		"Variable races (1):",
		"elem #dw",
		`getElementById("dw")`,
		"check-then-write",
		"parse <div id=dw>",
		"! elem #dw", // the harmful marker
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Format(&sb, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty report produced output: %q", sb.String())
	}
}

func TestFormatNilOps(t *testing.T) {
	reports := []race.Report{{
		Loc:     mem.VarLoc(1, "x"),
		Prior:   race.Access{Kind: mem.Write, Op: 3},
		Current: race.Access{Kind: mem.Read, Op: 4},
	}}
	var sb strings.Builder
	if err := Format(&sb, reports, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "op#3") {
		t.Errorf("nil-ops fallback missing: %s", sb.String())
	}
}

func TestSummary(t *testing.T) {
	var c Counts
	c[HTML] = 2
	c[Variable] = 1
	s := Summary(c)
	if !strings.Contains(s, "HTML 2") || !strings.Contains(s, "total 3") {
		t.Errorf("Summary = %q", s)
	}
}
