package report

import (
	"strings"
	"testing"

	"webracer/internal/mem"
	"webracer/internal/race"
)

func rep(l mem.Loc, pCtx, cCtx mem.Context, readFirst bool) race.Report {
	return race.Report{
		Loc:             l,
		Prior:           race.Access{Kind: mem.Write, Loc: l, Op: 1, Ctx: pCtx},
		Current:         race.Access{Kind: mem.Read, Loc: l, Op: 2, Ctx: cCtx},
		WriterReadFirst: readFirst,
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		r    race.Report
		want Type
	}{
		{rep(mem.ElemIDLoc(1, "dw"), mem.CtxElemInsert, mem.CtxElemLookup, false), HTML},
		{rep(mem.ElemLoc(9), mem.CtxElemInsert, mem.CtxElemLookup, false), HTML},
		{rep(mem.HandlerLoc(3, "load", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false), EventDispatch},
		{rep(mem.VarLoc(1, "x"), mem.CtxPlain, mem.CtxPlain, false), Variable},
		{rep(mem.VarLoc(1, "f"), mem.CtxFuncDecl, mem.CtxPlain, false), Function},
		{rep(mem.VarLoc(1, "f"), mem.CtxPlain, mem.CtxFuncCall, false), Function},
		{rep(mem.VarLoc(7, "value"), mem.CtxFormField, mem.CtxUserInput, false), Variable},
	}
	for _, c := range cases {
		if got := Classify(c.r); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.r.Loc, got, c.want)
		}
	}
}

func TestFormFilter(t *testing.T) {
	f := FormFilter{}
	// Non-form variable race: dropped.
	if f.Keep(rep(mem.VarLoc(1, "x"), mem.CtxPlain, mem.CtxPlain, false)) {
		t.Error("non-form variable race kept")
	}
	// Form race: kept.
	if !f.Keep(rep(mem.VarLoc(7, "value"), mem.CtxFormField, mem.CtxUserInput, false)) {
		t.Error("form race dropped")
	}
	// Form race whose writer read first: dropped (harmless check).
	if f.Keep(rep(mem.VarLoc(7, "value"), mem.CtxFormField, mem.CtxUserInput, true)) {
		t.Error("read-before-write form race kept")
	}
	// HTML race: passes through untouched.
	if !f.Keep(rep(mem.ElemIDLoc(1, "dw"), mem.CtxElemInsert, mem.CtxElemLookup, false)) {
		t.Error("HTML race dropped by the form filter")
	}
	// Function race: passes through untouched.
	if !f.Keep(rep(mem.VarLoc(1, "g"), mem.CtxFuncDecl, mem.CtxFuncCall, false)) {
		t.Error("function race dropped by the form filter")
	}
}

func TestSingleDispatchFilter(t *testing.T) {
	f := SingleDispatchFilter{}
	if !f.Keep(rep(mem.HandlerLoc(3, "load", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false)) {
		t.Error("load dispatch race dropped")
	}
	if !f.Keep(rep(mem.HandlerLoc(3, "DOMContentLoaded", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false)) {
		t.Error("DOMContentLoaded dispatch race dropped")
	}
	if f.Keep(rep(mem.HandlerLoc(3, "click", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false)) {
		t.Error("click dispatch race kept (multi-dispatch)")
	}
	if f.Keep(rep(mem.HandlerLoc(3, "mouseover", 7), mem.CtxHandlerAdd, mem.CtxHandlerFire, false)) {
		t.Error("mouseover dispatch race kept")
	}
	// Other race types pass through.
	if !f.Keep(rep(mem.VarLoc(1, "x"), mem.CtxPlain, mem.CtxPlain, false)) {
		t.Error("variable race dropped by the dispatch filter")
	}
	// Custom single-shot predicate.
	custom := SingleDispatchFilter{SingleShot: func(e string) bool { return e == "boom" }}
	if !custom.Keep(rep(mem.HandlerLoc(3, "boom", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false)) {
		t.Error("custom predicate ignored")
	}
}

func TestApply(t *testing.T) {
	reports := []race.Report{
		rep(mem.VarLoc(1, "x"), mem.CtxPlain, mem.CtxPlain, false),                       // dropped by form
		rep(mem.VarLoc(7, "value"), mem.CtxFormField, mem.CtxUserInput, false),           // kept
		rep(mem.HandlerLoc(3, "click", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false), // dropped by dispatch
		rep(mem.HandlerLoc(3, "load", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false),  // kept
		rep(mem.ElemIDLoc(1, "dw"), mem.CtxElemInsert, mem.CtxElemLookup, false),         // kept
	}
	kept := Apply(reports, FormFilter{}, SingleDispatchFilter{})
	if len(kept) != 3 {
		t.Fatalf("Apply kept %d, want 3: %v", len(kept), kept)
	}
	// No filters: identity.
	if got := Apply(reports); len(got) != len(reports) {
		t.Errorf("Apply with no filters dropped reports")
	}
}

func TestCount(t *testing.T) {
	reports := []race.Report{
		rep(mem.ElemIDLoc(1, "a"), mem.CtxElemInsert, mem.CtxElemLookup, false),
		rep(mem.ElemIDLoc(1, "b"), mem.CtxElemInsert, mem.CtxElemLookup, false),
		rep(mem.VarLoc(1, "f"), mem.CtxFuncDecl, mem.CtxFuncCall, false),
		rep(mem.VarLoc(1, "x"), mem.CtxPlain, mem.CtxPlain, false),
		rep(mem.HandlerLoc(3, "load", 0), mem.CtxHandlerAdd, mem.CtxHandlerFire, false),
	}
	c := Count(reports)
	if c.Of(HTML) != 2 || c.Of(Function) != 1 || c.Of(Variable) != 1 || c.Of(EventDispatch) != 1 {
		t.Errorf("Count = %v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{0, 0, 5, 7, 100})
	if s.Mean != 22.4 {
		t.Errorf("mean = %v, want 22.4", s.Mean)
	}
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if s.Max != 100 {
		t.Errorf("max = %v, want 100", s.Max)
	}
	// Even count: median is the midpoint.
	s2 := Summarize([]int{1, 3})
	if s2.Median != 2 {
		t.Errorf("even median = %v, want 2", s2.Median)
	}
	// Empty: all zero.
	if z := Summarize(nil); z.Mean != 0 || z.Median != 0 || z.Max != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func TestBuildTable1(t *testing.T) {
	sites := []Counts{}
	c1 := Counts{}
	c1[HTML] = 2
	c1[Variable] = 10
	c2 := Counts{}
	c2[EventDispatch] = 4
	sites = append(sites, c1, c2)
	t1 := BuildTable1(sites)
	if t1.Rows["HTML"].Mean != 1 {
		t.Errorf("HTML mean = %v", t1.Rows["HTML"].Mean)
	}
	if t1.Rows["All"].Max != 12 {
		t.Errorf("All max = %v", t1.Rows["All"].Max)
	}
	if t1.Rows["All"].Mean != 8 {
		t.Errorf("All mean = %v", t1.Rows["All"].Mean)
	}
}

func TestBuildTable2(t *testing.T) {
	mk := func(site string, html, harmfulHTML, disp, harmfulDisp int) Table2Row {
		var c, h Counts
		c[HTML] = html
		h[HTML] = harmfulHTML
		c[EventDispatch] = disp
		h[EventDispatch] = harmfulDisp
		return Table2Row{Site: site, Counts: c, Harmful: h}
	}
	rows := []Table2Row{
		mk("Zeta", 2, 1, 0, 0),
		mk("Alpha", 0, 0, 35, 35),
		mk("Quiet", 0, 0, 0, 0), // race-free: elided from Rows
	}
	t2 := BuildTable2(rows)
	if t2.Sites != 3 {
		t.Errorf("Sites = %d", t2.Sites)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("Rows = %d, want 2 (race-free site elided)", len(t2.Rows))
	}
	if t2.Rows[0].Site != "Alpha" {
		t.Errorf("rows not sorted: %s first", t2.Rows[0].Site)
	}
	if t2.Total.Of(HTML) != 2 || t2.TotalHarmful.Of(HTML) != 1 {
		t.Errorf("HTML totals: %d (%d)", t2.Total.Of(HTML), t2.TotalHarmful.Of(HTML))
	}
	if got := t2.HarmfulFraction(EventDispatch); got != 1.0 {
		t.Errorf("dispatch harmful fraction = %v", got)
	}
	if got := t2.HarmfulFraction(Variable); got != 0 {
		t.Errorf("empty type fraction = %v", got)
	}
	var sb strings.Builder
	if err := t2.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Alpha", "35 (35)", "Total", "2 (1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for _, ty := range Types {
		if ty.String() == "" {
			t.Errorf("empty name for type %d", ty)
		}
	}
	if Variable.String() != "Variable" || HTML.String() != "HTML" {
		t.Error("type names changed")
	}
}
