package report

import (
	"fmt"
	"io"
	"sort"

	"webracer/internal/op"
	"webracer/internal/race"
)

// OpDescriber resolves operation IDs to human-readable descriptions;
// op.Table implements it.
type OpDescriber interface {
	Get(op.ID) op.Op
}

// Format writes a readable multi-line rendering of race reports, grouped
// by race type in Table 1 order, most-detailed form the CLI and examples
// share. harmful may be nil; when present it flags reports by index.
func Format(w io.Writer, reports []race.Report, ops OpDescriber, harmful []bool) error {
	byType := map[Type][]int{}
	for i, r := range reports {
		t := Classify(r)
		byType[t] = append(byType[t], i)
	}
	for _, t := range Types {
		idxs := byType[t]
		if len(idxs) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s races (%d):\n", t, len(idxs)); err != nil {
			return err
		}
		sort.Slice(idxs, func(a, b int) bool {
			return reports[idxs[a]].Loc.String() < reports[idxs[b]].Loc.String()
		})
		for _, i := range idxs {
			r := reports[i]
			mark := " "
			if harmful != nil && i < len(harmful) && harmful[i] {
				mark = "!"
			}
			fmt.Fprintf(w, " %s %s\n", mark, r.Loc)
			fmt.Fprintf(w, "     %-6s %s  in %s\n", r.Prior.Kind.String()+":",
				accessDesc(r.Prior), opDesc(ops, r.Prior.Op))
			fmt.Fprintf(w, "     %-6s %s  in %s\n", r.Current.Kind.String()+":",
				accessDesc(r.Current), opDesc(ops, r.Current.Op))
			if r.WriterReadFirst {
				fmt.Fprintf(w, "     note: the writer read the location first (check-then-write)\n")
			}
			if r.Env != "" {
				fmt.Fprintf(w, "     env: %s\n", r.Env)
			}
		}
	}
	return nil
}

func accessDesc(a race.Access) string {
	if a.Desc != "" {
		return a.Desc
	}
	return a.Ctx.String()
}

func opDesc(ops OpDescriber, id op.ID) string {
	if ops == nil {
		return fmt.Sprintf("op#%d", id)
	}
	return ops.Get(id).String()
}

// Summary renders one line per race type plus a total, e.g. for corpus
// sweeps: "HTML 2, Function 0, Variable 3, EventDispatch 1 (total 6)".
func Summary(c Counts) string {
	return fmt.Sprintf("HTML %d, Function %d, Variable %d, EventDispatch %d (total %d)",
		c.Of(HTML), c.Of(Function), c.Of(Variable), c.Of(EventDispatch), c.Total())
}
