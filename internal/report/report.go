// Package report classifies race reports into the paper's four race types
// (§2), implements the post-processing filters of §5.3, and computes the
// corpus statistics presented in §6 (Tables 1 and 2).
package report

import (
	"encoding/json"
	"fmt"
	"sort"

	"webracer/internal/mem"
	"webracer/internal/race"
)

// Type is one of the four race types of §2.
type Type uint8

const (
	// Variable is a data race on a JavaScript memory location (§2.2).
	Variable Type = iota
	// HTML is a race between creating/removing a DOM element and
	// accessing it (§2.3).
	HTML
	// Function is a race between parsing a function declaration and
	// invoking the function (§2.4).
	Function
	// EventDispatch is a race between dispatching an event and adding a
	// handler for it (§2.5).
	EventDispatch
	numTypes
)

// Types lists all race types in Table 1 order.
var Types = []Type{HTML, Function, Variable, EventDispatch}

func (t Type) String() string {
	switch t {
	case Variable:
		return "Variable"
	case HTML:
		return "HTML"
	case Function:
		return "Function"
	case EventDispatch:
		return "EventDispatch"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Classify maps a race report to its race type. Races on HTML element
// locations are HTML races; races on handler locations are event dispatch
// races; races on variables are function races when one side is the hoisted
// function-declaration write or an invocation read, else variable races.
func Classify(r race.Report) Type {
	switch r.Loc.Kind {
	case mem.Elem:
		return HTML
	case mem.Handler:
		return EventDispatch
	default:
		if isFunc(r.Prior.Ctx) || isFunc(r.Current.Ctx) {
			return Function
		}
		return Variable
	}
}

func isFunc(c mem.Context) bool { return c == mem.CtxFuncDecl || c == mem.CtxFuncCall }

// Filter decides whether a report should be kept.
type Filter interface {
	Keep(r race.Report) bool
	Name() string
}

// FormFilter implements the "focus on form races" filter of §5.3: variable
// races are suppressed unless they involve the value of an HTML form field,
// and form-field races whose writing operation read the value immediately
// before writing (a user-hasn't-touched-it check) are suppressed as
// harmless. Races of other types pass through untouched.
type FormFilter struct{}

// Name implements Filter.
func (FormFilter) Name() string { return "form" }

// Keep implements Filter.
func (FormFilter) Keep(r race.Report) bool {
	if Classify(r) != Variable {
		return true
	}
	form := isForm(r.Prior.Ctx) || isForm(r.Current.Ctx)
	if !form {
		return false
	}
	return !r.WriterReadFirst
}

func isForm(c mem.Context) bool { return c == mem.CtxFormField || c == mem.CtxUserInput }

// SingleDispatchFilter implements the "focus on single-dispatch events"
// filter of §5.3: event dispatch races are retained only when the event
// dispatches at most once (e.g. a window's load event) — missing such an
// event means the handler will never run. Races of other types pass
// through untouched.
type SingleDispatchFilter struct {
	// SingleShot reports whether an event type fires at most once per
	// target. When nil, DefaultSingleShot is used.
	SingleShot func(event string) bool
}

// Name implements Filter.
func (SingleDispatchFilter) Name() string { return "single-dispatch" }

// Keep implements Filter.
func (f SingleDispatchFilter) Keep(r race.Report) bool {
	if Classify(r) != EventDispatch {
		return true
	}
	ss := f.SingleShot
	if ss == nil {
		ss = DefaultSingleShot
	}
	return ss(r.Loc.Name)
}

// DefaultSingleShot classifies the events that fire at most once per target
// in a page's lifetime.
func DefaultSingleShot(event string) bool {
	switch event {
	case "load", "DOMContentLoaded":
		return true
	default:
		return false
	}
}

// Apply runs reports through every filter, keeping those all filters keep.
func Apply(reports []race.Report, filters ...Filter) []race.Report {
	return ApplyCounted(reports, nil, filters...)
}

// ApplyCounted is Apply with per-filter suppression accounting: when
// suppressed is non-nil, each report removed by filter f increments
// suppressed[f.Name()]. A report suppressed by several filters is charged
// to the first one that rejected it (filters are applied in order).
func ApplyCounted(reports []race.Report, suppressed map[string]int, filters ...Filter) []race.Report {
	if len(filters) == 0 {
		return reports
	}
	var kept []race.Report
	for _, r := range reports {
		ok := true
		for _, f := range filters {
			if !f.Keep(r) {
				ok = false
				if suppressed != nil {
					suppressed[f.Name()]++
				}
				break
			}
		}
		if ok {
			kept = append(kept, r)
		}
	}
	return kept
}

// Counts is the per-type race tally for one site. It marshals as an object
// with one key per race type in Table 1 order (HTML, Function, Variable,
// EventDispatch) — a stable, self-describing form suitable for golden
// files, instead of the positional array encoding of the underlying type.
type Counts [numTypes]int

// MarshalJSON implements json.Marshaler with a fixed key order.
func (c Counts) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	for i, t := range Types {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, fmt.Sprintf("%q:%d", t.String(), c[t])...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler for the object form.
func (c *Counts) UnmarshalJSON(data []byte) error {
	m := map[string]int{}
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for _, t := range Types {
		(*c)[t] = m[t.String()]
	}
	return nil
}

// Count tallies reports by type.
func Count(reports []race.Report) Counts {
	var c Counts
	for _, r := range reports {
		c[Classify(r)]++
	}
	return c
}

// Of returns the count for one type.
func (c Counts) Of(t Type) int { return c[t] }

// Total returns the count across all types.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Stats holds mean/median/max of one series — one row of Table 1.
type Stats struct {
	Mean   float64
	Median float64
	Max    int
}

// Summarize computes mean, median and max of per-site counts. An empty
// input yields zeros.
func Summarize(perSite []int) Stats {
	if len(perSite) == 0 {
		return Stats{}
	}
	sorted := append([]int(nil), perSite...)
	sort.Ints(sorted)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	var median float64
	n := len(sorted)
	if n%2 == 1 {
		median = float64(sorted[n/2])
	} else {
		median = float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	return Stats{
		Mean:   float64(sum) / float64(n),
		Median: median,
		Max:    sorted[n-1],
	}
}

// Table1 aggregates per-site counts into the five rows of Table 1
// (HTML, Function, Variable, EventDispatch, All).
type Table1 struct {
	Rows map[string]Stats
}

// BuildTable1 computes Table 1 from per-site tallies.
func BuildTable1(sites []Counts) Table1 {
	rows := make(map[string]Stats, numTypes+1)
	for _, t := range Types {
		series := make([]int, len(sites))
		for i, c := range sites {
			series[i] = c.Of(t)
		}
		rows[t.String()] = Summarize(series)
	}
	all := make([]int, len(sites))
	for i, c := range sites {
		all[i] = c.Total()
	}
	rows["All"] = Summarize(all)
	return Table1{Rows: rows}
}
