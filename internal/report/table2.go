package report

import (
	"fmt"
	"io"
	"sort"
)

// Table2Row is one site's line in the paper's Table 2: filtered race
// counts with the harmful subset in parentheses.
type Table2Row struct {
	Site    string
	Counts  Counts
	Harmful Counts
}

// Table2 aggregates per-site filtered results.
type Table2 struct {
	Rows         []Table2Row // only sites with at least one race, sorted by name
	Total        Counts
	TotalHarmful Counts
	Sites        int // all sites, including race-free ones
}

// BuildTable2 assembles the table from per-site rows (race-free sites are
// counted but elided from Rows, as in the paper).
func BuildTable2(rows []Table2Row) Table2 {
	t := Table2{Sites: len(rows)}
	for _, r := range rows {
		for _, ty := range Types {
			t.Total[ty] += r.Counts.Of(ty)
			t.TotalHarmful[ty] += r.Harmful.Of(ty)
		}
		if r.Counts.Total() > 0 {
			t.Rows = append(t.Rows, r)
		}
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Site < t.Rows[j].Site })
	return t
}

// HarmfulFraction reports the harmful share of one race type's total
// (0 when the type has no races).
func (t Table2) HarmfulFraction(ty Type) float64 {
	if t.Total.Of(ty) == 0 {
		return 0
	}
	return float64(t.TotalHarmful.Of(ty)) / float64(t.Total.Of(ty))
}

// Write renders the table in the paper's layout: one line per site with
// races, harmful counts in parentheses, then a totals line.
func (t Table2) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n",
		"Website", "HTML", "Function", "Variable", "EventDisp"); err != nil {
		return err
	}
	cell := func(c, h Counts, ty Type) string {
		if c.Of(ty) == 0 {
			return "0"
		}
		return fmt.Sprintf("%d (%d)", c.Of(ty), h.Of(ty))
	}
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", r.Site,
			cell(r.Counts, r.Harmful, HTML), cell(r.Counts, r.Harmful, Function),
			cell(r.Counts, r.Harmful, Variable), cell(r.Counts, r.Harmful, EventDispatch))
	}
	_, err := fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", "Total",
		fmt.Sprintf("%d (%d)", t.Total.Of(HTML), t.TotalHarmful.Of(HTML)),
		fmt.Sprintf("%d (%d)", t.Total.Of(Function), t.TotalHarmful.Of(Function)),
		fmt.Sprintf("%d (%d)", t.Total.Of(Variable), t.TotalHarmful.Of(Variable)),
		fmt.Sprintf("%d (%d)", t.Total.Of(EventDispatch), t.TotalHarmful.Of(EventDispatch)))
	return err
}
