package report

import (
	"strings"
	"testing"

	"webracer/internal/mem"
	"webracer/internal/race"
)

func mkReport(l mem.Loc, pk, ck mem.AccessKind, pCtx, cCtx mem.Context) race.Report {
	return race.Report{
		Loc:     l,
		Prior:   race.Access{Kind: pk, Loc: l, Op: 1, Ctx: pCtx},
		Current: race.Access{Kind: ck, Loc: l, Op: 2, Ctx: cCtx},
	}
}

func TestAdviseHTMLLookup(t *testing.T) {
	r := mkReport(mem.ElemIDLoc(1, "dw"), mem.Write, mem.Read, mem.CtxElemInsert, mem.CtxElemLookup)
	got := Advise(r)
	if !strings.Contains(got, "#dw") || !strings.Contains(got, "DOMContentLoaded") {
		t.Errorf("HTML advice lacks specifics: %q", got)
	}
}

func TestAdviseHTMLRemoval(t *testing.T) {
	r := mkReport(mem.ElemIDLoc(1, "victim"), mem.Write, mem.Read, mem.CtxElemRemove, mem.CtxElemLookup)
	got := Advise(r)
	if !strings.Contains(got, "removal") {
		t.Errorf("removal advice wrong: %q", got)
	}
}

func TestAdviseFunction(t *testing.T) {
	r := mkReport(mem.VarLoc(1, "doNextStep"), mem.Write, mem.Read, mem.CtxFuncDecl, mem.CtxFuncCall)
	got := Advise(r)
	if !strings.Contains(got, "doNextStep") || !strings.Contains(got, "typeof") {
		t.Errorf("function advice lacks the guard suggestion: %q", got)
	}
}

func TestAdviseDispatchSingleShot(t *testing.T) {
	r := mkReport(mem.HandlerLoc(3, "load", 0), mem.Write, mem.Read, mem.CtxHandlerAdd, mem.CtxHandlerFire)
	got := Advise(r)
	if !strings.Contains(got, "never run") || !strings.Contains(got, "onload") {
		t.Errorf("single-shot dispatch advice wrong: %q", got)
	}
}

func TestAdviseDispatchMulti(t *testing.T) {
	r := mkReport(mem.HandlerLoc(3, "mouseover", 0), mem.Write, mem.Read, mem.CtxHandlerAdd, mem.CtxHandlerFire)
	got := Advise(r)
	if !strings.Contains(got, "degraded-while-loading") {
		t.Errorf("multi-dispatch advice should mention the benign pattern: %q", got)
	}
}

func TestAdviseFormValue(t *testing.T) {
	r := mkReport(mem.VarLoc(7, "value"), mem.Write, mem.Write, mem.CtxFormField, mem.CtxUserInput)
	got := Advise(r)
	if !strings.Contains(got, "placeholder") && !strings.Contains(got, "untouched") {
		t.Errorf("form advice wrong: %q", got)
	}
}

func TestAdviseWriteWrite(t *testing.T) {
	r := mkReport(mem.VarLoc(1, "winner"), mem.Write, mem.Write, mem.CtxPlain, mem.CtxPlain)
	got := Advise(r)
	if !strings.Contains(got, "last writer wins") {
		t.Errorf("write-write advice wrong: %q", got)
	}
}

func TestAdviseReadWrite(t *testing.T) {
	r := mkReport(mem.VarLoc(1, "x"), mem.Write, mem.Read, mem.CtxPlain, mem.CtxPlain)
	got := Advise(r)
	if !strings.Contains(got, "ordering") {
		t.Errorf("read-write advice wrong: %q", got)
	}
}

// TestAdviseAlwaysNonEmpty: every race shape yields some advice.
func TestAdviseAlwaysNonEmpty(t *testing.T) {
	locs := []mem.Loc{
		mem.VarLoc(1, "a"), mem.ElemLoc(2), mem.ElemIDLoc(1, "x"),
		mem.HandlerLoc(3, "load", 0), mem.HandlerLoc(3, "click", 5),
	}
	kinds := []mem.AccessKind{mem.Read, mem.Write}
	ctxs := []mem.Context{mem.CtxPlain, mem.CtxFuncDecl, mem.CtxFuncCall,
		mem.CtxElemInsert, mem.CtxElemRemove, mem.CtxElemLookup,
		mem.CtxHandlerAdd, mem.CtxHandlerFire, mem.CtxFormField, mem.CtxUserInput}
	for _, l := range locs {
		for _, pk := range kinds {
			for _, ck := range kinds {
				if pk == mem.Read && ck == mem.Read {
					continue
				}
				for _, pc := range ctxs {
					for _, cc := range ctxs {
						if got := Advise(mkReport(l, pk, ck, pc, cc)); got == "" {
							t.Fatalf("empty advice for %v %v/%v %v/%v", l, pk, ck, pc, cc)
						}
					}
				}
			}
		}
	}
}
