// Package loader simulates the network. The paper's races arise from
// environmental asynchrony — "variation in network bandwidth, CPU
// resources, or the timing of user input events" (§2.1) — which this
// package reproduces deterministically: every resource fetch yields a
// latency drawn from a seeded distribution, so a given (site, seed) pair
// always produces the same execution, and different seeds explore different
// interleavings.
//
// Fetching goes through the Fetcher interface so the network model is
// swappable: Loader is the plain success-only model; internal/fault wraps
// any Fetcher with a deterministic fault plan (drops, HTTP error statuses,
// stalls, truncated bodies) so error-path orderings become explorable too.
package loader

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

// Site is the static content of one web site: URL → body. HTML pages,
// external scripts and iframe documents all live here.
type Site struct {
	// Resources maps URL to content.
	Resources map[string]string
	// Name labels the site in reports.
	Name string
}

// NewSite returns an empty site.
func NewSite(name string) *Site {
	return &Site{Name: name, Resources: map[string]string{}}
}

// Add registers a resource.
func (s *Site) Add(url, body string) *Site {
	s.Resources[url] = body
	return s
}

// Latency describes the fetch-latency distribution in virtual
// milliseconds.
type Latency struct {
	// Base is the minimum latency of any fetch.
	Base float64
	// Jitter is the width of the uniform random component added to Base.
	Jitter float64
	// PerURL overrides the drawn latency for specific URLs (used by the
	// adversarial harm-oracle schedule and by tests that need a specific
	// interleaving).
	PerURL map[string]float64
}

// DefaultLatency models a broadband connection: 5–80ms per resource.
func DefaultLatency() Latency { return Latency{Base: 5, Jitter: 75} }

// Response is the outcome of one fetch: the resource body, an HTTP-style
// status, the virtual latency until the outcome is observable, and the
// transport error (nil unless the resource failed to arrive at all).
// Status is 200 on success; a missing resource is a 404 with ErrNotFound.
// Fault injectors produce the remaining shapes: 4xx/5xx statuses with
// empty bodies, transport errors (drop/refuse), stalled latencies, and
// truncated bodies (Truncated set).
type Response struct {
	Body    string
	Status  int
	Latency float64
	Err     error
	// Truncated marks a body cut short mid-transfer by a fault.
	Truncated bool
}

// OK reports whether the response delivered the resource: no transport
// error and a non-error status.
func (r Response) OK() bool { return r.Err == nil && r.Status < 400 }

// Fetcher resolves URL fetches against a site. Implementations must be
// deterministic for a fixed construction (same call sequence → same
// responses); the browser relies on that for replayable executions.
type Fetcher interface {
	// Fetch returns the simulated outcome of requesting url.
	Fetch(url string) Response
	// Fetches reports how many fetches have been issued.
	Fetches() int
	// Site returns the site being served.
	Site() *Site
}

// Loader is the plain Fetcher: every registered resource succeeds with a
// latency drawn from the seeded distribution.
type Loader struct {
	site    *Site
	lat     Latency
	rng     *rand.Rand
	fetches int
}

// New creates a loader over site with the given latency model and seed.
func New(site *Site, lat Latency, seed int64) *Loader {
	return &Loader{site: site, lat: lat, rng: rand.New(rand.NewSource(seed))}
}

// LoadDir reads every regular file under dir into a Site, keyed by its
// slash-separated path relative to dir — the on-disk layout cmd/webracer
// and cmd/sitegen exchange. Hidden files (dot-prefixed) are skipped.
func LoadDir(dir string) (*Site, error) {
	site := NewSite(filepath.Base(dir))
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && path != dir {
			if d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		site.Add(filepath.ToSlash(rel), string(body))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(site.Resources) == 0 {
		return nil, fmt.Errorf("loader: no files under %s", dir)
	}
	return site, nil
}

// WriteDir writes the site's resources under dir, creating directories as
// needed (the inverse of LoadDir).
func (s *Site) WriteDir(dir string) error {
	for url, body := range s.Resources {
		path := filepath.Join(dir, filepath.FromSlash(url))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ErrNotFound reports a fetch of an unregistered URL.
type ErrNotFound struct{ URL string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("loader: resource %q not found", e.URL) }

// Fetch returns the outcome of requesting url: the body and the simulated
// latency until its bytes arrive. Image URLs (and any other URL ending in a
// known binary suffix) succeed with an empty body even when unregistered:
// pages reference decor images that only matter for their load events.
func (l *Loader) Fetch(url string) Response {
	l.fetches++
	lat := l.lat.Base + l.rng.Float64()*l.lat.Jitter
	if over, ok := l.lat.PerURL[url]; ok {
		lat = over
	}
	b, ok := l.site.Resources[url]
	if !ok {
		if isBinary(url) {
			return Response{Status: 200, Latency: lat}
		}
		return Response{Status: 404, Latency: lat, Err: &ErrNotFound{URL: url}}
	}
	return Response{Body: b, Status: 200, Latency: lat}
}

// Fetches reports how many fetches have been issued.
func (l *Loader) Fetches() int { return l.fetches }

// Site returns the site being served.
func (l *Loader) Site() *Site { return l.site }

// isBinary reports whether url names a decor resource (image, stylesheet,
// font) that may succeed with an empty body when unregistered. The match
// ignores case and any query string or fragment, so `logo.PNG` and
// `a.png?v=2` take the binary fast path like `a.png` does.
func isBinary(url string) bool {
	if i := strings.IndexAny(url, "?#"); i >= 0 {
		url = url[:i]
	}
	url = strings.ToLower(url)
	for _, suf := range []string{".png", ".jpg", ".jpeg", ".gif", ".ico", ".css", ".svg", ".woff"} {
		if strings.HasSuffix(url, suf) {
			return true
		}
	}
	return false
}
