package loader

import (
	"errors"
	"testing"
)

func TestFetchRegistered(t *testing.T) {
	site := NewSite("t").Add("a.js", "x = 1;")
	l := New(site, Latency{Base: 10, Jitter: 5}, 1)
	body, lat, err := l.Fetch("a.js")
	if err != nil {
		t.Fatal(err)
	}
	if body != "x = 1;" {
		t.Errorf("body = %q", body)
	}
	if lat < 10 || lat > 15 {
		t.Errorf("latency %v outside [10,15]", lat)
	}
	if l.Fetches() != 1 {
		t.Errorf("Fetches = %d", l.Fetches())
	}
}

func TestFetchMissing(t *testing.T) {
	l := New(NewSite("t"), Latency{Base: 1}, 1)
	_, _, err := l.Fetch("missing.js")
	var nf *ErrNotFound
	if !errors.As(err, &nf) || nf.URL != "missing.js" {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchBinaryAlwaysSucceeds(t *testing.T) {
	l := New(NewSite("t"), Latency{Base: 1}, 1)
	for _, url := range []string{"decor.png", "a.jpg", "b.gif", "c.css", "d.ico"} {
		if _, _, err := l.Fetch(url); err != nil {
			t.Errorf("binary fetch %s failed: %v", url, err)
		}
	}
	if _, _, err := l.Fetch("page.html"); err == nil {
		t.Error("missing html succeeded")
	}
}

func TestPerURLOverride(t *testing.T) {
	site := NewSite("t").Add("slow.js", "x")
	l := New(site, Latency{Base: 5, Jitter: 10, PerURL: map[string]float64{"slow.js": 500}}, 1)
	_, lat, _ := l.Fetch("slow.js")
	if lat != 500 {
		t.Errorf("override ignored: %v", lat)
	}
}

func TestDeterministicLatency(t *testing.T) {
	site := NewSite("t").Add("a.js", "x").Add("b.js", "y")
	seq := func() []float64 {
		l := New(site, DefaultLatency(), 42)
		var out []float64
		for i := 0; i < 10; i++ {
			_, lat, _ := l.Fetch("a.js")
			out = append(out, lat)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different latency at fetch %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed: different draws (overwhelmingly likely).
	l2 := New(site, DefaultLatency(), 43)
	_, lat2, _ := l2.Fetch("a.js")
	if lat2 == a[0] {
		t.Log("different seeds coincided on first draw (possible but unlikely)")
	}
}

func TestLoadDirWriteDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := NewSite("disk").
		Add("index.html", "<p>hi</p>").
		Add("js/app.js", "x = 1;").
		Add("frames/a.html", "<p>frame</p>")
	if err := orig.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Resources) != len(orig.Resources) {
		t.Fatalf("round trip: %d resources, want %d", len(back.Resources), len(orig.Resources))
	}
	for url, body := range orig.Resources {
		if back.Resources[url] != body {
			t.Errorf("resource %s differs", url)
		}
	}
}

func TestLoadDirSkipsHidden(t *testing.T) {
	dir := t.TempDir()
	site := NewSite("h").Add("index.html", "x")
	if err := site.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := NewSite("h2").Add(".git/config", "secret").WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Resources[".git/config"]; ok {
		t.Error("hidden directory content loaded")
	}
	if _, ok := back.Resources["index.html"]; !ok {
		t.Error("regular file missing")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestSiteBuilder(t *testing.T) {
	site := NewSite("corp").Add("a", "1").Add("b", "2")
	if site.Name != "corp" || len(site.Resources) != 2 {
		t.Errorf("site = %+v", site)
	}
	l := New(site, DefaultLatency(), 1)
	if l.Site() != site {
		t.Error("Site accessor")
	}
}
