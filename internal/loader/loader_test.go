package loader

import (
	"errors"
	"testing"
)

func TestFetchRegistered(t *testing.T) {
	site := NewSite("t").Add("a.js", "x = 1;")
	l := New(site, Latency{Base: 10, Jitter: 5}, 1)
	resp := l.Fetch("a.js")
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Body != "x = 1;" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.Status != 200 || !resp.OK() {
		t.Errorf("status = %d", resp.Status)
	}
	if resp.Latency < 10 || resp.Latency > 15 {
		t.Errorf("latency %v outside [10,15]", resp.Latency)
	}
	if l.Fetches() != 1 {
		t.Errorf("Fetches = %d", l.Fetches())
	}
}

func TestFetchMissing(t *testing.T) {
	l := New(NewSite("t"), Latency{Base: 1}, 1)
	resp := l.Fetch("missing.js")
	var nf *ErrNotFound
	if !errors.As(resp.Err, &nf) || nf.URL != "missing.js" {
		t.Fatalf("err = %v", resp.Err)
	}
	if resp.Status != 404 || resp.OK() {
		t.Errorf("missing resource status = %d", resp.Status)
	}
}

func TestFetchBinaryAlwaysSucceeds(t *testing.T) {
	l := New(NewSite("t"), Latency{Base: 1}, 1)
	for _, url := range []string{"decor.png", "a.jpg", "b.gif", "c.css", "d.ico"} {
		if resp := l.Fetch(url); resp.Err != nil {
			t.Errorf("binary fetch %s failed: %v", url, resp.Err)
		}
	}
	if resp := l.Fetch("page.html"); resp.Err == nil {
		t.Error("missing html succeeded")
	}
}

// TestIsBinaryCaseAndQuery: the binary fast path is case-insensitive and
// ignores query strings and fragments — `logo.PNG` and `a.png?v=2` must
// not spuriously 404.
func TestIsBinaryCaseAndQuery(t *testing.T) {
	l := New(NewSite("t"), Latency{Base: 1}, 1)
	for _, url := range []string{
		"logo.PNG", "a.png?v=2", "hero.JPG?cache=1&x=2", "style.CSS",
		"icon.Ico#frag", "pic.JPEG?",
	} {
		if resp := l.Fetch(url); resp.Err != nil {
			t.Errorf("binary fetch %s failed: %v", url, resp.Err)
		}
	}
	for _, url := range []string{"page.html?v=2", "app.js?x=png", "png.html"} {
		if resp := l.Fetch(url); resp.Err == nil {
			t.Errorf("non-binary fetch %s spuriously succeeded", url)
		}
	}
}

func TestPerURLOverride(t *testing.T) {
	site := NewSite("t").Add("slow.js", "x")
	l := New(site, Latency{Base: 5, Jitter: 10, PerURL: map[string]float64{"slow.js": 500}}, 1)
	if resp := l.Fetch("slow.js"); resp.Latency != 500 {
		t.Errorf("override ignored: %v", resp.Latency)
	}
}

func TestDeterministicLatency(t *testing.T) {
	site := NewSite("t").Add("a.js", "x").Add("b.js", "y")
	seq := func() []float64 {
		l := New(site, DefaultLatency(), 42)
		var out []float64
		for i := 0; i < 10; i++ {
			out = append(out, l.Fetch("a.js").Latency)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different latency at fetch %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed: different draws (overwhelmingly likely).
	l2 := New(site, DefaultLatency(), 43)
	if lat2 := l2.Fetch("a.js").Latency; lat2 == a[0] {
		t.Log("different seeds coincided on first draw (possible but unlikely)")
	}
}

func TestLoadDirWriteDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := NewSite("disk").
		Add("index.html", "<p>hi</p>").
		Add("js/app.js", "x = 1;").
		Add("frames/a.html", "<p>frame</p>")
	if err := orig.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Resources) != len(orig.Resources) {
		t.Fatalf("round trip: %d resources, want %d", len(back.Resources), len(orig.Resources))
	}
	for url, body := range orig.Resources {
		if back.Resources[url] != body {
			t.Errorf("resource %s differs", url)
		}
	}
}

func TestLoadDirSkipsHidden(t *testing.T) {
	dir := t.TempDir()
	site := NewSite("h").Add("index.html", "x")
	if err := site.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := NewSite("h2").Add(".git/config", "secret").WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Resources[".git/config"]; ok {
		t.Error("hidden directory content loaded")
	}
	if _, ok := back.Resources["index.html"]; !ok {
		t.Error("regular file missing")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestSiteBuilder(t *testing.T) {
	site := NewSite("corp").Add("a", "1").Add("b", "2")
	if site.Name != "corp" || len(site.Resources) != 2 {
		t.Errorf("site = %+v", site)
	}
	l := New(site, DefaultLatency(), 1)
	if l.Site() != site {
		t.Error("Site accessor")
	}
}
