// Package store is the crash-safe persistent half of webracerd's
// two-level result cache: a disk-backed content-addressed store whose
// entries survive restarts and can be rsync'd between nodes.
//
// The determinism contract (DESIGN.md "Service architecture") makes
// persistence sound the same way it makes the in-memory LRU sound: a
// result is a pure function of its key, so bytes written once are the
// bytes forever — there is no invalidation problem, only an integrity
// problem. The store therefore spends all of its machinery on integrity:
//
//   - Writes are atomic: the entry is written to a temp file in the same
//     directory, fsync'd, and renamed into place. A crash mid-write
//     leaves either the old entry or a temp file the next scan discards
//     — never a half-written entry served as truth.
//   - Every entry carries a SHA-256 checksum over its body, verified on
//     every read. Bit rot, truncation, or a torn rsync yields a
//     quarantined file and a cache miss — the service recomputes, it
//     does not crash and it does not serve garbage.
//   - Opening a store scans it: valid entries are surfaced to the caller
//     (webracerd warms its LRU from them), corrupt ones are moved to
//     quarantine/ for the operator, temp droppings are deleted.
//
// Entry format (version-prefixed so the layout can evolve):
//
//	webracer-store/1\n
//	<64 hex chars: SHA-256 of body>\n
//	<key>\n
//	<body bytes>
//
// The key is stored inside the entry — the filename is merely the key
// when it is filesystem-safe — so recovery never trusts filenames, and
// a file whose embedded key disagrees with its name is corruption, not
// an alias.
//
// Traffic is counted in the service registry under serve.store.*; all
// methods are safe for concurrent use.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"webracer/internal/obs"
)

// magic is the entry-format version line; bump it to retire every
// persisted entry at once when the layout changes.
const magic = "webracer-store/1"

// quarantineDir is the subdirectory corrupt entries are moved into,
// preserved for operator inspection rather than deleted.
const quarantineDir = "quarantine"

// tmpPrefix marks in-progress writes; Open deletes leftovers (a crash
// between create and rename).
const tmpPrefix = ".tmp-"

// Store is a disk-backed content-addressed result store rooted at one
// directory. Construct with Open; the zero Store is not usable, but a
// nil *Store accepts every method as a no-op miss, so callers can wire
// it unconditionally the way obs handles are wired.
type Store struct {
	dir string

	// mu serializes writers to one key and the quarantine path; reads
	// are lock-free (os.ReadFile of an immutable, atomically renamed
	// file).
	mu sync.Mutex

	hits, misses, puts, quarantined, recovered, errors *obs.Counter
	bytes, entries                                     *obs.Gauge

	sizeMu    sync.Mutex
	size      int64
	nEntries  int64
	nQuarants int64
}

// Open creates (if needed) and scans the store rooted at dir, counting
// traffic in m under serve.store.*. Valid entries are reported to onEntry
// (nil is allowed) — webracerd uses the callback to warm its in-memory
// LRU, making the pair a two-level cache. Corrupt entries are quarantined
// and counted; leftover temp files from interrupted writes are removed.
func Open(dir string, m *obs.Metrics, onEntry func(key string, body []byte)) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:         dir,
		hits:        m.Counter("serve.store.hits"),
		misses:      m.Counter("serve.store.misses"),
		puts:        m.Counter("serve.store.puts"),
		quarantined: m.Counter("serve.store.quarantined"),
		recovered:   m.Counter("serve.store.recovered"),
		errors:      m.Counter("serve.store.errors"),
		bytes:       m.Gauge("serve.store.bytes"),
		entries:     m.Gauge("serve.store.entries"),
	}
	if err := s.recover(onEntry); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir is the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Len is the number of valid entries currently on disk (0 for nil).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.sizeMu.Lock()
	defer s.sizeMu.Unlock()
	return int(s.nEntries)
}

// Quarantined is the number of entries this process has quarantined
// (recovery scan plus read-time detections).
func (s *Store) Quarantined() int {
	if s == nil {
		return 0
	}
	s.sizeMu.Lock()
	defer s.sizeMu.Unlock()
	return int(s.nQuarants)
}

// Get returns the stored bytes for key. A missing entry is a plain miss;
// an entry that fails checksum or key verification is quarantined and
// reported as a miss — corruption degrades to recomputation, never to an
// error or bad bytes. Nil store: always a miss, uncounted.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	path := filepath.Join(s.dir, fileName(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Inc()
		return nil, false
	}
	body, gotKey, err := decodeEntry(raw)
	if err != nil || gotKey != key {
		s.quarantine(path, raw)
		s.misses.Inc()
		return nil, false
	}
	s.hits.Inc()
	return body, true
}

// Put persists body under key atomically: temp file in the store
// directory, fsync, rename. An existing entry is replaced (bodies for
// one key are identical by construction, so a replace only matters after
// a quarantine). Errors are counted and returned; the caller treats the
// store as best-effort — a failed Put costs a future recomputation, not
// correctness. Nil store: a silent no-op.
func (s *Store) Put(key string, body []byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, fileName(key))
	oldSize, existed := statSize(path)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		s.errors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	entry := encodeEntry(key, body)
	_, werr := tmp.Write(entry)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		s.errors.Inc()
		return fmt.Errorf("store: %w", werr)
	}
	s.puts.Inc()
	s.account(int64(len(entry))-oldSize, boolToDelta(!existed))
	return nil
}

// recover scans the store directory: temp droppings are deleted, corrupt
// entries quarantined, valid entries counted and surfaced via onEntry in
// sorted filename order (deterministic warm-up).
func (s *Store) recover(onEntry func(key string, body []byte)) error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(path)
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			s.errors.Inc()
			continue
		}
		body, key, derr := decodeEntry(raw)
		if derr != nil || fileName(key) != name {
			s.quarantine(path, raw)
			continue
		}
		s.recovered.Inc()
		s.account(int64(len(raw)), 1)
		if onEntry != nil {
			onEntry(key, body)
		}
	}
	return nil
}

// quarantine moves a corrupt file into quarantine/ (overwriting a prior
// quarantine of the same name) so the operator can inspect it; the entry
// stops being servable either way.
func (s *Store) quarantine(path string, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The file may already be gone (a concurrent reader quarantined it);
	// only count the move that actually happens.
	if _, err := os.Stat(path); err != nil {
		return
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	_ = os.MkdirAll(qdir, 0o755)
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		_ = os.Remove(path)
	}
	s.quarantined.Inc()
	s.account(-int64(len(raw)), -1)
	s.sizeMu.Lock()
	s.nQuarants++
	s.sizeMu.Unlock()
}

// account tracks on-disk footprint for the serve.store.bytes/entries
// gauges.
func (s *Store) account(deltaBytes, deltaEntries int64) {
	s.sizeMu.Lock()
	s.size += deltaBytes
	if s.size < 0 {
		s.size = 0
	}
	s.nEntries += deltaEntries
	if s.nEntries < 0 {
		s.nEntries = 0
	}
	s.bytes.Set(s.size)
	s.entries.Set(s.nEntries)
	s.sizeMu.Unlock()
}

// encodeEntry renders the on-disk format: magic, body checksum, key,
// body.
func encodeEntry(key string, body []byte) []byte {
	sum := sha256.Sum256(body)
	var buf bytes.Buffer
	buf.Grow(len(magic) + 1 + 64 + 1 + len(key) + 1 + len(body))
	buf.WriteString(magic)
	buf.WriteByte('\n')
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')
	buf.WriteString(key)
	buf.WriteByte('\n')
	buf.Write(body)
	return buf.Bytes()
}

// decodeEntry parses and verifies one on-disk entry, returning its body
// and embedded key. Any deviation — wrong magic, malformed header,
// checksum mismatch — is an error the caller turns into quarantine.
func decodeEntry(raw []byte) (body []byte, key string, err error) {
	rest, ok := cutLine(raw, magic)
	if !ok {
		return nil, "", fmt.Errorf("store: bad magic")
	}
	sumLine, rest, ok := nextLine(rest)
	if !ok || len(sumLine) != 64 {
		return nil, "", fmt.Errorf("store: bad checksum line")
	}
	keyLine, body, ok := nextLine(rest)
	if !ok {
		return nil, "", fmt.Errorf("store: bad key line")
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(sumLine) {
		return nil, "", fmt.Errorf("store: checksum mismatch")
	}
	return body, string(keyLine), nil
}

// cutLine strips an exact expected first line.
func cutLine(raw []byte, want string) ([]byte, bool) {
	line, rest, ok := nextLine(raw)
	if !ok || string(line) != want {
		return nil, false
	}
	return rest, true
}

// nextLine splits raw at the first newline.
func nextLine(raw []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(raw, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return raw[:i], raw[i+1:], true
}

// fileName maps a key to its entry filename. Keys in this repo are hex
// SHA-256 strings, which are their own safe filenames; anything else is
// hashed so the store never writes outside its directory or collides
// with the temp/quarantine namespaces.
func fileName(key string) string {
	if isSafeName(key) {
		return key
	}
	sum := sha256.Sum256([]byte(key))
	return "k-" + hex.EncodeToString(sum[:])
}

// isSafeName reports whether key can be its own filename: non-empty,
// path-separator-free, no leading dot, and not the quarantine directory
// name.
func isSafeName(key string) bool {
	if key == "" || key == quarantineDir || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

// statSize returns a file's size and whether it exists.
func statSize(path string) (int64, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// boolToDelta maps "is a new entry" to the entries-gauge delta.
func boolToDelta(isNew bool) int64 {
	if isNew {
		return 1
	}
	return 0
}
