package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"webracer/internal/obs"
)

// openT opens a store in dir, failing the test on error.
func openT(t *testing.T, dir string, m *obs.Metrics, onEntry func(string, []byte)) *Store {
	t.Helper()
	s, err := Open(dir, m, onEntry)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// body derives a distinct deterministic body for entry i.
func body(i int) []byte {
	return []byte(fmt.Sprintf(`{"id":"entry-%02d","payload":"%s"}`+"\n", i, strings.Repeat("x", i*7)))
}

// key derives entry i's key (hex-like, filesystem-safe, as serve produces).
func key(i int) string { return fmt.Sprintf("aabb%060d", i) }

// TestPutGetRoundTrip: bytes out are bytes in, and counters track.
func TestPutGetRoundTrip(t *testing.T) {
	m := obs.New()
	s := openT(t, t.TempDir(), m, nil)
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), body(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		b, ok := s.Get(key(i))
		if !ok || !bytes.Equal(b, body(i)) {
			t.Fatalf("Get %d: ok=%v body=%q", i, ok, b)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	snap := m.Snapshot()
	if snap["serve.store.puts"] != 5 || snap["serve.store.hits"] != 5 || snap["serve.store.misses"] != 1 {
		t.Fatalf("counters: %v", snap)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

// TestCrashRecoveryBattery is the satellite battery: persist a
// population, then simulate every crash/corruption shape at once —
// truncated entries, flipped body bytes, a forged checksum, a renamed
// entry, a leftover temp file — restart, and assert (a) the quarantine
// count is exactly the number of damaged entries, (b) every surviving
// entry is byte-identical to what was written cold, and (c) the damaged
// keys read as misses, not errors or garbage.
func TestCrashRecoveryBattery(t *testing.T) {
	dir := t.TempDir()
	m := obs.New()
	s := openT(t, dir, m, nil)
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), body(i)); err != nil {
			t.Fatal(err)
		}
	}

	damage := map[string]bool{} // key → damaged
	mangle := func(i int, f func(path string, raw []byte)) {
		path := filepath.Join(dir, key(i))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		f(path, raw)
		damage[key(i)] = true
	}
	// Truncation: a crash mid-flush of a non-atomic copy (or torn rsync).
	mangle(3, func(p string, raw []byte) { mustWrite(t, p, raw[:len(raw)/2]) })
	mangle(7, func(p string, raw []byte) { mustWrite(t, p, raw[:10]) })
	// Bit rot: one flipped byte in the body.
	mangle(11, func(p string, raw []byte) { raw[len(raw)-2] ^= 0x40; mustWrite(t, p, raw) })
	// Forged header: checksum replaced wholesale.
	mangle(13, func(p string, raw []byte) {
		lines := bytes.SplitN(raw, []byte("\n"), 3)
		lines[1] = []byte(strings.Repeat("0", 64))
		mustWrite(t, p, bytes.Join(lines, []byte("\n")))
	})
	// Misfiled entry: valid bytes under the wrong name (embedded key
	// disagrees with the filename — recovery must not trust filenames).
	if err := os.Rename(filepath.Join(dir, key(17)), filepath.Join(dir, key(17)+"ff")); err != nil {
		t.Fatal(err)
	}
	damage[key(17)] = true
	// Crash mid-write: a temp dropping that must be swept, not served.
	mustWrite(t, filepath.Join(dir, tmpPrefix+"crash"), []byte("partial"))

	// "Restart": a fresh Store over the same directory.
	m2 := obs.New()
	var recovered sync.Map
	s2 := openT(t, dir, m2, func(k string, b []byte) { recovered.Store(k, append([]byte(nil), b...)) })

	wantQuarantined := int64(len(damage))
	snap := m2.Snapshot()
	if snap["serve.store.quarantined"] != wantQuarantined {
		t.Fatalf("serve.store.quarantined = %d, want %d", snap["serve.store.quarantined"], wantQuarantined)
	}
	if snap["serve.store.recovered"] != int64(n-len(damage)) {
		t.Fatalf("serve.store.recovered = %d, want %d", snap["serve.store.recovered"], n-len(damage))
	}
	for i := 0; i < n; i++ {
		k := key(i)
		got, ok := s2.Get(k)
		if damage[k] {
			if ok {
				t.Errorf("damaged entry %d served: %q", i, got)
			}
			if _, warm := recovered.Load(k); warm {
				t.Errorf("damaged entry %d surfaced by recovery", i)
			}
			continue
		}
		// Byte-identical to the cold write, both via Get and via the
		// recovery callback.
		if !ok || !bytes.Equal(got, body(i)) {
			t.Errorf("survivor %d: ok=%v bytes differ", i, ok)
		}
		if warm, _ := recovered.Load(k); !bytes.Equal(warm.([]byte), body(i)) {
			t.Errorf("survivor %d: recovery callback bytes differ", i)
		}
	}
	// Quarantined files are preserved for inspection, not deleted.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qents) != len(damage) {
		t.Fatalf("quarantine dir: %d files, err %v, want %d", len(qents), err, len(damage))
	}
	// Temp droppings are gone.
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix + "crash")); !os.IsNotExist(err) {
		t.Fatalf("temp dropping survived recovery: %v", err)
	}
	// A damaged key is writable again and round-trips.
	if err := s2.Put(key(3), body(3)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key(3)); !ok || !bytes.Equal(got, body(3)) {
		t.Fatal("re-Put after quarantine does not round-trip")
	}
}

// TestReadTimeQuarantine: corruption that appears after the startup scan
// (disk failing under a running service) is caught by the per-read
// checksum, quarantined, and reported as a miss.
func TestReadTimeQuarantine(t *testing.T) {
	dir := t.TempDir()
	m := obs.New()
	s := openT(t, dir, m, nil)
	if err := s.Put(key(1), body(1)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, key(1)))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	mustWrite(t, filepath.Join(dir, key(1)), raw)

	if _, ok := s.Get(key(1)); ok {
		t.Fatal("corrupt entry served")
	}
	if got := s.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	// The miss is permanent until re-Put: the file moved to quarantine.
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

// TestRecoveryOrderDeterministic: the warm-up callback fires in sorted
// filename order, so LRU warm-up is reproducible across restarts.
func TestRecoveryOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, obs.New(), nil)
	keys := []string{key(9), key(2), key(5), key(0)}
	for i, k := range keys {
		if err := s.Put(k, body(i)); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	openT(t, dir, obs.New(), func(k string, _ []byte) { order = append(order, k) })
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(order) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("recovery order %v, want %v", order, want)
		}
	}
}

// TestUnsafeKeysAreHashed: keys that cannot be filenames still round-trip
// (hashed names), and path-traversal keys never escape the store dir.
func TestUnsafeKeysAreHashed(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, obs.New(), nil)
	evil := []string{"../escape", "a/b", "", ".hidden", quarantineDir}
	for i, k := range evil {
		if err := s.Put(k, body(i)); err != nil {
			t.Fatalf("Put %q: %v", k, err)
		}
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, body(i)) {
			t.Fatalf("round-trip %q failed", k)
		}
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape")); !os.IsNotExist(err) {
		t.Fatal("path-traversal key escaped the store directory")
	}
	// And they survive a restart like any other entry.
	n := 0
	openT(t, dir, obs.New(), func(string, []byte) { n++ })
	if n != len(evil) {
		t.Fatalf("recovered %d hashed-key entries, want %d", n, len(evil))
	}
}

// TestConcurrentPutGet: the store is safe under concurrent mixed traffic
// (the service reads from request goroutines while workers write).
func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir(), obs.New(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				k := key(i % 10)
				if g%2 == 0 {
					if err := s.Put(k, body(i%10)); err != nil {
						t.Errorf("Put: %v", err)
					}
				} else if b, ok := s.Get(k); ok && !bytes.Equal(b, body(i%10)) {
					t.Errorf("Get %s: wrong bytes", k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNilStore: the nil *Store is a well-behaved no-op (the disabled
// persistence configuration).
func TestNilStore(t *testing.T) {
	var s *Store
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.Quarantined() != 0 || s.Dir() != "" {
		t.Fatal("nil store accessors not zero")
	}
}

// mustWrite replaces a file's contents.
func mustWrite(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
