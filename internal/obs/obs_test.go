package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestNilSafety: the disabled layer — nil registry, nil handles, nil
// trace — must absorb every call without panicking and marshal to empty
// containers. This is the zero-cost-when-disabled contract.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	c := m.Counter("x")
	g := m.Gauge("y")
	c.Inc()
	c.Add(5)
	g.Set(7)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles should read zero")
	}
	m.Add("x", 1)
	m.Set("y", 2)
	if m.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	// encoding/json short-circuits nil pointers to null before calling
	// MarshalJSON; either way the export is valid JSON with no metrics.
	data, err := json.Marshal(m)
	if err != nil || (string(data) != "{}" && string(data) != "null") {
		t.Errorf("nil registry marshals as %q (%v)", data, err)
	}

	var tr *TraceLog
	tr.BeginSpan("task", "t", 0)
	tr.EndSpan(1, nil)
	tr.Async("fetch", "f", "1", 0, 5, nil)
	tr.AsyncBegin("timer", "t", "2", 0, nil)
	tr.AsyncEnd("timer", "t", "2", 3, nil)
	tr.Instant("fault", "drop", 1, nil)
	if tr.Events() != nil {
		t.Error("nil trace should record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("nil trace export should have an empty event array:\n%s", buf.String())
	}
}

// TestMetricsDeterministicEncoding: the JSON export is sorted and
// insertion-order independent.
func TestMetricsDeterministicEncoding(t *testing.T) {
	a := New()
	a.Add("z.last", 3)
	a.Add("a.first", 1)
	a.Set("m.middle", 2)

	b := New()
	b.Set("m.middle", 2)
	b.Add("a.first", 1)
	b.Add("z.last", 3)

	da, _ := json.Marshal(a)
	db, _ := json.Marshal(b)
	if !bytes.Equal(da, db) {
		t.Errorf("insertion order leaked into encoding:\n%s\n%s", da, db)
	}
	want := `{"a.first":1,"m.middle":2,"z.last":3}`
	if string(da) != want {
		t.Errorf("encoding %s, want %s", da, want)
	}

	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("WriteJSON differs between equal registries")
	}
	var parsed map[string]int64
	if err := json.Unmarshal(bufA.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if parsed["z.last"] != 3 {
		t.Errorf("round-trip lost values: %v", parsed)
	}
}

// TestCounterGaugeSemantics: counters accumulate, gauges overwrite, and
// handles stay live across lookups.
func TestCounterGaugeSemantics(t *testing.T) {
	m := New()
	c := m.Counter("c")
	c.Inc()
	m.Counter("c").Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := m.Gauge("g")
	g.Set(10)
	m.Gauge("g").Set(3)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	snap := m.Snapshot()
	if snap["c"] != 5 || snap["g"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

// TestTraceSpansNestAndStayMonotonic: main-thread spans at the same
// virtual instant are spread apart, nest properly, and the export is a
// wellformed Chrome trace.
func TestTraceSpansNestAndStayMonotonic(t *testing.T) {
	tr := NewTrace()
	tr.BeginSpan("task", "outer", 0)
	tr.BeginSpan("script", "inner", 0) // same virtual instant
	tr.EndSpan(0, map[string]any{"op": 2})
	tr.EndSpan(0, map[string]any{"op": 1})
	tr.Async("fetch", "a.js", "f1", 0, 40, map[string]any{"status": 200})
	tr.Instant("fault", "drop b.js", 12, nil)

	var spans []TraceEvent
	for _, e := range tr.Events() {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("%d complete spans, want 2", len(spans))
	}
	outer, inner := spans[0], spans[1]
	if outer.Name != "outer" || inner.Name != "inner" {
		t.Fatalf("span order: %q then %q", outer.Name, inner.Name)
	}
	if !(outer.TS < inner.TS && inner.TS+inner.Dur <= outer.TS+outer.Dur) {
		t.Errorf("inner [%d,+%d] does not nest in outer [%d,+%d]",
			inner.TS, inner.Dur, outer.TS, outer.Dur)
	}
	if inner.Dur < 1 {
		t.Error("same-instant span got zero width")
	}
	if inner.Args["op"] != 2 {
		t.Errorf("span args lost: %v", inner.Args)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	// 2 metadata + 2 spans + b + e + instant.
	if len(parsed.TraceEvents) != 7 {
		t.Errorf("%d events, want 7", len(parsed.TraceEvents))
	}

	// Byte-stability: an identical event sequence encodes identically.
	tr2 := NewTrace()
	tr2.BeginSpan("task", "outer", 0)
	tr2.BeginSpan("script", "inner", 0)
	tr2.EndSpan(0, map[string]any{"op": 2})
	tr2.EndSpan(0, map[string]any{"op": 1})
	tr2.Async("fetch", "a.js", "f1", 0, 40, map[string]any{"status": 200})
	tr2.Instant("fault", "drop b.js", 12, nil)
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not byte-stable")
	}
}

// TestAsyncPairsShareIdentity: begin/end of one activity agree on
// (cat, id) and timestamps never run backwards within the pair.
func TestAsyncPairsShareIdentity(t *testing.T) {
	tr := NewTrace()
	tr.AsyncBegin("xhr", "GET /api", "x9", 5, nil)
	tr.AsyncEnd("xhr", "GET /api", "x9", 45, map[string]any{"event": "load"})
	var b, e *TraceEvent
	for i := range tr.Events() {
		ev := &tr.Events()[i]
		switch ev.Ph {
		case "b":
			b = ev
		case "e":
			e = ev
		}
	}
	if b == nil || e == nil {
		t.Fatal("missing async pair")
	}
	if b.Cat != e.Cat || b.ID != e.ID {
		t.Errorf("pair identity mismatch: (%s,%s) vs (%s,%s)", b.Cat, b.ID, e.Cat, e.ID)
	}
	if e.TS < b.TS {
		t.Errorf("async end %d before begin %d", e.TS, b.TS)
	}
}

// TestStartLive: the endpoint serves progress and metrics as JSON.
func TestStartLive(t *testing.T) {
	m := New()
	m.Add("sweep.done", 3)
	url, stop, err := StartLive("127.0.0.1:0", func() map[string]any {
		return map[string]any{"done": 3, "total": 10}
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) map[string]any {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s returned invalid JSON %q: %v", path, data, err)
		}
		return v
	}
	if v := get("/progress"); v["done"] != float64(3) || v["total"] != float64(10) {
		t.Errorf("/progress = %v", v)
	}
	if v := get("/metrics"); v["sweep.done"] != float64(3) {
		t.Errorf("/metrics = %v", v)
	}
}
