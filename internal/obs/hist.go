package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution metric: bucket boundaries are
// chosen once at construction (typically log-spaced via ExpBuckets) and
// never move, so two snapshots of the same histogram are structurally
// comparable and the JSON export is byte-stable. Each recorded value
// lands in the first bucket whose upper bound is >= the value; values
// above the last bound land in an implicit overflow bucket.
//
// Like every obs handle, the nil *Histogram discards all updates, which
// is what a disabled registry hands out.
//
// Histograms come in two determinism classes, fixed at construction:
//
//   - step-unit histograms (Metrics.Histogram) record deterministic
//     quantities — operation counts, response bytes, queue depths,
//     attempt counts — and are golden-testable byte for byte;
//   - wall-time histograms (Metrics.WallHistogram) record wall-clock
//     durations and are excluded from the stable export
//     (WriteStableJSON), so operators see them on /metrics while the
//     golden gates never do.
type Histogram struct {
	unit   string
	wall   bool
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Int64
	n      atomic.Int64
}

// newHistogram builds an enabled histogram over bounds (which must be
// strictly ascending; newHistogram copies the slice).
func newHistogram(unit string, wall bool, bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		unit:   unit,
		wall:   wall,
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Record adds one observation (no-op on the nil handle). Safe for
// concurrent use.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// bucket returns the index of the bucket v falls in (binary search over
// the fixed bounds; the final index is the overflow bucket).
func (h *Histogram) bucket(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count is the number of recorded observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum is the total of all recorded values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Unit names what the histogram measures ("ms", "ops", "bytes", ...).
func (h *Histogram) Unit() string {
	if h == nil {
		return ""
	}
	return h.unit
}

// Wall reports whether the histogram records wall-clock time (and is
// therefore excluded from the stable export).
func (h *Histogram) Wall() bool { return h != nil && h.wall }

// Quantile returns the q-quantile as the upper bound of the bucket the
// q-th observation falls in — a deterministic function of the bucket
// counts, which is what makes exported p50/p90/p99 golden-testable. An
// empty histogram returns 0; a quantile landing in the overflow bucket
// returns -1 ("above the largest bound").
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	// Nearest-rank: the smallest rank r with r/total >= q.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == len(h.bounds) {
				return -1
			}
			return h.bounds[i]
		}
	}
	return -1
}

// snapshotCounts reads the bucket counts once, in order.
func (h *Histogram) snapshotCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// appendJSON writes the histogram's stable one-line JSON encoding: fixed
// field order, integers only, so the bytes are diffable and goldenable.
// The wall field appears only on wall-time histograms — the "clearly
// separated in export" half of the determinism contract.
func (h *Histogram) appendJSON(buf *bytes.Buffer) {
	counts := h.snapshotCounts()
	buf.WriteString(`{"unit":`)
	unit, _ := json.Marshal(h.unit)
	buf.Write(unit)
	if h.wall {
		buf.WriteString(`,"wall":true`)
	}
	fmt.Fprintf(buf, `,"count":%d,"sum":%d`, h.n.Load(), h.sum.Load())
	fmt.Fprintf(buf, `,"p50":%d,"p90":%d,"p99":%d`, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	buf.WriteString(`,"bounds":[`)
	for i, b := range h.bounds {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, "%d", b)
	}
	buf.WriteString(`],"counts":[`)
	for i, c := range counts {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, "%d", c)
	}
	buf.WriteString(`]}`)
}

// ExpBuckets builds n log-spaced bucket bounds starting at first and
// growing by factor each step (each bound advances by at least 1, so
// small-integer prefixes stay distinct even under modest factors). The
// canonical bounds for latency, size and count histograms:
//
//	ExpBuckets(1, 2, 16)    → 1, 2, 4, ... 32768      (ms or ops)
//	ExpBuckets(64, 4, 10)   → 64, 256, 1024, ...      (bytes)
func ExpBuckets(first int64, factor float64, n int) []int64 {
	if first < 1 {
		first = 1
	}
	if factor < 1 {
		factor = 2
	}
	if n < 1 {
		n = 1
	}
	out := make([]int64, 0, n)
	b := first
	for i := 0; i < n; i++ {
		out = append(out, b)
		next := int64(float64(b) * factor)
		if next <= b {
			next = b + 1
		}
		b = next
	}
	return out
}

// LinearBuckets builds n evenly spaced bounds first, first+step, ... —
// for small bounded quantities like attempt counts and queue depths.
func LinearBuckets(first, step int64, n int) []int64 {
	if step < 1 {
		step = 1
	}
	if n < 1 {
		n = 1
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, first+int64(i)*step)
	}
	return out
}
