package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"time"
)

// StartLive serves an expvar-style live progress endpoint on addr
// (":0" picks a free port). Two routes:
//
//	/progress — the snap callback's current values (the CLIs feed it
//	            from pool.Counters: done/total/in-flight/rate)
//	/metrics  — the registry's current snapshot (may be nil)
//
// Both respond with sorted-key JSON. Returns the bound URL and a stop
// function. Live output is for watching a long sweep, not a determinism
// surface — timestamps and rates are wall-clock.
func StartLive(addr string, snap func() map[string]any, m *Metrics) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		var v map[string]any
		if snap != nil {
			v = snap()
		}
		writeSortedJSON(w, v)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snapM := m.Snapshot()
		v := make(map[string]any, len(snapM))
		for k, n := range snapM {
			v[k] = n
		}
		writeSortedJSON(w, v)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// writeSortedJSON emits a flat object in sorted key order (values are
// marshaled with encoding/json).
func writeSortedJSON(w http.ResponseWriter, v map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	out := []byte{'{'}
	for i, name := range names {
		if i > 0 {
			out = append(out, ',')
		}
		key, _ := json.Marshal(name)
		val, err := json.Marshal(v[name])
		if err != nil {
			val = []byte(`"unencodable"`)
		}
		out = append(out, key...)
		out = append(out, ':')
		out = append(out, val...)
	}
	out = append(out, '}', '\n')
	_, _ = w.Write(out)
}
