package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"time"
)

// ProgressHandler serves the snap callback's current values as sorted-key
// JSON — the /progress route of both the -live CLI endpoint and webracerd.
// The CLIs feed snap from pool.Counters (done/total/in-flight/rate); the
// service adds queue depth. A nil snap serves an empty object. Live output
// is for watching a long sweep, not a determinism surface — timestamps and
// rates are wall-clock.
func ProgressHandler(snap func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var v map[string]any
		if snap != nil {
			v = snap()
		}
		writeSortedJSON(w, v)
	})
}

// MetricsHandler serves the registry's current snapshot as sorted-key JSON
// — the /metrics route of both the -live CLI endpoint and webracerd.
// Histograms (wall-clock ones included — /metrics is the operator view,
// not a determinism surface) render inline alongside the counters. A nil
// registry serves an empty object.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := m.marshal(true)
		out = append(out, '\n')
		_, _ = w.Write(out)
	})
}

// StartLive serves an expvar-style live progress endpoint on addr
// (":0" picks a free port). Two routes:
//
//	/progress — ProgressHandler(snap)
//	/metrics  — MetricsHandler(m)
//
// Both respond with sorted-key JSON. Returns the bound URL and a stop
// function. Long-lived services mount the two handlers on their own mux
// instead (see internal/serve); StartLive is the fire-and-forget form the
// one-shot CLIs use.
func StartLive(addr string, snap func() map[string]any, m *Metrics) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/progress", ProgressHandler(snap))
	mux.Handle("/metrics", MetricsHandler(m))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// writeSortedJSON emits a flat object in sorted key order (values are
// marshaled with encoding/json).
func writeSortedJSON(w http.ResponseWriter, v map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	out := []byte{'{'}
	for i, name := range names {
		if i > 0 {
			out = append(out, ',')
		}
		key, _ := json.Marshal(name)
		val, err := json.Marshal(v[name])
		if err != nil {
			val = []byte(`"unencodable"`)
		}
		out = append(out, key...)
		out = append(out, ':')
		out = append(out, val...)
	}
	out = append(out, '}', '\n')
	_, _ = w.Write(out)
}
