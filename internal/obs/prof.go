package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to <prefix>.cpu.pprof and
// returns the function that stops it and closes the file. The CLIs call
// this around whole runs; `go tool pprof` reads the output.
func StartCPUProfile(prefix string) (stop func() error, err error) {
	path := prefix + ".cpu.pprof"
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to <prefix>.heap.pprof after a
// GC, so the snapshot reflects live memory rather than garbage.
func WriteHeapProfile(prefix string) error {
	path := prefix + ".heap.pprof"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return nil
}

// Profile wraps both: it starts a CPU profile immediately and returns a
// finish function that stops it and adds the heap snapshot. Either error
// is returned from finish; a failed start returns a no-op finish and the
// error. With an empty prefix both calls are no-ops.
func Profile(prefix string) (finish func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	stop, err := StartCPUProfile(prefix)
	if err != nil {
		return func() error { return nil }, err
	}
	return func() error {
		if err := stop(); err != nil {
			return err
		}
		return WriteHeapProfile(prefix)
	}, nil
}
