// Package obs is the deterministic telemetry layer of the reproduction:
// typed counter/gauge metrics, Chrome trace_event export over virtual
// time, and profiling helpers for the CLIs.
//
// Everything in the package observes a *seeded deterministic* execution,
// so — unlike wall-clock telemetry — a run's metrics snapshot and trace
// are byte-stable artifacts: the same (site, seed, plan) produces the
// same JSON on any machine, at any worker count, which makes both
// golden-testable (testdata/golden/metrics-*.json) and diffable across
// versions (scripts/metricsdiff.sh).
//
// The layer is zero-cost when disabled: every handle type (*Metrics,
// *Counter, *Gauge, *TraceLog) accepts method calls on its nil value as
// no-ops, so instrumentation sites read
//
//	b.mParseElems.Inc()
//
// with no conditional at the call site and only a nil check inside.
// Hot paths that the benchmarks guard (the detector's OnAccess, the
// interpreter's step loop) carry no obs calls at all — their counts are
// folded from already-maintained stats at end of run.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter discards
// all updates, which is what a disabled registry hands out.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any sign; Counter does not police monotonicity,
// it only names intent).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric. The nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Metrics is a registry of named counters and gauges. A nil *Metrics is
// the disabled registry: it hands out nil handles and marshals as {}.
// Handles are stable — look one up once, update it forever — and all
// methods are safe for concurrent use (per-run registries are normally
// single-goroutine, but sweeps may fold into a shared one).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an enabled, empty registry.
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero. Nil registry →
// nil handle (a no-op sink).
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero. Nil registry → nil
// handle.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named step-unit histogram, creating it over
// bounds on first use (later calls return the existing histogram and
// ignore bounds — handles are stable, like Counter's). Step-unit
// histograms record deterministic quantities (ops, bytes, depths,
// attempts) and are part of the stable export. Nil registry → nil
// handle.
func (m *Metrics) Histogram(name, unit string, bounds []int64) *Histogram {
	return m.histogram(name, unit, false, bounds)
}

// WallHistogram returns the named wall-clock histogram, creating it over
// bounds on first use. Wall histograms record real durations — useful on
// /metrics, poison in goldens — so the stable export (WriteStableJSON)
// skips them and their JSON carries "wall":true. Nil registry → nil
// handle.
func (m *Metrics) WallHistogram(name, unit string, bounds []int64) *Histogram {
	return m.histogram(name, unit, true, bounds)
}

// histogram is the shared lookup-or-create path.
func (m *Metrics) histogram(name, unit string, wall bool, bounds []int64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = newHistogram(unit, wall, bounds)
		m.hists[name] = h
	}
	return h
}

// Add is shorthand for Counter(name).Add(n).
func (m *Metrics) Add(name string, n int64) { m.Counter(name).Add(n) }

// Set is shorthand for Gauge(name).Set(n).
func (m *Metrics) Set(name string, n int64) { m.Gauge(name).Set(n) }

// Snapshot returns every metric as a flat name → value map (counters and
// gauges share the namespace; registering the same name as both is a
// programming error that Snapshot surfaces by keeping the gauge).
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters)+len(m.gauges))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	return out
}

// histSnapshot returns the registered histograms by name, optionally
// excluding the wall-clock ones.
func (m *Metrics) histSnapshot(includeWall bool) map[string]*Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*Histogram, len(m.hists))
	for name, h := range m.hists {
		if h.wall && !includeWall {
			continue
		}
		out[name] = h
	}
	return out
}

// MarshalJSON emits the snapshot as a flat JSON object in sorted key
// order — the report.Counts pattern: a fixed, diff-friendly encoding so
// snapshots can be golden-tested byte for byte. Counters and gauges
// marshal as bare integers; histograms as one-line objects (unit, count,
// sum, p50/p90/p99, bounds, counts) in the same sorted key space. A
// registry without histograms marshals exactly as it did before they
// existed.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return m.marshal(true), nil
}

// marshal renders the compact encoding, including wall histograms only
// when asked.
func (m *Metrics) marshal(includeWall bool) []byte {
	snap := m.Snapshot()
	hists := m.histSnapshot(includeWall)
	names := make([]string, 0, len(snap)+len(hists))
	for name := range snap {
		names = append(names, name)
	}
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, _ := json.Marshal(name)
		buf.Write(key)
		buf.WriteByte(':')
		if h, ok := hists[name]; ok {
			h.appendJSON(&buf)
		} else {
			fmt.Fprintf(&buf, "%d", snap[name])
		}
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// WriteJSON writes the snapshot as indented JSON (one metric per line,
// sorted), trailing newline included — the on-disk snapshot format.
// Histograms (wall-clock ones included) render as one-line objects on
// their metric's line.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return m.writeIndented(w, true)
}

// WriteStableJSON is WriteJSON minus the wall-clock histograms: every
// value it emits is a deterministic function of the observed work, so
// the output is golden-testable byte for byte across runs, machines and
// worker counts. The metricsdiff gate pins service snapshots through
// this export; /metrics keeps serving the full picture.
func (m *Metrics) WriteStableJSON(w io.Writer) error {
	return m.writeIndented(w, false)
}

// writeIndented renders the one-metric-per-line form shared by the two
// Write variants.
func (m *Metrics) writeIndented(w io.Writer, includeWall bool) error {
	snap := m.Snapshot()
	hists := m.histSnapshot(includeWall)
	names := make([]string, 0, len(snap)+len(hists))
	for name := range snap {
		names = append(names, name)
	}
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, name := range names {
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&buf, "  %s: ", key)
		if h, ok := hists[name]; ok {
			h.appendJSON(&buf)
		} else {
			fmt.Fprintf(&buf, "%d", snap[name])
		}
		if i < len(names)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
