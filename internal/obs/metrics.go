// Package obs is the deterministic telemetry layer of the reproduction:
// typed counter/gauge metrics, Chrome trace_event export over virtual
// time, and profiling helpers for the CLIs.
//
// Everything in the package observes a *seeded deterministic* execution,
// so — unlike wall-clock telemetry — a run's metrics snapshot and trace
// are byte-stable artifacts: the same (site, seed, plan) produces the
// same JSON on any machine, at any worker count, which makes both
// golden-testable (testdata/golden/metrics-*.json) and diffable across
// versions (scripts/metricsdiff.sh).
//
// The layer is zero-cost when disabled: every handle type (*Metrics,
// *Counter, *Gauge, *TraceLog) accepts method calls on its nil value as
// no-ops, so instrumentation sites read
//
//	b.mParseElems.Inc()
//
// with no conditional at the call site and only a nil check inside.
// Hot paths that the benchmarks guard (the detector's OnAccess, the
// interpreter's step loop) carry no obs calls at all — their counts are
// folded from already-maintained stats at end of run.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter discards
// all updates, which is what a disabled registry hands out.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any sign; Counter does not police monotonicity,
// it only names intent).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric. The nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Metrics is a registry of named counters and gauges. A nil *Metrics is
// the disabled registry: it hands out nil handles and marshals as {}.
// Handles are stable — look one up once, update it forever — and all
// methods are safe for concurrent use (per-run registries are normally
// single-goroutine, but sweeps may fold into a shared one).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// New returns an enabled, empty registry.
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
	}
}

// Counter returns the named counter, creating it at zero. Nil registry →
// nil handle (a no-op sink).
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero. Nil registry → nil
// handle.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Add is shorthand for Counter(name).Add(n).
func (m *Metrics) Add(name string, n int64) { m.Counter(name).Add(n) }

// Set is shorthand for Gauge(name).Set(n).
func (m *Metrics) Set(name string, n int64) { m.Gauge(name).Set(n) }

// Snapshot returns every metric as a flat name → value map (counters and
// gauges share the namespace; registering the same name as both is a
// programming error that Snapshot surfaces by keeping the gauge).
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters)+len(m.gauges))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	return out
}

// MarshalJSON emits the snapshot as a flat JSON object in sorted key
// order — the report.Counts pattern: a fixed, diff-friendly encoding so
// snapshots can be golden-tested byte for byte.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		fmt.Fprintf(&buf, ":%d", snap[name])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// WriteJSON writes the snapshot as indented JSON (one metric per line,
// sorted), trailing newline included — the on-disk snapshot format.
func (m *Metrics) WriteJSON(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, name := range names {
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&buf, "  %s: %d", key, snap[name])
		if i < len(names)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
