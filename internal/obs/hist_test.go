package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	m := New()
	h := m.Histogram("lat", "ms", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 8, 9, 100} {
		h.Record(v)
	}
	if got := h.Count(); got != 9 {
		t.Fatalf("Count = %d, want 9", got)
	}
	if got := h.Sum(); got != 129 {
		t.Fatalf("Sum = %d, want 129", got)
	}
	// counts: le1=3 (0,1,1), le2=1 (2), le4=1 (3), le8=2 (5,8), overflow=2
	want := []int64{3, 1, 1, 2, 2}
	if got := h.snapshotCounts(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	// 9 observations, nearest-rank: p50 → rank 5 → value 3 → bucket le4.
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4", got)
	}
	// p99 → rank 9 → value 100 → overflow → -1.
	if got := h.Quantile(0.99); got != -1 {
		t.Fatalf("p99 = %d, want -1 (overflow)", got)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Record(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Unit() != "" || h.Wall() {
		t.Fatal("nil histogram must read as zero")
	}
	var m *Metrics
	if m.Histogram("x", "ms", []int64{1}) != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	h2 := New().Histogram("x", "ms", []int64{1, 2})
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
}

func TestHistogramHandleStable(t *testing.T) {
	m := New()
	a := m.Histogram("h", "ops", []int64{1, 2})
	b := m.Histogram("h", "ops", []int64{10, 20, 30}) // bounds ignored on re-lookup
	if a != b {
		t.Fatal("same name must return the same handle")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 6)
	want := []int64{1, 2, 4, 8, 16, 32}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	// A sub-unity factor still advances by at least 1 per step.
	for i, b := range ExpBuckets(1, 1.01, 10) {
		if int64(i+1) != b {
			t.Fatalf("degenerate factor must advance by 1: got %v", ExpBuckets(1, 1.01, 10))
		}
	}
	if got := LinearBuckets(1, 1, 4); fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("LinearBuckets = %v", got)
	}
}

func TestHistogramJSONStableAndSeparated(t *testing.T) {
	m := New()
	m.Counter("a.count").Add(3)
	step := m.Histogram("a.ops", "ops", []int64{1, 2, 4})
	wall := m.WallHistogram("a.wall_ms", "ms", []int64{1, 10})
	for _, v := range []int64{1, 2, 3, 9} {
		step.Record(v)
		wall.Record(v)
	}

	var full, again, stable bytes.Buffer
	if err := m.WriteJSON(&full); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), again.Bytes()) {
		t.Fatalf("WriteJSON not stable:\n%s\n%s", full.Bytes(), again.Bytes())
	}
	if err := m.WriteStableJSON(&stable); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), `"a.wall_ms"`) || !strings.Contains(full.String(), `"wall":true`) {
		t.Fatalf("full export must include the marked wall histogram:\n%s", full.String())
	}
	if strings.Contains(stable.String(), "a.wall_ms") {
		t.Fatalf("stable export must exclude wall histograms:\n%s", stable.String())
	}
	if !strings.Contains(stable.String(), `"a.ops": {"unit":"ops","count":4,"sum":15,"p50":2,"p90":-1,"p99":-1,"bounds":[1,2,4],"counts":[1,1,1,1]}`) {
		t.Fatalf("step histogram encoding drifted:\n%s", stable.String())
	}
}

// TestHistogramScalarOnlyExportUnchanged pins the pre-histogram export
// byte-for-byte: a registry with no histograms must marshal exactly as it
// did before histograms existed, or every pinned metrics golden would
// churn.
func TestHistogramScalarOnlyExportUnchanged(t *testing.T) {
	m := New()
	m.Counter("b").Add(2)
	m.Gauge("a").Set(1)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"a\": 1,\n  \"b\": 2\n}\n"
	if buf.String() != want {
		t.Fatalf("scalar-only WriteJSON drifted:\ngot:  %q\nwant: %q", buf.String(), want)
	}
	blob, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"a":1,"b":2}` {
		t.Fatalf("scalar-only MarshalJSON drifted: %s", blob)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	m := New()
	h := m.WallHistogram("c", "ms", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(g*i) % 600)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}
