package obs

import (
	"encoding/json"
	"io"
	"math"
)

// TraceLog accumulates a Chrome trace_event stream over *virtual* time:
// the browser's simulated clock, not the wall clock. The export loads
// directly in chrome://tracing and Perfetto (JSON object format with a
// "traceEvents" array), and because every timestamp derives from the
// seeded simulation, the same run always produces the same bytes — a
// trace is a replayable artifact, not a measurement.
//
// Track layout: every main-thread operation (parse, script, handler, …)
// is a complete ("X") event on tid 1, nested by the browser's operation
// stack; concurrent activities with real virtual duration — network
// fetches, armed timers, in-flight XHRs — are async ("b"/"e") pairs
// keyed by id, which the viewers lay out on per-category async tracks;
// injected network faults appear as instant ("i") events.
//
// Virtual milliseconds map to trace microseconds (ts = ms × 1000). The
// main-thread cursor additionally enforces strict monotonicity: events
// that share a virtual instant (a task runs, the clock does not advance)
// are spread one microsecond apart so spans nest with nonzero width and
// never overlap illegally. Async events use the raw virtual time of
// their endpoints.
//
// A nil *TraceLog discards everything — the disabled path.
type TraceLog struct {
	events []TraceEvent
	last   int64 // main-thread monotonic cursor (µs)
	stack  []int // indices of open main-thread spans in events
}

// TraceEvent is one trace_event record. Field names and order follow the
// Chrome trace format; fixed struct order keeps the export byte-stable.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	tracePID  = 1
	traceMain = 1
)

// NewTrace returns an enabled, empty trace with the process/thread
// naming metadata pre-emitted.
func NewTrace() *TraceLog {
	t := &TraceLog{}
	t.events = append(t.events,
		TraceEvent{Name: "process_name", Ph: "M", PID: tracePID, TID: traceMain,
			Args: map[string]any{"name": "webracer (virtual time)"}},
		TraceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceMain,
			Args: map[string]any{"name": "event loop"}},
	)
	return t
}

// us converts virtual milliseconds to trace microseconds.
func us(ms float64) int64 { return int64(math.Round(ms * 1000)) }

// tick returns the next main-thread timestamp: the virtual clock, pushed
// forward to stay strictly after the previous main-thread timestamp.
func (t *TraceLog) tick(clockMS float64) int64 {
	ts := us(clockMS)
	if ts <= t.last {
		ts = t.last + 1
	}
	t.last = ts
	return ts
}

// BeginSpan opens a main-thread span at the current virtual time. Spans
// nest like a call stack; close each with EndSpan.
func (t *TraceLog) BeginSpan(cat, name string, clockMS float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", TS: t.tick(clockMS), PID: tracePID, TID: traceMain,
	})
	t.stack = append(t.stack, len(t.events)-1)
}

// EndSpan closes the innermost open span, attaching args (the browser
// puts the operation id and its happens-before predecessors here). An
// EndSpan with no open span is a no-op.
func (t *TraceLog) EndSpan(clockMS float64, args map[string]any) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	i := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	end := t.tick(clockMS)
	t.events[i].Dur = end - t.events[i].TS
	t.events[i].Args = args
}

// Async records a concurrent activity with both endpoints known up
// front — a network fetch whose latency the simulation has already
// decided. The "b"/"e" pair shares (cat, id).
func (t *TraceLog) Async(cat, name, id string, startMS, endMS float64, args map[string]any) {
	t.AsyncBegin(cat, name, id, startMS, args)
	t.AsyncEnd(cat, name, id, endMS, nil)
}

// AsyncBegin opens an async activity (a timer armed, an XHR sent).
func (t *TraceLog) AsyncBegin(cat, name, id string, ms float64, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "b", TS: us(ms), PID: tracePID, TID: traceMain, ID: id, Args: args,
	})
}

// AsyncEnd closes an async activity. Unmatched ends are tolerated by the
// viewers (and by our tests, which only require begins to be closed or
// explicitly cancelled).
func (t *TraceLog) AsyncEnd(cat, name, id string, ms float64, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "e", TS: us(ms), PID: tracePID, TID: traceMain, ID: id, Args: args,
	})
}

// Instant records a point event (a fault injection) at virtual time ms.
func (t *TraceLog) Instant(cat, name string, ms float64, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i", TS: us(ms), PID: tracePID, TID: traceMain, S: "p", Args: args,
	})
}

// Events returns the accumulated events (nil for a nil log). Tests use
// it; WriteJSON is the export path.
func (t *TraceLog) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// traceFile is the Chrome trace JSON object format.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the trace in the Chrome trace_event JSON object
// format, indented, trailing newline included. The encoding is
// deterministic: struct fields are in fixed order and args maps are
// string-keyed (encoding/json sorts those).
func (t *TraceLog) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	data, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
