package pool

import (
	"sync"
	"testing"
)

// TestCountersBalancedAfterPanics is the regression test for in-flight
// accounting on the panic-recovery path: a recovered PanicError must
// decrement inFlight and count the item as done exactly like a normal
// completion, at every worker count and through both Map and Each.
func TestCountersBalancedAfterPanics(t *testing.T) {
	const n = 10
	work := func(i int) int {
		if i%3 == 0 {
			panic("boom")
		}
		return i * i
	}
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"map", "each"} {
			var c Counters
			opts := Options{Workers: workers, Counters: &c}
			var err error
			if mode == "map" {
				_, err = Map(opts, n, work)
			} else {
				err = Each(opts, n, work, func(int, int) error { return nil })
			}
			if got := len(Panics(err)); got != 4 {
				t.Fatalf("%s workers=%d: got %d panics, want 4 (err: %v)", mode, workers, got, err)
			}
			s := c.Snapshot()
			if s.InFlight != 0 {
				t.Errorf("%s workers=%d: InFlight = %d after sweep, want 0 (leaked slot)", mode, workers, s.InFlight)
			}
			if s.Done != n {
				t.Errorf("%s workers=%d: Done = %d, want %d (panicked items must count)", mode, workers, s.Done, n)
			}
			sum := 0
			for _, pw := range s.PerWorker {
				sum += pw
			}
			if sum != n {
				t.Errorf("%s workers=%d: PerWorker sums to %d, want %d", mode, workers, sum, n)
			}
		}
	}
}

// TestTrackPairsUnderConcurrentPanics hammers the defer-paired accounting
// directly: many goroutines each track an item whose body panics, and the
// recovery path must leave the counters balanced.
func TestTrackPairsUnderConcurrentPanics(t *testing.T) {
	var c Counters
	const n = 64
	c.Begin(n, 4)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, pe := runItem(&c, i%4, i, func(int) int { panic("always") })
			if pe == nil {
				t.Error("expected a PanicError")
			}
		}(i)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.InFlight != 0 || s.Done != n {
		t.Fatalf("InFlight=%d Done=%d after %d panicking items, want 0 and %d", s.InFlight, s.Done, n, n)
	}
}

// TestTrackNilCounters confirms the nil-receiver path is a no-op (sweeps
// without progress reporting pay nothing).
func TestTrackNilCounters(t *testing.T) {
	v, pe := runItem[int](nil, 0, 7, func(i int) int { return i + 1 })
	if pe != nil || v != 8 {
		t.Fatalf("runItem(nil counters) = %d, %v; want 8, nil", v, pe)
	}
}
