// Package pool is the parallel sweep engine behind the corpus, seed,
// schedule and harm sweeps: it shards n independent work items over a
// fixed set of workers while keeping the output exactly what the serial
// loop would have produced.
//
// Every unit of webracer work — one (site, seed) simulation — is a
// self-contained deterministic computation, so fan-out is embarrassingly
// parallel. The engine's job is to preserve that determinism at the
// edges:
//
//   - results land at their input index regardless of completion order
//     (Map), or are delivered to the caller strictly in input order
//     (Each), so aggregation code behaves identically at any worker
//     count;
//   - Each bounds in-flight memory with a sliding window: workers may run
//     at most `window` items ahead of the slowest undelivered item, so a
//     sweep over thousands of traces never holds more than O(window)
//     results at once;
//   - cancellation via context stops dispatching promptly;
//   - per-worker counters expose progress and throughput for the CLIs.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError reports a panic recovered from one work item. The sweep is
// not torn down: the remaining items still run, the panicked item's slot
// holds the zero value (Map) or is skipped (Each), and the panic surfaces
// in the returned error so callers can report the run as degraded instead
// of crashing the whole sweep with it.
type PanicError struct {
	// Index is the input index of the item whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: item %d panicked: %v", e.Index, e.Value)
}

// Panics extracts every PanicError from an error returned by Map or Each
// (walking joined and wrapped errors).
func Panics(err error) []*PanicError {
	var out []*PanicError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		if pe, ok := err.(*PanicError); ok {
			out = append(out, pe)
			return
		}
		switch u := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// guard runs fn(i), converting a panic into a PanicError (and a zero T).
func guard[T any](i int, fn func(i int) T) (v T, pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(i), nil
}

// runItem is the one place an item executes: counter accounting is
// defer-paired around the guarded call, so a panicking fn (recovered by
// guard) still decrements inFlight and counts as done.
func runItem[T any](c *Counters, worker, i int, fn func(i int) T) (T, *PanicError) {
	defer c.track(worker)()
	return guard(i, fn)
}

// Options configures one sweep.
type Options struct {
	// Workers is the number of concurrent workers; values < 1 mean
	// runtime.NumCPU(). Workers == 1 runs inline on the calling
	// goroutine (no goroutines spawned), which is the serial path.
	Workers int
	// Window bounds, for Each, how far workers may run ahead of the
	// in-order delivery point (and therefore how many undelivered
	// results are buffered). Values < 1 mean 4 × workers.
	Window int
	// Ctx cancels the sweep; nil means context.Background(). Items
	// already dispatched finish; no further items start.
	Ctx context.Context
	// Counters, when non-nil, is updated as items complete.
	Counters *Counters
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return runtime.NumCPU()
	}
	return o.Workers
}

func (o Options) window() int {
	if o.Window < 1 {
		return 4 * o.workers()
	}
	return o.Window
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Counters tracks sweep progress. All methods are safe for concurrent
// use; a zero Counters is ready (Begin is called by the pool).
type Counters struct {
	total     atomic.Int64
	done      atomic.Int64
	inFlight  atomic.Int64
	start     atomic.Int64 // unix nanos
	perWorker []atomic.Int64
	mu        sync.Mutex
}

// Begin (re)arms the counters for a sweep of n items over w workers.
func (c *Counters) Begin(n, w int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total.Store(int64(n))
	c.done.Store(0)
	c.inFlight.Store(0)
	c.start.Store(time.Now().UnixNano())
	c.perWorker = make([]atomic.Int64, w)
}

// AddTotal grows the total by n. Sweeps size their total once via Begin;
// a long-lived Runner's work arrives over time, one admission at a time,
// so its accounting grows the total as tasks are accepted.
func (c *Counters) AddTotal(n int) {
	c.total.Add(int64(n))
}

// track registers an item as in-flight and returns the matching
// completion func. Call it as `defer c.track(worker)()` so the decrement
// is bound to the increment by defer: every exit path — including the
// panic-recovery path in guard — balances the accounting, and inFlight
// can never leak a slot. A nil receiver returns a no-op.
func (c *Counters) track(worker int) func() {
	if c == nil {
		return func() {}
	}
	c.inFlight.Add(1)
	return func() { c.item(worker, 1) }
}

func (c *Counters) item(worker int, delta int64) {
	c.inFlight.Add(-delta)
	c.done.Add(delta)
	c.mu.Lock()
	if worker < len(c.perWorker) {
		c.perWorker[worker].Add(delta)
	}
	c.mu.Unlock()
}

// Snapshot is a point-in-time view of a sweep's progress.
type Snapshot struct {
	Total    int
	Done     int
	InFlight int
	// PerWorker[i] is the number of items worker i has completed.
	PerWorker []int
	Elapsed   time.Duration
	// PerSecond is the completion throughput so far.
	PerSecond float64
}

// Snapshot reads the current progress.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Total:    int(c.total.Load()),
		Done:     int(c.done.Load()),
		InFlight: int(c.inFlight.Load()),
	}
	if t0 := c.start.Load(); t0 != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - t0)
	}
	c.mu.Lock()
	s.PerWorker = make([]int, len(c.perWorker))
	for i := range c.perWorker {
		s.PerWorker[i] = int(c.perWorker[i].Load())
	}
	c.mu.Unlock()
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.PerSecond = float64(s.Done) / secs
	}
	return s
}

// Map computes fn(0..n-1) over the configured workers and returns the
// results indexed by input position: out[i] == fn(i) no matter which
// worker ran it or when it finished. fn must be safe for concurrent
// invocation when Workers > 1 (webracer runs are: each builds its own
// browser, loader and RNG).
//
// On cancellation Map returns the context error; out is still n long and
// holds the results of the items that completed (zero values elsewhere).
//
// A panic in fn does not crash the sweep: the item's slot keeps its zero
// value, every other item still runs, and the panics are returned joined
// into the error (extract them with Panics).
func Map[T any](opts Options, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	w := opts.workers()
	ctx := opts.ctx()
	if opts.Counters != nil {
		opts.Counters.Begin(n, w)
	}
	var mu sync.Mutex
	var panics []error
	run := func(worker, i int) {
		v, pe := runItem(opts.Counters, worker, i, fn)
		out[i] = v
		if pe != nil {
			mu.Lock()
			panics = append(panics, pe)
			mu.Unlock()
		}
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, errors.Join(append(panics, err)...)
			}
			run(0, i)
		}
		return out, errors.Join(panics...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				run(worker, i)
			}
		}(wi)
	}
	wg.Wait()
	return out, errors.Join(append(panics, ctx.Err())...)
}

// Each computes fn(0..n-1) over the configured workers and delivers each
// result to sink strictly in input order, buffering at most Window
// undelivered results: workers stall rather than run more than Window
// items ahead of the delivery point, bounding memory for sweeps whose
// results are large (recorded traces, full sessions) or whose n is
// unbounded. A non-nil error from sink stops the sweep and is returned.
//
// A panic in fn does not crash the sweep: the panicked item is skipped —
// sink never sees it — the remaining items still run and are delivered in
// order, and the panics are joined into the returned error (extract them
// with Panics).
func Each[T any](opts Options, n int, fn func(i int) T, sink func(i int, v T) error) error {
	w := opts.workers()
	ctx := opts.ctx()
	if opts.Counters != nil {
		opts.Counters.Begin(n, w)
	}
	var panicsMu sync.Mutex
	var panics []error
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return errors.Join(append(panics, err)...)
			}
			v, pe := runItem(opts.Counters, 0, i, fn)
			if pe != nil {
				panics = append(panics, pe)
				continue
			}
			if err := sink(i, v); err != nil {
				return errors.Join(append(panics, err)...)
			}
		}
		return errors.Join(panics...)
	}

	window := opts.window()
	type slot struct {
		i  int
		v  T
		pe *PanicError
	}
	// tickets admits an item only once the delivery point is within
	// `window` of it; results carries finished items to the collector.
	tickets := make(chan int)
	results := make(chan slot, window)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range tickets {
				if cctx.Err() != nil {
					return
				}
				v, pe := runItem(opts.Counters, worker, i, fn)
				if pe != nil {
					panicsMu.Lock()
					panics = append(panics, pe)
					panicsMu.Unlock()
				}
				select {
				case results <- slot{i, v, pe}:
				case <-cctx.Done():
					return
				}
			}
		}(wi)
	}

	// Dispatcher: issues index i only after index i-window was delivered.
	delivered := make(chan struct{}, window)
	go func() {
		defer close(tickets)
		for i := 0; i < n; i++ {
			if i >= window {
				select {
				case <-delivered:
				case <-cctx.Done():
					return
				}
			}
			select {
			case tickets <- i:
			case <-cctx.Done():
				return
			}
		}
	}()

	// Collector: reorders into input order and feeds sink. The token
	// accounting never blocks: undelivered issued items ≤ window, so
	// `results` holds ≤ window slots and `delivered` ≤ window tokens.
	// Panicked slots still occupy their position — they advance the
	// delivery point like any result — but are never handed to sink.
	buf := make(map[int]slot, window)
	next := 0
	var sinkErr error
	for next < n && sinkErr == nil && cctx.Err() == nil {
		if s, ok := buf[next]; ok {
			delete(buf, next)
			if s.pe == nil {
				if err := sink(next, s.v); err != nil {
					sinkErr = err
					break
				}
			}
			next++
			select {
			case delivered <- struct{}{}:
			case <-cctx.Done():
			}
			continue
		}
		select {
		case s := <-results:
			buf[s.i] = s
		case <-cctx.Done():
		}
	}
	cancel()
	wg.Wait()
	panicsMu.Lock()
	defer panicsMu.Unlock()
	if sinkErr != nil {
		return errors.Join(append(panics, sinkErr)...)
	}
	return errors.Join(append(panics, ctx.Err())...)
}
