package pool

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunnerRunsSubmittedTasks(t *testing.T) {
	r := NewRunner(3, 32)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		if !r.TrySubmit(func() { n.Add(1) }) {
			t.Fatalf("TrySubmit refused with space available")
		}
	}
	r.Close()
	if got := n.Load(); got != 20 {
		t.Fatalf("ran %d tasks, want 20", got)
	}
	s := r.Snapshot()
	if s.Total != 20 || s.Done != 20 || s.InFlight != 0 {
		t.Fatalf("snapshot = %+v, want total=done=20 inflight=0", s)
	}
}

func TestRunnerBackpressure(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunner(1, 1)
	// Occupy the single worker, then fill the single queue slot.
	if !r.TrySubmit(func() { <-gate }) {
		t.Fatal("first submit refused")
	}
	// The worker may not have picked up the first task yet; wait until it
	// has so the queue slot is genuinely free.
	waitFor(t, func() bool { return r.Snapshot().InFlight == 1 })
	if !r.TrySubmit(func() {}) {
		t.Fatal("queue-slot submit refused")
	}
	if r.TrySubmit(func() {}) {
		t.Fatal("submit accepted with worker busy and queue full")
	}
	if d := r.QueueDepth(); d != 1 {
		t.Fatalf("QueueDepth = %d, want 1", d)
	}
	close(gate)
	r.Close()
	if s := r.Snapshot(); s.Done != 2 {
		t.Fatalf("done = %d, want 2", s.Done)
	}
}

func TestRunnerDrainFinishesInFlight(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunner(1, 4)
	var done atomic.Bool
	r.TrySubmit(func() { <-gate; done.Store(true) })
	waitFor(t, func() bool { return r.Snapshot().InFlight == 1 })

	drained := make(chan error, 1)
	go func() { drained <- r.Drain(context.Background()) }()
	// Draining: no new work.
	waitFor(t, func() bool { return !r.TrySubmit(func() {}) })
	select {
	case <-drained:
		t.Fatal("Drain returned with a task still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !done.Load() {
		t.Fatal("in-flight task did not finish before Drain returned")
	}
	// Idempotent.
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestRunnerDrainHonorsContext(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	r := NewRunner(1, 1)
	r.TrySubmit(func() { <-gate })
	waitFor(t, func() bool { return r.Snapshot().InFlight == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a stuck task")
	}
}

func TestRunnerRecoversPanics(t *testing.T) {
	r := NewRunner(1, 4)
	r.TrySubmit(func() { panic("boom") })
	r.TrySubmit(func() {}) // the worker must survive the panic
	r.Close()
	if s := r.Snapshot(); s.Done != 2 {
		t.Fatalf("done = %d, want 2 (worker died on panic?)", s.Done)
	}
	pes := r.Panics()
	if len(pes) != 1 || pes[0].Value != "boom" {
		t.Fatalf("Panics() = %v, want one 'boom'", pes)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
