package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results land at their input index at every worker
// count, including worker counts far above the item count.
func TestMapOrdering(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 32} {
		out, err := Map(Options{Workers: w}, 100, func(i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapEmpty: n == 0 is a no-op at any worker count.
func TestMapEmpty(t *testing.T) {
	out, err := Map(Options{Workers: 4}, 0, func(i int) int { return i })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestEachOrdering: sink sees items strictly in input order.
func TestEachOrdering(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		var got []int
		err := Each(Options{Workers: w, Window: 2},
			50,
			func(i int) int { return i + 1000 },
			func(i, v int) error {
				if v != i+1000 {
					t.Fatalf("workers=%d: sink(%d) got %d", w, i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: delivered %d of 50", w, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: delivery order broken at %d: %v", w, i, v)
			}
		}
	}
}

// TestEachWindowBound: with a window of k, no item may start while the
// delivery point trails it by more than k.
func TestEachWindowBound(t *testing.T) {
	const window = 3
	var delivered atomic.Int64
	err := Each(Options{Workers: 4, Window: window},
		60,
		func(i int) int {
			if d := int(delivered.Load()); i > d+window {
				t.Errorf("item %d started with only %d delivered (window %d)", i, d, window)
			}
			return i
		},
		func(i, v int) error {
			delivered.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEachSinkError: a sink error stops the sweep and is returned.
func TestEachSinkError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Each(Options{Workers: 4}, 1000,
		func(i int) int { return i },
		func(i, v int) error {
			ran++
			if i == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 6 {
		t.Fatalf("sink ran %d times, want 6", ran)
	}
}

// TestMapCancel: cancellation stops dispatch promptly and is reported.
func TestMapCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Map(Options{Workers: 2, Ctx: ctx}, 10_000, func(i int) int {
		if started.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("%d items started after cancel", n)
	}
}

// TestEachCancel: same for the streaming path.
func TestEachCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	err := Each(Options{Workers: 4, Ctx: ctx}, 10_000,
		func(i int) int { time.Sleep(100 * time.Microsecond); return i },
		func(i, v int) error {
			if seen.Add(1) == 5 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestCounters: totals add up and throughput is populated.
func TestCounters(t *testing.T) {
	var c Counters
	_, err := Map(Options{Workers: 4, Counters: &c}, 200, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Done != 200 || s.Total != 200 || s.InFlight != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	sum := 0
	for _, n := range s.PerWorker {
		sum += n
	}
	if sum != 200 {
		t.Fatalf("per-worker sum %d, want 200", sum)
	}
	if s.PerSecond <= 0 {
		t.Fatalf("throughput %v", s.PerSecond)
	}
}

// TestMapPanicRecovered: a panicking item does not take down the sweep —
// every other item completes, the panicked slot holds the zero value, and
// the panic surfaces as a PanicError carrying the failing index.
func TestMapPanicRecovered(t *testing.T) {
	for _, w := range []int{1, 4} {
		out, err := Map(Options{Workers: w}, 20, func(i int) int {
			if i == 7 {
				panic("injected worker crash")
			}
			return i + 1
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not reported", w)
		}
		pes := Panics(err)
		if len(pes) != 1 || pes[0].Index != 7 {
			t.Fatalf("workers=%d: Panics = %+v", w, pes)
		}
		if pes[0].Value != "injected worker crash" || pes[0].Stack == "" {
			t.Fatalf("workers=%d: panic detail %+v", w, pes[0])
		}
		for i, v := range out {
			want := i + 1
			if i == 7 {
				want = 0 // zero value at the panicked slot
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, want)
			}
		}
	}
}

// TestEachPanicSkipsSink: the panicked item is skipped — sink never sees
// it — but in-order delivery of everything else is preserved.
func TestEachPanicSkipsSink(t *testing.T) {
	for _, w := range []int{1, 4} {
		var got []int
		err := Each(Options{Workers: w, Window: 3}, 30,
			func(i int) int {
				if i == 11 {
					panic(i)
				}
				return i
			},
			func(i, v int) error {
				got = append(got, i)
				return nil
			})
		pes := Panics(err)
		if len(pes) != 1 || pes[0].Index != 11 {
			t.Fatalf("workers=%d: Panics = %+v (err %v)", w, pes, err)
		}
		if len(got) != 29 {
			t.Fatalf("workers=%d: delivered %d of 29", w, len(got))
		}
		want := 0
		for _, i := range got {
			if i == 11 {
				t.Fatalf("workers=%d: sink saw the panicked item", w)
			}
			if want == 11 {
				want++
			}
			if i != want {
				t.Fatalf("workers=%d: delivery order broken: %v", w, got)
			}
			want++
		}
	}
}

// TestPanicsNil: no panics, no extraction.
func TestPanicsNil(t *testing.T) {
	if pes := Panics(nil); pes != nil {
		t.Fatalf("Panics(nil) = %v", pes)
	}
	if pes := Panics(errors.New("plain")); len(pes) != 0 {
		t.Fatalf("Panics(plain) = %v", pes)
	}
}

// TestSerialInline: Workers == 1 must run on the calling goroutine so the
// serial entry points keep their exact execution profile.
func TestSerialInline(t *testing.T) {
	var c Counters
	order := []int{}
	_, err := Map(Options{Workers: 1, Counters: &c}, 5, func(i int) int {
		order = append(order, i) // safe: inline, single goroutine
		return i
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order broken: %v", order)
		}
	}
}
