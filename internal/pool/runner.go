package pool

import (
	"context"
	"runtime"
	"sync"
)

// Runner is the long-lived counterpart of Map/Each: a fixed set of worker
// goroutines consuming submitted tasks from a bounded queue. Where the
// sweep entry points build their workers per call, a Runner is constructed
// once — by a service such as webracerd — and reused across every job it
// ever executes, so a detection service pays goroutine construction once
// per process, not once per request.
//
// The queue bound is the backpressure surface: TrySubmit refuses instead
// of blocking when the queue is full, which lets an HTTP front end turn
// refusal into 429 + Retry-After rather than letting requests pile up
// unbounded. Drain provides the graceful-shutdown half: stop admitting,
// finish everything already admitted.
type Runner struct {
	tasks    chan func()
	wg       sync.WaitGroup
	counters Counters

	mu       sync.Mutex
	draining bool
	closed   bool

	panicsMu sync.Mutex
	panics   []*PanicError
	seq      int
}

// NewRunner starts a pool of `workers` goroutines (values < 1 mean
// runtime.NumCPU()) consuming a queue of capacity `queue` (values < 0 mean
// 0: every submission must be picked up immediately or is refused). The
// workers live until Drain or Close.
func NewRunner(workers, queue int) *Runner {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if queue < 0 {
		queue = 0
	}
	r := &Runner{tasks: make(chan func(), queue)}
	r.counters.Begin(0, workers)
	for wi := 0; wi < workers; wi++ {
		r.wg.Add(1)
		go func(worker int) {
			defer r.wg.Done()
			for task := range r.tasks {
				r.run(worker, task)
			}
		}(wi)
	}
	return r
}

// run executes one task with the Map/Each accounting and panic barrier: a
// panicking task is recovered into a PanicError (see Panics) instead of
// killing its worker, and the defer-paired counter update still fires.
func (r *Runner) run(worker int, task func()) {
	r.panicsMu.Lock()
	i := r.seq
	r.seq++
	r.panicsMu.Unlock()
	_, pe := runItem(&r.counters, worker, i, func(int) struct{} {
		task()
		return struct{}{}
	})
	if pe != nil {
		r.panicsMu.Lock()
		r.panics = append(r.panics, pe)
		r.panicsMu.Unlock()
	}
}

// TrySubmit enqueues task for execution, reporting false — without
// blocking — when the queue is full or the runner is draining or closed.
// Submission order is execution order across the queue, though tasks on
// different workers naturally overlap.
func (r *Runner) TrySubmit(task func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining || r.closed {
		return false
	}
	select {
	case r.tasks <- task:
		r.counters.AddTotal(1)
		return true
	default:
		return false
	}
}

// QueueDepth is the number of tasks admitted but not yet picked up by a
// worker.
func (r *Runner) QueueDepth() int { return len(r.tasks) }

// Snapshot reads the runner's lifetime progress: Total counts every
// admitted task, Done the finished ones, InFlight those executing now.
func (r *Runner) Snapshot() Snapshot { return r.counters.Snapshot() }

// Panics returns the panics recovered from tasks so far, in recovery
// order. (Service fronts normally wrap their tasks with their own recover
// and never see these; the runner-level barrier is the backstop that
// keeps a worker alive regardless.)
func (r *Runner) Panics() []*PanicError {
	r.panicsMu.Lock()
	defer r.panicsMu.Unlock()
	out := make([]*PanicError, len(r.panics))
	copy(out, r.panics)
	return out
}

// Drain stops admitting work (TrySubmit returns false from now on) and
// waits until every queued and in-flight task has finished, or ctx is
// done — the SIGTERM path of a service front end. Drain is idempotent;
// concurrent calls all wait for the same completion.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	if !r.closed {
		r.closed = true
		close(r.tasks)
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Drain with no deadline: it returns once every admitted task
// has finished.
func (r *Runner) Close() { _ = r.Drain(context.Background()) }
