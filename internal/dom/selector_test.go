package dom

import "testing"

// buildTestTree makes:
//
//	<div id="nav" class="menu top">
//	  <a class="item">x</a>
//	  <span><a id="deep" class="item active"></a></span>
//	</div>
//	<a class="item"></a>
func buildTestTree() (*Document, *Node, *Node, *Node) {
	d := NewDocument("t", &Serials{})
	nav := d.NewNode("div")
	nav.Attrs["id"] = "nav"
	nav.Attrs["class"] = "menu top"
	a1 := d.NewNode("a")
	a1.Attrs["class"] = "item"
	span := d.NewNode("span")
	deep := d.NewNode("a")
	deep.Attrs["id"] = "deep"
	deep.Attrs["class"] = "item active"
	outside := d.NewNode("a")
	outside.Attrs["class"] = "item"
	d.Root.AppendChild(nav)
	nav.AppendChild(a1)
	nav.AppendChild(span)
	span.AppendChild(deep)
	d.Root.AppendChild(outside)
	return d, nav, deep, outside
}

func selCount(t *testing.T, d *Document, src string) int {
	t.Helper()
	sel, ok := ParseSelector(src)
	if !ok {
		t.Fatalf("ParseSelector(%q) rejected", src)
	}
	return len(sel.Select(d.Root))
}

func TestSelectorByTag(t *testing.T) {
	d, _, _, _ := buildTestTree()
	if got := selCount(t, d, "a"); got != 3 {
		t.Errorf("a → %d, want 3", got)
	}
	if got := selCount(t, d, "div"); got != 1 {
		t.Errorf("div → %d, want 1", got)
	}
}

func TestSelectorByID(t *testing.T) {
	d, nav, _, _ := buildTestTree()
	sel, _ := ParseSelector("#nav")
	got := sel.Select(d.Root)
	if len(got) != 1 || got[0] != nav {
		t.Errorf("#nav → %v", got)
	}
}

func TestSelectorByClass(t *testing.T) {
	d, _, _, _ := buildTestTree()
	if got := selCount(t, d, ".item"); got != 3 {
		t.Errorf(".item → %d, want 3", got)
	}
	if got := selCount(t, d, ".active"); got != 1 {
		t.Errorf(".active → %d, want 1", got)
	}
	if got := selCount(t, d, ".menu"); got != 1 {
		t.Errorf(".menu → %d, want 1 (multi-class attribute)", got)
	}
}

func TestSelectorCompound(t *testing.T) {
	d, _, deep, _ := buildTestTree()
	sel, _ := ParseSelector("a.item.active")
	got := sel.Select(d.Root)
	if len(got) != 1 || got[0] != deep {
		t.Errorf("a.item.active → %v", got)
	}
	if got := selCount(t, d, "a#deep"); got != 1 {
		t.Errorf("a#deep → %d", got)
	}
	if got := selCount(t, d, "div.item"); got != 0 {
		t.Errorf("div.item → %d, want 0", got)
	}
}

func TestSelectorDescendant(t *testing.T) {
	d, _, _, _ := buildTestTree()
	// Only the two <a> under #nav, not the outside one.
	if got := selCount(t, d, "#nav a"); got != 2 {
		t.Errorf("#nav a → %d, want 2", got)
	}
	// Through an intermediate span.
	if got := selCount(t, d, "div span a"); got != 1 {
		t.Errorf("div span a → %d, want 1", got)
	}
	// Chain that skips levels still matches (descendant, not child).
	if got := selCount(t, d, ".menu .active"); got != 1 {
		t.Errorf(".menu .active → %d, want 1", got)
	}
	// Unsatisfiable chain.
	if got := selCount(t, d, "span div a"); got != 0 {
		t.Errorf("span div a → %d, want 0", got)
	}
}

func TestSelectorUnsupported(t *testing.T) {
	for _, src := range []string{"", "a > b", "a:hover", "[data-x]", "a, b", "*", "a..b", "#"} {
		if _, ok := ParseSelector(src); ok {
			t.Errorf("ParseSelector(%q) accepted, want rejection", src)
		}
	}
}
