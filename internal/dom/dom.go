// Package dom implements the Document Object Model tree the simulated
// browser renders and scripts query or mutate. It is a pure data structure:
// the browser layer performs all happens-before bookkeeping and memory
// access instrumentation around calls into this package, mirroring how
// WebRacer instruments WebKit's DOM entry points rather than the tree
// itself (§5.2.1).
package dom

import (
	"fmt"
	"sort"
	"strings"
)

// Serials allocates node, object and function identities that are unique
// across every document of one browser, so logical memory locations
// (mem.Loc) never collide between frames.
type Serials struct{ next uint64 }

// Next returns a fresh non-zero serial.
func (s *Serials) Next() uint64 {
	s.next++
	return s.next
}

// Document is one DOM tree: the root page or the page inside an iframe.
type Document struct {
	// Root is the synthetic document node; static HTML elements become
	// its descendants.
	Root *Node
	// URL is the address the document was loaded from (for reports).
	URL string

	serials *Serials
	byID    map[string][]*Node
}

// NewDocument creates an empty document drawing identities from serials.
func NewDocument(url string, serials *Serials) *Document {
	d := &Document{URL: url, serials: serials, byID: make(map[string][]*Node)}
	d.Root = d.NewNode("#document")
	d.Root.InDoc = true
	return d
}

// NewNode creates a detached node owned by this document.
func (d *Document) NewNode(tag string) *Node {
	return &Node{
		Serial: d.serials.Next(),
		Tag:    strings.ToLower(tag),
		Doc:    d,
		Attrs:  map[string]string{},
	}
}

// NewText creates a detached text node.
func (d *Document) NewText(text string) *Node {
	n := d.NewNode("#text")
	n.Text = text
	return n
}

// GetElementByID returns the first in-document element with the given id
// attribute, in document insertion order, or nil.
func (d *Document) GetElementByID(id string) *Node {
	nodes := d.byID[id]
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// ElementsByTag returns all in-document elements with the given tag, in
// tree order.
func (d *Document) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	d.Root.walk(func(n *Node) {
		if n.Tag == tag {
			out = append(out, n)
		}
	})
	return out
}

// ElementsByName returns all in-document elements whose name attribute
// matches.
func (d *Document) ElementsByName(name string) []*Node {
	var out []*Node
	d.Root.walk(func(n *Node) {
		if n.Attrs["name"] == name {
			out = append(out, n)
		}
	})
	return out
}

// Collection returns the document-level live collection for the property
// name used by scripts: forms, images, links, anchors, scripts. Unknown
// names yield nil.
func (d *Document) Collection(name string) []*Node {
	switch name {
	case "forms":
		return d.ElementsByTag("form")
	case "images":
		return d.ElementsByTag("img")
	case "scripts":
		return d.ElementsByTag("script")
	case "links", "anchors":
		var out []*Node
		d.Root.walk(func(n *Node) {
			if n.Tag == "a" && n.Attrs["href"] != "" {
				out = append(out, n)
			}
		})
		return out
	default:
		return nil
	}
}

// Body returns the first <body> element, or the root when the page has no
// explicit body (the simplified parser does not synthesize one).
func (d *Document) Body() *Node {
	if b := d.ElementsByTag("body"); len(b) > 0 {
		return b[0]
	}
	return d.Root
}

// registerSubtree indexes a freshly inserted subtree.
func (d *Document) registerSubtree(n *Node) {
	n.walk(func(m *Node) {
		m.InDoc = true
		if id := m.Attrs["id"]; id != "" {
			d.byID[id] = append(d.byID[id], m)
			sort.Slice(d.byID[id], func(i, j int) bool {
				return d.byID[id][i].Serial < d.byID[id][j].Serial
			})
		}
	})
}

// unregisterSubtree removes an extracted subtree from indexes.
func (d *Document) unregisterSubtree(n *Node) {
	n.walk(func(m *Node) {
		m.InDoc = false
		if id := m.Attrs["id"]; id != "" {
			nodes := d.byID[id]
			for i, x := range nodes {
				if x == m {
					d.byID[id] = append(nodes[:i:i], nodes[i+1:]...)
					break
				}
			}
			if len(d.byID[id]) == 0 {
				delete(d.byID, id)
			}
		}
	})
}

// Listener is an event handler registered on a node. HandlerID is the
// identity h of the logical location (el, e, h): 0 for the single on-event
// attribute/property slot, otherwise the registered function's serial.
type Listener struct {
	HandlerID uint64
	// Fn is the handler: the browser stores either a source string (for
	// content attributes) or an interpreter function value.
	Fn any
	// Capture marks a capturing-phase listener (addEventListener's third
	// argument).
	Capture bool
}

// Node is one DOM node. Exposed fields are manipulated through the methods
// below so document indexes stay consistent.
type Node struct {
	Serial uint64
	Tag    string // lower-case tag name, "#text" or "#document"
	Text   string // text node content; script nodes keep source here too
	Attrs  map[string]string
	Parent *Node
	Kids   []*Node
	Doc    *Document
	InDoc  bool

	// Value and Checked model form field state (§4.1 Additional Cases).
	Value   string
	Checked bool

	// listeners maps event type to registered listeners in registration
	// order. The on-event attribute/property slot is the listener with
	// HandlerID 0 and is replaced in place on reassignment.
	listeners map[string][]*Listener

	// Inserted marks that the element-location write for this node has
	// been performed (used by the browser to avoid double instrumenting
	// nested dynamic insertion).
	Inserted bool
}

// ID returns the node's id attribute.
func (n *Node) ID() string { return n.Attrs["id"] }

func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.Tag == "#text" {
		t := n.Text
		if len(t) > 20 {
			t = t[:20] + "…"
		}
		return fmt.Sprintf("#text(%q)", t)
	}
	if id := n.ID(); id != "" {
		return fmt.Sprintf("<%s id=%q>", n.Tag, id)
	}
	return fmt.Sprintf("<%s #%d>", n.Tag, n.Serial)
}

// IsFormField reports whether the node is a form field whose value/checked
// state the §5.3 form filter cares about.
func (n *Node) IsFormField() bool {
	switch n.Tag {
	case "input", "textarea", "select":
		return true
	default:
		return false
	}
}

// AppendChild appends child (detaching it from any previous parent) and
// returns its index in n.Kids.
func (n *Node) AppendChild(child *Node) int {
	return n.InsertBefore(child, nil)
}

// InsertBefore inserts child before ref (or appends when ref is nil) and
// returns the insertion index. Inserting a node into an in-document parent
// registers the whole subtree with the document.
func (n *Node) InsertBefore(child, ref *Node) int {
	if child == n {
		panic("dom: cannot insert node into itself")
	}
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	idx := len(n.Kids)
	if ref != nil {
		for i, k := range n.Kids {
			if k == ref {
				idx = i
				break
			}
		}
	}
	n.Kids = append(n.Kids, nil)
	copy(n.Kids[idx+1:], n.Kids[idx:])
	n.Kids[idx] = child
	child.Parent = n
	if n.InDoc && !child.InDoc {
		n.Doc.registerSubtree(child)
	}
	return idx
}

// RemoveChild detaches child from n, unregistering its subtree when it was
// in the document. It returns the index child occupied, or -1 when child
// was not a child of n.
func (n *Node) RemoveChild(child *Node) int {
	for i, k := range n.Kids {
		if k == child {
			n.Kids = append(n.Kids[:i:i], n.Kids[i+1:]...)
			child.Parent = nil
			if child.InDoc {
				n.Doc.unregisterSubtree(child)
			}
			return i
		}
	}
	return -1
}

// Index returns child's position in n.Kids, or -1.
func (n *Node) Index(child *Node) int {
	for i, k := range n.Kids {
		if k == child {
			return i
		}
	}
	return -1
}

// AddListener registers a listener for the event type and returns it.
// HandlerID 0 (the on-event slot) replaces any previous slot listener.
func (n *Node) AddListener(event string, l *Listener) {
	if n.listeners == nil {
		n.listeners = make(map[string][]*Listener)
	}
	if l.HandlerID == 0 {
		for _, old := range n.listeners[event] {
			if old.HandlerID == 0 {
				old.Fn = l.Fn
				old.Capture = l.Capture
				return
			}
		}
	}
	n.listeners[event] = append(n.listeners[event], l)
}

// RemoveListener removes the listener with the given handler identity.
// It reports whether a listener was removed.
func (n *Node) RemoveListener(event string, handlerID uint64) bool {
	ls := n.listeners[event]
	for i, l := range ls {
		if l.HandlerID == handlerID {
			n.listeners[event] = append(ls[:i:i], ls[i+1:]...)
			return true
		}
	}
	return false
}

// Listeners returns the listeners for the event type in registration order
// (shared slice; do not mutate).
func (n *Node) Listeners(event string) []*Listener { return n.listeners[event] }

// ListenerEvents returns the event types with at least one listener,
// sorted, for deterministic automatic exploration.
func (n *Node) ListenerEvents() []string {
	out := make([]string, 0, len(n.listeners))
	for ev, ls := range n.listeners {
		if len(ls) > 0 {
			out = append(out, ev)
		}
	}
	sort.Strings(out)
	return out
}

// Path returns the ancestor chain from the document root down to n,
// inclusive — the event propagation path of Appendix A.
func (n *Node) Path() []*Node {
	var rev []*Node
	for m := n; m != nil; m = m.Parent {
		rev = append(rev, m)
	}
	out := make([]*Node, len(rev))
	for i, m := range rev {
		out[len(rev)-1-i] = m
	}
	return out
}

func (n *Node) walk(f func(*Node)) {
	f(n)
	for _, k := range n.Kids {
		k.walk(f)
	}
}

// Walk applies f to n and every descendant in tree order.
func (n *Node) Walk(f func(*Node)) { n.walk(f) }

// OuterHTML renders the subtree back to HTML (for debugging and reports).
func (n *Node) OuterHTML() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Tag {
	case "#text":
		b.WriteString(n.Text)
	case "#document":
		for _, k := range n.Kids {
			k.render(b)
		}
	default:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%q", k, n.Attrs[k])
		}
		b.WriteByte('>')
		for _, k := range n.Kids {
			k.render(b)
		}
		fmt.Fprintf(b, "</%s>", n.Tag)
	}
}
