package dom

import "strings"

// Selector is a parsed CSS selector of the subset real pages use for
// lookups: a compound selector (tag, #id, .class in any combination)
// optionally chained with descendant combinators, e.g.
// "div.menu #item", "input.large", "#nav a".
type Selector struct {
	parts []simpleSelector
}

type simpleSelector struct {
	tag     string
	id      string
	classes []string
}

// ParseSelector parses the selector subset. It returns ok=false for syntax
// this subset does not support (attribute selectors, pseudo-classes,
// child/sibling combinators).
func ParseSelector(src string) (Selector, bool) {
	src = strings.TrimSpace(src)
	if src == "" || strings.ContainsAny(src, "[]:>+~,*") {
		return Selector{}, false
	}
	var sel Selector
	for _, field := range strings.Fields(src) {
		var s simpleSelector
		rest := field
		// Leading tag name.
		i := 0
		for i < len(rest) && rest[i] != '#' && rest[i] != '.' {
			i++
		}
		s.tag = strings.ToLower(rest[:i])
		rest = rest[i:]
		for rest != "" {
			marker := rest[0]
			rest = rest[1:]
			j := 0
			for j < len(rest) && rest[j] != '#' && rest[j] != '.' {
				j++
			}
			name := rest[:j]
			rest = rest[j:]
			if name == "" {
				return Selector{}, false
			}
			switch marker {
			case '#':
				s.id = name
			case '.':
				s.classes = append(s.classes, name)
			}
		}
		sel.parts = append(sel.parts, s)
	}
	if len(sel.parts) == 0 {
		return Selector{}, false
	}
	return sel, true
}

// matches reports whether node n satisfies the simple selector.
func (s simpleSelector) matches(n *Node) bool {
	if n.Tag == "#text" || n.Tag == "#document" {
		return false
	}
	if s.tag != "" && n.Tag != s.tag {
		return false
	}
	if s.id != "" && n.ID() != s.id {
		return false
	}
	if len(s.classes) > 0 {
		have := strings.Fields(n.Attrs["class"])
		for _, want := range s.classes {
			found := false
			for _, h := range have {
				if h == want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// Select returns the in-document nodes under root matching the selector,
// in tree order.
func (sel Selector) Select(root *Node) []*Node {
	if len(sel.parts) == 0 {
		return nil
	}
	// Match the final simple selector, then verify ancestors for the
	// descendant chain.
	last := sel.parts[len(sel.parts)-1]
	var out []*Node
	root.Walk(func(n *Node) {
		if n == root || !last.matches(n) {
			return
		}
		if sel.ancestorsSatisfy(n, root) {
			out = append(out, n)
		}
	})
	return out
}

// ancestorsSatisfy checks the descendant chain sel.parts[:len-1] against
// n's ancestors (each part must match some strictly closer ancestor, in
// order).
func (sel Selector) ancestorsSatisfy(n *Node, root *Node) bool {
	need := len(sel.parts) - 2
	anc := n.Parent
	for need >= 0 && anc != nil && anc != root.Parent {
		if sel.parts[need].matches(anc) {
			need--
		}
		anc = anc.Parent
	}
	return need < 0
}
