package dom

import (
	"testing"
)

func newDoc() *Document {
	return NewDocument("test.html", &Serials{})
}

func TestNewDocument(t *testing.T) {
	d := newDoc()
	if d.Root == nil || d.Root.Tag != "#document" || !d.Root.InDoc {
		t.Fatalf("bad root: %v", d.Root)
	}
}

func TestSerialsUnique(t *testing.T) {
	s := &Serials{}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		n := s.Next()
		if n == 0 || seen[n] {
			t.Fatalf("serial %d reused or zero", n)
		}
		seen[n] = true
	}
}

func TestAppendAndByID(t *testing.T) {
	d := newDoc()
	div := d.NewNode("div")
	div.Attrs["id"] = "a"
	if d.GetElementByID("a") != nil {
		t.Error("detached node indexed")
	}
	d.Root.AppendChild(div)
	if d.GetElementByID("a") != div {
		t.Error("inserted node not indexed")
	}
	d.Root.RemoveChild(div)
	if d.GetElementByID("a") != nil {
		t.Error("removed node still indexed")
	}
}

func TestSubtreeIndexing(t *testing.T) {
	d := newDoc()
	outer := d.NewNode("div")
	inner := d.NewNode("span")
	inner.Attrs["id"] = "deep"
	outer.AppendChild(inner)
	d.Root.AppendChild(outer)
	if d.GetElementByID("deep") != inner {
		t.Error("nested node not indexed on subtree insertion")
	}
	d.Root.RemoveChild(outer)
	if d.GetElementByID("deep") != nil {
		t.Error("nested node still indexed after subtree removal")
	}
}

func TestDuplicateIDsFirstInOrder(t *testing.T) {
	d := newDoc()
	a := d.NewNode("div")
	a.Attrs["id"] = "dup"
	b := d.NewNode("div")
	b.Attrs["id"] = "dup"
	d.Root.AppendChild(b) // inserted first but created second
	d.Root.AppendChild(a)
	got := d.GetElementByID("dup")
	if got != a {
		// Serial order approximates document creation order.
		t.Logf("duplicate id resolution picked %v", got)
	}
	if got == nil {
		t.Fatal("duplicate id found nothing")
	}
}

func TestInsertBefore(t *testing.T) {
	d := newDoc()
	p := d.NewNode("p")
	q := d.NewNode("q")
	r := d.NewNode("r")
	d.Root.AppendChild(p)
	d.Root.AppendChild(r)
	idx := d.Root.InsertBefore(q, r)
	if idx != 1 {
		t.Errorf("InsertBefore index = %d, want 1", idx)
	}
	if d.Root.Kids[1] != q || d.Root.Kids[2] != r {
		t.Errorf("order wrong: %v", d.Root.Kids)
	}
}

func TestMoveReparents(t *testing.T) {
	d := newDoc()
	a := d.NewNode("a")
	b := d.NewNode("b")
	child := d.NewNode("span")
	d.Root.AppendChild(a)
	d.Root.AppendChild(b)
	a.AppendChild(child)
	b.AppendChild(child) // move
	if child.Parent != b || len(a.Kids) != 0 {
		t.Error("move did not reparent")
	}
}

func TestRemoveChildNotChild(t *testing.T) {
	d := newDoc()
	a := d.NewNode("a")
	if d.Root.RemoveChild(a) != -1 {
		t.Error("removing a non-child should return -1")
	}
}

func TestElementsByTagAndName(t *testing.T) {
	d := newDoc()
	for i := 0; i < 3; i++ {
		img := d.NewNode("img")
		img.Attrs["name"] = "pic"
		d.Root.AppendChild(img)
	}
	d.Root.AppendChild(d.NewNode("div"))
	if got := len(d.ElementsByTag("img")); got != 3 {
		t.Errorf("ElementsByTag(img) = %d, want 3", got)
	}
	if got := len(d.ElementsByTag("IMG")); got != 3 {
		t.Errorf("tag lookup not case-insensitive: %d", got)
	}
	if got := len(d.ElementsByName("pic")); got != 3 {
		t.Errorf("ElementsByName = %d, want 3", got)
	}
}

func TestCollections(t *testing.T) {
	d := newDoc()
	form := d.NewNode("form")
	img := d.NewNode("img")
	link := d.NewNode("a")
	link.Attrs["href"] = "x"
	bare := d.NewNode("a") // no href: not in links
	script := d.NewNode("script")
	for _, n := range []*Node{form, img, link, bare, script} {
		d.Root.AppendChild(n)
	}
	if len(d.Collection("forms")) != 1 || len(d.Collection("images")) != 1 ||
		len(d.Collection("scripts")) != 1 {
		t.Error("basic collections wrong")
	}
	if len(d.Collection("links")) != 1 {
		t.Errorf("links = %d, want 1 (href required)", len(d.Collection("links")))
	}
	if d.Collection("nonsense") != nil {
		t.Error("unknown collection should be nil")
	}
}

func TestListeners(t *testing.T) {
	d := newDoc()
	n := d.NewNode("button")
	n.AddListener("click", &Listener{HandlerID: 5, Fn: "a"})
	n.AddListener("click", &Listener{HandlerID: 6, Fn: "b"})
	if got := len(n.Listeners("click")); got != 2 {
		t.Fatalf("listeners = %d, want 2", got)
	}
	if !n.RemoveListener("click", 5) {
		t.Error("remove failed")
	}
	if n.RemoveListener("click", 5) {
		t.Error("double remove succeeded")
	}
	if got := len(n.Listeners("click")); got != 1 {
		t.Errorf("listeners after remove = %d, want 1", got)
	}
}

func TestSlotListenerReplaced(t *testing.T) {
	d := newDoc()
	n := d.NewNode("img")
	n.AddListener("load", &Listener{HandlerID: 0, Fn: "first"})
	n.AddListener("load", &Listener{HandlerID: 0, Fn: "second"})
	ls := n.Listeners("load")
	if len(ls) != 1 || ls[0].Fn != "second" {
		t.Errorf("slot listener not replaced in place: %v", ls)
	}
}

func TestListenerEventsSorted(t *testing.T) {
	d := newDoc()
	n := d.NewNode("div")
	n.AddListener("mouseover", &Listener{HandlerID: 1})
	n.AddListener("click", &Listener{HandlerID: 2})
	n.AddListener("blur", &Listener{HandlerID: 3})
	got := n.ListenerEvents()
	want := []string{"blur", "click", "mouseover"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("ListenerEvents = %v, want %v", got, want)
	}
}

func TestPath(t *testing.T) {
	d := newDoc()
	a := d.NewNode("a")
	b := d.NewNode("b")
	c := d.NewNode("c")
	d.Root.AppendChild(a)
	a.AppendChild(b)
	b.AppendChild(c)
	path := c.Path()
	if len(path) != 4 || path[0] != d.Root || path[3] != c {
		t.Errorf("path = %v", path)
	}
}

func TestOuterHTML(t *testing.T) {
	d := newDoc()
	div := d.NewNode("div")
	div.Attrs["id"] = "x"
	div.AppendChild(d.NewText("hello"))
	got := div.OuterHTML()
	want := `<div id="x">hello</div>`
	if got != want {
		t.Errorf("OuterHTML = %q, want %q", got, want)
	}
}

func TestIsFormField(t *testing.T) {
	d := newDoc()
	for tag, want := range map[string]bool{
		"input": true, "textarea": true, "select": true,
		"div": false, "a": false,
	} {
		if d.NewNode(tag).IsFormField() != want {
			t.Errorf("IsFormField(%s) != %v", tag, want)
		}
	}
}

func TestInsertIntoSelfPanics(t *testing.T) {
	d := newDoc()
	n := d.NewNode("div")
	defer func() {
		if recover() == nil {
			t.Error("inserting node into itself did not panic")
		}
	}()
	n.AppendChild(n)
}
