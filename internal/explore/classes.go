package explore

import "webracer/internal/obs"

// ClassStats summarizes HB-equivalence pruning for one sweep: how many
// executions ran, how many distinct trace classes they fell into, how
// many detector passes the classification skipped, and how many
// perturbations the steering heuristic flagged as targeting an event
// pair not yet ordered both ways. Executions − Pruned is the number of
// detector passes actually performed. The struct marshals
// deterministically and folds into the byte-stable metrics export as the
// explore.classes.* counters.
type ClassStats struct {
	// Executions counts sweep units executed (classification never skips
	// an execution — only the detector pass over it).
	Executions int `json:"executions"`
	// Distinct counts distinct canonical trace classes observed.
	Distinct int `json:"distinct"`
	// Pruned counts executions that collapsed into an already-explored
	// class and reused its detector verdict.
	Pruned int `json:"pruned"`
	// Steered counts steering decisions: perturbations whose planned
	// delay targeted a conflicting event pair not yet ordered both ways
	// in any explored class (seed sweeps are unguided, so only delay-one
	// sweeps steer).
	Steered int `json:"steered"`
}

// Fold adds the stats to a metrics registry under the explore.classes.*
// counters of the byte-stable export.
func (s ClassStats) Fold(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.Add("explore.classes.executions", int64(s.Executions))
	m.Add("explore.classes.distinct", int64(s.Distinct))
	m.Add("explore.classes.pruned", int64(s.Pruned))
	m.Add("explore.classes.steered", int64(s.Steered))
}

// ClassSet tracks the canonical trace classes of one sweep, plus the
// orientation index that drives flip-an-unexplored-racy-pair steering.
// It is driven from the sweep's in-order fold, so it needs no locking
// and its evolution — hence every counter — is identical at any worker
// count.
type ClassSet struct {
	index map[string]int
	// pairs maps a conflicting-pair key (location + the two op labels,
	// canonically ordered) to the orientation bits seen across explored
	// classes: bit 1 = first-before-second, bit 2 = the reverse.
	pairs map[string]uint8
	stats ClassStats
}

// NewClassSet returns an empty class tracker.
func NewClassSet() *ClassSet {
	return &ClassSet{index: map[string]int{}, pairs: map[string]uint8{}}
}

// Observe classifies one completed execution by its fingerprint and
// reports whether it is the first member of its class (the class
// representative, whose detector pass must run). Repeats count as
// pruned.
func (cs *ClassSet) Observe(fp string) (idx int, first bool) {
	cs.stats.Executions++
	if i, ok := cs.index[fp]; ok {
		cs.stats.Pruned++
		return i, false
	}
	i := len(cs.index)
	cs.index[fp] = i
	cs.stats.Distinct++
	return i, true
}

// Degraded records an execution excluded from classification (an
// interrupted run is partial and wall-clock-dependent, so it is always
// analyzed and never reused as a representative).
func (cs *ClassSet) Degraded() { cs.stats.Executions++ }

// NotePair records one observed orientation of a conflicting event pair.
// Key construction is the caller's (the sweep drivers build
// location+label keys); forward distinguishes the two orientations of
// the same key.
func (cs *ClassSet) NotePair(key string, forward bool) {
	bit := uint8(1)
	if !forward {
		bit = 2
	}
	cs.pairs[key] |= bit
}

// OneWay reports whether any recorded conflicting pair matching the
// predicate has been ordered in only one direction across the explored
// classes — the pairs whose flip would exhibit a new class, where
// steering points the remaining budget.
func (cs *ClassSet) OneWay(match func(key string) bool) bool {
	for key, bits := range cs.pairs {
		if (bits == 1 || bits == 2) && match(key) {
			return true
		}
	}
	return false
}

// NoteSteered counts one steering decision.
func (cs *ClassSet) NoteSteered() { cs.stats.Steered++ }

// Stats returns the accumulated counters.
func (cs *ClassSet) Stats() ClassStats { return cs.stats }
