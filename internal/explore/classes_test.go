package explore

import (
	"strings"
	"testing"

	"webracer/internal/obs"
)

func TestClassSetObserve(t *testing.T) {
	cs := NewClassSet()
	if i, first := cs.Observe("a"); !first || i != 0 {
		t.Fatalf("first observation of a: got (%d,%v)", i, first)
	}
	if i, first := cs.Observe("b"); !first || i != 1 {
		t.Fatalf("first observation of b: got (%d,%v)", i, first)
	}
	if i, first := cs.Observe("a"); first || i != 0 {
		t.Fatalf("repeat of a: got (%d,%v)", i, first)
	}
	cs.Degraded()
	got := cs.Stats()
	want := ClassStats{Executions: 4, Distinct: 2, Pruned: 1}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
}

func TestClassSetSteering(t *testing.T) {
	cs := NewClassSet()
	hasURL := func(url string) func(string) bool {
		return func(key string) bool { return strings.Contains(key, url) }
	}
	cs.NotePair("var a.x|exe lib.js|handler click", true)
	if !cs.OneWay(hasURL("lib.js")) {
		t.Error("one-way pair not reported")
	}
	if cs.OneWay(hasURL("other.js")) {
		t.Error("unrelated URL matched a pair")
	}
	cs.NotePair("var a.x|exe lib.js|handler click", false)
	if cs.OneWay(hasURL("lib.js")) {
		t.Error("pair ordered both ways still reported as one-way")
	}
	cs.NoteSteered()
	if cs.Stats().Steered != 1 {
		t.Errorf("steered = %d, want 1", cs.Stats().Steered)
	}
}

func TestClassStatsFold(t *testing.T) {
	m := obs.New()
	ClassStats{Executions: 8, Distinct: 3, Pruned: 5, Steered: 2}.Fold(m)
	snap := m.Snapshot()
	want := map[string]int64{
		"explore.classes.executions": 8,
		"explore.classes.distinct":   3,
		"explore.classes.pruned":     5,
		"explore.classes.steered":    2,
	}
	for name, val := range want {
		if snap[name] != val {
			t.Errorf("%s = %d, want %d", name, snap[name], val)
		}
	}
	ClassStats{}.Fold(nil) // nil registry is a no-op
}
