package explore

import (
	"testing"

	"webracer/internal/browser"
	"webracer/internal/loader"
	"webracer/internal/race"
	"webracer/internal/report"
)

func load(t *testing.T, site *loader.Site, cfg browser.Config) *browser.Browser {
	t.Helper()
	cfg.SharedFrameGlobals = true
	if cfg.Latency.Base == 0 && cfg.Latency.PerURL == nil {
		cfg.Latency = loader.Latency{Base: 10}
	}
	b := browser.New(site, cfg)
	b.LoadPage("index.html")
	return b
}

func raceOn(reports []race.Report, name string) *race.Report {
	for i, r := range reports {
		if r.Loc.Name == name {
			return &reports[i]
		}
	}
	return nil
}

// TestExploreDispatchesRegisteredEvents: only events with handlers fire.
func TestExploreDispatchesRegisteredEvents(t *testing.T) {
	site := loader.NewSite("reg").Add("index.html", `
<div id="a" onmouseover="overs = (typeof overs === 'undefined' ? 0 : overs) + 1;"></div>
<div id="b"></div>`)
	b := load(t, site, browser.Config{Seed: 1})
	st := Run(b, Default())
	if st.EventsDispatched != 1 {
		t.Errorf("dispatched %d events, want 1 (only the registered mouseover)", st.EventsDispatched)
	}
	v, ok := b.Top().It.LookupGlobal("overs")
	if !ok || v.ToNumber() != 1 {
		t.Errorf("mouseover handler did not run: %v %v", v, ok)
	}
}

// TestExploreClicksJavascriptLinks: Fig. 3's Send Email link is exercised.
func TestExploreClicksJavascriptLinks(t *testing.T) {
	site := loader.NewSite("links").Add("index.html", `
<script>
function show() { var v = document.getElementById("dw"); v.style.display = "block"; }
</script>
<a href="javascript:show()">Send Email</a>
<div id="dw" style="display:none"></div>`)
	b := load(t, site, browser.Config{Seed: 1})
	st := Run(b, Default())
	if st.LinksClicked != 1 {
		t.Fatalf("clicked %d links, want 1", st.LinksClicked)
	}
	htmls := []race.Report{}
	for _, r := range b.Reports() {
		if report.Classify(r) == report.HTML {
			htmls = append(htmls, r)
		}
	}
	if raceOn(htmls, "dw") == nil {
		t.Fatalf("exploration did not expose the HTML race; reports: %v", b.Reports())
	}
}

// TestExploreTypesIntoFields: the Fig. 2 form-value race is exposed by
// typing simulation even after load.
func TestExploreTypesIntoFields(t *testing.T) {
	site := loader.NewSite("form").Add("index.html", `
<input type="text" id="depart" />
<script>document.getElementById("depart").value = "City of Departure";</script>`)
	b := load(t, site, browser.Config{Seed: 1})
	st := Run(b, Default())
	if st.FieldsTyped != 1 {
		t.Fatalf("typed into %d fields, want 1", st.FieldsTyped)
	}
	if raceOn(b.Reports(), "value") == nil {
		t.Fatalf("typing did not expose the form race; reports: %v", b.Reports())
	}
}

// TestExploreFunctionRaceViaClick reproduces §6.3's observation that
// harmful function races were exposed by simulated clicks: the click
// handler calls a function declared in a later-loading script.
func TestExploreFunctionRaceViaClick(t *testing.T) {
	site := loader.NewSite("fnclick").
		Add("index.html", `
<div id="menu" onmouseover="openMenu();"></div>
<script src="widgets.js" async="true"></script>`).
		Add("widgets.js", `function openMenu() { opened = 1; }`)
	b := load(t, site, browser.Config{Seed: 1})
	Run(b, Default())
	funcs := []race.Report{}
	for _, r := range b.Reports() {
		if report.Classify(r) == report.Function {
			funcs = append(funcs, r)
		}
	}
	if raceOn(funcs, "openMenu") == nil {
		t.Fatalf("no function race on openMenu; reports: %v", b.Reports())
	}
}

// TestEagerExploration injects interactions during load so the lost-input
// behaviour actually occurs (used by the harm oracle).
func TestEagerExploration(t *testing.T) {
	site := loader.NewSite("eager").Add("index.html", `
<input type="text" id="box" />
<p>a</p><p>b</p><p>c</p><p>d</p><p>e</p><p>f</p>
<script>document.getElementById("box").value = "hint";</script>`)
	cfg := browser.Config{Seed: 1, ParseStepCost: 15, SharedFrameGlobals: true,
		Latency: loader.Latency{Base: 10}}
	b := browser.New(site, cfg)
	opts := Default()
	opts.TypedText = "SFO"
	st := EagerLoad(b, "index.html", opts)
	if st.FieldsTyped == 0 {
		t.Fatal("eager exploration never typed")
	}
	// The user's input was overwritten by the hint script: lost input.
	if box := b.Top().Doc.GetElementByID("box"); box == nil || box.Value != "hint" {
		t.Fatalf("expected script to overwrite eager typing; value=%q", boxValue(b))
	}
	if raceOn(b.Reports(), "value") == nil {
		t.Fatalf("no race on the form value; reports: %v", b.Reports())
	}
}

// TestExhaustiveDiscoversNestedHandlers: a hover handler registers a
// sub-menu click handler; only feedback-directed rounds reach it.
func TestExhaustiveDiscoversNestedHandlers(t *testing.T) {
	// The submenu precedes the menu in tree order, so a single linear
	// exploration pass visits it before its handler exists.
	site := loader.NewSite("nested").Add("index.html", `
<div id="submenu"></div>
<div id="menu"></div>
<script>
document.getElementById("menu").onmouseover = function() {
  document.getElementById("submenu").onclick = function() { subClicked = 1; };
};
</script>`)
	// One-round exploration registers the sub-handler but never fires it.
	b1 := load(t, site, browser.Config{Seed: 1})
	Run(b1, Default())
	if _, ok := b1.Top().It.LookupGlobal("subClicked"); ok {
		t.Fatal("single round should not reach the nested handler")
	}
	// Exhaustive exploration reaches it in round 2.
	b2 := load(t, site, browser.Config{Seed: 1})
	st := Exhaustive(b2, Default(), 5)
	if v, ok := b2.Top().It.LookupGlobal("subClicked"); !ok || v.ToNumber() != 1 {
		t.Fatalf("exhaustive exploration missed the nested handler (rounds=%d)", st.Rounds)
	}
	if st.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2", st.Rounds)
	}
}

// TestExhaustiveTerminates: exploration converges even when handlers
// re-register themselves.
func TestExhaustiveTerminates(t *testing.T) {
	site := loader.NewSite("selfreg").Add("index.html", `
<div id="d"></div>
<script>
count = 0;
function arm() {
  document.getElementById("d").onmouseover = function() { count = count + 1; arm(); };
}
arm();
</script>`)
	b := load(t, site, browser.Config{Seed: 1})
	st := Exhaustive(b, Default(), 50)
	// The same (node, event) pair is never re-dispatched, so this stops
	// after the second round finds nothing new.
	if st.Rounds > 3 {
		t.Errorf("exploration did not converge: %d rounds", st.Rounds)
	}
	if v, _ := b.Top().It.LookupGlobal("count"); v.ToNumber() != 1 {
		t.Errorf("handler ran %v times, want 1", v.ToNumber())
	}
}

func boxValue(b *browser.Browser) string {
	if box := b.Top().Doc.GetElementByID("box"); box != nil {
		return box.Value
	}
	return "<missing>"
}
