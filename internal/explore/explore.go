// Package explore implements WebRacer's automatic exploration (§5.2.2):
// after the window load event, it systematically dispatches the user-action
// events for which the page registered handlers, clicks links whose href
// uses the javascript: protocol, and simulates typing into text boxes and
// input fields so that races on form values (Fig. 2) are exposed.
//
// Doing all automatic dispatch after window load mirrors the paper's
// choice ("simplifying reasoning about WEBRACER's output, since all
// automatically-dispatched events are together"). An additional eager mode
// injects the same interactions *during* the page load; the harm oracle
// uses it to provoke the crashes and lost inputs that make a race harmful.
package explore

import (
	"sort"
	"strings"

	"webracer/internal/browser"
	"webracer/internal/dom"
)

// AutoEvents are the event types automatic exploration dispatches, exactly
// the paper's list.
var AutoEvents = []string{
	"mouseover", "mousemove", "mouseout", "mouseup", "mousedown",
	"keydown", "keyup", "keypress", "change", "input", "focus", "blur",
}

// Options tunes exploration.
type Options struct {
	// Events overrides AutoEvents when non-nil.
	Events []string
	// ClickJSLinks clicks <a href="javascript:..."> links (default on
	// via Default()).
	ClickJSLinks bool
	// TypeIntoFields simulates typing into text boxes and input fields.
	TypeIntoFields bool
	// ClickButtons clicks elements with click handlers.
	ClickButtons bool
	// EagerDelay is the injection period of EagerLoad in virtual ms.
	EagerDelay float64
	// TypedText is the text typed into fields.
	TypedText string
}

// Default returns the configuration matching §5.2.2.
func Default() Options {
	return Options{
		ClickJSLinks:   true,
		TypeIntoFields: true,
		ClickButtons:   true,
		TypedText:      "user input",
	}
}

// Stats summarizes one exploration pass.
type Stats struct {
	EventsDispatched int
	LinksClicked     int
	FieldsTyped      int
	// Rounds counts feedback-directed rounds (Exhaustive only).
	Rounds int
}

// Run performs automatic exploration over every window of b and then drains
// the event loop. Call it after LoadPage (the paper's post-load mode). For
// eager injection during the load itself, use EagerLoad.
func Run(b *browser.Browser, opts Options) Stats {
	if opts.TypedText == "" {
		opts.TypedText = "user input"
	}
	var st Stats
	seen := map[*dom.Node]bool{}
	for _, w := range b.Windows() {
		st.add(explodeWindow(w, opts, seen))
	}
	b.Run()
	return st
}

// Exhaustive performs feedback-directed exploration in the spirit of the
// Artemis system the paper compares against (§8): after each interaction
// round it rescans for handlers that earlier rounds *registered* (menus
// that build sub-menus on hover, handlers attached from other handlers) and
// keeps going until a round discovers nothing new or MaxRounds is hit.
// WebRacer itself explores one round ("a shallower exploration than
// Artemis, sufficient for exposing many races"); this is the deeper mode.
func Exhaustive(b *browser.Browser, opts Options, maxRounds int) Stats {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	if opts.TypedText == "" {
		opts.TypedText = "user input"
	}
	var total Stats
	exercised := map[exerciseKey]bool{}
	for round := 0; round < maxRounds; round++ {
		var st Stats
		for _, w := range b.Windows() {
			st.add(exerciseNew(w, opts, exercised))
		}
		b.Run()
		total.add(st)
		total.Rounds++
		if st.EventsDispatched+st.LinksClicked+st.FieldsTyped == 0 {
			break
		}
	}
	return total
}

// exerciseKey identifies one (node, event) interaction so later rounds only
// dispatch events whose handlers are new.
type exerciseKey struct {
	n  *dom.Node
	ev string
}

// exerciseNew dispatches interactions not yet performed, including events
// whose handlers appeared since the previous round.
func exerciseNew(w *browser.Window, opts Options, done map[exerciseKey]bool) Stats {
	var st Stats
	events := opts.Events
	if events == nil {
		events = AutoEvents
	}
	var targets []*dom.Node
	w.Doc.Root.Walk(func(n *dom.Node) {
		if n.Tag != "#text" {
			targets = append(targets, n)
		}
	})
	targets = append(targets, w.WindowNode())
	for _, n := range targets {
		registered := n.ListenerEvents()
		for _, ev := range registered {
			if !contains(sortedCopy(events), ev) && !(opts.ClickButtons && ev == "click") {
				continue
			}
			k := exerciseKey{n, ev}
			if done[k] {
				continue
			}
			done[k] = true
			w.UserDispatch(n, ev)
			st.EventsDispatched++
		}
		if opts.ClickJSLinks && n.Tag == "a" &&
			strings.HasPrefix(strings.TrimSpace(n.Attrs["href"]), "javascript:") {
			k := exerciseKey{n, "click+href"}
			if !done[k] {
				done[k] = true
				w.UserDispatch(n, "click")
				st.LinksClicked++
			}
		}
		if opts.TypeIntoFields && isTextField(n) {
			k := exerciseKey{n, "typing"}
			if !done[k] {
				done[k] = true
				w.SimulateTyping(n, opts.TypedText)
				st.FieldsTyped++
			}
		}
	}
	return st
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// EagerLoad loads url while injecting user interactions during the load
// (every EagerDelay virtual ms until every window has loaded). The harm
// oracle uses this mode to provoke the behaviours that make races harmful:
// early clicks crash on missing elements (Fig. 3), early typing gets
// erased (Fig. 2).
func EagerLoad(b *browser.Browser, url string, opts Options) Stats {
	if opts.TypedText == "" {
		opts.TypedText = "user input"
	}
	delay := opts.EagerDelay
	if delay <= 0 {
		delay = 5
	}
	var st Stats
	seen := map[*dom.Node]bool{}
	var tick func()
	tick = func() {
		for _, w := range b.Windows() {
			st.add(explodeWindow(w, opts, seen))
		}
		if !allLoaded(b) {
			b.ScheduleUserAction(delay, tick)
		}
	}
	b.ScheduleUserAction(delay, tick)
	b.LoadPage(url)
	// One final pass after load so late-registered handlers are covered.
	for _, w := range b.Windows() {
		st.add(explodeWindow(w, opts, seen))
	}
	b.Run()
	return st
}

func (s *Stats) add(o Stats) {
	s.EventsDispatched += o.EventsDispatched
	s.LinksClicked += o.LinksClicked
	s.FieldsTyped += o.FieldsTyped
}

func allLoaded(b *browser.Browser) bool {
	for _, w := range b.Windows() {
		if !w.Loaded() {
			return false
		}
	}
	return true
}

// explodeWindow dispatches interactions in one window, skipping nodes
// already exercised (relevant for the eager mode's repeated scans).
func explodeWindow(w *browser.Window, opts Options, seen map[*dom.Node]bool) Stats {
	var st Stats
	events := opts.Events
	if events == nil {
		events = AutoEvents
	}
	var targets []*dom.Node
	w.Doc.Root.Walk(func(n *dom.Node) {
		if n.Tag == "#text" || seen[n] {
			return
		}
		targets = append(targets, n)
	})
	// Window-level targets (handlers on window for key events etc.).
	if !seen[w.WindowNode()] {
		targets = append(targets, w.WindowNode())
	}
	for _, n := range targets {
		seen[n] = true
		// Generate only events the page listens for (§5.2.2:
		// "generating any event of certain types for which an event
		// handler was registered").
		registered := n.ListenerEvents()
		for _, ev := range events {
			if !contains(registered, ev) {
				continue
			}
			w.UserDispatch(n, ev)
			st.EventsDispatched++
		}
		if opts.ClickButtons && contains(registered, "click") {
			w.UserDispatch(n, "click")
			st.EventsDispatched++
		}
		if opts.ClickJSLinks && n.Tag == "a" &&
			strings.HasPrefix(strings.TrimSpace(n.Attrs["href"]), "javascript:") {
			w.UserDispatch(n, "click")
			st.LinksClicked++
		}
		if opts.TypeIntoFields && isTextField(n) {
			w.SimulateTyping(n, opts.TypedText)
			st.FieldsTyped++
		}
	}
	return st
}

func isTextField(n *dom.Node) bool {
	if n.Tag == "textarea" {
		return true
	}
	if n.Tag != "input" {
		return false
	}
	switch n.Attrs["type"] {
	case "", "text", "search", "email", "url", "tel", "password":
		return true
	default:
		return false
	}
}

func contains(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}
