package fault

import (
	"math"
	"reflect"
	"testing"

	"webracer/internal/loader"
)

func testSite() *loader.Site {
	return loader.NewSite("t").
		Add("index.html", "<html></html>").
		Add("a.js", "var a = 1;").
		Add("b.js", "var b = 2;")
}

func fixed() loader.Latency { return loader.Latency{Base: 10} }

// replay performs n fetches of each URL and returns the responses.
func replay(plan Plan, urls []string, n int) []loader.Response {
	in := New(loader.New(testSite(), fixed(), 1), plan)
	var out []loader.Response
	for i := 0; i < n; i++ {
		for _, url := range urls {
			out = append(out, in.Fetch(url))
		}
	}
	return out
}

// TestDeterministicReplay: the same (plan, fetch sequence) yields identical
// responses — the property every fault sweep rests on.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, DropProb: 0.2, StatusProb: 0.2, StallProb: 0.2, TruncProb: 0.2}
	urls := []string{"a.js", "b.js", "index.html"}
	r1 := replay(plan, urls, 20)
	r2 := replay(plan, urls, 20)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("identical plans produced different response sequences")
	}
}

// TestSeedChangesDecisions: different plan seeds explore different faults.
func TestSeedChangesDecisions(t *testing.T) {
	urls := []string{"a.js", "b.js"}
	r1 := replay(Plan{Seed: 1, DropProb: 0.5}, urls, 20)
	r2 := replay(Plan{Seed: 2, DropProb: 0.5}, urls, 20)
	if reflect.DeepEqual(r1, r2) {
		t.Fatal("different seeds produced identical fault decisions")
	}
}

// TestPerURLOverrides: forced kinds win over probabilities, and KindNone
// protects a URL under an otherwise always-failing plan.
func TestPerURLOverrides(t *testing.T) {
	plan := Plan{Seed: 7, DropProb: 1,
		PerURL: map[string]Kind{"index.html": KindNone, "a.js": KindStatus}}
	in := New(loader.New(testSite(), fixed(), 1), plan)
	if resp := in.Fetch("index.html"); !resp.OK() {
		t.Errorf("KindNone did not protect the entry page: %+v", resp)
	}
	if resp := in.Fetch("a.js"); resp.Err != nil || resp.Status < 400 {
		t.Errorf("KindStatus override not applied: %+v", resp)
	} else if resp.Status != 404 && resp.Status != 500 && resp.Status != 503 {
		t.Errorf("unexpected injected status %d", resp.Status)
	}
	if resp := in.Fetch("b.js"); resp.Err == nil {
		t.Errorf("DropProb=1 let b.js through: %+v", resp)
	}
}

// TestFaultShapes: each kind produces its documented response shape.
func TestFaultShapes(t *testing.T) {
	for kind, check := range map[Kind]func(t *testing.T, r loader.Response){
		KindDrop: func(t *testing.T, r loader.Response) {
			if r.Err == nil || r.Status != 0 || r.Body != "" {
				t.Errorf("drop: %+v", r)
			}
		},
		KindRefuse: func(t *testing.T, r loader.Response) {
			if r.Err == nil || r.Latency != 1 {
				t.Errorf("refuse: %+v", r)
			}
		},
		KindStatus: func(t *testing.T, r loader.Response) {
			if r.Err != nil || r.Status < 400 || r.Body != "" {
				t.Errorf("status: %+v", r)
			}
		},
		KindStall: func(t *testing.T, r loader.Response) {
			if r.Err != nil || r.Latency < 30_000 || r.Body == "" {
				t.Errorf("stall: %+v", r)
			}
		},
		KindTruncate: func(t *testing.T, r loader.Response) {
			if r.Err != nil || !r.Truncated || len(r.Body) >= len("var a = 1;") {
				t.Errorf("truncate: %+v", r)
			}
		},
	} {
		in := New(loader.New(testSite(), fixed(), 1), Plan{Seed: 3, PerURL: map[string]Kind{"a.js": kind}})
		check(t, in.Fetch("a.js"))
		if evs := in.Events(); len(evs) != 1 || evs[0].URL != "a.js" || evs[0].Kind != kind.String() {
			t.Errorf("%s: event log %+v", kind, evs)
		}
	}
}

// TestRetryIndependence: successive fetches of one URL roll independent
// decisions, so a retry loop can eventually succeed under a partial plan.
func TestRetryIndependence(t *testing.T) {
	in := New(loader.New(testSite(), fixed(), 1), Plan{Seed: 11, DropProb: 0.5})
	failed, succeeded := false, false
	for i := 0; i < 40; i++ {
		if in.Fetch("a.js").OK() {
			succeeded = true
		} else {
			failed = true
		}
	}
	if !failed || !succeeded {
		t.Errorf("40 retries at p=0.5 should both fail and succeed (failed=%v succeeded=%v)",
			failed, succeeded)
	}
}

// TestRateRoughlyHonored: the empirical fault rate tracks the plan.
func TestRateRoughlyHonored(t *testing.T) {
	plan := Plan{Seed: 5, DropProb: 0.3}
	in := New(loader.New(testSite(), fixed(), 1), plan)
	n, dropped := 2000, 0
	for i := 0; i < n; i++ {
		if in.Fetch("a.js").Err != nil {
			dropped++
		}
	}
	got := float64(dropped) / float64(n)
	if math.Abs(got-0.3) > 0.05 {
		t.Errorf("empirical drop rate %.3f, plan 0.3", got)
	}
}

// TestLatencyRNGAlignment: a plan perturbs only faulted resources — the
// latency draws of untouched URLs match the fault-free run exactly.
func TestLatencyRNGAlignment(t *testing.T) {
	lat := loader.DefaultLatency()
	plain := loader.New(testSite(), lat, 9)
	faulted := New(loader.New(testSite(), lat, 9), Plan{Seed: 1, PerURL: map[string]Kind{"a.js": KindDrop}})
	for i := 0; i < 10; i++ {
		p1 := plain.Fetch("a.js")
		p2 := plain.Fetch("b.js")
		f1 := faulted.Fetch("a.js")
		f2 := faulted.Fetch("b.js")
		if f2.Latency != p2.Latency {
			t.Fatalf("fetch %d: b.js latency drifted under faults (%.3f vs %.3f)", i, f2.Latency, p2.Latency)
		}
		if f1.Err == nil {
			t.Fatalf("fetch %d: forced drop did not fire", i)
		}
		_ = p1
	}
}

// TestLabelStable: labels are deterministic (PerURL in sorted order) and
// distinguish plans.
func TestLabelStable(t *testing.T) {
	p := Plan{Seed: 4, DropProb: 0.25, PerURL: map[string]Kind{"b.js": KindStall, "a.js": KindNone}}
	want := "fault{seed=4 drop=0.25 a.js:none b.js:stall}"
	for i := 0; i < 5; i++ {
		if got := p.Label(); got != want {
			t.Fatalf("Label = %q, want %q", got, want)
		}
	}
	if ForSeed(1, 0).Label() == ForSeed(1, 1).Label() {
		t.Error("derived plans 0 and 1 share a label")
	}
}

// TestForSeedCoversShapes: the first six derived plans cover every shape.
func TestForSeedCoversShapes(t *testing.T) {
	var drop, fail, status, stall, trunc bool
	for i := 0; i < 6; i++ {
		p := ForSeed(1, i)
		drop = drop || p.DropProb > 0
		fail = fail || p.FailProb > 0
		status = status || p.StatusProb > 0
		stall = stall || p.StallProb > 0
		trunc = trunc || p.TruncProb > 0
		if p.Zero() {
			t.Errorf("derived plan %d is a no-op", i)
		}
	}
	if !(drop && fail && status && stall && trunc) {
		t.Error("first six derived plans do not cover all fault shapes")
	}
}

// TestMissingResourceStaysMissing: faults never resurrect a 404.
func TestMissingResourceStaysMissing(t *testing.T) {
	in := New(loader.New(testSite(), fixed(), 1), Plan{Seed: 1, PerURL: map[string]Kind{"gone.js": KindStall}})
	resp := in.Fetch("gone.js")
	if resp.Err == nil || resp.Status != 404 {
		t.Errorf("missing resource under a stall plan: %+v", resp)
	}
}
