// Package fault is the deterministic network fault injector. The paper
// attributes web races to environmental asynchrony (§2.1) but its
// evaluation — like the plain loader — only varies *timing*: every
// resource eventually arrives intact. Real pages also lose races on the
// error path: a script that never loads leaves its functions undeclared, a
// 500 skips the handler registrations gated on success, a stalled XHR
// races its retry timer. This package makes those orderings explorable
// while keeping the simulation replayable: every injection decision is a
// pure function of (plan seed, URL, per-URL fetch index), so a given
// (site, seed, plan) triple produces the same execution byte for byte, on
// any worker of a sweep, in any order.
package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"webracer/internal/loader"
)

// Kind is one fault shape.
type Kind uint8

const (
	// KindUnset lets the plan's probabilities decide (zero value).
	KindUnset Kind = iota
	// KindNone forces a fault-free fetch (used to protect entry pages).
	KindNone
	// KindDrop severs the connection: the fetch errors after its normal
	// latency, as if the response was lost mid-flight.
	KindDrop
	// KindRefuse fails immediately (DNS failure / connection refused):
	// the error is observable after ~1ms.
	KindRefuse
	// KindStatus delivers an HTTP error status (404/500/503) with an
	// empty body.
	KindStatus
	// KindStall delivers the resource intact but only after the plan's
	// StallMS window — far beyond any normal latency, so everything that
	// can race the late arrival does.
	KindStall
	// KindTruncate delivers a prefix of the body (a cut connection that
	// still flushed some bytes).
	KindTruncate
)

var kindNames = map[Kind]string{
	KindUnset: "unset", KindNone: "none", KindDrop: "drop", KindRefuse: "refuse",
	KindStatus: "status", KindStall: "stall", KindTruncate: "truncate",
}

// String returns the kind's stable name (the spelling ParseKind accepts).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a kind name — the spelling Kind.String prints — back to
// its Kind. The webracerd API accepts per-URL overrides by these names.
func ParseKind(name string) (Kind, error) {
	for k, s := range kindNames {
		if s == name {
			return k, nil
		}
	}
	return KindUnset, fmt.Errorf("fault: unknown kind %q", name)
}

// errStatuses are the HTTP statuses KindStatus draws from.
var errStatuses = []int{404, 500, 503}

// Plan is a deterministic fault plan: per-shape probabilities plus forced
// per-URL overrides. The zero Plan injects nothing. Probabilities are
// evaluated in order (drop, refuse, status, stall, truncate) against a
// single roll, so their sum is the overall fault rate and must not exceed
// 1 for the intended semantics.
type Plan struct {
	// Seed drives every injection decision (independently of the
	// browser's simulation seed, so schedules and faults vary
	// independently).
	Seed int64
	// DropProb is the probability a fetch errors after its normal
	// latency (response lost mid-flight).
	DropProb float64
	// FailProb is the probability a fetch fails immediately
	// (ErrNotFound-equivalent: connection refused).
	FailProb float64
	// StatusProb is the probability a fetch returns an HTTP error
	// status (404/500/503) instead of its body.
	StatusProb float64
	// StallProb is the probability a fetch is delayed to StallMS —
	// effectively pushing the arrival beyond the page's normal window.
	StallProb float64
	// TruncProb is the probability a body arrives truncated.
	TruncProb float64
	// StallMS is the stalled-arrival latency; 0 means 30000 virtual ms.
	StallMS float64
	// PerURL forces a fault kind for specific URLs regardless of the
	// probabilities (KindNone protects a URL; entry pages usually are).
	PerURL map[string]Kind
}

// stallMS returns the effective stall window.
func (p Plan) stallMS() float64 {
	if p.StallMS <= 0 {
		return 30_000
	}
	return p.StallMS
}

// Zero reports whether the plan can never inject a fault.
func (p Plan) Zero() bool {
	if p.DropProb > 0 || p.FailProb > 0 || p.StatusProb > 0 || p.StallProb > 0 || p.TruncProb > 0 {
		return false
	}
	for _, k := range p.PerURL {
		if k != KindUnset && k != KindNone {
			return false
		}
	}
	return true
}

// Label is the plan's stable human-readable identity, embedded in reports
// so a race can be traced back to the exact environment that exposed it.
// Probabilities are printed only when nonzero; PerURL overrides are listed
// in sorted URL order so the label is deterministic.
func (p Plan) Label() string {
	var parts []string
	add := func(name string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%.3g", name, v))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	add("drop", p.DropProb)
	add("fail", p.FailProb)
	add("status", p.StatusProb)
	add("stall", p.StallProb)
	add("trunc", p.TruncProb)
	urls := make([]string, 0, len(p.PerURL))
	for url, k := range p.PerURL {
		if k != KindUnset {
			urls = append(urls, url)
		}
	}
	sort.Strings(urls)
	for _, url := range urls {
		parts = append(parts, fmt.Sprintf("%s:%s", url, p.PerURL[url]))
	}
	return "fault{" + strings.Join(parts, " ") + "}"
}

// ForSeed derives sweep plan i from a base seed: a rotation through
// single-shape and mixed plans at stepped fault rates, so a small sweep
// already covers every error-path family. The derivation is pure — the
// same (seed, i) always yields the same plan.
func ForSeed(seed int64, i int) Plan {
	rate := []float64{0.15, 0.35, 0.6}[i/6%3]
	p := Plan{Seed: seed*1_000_003 + int64(i)}
	switch i % 6 {
	case 0:
		p.DropProb = rate
	case 1:
		p.FailProb = rate
	case 2:
		p.StatusProb = rate
	case 3:
		p.StallProb = rate
	case 4:
		p.TruncProb = rate
	default: // mixed: every shape at a fifth of the rate
		each := rate / 5
		p.DropProb, p.FailProb, p.StatusProb, p.StallProb, p.TruncProb = each, each, each, each, each
	}
	return p
}

// ErrInjected is the transport error of a dropped or refused fetch.
type ErrInjected struct {
	URL  string
	Kind Kind
}

// Error names the injected fault and its URL.
func (e *ErrInjected) Error() string {
	return fmt.Sprintf("fault: %s of %q injected", e.Kind, e.URL)
}

// Event records one injected fault, for report annotation.
type Event struct {
	URL string `json:"url"`
	// Index is the per-URL fetch index the decision was derived from.
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Status int    `json:"status,omitempty"`
}

// Injector wraps a Fetcher with a Plan. Not safe for concurrent use — like
// the Loader it wraps, each browser session owns its own instance.
type Injector struct {
	inner loader.Fetcher
	plan  Plan
	// perURL counts fetches per URL so retries of one resource roll
	// independent decisions (a retried fetch may succeed — that is what
	// makes retry loops race their own late responses).
	perURL map[string]int
	events []Event
	// OnEvent, when non-nil, observes each injection as it fires (the
	// telemetry layer stamps it into the virtual-time trace). Purely an
	// observer: injection decisions never depend on it.
	OnEvent func(Event)
}

// New wraps inner with plan.
func New(inner loader.Fetcher, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan, perURL: map[string]int{}}
}

// Plan returns the active plan.
func (in *Injector) Plan() Plan { return in.plan }

// Events returns the faults injected so far, in fetch order.
func (in *Injector) Events() []Event { return in.events }

// Fetches reports how many fetches have been issued (delegated: every
// faulted fetch still consumes an underlying fetch and its latency draw,
// keeping the schedule RNG aligned with the fault-free run).
func (in *Injector) Fetches() int { return in.inner.Fetches() }

// Site returns the site being served.
func (in *Injector) Site() *loader.Site { return in.inner.Site() }

// Fetch resolves url through the inner fetcher, then applies the plan's
// decision for (url, fetchIndex). Crucially the inner fetch always runs
// first: the latency RNG advances exactly as in the fault-free run, so a
// plan perturbs only the faulted resources, never the whole schedule.
func (in *Injector) Fetch(url string) loader.Response {
	resp := in.inner.Fetch(url)
	idx := in.perURL[url]
	in.perURL[url] = idx + 1
	kind := in.decide(url, idx)
	if kind == KindNone || kind == KindUnset {
		return resp
	}
	if resp.Err != nil {
		// Already failed (missing resource): faults don't resurrect it.
		return resp
	}
	ev := Event{URL: url, Index: idx, Kind: kind.String()}
	switch kind {
	case KindDrop:
		resp.Body, resp.Status, resp.Err = "", 0, &ErrInjected{URL: url, Kind: KindDrop}
	case KindRefuse:
		resp.Body, resp.Status, resp.Err = "", 0, &ErrInjected{URL: url, Kind: KindRefuse}
		resp.Latency = 1
	case KindStatus:
		resp.Body = ""
		resp.Status = errStatuses[int(in.roll(url, idx, "status")*float64(len(errStatuses)))%len(errStatuses)]
		ev.Status = resp.Status
	case KindStall:
		resp.Latency = in.plan.stallMS() + resp.Latency
	case KindTruncate:
		cut := int(in.roll(url, idx, "cut") * float64(len(resp.Body)))
		resp.Body = resp.Body[:cut]
		resp.Truncated = true
	}
	in.events = append(in.events, ev)
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
	return resp
}

// decide picks the fault kind for the (url, idx) fetch.
func (in *Injector) decide(url string, idx int) Kind {
	if k, ok := in.plan.PerURL[url]; ok && k != KindUnset {
		return k
	}
	u := in.roll(url, idx, "kind")
	p := in.plan
	for _, step := range []struct {
		prob float64
		kind Kind
	}{
		{p.DropProb, KindDrop},
		{p.FailProb, KindRefuse},
		{p.StatusProb, KindStatus},
		{p.StallProb, KindStall},
		{p.TruncProb, KindTruncate},
	} {
		if u < step.prob {
			return step.kind
		}
		u -= step.prob
	}
	return KindNone
}

// roll maps hash(planSeed, url, idx, salt) to [0, 1). FNV-1a over the
// exact byte encoding — no floating-point accumulation, no map iteration,
// nothing platform-dependent — so decisions replay everywhere.
func (in *Injector) roll(url string, idx int, salt string) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.plan.Seed))
	h.Write(b[:])
	h.Write([]byte(url))
	binary.LittleEndian.PutUint64(b[:], uint64(idx))
	h.Write(b[:])
	h.Write([]byte(salt))
	return float64(h.Sum64()>>11) / (1 << 53)
}
