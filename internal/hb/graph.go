// Package hb implements the happens-before relation of §3 of "Race
// Detection for Web Applications" (PLDI 2012).
//
// The relation is represented, as in the paper's implementation (§5.2.1),
// "rather directly as a graph structure": operations are nodes and each of
// the rules of §3.3 contributes directed edges. The relation itself is the
// transitive closure of the edge set. Two query engines are provided:
//
//   - Graph.HappensBefore answers reachability using memoized per-node
//     bitset closures (the paper's graph-traversal approach, but with each
//     node's ancestor set cached so repeated queries are O(n/64) words).
//
//   - Clocks assigns every operation a vector clock over a greedy chain
//     decomposition of the DAG — the "more efficient vector-clock
//     representation" the paper names as future work. Ordering queries are
//     then a single array lookup.
//
// Both engines answer exactly the same relation; package race exploits that
// in an ablation, and property tests in this package check the equivalence
// on random DAGs.
package hb

import (
	"fmt"

	"webracer/internal/op"
)

// Graph is a happens-before DAG over operation IDs. The zero value is ready
// to use. Graph is not safe for concurrent use; the simulated browser is
// single-threaded, mirroring the web platform (§2.1).
type Graph struct {
	preds   [][]op.ID // preds[i] = direct predecessors of ID(i+1)
	succs   [][]op.ID
	closure []bitset // closure[i] = ancestor set of ID(i+1); nil if stale/unset
	edges   int

	// weak marks edges that order operations only because of the schedule
	// the run happened to observe (HB rule 9's dispatch serialization), not
	// because of a causal dependency. Weak edges are full members of the
	// happens-before relation — every oracle and detector over this graph
	// sees them — but the predictive partial order (NewPredictiveClocks)
	// drops them. Keyed a<<32|b; nil until the first WeakEdge.
	weak map[uint64]struct{}

	// Mirror, when set, receives every AddNode/Edge call — the hook the
	// browser uses to keep a LiveClocks oracle in lock-step with the
	// graph (experiment E4's online arm).
	Mirror *LiveClocks
}

// NewGraph returns an empty happens-before graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode makes room for the operation; it must be called (directly or via
// Edge's implicit growth) before querying the node. Nodes are cheap.
func (g *Graph) AddNode(id op.ID) {
	g.grow(id)
	if g.Mirror != nil {
		g.Mirror.AddNode(id)
	}
}

func (g *Graph) grow(id op.ID) {
	for len(g.preds) < int(id) {
		g.preds = append(g.preds, nil)
		g.succs = append(g.succs, nil)
		g.closure = append(g.closure, nil)
	}
}

// Edge records a ⇝ b (a happens before b). Self edges and duplicate edges
// are ignored. Adding an edge invalidates the memoized closures of b and
// its descendants, so interleaving edge insertion with queries stays
// correct (the browser mostly adds edges into operations that have not been
// queried yet, so invalidation is rarely triggered in practice).
func (g *Graph) Edge(a, b op.ID) {
	if a == b || a == op.None || b == op.None {
		return
	}
	g.grow(max(a, b))
	for _, p := range g.preds[b-1] {
		if p == a {
			// A causal rule asserting an edge previously added as weak
			// promotes it: the ordering is not schedule-induced after all.
			delete(g.weak, weakKey(a, b))
			return
		}
	}
	g.preds[b-1] = append(g.preds[b-1], a)
	g.succs[a-1] = append(g.succs[a-1], b)
	g.invalidate(b)
	g.edges++
	if g.Mirror != nil {
		g.Mirror.Edge(a, b)
	}
}

// WeakEdge records a ⇝ b like Edge but marks the edge as schedule-induced:
// the observed execution ordered a before b, yet a feasible execution of
// the same page could order them the other way. The full happens-before
// relation (HappensBefore, Concurrent, every oracle built by NewClocks or
// mirrored into LiveClocks) is exactly as if Edge had been called — weak
// edges only disappear in the predictive order of NewPredictiveClocks. An
// edge already present as strong stays strong.
func (g *Graph) WeakEdge(a, b op.ID) {
	if a == b || a == op.None || b == op.None {
		return
	}
	g.grow(max(a, b))
	for _, p := range g.preds[b-1] {
		if p == a {
			return
		}
	}
	g.preds[b-1] = append(g.preds[b-1], a)
	g.succs[a-1] = append(g.succs[a-1], b)
	g.invalidate(b)
	g.edges++
	if g.weak == nil {
		g.weak = map[uint64]struct{}{}
	}
	g.weak[weakKey(a, b)] = struct{}{}
	if g.Mirror != nil {
		g.Mirror.Edge(a, b)
	}
}

func weakKey(a, b op.ID) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// IsWeak reports whether the direct edge a ⇝ b exists and is weak
// (schedule-induced). False for strong edges and for absent edges.
func (g *Graph) IsWeak(a, b op.ID) bool {
	_, ok := g.weak[weakKey(a, b)]
	return ok
}

// WeakEdges reports the number of weak (schedule-induced) edges.
func (g *Graph) WeakEdges() int { return len(g.weak) }

// StrongPreds returns the direct predecessors of id reachable via strong
// (causal) edges only — the adjacency of the predictive partial order. When
// id has no weak in-edges the graph's own slice is returned (do not
// mutate); otherwise a filtered copy.
func (g *Graph) StrongPreds(id op.ID) []op.ID {
	ps := g.Preds(id)
	if len(g.weak) == 0 {
		return ps
	}
	hasWeak := false
	for _, p := range ps {
		if g.IsWeak(p, id) {
			hasWeak = true
			break
		}
	}
	if !hasWeak {
		return ps
	}
	out := make([]op.ID, 0, len(ps)-1)
	for _, p := range ps {
		if !g.IsWeak(p, id) {
			out = append(out, p)
		}
	}
	return out
}

// invalidate clears cached closures of id and all descendants. Closures are
// computed ancestors-first, so a node whose closure is nil has only
// nil-closure descendants; the walk prunes there.
func (g *Graph) invalidate(id op.ID) {
	if g.closure[id-1] == nil {
		return
	}
	g.closure[id-1] = nil
	for _, s := range g.succs[id-1] {
		g.invalidate(s)
	}
}

// Len reports the number of nodes the graph has room for.
func (g *Graph) Len() int { return len(g.preds) }

// Edges reports the number of distinct edges added.
func (g *Graph) Edges() int { return g.edges }

// MemoryBytes estimates the memory held by memoized ancestor closures —
// the quantity the vector-clock representation trades away (it grows with
// the square of the operation count; clocks grow with ops × chains).
func (g *Graph) MemoryBytes() int {
	total := 0
	for _, c := range g.closure {
		total += len(c) * 8
	}
	return total
}

// Preds returns the direct predecessors of id (shared slice; do not mutate).
func (g *Graph) Preds(id op.ID) []op.ID {
	if id == op.None || int(id) > len(g.preds) {
		return nil
	}
	return g.preds[id-1]
}

// Succs returns the direct successors of id (shared slice; do not mutate).
func (g *Graph) Succs(id op.ID) []op.ID {
	if id == op.None || int(id) > len(g.succs) {
		return nil
	}
	return g.succs[id-1]
}

// HappensBefore reports whether a ⇝ b in the transitive closure. An
// operation does not happen before itself.
func (g *Graph) HappensBefore(a, b op.ID) bool {
	if a == b || a == op.None || b == op.None {
		return false
	}
	if int(a) > len(g.preds) || int(b) > len(g.preds) {
		return false
	}
	return g.ancestors(b).has(uint(a - 1))
}

// Concurrent reports whether two operations can happen concurrently
// (CHC in §5.1): both are real operations and neither happens before the
// other. Concurrent(a, a) is false.
func (g *Graph) Concurrent(a, b op.ID) bool {
	if a == op.None || b == op.None || a == b {
		return false
	}
	return !g.HappensBefore(a, b) && !g.HappensBefore(b, a)
}

// ancestors returns (computing and memoizing if needed) the ancestor bitset
// of id. The recursion is converted to an explicit stack: pages can produce
// long parse chains that would overflow the goroutine stack.
func (g *Graph) ancestors(id op.ID) bitset {
	if c := g.closure[id-1]; c != nil {
		return c
	}
	words := (len(g.preds) + 63) / 64
	// Iterative post-order over the not-yet-memoized ancestors.
	type frame struct {
		id   op.ID
		next int // next predecessor index to visit
	}
	stack := []frame{{id: id}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ps := g.preds[f.id-1]
		advanced := false
		for f.next < len(ps) {
			p := ps[f.next]
			f.next++
			if g.closure[p-1] == nil {
				stack = append(stack, frame{id: p})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		// All predecessors memoized: build this node's closure.
		c := make(bitset, words)
		for _, p := range ps {
			c.set(uint(p - 1))
			c.or(g.closure[p-1])
		}
		g.closure[f.id-1] = c
		stack = stack[:len(stack)-1]
	}
	return g.closure[id-1]
}

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func (b bitset) set(i uint) { b[i/64] |= 1 << (i % 64) }

func (b bitset) has(i uint) bool {
	w := i / 64
	if int(w) >= len(b) {
		return false
	}
	return b[w]&(1<<(i%64)) != 0
}

// or folds other into b. other may be shorter than b (it was built when the
// graph was smaller); never longer, since ancestor IDs precede the node.
func (b bitset) or(other bitset) {
	if len(other) > len(b) {
		panic(fmt.Sprintf("hb: closure wider than graph (%d > %d words)", len(other), len(b)))
	}
	for i, w := range other {
		b[i] |= w
	}
}
