package hb

import (
	"fmt"

	"webracer/internal/op"
)

// NewPredictiveClocks builds the vector-clock view of g's *predictive*
// partial order P: the transitive closure of the strong (causal) edges
// only, with every weak (schedule-induced) edge dropped. P is a sound
// weakening of happens-before in the WCP/SDP tradition: every ordering in
// P holds in *all* feasible executions of the page, so two conflicting
// accesses that are P-concurrent race in some feasible schedule even when
// the observed schedule happened to order them. Since P ⊆ HB, every
// HB-concurrent pair is also P-concurrent — predictive detection can only
// add races, never lose one.
//
// Like NewClocks this is a snapshot of a finished graph; it verifies the
// topological-ID invariant and shares g's adjacency when the graph has no
// weak edges (P = HB then).
func NewPredictiveClocks(g *Graph) *Clocks {
	if g.WeakEdges() == 0 {
		return NewClocks(g)
	}
	n := g.Len()
	preds := make([][]op.ID, n)
	succs := make([][]op.ID, n)
	for i := 1; i <= n; i++ {
		id := op.ID(i)
		for _, p := range g.preds[i-1] {
			if p >= id {
				panic(fmt.Sprintf("hb: edge %d→%d violates topological ID order", p, id))
			}
			if g.IsWeak(p, id) {
				continue
			}
			preds[i-1] = append(preds[i-1], p)
			succs[p-1] = append(succs[p-1], id)
		}
	}
	c := &Clocks{}
	c.lc.preds = preds
	c.lc.succs = succs
	c.lc.pos = make([]int32, n)
	c.lc.clock = make([][]int32, n)
	c.lc.chain = make([]int32, n)
	for i := range c.lc.chain {
		c.lc.chain[i] = -1
	}
	return c
}
