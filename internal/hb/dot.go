package hb

import (
	"fmt"
	"io"
	"strings"

	"webracer/internal/op"
)

// WriteDOT renders the happens-before graph in Graphviz DOT form, one node
// per operation labeled with its kind and description. Synthetic barrier
// operations (anchors and joins) are drawn small and grey so the real
// operations stand out. Useful for debugging a page's ordering and for
// documentation:
//
//	webracer -dot page.dot ./mysite && dot -Tsvg page.dot > page.svg
func (g *Graph) WriteDOT(w io.Writer, ops *op.Table) error {
	if _, err := fmt.Fprintln(w, "digraph happensbefore {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [fontname=\"monospace\", fontsize=10];")
	for i := 1; i <= g.Len(); i++ {
		id := op.ID(i)
		if int(id) > ops.Len() {
			break
		}
		o := ops.Get(id)
		label := fmt.Sprintf("#%d %s\\n%s", o.ID, o.Kind, escapeDOT(o.Label))
		switch o.Kind {
		case op.KindAnchor, op.KindJoin:
			fmt.Fprintf(w, "  n%d [label=\"%s\", shape=point, color=grey, xlabel=\"%s\"];\n",
				id, escapeDOT(o.Kind.String()), escapeDOT(truncate(o.Label, 24)))
		case op.KindParse:
			fmt.Fprintf(w, "  n%d [label=\"%s\", shape=box, color=\"#888888\"];\n", id, label)
		case op.KindScript, op.KindHandler, op.KindTimeout, op.KindInterval, op.KindContinuation:
			fmt.Fprintf(w, "  n%d [label=\"%s\", shape=box, style=bold];\n", id, label)
		default:
			fmt.Fprintf(w, "  n%d [label=\"%s\", shape=ellipse];\n", id, label)
		}
	}
	for i := 1; i <= g.Len(); i++ {
		for _, s := range g.Succs(op.ID(i)) {
			fmt.Fprintf(w, "  n%d -> n%d;\n", i, s)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
