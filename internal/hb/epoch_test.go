package hb

import (
	"testing"

	"webracer/internal/op"
)

// TestPackEpochRoundTrip drives the packed encoding across the coordinate
// space boundaries: every valid epoch must survive the round trip, every
// invalid epoch must collapse to the zero word, and no valid epoch may
// alias the "empty" word.
func TestPackEpochRoundTrip(t *testing.T) {
	valid := []Epoch{
		{Chain: 0, Pos: 0},
		{Chain: 0, Pos: 1},
		{Chain: 1, Pos: 0},
		{Chain: 7, Pos: 42},
		{Chain: 1<<31 - 2, Pos: 1<<31 - 1}, // chain bias must not overflow
		{Chain: 0, Pos: 1<<31 - 1},
	}
	for _, e := range valid {
		w := PackEpoch(e)
		if w == 0 {
			t.Errorf("PackEpoch(%v) = 0, the empty word", e)
		}
		if got := UnpackEpoch(w); got != e {
			t.Errorf("round trip %v -> %#x -> %v", e, w, got)
		}
	}
	for _, e := range []Epoch{{Chain: -1}, {Chain: -2}, {Chain: -1, Pos: 99}} {
		if w := PackEpoch(e); w != 0 {
			t.Errorf("PackEpoch(%v) = %#x, want 0 for invalid epochs", e, w)
		}
	}
	if got := UnpackEpoch(0); got.Chain >= 0 {
		t.Errorf("UnpackEpoch(0) = %v, want an invalid epoch", got)
	}
}

// TestPackEpochMatchesOracle packs every coordinate a real engine hands
// out and checks the round trip against the oracle's own answer.
func TestPackEpochMatchesOracle(t *testing.T) {
	g := NewGraph()
	g.AddNode(12)
	g.Edge(1, 2)
	g.Edge(2, 3)
	g.Edge(1, 4)
	g.Edge(4, 5)
	g.Edge(3, 6)
	g.Edge(5, 6)
	c := NewClocks(g)
	for id := 1; id <= 12; id++ {
		e := c.Epoch(op.ID(id))
		if got := UnpackEpoch(PackEpoch(e)); got != e {
			t.Errorf("op %d: round trip %v -> %v", id, e, got)
		}
	}
}
