package hb

// Packed-epoch encoding: an Epoch squeezed into one uint64 shadow word so
// detectors can keep last-access coordinates in flat arrays with no boxing
// and a single-word "is there anything here yet" test.
//
// Layout: bits 63..32 hold Chain+1, bits 31..0 hold Pos. The +1 bias makes
// the zero word unambiguous — no valid epoch (Chain ≥ 0) ever packs to 0 —
// so flat shadow memory can use 0 to mean "empty / not fetched yet"
// without a separate presence bit. Invalid epochs (Chain < 0) have no
// packed form; PackEpoch returns 0 for them and callers fall back to the
// plain oracle, exactly as the unpacked fast paths do.

// PackEpoch encodes e into a single shadow word, or 0 when e is invalid
// (Chain < 0). The encoding is order-free: words are compared only after
// UnpackEpoch, never numerically.
func PackEpoch(e Epoch) uint64 {
	if e.Chain < 0 {
		return 0
	}
	return uint64(uint32(e.Chain+1))<<32 | uint64(uint32(e.Pos))
}

// UnpackEpoch decodes a shadow word produced by PackEpoch. The zero word
// decodes to the invalid epoch (Chain -1).
func UnpackEpoch(w uint64) Epoch {
	if w == 0 {
		return Epoch{Chain: -1}
	}
	return Epoch{Chain: int32(w>>32) - 1, Pos: int32(uint32(w))}
}
