package hb

import (
	"math/rand"
	"testing"

	"webracer/internal/op"
)

// diamond builds 1→2, 1→3, 2→4, 3→4 with the 2→3 cross edge weak: the
// shape of a dispatch-serialization ordering (3 only follows 2 because the
// observed schedule fired it second).
func diamondWeak() *Graph {
	g := NewGraph()
	for i := op.ID(1); i <= 4; i++ {
		g.AddNode(i)
	}
	g.Edge(1, 2)
	g.Edge(1, 3)
	g.WeakEdge(2, 3)
	g.Edge(2, 4)
	g.Edge(3, 4)
	return g
}

func TestWeakEdgeIsFullHB(t *testing.T) {
	g := diamondWeak()
	if !g.HappensBefore(2, 3) {
		t.Error("weak edge 2→3 missing from the full happens-before")
	}
	if g.Concurrent(2, 3) {
		t.Error("weakly ordered pair reported concurrent by the full relation")
	}
	c := NewClocks(g)
	if !c.HappensBefore(2, 3) || c.Concurrent(2, 3) {
		t.Error("vector-clock snapshot disagrees with the graph on a weak edge")
	}
	if g.Edges() != 5 {
		t.Errorf("Edges() = %d, want 5 (weak edges are edges)", g.Edges())
	}
	if g.WeakEdges() != 1 || !g.IsWeak(2, 3) || g.IsWeak(1, 2) {
		t.Error("weak-edge bookkeeping wrong")
	}
}

func TestWeakEdgeMirrorsToLiveClocks(t *testing.T) {
	g := NewGraph()
	live := NewLiveClocks()
	g.Mirror = live
	for i := op.ID(1); i <= 3; i++ {
		g.AddNode(i)
	}
	g.Edge(1, 2)
	g.WeakEdge(2, 3)
	if !live.HappensBefore(2, 3) {
		t.Error("weak edge not forwarded to the mirrored LiveClocks")
	}
}

func TestWeakEdgePromotion(t *testing.T) {
	g := NewGraph()
	for i := op.ID(1); i <= 2; i++ {
		g.AddNode(i)
	}
	g.WeakEdge(1, 2)
	if !g.IsWeak(1, 2) {
		t.Fatal("weak edge not recorded")
	}
	g.Edge(1, 2) // a causal rule asserts the same edge: promote
	if g.IsWeak(1, 2) {
		t.Error("causally asserted edge still marked weak")
	}
	if g.Edges() != 1 {
		t.Errorf("promotion duplicated the edge: Edges() = %d", g.Edges())
	}

	// The other order: an existing strong edge stays strong.
	g2 := NewGraph()
	g2.AddNode(2)
	g2.Edge(1, 2)
	g2.WeakEdge(1, 2)
	if g2.IsWeak(1, 2) {
		t.Error("strong edge demoted by a later weak assertion")
	}
	if g2.Edges() != 1 {
		t.Errorf("re-assertion duplicated the edge: Edges() = %d", g2.Edges())
	}
}

func TestStrongPreds(t *testing.T) {
	g := diamondWeak()
	if got := g.StrongPreds(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("StrongPreds(3) = %v, want [1]", got)
	}
	if got := g.StrongPreds(4); len(got) != 2 {
		t.Errorf("StrongPreds(4) = %v, want both strong preds", got)
	}
}

func TestPredictiveClocksDropWeakEdges(t *testing.T) {
	g := diamondWeak()
	p := NewPredictiveClocks(g)
	if p.HappensBefore(2, 3) || !p.Concurrent(2, 3) {
		t.Error("predictive order kept the weak edge")
	}
	// Strong orderings survive.
	for _, pair := range [][2]op.ID{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {1, 4}} {
		if !p.HappensBefore(pair[0], pair[1]) {
			t.Errorf("predictive order lost the strong ordering %d⇝%d", pair[0], pair[1])
		}
	}
}

func TestPredictiveClocksEqualFullHBWithoutWeakEdges(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		n := 30 + r.Intn(40)
		g.AddNode(op.ID(n))
		for b := 2; b <= n; b++ {
			for a := 1; a < b; a++ {
				if r.Float64() < 0.08 {
					g.Edge(op.ID(a), op.ID(b))
				}
			}
		}
		p := NewPredictiveClocks(g)
		for a := 1; a <= n; a++ {
			for b := 1; b <= n; b++ {
				if p.HappensBefore(op.ID(a), op.ID(b)) != g.HappensBefore(op.ID(a), op.ID(b)) {
					t.Fatalf("trial %d: predictive and full HB disagree on %d⇝%d with no weak edges",
						trial, a, b)
				}
			}
		}
	}
}

// TestPredictiveWeakensMonotonically checks P ⊆ HB on random DAGs with
// random weak edges: every P ordering is an HB ordering (never the other
// way), so P-concurrency contains HB-concurrency — the containment the
// race battery's predictive ⊇ pairwise assertion rests on.
func TestPredictiveWeakensMonotonically(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		n := 30 + r.Intn(40)
		g.AddNode(op.ID(n))
		for b := 2; b <= n; b++ {
			for a := 1; a < b; a++ {
				if r.Float64() < 0.08 {
					if r.Float64() < 0.3 {
						g.WeakEdge(op.ID(a), op.ID(b))
					} else {
						g.Edge(op.ID(a), op.ID(b))
					}
				}
			}
		}
		p := NewPredictiveClocks(g)
		for a := 1; a <= n; a++ {
			for b := 1; b <= n; b++ {
				if p.HappensBefore(op.ID(a), op.ID(b)) && !g.HappensBefore(op.ID(a), op.ID(b)) {
					t.Fatalf("trial %d: predictive order invented %d⇝%d", trial, a, b)
				}
			}
		}
	}
}
