package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webracer/internal/op"
)

func TestEmptyGraph(t *testing.T) {
	g := NewGraph()
	if g.HappensBefore(1, 2) {
		t.Error("empty graph claims ordering")
	}
	if g.Concurrent(op.None, 1) {
		t.Error("⊥ must not be concurrent with anything (CHC definition)")
	}
}

func TestDirectEdge(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	if !g.HappensBefore(1, 2) {
		t.Error("1 ⇝ 2 missing")
	}
	if g.HappensBefore(2, 1) {
		t.Error("2 ⇝ 1 must not hold")
	}
	if g.Concurrent(1, 2) {
		t.Error("ordered ops reported concurrent")
	}
}

func TestTransitivity(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	g.Edge(2, 3)
	g.Edge(3, 4)
	if !g.HappensBefore(1, 4) {
		t.Error("transitive closure missing 1 ⇝ 4")
	}
	if !g.HappensBefore(2, 4) || !g.HappensBefore(1, 3) {
		t.Error("intermediate transitive pairs missing")
	}
}

func TestDiamond(t *testing.T) {
	// 1 → {2,3} → 4; 2 and 3 concurrent.
	g := NewGraph()
	g.Edge(1, 2)
	g.Edge(1, 3)
	g.Edge(2, 4)
	g.Edge(3, 4)
	if !g.Concurrent(2, 3) {
		t.Error("diamond branches must be concurrent")
	}
	if !g.HappensBefore(1, 4) {
		t.Error("1 ⇝ 4 via either branch")
	}
}

func TestIrreflexive(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	g.Edge(1, 1) // ignored
	if g.HappensBefore(1, 1) {
		t.Error("op ordered before itself")
	}
	if g.Concurrent(1, 1) {
		t.Error("CHC(a, a) must be false")
	}
}

func TestDuplicateEdges(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	g.Edge(1, 2)
	g.Edge(1, 2)
	if g.Edges() != 1 {
		t.Errorf("duplicate edges counted: %d", g.Edges())
	}
}

func TestNoneNeverOrdered(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	if g.HappensBefore(op.None, 1) || g.HappensBefore(1, op.None) {
		t.Error("⊥ participates in ordering")
	}
}

// TestInterleavedQueriesAndEdges checks that memoized closures survive
// edge insertion after queries (the invalidation path).
func TestInterleavedQueriesAndEdges(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	if !g.HappensBefore(1, 2) { // memoizes closure(2)
		t.Fatal("1 ⇝ 2")
	}
	g.Edge(2, 3)
	if !g.HappensBefore(1, 3) { // closure(3) builds on closure(2)
		t.Fatal("1 ⇝ 3")
	}
	// New edge into 2 must invalidate 2 and 3.
	g.Edge(4, 2)
	if !g.HappensBefore(4, 3) {
		t.Error("stale closure: 4 ⇝ 3 missing after late edge")
	}
	if !g.HappensBefore(4, 2) {
		t.Error("4 ⇝ 2 missing")
	}
}

// TestLongChainNoStackOverflow checks the iterative closure computation on
// a chain long enough to blow a recursive implementation's stack. (The
// closure representation is O(n²/64) bits, so the chain is kept moderate.)
func TestLongChainNoStackOverflow(t *testing.T) {
	g := NewGraph()
	const n = 20_000
	for i := op.ID(1); i < n; i++ {
		g.Edge(i, i+1)
	}
	if !g.HappensBefore(1, n) {
		t.Error("long chain closure wrong")
	}
}

// randomDAG builds a random DAG with edges respecting ID order (the
// registration invariant the browser maintains).
func randomDAG(r *rand.Rand, n int, density float64) *Graph {
	g := NewGraph()
	g.AddNode(op.ID(n))
	for b := 2; b <= n; b++ {
		for a := 1; a < b; a++ {
			if r.Float64() < density {
				g.Edge(op.ID(a), op.ID(b))
			}
		}
	}
	return g
}

// reachSlow is an independent reachability oracle (BFS).
func reachSlow(g *Graph, a, b op.ID) bool {
	if a == b {
		return false
	}
	seen := map[op.ID]bool{}
	queue := []op.ID{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, s := range g.Succs(x) {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// TestGraphMatchesBFS is a property test: the memoized bitset closure
// answers exactly like naive BFS on random DAGs.
func TestGraphMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		g := randomDAG(r, n, 0.15)
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if g.HappensBefore(a, b) != reachSlow(g, a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClocksEquivalence is the key property: the vector-clock
// representation answers exactly the same relation as the graph, on random
// DAGs of varying density.
func TestClocksEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		g := randomDAG(r, n, 0.1+r.Float64()*0.3)
		c := NewClocks(g)
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if g.HappensBefore(a, b) != c.HappensBefore(a, b) {
					return false
				}
				if g.Concurrent(a, b) != c.Concurrent(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLiveClocksEquivalence: the online vector-clock engine answers the
// same relation as the graph when fed the same node/edge stream, including
// under interleaved queries (which trigger finalization) and late edges
// (which trigger invalidation).
func TestLiveClocksEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		g := NewGraph()
		live := NewLiveClocks()
		g.Mirror = live
		g.AddNode(op.ID(n))
		for b := 2; b <= n; b++ {
			for a := 1; a < b; a++ {
				if r.Float64() < 0.15 {
					g.Edge(op.ID(a), op.ID(b))
				}
			}
			// Interleave queries to force early finalization.
			if r.Intn(3) == 0 {
				x := op.ID(r.Intn(b) + 1)
				y := op.ID(r.Intn(b) + 1)
				if g.HappensBefore(x, y) != live.HappensBefore(x, y) {
					return false
				}
			}
		}
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if g.HappensBefore(a, b) != live.HappensBefore(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLiveClocksLateEdgeInvalidation: an edge arriving after a node has
// been finalized by a query must correct subsequent answers (the edge still
// respects registration order: lower ID → higher ID).
func TestLiveClocksLateEdgeInvalidation(t *testing.T) {
	c := NewLiveClocks()
	c.Edge(1, 4)
	c.Edge(4, 5)
	c.AddNode(5)
	if !c.HappensBefore(1, 5) { // finalizes 4 and 5
		t.Fatal("1 ⇝ 5 missing")
	}
	if c.HappensBefore(3, 5) {
		t.Fatal("3 ⇝ 5 invented")
	}
	c.Edge(3, 4) // late edge into finalized 4
	if !c.HappensBefore(3, 4) {
		t.Error("3 ⇝ 4 missing after late edge")
	}
	if !c.HappensBefore(3, 5) {
		t.Error("stale clocks: 3 ⇝ 5 missing after invalidation")
	}
	if c.HappensBefore(5, 3) || c.HappensBefore(4, 3) {
		t.Error("reverse ordering invented")
	}
}

// TestLiveClocksRejectsBackwardEdge: edges violating registration order
// are a programming error and panic loudly.
func TestLiveClocksRejectsBackwardEdge(t *testing.T) {
	c := NewLiveClocks()
	c.Edge(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("backward edge did not panic at finalization")
		}
	}()
	c.HappensBefore(4, 2)
}

// TestTransitivityProperty: a ⇝ b ∧ b ⇝ c ⇒ a ⇝ c on random DAGs.
func TestTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		g := randomDAG(r, n, 0.2)
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if !g.HappensBefore(a, b) {
					continue
				}
				for c := op.ID(1); int(c) <= n; c++ {
					if g.HappensBefore(b, c) && !g.HappensBefore(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAntisymmetry: a ⇝ b ⇒ ¬(b ⇝ a) (the DAG construction forbids
// cycles by ID ordering).
func TestAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		g := randomDAG(r, n, 0.25)
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if g.HappensBefore(a, b) && g.HappensBefore(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClocksChains(t *testing.T) {
	// A pure chain decomposes into one chain; a fan into many.
	g := NewGraph()
	for i := op.ID(1); i < 10; i++ {
		g.Edge(i, i+1)
	}
	c := NewClocks(g)
	if got := c.Chains(); got != 1 {
		t.Errorf("chain graph decomposed into %d chains, want 1", got)
	}
	g2 := NewGraph()
	for i := op.ID(2); i <= 8; i++ {
		g2.Edge(1, i)
	}
	c2 := NewClocks(g2)
	if got := c2.Chains(); got != 7 {
		t.Errorf("fan decomposed into %d chains, want 7", got)
	}
}

// TestDenseClocksEquivalence: the pre-epoch eager representation (the E4
// baseline) answers exactly the same relation as the graph.
func TestDenseClocksEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		g := randomDAG(r, n, 0.1+r.Float64()*0.3)
		c := NewDenseClocks(g)
		for a := op.ID(1); int(a) <= n; a++ {
			for b := op.ID(1); int(b) <= n; b++ {
				if g.HappensBefore(a, b) != c.HappensBefore(a, b) {
					return false
				}
				if g.Concurrent(a, b) != c.Concurrent(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEpochOrderingProperty pins the EpochOracle contract on random DAGs:
// OrderedEpoch(Epoch(a), b) ≡ HappensBefore(a, b) ∨ a = b, for both the
// snapshot and the incremental engine.
func TestEpochOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		g := randomDAG(r, n, 0.1+r.Float64()*0.3)
		for _, eo := range []EpochOracle{NewClocks(g), liveFrom(g, n)} {
			for a := op.ID(1); int(a) <= n; a++ {
				ea := eo.Epoch(a)
				if ea.Chain < 0 {
					return false // every known op gets a valid epoch
				}
				for b := op.ID(1); int(b) <= n; b++ {
					want := g.HappensBefore(a, b) || a == b
					if eo.OrderedEpoch(ea, b) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// liveFrom replays g's structure into a fresh incremental engine.
func liveFrom(g *Graph, n int) *LiveClocks {
	live := NewLiveClocks()
	live.AddNode(op.ID(n))
	for b := 1; b <= n; b++ {
		for _, a := range g.Preds(op.ID(b)) {
			live.Edge(a, op.ID(b))
		}
	}
	return live
}

func TestEpochInvalidForUnknownOps(t *testing.T) {
	g := NewGraph()
	g.Edge(1, 2)
	c := NewClocks(g)
	if e := c.Epoch(op.None); e.Chain >= 0 {
		t.Errorf("⊥ got valid epoch %v", e)
	}
	if e := c.Epoch(99); e.Chain >= 0 {
		t.Errorf("out-of-range op got valid epoch %v", e)
	}
	if c.OrderedEpoch(Epoch{Chain: -1}, 2) {
		t.Error("invalid epoch claims ordering")
	}
}

// TestClocksLaziness: same-chain queries must never materialize a clock
// vector; the first cross-chain query does.
func TestClocksLaziness(t *testing.T) {
	g := NewGraph()
	for i := op.ID(1); i < 50; i++ {
		g.Edge(i, i+1) // one long chain
	}
	g.AddNode(52) // 51, 52 isolated: their own chains
	g.Edge(51, 52)
	c := NewClocks(g)
	for a := op.ID(1); a < 50; a++ {
		if !c.HappensBefore(a, a+1) || c.Concurrent(a, a+1) {
			t.Fatalf("chain ordering wrong at %d", a)
		}
	}
	if got := c.MaterializedClocks(); got != 0 {
		t.Errorf("same-chain queries materialized %d clocks, want 0", got)
	}
	if !c.Concurrent(3, 51) { // crosses chains
		t.Error("isolated chain not concurrent with main chain")
	}
	if got := c.MaterializedClocks(); got == 0 {
		t.Error("cross-chain query materialized no clocks")
	}
}

// TestLiveClocksGenBumpsOnInvalidation: cached epochs are guarded by Gen;
// a late edge into finalized state must change it.
func TestLiveClocksGenBumpsOnInvalidation(t *testing.T) {
	c := NewLiveClocks()
	c.Edge(1, 4)
	c.Edge(4, 5)
	g0 := c.Gen()
	if c.Epoch(5).Chain < 0 { // finalizes 4, 5
		t.Fatal("epoch of 5 invalid")
	}
	if c.Gen() != g0 {
		t.Fatal("finalization alone must not bump Gen")
	}
	c.Edge(3, 4) // invalidates 4 and 5
	if c.Gen() == g0 {
		t.Error("late edge into finalized op did not bump Gen")
	}
	if !c.HappensBefore(3, 5) {
		t.Error("3 ⇝ 5 missing after invalidation")
	}
}

func TestClocksTopologicalViolation(t *testing.T) {
	g := NewGraph()
	g.Edge(5, 2) // violates registration order
	defer func() {
		if recover() == nil {
			t.Error("NewClocks accepted an edge violating topological ID order")
		}
	}()
	NewClocks(g)
}

func BenchmarkGraphQuery(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := randomDAG(r, 2000, 0.005)
	// Warm the closures.
	for i := op.ID(1); i <= 2000; i += 17 {
		g.HappensBefore(1, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := op.ID(r.Intn(2000) + 1)
		c := op.ID(r.Intn(2000) + 1)
		g.Concurrent(a, c)
	}
}

func BenchmarkClocksQuery(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := randomDAG(r, 2000, 0.005)
	c := NewClocks(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := op.ID(r.Intn(2000) + 1)
		d := op.ID(r.Intn(2000) + 1)
		c.Concurrent(a, d)
	}
}
