package hb

import (
	"fmt"

	"webracer/internal/op"
)

// Oracle answers can-happen-concurrently queries. Both Graph and Clocks
// implement it; race detectors are written against the interface so the two
// representations can be swapped (experiment E4).
type Oracle interface {
	// Concurrent reports CHC(a, b) per §5.1: a and b are distinct real
	// operations and neither happens before the other.
	Concurrent(a, b op.ID) bool
	// HappensBefore reports a ⇝ b in the transitive closure.
	HappensBefore(a, b op.ID) bool
}

var (
	_ Oracle = (*Graph)(nil)
	_ Oracle = (*Clocks)(nil)
)

// Clocks is a vector-clock view of a happens-before graph — the "more
// efficient vector-clock representation" the paper plans as future work
// (§5.2.1). The DAG is decomposed greedily into chains (an operation joins
// the chain of one of its predecessors when that predecessor is still the
// chain's tail, else it starts a new chain); each operation then carries a
// clock with one entry per chain: the highest position on that chain known
// to happen before (or be) the operation. a ⇝ b iff b's clock covers a's
// position on a's chain.
//
// Clocks is built once from a finished Graph; it answers queries in O(1)
// after O(n·c) construction for c chains.
type Clocks struct {
	chain []int32   // chain index of ID(i+1)
	pos   []int32   // position of ID(i+1) within its chain
	clock [][]int32 // clock[i][c] = max position on chain c ordered ≤ ID(i+1)
	n     int
}

// NewClocks builds the vector-clock representation of g. Operation IDs must
// form a DAG in which every edge a→b satisfies the registration invariant
// used throughout this codebase (predecessors were registered before their
// successors began), which makes increasing-ID order a topological order.
// NewClocks verifies that assumption and panics otherwise; the property
// tests construct adversarial DAGs through the same front door.
func NewClocks(g *Graph) *Clocks {
	n := g.Len()
	c := &Clocks{
		chain: make([]int32, n),
		pos:   make([]int32, n),
		clock: make([][]int32, n),
		n:     n,
	}
	chainTail := []op.ID{} // tail op of each chain
	for i := 0; i < n; i++ {
		id := op.ID(i + 1)
		preds := g.Preds(id)
		// Pick a chain: reuse a predecessor's chain if that
		// predecessor is still its chain's tail.
		ci := int32(-1)
		for _, p := range preds {
			if p >= id {
				panic(fmt.Sprintf("hb: edge %d→%d violates topological ID order", p, id))
			}
			pc := c.chain[p-1]
			if chainTail[pc] == p {
				ci = pc
				break
			}
		}
		if ci < 0 {
			ci = int32(len(chainTail))
			chainTail = append(chainTail, op.None)
		}
		c.chain[i] = ci
		if chainTail[ci] == op.None {
			c.pos[i] = 0
		} else {
			c.pos[i] = c.pos[chainTail[ci]-1] + 1
		}
		chainTail[ci] = id
		// Clock = join of predecessor clocks, then tick own chain.
		clk := make([]int32, len(chainTail))
		for j := range clk {
			clk[j] = -1
		}
		for _, p := range preds {
			for j, v := range c.clock[p-1] {
				if v > clk[j] {
					clk[j] = v
				}
			}
		}
		clk[ci] = c.pos[i]
		c.clock[i] = clk
	}
	return c
}

// Chains reports how many chains the decomposition produced — a measure of
// the execution's logical concurrency width.
func (c *Clocks) Chains() int {
	if c.n == 0 {
		return 0
	}
	return len(c.clock[c.n-1])
}

// HappensBefore reports a ⇝ b.
func (c *Clocks) HappensBefore(a, b op.ID) bool {
	if a == b || a == op.None || b == op.None || int(a) > c.n || int(b) > c.n {
		return false
	}
	ca := c.chain[a-1]
	clk := c.clock[b-1]
	return int(ca) < len(clk) && clk[ca] >= c.pos[a-1]
}

// Concurrent reports CHC(a, b).
func (c *Clocks) Concurrent(a, b op.ID) bool {
	if a == op.None || b == op.None || a == b {
		return false
	}
	return !c.HappensBefore(a, b) && !c.HappensBefore(b, a)
}
