package hb

import (
	"fmt"

	"webracer/internal/op"
)

// Oracle answers can-happen-concurrently queries. Graph, Clocks and
// LiveClocks implement it; race detectors are written against the interface
// so the representations can be swapped (experiment E4).
type Oracle interface {
	// Concurrent reports CHC(a, b) per §5.1: a and b are distinct real
	// operations and neither happens before the other.
	Concurrent(a, b op.ID) bool
	// HappensBefore reports a ⇝ b in the transitive closure.
	HappensBefore(a, b op.ID) bool
}

var (
	_ Oracle = (*Graph)(nil)
	_ Oracle = (*Clocks)(nil)
	_ Oracle = (*DenseClocks)(nil)
)

// Epoch is an operation's coordinate in the chain decomposition: the pair
// chain@position, the FastTrack-style compressed form of "everything this
// operation's own task has done so far". A Chain of -1 is the invalid
// epoch (unknown operation); epoch-based fast paths must fall back to the
// plain oracle for it.
//
// Two facts make epochs powerful: operations on the same chain are totally
// ordered by Pos (a chain is a path in the DAG), and e ⇝ b for a
// cross-chain b is a single clock lookup. Detectors exploit both to answer
// the common same-task/already-ordered access in O(1) without a vector in
// sight.
type Epoch struct {
	Chain int32
	Pos   int32
}

func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Chain, e.Pos) }

// EpochOracle is an Oracle that additionally exposes the epoch
// representation. Both vector-clock engines implement it; Graph does not,
// so detectors feature-test with a type assertion and keep their plain
// path for graph oracles.
type EpochOracle interface {
	Oracle
	// Epoch returns id's chain@position coordinate, finalizing it lazily.
	Epoch(id op.ID) Epoch
	// OrderedEpoch reports that the operation at e happens before (or is)
	// b. With e = Epoch(a), OrderedEpoch(e, b) ≡ HappensBefore(a, b) ∨ a = b.
	OrderedEpoch(e Epoch, b op.ID) bool
	// Gen is bumped whenever finalized coordinates may have been
	// reassigned (late-edge invalidation). Epochs cached across calls are
	// only valid while Gen is unchanged; ordering conclusions themselves
	// stay valid forever (happens-before only grows).
	Gen() uint32
}

var (
	_ EpochOracle = (*Clocks)(nil)
	_ EpochOracle = (*LiveClocks)(nil)
)

// Clocks is the vector-clock view of a *finished* happens-before graph —
// the "more efficient vector-clock representation" the paper plans as
// future work (§5.2.1), in its epoch-optimized form. Construction is O(n)
// bookkeeping: chain assignment and clock materialization are inherited
// lazily from the LiveClocks engine, so a replay that only ever compares
// same-chain operations never allocates a single clock vector. Compare
// DenseClocks, the pre-epoch eager form kept as the E4 ablation baseline.
type Clocks struct {
	lc LiveClocks
}

// NewClocks builds the epoch-optimized vector-clock representation of g.
// Operation IDs must form a DAG in which every edge a→b satisfies the
// registration invariant used throughout this codebase (predecessors were
// registered before their successors began), which makes increasing-ID
// order a topological order. NewClocks verifies that assumption eagerly and
// panics otherwise; the property tests construct adversarial DAGs through
// the same front door. The snapshot shares g's adjacency (it never adds
// edges of its own).
func NewClocks(g *Graph) *Clocks {
	n := g.Len()
	c := &Clocks{}
	for i := 1; i <= n; i++ {
		for _, p := range g.preds[i-1] {
			if p >= op.ID(i) {
				panic(fmt.Sprintf("hb: edge %d→%d violates topological ID order", p, i))
			}
		}
	}
	// A snapshot adds no nodes or edges of its own, so the adjacency lists
	// are shared with the graph rather than copied.
	c.lc.preds = g.preds[:n:n]
	c.lc.succs = g.succs[:n:n]
	c.lc.pos = make([]int32, n)
	c.lc.clock = make([][]int32, n)
	c.lc.chain = make([]int32, n)
	for i := range c.lc.chain {
		c.lc.chain[i] = -1
	}
	return c
}

// Chains reports how many chains the decomposition produces — a measure of
// the execution's logical concurrency width. It finalizes every epoch (in
// ID order, the same greedy order the eager construction used) but
// materializes no clocks.
func (c *Clocks) Chains() int {
	for i := 1; i <= len(c.lc.preds); i++ {
		c.lc.finalizeEpoch(op.ID(i))
	}
	return len(c.lc.tails)
}

// HappensBefore reports a ⇝ b.
func (c *Clocks) HappensBefore(a, b op.ID) bool { return c.lc.HappensBefore(a, b) }

// Concurrent reports CHC(a, b).
func (c *Clocks) Concurrent(a, b op.ID) bool { return c.lc.Concurrent(a, b) }

// Epoch implements EpochOracle.
func (c *Clocks) Epoch(id op.ID) Epoch { return c.lc.Epoch(id) }

// OrderedEpoch implements EpochOracle.
func (c *Clocks) OrderedEpoch(e Epoch, b op.ID) bool { return c.lc.OrderedEpoch(e, b) }

// Gen implements EpochOracle. A snapshot never invalidates, so cached
// epochs stay valid for its whole lifetime.
func (c *Clocks) Gen() uint32 { return c.lc.Gen() }

// MaterializedClocks reports how many full clock vectors queries have
// forced so far (zero for purely same-chain workloads).
func (c *Clocks) MaterializedClocks() int { return c.lc.MaterializedClocks() }

// MemoryBytes estimates the memory held by materialized clocks.
func (c *Clocks) MemoryBytes() int { return c.lc.MemoryBytes() }

// DenseClocks is the pre-epoch vector-clock representation: one eagerly
// built full-width clock per operation, O(n·c) construction with a fresh
// allocation per join. It answers exactly the same relation as Clocks and
// exists as the baseline arm of the E4 ablation (and BenchmarkReplayVC),
// quantifying what the epoch fast path buys.
type DenseClocks struct {
	chain []int32   // chain index of ID(i+1)
	pos   []int32   // position of ID(i+1) within its chain
	clock [][]int32 // clock[i][c] = max position on chain c ordered ≤ ID(i+1)
	n     int
}

// NewDenseClocks builds the dense representation of g (see NewClocks for
// the topological-order requirement).
func NewDenseClocks(g *Graph) *DenseClocks {
	n := g.Len()
	c := &DenseClocks{
		chain: make([]int32, n),
		pos:   make([]int32, n),
		clock: make([][]int32, n),
		n:     n,
	}
	chainTail := []op.ID{} // tail op of each chain
	for i := 0; i < n; i++ {
		id := op.ID(i + 1)
		preds := g.Preds(id)
		// Pick a chain: reuse a predecessor's chain if that
		// predecessor is still its chain's tail.
		ci := int32(-1)
		for _, p := range preds {
			if p >= id {
				panic(fmt.Sprintf("hb: edge %d→%d violates topological ID order", p, id))
			}
			pc := c.chain[p-1]
			if chainTail[pc] == p {
				ci = pc
				break
			}
		}
		if ci < 0 {
			ci = int32(len(chainTail))
			chainTail = append(chainTail, op.None)
		}
		c.chain[i] = ci
		if chainTail[ci] == op.None {
			c.pos[i] = 0
		} else {
			c.pos[i] = c.pos[chainTail[ci]-1] + 1
		}
		chainTail[ci] = id
		// Clock = join of predecessor clocks, then tick own chain.
		clk := make([]int32, len(chainTail))
		for j := range clk {
			clk[j] = -1
		}
		for _, p := range preds {
			for j, v := range c.clock[p-1] {
				if v > clk[j] {
					clk[j] = v
				}
			}
		}
		clk[ci] = c.pos[i]
		c.clock[i] = clk
	}
	return c
}

// Chains reports how many chains the decomposition produced.
func (c *DenseClocks) Chains() int {
	if c.n == 0 {
		return 0
	}
	return len(c.clock[c.n-1])
}

// HappensBefore reports a ⇝ b.
func (c *DenseClocks) HappensBefore(a, b op.ID) bool {
	if a == b || a == op.None || b == op.None || int(a) > c.n || int(b) > c.n {
		return false
	}
	ca := c.chain[a-1]
	clk := c.clock[b-1]
	return int(ca) < len(clk) && clk[ca] >= c.pos[a-1]
}

// Concurrent reports CHC(a, b).
func (c *DenseClocks) Concurrent(a, b op.ID) bool {
	if a == op.None || b == op.None || a == b {
		return false
	}
	return !c.HappensBefore(a, b) && !c.HappensBefore(b, a)
}

// MemoryBytes estimates the memory held by the eager clock table.
func (c *DenseClocks) MemoryBytes() int {
	total := 0
	for _, clk := range c.clock {
		total += len(clk) * 4
	}
	return total
}
