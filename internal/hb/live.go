package hb

import (
	"fmt"

	"webracer/internal/op"
)

// LiveClocks is an incremental vector-clock happens-before engine usable as
// the browser's oracle *during* detection — the production form of the
// "more efficient vector-clock representation" the paper plans (§5.2.1).
// Where Graph memoizes O(n/64)-word ancestor bitsets per operation,
// LiveClocks stores one O(chains)-entry clock per operation: memory scales
// with the execution's logical width instead of its length.
//
// Operations and edges arrive incrementally. An operation's clock is
// finalized lazily at its first query, joining its predecessors' clocks;
// the browser's registration discipline (all in-edges of an operation are
// recorded before the operation begins executing, and only executing
// operations perform memory accesses) guarantees predecessors are final by
// then. Edges into an already-finalized operation invalidate it and its
// finalized descendants, mirroring Graph's behaviour, so the two engines
// are interchangeable (package tests check equivalence on random DAGs).
type LiveClocks struct {
	preds [][]op.ID
	succs [][]op.ID
	chain []int32
	pos   []int32
	clock [][]int32 // nil until finalized
	tails []op.ID   // chain tails
}

// NewLiveClocks returns an empty incremental engine.
func NewLiveClocks() *LiveClocks { return &LiveClocks{} }

var _ Oracle = (*LiveClocks)(nil)

// AddNode makes room for id.
func (c *LiveClocks) AddNode(id op.ID) { c.grow(id) }

func (c *LiveClocks) grow(id op.ID) {
	for len(c.preds) < int(id) {
		c.preds = append(c.preds, nil)
		c.succs = append(c.succs, nil)
		c.chain = append(c.chain, -1)
		c.pos = append(c.pos, 0)
		c.clock = append(c.clock, nil)
	}
}

// Edge records a ⇝ b.
func (c *LiveClocks) Edge(a, b op.ID) {
	if a == b || a == op.None || b == op.None {
		return
	}
	c.grow(max(a, b))
	for _, p := range c.preds[b-1] {
		if p == a {
			return
		}
	}
	c.preds[b-1] = append(c.preds[b-1], a)
	c.succs[a-1] = append(c.succs[a-1], b)
	c.invalidate(b)
}

// invalidate clears finalized state of id and finalized descendants.
// Chain assignments are rolled back conservatively by truncating nothing:
// a re-finalized node simply starts a fresh chain, which costs clock width
// but preserves correctness.
func (c *LiveClocks) invalidate(id op.ID) {
	if c.clock[id-1] == nil {
		return
	}
	c.clock[id-1] = nil
	c.chain[id-1] = -1
	for _, s := range c.succs[id-1] {
		c.invalidate(s)
	}
}

// finalize assigns id's chain and clock (iteratively, ancestors first).
func (c *LiveClocks) finalize(id op.ID) {
	if c.clock[id-1] != nil {
		return
	}
	type frame struct {
		id   op.ID
		next int
	}
	stack := []frame{{id: id}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ps := c.preds[f.id-1]
		descended := false
		for f.next < len(ps) {
			p := ps[f.next]
			f.next++
			if p >= f.id {
				panic(fmt.Sprintf("hb: live edge %d→%d violates topological ID order", p, f.id))
			}
			if c.clock[p-1] == nil {
				stack = append(stack, frame{id: p})
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		c.assign(f.id)
		stack = stack[:len(stack)-1]
	}
}

// assign computes chain membership and the joined clock for id; all
// predecessors are finalized.
func (c *LiveClocks) assign(id op.ID) {
	i := id - 1
	ci := int32(-1)
	for _, p := range c.preds[i] {
		pc := c.chain[p-1]
		if pc >= 0 && c.tails[pc] == p {
			ci = pc
			break
		}
	}
	if ci < 0 {
		ci = int32(len(c.tails))
		c.tails = append(c.tails, op.None)
	}
	c.chain[i] = ci
	if c.tails[ci] == op.None {
		c.pos[i] = 0
	} else {
		c.pos[i] = c.pos[c.tails[ci]-1] + 1
	}
	c.tails[ci] = id
	clk := make([]int32, len(c.tails))
	for j := range clk {
		clk[j] = -1
	}
	for _, p := range c.preds[i] {
		for j, v := range c.clock[p-1] {
			if v > clk[j] {
				clk[j] = v
			}
		}
	}
	clk[ci] = c.pos[i]
	c.clock[i] = clk
}

// HappensBefore reports a ⇝ b.
func (c *LiveClocks) HappensBefore(a, b op.ID) bool {
	if a == b || a == op.None || b == op.None ||
		int(a) > len(c.preds) || int(b) > len(c.preds) {
		return false
	}
	c.finalize(a)
	c.finalize(b)
	ca := c.chain[a-1]
	clk := c.clock[b-1]
	return int(ca) < len(clk) && clk[ca] >= c.pos[a-1]
}

// Concurrent reports CHC(a, b).
func (c *LiveClocks) Concurrent(a, b op.ID) bool {
	if a == op.None || b == op.None || a == b {
		return false
	}
	return !c.HappensBefore(a, b) && !c.HappensBefore(b, a)
}

// Chains reports the current chain count (clock width).
func (c *LiveClocks) Chains() int { return len(c.tails) }

// MemoryBytes estimates the memory held by finalized clocks.
func (c *LiveClocks) MemoryBytes() int {
	total := 0
	for _, clk := range c.clock {
		total += len(clk) * 4
	}
	return total
}
