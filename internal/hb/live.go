package hb

import (
	"fmt"

	"webracer/internal/op"
)

// LiveClocks is an incremental vector-clock happens-before engine usable as
// the browser's oracle *during* detection — the production form of the
// "more efficient vector-clock representation" the paper plans (§5.2.1).
// Where Graph memoizes O(n/64)-word ancestor bitsets per operation,
// LiveClocks stores at most one O(chains)-entry clock per operation: memory
// scales with the execution's logical width instead of its length.
//
// The engine is epoch-optimized in the FastTrack style. Every operation is
// assigned an *epoch* — a (chain, position) pair over the greedy chain
// decomposition of the DAG — lazily at its first query. Epoch assignment
// touches only the operation's direct predecessors and allocates nothing.
// Full clock vectors are materialized only when a query actually crosses
// chains (a location shared between tasks); same-chain queries, the common
// case for a location accessed by one task, are answered from epochs alone
// in O(1). Materialized clocks are carved out of a shared int32 slab, and
// both chain ids and operation ids are dense small ints used directly as
// array indices, so clock joins perform no per-operation map work and no
// per-operation GC allocation.
//
// Operations and edges arrive incrementally. The browser's registration
// discipline (all in-edges of an operation are recorded before the
// operation begins executing, and only executing operations perform memory
// accesses) guarantees predecessors are final by first query. Edges into an
// already-finalized operation invalidate it and its finalized descendants,
// mirroring Graph's behaviour, so the two engines are interchangeable
// (package tests check equivalence on random DAGs). Every invalidation
// bumps Gen, telling epoch-caching clients their cached coordinates are
// stale.
type LiveClocks struct {
	preds [][]op.ID
	succs [][]op.ID
	chain []int32   // chain of ID(i+1); -1 until the epoch is finalized
	pos   []int32   // position within the chain (valid when chain >= 0)
	clock [][]int32 // nil until materialized by a cross-chain query
	tails []op.ID   // chain tails

	gen        uint32  // bumped on every invalidation of finalized state
	arena      []int32 // slab backing materialized clocks
	mats       int     // number of clocks joined, not shared (laziness metric)
	allocWords int     // int32 words handed out by alloc
	fstack     []frame // reusable traversal stack (no per-query allocation)
}

// frame is one entry of the iterative ancestors-first traversals.
type frame struct {
	id   op.ID
	next int
}

// NewLiveClocks returns an empty incremental engine.
func NewLiveClocks() *LiveClocks { return &LiveClocks{} }

var (
	_ Oracle      = (*LiveClocks)(nil)
	_ EpochOracle = (*LiveClocks)(nil)
)

// AddNode makes room for id.
func (c *LiveClocks) AddNode(id op.ID) { c.grow(id) }

func (c *LiveClocks) grow(id op.ID) {
	n := int(id)
	if len(c.preds) >= n {
		return
	}
	c.preds = append(c.preds, make([][]op.ID, n-len(c.preds))...)
	c.succs = append(c.succs, make([][]op.ID, n-len(c.succs))...)
	c.pos = append(c.pos, make([]int32, n-len(c.pos))...)
	c.clock = append(c.clock, make([][]int32, n-len(c.clock))...)
	for len(c.chain) < n {
		c.chain = append(c.chain, -1)
	}
}

// Edge records a ⇝ b.
func (c *LiveClocks) Edge(a, b op.ID) {
	if a == b || a == op.None || b == op.None {
		return
	}
	c.grow(max(a, b))
	for _, p := range c.preds[b-1] {
		if p == a {
			return
		}
	}
	c.preds[b-1] = append(c.preds[b-1], a)
	c.succs[a-1] = append(c.succs[a-1], b)
	c.invalidate(b)
}

// invalidate clears finalized state of id and finalized descendants, and
// bumps the generation so cached epochs are dropped. Chain assignments are
// rolled back conservatively by truncating nothing: a re-finalized node
// simply starts a fresh chain, which costs clock width but preserves
// correctness. (An epoch-finalized node has only epoch-finalized ancestors,
// so the walk can prune at the first unfinalized node.)
func (c *LiveClocks) invalidate(id op.ID) {
	if c.chain[id-1] < 0 {
		return
	}
	c.chain[id-1] = -1
	c.clock[id-1] = nil
	c.gen++
	for _, s := range c.succs[id-1] {
		c.invalidate(s)
	}
}

// finalizeEpoch assigns id's chain and position (iteratively, ancestors
// first). It performs no clock joins and no allocation beyond chain
// bookkeeping — this is the O(1)-amortized fast path of the epoch
// representation.
func (c *LiveClocks) finalizeEpoch(id op.ID) {
	if c.chain[id-1] >= 0 {
		return
	}
	stack := append(c.fstack[:0], frame{id: id})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ps := c.preds[f.id-1]
		descended := false
		for f.next < len(ps) {
			p := ps[f.next]
			f.next++
			if p >= f.id {
				panic(fmt.Sprintf("hb: live edge %d→%d violates topological ID order", p, f.id))
			}
			if c.chain[p-1] < 0 {
				stack = append(stack, frame{id: p})
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		c.assignEpoch(f.id)
		stack = stack[:len(stack)-1]
	}
	c.fstack = stack
}

// assignEpoch computes chain membership for id; all predecessors hold
// finalized epochs. An operation extends the chain of a predecessor that is
// still that chain's tail, else it starts a new chain.
func (c *LiveClocks) assignEpoch(id op.ID) {
	i := id - 1
	ci := int32(-1)
	for _, p := range c.preds[i] {
		pc := c.chain[p-1]
		if pc >= 0 && c.tails[pc] == p {
			ci = pc
			break
		}
	}
	if ci < 0 {
		ci = int32(len(c.tails))
		c.tails = append(c.tails, op.None)
	}
	c.chain[i] = ci
	if c.tails[ci] == op.None {
		c.pos[i] = 0
	} else {
		c.pos[i] = c.pos[c.tails[ci]-1] + 1
	}
	c.tails[ci] = id
}

// materialize builds (iteratively, ancestors first) the full clock vector of
// id: the join of its predecessors' clocks plus its own epoch. Only queries
// that cross chains reach this path, so clocks exist only for operations
// involved with genuinely shared locations.
func (c *LiveClocks) materialize(id op.ID) []int32 {
	if clk := c.clock[id-1]; clk != nil {
		return clk
	}
	c.finalizeEpoch(id)
	stack := append(c.fstack[:0], frame{id: id})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ps := c.preds[f.id-1]
		descended := false
		for f.next < len(ps) {
			p := ps[f.next]
			f.next++
			if c.clock[p-1] == nil {
				stack = append(stack, frame{id: p})
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		c.assignClock(f.id)
		stack = stack[:len(stack)-1]
	}
	c.fstack = stack
	return c.clock[id-1]
}

// assignClock produces id's stored vector. Stored vectors are allowed to
// understate the entry of id's *own* chain — pos[id] supplies it — which
// unlocks structural sharing: an operation with a single predecessor on
// its own chain reuses the predecessor's vector outright (no copy, no
// join). Chains dominate browser happens-before graphs, so only join
// nodes and chain starts ever allocate. Consumers compensate:
//
//   - queries never read a vector at the owner's own chain (the same-chain
//     case is answered from epochs first), and for every other chain the
//     shared vector is exact;
//   - joins max in pos(p) at chain(p) for each predecessor p, restoring
//     the understated entry.
func (c *LiveClocks) assignClock(id op.ID) {
	i := id - 1
	ps := c.preds[i]
	if len(ps) == 1 && c.chain[ps[0]-1] == c.chain[i] {
		// Chain extension: share the predecessor's vector.
		c.clock[i] = c.clock[ps[0]-1]
		return
	}
	clk := c.alloc(len(c.tails))
	rest := ps
	if len(ps) > 0 {
		// Seed from the first predecessor's vector (one memmove instead
		// of a fill pass plus an extra max pass), pad the newer chains.
		n := copy(clk, c.clock[ps[0]-1])
		for j := n; j < len(clk); j++ {
			clk[j] = -1
		}
		if pc := c.chain[ps[0]-1]; clk[pc] < c.pos[ps[0]-1] {
			clk[pc] = c.pos[ps[0]-1]
		}
		rest = ps[1:]
	} else {
		for j := range clk {
			clk[j] = -1
		}
	}
	for _, p := range rest {
		for j, v := range c.clock[p-1] {
			if v > clk[j] {
				clk[j] = v
			}
		}
		// The predecessor's own chain entry may be understated in its
		// stored vector; its epoch is authoritative.
		if pc := c.chain[p-1]; clk[pc] < c.pos[p-1] {
			clk[pc] = c.pos[p-1]
		}
	}
	clk[c.chain[i]] = c.pos[i]
	c.clock[i] = clk
	c.mats++
}

// alloc carves an int32 vector out of the slab, growing it chunk-wise so
// clock joins do not hit the allocator per operation.
func (c *LiveClocks) alloc(n int) []int32 {
	if len(c.arena) < n {
		chunk := 1 << 16
		if n > chunk {
			chunk = n
		}
		c.arena = make([]int32, chunk)
	}
	clk := c.arena[:n:n]
	c.arena = c.arena[n:]
	c.allocWords += n
	return clk
}

// HappensBefore reports a ⇝ b. Same-chain pairs are answered from epochs
// alone; only cross-chain pairs materialize b's clock.
func (c *LiveClocks) HappensBefore(a, b op.ID) bool {
	if a == b || a == op.None || b == op.None ||
		int(a) > len(c.preds) || int(b) > len(c.preds) {
		return false
	}
	c.finalizeEpoch(a)
	c.finalizeEpoch(b)
	ca, cb := c.chain[a-1], c.chain[b-1]
	if ca == cb {
		return c.pos[a-1] < c.pos[b-1]
	}
	clk := c.materialize(b)
	return int(ca) < len(clk) && clk[ca] >= c.pos[a-1]
}

// Concurrent reports CHC(a, b).
func (c *LiveClocks) Concurrent(a, b op.ID) bool {
	if a == op.None || b == op.None || a == b {
		return false
	}
	return !c.HappensBefore(a, b) && !c.HappensBefore(b, a)
}

// Epoch implements EpochOracle: id's (chain, position) coordinate,
// finalizing lazily. Unknown ids get the invalid epoch.
func (c *LiveClocks) Epoch(id op.ID) Epoch {
	if id == op.None || int(id) > len(c.preds) {
		return Epoch{Chain: -1}
	}
	c.finalizeEpoch(id)
	return Epoch{Chain: c.chain[id-1], Pos: c.pos[id-1]}
}

// OrderedEpoch implements EpochOracle: the operation at e happens before
// (or is) b. Same-chain comparisons are O(1); cross-chain comparisons
// materialize b's clock.
func (c *LiveClocks) OrderedEpoch(e Epoch, b op.ID) bool {
	if e.Chain < 0 || b == op.None || int(b) > len(c.preds) {
		return false
	}
	c.finalizeEpoch(b)
	if c.chain[b-1] == e.Chain {
		return e.Pos <= c.pos[b-1]
	}
	clk := c.materialize(b)
	return int(e.Chain) < len(clk) && clk[e.Chain] >= e.Pos
}

// Gen implements EpochOracle.
func (c *LiveClocks) Gen() uint32 { return c.gen }

// Chains reports the current chain count (clock width).
func (c *LiveClocks) Chains() int { return len(c.tails) }

// MaterializedClocks reports how many operations had a full clock vector
// built — the quantity lazy materialization minimizes. Same-chain-only
// workloads keep it at zero.
func (c *LiveClocks) MaterializedClocks() int { return c.mats }

// MemoryBytes estimates the memory held by materialized clocks (shared
// vectors counted once).
func (c *LiveClocks) MemoryBytes() int { return c.allocWords * 4 }
