// Package html provides a good-enough HTML tokenizer and an incremental
// tree parser for the simulated browser. The parser is deliberately
// incremental — it hands back one element at a time — because the paper's
// races fundamentally depend on the browser interleaving HTML parsing with
// script execution and user events (partial page rendering, §2.1). Each
// element the parser yields becomes one parse(E) operation (§3.2).
//
// The dialect is the subset real pages in the paper's examples use: nested
// elements, quoted/unquoted/boolean attributes, comments, doctype, raw-text
// script/style bodies, void and self-closing elements, and a handful of
// character entities. It does not implement the HTML5 error-recovery
// algorithm (adoption agency, implied tags): the detector never depends on
// those, and sitegen emits well-formed markup.
package html

import (
	"strings"
)

// TokenKind discriminates tokenizer output.
type TokenKind uint8

const (
	// TokenText is character data between tags.
	TokenText TokenKind = iota
	// TokenStartTag is <name attr=...> (SelfClose marks <name/>).
	TokenStartTag
	// TokenEndTag is </name>.
	TokenEndTag
	// TokenComment is <!-- ... --> (content not preserved).
	TokenComment
	// TokenEOF marks end of input.
	TokenEOF
)

// Attr is one attribute as written, name lower-cased.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical item.
type Token struct {
	Kind      TokenKind
	Name      string // tag name, lower-cased
	Attrs     []Attr
	Text      string // TokenText content, entity-decoded
	SelfClose bool
}

// Tokenizer scans HTML source. The zero value is not usable; use
// NewTokenizer.
type Tokenizer struct {
	src string
	pos int
	// rawUntil, when non-empty, makes the tokenizer consume everything
	// up to the matching close tag as a single text token (script/style
	// bodies).
	rawUntil string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer { return &Tokenizer{src: src} }

// Next returns the next token. After TokenEOF it keeps returning TokenEOF.
func (t *Tokenizer) Next() Token {
	if t.rawUntil != "" {
		return t.rawText()
	}
	if t.pos >= len(t.src) {
		return Token{Kind: TokenEOF}
	}
	if t.src[t.pos] != '<' {
		return t.text()
	}
	rest := t.src[t.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return t.comment()
	case strings.HasPrefix(rest, "<!"), strings.HasPrefix(rest, "<?"):
		return t.markupDecl()
	case strings.HasPrefix(rest, "</"):
		return t.endTag()
	case len(rest) > 1 && isNameStart(rest[1]):
		return t.startTag()
	default:
		// A lone '<' that starts no tag: literal text.
		return t.textFrom(t.pos + 1)
	}
}

func (t *Tokenizer) rawText() Token {
	close := "</" + t.rawUntil
	// Byte-wise ASCII case folding: strings.ToLower would replace
	// invalid UTF-8 bytes with multi-byte replacement runes and
	// desynchronize the match index from the source offsets.
	idx := asciiIndexFold(t.src[t.pos:], close)
	var body string
	if idx < 0 {
		body = t.src[t.pos:]
		t.pos = len(t.src)
	} else {
		body = t.src[t.pos : t.pos+idx]
		// Skip "</name" plus anything up to '>'.
		end := t.pos + idx + len(close)
		for end < len(t.src) && t.src[end] != '>' {
			end++
		}
		if end < len(t.src) {
			end++
		}
		t.pos = end
	}
	t.rawUntil = ""
	return Token{Kind: TokenText, Text: body}
}

func (t *Tokenizer) text() Token { return t.textFrom(t.pos) }

func (t *Tokenizer) textFrom(scanFrom int) Token {
	start := t.pos
	idx := strings.IndexByte(t.src[scanFrom:], '<')
	if idx < 0 {
		t.pos = len(t.src)
	} else {
		t.pos = scanFrom + idx
	}
	return Token{Kind: TokenText, Text: decodeEntities(t.src[start:t.pos])}
}

func (t *Tokenizer) comment() Token {
	end := strings.Index(t.src[t.pos+4:], "-->")
	if end < 0 {
		t.pos = len(t.src)
	} else {
		t.pos += 4 + end + 3
	}
	return Token{Kind: TokenComment}
}

func (t *Tokenizer) markupDecl() Token {
	end := strings.IndexByte(t.src[t.pos:], '>')
	if end < 0 {
		t.pos = len(t.src)
	} else {
		t.pos += end + 1
	}
	return Token{Kind: TokenComment}
}

func (t *Tokenizer) endTag() Token {
	t.pos += 2
	name := t.name()
	t.skipUntilGt()
	return Token{Kind: TokenEndTag, Name: name}
}

func (t *Tokenizer) startTag() Token {
	t.pos++
	tok := Token{Kind: TokenStartTag, Name: t.name()}
	for {
		t.skipSpace()
		if t.pos >= len(t.src) {
			break
		}
		c := t.src[t.pos]
		if c == '>' {
			t.pos++
			break
		}
		if c == '/' {
			t.pos++
			t.skipSpace()
			if t.pos < len(t.src) && t.src[t.pos] == '>' {
				t.pos++
				tok.SelfClose = true
			}
			break
		}
		attr := t.attr()
		if attr.Name == "" {
			if t.pos < len(t.src) {
				t.pos++ // stray character; skip to avoid looping
			}
			continue
		}
		tok.Attrs = append(tok.Attrs, attr)
	}
	if !tok.SelfClose && isRawText(tok.Name) {
		t.rawUntil = tok.Name
	}
	return tok
}

func (t *Tokenizer) attr() Attr {
	name := t.attrName()
	t.skipSpace()
	if t.pos >= len(t.src) || t.src[t.pos] != '=' {
		return Attr{Name: name} // boolean attribute
	}
	t.pos++
	t.skipSpace()
	if t.pos >= len(t.src) {
		return Attr{Name: name}
	}
	var val string
	switch q := t.src[t.pos]; q {
	case '"', '\'':
		t.pos++
		end := strings.IndexByte(t.src[t.pos:], q)
		if end < 0 {
			val = t.src[t.pos:]
			t.pos = len(t.src)
		} else {
			val = t.src[t.pos : t.pos+end]
			t.pos += end + 1
		}
	default:
		start := t.pos
		for t.pos < len(t.src) && !isSpace(t.src[t.pos]) && t.src[t.pos] != '>' {
			t.pos++
		}
		val = t.src[start:t.pos]
	}
	return Attr{Name: name, Value: decodeEntities(val)}
}

func (t *Tokenizer) name() string {
	start := t.pos
	for t.pos < len(t.src) && isNameChar(t.src[t.pos]) {
		t.pos++
	}
	return strings.ToLower(t.src[start:t.pos])
}

func (t *Tokenizer) attrName() string {
	start := t.pos
	for t.pos < len(t.src) {
		c := t.src[t.pos]
		if isSpace(c) || c == '=' || c == '>' || c == '/' {
			break
		}
		t.pos++
	}
	return strings.ToLower(t.src[start:t.pos])
}

func (t *Tokenizer) skipSpace() {
	for t.pos < len(t.src) && isSpace(t.src[t.pos]) {
		t.pos++
	}
}

func (t *Tokenizer) skipUntilGt() {
	for t.pos < len(t.src) && t.src[t.pos] != '>' {
		t.pos++
	}
	if t.pos < len(t.src) {
		t.pos++
	}
}

// asciiIndexFold returns the byte index of the first occurrence of needle
// in haystack under ASCII-only case folding (needle must be lower-case),
// or -1. Indexes are byte offsets into haystack regardless of encoding.
func asciiIndexFold(haystack, needle string) int {
	if len(needle) == 0 {
		return 0
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := 0; j < len(needle); j++ {
			c := haystack[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' }

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isRawText(tag string) bool { return tag == "script" || tag == "style" }

var entities = strings.NewReplacer(
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
	"&amp;", "&", // must be last so &amp;lt; decodes to &lt;
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entities.Replace(s)
}
