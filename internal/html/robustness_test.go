package html

import (
	"strings"
	"testing"

	"webracer/internal/dom"
)

// Real pages are hostile: truncated tags, duplicated attributes, weird
// quoting, deeply misnested markup. The tokenizer and parser must never
// panic or loop; the detector's value depends on surviving whatever a
// Fortune-100 home page serves.

func mustParse(t *testing.T, src string) *dom.Document {
	t.Helper()
	doc := dom.NewDocument("r.html", &dom.Serials{})
	p := NewParser(doc, src)
	for steps := 0; ; steps++ {
		if steps > 100_000 {
			t.Fatalf("parser did not terminate on %q", truncateFor(src))
		}
		if ev := p.Next(); ev.Kind == EventDone {
			return doc
		}
	}
}

func truncateFor(s string) string {
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}

func TestRobustnessNoPanicsOrHangs(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<!",
		"<!--",
		"<!-- unterminated comment",
		"</>",
		"</closeonly>",
		"<div",
		"<div id=",
		`<div id="unterminated`,
		"<div id='mixed\">x</div>",
		"<div //>x",
		"<div / id=a>",
		"<a b c d e f>",
		"<p><p><p><p>",
		"</p></p></p>",
		"<b><i></b></i>",
		"<script>",
		"<script>unterminated",
		"<script src=></script>",
		"<style>p { content: '</div>' }</style><p id='after'></p>",
		"<DIV ID=CAPS>x</DIV>",
		"<div\nid\n=\na\n>x</div>",
		"< div>not a tag</ div>",
		"<div id=\"a\" id=\"b\">dup</div>",
		"&amp;&bogus;&#39;&",
		strings.Repeat("<div>", 500),
		strings.Repeat("</div>", 500),
		"<img src=x.png<p>",
		"<iframe src='a.html'<div>",
		"<input value=' spaced ' checked x>",
	}
	for _, src := range cases {
		src := src
		t.Run(truncateFor(src), func(t *testing.T) {
			mustParse(t, src)
		})
	}
}

func TestRobustnessCapsTags(t *testing.T) {
	doc := mustParse(t, `<DIV ID="caps"><SCRIPT>x = 1;</SCRIPT></DIV>`)
	if doc.GetElementByID("caps") == nil {
		t.Error("upper-case markup not normalized")
	}
	if len(doc.ElementsByTag("script")) != 1 {
		t.Error("upper-case script not found")
	}
}

func TestRobustnessDuplicateAttrLastWins(t *testing.T) {
	doc := mustParse(t, `<div id="a" id="b">x</div>`)
	// Either policy is defensible; pin the current one (last wins) so a
	// change is deliberate.
	if doc.GetElementByID("b") == nil {
		t.Error("duplicate attribute policy changed (expected last-wins)")
	}
}

func TestRobustnessMisnestedStillIndexes(t *testing.T) {
	doc := mustParse(t, `<b><i id="inner"></b>text</i><p id="after"></p>`)
	if doc.GetElementByID("inner") == nil || doc.GetElementByID("after") == nil {
		t.Error("misnesting broke indexing")
	}
}

func TestRobustnessScriptNeverSwallowsPage(t *testing.T) {
	doc := mustParse(t, `<script>var s = "<p>not real</p>";</script><p id="real"></p>`)
	if doc.GetElementByID("real") == nil {
		t.Error("markup inside script string leaked into the tree or ate the page")
	}
	if got := len(doc.ElementsByTag("p")); got != 1 {
		t.Errorf("p count = %d, want 1", got)
	}
}

func TestRobustnessHugeFlatPage(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		b.WriteString("<p>x</p>")
	}
	doc := mustParse(t, b.String())
	if got := len(doc.ElementsByTag("p")); got != 5000 {
		t.Errorf("p count = %d, want 5000", got)
	}
}
