package html

import (
	"strings"
	"testing"

	"webracer/internal/dom"
)

func tokens(src string) []Token {
	tk := NewTokenizer(src)
	var out []Token
	for {
		t := tk.Next()
		out = append(out, t)
		if t.Kind == TokenEOF {
			return out
		}
	}
}

func TestTokenizeSimple(t *testing.T) {
	toks := tokens(`<p class="big">hi</p>`)
	if toks[0].Kind != TokenStartTag || toks[0].Name != "p" {
		t.Fatalf("start tag: %+v", toks[0])
	}
	if len(toks[0].Attrs) != 1 || toks[0].Attrs[0].Name != "class" || toks[0].Attrs[0].Value != "big" {
		t.Errorf("attrs: %+v", toks[0].Attrs)
	}
	if toks[1].Kind != TokenText || toks[1].Text != "hi" {
		t.Errorf("text: %+v", toks[1])
	}
	if toks[2].Kind != TokenEndTag || toks[2].Name != "p" {
		t.Errorf("end tag: %+v", toks[2])
	}
}

func TestTokenizeAttrVariants(t *testing.T) {
	toks := tokens(`<input type=text checked value='a b' data-x="1">`)
	attrs := toks[0].Attrs
	want := map[string]string{"type": "text", "checked": "", "value": "a b", "data-x": "1"}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %+v", attrs)
	}
	for _, a := range attrs {
		if want[a.Name] != a.Value {
			t.Errorf("attr %s = %q, want %q", a.Name, a.Value, want[a.Name])
		}
	}
}

func TestTokenizeSelfClose(t *testing.T) {
	toks := tokens(`<iframe src="a.html" />`)
	if !toks[0].SelfClose {
		t.Error("self-close not detected")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := tokens(`a<!-- <p>ignored</p> -->b<!doctype html>c`)
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokenText {
			texts = append(texts, tk.Text)
		}
	}
	if strings.Join(texts, "|") != "a|b|c" {
		t.Errorf("texts = %v", texts)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := tokens(`<script>if (a < b) { x = "</div>"; }</script><p>after</p>`)
	if toks[0].Kind != TokenStartTag || toks[0].Name != "script" {
		t.Fatalf("toks[0] = %+v", toks[0])
	}
	if toks[1].Kind != TokenText || !strings.Contains(toks[1].Text, "a < b") {
		t.Fatalf("script body not raw: %+v", toks[1])
	}
	// The "</div>" inside the string must not have closed the script...
	if !strings.Contains(toks[1].Text, `</div>`) {
		t.Errorf("script body lost its content: %q", toks[1].Text)
	}
	if toks[2].Kind != TokenStartTag || toks[2].Name != "p" {
		t.Errorf("parsing did not resume after </script>: %+v", toks[2])
	}
}

func TestEntities(t *testing.T) {
	toks := tokens(`<p title="a&amp;b">x &lt; y &amp; z</p>`)
	if toks[0].Attrs[0].Value != "a&b" {
		t.Errorf("attr entity: %q", toks[0].Attrs[0].Value)
	}
	if toks[1].Text != "x < y & z" {
		t.Errorf("text entity: %q", toks[1].Text)
	}
}

func TestStrayLt(t *testing.T) {
	toks := tokens(`1 < 2 <p>ok</p>`)
	// The stray '<' is literal text; the <p> still parses.
	foundP := false
	for _, tk := range toks {
		if tk.Kind == TokenStartTag && tk.Name == "p" {
			foundP = true
		}
	}
	if !foundP {
		t.Error("stray < broke subsequent tag parsing")
	}
}

// ---- parser ----

func parseAll(t *testing.T, src string) *dom.Document {
	t.Helper()
	doc := dom.NewDocument("t.html", &dom.Serials{})
	p := NewParser(doc, src)
	for {
		if ev := p.Next(); ev.Kind == EventDone {
			break
		}
	}
	return doc
}

func TestParseTree(t *testing.T) {
	doc := parseAll(t, `<div id="outer"><p>one</p><p>two</p></div><span id="s"></span>`)
	outer := doc.GetElementByID("outer")
	if outer == nil || len(outer.Kids) != 2 {
		t.Fatalf("outer = %v", outer)
	}
	if doc.GetElementByID("s") == nil {
		t.Error("sibling not parsed")
	}
	if outer.Kids[0].Kids[0].Text != "one" {
		t.Errorf("text content: %v", outer.Kids[0].Kids[0])
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := parseAll(t, `<div id="d"><br><img src="x.png"><input type="text"></div>`)
	d := doc.GetElementByID("d")
	if len(d.Kids) != 3 {
		t.Fatalf("void elements nested wrongly: %v", d.Kids)
	}
}

func TestParseScriptComplete(t *testing.T) {
	doc := dom.NewDocument("t.html", &dom.Serials{})
	p := NewParser(doc, `<script>x = 1;</script>`)
	ev := p.Next()
	if ev.Kind != EventOpen || !ev.Complete {
		t.Fatalf("script event: %+v", ev)
	}
	if ev.Node.Text != "x = 1;" {
		t.Errorf("script source = %q", ev.Node.Text)
	}
}

func TestParserYieldsIncrementally(t *testing.T) {
	doc := dom.NewDocument("t.html", &dom.Serials{})
	p := NewParser(doc, `<p>a</p><p>b</p><p>c</p>`)
	ev1 := p.Next()
	if ev1.Kind != EventOpen || ev1.Node.Tag != "p" {
		t.Fatalf("first event: %+v", ev1)
	}
	// After one event, only the first <p> exists.
	if got := len(doc.ElementsByTag("p")); got != 1 {
		t.Errorf("parser not incremental: %d p's after one event", got)
	}
}

func TestParseUnmatchedClose(t *testing.T) {
	doc := parseAll(t, `<div id="d">text</span></div>`)
	if doc.GetElementByID("d") == nil {
		t.Error("unmatched close tag broke parsing")
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	doc := parseAll(t, `<div id="a"><p>unclosed`)
	if doc.GetElementByID("a") == nil {
		t.Error("unclosed elements dropped at EOF")
	}
}

func TestParseInputValue(t *testing.T) {
	doc := parseAll(t, `<input id="i" value="prefilled" checked>`)
	n := doc.GetElementByID("i")
	if n.Value != "prefilled" || !n.Checked {
		t.Errorf("input state: value=%q checked=%v", n.Value, n.Checked)
	}
}

func TestParseWhitespaceSkipped(t *testing.T) {
	doc := parseAll(t, "<div id=\"d\">\n   \n</div>")
	d := doc.GetElementByID("d")
	if len(d.Kids) != 0 {
		t.Errorf("whitespace-only text node kept: %v", d.Kids)
	}
}

func TestParseFragment(t *testing.T) {
	doc := dom.NewDocument("t.html", &dom.Serials{})
	nodes := ParseFragment(doc, `<span id="a">x</span><b>y</b>`)
	if len(nodes) != 2 {
		t.Fatalf("fragment nodes = %d, want 2", len(nodes))
	}
	if nodes[0].Tag != "span" || nodes[1].Tag != "b" {
		t.Errorf("fragment tags: %v %v", nodes[0], nodes[1])
	}
	if nodes[0].InDoc {
		t.Error("fragment nodes must be detached")
	}
	// Fragment ids must not pollute the document index.
	if doc.GetElementByID("a") != nil {
		t.Error("fragment node indexed in document")
	}
}

func TestParseDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 50
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString(`<span id="deep"></span>`)
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	doc := parseAll(t, b.String())
	n := doc.GetElementByID("deep")
	if n == nil {
		t.Fatal("deep node missing")
	}
	if len(n.Path()) != depth+2 {
		t.Errorf("depth = %d, want %d", len(n.Path()), depth+2)
	}
}

func TestEventParentAndIndex(t *testing.T) {
	doc := dom.NewDocument("t.html", &dom.Serials{})
	p := NewParser(doc, `<div><a></a><b></b></div>`)
	var events []Event
	for {
		ev := p.Next()
		if ev.Kind == EventDone {
			break
		}
		events = append(events, ev)
	}
	// div(open), a(open), b(open), div(close) — a and b carry indexes.
	var bEv *Event
	for i := range events {
		if events[i].Kind == EventOpen && events[i].Node.Tag == "b" {
			bEv = &events[i]
		}
	}
	if bEv == nil || bEv.Index != 1 || bEv.Parent.Tag != "div" {
		t.Errorf("b event: %+v", bEv)
	}
}
