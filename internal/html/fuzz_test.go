package html

import (
	"strings"
	"testing"

	"webracer/internal/dom"
)

// FuzzParseHTML: the tokenizer/parser must terminate without panicking on
// arbitrary bytes, and every node it builds must be reachable and well
// formed (parent pointers consistent).
//
//	go test -fuzz=FuzzParseHTML ./internal/html
func FuzzParseHTML(f *testing.F) {
	seeds := []string{
		"<p>hello</p>",
		"<div id=a><script>x<1</script></div>",
		"<!-- c --><!doctype html><b><i></b></i>",
		"<input value='a b' checked>",
		"<iframe src=x.html /><img src=y.png>",
		"<script>unterminated",
		"</only-close>",
		"&amp;&#39;&bogus;",
		strings.Repeat("<div>", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		doc := dom.NewDocument("fuzz", &dom.Serials{})
		p := NewParser(doc, src)
		for i := 0; ; i++ {
			if i > 200_000 {
				t.Fatalf("parser did not terminate")
			}
			if ev := p.Next(); ev.Kind == EventDone {
				break
			}
		}
		// Structural invariant: every child's parent pointer is right.
		doc.Root.Walk(func(n *dom.Node) {
			for _, k := range n.Kids {
				if k.Parent != n {
					t.Fatalf("parent pointer broken at %v", k)
				}
			}
		})
	})
}
