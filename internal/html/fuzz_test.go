package html

import (
	"strings"
	"testing"

	"webracer/internal/dom"
	"webracer/internal/sitegen"
)

// FuzzParseHTML: the tokenizer/parser must terminate without panicking on
// arbitrary bytes, and every node it builds must be reachable and well
// formed (parent pointers consistent).
//
//	go test -fuzz=FuzzParseHTML ./internal/html
func FuzzParseHTML(f *testing.F) {
	seeds := []string{
		"<p>hello</p>",
		"<div id=a><script>x<1</script></div>",
		"<!-- c --><!doctype html><b><i></b></i>",
		"<input value='a b' checked>",
		"<iframe src=x.html /><img src=y.png>",
		"<script>unterminated",
		"</only-close>",
		"&amp;&#39;&bogus;",
		strings.Repeat("<div>", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		doc := dom.NewDocument("fuzz", &dom.Serials{})
		p := NewParser(doc, src)
		for i := 0; ; i++ {
			if i > 200_000 {
				t.Fatalf("parser did not terminate")
			}
			if ev := p.Next(); ev.Kind == EventDone {
				break
			}
		}
		// Structural invariant: every child's parent pointer is right.
		doc.Root.Walk(func(n *dom.Node) {
			for _, k := range n.Kids {
				if k.Parent != n {
					t.Fatalf("parent pointer broken at %v", k)
				}
			}
		})
	})
}

// FuzzHTMLParse is the corpus-seeded sibling of FuzzParseHTML: its seed
// set is real generator output — every HTML resource of the first
// synthetic corpus sites — so mutations start from the markup shapes the
// detector actually parses (incremental scripts, iframes, onload
// attributes, forms). The invariants are the same: the parser terminates
// without panicking on arbitrary bytes and leaves consistent parent
// pointers.
//
//	go test -fuzz=FuzzHTMLParse ./internal/html
func FuzzHTMLParse(f *testing.F) {
	for i := 0; i < 8; i++ {
		site := sitegen.Generate(sitegen.SpecFor(1, i))
		for url, body := range site.Resources {
			if strings.HasSuffix(url, ".html") {
				f.Add(body)
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return
		}
		doc := dom.NewDocument("fuzz", &dom.Serials{})
		p := NewParser(doc, src)
		for i := 0; ; i++ {
			if i > 1_000_000 {
				t.Fatalf("parser did not terminate")
			}
			if ev := p.Next(); ev.Kind == EventDone {
				break
			}
		}
		doc.Root.Walk(func(n *dom.Node) {
			for _, k := range n.Kids {
				if k.Parent != n {
					t.Fatalf("parent pointer broken at %v", k)
				}
			}
		})
	})
}
