package html

import (
	"strings"

	"webracer/internal/dom"
)

// EventKind discriminates parser events.
type EventKind uint8

const (
	// EventOpen reports a new element created and inserted into the tree.
	// For raw-text elements (script, style) and void/self-closing
	// elements the element is already complete, including its text
	// content; Complete is set.
	EventOpen EventKind = iota
	// EventClose reports that an element's subtree finished parsing.
	EventClose
	// EventText reports a text node inserted into the tree (whitespace-
	// only text is skipped).
	EventText
	// EventDone reports end of input; all elements are closed.
	EventDone
)

// Event is one step of incremental parsing.
type Event struct {
	Kind EventKind
	Node *dom.Node
	// Parent and Index locate the insertion (valid for Open and Text) so
	// the browser can instrument the childNodes/parentNode writes of
	// §4.1 without re-deriving them.
	Parent *dom.Node
	Index  int
	// Complete marks an Open whose element needs no Close event.
	Complete bool
}

// voidElements never have children (HTML5 void elements plus <param>).
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parser builds a DOM tree from HTML source one element at a time. The
// caller (the browser's page loader) decides when to pull the next event,
// which is what lets parsing interleave with timers, network completions
// and user events.
type Parser struct {
	doc  *dom.Document
	tok  *Tokenizer
	open []*dom.Node // open element stack; open[0] is doc.Root
	done bool
}

// NewParser parses src into doc, appending under doc.Root.
func NewParser(doc *dom.Document, src string) *Parser {
	return &Parser{doc: doc, tok: NewTokenizer(src), open: []*dom.Node{doc.Root}}
}

// Next returns the next parse event. After EventDone it keeps returning
// EventDone.
func (p *Parser) Next() Event {
	if p.done {
		return Event{Kind: EventDone}
	}
	for {
		t := p.tok.Next()
		switch t.Kind {
		case TokenEOF:
			p.done = true
			p.open = p.open[:1]
			return Event{Kind: EventDone}
		case TokenComment:
			continue
		case TokenText:
			if strings.TrimSpace(t.Text) == "" {
				continue
			}
			parent := p.top()
			n := p.doc.NewText(t.Text)
			idx := parent.AppendChild(n)
			return Event{Kind: EventText, Node: n, Parent: parent, Index: idx}
		case TokenEndTag:
			if n := p.popTo(t.Name); n != nil {
				return Event{Kind: EventClose, Node: n}
			}
			continue // unmatched close tag: ignored
		case TokenStartTag:
			return p.openElement(t)
		}
	}
}

func (p *Parser) openElement(t Token) Event {
	n := p.doc.NewNode(t.Name)
	for _, a := range t.Attrs {
		n.Attrs[a.Name] = a.Value
	}
	if n.Tag == "input" {
		n.Value = n.Attrs["value"]
		n.Checked = hasAttr(t.Attrs, "checked")
	}
	parent := p.top()
	idx := parent.AppendChild(n)
	complete := t.SelfClose || voidElements[t.Name]
	if !complete && isRawText(t.Name) {
		// The tokenizer is now in raw-text mode: pull the body and the
		// close tag eagerly so the element is delivered whole (the
		// browser needs full script source before executing it).
		body := p.tok.Next()
		if body.Kind == TokenText && body.Text != "" {
			n.AppendChild(p.doc.NewText(body.Text))
			n.Text = body.Text
		}
		complete = true
	}
	if !complete {
		p.open = append(p.open, n)
	}
	return Event{Kind: EventOpen, Node: n, Parent: parent, Index: idx, Complete: complete}
}

// popTo closes elements up to and including the nearest open element with
// the given tag; it returns that element or nil when no such element is
// open (the intermediate elements stay closed either way, matching browser
// recovery for misnested tags well enough for our inputs).
func (p *Parser) popTo(tag string) *dom.Node {
	for i := len(p.open) - 1; i >= 1; i-- {
		if p.open[i].Tag == tag {
			n := p.open[i]
			p.open = p.open[:i]
			return n
		}
	}
	return nil
}

func (p *Parser) top() *dom.Node { return p.open[len(p.open)-1] }

// Done reports whether parsing reached end of input.
func (p *Parser) Done() bool { return p.done }

func hasAttr(attrs []Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ParseFragment parses src synchronously into a detached container node —
// used for innerHTML-style dynamic insertion by scripts.
func ParseFragment(doc *dom.Document, src string) []*dom.Node {
	frag := doc.NewNode("#fragment")
	p := &Parser{doc: doc, tok: NewTokenizer(src), open: []*dom.Node{frag}}
	for {
		if ev := p.Next(); ev.Kind == EventDone {
			break
		}
	}
	kids := append([]*dom.Node(nil), frag.Kids...)
	for _, k := range kids {
		frag.RemoveChild(k)
	}
	return kids
}
